// Quickstart: build a small database, declare two constraints, and see
// which one is violated — first through the BDD logical indices, then
// drilling into the violating tuples.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

func main() {
	// 1. A catalog with one table of phone customers. Columns that
	//    constraints compare must share a named domain.
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city", Domain: "city"},
		{Name: "areacode", Domain: "areacode"},
		{Name: "state", Domain: "state"},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range [][3]string{
		{"Toronto", "416", "Ontario"},
		{"Toronto", "647", "Ontario"},
		{"Oshawa", "905", "Ontario"},
		{"Newark", "973", "NJ"},
		{"Trenton", "609", "NJ"},
		{"Newark", "416", "NJ"}, // a bad tuple: 416 is not a NJ areacode
	} {
		cust.Insert(row[0], row[1], row[2])
	}

	// 2. A checker with a logical index on the table. Prob-Converge picks
	//    the variable ordering (§3.2 of the paper).
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("CUST", "CUST", nil, core.OrderProbConverge); err != nil {
		log.Fatal(err)
	}

	// 3. Constraints in first-order logic. The paper's example classes:
	//    a membership constraint and an implication constraint.
	constraints, err := logic.ParseConstraints(`
		constraint nj_areacodes:
		    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908", "609"}.
		constraint toronto_in_ontario:
		    forall a, s: CUST("Toronto", a, s) => s = "Ontario".
	`)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Fast identification: which constraints are violated?
	for _, res := range chk.Check(constraints) {
		if res.Err != nil {
			log.Fatalf("%s: %v", res.Constraint.Name, res.Err)
		}
		status := "holds"
		if res.Violated {
			status = "VIOLATED"
		}
		fmt.Printf("%-20s %-9s (method=%s, %v)\n",
			res.Constraint.Name, status, res.Method, res.Duration.Round(0))
	}

	// 5. Drill into the violation — the BDD evaluation already carries the
	//    violating bindings.
	fmt.Println("\nwitnesses of nj_areacodes:")
	ws, err := chk.ViolationWitnesses(constraints[0], 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range ws {
		fmt.Printf("  %v = %v\n", w.Vars, w.Values)
	}

	// ... and the equivalent SQL view of the same violations.
	rows, err := chk.ViolatingRows(constraints[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nviolating rows via the SQL baseline:")
	for i := 0; i < rows.Len(); i++ {
		fmt.Printf("  %v = %v\n", rows.Vars, rows.Decode(i))
	}
}
