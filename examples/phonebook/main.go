// Phonebook: the paper's evaluation scenario at laptop scale. A synthetic
// US/Canada customer table with the paper's schema (areacode, number, city,
// state, zipcode) and active-domain sizes is generated with a small noise
// rate; two logical indices are built — (areacode, city, state) with 29
// boolean variables and (city, state, zipcode) with 35, exactly the paper's
// "ncs" and "csz" — and three constraint classes are validated both with
// the BDD indices and with the SQL baseline, timing each.
//
// Run with: go run ./examples/phonebook [-tuples N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

func main() {
	tuples := flag.Int("tuples", 100000, "customer relation size")
	noise := flag.Float64("noise", 0.002, "fraction of scrambled tuples")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	cat := relation.NewCatalog()
	fmt.Printf("generating %d customers (noise %.2g)...\n", *tuples, *noise)
	data, err := datagen.Customers(cat, "CUST", datagen.CustomerSpec{
		Tuples: *tuples, NoiseRate: *noise,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	chk := core.New(cat, core.Options{})
	build := func(name string, cols []string) {
		start := time.Now()
		ix, err := chk.BuildIndex(name, "CUST", cols, core.OrderProbConverge)
		if err != nil {
			log.Fatal(err)
		}
		bits := 0
		for _, d := range ix.Domains() {
			bits += d.Bits()
		}
		fmt.Printf("index %-4s: %2d boolean vars, %7d nodes, built in %v\n",
			name, bits, ix.NodeCount(), time.Since(start).Round(time.Millisecond))
	}
	// The paper's two indices: 29 and 35 boolean variables.
	build("NCS", []string{"areacode", "city", "state"})
	build("CSZ", []string{"city", "state", "zipcode"})

	// Three constraint classes from §5.2. The membership constraint uses
	// ground truth from the generator so that it is mostly true.
	state := data.AreaState[17]
	var okCodes string
	for i, a := range data.StateAreas[state] {
		if i > 0 {
			okCodes += ", "
		}
		okCodes += fmt.Sprintf("%q", datagen.AreacodeName(a))
	}
	sources := []struct{ name, src string }{
		{"state_areacodes", fmt.Sprintf(
			`forall a, c: NCS(a, c, %q) => a in {%s}`,
			datagen.StateName(state), okCodes)},
		{"fd_city_state", `forall c, s1, s2: NCS(_, c, s1) and NCS(_, c, s2) => s1 = s2`},
		{"zip_consistency", `forall c, s, z: CSZ(c, s, z) => exists s2: NCS(_, c, s2) and s2 = s`},
	}

	for _, q := range sources {
		f, err := logic.Parse(q.src)
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		ct := logic.Constraint{Name: q.name, F: f}

		start := time.Now()
		res := chk.CheckOne(ct)
		bddTime := time.Since(start)
		if res.Err != nil {
			log.Fatalf("%s: %v", q.name, res.Err)
		}

		start = time.Now()
		query, err := sqlengine.Compile(ct, chk.Resolver())
		if err != nil {
			log.Fatalf("%s: sql compile: %v", q.name, err)
		}
		sqlViolated, _, err := query.Run()
		if err != nil {
			log.Fatalf("%s: sql run: %v", q.name, err)
		}
		sqlTime := time.Since(start)

		if res.Violated != sqlViolated {
			log.Fatalf("%s: BDD and SQL disagree (%v vs %v)", q.name, res.Violated, sqlViolated)
		}
		status := "holds"
		if res.Violated {
			status = "VIOLATED"
		}
		fmt.Printf("%-18s %-9s bdd=%-12v sql=%-12v speedup=%.1fx\n",
			q.name, status,
			bddTime.Round(time.Microsecond), sqlTime.Round(time.Microsecond),
			float64(sqlTime)/float64(bddTime))
	}

	// Incremental maintenance: stream updates through the indices and
	// re-validate — the fast path the paper motivates.
	fmt.Println("\nincremental maintenance: 1000 inserts + re-check")
	f, _ := logic.Parse(sources[1].src)
	ct := logic.Constraint{Name: sources[1].name, F: f}
	start := time.Now()
	for i := 0; i < 1000; i++ {
		city := rng.Intn(datagen.NumCities)
		st := data.CityState[city]
		area := data.StateAreas[st][0]
		zip := data.CityZips[city][0]
		err := chk.InsertTuple("CUST",
			datagen.AreacodeName(area), datagen.NumberName(rng.Intn(datagen.NumNumbers)),
			datagen.CityName(city), datagen.StateName(st), datagen.ZipcodeName(zip))
		if err != nil {
			log.Fatal(err)
		}
	}
	insertTime := time.Since(start)
	start = time.Now()
	res := chk.CheckOne(ct)
	fmt.Printf("1000 maintained inserts in %v (%.1fµs each); re-check %v (violated=%v)\n",
		insertTime.Round(time.Millisecond),
		float64(insertTime.Microseconds())/1000,
		res.Duration.Round(time.Microsecond), res.Violated)
}
