// Dataquality: continuous constraint monitoring under updates — the
// operational scenario the paper motivates ("databases are primarily
// dynamic ... being able to identify constraints that are violated within
// and across tables is highly important").
//
// An order-processing database receives batches of inserts, some of them
// dirty. After every batch the checker revalidates the whole constraint
// set against the incrementally maintained indices and reports which
// constraints broke, with example witnesses.
//
// Run with: go run ./examples/dataquality [-batches N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

func main() {
	batches := flag.Int("batches", 6, "number of insert batches")
	seed := flag.Int64("seed", 3, "random seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	cat := relation.NewCatalog()
	mk := func(name string, cols ...relation.Column) *relation.Table {
		t, err := cat.CreateTable(name, cols)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	customers := mk("CUSTOMER",
		relation.Column{Name: "cust_id", Domain: "cust_id"},
		relation.Column{Name: "tier", Domain: "tier"},
		relation.Column{Name: "region", Domain: "region"})
	products := mk("PRODUCT",
		relation.Column{Name: "prod_id", Domain: "prod_id"},
		relation.Column{Name: "category", Domain: "category"})
	orders := mk("ORDERS",
		relation.Column{Name: "order_id", Domain: "order_id"},
		relation.Column{Name: "cust_id", Domain: "cust_id"},
		relation.Column{Name: "prod_id", Domain: "prod_id"},
		relation.Column{Name: "region", Domain: "region"})

	// Seed data: pre-intern the id spaces so the index blocks are stable.
	regions := []string{"east", "west", "north", "south"}
	tiers := []string{"basic", "gold"}
	categories := []string{"hardware", "software", "services"}
	for i := 0; i < 500; i++ {
		cat.Domain("cust_id").Intern(fmt.Sprintf("c%03d", i))
	}
	for i := 0; i < 5000; i++ {
		cat.Domain("order_id").Intern(fmt.Sprintf("o%04d", i))
	}
	for i := 0; i < 100; i++ {
		cat.Domain("prod_id").Intern(fmt.Sprintf("p%03d", i))
	}
	custRegion := map[string]string{}
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("c%03d", i)
		region := regions[rng.Intn(len(regions))]
		custRegion[id] = region
		customers.Insert(id, tiers[rng.Intn(len(tiers))], region)
	}
	for i := 0; i < 100; i++ {
		products.Insert(fmt.Sprintf("p%03d", i), categories[rng.Intn(len(categories))])
	}

	chk := core.New(cat, core.Options{})
	for _, name := range []string{"CUSTOMER", "PRODUCT", "ORDERS"} {
		if _, err := chk.BuildIndex(name, name, nil, core.OrderProbConverge); err != nil {
			log.Fatal(err)
		}
	}

	constraints, err := logic.ParseConstraints(`
		# every order must reference a known customer
		constraint order_customer_exists:
		    forall o, c, p, r: ORDERS(o, c, p, r) => exists t, r2: CUSTOMER(c, t, r2).
		# every order must reference a known product
		constraint order_product_exists:
		    forall o, c, p, r: ORDERS(o, c, p, r) => exists g: PRODUCT(p, g).
		# the order's region must match the customer's region
		constraint order_region_matches:
		    forall o, c, p, r, t, r2:
		        ORDERS(o, c, p, r) and CUSTOMER(c, t, r2) => r = r2.
		# order ids are unique per (customer, product): order_id determines the rest
		constraint order_id_unique:
		    forall o, c1, c2: ORDERS(o, c1, _, _) and ORDERS(o, c2, _, _) => c1 = c2.
	`)
	if err != nil {
		log.Fatal(err)
	}

	orderSeq := 0
	insertBatch := func(dirty bool) {
		for i := 0; i < 50; i++ {
			orderSeq++
			id := fmt.Sprintf("o%04d", orderSeq)
			custID := fmt.Sprintf("c%03d", rng.Intn(300))
			prodID := fmt.Sprintf("p%03d", rng.Intn(100))
			region := custRegion[custID]
			if dirty && i == 7 {
				custID = fmt.Sprintf("c%03d", 300+rng.Intn(100)) // unknown customer
			}
			if dirty && i == 23 {
				region = regions[rng.Intn(len(regions))] // possibly wrong region
			}
			if err := chk.InsertTuple("ORDERS", id, custID, prodID, region); err != nil {
				log.Fatal(err)
			}
		}
		_ = orders
	}

	for b := 1; b <= *batches; b++ {
		dirty := b%2 == 0 // every second batch carries bad tuples
		insertBatch(dirty)
		start := time.Now()
		results := chk.Check(constraints)
		elapsed := time.Since(start)
		fmt.Printf("batch %d (%d orders total, dirty=%v): validated %d constraints in %v\n",
			b, orders.Len(), dirty, len(constraints), elapsed.Round(time.Microsecond))
		for _, res := range results {
			if res.Err != nil {
				log.Fatalf("%s: %v", res.Constraint.Name, res.Err)
			}
			if !res.Violated {
				continue
			}
			fmt.Printf("  VIOLATED %-24s (method=%s, %v)\n",
				res.Constraint.Name, res.Method, res.Duration.Round(time.Microsecond))
			if ws, err := chk.ViolationWitnesses(res.Constraint, 2); err == nil {
				for _, w := range ws {
					fmt.Printf("           e.g. %v = %v\n", w.Vars, w.Values)
				}
			}
		}
	}
}
