// Curriculum: the running example of the paper's introduction. Students of
// the CS department must take some course in the Programming area:
//
//	∀x_S ∃z STUDENT(x_S, "CS", z) ⇒
//	    ∃x_C (COURSE(x_C, "Programming") ∧ TAKES(x_S, x_C))
//
// The example shows the whole lifecycle: the constraint holds, a schema
// evolution (new enrolment batch) breaks it, the checker pinpoints the
// offending students via the violation BDD, and the explanatory SQL of the
// fallback query is printed for comparison with the hand-written SQL in the
// paper.
//
// Run with: go run ./examples/curriculum
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

func main() {
	cat := relation.NewCatalog()
	student, err := cat.CreateTable("STUDENT", []relation.Column{
		{Name: "student_id", Domain: "student_id"},
		{Name: "department", Domain: "department"},
		{Name: "contact", Domain: "contact"},
	})
	if err != nil {
		log.Fatal(err)
	}
	course, err := cat.CreateTable("COURSE", []relation.Column{
		{Name: "course_id", Domain: "course_id"},
		{Name: "area", Domain: "area"},
	})
	if err != nil {
		log.Fatal(err)
	}
	takes, err := cat.CreateTable("TAKES", []relation.Column{
		{Name: "student_id", Domain: "student_id"},
		{Name: "course_id", Domain: "course_id"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A consistent initial state.
	departments := []string{"CS", "Math", "Physics"}
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("s%02d", i)
		student.Insert(id, departments[i%3], fmt.Sprintf("contact%02d", i))
	}
	course.Insert("cs101", "Programming")
	course.Insert("cs201", "Programming")
	course.Insert("cs301", "Theory")
	course.Insert("m101", "Algebra")
	course.Insert("p101", "Mechanics")
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("s%02d", i)
		switch i % 3 {
		case 0: // CS students take a programming course
			if i%2 == 0 {
				takes.Insert(id, "cs101")
			} else {
				takes.Insert(id, "cs201")
			}
			takes.Insert(id, "cs301")
		case 1:
			takes.Insert(id, "m101")
		case 2:
			takes.Insert(id, "p101")
		}
	}

	chk := core.New(cat, core.Options{})
	for _, tbl := range []string{"STUDENT", "COURSE", "TAKES"} {
		if _, err := chk.BuildIndex(tbl, tbl, nil, core.OrderProbConverge); err != nil {
			log.Fatal(err)
		}
	}

	f, err := logic.Parse(`
		forall s, z: STUDENT(s, "CS", z) =>
		    exists c: COURSE(c, "Programming") and TAKES(s, c)
	`)
	if err != nil {
		log.Fatal(err)
	}
	ct := logic.Constraint{Name: "cs_needs_programming", F: f}

	report := func(stage string) {
		res := chk.CheckOne(ct)
		if res.Err != nil {
			log.Fatalf("%s: %v", stage, res.Err)
		}
		status := "holds"
		if res.Violated {
			status = "VIOLATED"
		}
		fmt.Printf("[%s] %s: %s (method=%s, %v)\n",
			stage, ct.Name, status, res.Method, res.Duration.Round(0))
		if res.Violated {
			ws, err := chk.ViolationWitnesses(ct, 5)
			if err != nil {
				log.Fatal(err)
			}
			for _, w := range ws {
				fmt.Printf("         offending student: %s\n", w.Values[0])
			}
		}
	}

	report("initial load")

	// Database evolution: a new batch of CS students is enrolled, but the
	// registrar forgot their course assignments.
	fmt.Println("\n-- enrolling three new CS students without courses --")
	for _, id := range []string{"s90", "s91", "s92"} {
		if err := chk.InsertTuple("STUDENT", id, "CS", "contact-"+id); err != nil {
			log.Fatal(err)
		}
	}
	report("after enrolment")

	// Repair two of them.
	fmt.Println("\n-- assigning cs101 to s90 and s91 --")
	if err := chk.InsertTuple("TAKES", "s90", "cs101"); err != nil {
		log.Fatal(err)
	}
	if err := chk.InsertTuple("TAKES", "s91", "cs101"); err != nil {
		log.Fatal(err)
	}
	report("after partial repair")

	// Show the SQL a relational engine would need for the same question —
	// the paper's introduction spells out this query by hand.
	sql, err := chk.SQLOf(ct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nequivalent violation query (SQL baseline):\n%s\n", sql)
}
