// Ordering: the §3 story as a runnable demo. Generates one relation per
// §5.1 structure family (1-PROD, 4-PROD, 8-PROD, RANDOM), builds its BDD
// index under every attribute permutation, and shows where the orderings
// picked by MaxInf-Gain and Prob-Converge land between the optimum and the
// worst case — the paper's Figures 2 and 3 in miniature.
//
// Run with: go run ./examples/ordering [-tuples N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/ordering"
	"repro/internal/relation"
)

func main() {
	tuples := flag.Int("tuples", 20000, "tuples per generated relation")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	families := []struct {
		name     string
		products int
	}{
		{"1-PROD", 1}, {"4-PROD", 4}, {"8-PROD", 8}, {"RANDOM", 0},
	}
	fmt.Printf("%-8s %10s %10s %12s %14s %10s\n",
		"family", "best", "worst", "MaxInf-Gain", "Prob-Converge", "ratio")
	for fi, fam := range families {
		cat := relation.NewCatalog()
		t, err := datagen.KProd(cat, "R", datagen.ProdSpec{
			Products: fam.products, Attrs: 5, Tuples: *tuples, DomSize: 100,
		}, rand.New(rand.NewSource(*seed*100+int64(fi))))
		if err != nil {
			log.Fatal(err)
		}
		size := func(order []int) int {
			store := index.NewStore(index.Options{})
			ix, err := store.Build("R", t, []int{0, 1, 2, 3, 4}, order)
			if err != nil {
				log.Fatal(err)
			}
			return ix.NodeCount()
		}
		var sizes []int
		for _, perm := range ordering.Permutations(5) {
			sizes = append(sizes, size(perm))
		}
		sort.Ints(sizes)
		best, worst := sizes[0], sizes[len(sizes)-1]
		mig := size(ordering.MaxInfGain(t))
		pc := size(ordering.ProbConverge(t, nil))
		fmt.Printf("%-8s %10d %10d %9d(α=%.2f) %11d(β=%.2f) %9.2fx\n",
			fam.name, best, worst,
			mig, float64(mig)/float64(best),
			pc, float64(pc)/float64(best),
			float64(worst)/float64(best))
	}
	fmt.Println("\npaper: the ordering effect (ratio) shrinks from 71.29x on 1-PROD to 1.02x on")
	fmt.Println("RANDOM; Prob-Converge stays within 1.5x of optimal, MaxInf-Gain does not.")
	_ = rng
}
