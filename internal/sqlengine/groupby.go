package sqlengine

import (
	"encoding/binary"

	"repro/internal/relation"
)

// groupby.go provides the grouping-based plans a relational engine uses for
// dependency-style constraints — the paper's SQL side of Figure 5(b)
// ("Using SQL involves the use of a group-by query").

// CheckFD reports whether the functional dependency lhs → rhs is violated
// in t: some lhs group holds more than one distinct rhs combination. It is
// the hash group-by plan SELECT lhs FROM t GROUP BY lhs HAVING
// COUNT(DISTINCT rhs) > 1.
func CheckFD(t *relation.Table, lhs, rhs []int) bool {
	firstRHS := make(map[string]string, 1024)
	var lkey, rkey []byte
	for _, row := range t.Rows() {
		lkey = lkey[:0]
		for _, c := range lhs {
			lkey = binary.AppendVarint(lkey, int64(row[c]))
		}
		rkey = rkey[:0]
		for _, c := range rhs {
			rkey = binary.AppendVarint(rkey, int64(row[c]))
		}
		l, r := string(lkey), string(rkey)
		if prev, ok := firstRHS[l]; ok {
			if prev != r {
				return true
			}
		} else {
			firstRHS[l] = r
		}
	}
	return false
}

// FDViolators returns the distinct lhs groups violating lhs → rhs, as
// encoded key rows over the lhs columns.
func FDViolators(t *relation.Table, lhs, rhs []int) [][]int32 {
	firstRHS := make(map[string]string, 1024)
	firstRow := make(map[string][]int32, 1024)
	reported := make(map[string]bool)
	var out [][]int32
	var lkey, rkey []byte
	for _, row := range t.Rows() {
		lkey = lkey[:0]
		for _, c := range lhs {
			lkey = binary.AppendVarint(lkey, int64(row[c]))
		}
		rkey = rkey[:0]
		for _, c := range rhs {
			rkey = binary.AppendVarint(rkey, int64(row[c]))
		}
		l, r := string(lkey), string(rkey)
		prev, ok := firstRHS[l]
		switch {
		case !ok:
			firstRHS[l] = r
			proj := make([]int32, len(lhs))
			for i, c := range lhs {
				proj[i] = row[c]
			}
			firstRow[l] = proj
		case prev != r && !reported[l]:
			reported[l] = true
			out = append(out, firstRow[l])
		}
	}
	return out
}
