package sqlengine

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/relation"
)

// compile.go translates first-order constraints into relational-algebra
// plans computing their violating variable bindings — the SQL-side
// counterpart of the BDD evaluator, corresponding to the hand-written
// violation queries of the paper's introduction (selection + NOT EXISTS).
//
// The translation is the classical safe evaluation of relational calculus
// over active domains: a constraint F is violated iff ¬F is satisfiable, so
// the compiler normalizes ¬F, strips its leading existential quantifiers
// (their bindings are the violation witnesses), and translates the body
// bottom-up, maintaining the invariant that the plan of a subformula
// produces exactly the subformula's free variables. Negation compiles to
// anti-joins when the enclosing conjunction binds the negated variables, and
// to active-domain differences otherwise.

// Query is a compiled violation query for one constraint.
type Query struct {
	// Constraint is the source constraint.
	Constraint logic.Constraint
	// Witnesses names the variables whose bindings identify violations
	// (the leading universally quantified variables of the constraint).
	Witnesses []string
	plan      Plan
}

// Plan returns the root of the compiled algebra plan.
func (q *Query) Plan() Plan { return q.plan }

// SQL renders the plan in explanatory SQL-like syntax.
func (q *Query) SQL() string { return q.plan.SQL() }

// Run executes the plan. The constraint is violated iff the result is
// nonempty; the rows bind the Witnesses variables.
func (q *Query) Run() (violated bool, witnesses *Rows, err error) {
	rows, err := q.plan.Run()
	if err != nil {
		return false, nil, err
	}
	return rows.Len() > 0, rows, nil
}

type compiler struct {
	an *logic.Analysis
}

// Compile builds the violation query of a constraint.
func Compile(c logic.Constraint, res logic.Resolver) (*Query, error) {
	an, err := logic.Analyze(c.F, res)
	if err != nil {
		return nil, err
	}
	neg := logic.NNF(logic.Not{F: logic.ElimImplies(an.F)})
	// Strip leading existential quantifiers: their bindings are the
	// violation witnesses.
	var witnesses []string
	for {
		q, ok := neg.(logic.Quant)
		if !ok || q.All {
			break
		}
		witnesses = append(witnesses, q.Vars...)
		neg = q.F
	}
	comp := &compiler{an: an}
	plan, err := comp.translate(neg)
	if err != nil {
		return nil, fmt.Errorf("sqlengine: compiling %s: %w", c.Name, err)
	}
	return &Query{Constraint: c, Witnesses: witnesses, plan: plan}, nil
}

func (c *compiler) domainOf(v string) (*relation.Domain, error) {
	d := c.an.Domain(v)
	if d == nil {
		return nil, fmt.Errorf("variable %s has no domain", v)
	}
	return d, nil
}

// pad joins active-domain scans into plan until it produces every variable
// in want.
func (c *compiler) pad(plan Plan, want []string) (Plan, error) {
	have := make(map[string]bool)
	for _, v := range plan.Vars() {
		have[v] = true
	}
	for _, v := range want {
		if have[v] {
			continue
		}
		have[v] = true
		d, err := c.domainOf(v)
		if err != nil {
			return nil, err
		}
		plan = &Join{L: plan, R: &DomainScan{Var: v, Dom: d}}
	}
	return plan, nil
}

func (c *compiler) translate(f logic.Formula) (Plan, error) {
	switch g := f.(type) {
	case logic.Truth:
		if g.Value {
			return Unit{}, nil
		}
		return Empty{}, nil
	case logic.Pred:
		return c.translatePred(g)
	case logic.Eq, logic.Neq, logic.In:
		// A comparison standing alone ranges its variables over their
		// active domains.
		plan, err := c.pad(Unit{}, logic.FreeVars(f))
		if err != nil {
			return nil, err
		}
		return c.applyComparison(plan, f)
	case logic.Not:
		inner, err := c.translate(g.F)
		if err != nil {
			return nil, err
		}
		dom, err := c.pad(Unit{}, logic.FreeVars(g.F))
		if err != nil {
			return nil, err
		}
		return &Diff{L: dom, R: inner}, nil
	case logic.And:
		return c.translateAnd(flattenAnd(f))
	case logic.Or:
		l, err := c.translate(g.L)
		if err != nil {
			return nil, err
		}
		r, err := c.translate(g.R)
		if err != nil {
			return nil, err
		}
		all := logic.FreeVars(f)
		if l, err = c.pad(l, all); err != nil {
			return nil, err
		}
		if r, err = c.pad(r, all); err != nil {
			return nil, err
		}
		return &Union{L: l, R: r}, nil
	case logic.Quant:
		if !g.All {
			inner, err := c.translate(g.F)
			if err != nil {
				return nil, err
			}
			return &Project{Child: inner, Keep: logic.FreeVars(f)}, nil
		}
		// ∀x φ  ≡  ¬∃x ¬φ over the active domain.
		inner, err := c.translate(logic.NNF(logic.Not{F: g.F}))
		if err != nil {
			return nil, err
		}
		free := logic.FreeVars(f)
		counter := &Project{Child: inner, Keep: free}
		dom, err := c.pad(Unit{}, free)
		if err != nil {
			return nil, err
		}
		return &Diff{L: dom, R: counter}, nil
	case logic.Implies:
		return nil, fmt.Errorf("implication survived normalization")
	default:
		return nil, fmt.Errorf("cannot translate %T", f)
	}
}

// freeVarsOfAll unions the free variables of fs in first-occurrence order.
func freeVarsOfAll(fs []logic.Formula) []string {
	var out []string
	seen := map[string]bool{}
	for _, f := range fs {
		for _, v := range logic.FreeVars(f) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func flattenAnd(f logic.Formula) []logic.Formula {
	if a, ok := f.(logic.And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []logic.Formula{f}
}

// translateAnd orders a conjunction for efficient evaluation: positive
// relational parts are joined first, comparisons become filters, and
// negations become anti-joins against the accumulated plan — the NOT EXISTS
// shape of the paper's violation queries.
func (c *compiler) translateAnd(conjuncts []logic.Formula) (Plan, error) {
	var positives, negatives, comparisons []logic.Formula
	for _, f := range conjuncts {
		switch g := f.(type) {
		case logic.Not:
			negatives = append(negatives, g.F)
		case logic.Eq, logic.Neq, logic.In:
			comparisons = append(comparisons, f)
		case logic.Truth:
			if !g.Value {
				// Short-circuit, but keep the invariant that a subformula's
				// plan produces exactly its free variables: an enclosing
				// Project or Diff still addresses the conjunction's columns.
				cols := freeVarsOfAll(conjuncts)
				doms := make([]*relation.Domain, len(cols))
				for i, v := range cols {
					d, err := c.domainOf(v)
					if err != nil {
						return nil, err
					}
					doms[i] = d
				}
				return Empty{Cols: cols, Doms: doms}, nil
			}
		case logic.Quant:
			if g.All {
				// A universal conjunct anti-joins as ¬∃¬ against the rest of
				// the conjunction — the NOT EXISTS shape — instead of the
				// active-domain difference the standalone translation uses.
				negatives = append(negatives,
					logic.Quant{All: false, Vars: g.Vars, F: logic.NNF(logic.Not{F: g.F})})
			} else {
				positives = append(positives, f)
			}
		default:
			positives = append(positives, f)
		}
	}
	var plan Plan = Unit{}
	for _, f := range positives {
		p, err := c.translate(f)
		if err != nil {
			return nil, err
		}
		plan = &Join{L: plan, R: p}
	}
	// Comparisons: make sure their variables are bound, then filter.
	for _, f := range comparisons {
		var err error
		if plan, err = c.pad(plan, logic.FreeVars(f)); err != nil {
			return nil, err
		}
		if plan, err = c.applyComparison(plan, f); err != nil {
			return nil, err
		}
	}
	// Negations: anti-join; the outer side must bind the inner variables.
	for _, f := range negatives {
		var err error
		if plan, err = c.pad(plan, logic.FreeVars(f)); err != nil {
			return nil, err
		}
		inner, err := c.translate(f)
		if err != nil {
			return nil, err
		}
		plan = &AntiJoin{L: plan, R: inner}
	}
	return plan, nil
}

func (c *compiler) applyComparison(plan Plan, f logic.Formula) (Plan, error) {
	filter := &Filter{Child: plan}
	switch g := f.(type) {
	case logic.Eq:
		if err := c.fillEq(filter, g.L, g.R, false); err != nil {
			return nil, err
		}
	case logic.Neq:
		if err := c.fillEq(filter, g.L, g.R, true); err != nil {
			return nil, err
		}
	case logic.In:
		v, ok := g.T.(logic.Var)
		if !ok {
			return nil, fmt.Errorf("'in' requires a variable")
		}
		d, err := c.domainOf(v.Name)
		if err != nil {
			return nil, err
		}
		codes := make(map[int32]bool, len(g.Values))
		for _, val := range g.Values {
			if code, ok := d.Code(val); ok {
				codes[code] = true
			}
		}
		filter.InSet = []VarSet{{Var: v.Name, Codes: codes}}
	default:
		return nil, fmt.Errorf("not a comparison: %T", f)
	}
	return filter, nil
}

func (c *compiler) fillEq(filter *Filter, l, r logic.Term, negate bool) error {
	lv, lIsVar := l.(logic.Var)
	rv, rIsVar := r.(logic.Var)
	switch {
	case lIsVar && rIsVar:
		if negate {
			filter.NeqVar = [][2]string{{lv.Name, rv.Name}}
		} else {
			filter.EqVar = [][2]string{{lv.Name, rv.Name}}
		}
	case lIsVar || rIsVar:
		v, cst := lv, r
		if rIsVar {
			v, cst = rv, l
		}
		d, err := c.domainOf(v.Name)
		if err != nil {
			return err
		}
		code, ok := d.Code(cst.(logic.Const).Value)
		vc := VarConst{Var: v.Name, Code: code, Miss: !ok}
		if negate {
			filter.NeqConst = []VarConst{vc}
		} else {
			filter.EqConst = []VarConst{vc}
		}
	default:
		lc, rc := l.(logic.Const), r.(logic.Const)
		eq := lc.Value == rc.Value
		if eq == negate {
			// Constant-false comparison: empty filter result via an
			// unsatisfiable constant condition.
			filter.EqConst = []VarConst{{Miss: true}}
		}
	}
	return nil
}

func (c *compiler) translatePred(p logic.Pred) (Plan, error) {
	b, ok := c.an.Preds[p.Table]
	if !ok {
		return nil, fmt.Errorf("unresolved predicate %s", p.Table)
	}
	s := &Scan{Table: b.Table}
	firstPos := make(map[string]int)
	for i, arg := range p.Args {
		col := b.Cols[i]
		switch a := arg.(type) {
		case logic.Const:
			code, ok := b.Table.ColumnDomain(col).Code(a.Value)
			if !ok {
				// Unknown constant: no tuple can match; an impossible
				// constant filter yields the correctly-typed empty scan.
				s.Consts = append(s.Consts, ConstFilter{Col: col, Code: -1})
				continue
			}
			s.Consts = append(s.Consts, ConstFilter{Col: col, Code: code})
		case logic.Var:
			if j, seen := firstPos[a.Name]; seen {
				s.EqCols = append(s.EqCols, [2]int{b.Cols[j], col})
			} else {
				firstPos[a.Name] = i
				s.OutCols = append(s.OutCols, col)
				s.OutVars = append(s.OutVars, a.Name)
			}
		}
	}
	return s, nil
}
