// Package sqlengine is the SQL baseline of the paper's evaluation: an
// in-memory relational query engine (selection, projection, hash equi-join,
// anti-join for NOT EXISTS, union, difference) plus a compiler from the
// first-order constraint language to algebra plans whose result rows are
// the constraint's violating variable bindings. This is the "express the
// violating tuples as a SELECT" approach of the introduction, against which
// the BDD logical indices are measured.
//
// All operators use set semantics, matching the BDD evaluator.
package sqlengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Rows is a materialized result: named columns over value domains with
// dictionary-encoded data.
type Rows struct {
	Vars []string
	Doms []*relation.Domain
	Data [][]int32
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

// Col returns the position of the named column, or -1.
func (r *Rows) Col(name string) int {
	for i, v := range r.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// Decode renders row i as attribute values.
func (r *Rows) Decode(i int) []string {
	out := make([]string, len(r.Vars))
	for c := range r.Vars {
		out[c] = r.Doms[c].Value(r.Data[i][c])
	}
	return out
}

// Plan is an executable relational-algebra node.
type Plan interface {
	// Run materializes the plan's result.
	Run() (*Rows, error)
	// Vars lists the output column names.
	Vars() []string
	// SQL renders an explanatory SQL-like form of the plan.
	SQL() string
}

// MaxRows caps the size of any intermediate result. Safe-range translation
// of arbitrary first-order constraints can require active-domain products;
// when one would materialize more than MaxRows rows the engine reports
// ErrTooLarge instead of exhausting memory.
const MaxRows = 20_000_000

// ErrTooLarge reports an intermediate result past MaxRows.
var ErrTooLarge = errors.New("sqlengine: intermediate result exceeds the row cap")

func rowKey(row []int32, cols []int) string {
	var buf []byte
	for _, c := range cols {
		buf = binary.AppendVarint(buf, int64(row[c]))
	}
	return string(buf)
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func dedupe(r *Rows) *Rows {
	seen := make(map[string]bool, len(r.Data))
	cols := allCols(len(r.Vars))
	out := r.Data[:0:0]
	for _, row := range r.Data {
		k := rowKey(row, cols)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	r.Data = out
	return r
}

// ConstFilter restricts a scanned column to one code.
type ConstFilter struct {
	Col  int
	Code int32
}

// Scan reads a table, applies constant and duplicate-variable filters, and
// projects columns onto variables (set semantics).
type Scan struct {
	Table *relation.Table
	// Consts are constant equality filters on table columns.
	Consts []ConstFilter
	// EqCols are pairs of table columns that must be equal (a variable
	// repeated inside one predicate).
	EqCols [][2]int
	// OutCols and OutVars are parallel: column OutCols[i] is exported as
	// variable OutVars[i].
	OutCols []int
	OutVars []string
}

// Vars implements Plan.
func (s *Scan) Vars() []string { return s.OutVars }

// Run implements Plan.
func (s *Scan) Run() (*Rows, error) {
	doms := make([]*relation.Domain, len(s.OutCols))
	for i, c := range s.OutCols {
		doms[i] = s.Table.ColumnDomain(c)
	}
	out := &Rows{Vars: s.OutVars, Doms: doms}
	for i := 0; i < s.Table.Len(); i++ {
		row := s.Table.Row(i)
		ok := true
		for _, f := range s.Consts {
			if row[f.Col] != f.Code {
				ok = false
				break
			}
		}
		if ok {
			for _, e := range s.EqCols {
				if row[e[0]] != row[e[1]] {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		proj := make([]int32, len(s.OutCols))
		for j, c := range s.OutCols {
			proj[j] = row[c]
		}
		out.Data = append(out.Data, proj)
	}
	return dedupe(out), nil
}

// SQL implements Plan.
func (s *Scan) SQL() string {
	var conds []string
	names := s.Table.ColumnNames()
	for _, f := range s.Consts {
		conds = append(conds, fmt.Sprintf("%s = %q", names[f.Col], s.Table.ColumnDomain(f.Col).Value(f.Code)))
	}
	for _, e := range s.EqCols {
		conds = append(conds, fmt.Sprintf("%s = %s", names[e[0]], names[e[1]]))
	}
	cols := make([]string, len(s.OutCols))
	for i, c := range s.OutCols {
		cols[i] = fmt.Sprintf("%s AS %s", names[c], s.OutVars[i])
	}
	q := fmt.Sprintf("SELECT DISTINCT %s FROM %s", strings.Join(cols, ", "), s.Table.Name())
	if len(conds) > 0 {
		q += " WHERE " + strings.Join(conds, " AND ")
	}
	return q
}

// DomainScan produces one column holding every value of a domain — the
// active-domain fallback used when a variable is constrained only by
// comparisons in the current subformula.
type DomainScan struct {
	Var string
	Dom *relation.Domain
}

// Vars implements Plan.
func (d *DomainScan) Vars() []string { return []string{d.Var} }

// Run implements Plan.
func (d *DomainScan) Run() (*Rows, error) {
	out := &Rows{Vars: []string{d.Var}, Doms: []*relation.Domain{d.Dom}}
	for c := 0; c < d.Dom.Size(); c++ {
		out.Data = append(out.Data, []int32{int32(c)})
	}
	return out, nil
}

// SQL implements Plan.
func (d *DomainScan) SQL() string {
	return fmt.Sprintf("SELECT value AS %s FROM DOMAIN(%s)", d.Var, d.Dom.Name())
}

// Join is a natural hash join on the columns with equal variable names.
type Join struct {
	L, R Plan
}

// Vars implements Plan.
func (j *Join) Vars() []string {
	vars := append([]string(nil), j.L.Vars()...)
	lset := make(map[string]bool, len(vars))
	for _, v := range vars {
		lset[v] = true
	}
	for _, v := range j.R.Vars() {
		if !lset[v] {
			vars = append(vars, v)
		}
	}
	return vars
}

// Run implements Plan.
func (j *Join) Run() (*Rows, error) {
	l, err := j.L.Run()
	if err != nil {
		return nil, err
	}
	r, err := j.R.Run()
	if err != nil {
		return nil, err
	}
	var lShared, rShared []int
	var rExtra []int
	for ri, v := range r.Vars {
		if li := l.Col(v); li >= 0 {
			lShared = append(lShared, li)
			rShared = append(rShared, ri)
		} else {
			rExtra = append(rExtra, ri)
		}
	}
	out := &Rows{Vars: append([]string(nil), l.Vars...)}
	out.Doms = append([]*relation.Domain(nil), l.Doms...)
	for _, ri := range rExtra {
		out.Vars = append(out.Vars, r.Vars[ri])
		out.Doms = append(out.Doms, r.Doms[ri])
	}
	// Build on the smaller side.
	build, probe := r, l
	buildShared, probeShared := rShared, lShared
	swapped := false
	if l.Len() < r.Len() {
		build, probe = l, r
		buildShared, probeShared = lShared, rShared
		swapped = true
	}
	ht := make(map[string][]int, build.Len())
	for i, row := range build.Data {
		k := rowKey(row, buildShared)
		ht[k] = append(ht[k], i)
	}
	for _, prow := range probe.Data {
		for _, bi := range ht[rowKey(prow, probeShared)] {
			brow := build.Data[bi]
			lrow, rrow := prow, brow
			if swapped {
				lrow, rrow = brow, prow
			}
			merged := make([]int32, 0, len(out.Vars))
			merged = append(merged, lrow...)
			for _, ri := range rExtra {
				merged = append(merged, rrow[ri])
			}
			out.Data = append(out.Data, merged)
			if len(out.Data) > MaxRows {
				return nil, fmt.Errorf("%w: join of %s", ErrTooLarge, strings.Join(out.Vars, ","))
			}
		}
	}
	return dedupe(out), nil
}

// SQL implements Plan.
func (j *Join) SQL() string {
	return fmt.Sprintf("(%s)\nNATURAL JOIN\n(%s)", j.L.SQL(), j.R.SQL())
}

// AntiJoin keeps the rows of L with no R row matching on the variables the
// two sides share — the algebraic form of NOT EXISTS. Inner variables not
// produced by L act as existentials of the inner query. With no shared
// variables the inner side is a boolean guard: a nonempty R empties the
// result.
type AntiJoin struct {
	L, R Plan
}

// Vars implements Plan.
func (a *AntiJoin) Vars() []string { return a.L.Vars() }

// Run implements Plan.
func (a *AntiJoin) Run() (*Rows, error) {
	l, err := a.L.Run()
	if err != nil {
		return nil, err
	}
	r, err := a.R.Run()
	if err != nil {
		return nil, err
	}
	var lShared, rShared []int
	for ri, v := range r.Vars {
		if li := l.Col(v); li >= 0 {
			lShared = append(lShared, li)
			rShared = append(rShared, ri)
		}
	}
	if len(lShared) == 0 && r.Len() > 0 {
		return &Rows{Vars: l.Vars, Doms: l.Doms}, nil
	}
	ht := make(map[string]bool, r.Len())
	for _, row := range r.Data {
		ht[rowKey(row, rShared)] = true
	}
	out := &Rows{Vars: l.Vars, Doms: l.Doms}
	for _, row := range l.Data {
		if !ht[rowKey(row, lShared)] {
			out.Data = append(out.Data, row)
		}
	}
	return out, nil
}

// SQL implements Plan.
func (a *AntiJoin) SQL() string {
	shared := sharedVars(a.L.Vars(), a.R.Vars())
	return fmt.Sprintf("(%s)\nWHERE NOT EXISTS (%s matching on %s)",
		a.L.SQL(), a.R.SQL(), strings.Join(shared, ", "))
}

func sharedVars(l, r []string) []string {
	set := make(map[string]bool, len(l))
	for _, v := range l {
		set[v] = true
	}
	var out []string
	for _, v := range r {
		if set[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Project keeps only the named variables (set semantics).
type Project struct {
	Child Plan
	Keep  []string
}

// Vars implements Plan.
func (p *Project) Vars() []string { return p.Keep }

// Run implements Plan.
func (p *Project) Run() (*Rows, error) {
	in, err := p.Child.Run()
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(p.Keep))
	doms := make([]*relation.Domain, len(p.Keep))
	for i, v := range p.Keep {
		c := in.Col(v)
		if c < 0 {
			return nil, fmt.Errorf("sqlengine: project: unknown variable %s", v)
		}
		cols[i] = c
		doms[i] = in.Doms[c]
	}
	out := &Rows{Vars: p.Keep, Doms: doms}
	for _, row := range in.Data {
		proj := make([]int32, len(cols))
		for i, c := range cols {
			proj[i] = row[c]
		}
		out.Data = append(out.Data, proj)
	}
	return dedupe(out), nil
}

// SQL implements Plan.
func (p *Project) SQL() string {
	return fmt.Sprintf("SELECT DISTINCT %s FROM (%s)", strings.Join(p.Keep, ", "), p.Child.SQL())
}

// Union is set union; both sides must produce the same variables (in any
// order).
type Union struct {
	L, R Plan
}

// Vars implements Plan.
func (u *Union) Vars() []string { return u.L.Vars() }

// Run implements Plan.
func (u *Union) Run() (*Rows, error) {
	l, err := u.L.Run()
	if err != nil {
		return nil, err
	}
	r, err := u.R.Run()
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(l.Vars))
	for i, v := range l.Vars {
		c := r.Col(v)
		if c < 0 {
			return nil, fmt.Errorf("sqlengine: union: variable %s missing on the right side", v)
		}
		cols[i] = c
	}
	out := &Rows{Vars: l.Vars, Doms: l.Doms, Data: append([][]int32(nil), l.Data...)}
	for _, row := range r.Data {
		aligned := make([]int32, len(cols))
		for i, c := range cols {
			aligned[i] = row[c]
		}
		out.Data = append(out.Data, aligned)
	}
	return dedupe(out), nil
}

// SQL implements Plan.
func (u *Union) SQL() string {
	return fmt.Sprintf("(%s)\nUNION\n(%s)", u.L.SQL(), u.R.SQL())
}

// Diff is set difference; both sides must produce the same variables.
type Diff struct {
	L, R Plan
}

// Vars implements Plan.
func (d *Diff) Vars() []string { return d.L.Vars() }

// Run implements Plan.
func (d *Diff) Run() (*Rows, error) {
	l, err := d.L.Run()
	if err != nil {
		return nil, err
	}
	r, err := d.R.Run()
	if err != nil {
		return nil, err
	}
	cols := make([]int, len(l.Vars))
	for i, v := range l.Vars {
		c := r.Col(v)
		if c < 0 {
			return nil, fmt.Errorf("sqlengine: difference: variable %s missing on the right side", v)
		}
		cols[i] = c
	}
	ht := make(map[string]bool, r.Len())
	for _, row := range r.Data {
		aligned := make([]int32, len(cols))
		for i, c := range cols {
			aligned[i] = row[c]
		}
		ht[rowKey(aligned, allCols(len(cols)))] = true
	}
	out := &Rows{Vars: l.Vars, Doms: l.Doms}
	full := allCols(len(l.Vars))
	for _, row := range l.Data {
		if !ht[rowKey(row, full)] {
			out.Data = append(out.Data, row)
		}
	}
	return dedupe(out), nil
}

// SQL implements Plan.
func (d *Diff) SQL() string {
	return fmt.Sprintf("(%s)\nEXCEPT\n(%s)", d.L.SQL(), d.R.SQL())
}

// Filter applies comparison predicates to its child's rows.
type Filter struct {
	Child Plan
	// EqVar pairs of variables that must be equal; NeqVar that must differ.
	EqVar  [][2]string
	NeqVar [][2]string
	// EqConst/NeqConst: variable = / != code.
	EqConst  []VarConst
	NeqConst []VarConst
	// InSet: variable ∈ codes.
	InSet []VarSet
}

// VarConst pairs a variable with a constant code.
type VarConst struct {
	Var  string
	Code int32
	// Miss marks a constant that does not occur in the variable's domain
	// dictionary: equality is then unsatisfiable, inequality a tautology.
	Miss bool
}

// VarSet pairs a variable with a set of constant codes.
type VarSet struct {
	Var   string
	Codes map[int32]bool
}

// Vars implements Plan.
func (f *Filter) Vars() []string { return f.Child.Vars() }

// Run implements Plan.
func (f *Filter) Run() (*Rows, error) {
	in, err := f.Child.Run()
	if err != nil {
		return nil, err
	}
	col := func(v string) (int, error) {
		c := in.Col(v)
		if c < 0 {
			return 0, fmt.Errorf("sqlengine: filter: unknown variable %s", v)
		}
		return c, nil
	}
	out := &Rows{Vars: in.Vars, Doms: in.Doms}
rows:
	for _, row := range in.Data {
		for _, p := range f.EqVar {
			a, err := col(p[0])
			if err != nil {
				return nil, err
			}
			b, err := col(p[1])
			if err != nil {
				return nil, err
			}
			if row[a] != row[b] {
				continue rows
			}
		}
		for _, p := range f.NeqVar {
			a, err := col(p[0])
			if err != nil {
				return nil, err
			}
			b, err := col(p[1])
			if err != nil {
				return nil, err
			}
			if row[a] == row[b] {
				continue rows
			}
		}
		for _, p := range f.EqConst {
			if p.Miss {
				continue rows
			}
			c, err := col(p.Var)
			if err != nil {
				return nil, err
			}
			if row[c] != p.Code {
				continue rows
			}
		}
		for _, p := range f.NeqConst {
			if p.Miss {
				continue
			}
			c, err := col(p.Var)
			if err != nil {
				return nil, err
			}
			if row[c] == p.Code {
				continue rows
			}
		}
		for _, p := range f.InSet {
			c, err := col(p.Var)
			if err != nil {
				return nil, err
			}
			if !p.Codes[row[c]] {
				continue rows
			}
		}
		out.Data = append(out.Data, row)
	}
	return out, nil
}

// SQL implements Plan.
func (f *Filter) SQL() string {
	var conds []string
	for _, p := range f.EqVar {
		conds = append(conds, fmt.Sprintf("%s = %s", p[0], p[1]))
	}
	for _, p := range f.NeqVar {
		conds = append(conds, fmt.Sprintf("%s <> %s", p[0], p[1]))
	}
	for _, p := range f.EqConst {
		conds = append(conds, fmt.Sprintf("%s = code(%d)", p.Var, p.Code))
	}
	for _, p := range f.NeqConst {
		conds = append(conds, fmt.Sprintf("%s <> code(%d)", p.Var, p.Code))
	}
	for _, p := range f.InSet {
		conds = append(conds, fmt.Sprintf("%s IN (%d values)", p.Var, len(p.Codes)))
	}
	return fmt.Sprintf("SELECT * FROM (%s) WHERE %s", f.Child.SQL(), strings.Join(conds, " AND "))
}

// Unit is the zero-column relation with one row (the neutral element of
// natural join, the translation of "true").
type Unit struct{}

// Vars implements Plan.
func (Unit) Vars() []string { return nil }

// Run implements Plan.
func (Unit) Run() (*Rows, error) {
	return &Rows{Data: [][]int32{{}}}, nil
}

// SQL implements Plan.
func (Unit) SQL() string { return "SELECT 1" }

// Empty is the zero-column empty relation (the translation of "false").
type Empty struct {
	Cols []string
	// Doms carries the value domains of Cols; consumers like Union take
	// column metadata from whichever side they visit first, so an Empty
	// standing in for a short-circuited subformula must still describe its
	// columns fully.
	Doms []*relation.Domain
}

// Vars implements Plan.
func (e Empty) Vars() []string { return e.Cols }

// Run implements Plan.
func (e Empty) Run() (*Rows, error) {
	doms := e.Doms
	if len(doms) != len(e.Cols) {
		doms = make([]*relation.Domain, len(e.Cols))
	}
	return &Rows{Vars: e.Cols, Doms: doms}, nil
}

// SQL implements Plan.
func (e Empty) SQL() string { return "SELECT NULL WHERE FALSE" }
