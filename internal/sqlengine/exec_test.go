package sqlengine_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

func deck(t *testing.T) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	r, err := cat.CreateTable("R", []relation.Column{
		{Name: "a", Domain: "D1"}, {Name: "b", Domain: "D2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.CreateTable("S", []relation.Column{
		{Name: "b", Domain: "D2"}, {Name: "c", Domain: "D3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Insert("a1", "b1")
	r.Insert("a1", "b2")
	r.Insert("a2", "b1")
	r.Insert("a2", "b1") // duplicate
	s.Insert("b1", "c1")
	s.Insert("b2", "c2")
	s.Insert("b3", "c1")
	return cat
}

func rowSet(r *sqlengine.Rows) []string {
	var out []string
	for i := 0; i < r.Len(); i++ {
		out = append(out, strings.Join(r.Decode(i), "|"))
	}
	sort.Strings(out)
	return out
}

func scan(t *testing.T, cat *relation.Catalog, table string, vars ...string) *sqlengine.Scan {
	t.Helper()
	tbl := cat.Table(table)
	s := &sqlengine.Scan{Table: tbl}
	for i, v := range vars {
		s.OutCols = append(s.OutCols, i)
		s.OutVars = append(s.OutVars, v)
	}
	return s
}

func TestScanDedupes(t *testing.T) {
	cat := deck(t)
	rows, err := scan(t, cat, "R", "x", "y").Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("scan should dedupe: got %d rows", rows.Len())
	}
}

func TestScanConstFilter(t *testing.T) {
	cat := deck(t)
	s := scan(t, cat, "R", "x", "y")
	code, _ := cat.Domain("D1").Code("a1")
	s.Consts = []sqlengine.ConstFilter{{Col: 0, Code: code}}
	rows, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := rowSet(rows)
	want := []string{"a1|b1", "a1|b2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNaturalJoin(t *testing.T) {
	cat := deck(t)
	j := &sqlengine.Join{
		L: scan(t, cat, "R", "x", "y"),
		R: scan(t, cat, "S", "y", "z"),
	}
	rows, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := rowSet(rows)
	want := []string{"a1|b1|c1", "a1|b2|c2", "a2|b1|c1"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("join got %v, want %v", got, want)
	}
}

func TestCrossJoinNoSharedVars(t *testing.T) {
	cat := deck(t)
	j := &sqlengine.Join{
		L: scan(t, cat, "R", "x", "y"),
		R: scan(t, cat, "S", "u", "z"),
	}
	rows, err := j.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3*3 {
		t.Fatalf("cross product size %d, want 9", rows.Len())
	}
}

func TestAntiJoin(t *testing.T) {
	cat := deck(t)
	a := &sqlengine.AntiJoin{
		L: scan(t, cat, "R", "x", "y"),
		R: scan(t, cat, "S", "y", "z"),
	}
	// R rows whose b has no S partner: none (b1 and b2 both appear in S).
	rows, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Fatalf("anti-join got %d rows, want 0", rows.Len())
	}
	// Remove S(b2, c2): now R(a1,b2) survives.
	cat.Table("S").Delete("b2", "c2")
	rows, err = a.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := rowSet(rows)
	if len(got) != 1 || got[0] != "a1|b2" {
		t.Fatalf("anti-join got %v", got)
	}
}

func TestProjectUnionDiff(t *testing.T) {
	cat := deck(t)
	p := &sqlengine.Project{Child: scan(t, cat, "R", "x", "y"), Keep: []string{"y"}}
	rows, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("project got %d rows, want 2", rows.Len())
	}
	sb := &sqlengine.Project{Child: scan(t, cat, "S", "y", "z"), Keep: []string{"y"}}
	u := &sqlengine.Union{L: p, R: sb}
	rows, err = u.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 { // b1, b2, b3
		t.Fatalf("union got %d rows, want 3", rows.Len())
	}
	d := &sqlengine.Diff{L: sb, R: p}
	rows, err = d.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := rowSet(rows)
	if len(got) != 1 || got[0] != "b3" {
		t.Fatalf("diff got %v", got)
	}
}

func TestDomainScan(t *testing.T) {
	cat := deck(t)
	ds := &sqlengine.DomainScan{Var: "x", Dom: cat.Domain("D1")}
	rows, err := ds.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != cat.Domain("D1").Size() {
		t.Fatalf("domain scan got %d rows", rows.Len())
	}
}

func TestFilter(t *testing.T) {
	cat := deck(t)
	code, _ := cat.Domain("D2").Code("b1")
	f := &sqlengine.Filter{
		Child:   scan(t, cat, "R", "x", "y"),
		EqConst: []sqlengine.VarConst{{Var: "y", Code: code}},
	}
	rows, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("filter got %d rows, want 2", rows.Len())
	}
	fm := &sqlengine.Filter{
		Child:   scan(t, cat, "R", "x", "y"),
		EqConst: []sqlengine.VarConst{{Var: "y", Miss: true}},
	}
	rows, err = fm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Fatal("missing-constant equality should yield no rows")
	}
}

func TestCompiledInclusionQuery(t *testing.T) {
	cat := deck(t)
	f, err := logic.Parse(`forall x, y: R(x, y) => exists z: S(y, z)`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlengine.Compile(logic.Constraint{Name: "inc", F: f},
		logic.CatalogResolver{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	violated, rows, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatalf("constraint should hold, got violations %v", rowSet(rows))
	}
	// Break it.
	cat.Table("S").Delete("b2", "c2")
	violated, rows, err = q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Fatal("constraint should be violated")
	}
	got := rowSet(rows)
	if len(got) != 1 || got[0] != "a1|b2" {
		t.Fatalf("violations = %v", got)
	}
	// Witness variables are the leading universals.
	if len(q.Witnesses) != 2 {
		t.Fatalf("witnesses = %v", q.Witnesses)
	}
	// The SQL rendering mentions the anti-join shape.
	if !strings.Contains(q.SQL(), "NOT EXISTS") {
		t.Fatalf("SQL rendering lacks NOT EXISTS:\n%s", q.SQL())
	}
}

func TestCompiledDisjunctionAndNegation(t *testing.T) {
	cat := deck(t)
	f, err := logic.Parse(`forall x, y: R(x, y) => (y = "b1" or not S(y, "c2"))`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlengine.Compile(logic.Constraint{Name: "dn", F: f},
		logic.CatalogResolver{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	violated, rows, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Violation needs R(x,y) with y != b1 and S(y,"c2"): R(a1,b2), S(b2,c2).
	if !violated || rows.Len() != 1 {
		t.Fatalf("violated=%v rows=%v", violated, rowSet(rows))
	}
}

func TestCompiledExistentialConstraint(t *testing.T) {
	cat := deck(t)
	f, err := logic.Parse(`exists x: R(x, "b2")`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlengine.Compile(logic.Constraint{Name: "ex", F: f},
		logic.CatalogResolver{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	violated, _, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("existence holds, must not be violated")
	}
	cat.Table("R").Delete("a1", "b2")
	violated, _, err = q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !violated {
		t.Fatal("existence no longer holds")
	}
}
