package fdd_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
	"repro/internal/fdd"
)

// quick_test.go: property-based tests over the finite-domain encoding.

// qRelation is a random small relation for quick.Check properties.
type qRelation struct {
	sizes []int   // domain sizes
	rows  [][]int // tuples, values within the domain sizes
}

func relationConfig(seed int64) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 80,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				cols := 1 + rng.Intn(3)
				sizes := make([]int, cols)
				for c := range sizes {
					sizes[c] = 2 + rng.Intn(14)
				}
				n := rng.Intn(40)
				rows := make([][]int, n)
				for j := range rows {
					row := make([]int, cols)
					for c := range row {
						row[c] = rng.Intn(sizes[c])
					}
					rows[j] = row
				}
				args[i] = reflect.ValueOf(qRelation{sizes: sizes, rows: rows})
			}
		},
	}
}

func buildRel(t *testing.T, q qRelation) (*bdd.Kernel, []*fdd.Domain, bdd.Ref) {
	t.Helper()
	k := bdd.New(bdd.Config{Vars: 0})
	s := fdd.NewSpace(k)
	doms := make([]*fdd.Domain, len(q.sizes))
	for i, size := range q.sizes {
		doms[i] = s.NewDomain("d", size)
	}
	f, err := fdd.Relation(doms, q.rows)
	if err != nil {
		t.Fatal(err)
	}
	return k, doms, f
}

// TestQuickRelationCardinality: the model count of the relation BDD equals
// the number of distinct tuples.
func TestQuickRelationCardinality(t *testing.T) {
	property := func(q qRelation) bool {
		k, _, f := buildRel(t, q)
		distinct := map[string]bool{}
		for _, row := range q.rows {
			key := ""
			for _, v := range row {
				key += string(rune(v)) + ","
			}
			distinct[key] = true
		}
		return k.SatCount(f) == float64(len(distinct))
	}
	if err := quick.Check(property, relationConfig(11)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMembership: every inserted tuple satisfies the BDD; random
// uninserted tuples do not.
func TestQuickMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	property := func(q qRelation) bool {
		k, doms, f := buildRel(t, q)
		present := map[string]bool{}
		keyOf := func(row []int) string {
			key := ""
			for _, v := range row {
				key += string(rune(v)) + ","
			}
			return key
		}
		for _, row := range q.rows {
			present[keyOf(row)] = true
		}
		check := func(row []int) bool {
			asn := make([]bool, k.NumVars())
			for _, l := range fdd.Tuple(doms, row) {
				asn[l.Var] = l.Value
			}
			return k.Eval(f, asn)
		}
		for _, row := range q.rows {
			if !check(row) {
				return false
			}
		}
		for trial := 0; trial < 10; trial++ {
			row := make([]int, len(doms))
			for c := range row {
				row[c] = rng.Intn(q.sizes[c])
			}
			if check(row) != present[keyOf(row)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, relationConfig(17)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertDeleteRoundTrip: OR-ing a fresh minterm then removing it
// returns the identical canonical BDD.
func TestQuickInsertDeleteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	property := func(q qRelation) bool {
		k, doms, f := buildRel(t, q)
		// Find a tuple not in the relation (domains are tiny, so bail out
		// if the relation is saturated).
		var fresh []int
		for trial := 0; trial < 50; trial++ {
			row := make([]int, len(doms))
			for c := range row {
				row[c] = rng.Intn(q.sizes[c])
			}
			asn := make([]bool, k.NumVars())
			for _, l := range fdd.Tuple(doms, row) {
				asn[l.Var] = l.Value
			}
			if !k.Eval(f, asn) {
				fresh = row
				break
			}
		}
		if fresh == nil {
			return true
		}
		m := fdd.Minterm(doms, fresh)
		g := k.Or(f, m)
		back := k.Diff(g, m)
		return back == f
	}
	if err := quick.Check(property, relationConfig(23)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLessConst: the comparator BDD accepts exactly the values below
// the constant.
func TestQuickLessConst(t *testing.T) {
	property := func(sizeRaw uint8, cRaw uint8) bool {
		size := 2 + int(sizeRaw)%60
		c := int(cRaw) % (size + 4)
		k := bdd.New(bdd.Config{Vars: 0})
		s := fdd.NewSpace(k)
		d := s.NewDomain("x", size)
		f := d.LessConst(c)
		for v := 0; v < 1<<d.Bits(); v++ {
			asn := make([]bool, k.NumVars())
			for _, l := range d.Lits(v) {
				asn[l.Var] = l.Value
			}
			if k.Eval(f, asn) != (v < c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProjectionCommutes: ∃ over one domain of the relation BDD equals
// the BDD of the projected rows.
func TestQuickProjectionCommutes(t *testing.T) {
	property := func(q qRelation) bool {
		if len(q.sizes) < 2 {
			return true
		}
		k, doms, f := buildRel(t, q)
		proj := fdd.Exists(f, doms[0])
		var rows [][]int
		for _, row := range q.rows {
			rows = append(rows, row[1:])
		}
		want, err := fdd.Relation(doms[1:], rows)
		if err != nil {
			return false
		}
		_ = k
		return proj == want
	}
	if err := quick.Check(property, relationConfig(29)); err != nil {
		t.Fatal(err)
	}
}
