package fdd_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fdd"
)

func newSpace() (*bdd.Kernel, *fdd.Space) {
	k := bdd.New(bdd.Config{Vars: 0})
	return k, fdd.NewSpace(k)
}

func TestDomainBits(t *testing.T) {
	_, s := newSpace()
	cases := []struct{ size, bits int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {100, 7}, {281, 9}, {10894, 14}, {17557, 15}, {50, 6},
	}
	for _, c := range cases {
		d := s.NewDomain("d", c.size)
		if d.Bits() != c.bits {
			t.Errorf("size %d: bits = %d, want %d", c.size, d.Bits(), c.bits)
		}
	}
}

func TestCustomerIndexBitWidths(t *testing.T) {
	// The paper's two logical indices: (areacode, city, state) needs
	// 9+14+6 = 29 boolean variables, (city, state, zipcode) needs
	// 14+6+15 = 35.
	_, s := newSpace()
	total := 0
	for _, size := range []int{281, 10894, 50} {
		total += s.NewDomain("a", size).Bits()
	}
	if total != 29 {
		t.Errorf("ncs index: %d vars, want 29", total)
	}
	total = 0
	for _, size := range []int{10894, 50, 17557} {
		total += s.NewDomain("b", size).Bits()
	}
	if total != 35 {
		t.Errorf("csz index: %d vars, want 35", total)
	}
}

func TestEqConst(t *testing.T) {
	k, s := newSpace()
	d := s.NewDomain("x", 10)
	for v := 0; v < 10; v++ {
		f := d.EqConst(v)
		for w := 0; w < 10; w++ {
			a := make([]bool, k.NumVars())
			for _, l := range d.Lits(w) {
				a[l.Var] = l.Value
			}
			if k.Eval(f, a) != (v == w) {
				t.Fatalf("EqConst(%d) evaluated at %d wrong", v, w)
			}
		}
	}
}

func TestAmong(t *testing.T) {
	k, s := newSpace()
	d := s.NewDomain("x", 64)
	set := []int{3, 17, 42, 63, 0}
	f := d.Among(set)
	in := map[int]bool{}
	for _, v := range set {
		in[v] = true
	}
	for w := 0; w < 64; w++ {
		a := make([]bool, k.NumVars())
		for _, l := range d.Lits(w) {
			a[l.Var] = l.Value
		}
		if k.Eval(f, a) != in[w] {
			t.Fatalf("Among wrong at %d", w)
		}
	}
	if d.Among(nil) != bdd.False {
		t.Fatal("empty Among must be False")
	}
	if got := k.SatCount(f); got != float64(len(set)) {
		t.Fatalf("Among SatCount = %v, want %d", got, len(set))
	}
}

func TestEqVarConsecutiveVsInterleaved(t *testing.T) {
	// Consecutive blocks: x=y BDD is exponential in bits.
	// Interleaved blocks: linear in bits. This size gap is the motivation
	// for the paper's rename-based join rewrite.
	k1, s1 := newSpace()
	x1 := s1.NewDomain("x", 256)
	y1 := s1.NewDomain("y", 256)
	eqCons := fdd.EqVar(x1, y1)
	k2, s2 := newSpace()
	ds := s2.NewInterleavedDomains([]string{"x", "y"}, 256)
	eqInter := fdd.EqVar(ds[0], ds[1])
	cons, inter := k1.NodeCount(eqCons), k2.NodeCount(eqInter)
	if cons <= inter*4 {
		t.Fatalf("expected consecutive equality BDD to be much larger: consecutive=%d interleaved=%d", cons, inter)
	}
	if inter > 3*8+1 {
		t.Fatalf("interleaved equality BDD too large: %d nodes", inter)
	}
	// Semantics: both must accept exactly the diagonal.
	count := k1.SatCount(eqCons)
	if count != 256 {
		t.Fatalf("consecutive equality has %v models, want 256", count)
	}
	if k2.SatCount(eqInter) != 256 {
		t.Fatal("interleaved equality model count wrong")
	}
}

func TestEqVarSemantics(t *testing.T) {
	k, s := newSpace()
	x := s.NewDomain("x", 8)
	y := s.NewDomain("y", 8)
	f := fdd.EqVar(x, y)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			asn := make([]bool, k.NumVars())
			for _, l := range x.Lits(a) {
				asn[l.Var] = l.Value
			}
			for _, l := range y.Lits(b) {
				asn[l.Var] = l.Value
			}
			if k.Eval(f, asn) != (a == b) {
				t.Fatalf("EqVar wrong at (%d,%d)", a, b)
			}
		}
	}
}

func TestMintermAndValueRoundTrip(t *testing.T) {
	k, s := newSpace()
	doms := []*fdd.Domain{s.NewDomain("a", 10), s.NewDomain("b", 100), s.NewDomain("c", 3)}
	vals := []int{7, 93, 2}
	m := fdd.Minterm(doms, vals)
	lits, ok := k.AnySat(m)
	if !ok {
		t.Fatal("minterm unsatisfiable")
	}
	a := make([]bool, k.NumVars())
	for _, l := range lits {
		a[l.Var] = l.Value
	}
	for i, d := range doms {
		if d.Value(a) != vals[i] {
			t.Fatalf("domain %d decoded %d, want %d", i, d.Value(a), vals[i])
		}
	}
	if k.SatCount(m) != 1 {
		t.Fatalf("minterm SatCount = %v", k.SatCount(m))
	}
}

func TestRelationMatchesPerTupleOr(t *testing.T) {
	k, s := newSpace()
	doms := []*fdd.Domain{s.NewDomain("a", 16), s.NewDomain("b", 16), s.NewDomain("c", 16)}
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int, 200)
	for i := range rows {
		rows[i] = []int{rng.Intn(16), rng.Intn(16), rng.Intn(16)}
	}
	bulk, err := fdd.Relation(doms, rows)
	if err != nil {
		t.Fatalf("Relation: %v", err)
	}
	inc := bdd.False
	for _, row := range rows {
		inc = k.Or(inc, fdd.Minterm(doms, row))
	}
	if bulk != inc {
		t.Fatal("bulk relation != OR of minterms")
	}
}

func TestRelationDuplicatesAndEmpty(t *testing.T) {
	k, s := newSpace()
	doms := []*fdd.Domain{s.NewDomain("a", 4), s.NewDomain("b", 4)}
	f, err := fdd.Relation(doms, [][]int{{1, 2}, {1, 2}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if k.SatCount(f) != 2 {
		t.Fatalf("duplicate rows must collapse: SatCount = %v", k.SatCount(f))
	}
	empty, err := fdd.Relation(doms, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty != bdd.False {
		t.Fatal("empty relation must be False")
	}
}

func TestRelationRejectsBadRows(t *testing.T) {
	_, s := newSpace()
	doms := []*fdd.Domain{s.NewDomain("a", 4)}
	if _, err := fdd.Relation(doms, [][]int{{1, 2}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := fdd.Relation(doms, [][]int{{-1}}); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := fdd.Relation(doms, [][]int{{4}}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
}

func TestQuantification(t *testing.T) {
	k, s := newSpace()
	a := s.NewDomain("a", 8)
	b := s.NewDomain("b", 8)
	rel, err := fdd.Relation([]*fdd.Domain{a, b}, [][]int{{1, 2}, {1, 5}, {3, 7}})
	if err != nil {
		t.Fatal(err)
	}
	// ∃b R(a,b) is the projection onto a: {1, 3}.
	proj := fdd.Exists(rel, b)
	if proj != a.Among([]int{1, 3}) {
		t.Fatal("projection via Exists wrong")
	}
	// ∀b R(a,b) is empty: no a relates to every b.
	if fdd.Forall(rel, b) != bdd.False {
		t.Fatal("Forall should be empty")
	}
	// ∀a∀b over the full space.
	if fdd.Forall(bdd.True, a, b) != bdd.True {
		t.Fatal("Forall of True must be True")
	}
	_ = k
}

func TestReplaceMapRenamesRelation(t *testing.T) {
	k, s := newSpace()
	a := s.NewDomain("a", 32)
	b := s.NewDomain("b", 32)
	rows := [][]int{{1}, {17}, {31}}
	relA, err := fdd.Relation([]*fdd.Domain{a}, rows)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fdd.ReplaceMap([]*fdd.Domain{a}, []*fdd.Domain{b})
	if err != nil {
		t.Fatalf("ReplaceMap: %v", err)
	}
	relB := k.Replace(relA, m)
	want, err := fdd.Relation([]*fdd.Domain{b}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if relB != want {
		t.Fatal("renamed relation differs from direct construction")
	}
}

func TestReplaceMapWidthMismatch(t *testing.T) {
	_, s := newSpace()
	a := s.NewDomain("a", 32)
	c := s.NewDomain("c", 4)
	if _, err := fdd.ReplaceMap([]*fdd.Domain{a}, []*fdd.Domain{c}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestRelationUnderBudgetAborts(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 0, NodeBudget: 32})
	s := fdd.NewSpace(k)
	doms := []*fdd.Domain{s.NewDomain("a", 256), s.NewDomain("b", 256)}
	rng := rand.New(rand.NewSource(2))
	rows := make([][]int, 500)
	for i := range rows {
		rows[i] = []int{rng.Intn(256), rng.Intn(256)}
	}
	_, err := fdd.Relation(doms, rows)
	if err == nil {
		t.Fatal("expected budget error")
	}
	if !errors.Is(k.Err(), bdd.ErrBudget) {
		t.Fatalf("kernel error = %v, want ErrBudget", k.Err())
	}
}

func TestInterleavedDomainValueDecode(t *testing.T) {
	k, s := newSpace()
	ds := s.NewInterleavedDomains([]string{"x", "y", "z"}, 100)
	m := fdd.Minterm(ds, []int{42, 7, 99})
	lits, _ := k.AnySat(m)
	a := make([]bool, k.NumVars())
	for _, l := range lits {
		a[l.Var] = l.Value
	}
	for i, want := range []int{42, 7, 99} {
		if got := ds[i].Value(a); got != want {
			t.Fatalf("interleaved domain %d decoded %d, want %d", i, got, want)
		}
	}
}
