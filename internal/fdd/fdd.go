// Package fdd layers finite-domain variables over the boolean BDD kernel.
//
// A finite-domain variable x with |dom(x)| = d is encoded as a block of
// ⌈log₂ d⌉ boolean variables holding the binary representation of x's value
// (the paper's "finite domain block", §2.1). The package provides the
// relational encodings the paper builds on: value equality (x = a), block
// equality (x = y), membership in a value set, block quantification, block
// renaming, and the bulk construction of a relation's characteristic
// function from its tuples.
package fdd

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
)

// Space allocates finite-domain blocks inside a shared kernel. Blocks are
// appended in allocation order, so the caller chooses the BDD variable
// ordering by choosing the order in which it creates domains.
type Space struct {
	k       *bdd.Kernel
	domains []*Domain
}

// NewSpace creates an empty Space over k.
func NewSpace(k *bdd.Kernel) *Space {
	return &Space{k: k}
}

// Kernel returns the underlying boolean kernel.
func (s *Space) Kernel() *bdd.Kernel { return s.k }

// Domains returns the domains allocated so far, in allocation order.
func (s *Space) Domains() []*Domain { return s.domains }

// Domain is one finite-domain variable: a named block of boolean variables.
type Domain struct {
	space *Space
	name  string
	size  int
	vars  []int // kernel variables, most significant bit first
}

// Bits returns the number of boolean variables in the block.
func (d *Domain) Bits() int { return len(d.vars) }

// Size returns the domain cardinality.
func (d *Domain) Size() int { return d.size }

// Name returns the name given at allocation.
func (d *Domain) Name() string { return d.name }

// Vars returns the kernel variables of the block, most significant first.
// The returned slice must not be modified.
func (d *Domain) Vars() []int { return d.vars }

func bitsFor(size int) int {
	if size <= 1 {
		return 1
	}
	b := 0
	for 1<<b < size {
		b++
	}
	return b
}

// NewDomain allocates a block of ⌈log₂ size⌉ fresh boolean variables at the
// bottom of the current variable order. The block is registered as a
// reordering group, so dynamic reordering moves it as a unit and the
// within-block bit order (most significant on top) is never disturbed.
func (s *Space) NewDomain(name string, size int) *Domain {
	if size < 1 {
		panic(fmt.Sprintf("fdd: domain %q has size %d", name, size))
	}
	bits := bitsFor(size)
	base := s.k.AddVars(bits)
	vars := make([]int, bits)
	for i := range vars {
		vars[i] = base + i
	}
	s.k.Group(vars...)
	d := &Domain{space: s, name: name, size: size, vars: vars}
	s.domains = append(s.domains, d)
	return d
}

// AdoptDomain registers a block over boolean variables that already exist
// in the kernel instead of allocating fresh ones. Replication uses it to
// reproduce a source space's exact variable layout inside a replica kernel
// (after raising the kernel's variable count with AddVars): bit positions
// determine the BDD semantics of every encoded relation, so a replica must
// adopt the source's blocks, never re-allocate its own. vars is most
// significant bit first and must have exactly the width size requires.
func (s *Space) AdoptDomain(name string, size int, vars []int) *Domain {
	if size < 1 {
		panic(fmt.Sprintf("fdd: domain %q has size %d", name, size))
	}
	if len(vars) != bitsFor(size) {
		panic(fmt.Sprintf("fdd: domain %q needs %d bits, got %d", name, bitsFor(size), len(vars)))
	}
	for _, v := range vars {
		if v < 0 || v >= s.k.NumVars() {
			panic(fmt.Sprintf("fdd: domain %q adopts variable %d outside kernel range [0,%d)", name, v, s.k.NumVars()))
		}
	}
	s.k.Group(vars...)
	d := &Domain{space: s, name: name, size: size, vars: append([]int(nil), vars...)}
	s.domains = append(s.domains, d)
	return d
}

// NewInterleavedDomains allocates several equal-width blocks with their bits
// interleaved: bit j of every block is adjacent in the variable order. An
// interleaved layout keeps the block-equality BDD linear in the bit width,
// whereas with consecutive blocks it is exponential — the asymmetry behind
// the paper's equi-join rename rule (§4.2).
func (s *Space) NewInterleavedDomains(names []string, size int) []*Domain {
	if len(names) == 0 {
		return nil
	}
	bits := bitsFor(size)
	base := s.k.AddVars(bits * len(names))
	// The whole interleaved cluster is one reordering group: its blocks
	// overlap in the variable order, so they can only move together.
	cluster := make([]int, bits*len(names))
	for i := range cluster {
		cluster[i] = base + i
	}
	s.k.Group(cluster...)
	out := make([]*Domain, len(names))
	for i, name := range names {
		vars := make([]int, bits)
		for j := range vars {
			vars[j] = base + j*len(names) + i
		}
		d := &Domain{space: s, name: name, size: size, vars: vars}
		s.domains = append(s.domains, d)
		out[i] = d
	}
	return out
}

// Lits returns the literal encoding of d = v, most significant bit first.
func (d *Domain) Lits(v int) []bdd.Literal {
	if v < 0 || v >= 1<<len(d.vars) {
		panic(fmt.Sprintf("fdd: value %d out of range for domain %q (%d bits)", v, d.name, len(d.vars)))
	}
	lits := make([]bdd.Literal, len(d.vars))
	for i, x := range d.vars {
		bit := v >> (len(d.vars) - 1 - i) & 1
		lits[i] = bdd.Literal{Var: x, Value: bit == 1}
	}
	return lits
}

// EqConst returns the BDD of the predicate d = v.
func (d *Domain) EqConst(v int) bdd.Ref {
	return d.space.k.Minterm(d.Lits(v))
}

// Among returns the BDD of the predicate d ∈ values.
func (d *Domain) Among(values []int) bdd.Ref {
	k := d.space.k
	mark := k.TempMark()
	defer k.TempRelease(mark)
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	// Recursive balanced OR keeps intermediate BDDs small and shares
	// common prefixes.
	var build func(lo, hi int) bdd.Ref
	build = func(lo, hi int) bdd.Ref {
		switch hi - lo {
		case 0:
			return bdd.False
		case 1:
			return d.EqConst(sorted[lo])
		}
		mid := (lo + hi) / 2
		left := k.TempKeep(build(lo, mid))
		return k.Or(left, build(mid, hi))
	}
	return build(0, len(sorted))
}

// LessConst returns the BDD of the predicate d < c, a linear-size
// comparator over the block bits.
func (d *Domain) LessConst(c int) bdd.Ref {
	k := d.space.k
	if c <= 0 {
		return bdd.False
	}
	if c >= 1<<len(d.vars) {
		return bdd.True
	}
	// Build bottom-up from the least significant bit. acc is "the remaining
	// suffix of v is < the remaining suffix of c"; the empty suffix is not
	// less (equal).
	acc := bdd.False
	for i := len(d.vars) - 1; i >= 0; i-- {
		bit := c >> (len(d.vars) - 1 - i) & 1
		if bit == 1 {
			// v_i = 0 → strictly less regardless of the suffix.
			acc = k.MakeNode(uint32(d.vars[i]), bdd.True, acc)
		} else {
			// v_i = 1 → strictly greater regardless of the suffix.
			acc = k.MakeNode(uint32(d.vars[i]), acc, bdd.False)
		}
		if acc == bdd.Invalid {
			return bdd.Invalid
		}
	}
	return acc
}

// InDomain returns the BDD accepting exactly the bit patterns that encode a
// value of the domain (d < Size()). Quantifiers over finite-domain blocks
// must be relativized with it: blocks have 2^bits slots, and the slots past
// Size() encode no value.
func (d *Domain) InDomain() bdd.Ref {
	return d.LessConst(d.size)
}

// Cube returns the quantification cube covering every bit of the block.
func (d *Domain) Cube() bdd.Ref {
	return d.space.k.Cube(d.vars...)
}

// CubeOf returns one cube covering all bits of all the given domains.
func CubeOf(doms ...*Domain) bdd.Ref {
	if len(doms) == 0 {
		panic("fdd: CubeOf needs at least one domain")
	}
	k := doms[0].space.k
	var vars []int
	for _, d := range doms {
		vars = append(vars, d.vars...)
	}
	return k.Cube(vars...)
}

// Exists existentially quantifies all bits of the given domains out of f.
func Exists(f bdd.Ref, doms ...*Domain) bdd.Ref {
	if len(doms) == 0 {
		return f
	}
	k := doms[0].space.k
	return k.Exists(f, CubeOf(doms...))
}

// Forall universally quantifies all bits of the given domains out of f.
func Forall(f bdd.Ref, doms ...*Domain) bdd.Ref {
	if len(doms) == 0 {
		return f
	}
	k := doms[0].space.k
	return k.Forall(f, CubeOf(doms...))
}

// EqVar returns the BDD of the predicate d = e, bit-wise equality of two
// blocks of the same width. With consecutive (non-interleaved) blocks this
// BDD has Θ(2^bits) nodes — the cost the rename rewrite avoids.
func EqVar(d, e *Domain) bdd.Ref {
	if len(d.vars) != len(e.vars) {
		panic(fmt.Sprintf("fdd: EqVar on blocks of different widths: %q has %d bits, %q has %d",
			d.name, len(d.vars), e.name, len(e.vars)))
	}
	k := d.space.k
	mark := k.TempMark()
	defer k.TempRelease(mark)
	acc := bdd.True
	for i := len(d.vars) - 1; i >= 0; i-- {
		k.TempKeep(acc) // survive garbage collection inside Biimp
		bit := k.Biimp(k.Var(d.vars[i]), k.Var(e.vars[i]))
		acc = k.And(acc, bit)
	}
	return acc
}

// ReplaceMap builds a kernel substitution renaming each from[i] block to the
// to[i] block. Blocks must have matching widths. The substitution is only
// valid when it preserves variable order (bdd.ErrOrder otherwise); callers
// fall back to rebuilding in the target blocks when it does not.
func ReplaceMap(from, to []*Domain) (bdd.ReplaceMap, error) {
	if len(from) != len(to) {
		return bdd.ReplaceMap{}, fmt.Errorf("fdd: ReplaceMap with %d sources and %d targets", len(from), len(to))
	}
	if len(from) == 0 {
		return bdd.ReplaceMap{}, fmt.Errorf("fdd: empty ReplaceMap")
	}
	k := from[0].space.k
	var pairs [][2]int
	for i := range from {
		if len(from[i].vars) != len(to[i].vars) {
			return bdd.ReplaceMap{}, fmt.Errorf("fdd: block width mismatch renaming %q (%d bits) to %q (%d bits)",
				from[i].name, len(from[i].vars), to[i].name, len(to[i].vars))
		}
		for j := range from[i].vars {
			pairs = append(pairs, [2]int{from[i].vars[j], to[i].vars[j]})
		}
	}
	return k.NewReplaceMap(pairs)
}

// Tuple encodes vals[i] as the value of doms[i] and returns the literals of
// the combined minterm.
func Tuple(doms []*Domain, vals []int) []bdd.Literal {
	if len(doms) != len(vals) {
		panic("fdd: Tuple length mismatch")
	}
	var lits []bdd.Literal
	for i, d := range doms {
		lits = append(lits, d.Lits(vals[i])...)
	}
	return lits
}

// Minterm returns the BDD of the single tuple doms = vals.
func Minterm(doms []*Domain, vals []int) bdd.Ref {
	if len(doms) == 0 {
		panic("fdd: Minterm with no domains")
	}
	return doms[0].space.k.Minterm(Tuple(doms, vals))
}

// Relation builds the characteristic function of the given rows over the
// blocks doms in one bottom-up pass: rows are encoded as bit strings in
// variable order, sorted, and the BDD is built by prefix splitting. The
// construction performs O(total bits) makeNode calls, far cheaper than
// OR-ing per-tuple minterms, and is what the index layer uses for bulk
// loads. Incremental maintenance still uses per-tuple minterms.
func Relation(doms []*Domain, rows [][]int) (bdd.Ref, error) {
	if len(doms) == 0 {
		panic("fdd: Relation with no domains")
	}
	k := doms[0].space.k
	if len(rows) == 0 {
		return bdd.False, nil
	}
	// Columns of the bit matrix, in ascending level order (the bottom-up
	// build needs the kernel's current variable order, not variable index
	// order — the two differ after a reorder).
	type bitSrc struct {
		variable int
		dom      int
		shift    uint // value >> shift & 1
	}
	var cols []bitSrc
	for di, d := range doms {
		for bi, v := range d.vars {
			cols = append(cols, bitSrc{variable: v, dom: di, shift: uint(len(d.vars) - 1 - bi)})
		}
	}
	sort.Slice(cols, func(i, j int) bool { return k.LevelOfVar(cols[i].variable) < k.LevelOfVar(cols[j].variable) })
	nbits := len(cols)
	enc := make([][]byte, len(rows))
	for r, row := range rows {
		if len(row) != len(doms) {
			return bdd.Invalid, fmt.Errorf("fdd: row %d has %d values, want %d", r, len(row), len(doms))
		}
		bits := make([]byte, nbits)
		for c, src := range cols {
			v := row[src.dom]
			if v < 0 || v >= 1<<len(doms[src.dom].vars) {
				return bdd.Invalid, fmt.Errorf("fdd: row %d value %d out of range for domain %q", r, v, doms[src.dom].name)
			}
			bits[c] = byte(v >> src.shift & 1)
		}
		enc[r] = bits
	}
	sort.Slice(enc, func(i, j int) bool {
		a, b := enc[i], enc[j]
		for c := 0; c < nbits; c++ {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return false
	})
	var build func(lo, hi, bit int) bdd.Ref
	build = func(lo, hi, bit int) bdd.Ref {
		if lo == hi {
			return bdd.False
		}
		if bit == nbits {
			return bdd.True
		}
		// enc[lo:hi] is sorted, so rows with bit 0 precede rows with bit 1.
		split := lo + sort.Search(hi-lo, func(i int) bool { return enc[lo+i][bit] == 1 })
		low := build(lo, split, bit+1)
		if low == bdd.Invalid {
			return bdd.Invalid
		}
		high := build(split, hi, bit+1)
		if high == bdd.Invalid {
			return bdd.Invalid
		}
		return k.MakeNode(uint32(cols[bit].variable), low, high)
	}
	f := build(0, len(enc), 0)
	if f == bdd.Invalid {
		return bdd.Invalid, k.Err()
	}
	return f, nil
}

// Value decodes the value of domain d from a complete boolean assignment.
func (d *Domain) Value(assignment []bool) int {
	v := 0
	for _, x := range d.vars {
		v <<= 1
		if assignment[x] {
			v |= 1
		}
	}
	return v
}
