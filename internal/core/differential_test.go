package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

// differential_test.go cross-checks the three constraint evaluation paths —
// BDD logical indices (under every optimization configuration), the SQL
// baseline engine, and a brute-force model checker — on hundreds of random
// databases and random well-typed constraints. Any disagreement is a bug in
// one of the engines.

type diffSchema struct {
	cat    *relation.Catalog
	tables []*relation.Table
}

// newDiffSchema builds three tables sharing domains pairwise, with random
// contents:
//
//	R(a:D1, b:D2)   S(b:D2, c:D3)   T(a:D1, c:D3)
func newDiffSchema(rng *rand.Rand) *diffSchema {
	cat := relation.NewCatalog()
	mk := func(name string, cols ...relation.Column) *relation.Table {
		t, err := cat.CreateTable(name, cols)
		if err != nil {
			panic(err)
		}
		return t
	}
	r := mk("R", relation.Column{Name: "a", Domain: "D1"}, relation.Column{Name: "b", Domain: "D2"})
	s := mk("S", relation.Column{Name: "b", Domain: "D2"}, relation.Column{Name: "c", Domain: "D3"})
	tt := mk("T", relation.Column{Name: "a", Domain: "D1"}, relation.Column{Name: "c", Domain: "D3"})
	// Intern full domains first so all engines range over identical active
	// domains (sizes chosen to be non-powers of two to exercise the
	// domain-guard logic).
	sizes := map[string]int{"D1": 5, "D2": 3, "D3": 6}
	val := func(dom string, i int) string { return fmt.Sprintf("%s_%d", dom, i) }
	for dom, n := range sizes {
		d := cat.Domain(dom)
		for i := 0; i < n; i++ {
			d.Intern(val(dom, i))
		}
	}
	fill := func(t *relation.Table, d1, d2 string, density float64) {
		n1, n2 := sizes[d1], sizes[d2]
		for i := 0; i < n1; i++ {
			for j := 0; j < n2; j++ {
				if rng.Float64() < density {
					t.Insert(val(d1, i), val(d2, j))
				}
			}
		}
	}
	fill(r, "D1", "D2", 0.4)
	fill(s, "D2", "D3", 0.4)
	fill(tt, "D1", "D3", 0.3)
	return &diffSchema{cat: cat, tables: []*relation.Table{r, s, tt}}
}

// typed variable pool: name → domain name.
var diffVars = map[string]string{
	"x1": "D1", "x2": "D1",
	"y1": "D2", "y2": "D2",
	"z1": "D3", "z2": "D3",
}

var diffVarNames = []string{"x1", "x2", "y1", "y2", "z1", "z2"}

type diffGen struct {
	rng *rand.Rand
	cat *relation.Catalog
}

func (g *diffGen) varOf(dom string) string {
	for {
		v := diffVarNames[g.rng.Intn(len(diffVarNames))]
		if diffVars[v] == dom {
			return v
		}
	}
}

func (g *diffGen) term(dom string) logic.Term {
	if g.rng.Intn(4) == 0 {
		d := g.cat.Domain(dom)
		return logic.Const{Value: d.Value(int32(g.rng.Intn(d.Size())))}
	}
	return logic.Var{Name: g.varOf(dom)}
}

func (g *diffGen) atom() logic.Formula {
	switch g.rng.Intn(6) {
	case 0:
		return logic.Pred{Table: "R", Args: []logic.Term{g.term("D1"), g.term("D2")}}
	case 1:
		return logic.Pred{Table: "S", Args: []logic.Term{g.term("D2"), g.term("D3")}}
	case 2:
		return logic.Pred{Table: "T", Args: []logic.Term{g.term("D1"), g.term("D3")}}
	case 3:
		dom := []string{"D1", "D2", "D3"}[g.rng.Intn(3)]
		return logic.Eq{L: logic.Var{Name: g.varOf(dom)}, R: g.term(dom)}
	case 4:
		dom := []string{"D1", "D2", "D3"}[g.rng.Intn(3)]
		return logic.Neq{L: logic.Var{Name: g.varOf(dom)}, R: g.term(dom)}
	default:
		dom := []string{"D1", "D2", "D3"}[g.rng.Intn(3)]
		d := g.cat.Domain(dom)
		n := 1 + g.rng.Intn(3)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = d.Value(int32(g.rng.Intn(d.Size())))
		}
		return logic.In{T: logic.Var{Name: g.varOf(dom)}, Values: vals}
	}
}

func (g *diffGen) formula(depth int) logic.Formula {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(8) {
	case 0:
		return logic.Not{F: g.formula(depth - 1)}
	case 1:
		return logic.And{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 2:
		return logic.Or{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 3:
		return logic.Implies{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 4, 5:
		v := diffVarNames[g.rng.Intn(len(diffVarNames))]
		return logic.Quant{All: g.rng.Intn(2) == 0, Vars: []string{v}, F: g.formula(depth - 1)}
	default:
		return g.atom()
	}
}

// bruteCheck decides a closed, analyzed constraint by direct model checking
// over the active domains.
func bruteCheck(an *logic.Analysis, cat *relation.Catalog) bool {
	var eval func(f logic.Formula, b map[string]int32) bool
	termVal := func(t logic.Term, dom *relation.Domain, b map[string]int32) (int32, bool) {
		switch x := t.(type) {
		case logic.Var:
			return b[x.Name], true
		case logic.Const:
			return dom.Code(x.Value)
		}
		panic("bad term")
	}
	eval = func(f logic.Formula, b map[string]int32) bool {
		switch g := f.(type) {
		case logic.Truth:
			return g.Value
		case logic.Pred:
			bind := an.Preds[g.Table]
			for r := 0; r < bind.Table.Len(); r++ {
				row := bind.Table.Row(r)
				ok := true
				for i, arg := range g.Args {
					col := bind.Cols[i]
					v, present := termVal(arg, bind.Table.ColumnDomain(col), b)
					if !present || row[col] != v {
						ok = false
						break
					}
				}
				if ok {
					return true
				}
			}
			return false
		case logic.Eq:
			dom := domOfTerm(an, g.L, g.R)
			lv, lok := termVal(g.L, dom, b)
			rv, rok := termVal(g.R, dom, b)
			return lok && rok && lv == rv
		case logic.Neq:
			dom := domOfTerm(an, g.L, g.R)
			lv, lok := termVal(g.L, dom, b)
			rv, rok := termVal(g.R, dom, b)
			if !lok || !rok {
				return true // an unknown constant differs from everything
			}
			return lv != rv
		case logic.In:
			v := g.T.(logic.Var)
			dom := an.Domain(v.Name)
			for _, s := range g.Values {
				if c, ok := dom.Code(s); ok && c == b[v.Name] {
					return true
				}
			}
			return false
		case logic.Not:
			return !eval(g.F, b)
		case logic.And:
			return eval(g.L, b) && eval(g.R, b)
		case logic.Or:
			return eval(g.L, b) || eval(g.R, b)
		case logic.Implies:
			return !eval(g.L, b) || eval(g.R, b)
		case logic.Quant:
			var rec func(i int) bool
			rec = func(i int) bool {
				if i == len(g.Vars) {
					return eval(g.F, b)
				}
				v := g.Vars[i]
				dom := an.Domain(v)
				saved, had := b[v]
				defer func() {
					if had {
						b[v] = saved
					} else {
						delete(b, v)
					}
				}()
				for c := 0; c < dom.Size(); c++ {
					b[v] = int32(c)
					r := rec(i + 1)
					if g.All && !r {
						return false
					}
					if !g.All && r {
						return true
					}
				}
				return g.All
			}
			return rec(0)
		default:
			panic(fmt.Sprintf("bad formula %T", f))
		}
	}
	return eval(an.F, map[string]int32{})
}

func domOfTerm(an *logic.Analysis, l, r logic.Term) *relation.Domain {
	if v, ok := l.(logic.Var); ok {
		if d := an.Domain(v.Name); d != nil {
			return d
		}
	}
	if v, ok := r.(logic.Var); ok {
		if d := an.Domain(v.Name); d != nil {
			return d
		}
	}
	return nil
}

func TestDifferentialBDDvsSQLvsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	evalConfigs := []logic.EvalOptions{
		logic.DefaultEvalOptions(),
		{Rewrite: logic.RewriteOptions{Prenex: true, PushForall: true}, UseAppQuant: false, RenameJoin: true, EarlyProject: false},
		{Rewrite: logic.RewriteOptions{Prenex: true, PushForall: false}, UseAppQuant: true, RenameJoin: false, EarlyProject: true},
		{Rewrite: logic.RewriteOptions{Prenex: false, PushForall: false}, UseAppQuant: false, RenameJoin: false, EarlyProject: false},
		{Rewrite: logic.RewriteOptions{Prenex: false, PushForall: true}, UseAppQuant: true, RenameJoin: true, EarlyProject: true},
	}
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		schema := newDiffSchema(rng)
		gen := &diffGen{rng: rng, cat: schema.cat}
		var checkers []*core.Checker
		for ci, opts := range evalConfigs {
			chk := core.New(schema.cat, core.Options{Eval: opts, RandomSeed: int64(trial)})
			method := core.OrderingMethod(ci % 4) // vary ordering methods too
			for _, tbl := range schema.tables {
				if _, err := chk.BuildIndex(tbl.Name(), tbl.Name(), nil, method); err != nil {
					t.Fatalf("trial %d: BuildIndex(%s): %v", trial, tbl.Name(), err)
				}
			}
			checkers = append(checkers, chk)
		}
		for q := 0; q < 6; q++ {
			// Generate until the formula passes analysis (the generator can
			// produce range-unbounded variables, which Analyze rejects by
			// design).
			var f logic.Formula
			var an *logic.Analysis
			for {
				f = gen.formula(3)
				var err error
				an, err = logic.Analyze(f, logic.CatalogResolver{Catalog: schema.cat})
				if err == nil {
					break
				}
			}
			ct := logic.Constraint{Name: fmt.Sprintf("t%d_q%d", trial, q), F: f}
			want := bruteCheck(an, schema.cat)

			// SQL path.
			query, err := sqlengine.Compile(ct, logic.CatalogResolver{Catalog: schema.cat})
			if err != nil {
				t.Fatalf("trial %d q%d: sql compile: %v\nformula: %s", trial, q, err, f)
			}
			violated, _, err := query.Run()
			if err != nil {
				t.Fatalf("trial %d q%d: sql run: %v\nformula: %s", trial, q, err, f)
			}
			if violated == want {
				t.Fatalf("trial %d q%d: SQL says violated=%v, brute force says holds=%v\nformula: %s\nplan:\n%s",
					trial, q, violated, want, f, query.SQL())
			}

			// BDD paths under every optimization configuration.
			for ci, chk := range checkers {
				res := chk.CheckOne(ct)
				if res.Err != nil {
					t.Fatalf("trial %d q%d cfg%d: %v\nformula: %s", trial, q, ci, res.Err, f)
				}
				if res.FellBack {
					t.Fatalf("trial %d q%d cfg%d: unexpected fallback: %v", trial, q, ci, res.FallbackReason)
				}
				if res.Violated == want {
					t.Fatalf("trial %d q%d cfg%d (%+v): BDD says violated=%v, brute force says holds=%v\nformula: %s",
						trial, q, ci, evalConfigs[ci], res.Violated, want, f)
				}
			}
		}
	}
}
