// reorder.go hooks the kernel's dynamic variable reordering (sifting) into
// the checker. The index store registers each column block as a sifting
// group when the block is allocated, so a reorder moves whole attribute
// encodings and never interleaves bits of different columns; index roots and
// the evaluator's pinned caches keep their functions across a run (sifting
// preserves external Refs), and interned replace maps are re-derived for the
// new order by the kernel itself.
package core

import "repro/internal/bdd"

// ReorderGrowthDefault is the default growth factor of the reorder trigger:
// sift when the kernel holds this many times the nodes it held right after
// the previous sift (or the first observation).
const ReorderGrowthDefault = 2.0

// ReorderMinNodesDefault is the default floor below which MaybeReorder never
// sifts — tiny tables reorder in microseconds but the savings are noise.
const ReorderMinNodesDefault = 4096

// Reorder runs one group-sifting pass over the shared kernel and returns
// the kernel's report. All index roots, evaluator caches and outstanding
// Refs stay valid; only the internal variable order (and therefore node
// counts and traversal costs) changes.
func (c *Checker) Reorder(opt bdd.ReorderOptions) bdd.ReorderStats {
	st := c.store.Kernel().Reorder(opt)
	c.reorderBaseline = st.After
	return st
}

// MaybeReorder applies the node-growth heuristic: it sifts only when the
// live-node count has grown past growth × the post-reorder baseline (the
// live count right after the previous sift, or the first call's
// observation) and is at least minNodes. Zero growth or minNodes select the
// defaults. It reports whether a sift ran; callers wanting the trigger
// without the cost budget of a full pass can bound it with opt.MaxBlocks.
//
// The check is two integer comparisons plus, when the raw count trips the
// threshold, one GC to discount collectable garbage — cheap enough to call
// after every update batch.
func (c *Checker) MaybeReorder(growth float64, minNodes int, opt bdd.ReorderOptions) (bdd.ReorderStats, bool) {
	if growth <= 1 {
		growth = ReorderGrowthDefault
	}
	if minNodes <= 0 {
		minNodes = ReorderMinNodesDefault
	}
	k := c.store.Kernel()
	if k.Err() != nil {
		return bdd.ReorderStats{}, false
	}
	live := k.Stats().Live
	if c.reorderBaseline == 0 {
		c.reorderBaseline = live
		return bdd.ReorderStats{}, false
	}
	if live < c.reorderBaseline {
		// Deletions shrank the structure below the baseline; track it down
		// so later growth is measured against the smaller footprint.
		c.reorderBaseline = live
		return bdd.ReorderStats{}, false
	}
	if live < minNodes || float64(live) < growth*float64(c.reorderBaseline) {
		return bdd.ReorderStats{}, false
	}
	// The raw count trips the threshold, but it may be garbage from the
	// update batch rather than real growth: collect first and re-measure.
	k.GC()
	live = k.Stats().Live
	if live < minNodes || float64(live) < growth*float64(c.reorderBaseline) {
		c.reorderBaseline = min(c.reorderBaseline, live)
		return bdd.ReorderStats{}, false
	}
	return c.Reorder(opt), true
}
