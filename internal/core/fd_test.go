package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

// TestFDFastPathAgreesWithGenericAndSQL cross-checks the three FD
// evaluation strategies (projection+counting fast path, generic BDD
// self-join, SQL group-by) on randomized tables, with and without planted
// violations.
func TestFDFastPathAgreesWithGenericAndSQL(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		cat := relation.NewCatalog()
		tbl, err := cat.CreateTable("R", []relation.Column{
			{Name: "k", Domain: "k"}, {Name: "pad", Domain: "pad"}, {Name: "v", Domain: "v"},
		})
		if err != nil {
			t.Fatal(err)
		}
		nKeys := 3 + rng.Intn(20)
		violate := rng.Intn(2) == 0
		for i := 0; i < 120; i++ {
			key := rng.Intn(nKeys)
			val := key % 7 // v functionally determined by k
			tbl.Insert(fmt.Sprintf("k%d", key), fmt.Sprintf("p%d", rng.Intn(5)), fmt.Sprintf("v%d", val))
		}
		if violate {
			tbl.Insert("k0", "p0", "v6") // breaks k0 → v0
		}
		f, err := logic.Parse(`forall k, v1, v2: R(k, _, v1) and R(k, _, v2) => v1 = v2`)
		if err != nil {
			t.Fatal(err)
		}
		ct := logic.Constraint{Name: "fd", F: f}

		fast := core.New(cat, core.Options{})
		if _, err := fast.BuildIndex("R", "R", nil, core.OrderProbConverge); err != nil {
			t.Fatal(err)
		}
		generic := core.New(cat, core.Options{NoFDFastPath: true})
		if _, err := generic.BuildIndex("R", "R", nil, core.OrderMaxInfGain); err != nil {
			t.Fatal(err)
		}
		rFast := fast.CheckOne(ct)
		rGen := generic.CheckOne(ct)
		sqlViolated := sqlengine.CheckFD(tbl, []int{0}, []int{2})
		if rFast.Err != nil || rGen.Err != nil {
			t.Fatalf("trial %d: errs %v / %v", trial, rFast.Err, rGen.Err)
		}
		if rFast.Violated != violate || rGen.Violated != violate || sqlViolated != violate {
			t.Fatalf("trial %d (violate=%v): fast=%v generic=%v sql=%v",
				trial, violate, rFast.Violated, rGen.Violated, sqlViolated)
		}
	}
}

// TestDetectFD covers the pattern matcher.
func TestDetectFD(t *testing.T) {
	parse := func(src string) logic.Formula {
		f, err := logic.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return f
	}
	fd, ok := logic.DetectFD(parse(`forall a, s1, s2: NCS(a, _, s1) and NCS(a, _, s2) => s1 = s2`))
	if !ok {
		t.Fatal("FD not detected")
	}
	if fd.Pred != "NCS" || fd.Arity != 3 || fd.Dependent != 2 ||
		len(fd.Determinant) != 1 || fd.Determinant[0] != 0 {
		t.Fatalf("wrong FD: %+v", fd)
	}
	// Two-column determinant.
	fd, ok = logic.DetectFD(parse(`forall a, b, v, w: T(a, b, v) and T(a, b, w) => v = w`))
	if !ok || len(fd.Determinant) != 2 || fd.Dependent != 2 {
		t.Fatalf("two-column FD: ok=%v %+v", ok, fd)
	}
	// Non-FDs must not match.
	for _, src := range []string{
		`forall a, s: NCS(a, _, s) => s = "x"`,
		`forall a, s1, s2: NCS(a, _, s1) and NCS(a, _, s2) => s1 != s2`,
		`forall a, s1, s2: NCS(a, _, s1) or NCS(a, _, s2) => s1 = s2`,
		`forall a, b, s1, s2: NCS(a, _, s1) and NCS(b, _, s2) => s1 = s2`,
		`forall a, s1, s2, z: NCS(a, z, s1) and NCS(a, z, s2) => s1 = z`,
		`forall a, s1, s2: NCS(a, "c", s1) and NCS(a, "c", s2) => s1 = s2`,
	} {
		if _, ok := logic.DetectFD(parse(src)); ok {
			t.Errorf("false positive: %s", src)
		}
	}
	// A conditioned variant with shared wildcard-free positions matches
	// when the middle column is part of the determinant.
	fd, ok = logic.DetectFD(parse(`forall a, c, s1, s2: NCS(a, c, s1) and NCS(a, c, s2) => s1 = s2`))
	if !ok || len(fd.Determinant) != 2 {
		t.Fatalf("shared-position FD: ok=%v %+v", ok, fd)
	}
}
