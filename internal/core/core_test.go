package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

// buildCurriculum creates the STUDENT/COURSE/TAKES database of the paper's
// introduction.
func buildCurriculum(t *testing.T) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	student, err := cat.CreateTable("STUDENT", []relation.Column{
		{Name: "student_id", Domain: "student_id"},
		{Name: "department", Domain: "department"},
		{Name: "contact", Domain: "contact"},
	})
	if err != nil {
		t.Fatal(err)
	}
	course, err := cat.CreateTable("COURSE", []relation.Column{
		{Name: "course_id", Domain: "course_id"},
		{Name: "area", Domain: "area"},
	})
	if err != nil {
		t.Fatal(err)
	}
	takes, err := cat.CreateTable("TAKES", []relation.Column{
		{Name: "student_id", Domain: "student_id"},
		{Name: "course_id", Domain: "course_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	student.Insert("s1", "CS", "c1")
	student.Insert("s2", "CS", "c2")
	student.Insert("s3", "Math", "c3")
	course.Insert("cs101", "Programming")
	course.Insert("cs102", "Theory")
	course.Insert("m101", "Algebra")
	takes.Insert("s1", "cs101")
	takes.Insert("s2", "cs102") // s2 is in CS but takes no Programming course
	takes.Insert("s3", "m101")
	return cat
}

const curriculumConstraint = `
	forall s, z: STUDENT(s, "CS", z) =>
	    exists c: COURSE(c, "Programming") and TAKES(s, c)
`

func newChecker(t *testing.T, cat *relation.Catalog) *core.Checker {
	t.Helper()
	chk := core.New(cat, core.Options{})
	for _, table := range []string{"STUDENT", "COURSE", "TAKES"} {
		if _, err := chk.BuildIndex(table, table, nil, core.OrderProbConverge); err != nil {
			t.Fatalf("BuildIndex(%s): %v", table, err)
		}
	}
	return chk
}

func TestPaperExampleViolated(t *testing.T) {
	cat := buildCurriculum(t)
	chk := newChecker(t, cat)
	f, err := logic.Parse(curriculumConstraint)
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "cs_programming", F: f}
	res := chk.CheckOne(ct)
	if res.Err != nil {
		t.Fatalf("CheckOne: %v", res.Err)
	}
	if res.Method != core.MethodBDD {
		t.Fatalf("expected BDD evaluation, got %s (fallback: %v)", res.Method, res.FallbackReason)
	}
	if !res.Violated {
		t.Fatal("constraint should be violated: s2 takes no Programming course")
	}
	// SQL agrees.
	rows, err := chk.ViolatingRows(ct)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("expected exactly 1 violating binding, got %d", rows.Len())
	}
	vals := rows.Decode(0)
	found := false
	for _, v := range vals {
		if v == "s2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("violating binding should involve s2, got %v", vals)
	}
	// BDD witnesses agree.
	ws, err := chk.ViolationWitnesses(ct, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no BDD witnesses for a violated constraint")
	}
	foundW := false
	for _, w := range ws {
		for _, v := range w.Values {
			if v == "s2" {
				foundW = true
			}
		}
	}
	if !foundW {
		t.Fatalf("BDD witnesses should involve s2, got %v", ws)
	}
}

func TestPaperExampleRepaired(t *testing.T) {
	cat := buildCurriculum(t)
	chk := newChecker(t, cat)
	// Repair: s2 enrolls in the programming course.
	if err := chk.InsertTuple("TAKES", "s2", "cs101"); err != nil {
		t.Fatal(err)
	}
	f, err := logic.Parse(curriculumConstraint)
	if err != nil {
		t.Fatal(err)
	}
	res := chk.CheckOne(logic.Constraint{Name: "cs_programming", F: f})
	if res.Err != nil {
		t.Fatalf("CheckOne: %v", res.Err)
	}
	if res.Violated {
		t.Fatal("constraint should hold after the repair")
	}
	// Breaking it again by removing the tuple.
	if err := chk.DeleteTuple("TAKES", "s2", "cs101"); err != nil {
		t.Fatal(err)
	}
	res = chk.CheckOne(logic.Constraint{Name: "cs_programming", F: f})
	if !res.Violated {
		t.Fatal("constraint should be violated again after the delete")
	}
}

func TestMembershipConstraint(t *testing.T) {
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city", Domain: "city"},
		{Name: "areacode", Domain: "areacode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cust.Insert("Toronto", "416")
	cust.Insert("Toronto", "647")
	cust.Insert("Oshawa", "905")
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("CUST", "CUST", nil, core.OrderSchema); err != nil {
		t.Fatal(err)
	}
	f, err := logic.Parse(`forall c, a: CUST(c, a) and c = "Toronto" => a in {"416", "647", "905"}`)
	if err != nil {
		t.Fatal(err)
	}
	res := chk.CheckOne(logic.Constraint{Name: "toronto_codes", F: f})
	if res.Err != nil || res.Violated {
		t.Fatalf("constraint should hold: violated=%v err=%v", res.Violated, res.Err)
	}
	// Insert a violating tuple; the constraint flips.
	if err := chk.InsertTuple("CUST", "Toronto", "212"); err != nil {
		t.Fatal(err)
	}
	res = chk.CheckOne(logic.Constraint{Name: "toronto_codes", F: f})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Violated {
		t.Fatal("constraint should be violated after inserting (Toronto, 212)")
	}
}

func TestFunctionalDependencyConstraint(t *testing.T) {
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("PHONE", []relation.Column{
		{Name: "areacode", Domain: "areacode"},
		{Name: "state", Domain: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cust.Insert("416", "ON")
	cust.Insert("905", "ON")
	cust.Insert("212", "NY")
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("PHONE", "PHONE", nil, core.OrderSchema); err != nil {
		t.Fatal(err)
	}
	// areacode → state as a first-order constraint.
	f, err := logic.Parse(`forall a, s1, s2: PHONE(a, s1) and PHONE(a, s2) => s1 = s2`)
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "fd", F: f}
	res := chk.CheckOne(ct)
	if res.Err != nil || res.Violated {
		t.Fatalf("FD should hold: violated=%v err=%v", res.Violated, res.Err)
	}
	if err := chk.InsertTuple("PHONE", "416", "NY"); err != nil {
		t.Fatal(err)
	}
	res = chk.CheckOne(ct)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Violated {
		t.Fatal("FD should be violated after (416, NY)")
	}
	if res.Method != core.MethodBDD {
		t.Fatalf("FD should be BDD-checkable, fell back: %v", res.FallbackReason)
	}
}

func TestSQLFallbackWithoutIndex(t *testing.T) {
	cat := buildCurriculum(t)
	chk := core.New(cat, core.Options{}) // no indices built
	f, err := logic.Parse(curriculumConstraint)
	if err != nil {
		t.Fatal(err)
	}
	res := chk.CheckOne(logic.Constraint{Name: "cs_programming", F: f})
	if res.Err != nil {
		t.Fatalf("CheckOne: %v", res.Err)
	}
	if res.Method != core.MethodSQL || !res.FellBack {
		t.Fatalf("expected SQL fallback, got method=%s", res.Method)
	}
	if !res.Violated {
		t.Fatal("SQL fallback must detect the violation")
	}
}

func TestBudgetFallback(t *testing.T) {
	cat := buildCurriculum(t)
	chk := core.New(cat, core.Options{NodeBudget: 8}) // absurdly small
	// Index builds themselves fail under this budget; constraints still work.
	_, err := chk.BuildIndex("STUDENT", "STUDENT", nil, core.OrderSchema)
	if err == nil {
		t.Skip("index unexpectedly fit an 8-node budget")
	}
	f, err := logic.Parse(curriculumConstraint)
	if err != nil {
		t.Fatal(err)
	}
	res := chk.CheckOne(logic.Constraint{Name: "cs_programming", F: f})
	if res.Err != nil {
		t.Fatalf("CheckOne: %v", res.Err)
	}
	if res.Method != core.MethodSQL {
		t.Fatal("expected SQL fallback under a tiny node budget")
	}
	if !res.Violated {
		t.Fatal("fallback must still detect the violation")
	}
}

func TestImplicationCityState(t *testing.T) {
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city", Domain: "city"},
		{Name: "state", Domain: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cust.Insert("Toronto", "Ontario")
	cust.Insert("Oshawa", "Ontario")
	cust.Insert("Newark", "NJ")
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("CUST", "CUST", nil, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	f, err := logic.Parse(`forall c, s: CUST(c, s) and c = "Toronto" => s = "Ontario"`)
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "toronto_ontario", F: f}
	if res := chk.CheckOne(ct); res.Err != nil || res.Violated {
		t.Fatalf("should hold: %+v", res)
	}
	if err := chk.InsertTuple("CUST", "Toronto", "NJ"); err != nil {
		t.Fatal(err)
	}
	if res := chk.CheckOne(ct); res.Err != nil || !res.Violated {
		t.Fatalf("should be violated: %+v", res)
	}
}

func TestIndexOverProjection(t *testing.T) {
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "areacode", Domain: "areacode"},
		{Name: "number", Domain: "number"},
		{Name: "city", Domain: "city"},
		{Name: "state", Domain: "state"},
		{Name: "zipcode", Domain: "zipcode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cust.Insert("416", "5550001", "Toronto", "ON", "M5V")
	cust.Insert("905", "5550002", "Oshawa", "ON", "L1G")
	cust.Insert("212", "5550003", "NYC", "NY", "10001")
	chk := core.New(cat, core.Options{})
	// Index over a projection, named differently from the table; the
	// constraint references the index name with the projection's arity.
	if _, err := chk.BuildIndex("NCS", "CUST", []string{"areacode", "city", "state"}, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	f, err := logic.Parse(`forall a, c, s: NCS(a, c, s) and s = "ON" => a in {"416", "647", "905"}`)
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "on_codes", F: f}
	res := chk.CheckOne(ct)
	if res.Err != nil || res.Violated {
		t.Fatalf("should hold: %+v", res)
	}
	if res.Method != core.MethodBDD {
		t.Fatalf("projection index should be used, fell back: %v", res.FallbackReason)
	}
}

// TestChainedCanonicalBlockRename pins a rename-chain scenario found by the
// differential harness (testdata seed 505 in internal/difftest): under a
// data-driven ordering, the variable vb claims the index's own c2 block, so
// evaluating the second occurrence of T1 needs the simultaneous substitution
// {c0→c2, c2→scratch}. A per-block fallback that binds c0 to the c2 block
// while c2 is still in the BDD's support computes the diagonal T1(x,·,x)
// instead of the rename, yielding spurious violation witnesses.
func TestChainedCanonicalBlockRename(t *testing.T) {
	cat := relation.NewCatalog()
	tab, err := cat.CreateTable("T1", []relation.Column{
		{Name: "c0", Domain: "d3"},
		{Name: "c1", Domain: "d1"},
		{Name: "c2", Domain: "d3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert("D3_0", "D1_3", "D3_1")
	tab.Insert("D3_3", "D1_3", "D3_0")
	tab.Insert("D3_1", "D1_3", "D3_0")
	chk := core.New(cat, core.Options{NodeBudget: -1, RandomSeed: 860045})
	if _, err := chk.BuildIndex("T1", "T1", nil, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	f, err := logic.Parse(`T1("D3_0", va, vb) or T1(vb, "D1_3", ve)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "chain", F: f}
	res := chk.CheckOne(ct)
	if res.Err != nil {
		t.Fatalf("CheckOne: %v", res.Err)
	}
	if res.Method != core.MethodBDD {
		t.Fatalf("expected BDD evaluation, got %s (fallback: %v)", res.Method, res.FallbackReason)
	}
	if !res.Violated {
		t.Fatal("constraint should be violated")
	}
	// 1×3×3 bindings minus the five satisfying either disjunct.
	ws, err := chk.ViolationWitnesses(ct, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("expected 4 violation witnesses, got %d: %v", len(ws), ws)
	}
}
