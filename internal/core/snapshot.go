// snapshot.go exports the checker's index geometry for replication: the
// names, roots and variable blocks a second checker needs to reproduce the
// primary's indices bit-for-bit inside its own kernel. Variable positions
// determine the semantics of every encoded relation, so adoption must copy
// the layout exactly rather than re-allocate blocks in discovery order.
package core

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/fdd"
)

// BlockSnapshot describes one finite-domain block of an index: its name,
// the domain cardinality it encodes, and the kernel variables it occupies
// (most significant bit first).
type BlockSnapshot struct {
	Name string
	Size int
	Vars []int
}

// IndexSnapshot describes one logical index: enough to re-register it over
// another kernel after transferring Root with bdd.CopyTo, or to persist it
// with bdd.Save and re-adopt after bdd.Load.
type IndexSnapshot struct {
	Name   string
	Table  string
	Cols   []int
	Order  []int
	Root   bdd.Ref
	Blocks []BlockSnapshot
}

// Options returns the options the checker was created with (Eval defaulted
// as by New). A replica checker created with the same options reproduces
// the primary's budget normalization and evaluation strategy.
func (c *Checker) Options() Options { return c.opts }

// SnapshotIndices captures every index of the checker in sorted name order.
// The returned roots are Refs of this checker's kernel; they stay valid as
// long as the indices are not dropped or rebuilt.
func (c *Checker) SnapshotIndices() []IndexSnapshot {
	names := c.store.Names()
	out := make([]IndexSnapshot, 0, len(names))
	for _, name := range names {
		ix := c.store.Index(name)
		snap := IndexSnapshot{
			Name:  name,
			Table: ix.Table().Name(),
			Cols:  append([]int(nil), ix.Columns()...),
			Order: append([]int(nil), ix.Order()...),
			Root:  ix.Root(),
		}
		for _, d := range ix.Domains() {
			snap.Blocks = append(snap.Blocks, BlockSnapshot{
				Name: d.Name(),
				Size: d.Size(),
				Vars: append([]int(nil), d.Vars()...),
			})
		}
		out = append(out, snap)
	}
	return out
}

// AdoptIndices reproduces snapshotted indices inside this checker: it
// raises the kernel's variable count to cover every block, re-registers the
// blocks at their original positions, transfers all roots from src in one
// CopyTo walk (so structure shared between indices stays shared), and
// registers each index for incremental maintenance. The checker must be
// fresh — no indices built yet — and its catalog must contain the
// snapshotted tables. src is only read, so many replicas can adopt from one
// frozen source concurrently.
func (c *Checker) AdoptIndices(src *bdd.Kernel, snaps []IndexSnapshot) error {
	c.raiseVarsFor(snaps)
	roots := make([]bdd.Ref, len(snaps))
	for i, s := range snaps {
		roots[i] = s.Root
	}
	copied, err := src.CopyTo(c.store.Kernel(), roots...)
	if err != nil {
		return fmt.Errorf("core: adopting indices: %w", err)
	}
	return c.adoptSnapshots(snaps, copied)
}

// AdoptOwnedIndices registers snapshotted indices whose roots already live
// in this checker's kernel — the durability layer's restore path, which
// loads the roots with bdd.Load before re-registering blocks and indices.
// Like AdoptIndices, the checker must be fresh and its catalog must contain
// the snapshotted tables; the kernel's variable count is raised to cover
// every block (the restore path raises it before Load, so this is a no-op
// there).
func (c *Checker) AdoptOwnedIndices(snaps []IndexSnapshot) error {
	c.raiseVarsFor(snaps)
	roots := make([]bdd.Ref, len(snaps))
	for i, s := range snaps {
		roots[i] = s.Root
	}
	return c.adoptSnapshots(snaps, roots)
}

// raiseVarsFor grows the kernel's variable count to cover every block of the
// snapshots, so adopted blocks land at their original positions.
func (c *Checker) raiseVarsFor(snaps []IndexSnapshot) {
	k := c.store.Kernel()
	maxVar := -1
	for _, s := range snaps {
		for _, b := range s.Blocks {
			for _, v := range b.Vars {
				if v > maxVar {
					maxVar = v
				}
			}
		}
	}
	if maxVar >= k.NumVars() {
		k.AddVars(maxVar + 1 - k.NumVars())
	}
}

// adoptSnapshots registers blocks and indices for snaps whose roots (parallel
// slice, refs of this checker's kernel) have already been transferred.
func (c *Checker) adoptSnapshots(snaps []IndexSnapshot, roots []bdd.Ref) error {
	for i, s := range snaps {
		t := c.catalog.Table(s.Table)
		if t == nil {
			return fmt.Errorf("core: adopting index %q: unknown table %q", s.Name, s.Table)
		}
		doms := make([]*fdd.Domain, len(s.Blocks))
		for j, b := range s.Blocks {
			doms[j] = c.store.Space().AdoptDomain(b.Name, b.Size, b.Vars)
		}
		if _, err := c.store.Adopt(s.Name, t,
			append([]int(nil), s.Cols...), append([]int(nil), s.Order...), doms, roots[i]); err != nil {
			return fmt.Errorf("core: adopting index %q: %w", s.Name, err)
		}
		c.indexRegistry[s.Table] = append(c.indexRegistry[s.Table], s.Name)
	}
	return nil
}
