package core_test

// service_api_test.go covers the checker surface the long-lived service
// (internal/service) builds on: batched updates through the incremental
// index maintenance path and per-call node-budget caps.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/logic"
)

func TestApplyBatchMaintainsIndices(t *testing.T) {
	cat := buildCurriculum(t)
	chk := newChecker(t, cat)
	f, err := logic.Parse(curriculumConstraint)
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "cs_programming", F: f}
	if res := chk.CheckOne(ct); !res.Violated {
		t.Fatal("seed database should violate the constraint")
	}
	// Repair s2 and enroll a new student, in one batch.
	n, err := chk.Apply([]core.Update{
		{Table: "TAKES", Op: core.UpdateInsert, Values: []string{"s2", "cs101"}},
		{Table: "STUDENT", Op: core.UpdateInsert, Values: []string{"s4", "CS", "c4"}},
		{Table: "TAKES", Op: core.UpdateInsert, Values: []string{"s4", "cs101"}},
	})
	if err != nil || n != 3 {
		t.Fatalf("Apply = (%d, %v), want (3, nil)", n, err)
	}
	res := chk.CheckOne(ct)
	if res.Err != nil || res.Violated {
		t.Fatalf("after repair batch: violated=%v err=%v", res.Violated, res.Err)
	}
	if res.Method != core.MethodBDD {
		t.Fatalf("repair batch must keep indices usable, got method=%s", res.Method)
	}
	// Deleting the repair tuple reintroduces the violation.
	if _, err := chk.Apply([]core.Update{
		{Table: "TAKES", Op: core.UpdateDelete, Values: []string{"s2", "cs101"}},
	}); err != nil {
		t.Fatal(err)
	}
	if res := chk.CheckOne(ct); !res.Violated {
		t.Fatal("deleting the repair tuple should re-violate the constraint")
	}
}

func TestApplyBatchStopsAtFirstError(t *testing.T) {
	cat := buildCurriculum(t)
	chk := newChecker(t, cat)
	n, err := chk.Apply([]core.Update{
		{Table: "TAKES", Op: core.UpdateInsert, Values: []string{"s1", "cs102"}},
		{Table: "NOSUCH", Op: core.UpdateInsert, Values: []string{"x"}},
		{Table: "TAKES", Op: core.UpdateInsert, Values: []string{"s3", "cs101"}},
	})
	if err == nil || n != 1 {
		t.Fatalf("Apply = (%d, %v), want (1, error)", n, err)
	}
	if !strings.Contains(err.Error(), "update 1") {
		t.Fatalf("error should name the failing update: %v", err)
	}
	for _, bad := range []core.Update{
		{Table: "TAKES", Op: "upsert", Values: []string{"s1", "cs101"}},
		{Table: "TAKES", Op: core.UpdateInsert, Values: []string{"too", "many", "values"}},
		{Table: "TAKES", Op: core.UpdateDelete, Values: []string{"s1"}},
	} {
		if _, err := chk.Apply([]core.Update{bad}); err == nil {
			t.Errorf("Apply(%+v) should fail", bad)
		}
	}
}

func TestCheckOneOptsBudgetCapFallsBack(t *testing.T) {
	cat := buildCurriculum(t)
	chk := newChecker(t, cat)
	f, err := logic.Parse(curriculumConstraint)
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "cs_programming", F: f}
	// A one-node cap is below the live index nodes: BDD evaluation aborts
	// immediately and the call degrades to the SQL fallback.
	res := chk.CheckOneOpts(ct, core.CheckOptions{NodeBudget: 1})
	if res.Err != nil {
		t.Fatalf("CheckOneOpts: %v", res.Err)
	}
	if !res.FellBack || res.Method != core.MethodSQL {
		t.Fatalf("want SQL fallback under 1-node cap, got method=%s fellBack=%v", res.Method, res.FellBack)
	}
	if !errors.Is(res.FallbackReason, bdd.ErrBudget) {
		t.Fatalf("FallbackReason = %v, want ErrBudget", res.FallbackReason)
	}
	if !res.Violated {
		t.Fatal("SQL fallback must still detect the violation")
	}
	// The cap is per-call: the checker-wide budget is restored and the same
	// constraint evaluates via BDD again.
	res = chk.CheckOne(ct)
	if res.Err != nil || res.Method != core.MethodBDD {
		t.Fatalf("after capped call: method=%s err=%v, want bdd/nil", res.Method, res.Err)
	}
	if !res.Violated {
		t.Fatal("BDD check must agree with SQL")
	}
}

func TestParseOrderingMethod(t *testing.T) {
	for s, want := range map[string]core.OrderingMethod{
		"prob":   core.OrderProbConverge,
		"maxinf": core.OrderMaxInfGain,
		"random": core.OrderRandom,
		"schema": core.OrderSchema,
	} {
		got, err := core.ParseOrderingMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseOrderingMethod(%q) = (%v, %v), want %v", s, got, err, want)
		}
	}
	if _, err := core.ParseOrderingMethod("bogus"); err == nil {
		t.Error("ParseOrderingMethod(bogus) should fail")
	}
}
