package core_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

// witness_test.go verifies that the witness bindings decoded from the
// violation BDD are exactly the rows the compiled SQL violation query
// returns, across randomized databases and several constraint classes.

func witnessSet(t *testing.T, ws []core.Witness) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, w := range ws {
		// Key on sorted var=value pairs so column order differences between
		// the BDD and SQL paths don't matter.
		pairs := make([]string, len(w.Vars))
		for i := range w.Vars {
			pairs[i] = w.Vars[i] + "=" + w.Values[i]
		}
		sort.Strings(pairs)
		out[strings.Join(pairs, ",")] = true
	}
	return out
}

func TestWitnessesMatchSQLRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		cat := relation.NewCatalog()
		emp, err := cat.CreateTable("EMP", []relation.Column{
			{Name: "id", Domain: "id"},
			{Name: "dept", Domain: "dept"},
			{Name: "site", Domain: "site"},
		})
		if err != nil {
			t.Fatal(err)
		}
		dept, err := cat.CreateTable("DEPT", []relation.Column{
			{Name: "dept", Domain: "dept"},
			{Name: "site", Domain: "site"},
		})
		if err != nil {
			t.Fatal(err)
		}
		nDept, nSite := 4+rng.Intn(4), 3+rng.Intn(3)
		for d := 0; d < nDept; d++ {
			if rng.Intn(5) > 0 { // some departments are missing on purpose
				dept.Insert(fmt.Sprintf("d%d", d), fmt.Sprintf("s%d", d%nSite))
			}
		}
		for i := 0; i < 60; i++ {
			emp.Insert(fmt.Sprintf("e%02d", i),
				fmt.Sprintf("d%d", rng.Intn(nDept)),
				fmt.Sprintf("s%d", rng.Intn(nSite)))
		}
		chk := core.New(cat, core.Options{})
		for _, tbl := range []string{"EMP", "DEPT"} {
			if _, err := chk.BuildIndex(tbl, tbl, nil, core.OrderProbConverge); err != nil {
				t.Fatal(err)
			}
		}
		sources := []string{
			// referential: the employee's department exists
			`forall e, d, s: EMP(e, d, s) => exists s2: DEPT(d, s2)`,
			// site consistency between employee and department
			`forall e, d, s, s2: EMP(e, d, s) and DEPT(d, s2) => s = s2`,
			// membership
			`forall e, d, s: EMP(e, d, s) => d in {"d0", "d1", "d2"}`,
			// inequality
			`forall e, d, s: EMP(e, d, s) and d = "d0" => s != "s1"`,
		}
		for qi, src := range sources {
			f, err := logic.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			ct := logic.Constraint{Name: fmt.Sprintf("c%d", qi), F: f}
			ws, err := chk.ViolationWitnesses(ct, 10000)
			if err != nil {
				t.Fatalf("trial %d c%d: witnesses: %v", trial, qi, err)
			}
			rows, err := chk.ViolatingRows(ct)
			if err != nil {
				t.Fatalf("trial %d c%d: sql: %v", trial, qi, err)
			}
			// Convert SQL rows into the same canonical set form.
			sqlWs := make([]core.Witness, rows.Len())
			for i := 0; i < rows.Len(); i++ {
				sqlWs[i] = core.Witness{Vars: rows.Vars, Values: rows.Decode(i)}
			}
			got, want := witnessSet(t, ws), witnessSet(t, sqlWs)
			if len(got) != len(want) {
				t.Fatalf("trial %d c%d: %d BDD witnesses vs %d SQL rows\nbdd: %v\nsql: %v",
					trial, qi, len(got), len(want), got, want)
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("trial %d c%d: SQL violation %q missing from BDD witnesses", trial, qi, k)
				}
			}
		}
	}
}

func TestWitnessLimitRespected(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, err := cat.CreateTable("T", []relation.Column{{Name: "a", Domain: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tbl.Insert(fmt.Sprintf("v%02d", i))
	}
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("T", "T", nil, core.OrderSchema); err != nil {
		t.Fatal(err)
	}
	f, err := logic.Parse(`forall a: T(a) => a = "v00"`) // 49 violations
	if err != nil {
		t.Fatal(err)
	}
	ct := logic.Constraint{Name: "lim", F: f}
	ws, err := chk.ViolationWitnesses(ct, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 7 {
		t.Fatalf("limit 7 returned %d witnesses", len(ws))
	}
	ws, err = chk.ViolationWitnesses(ct, 0)
	if err != nil || ws != nil {
		t.Fatalf("limit 0 should return nothing, got %v, %v", ws, err)
	}
	all, err := chk.ViolationWitnesses(ct, 1000)
	if err != nil || len(all) != 49 {
		t.Fatalf("expected all 49 witnesses, got %d, %v", len(all), err)
	}
}

func TestExistentialConstraintHasNoWitnesses(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, err := cat.CreateTable("T", []relation.Column{{Name: "a", Domain: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert("x")
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("T", "T", nil, core.OrderSchema); err != nil {
		t.Fatal(err)
	}
	f, err := logic.Parse(`exists a: T(a) and a = "missing"`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chk.ViolationWitnesses(logic.Constraint{Name: "e", F: f}, 5); err == nil {
		t.Fatal("existence checks have no per-binding witnesses; expected an error")
	}
	// But CheckOne still decides it.
	res := chk.CheckOne(logic.Constraint{Name: "e", F: f})
	if res.Err != nil || !res.Violated {
		t.Fatalf("existence constraint should be violated: %+v", res)
	}
}
