package core_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/logic"
)

// snapshot_test.go checks that SnapshotIndices carries everything needed to
// reproduce a checker's indices elsewhere: adoption through the direct
// CopyTo transfer and through a Save/Load roundtrip must both yield a
// checker that decides every constraint identically, by the BDD path, on
// structurally identical indices.

func curriculumConstraints(t *testing.T) []logic.Constraint {
	t.Helper()
	f, err := logic.Parse(curriculumConstraint)
	if err != nil {
		t.Fatal(err)
	}
	g, err := logic.Parse(`forall s, c: TAKES(s, c) => exists d, z: STUDENT(s, d, z)`)
	if err != nil {
		t.Fatal(err)
	}
	return []logic.Constraint{
		{Name: "cs_programming", F: f},
		{Name: "takes_fk", F: g},
	}
}

func TestSnapshotIndicesRoundTrip(t *testing.T) {
	cat := buildCurriculum(t)
	primary := newChecker(t, cat)
	cts := curriculumConstraints(t)
	want := primary.Check(cts)

	snaps := primary.SnapshotIndices()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for _, s := range snaps {
		if len(s.Blocks) == 0 || len(s.Cols) != len(s.Blocks) {
			t.Fatalf("snapshot %q: %d blocks for %d columns", s.Name, len(s.Blocks), len(s.Cols))
		}
	}

	check := func(t *testing.T, replica *core.Checker) {
		t.Helper()
		for _, s := range snaps {
			ix := replica.Store().Index(s.Name)
			if ix == nil {
				t.Fatalf("replica lost index %q", s.Name)
			}
			if got, want := ix.NodeCount(), primary.Store().Index(s.Name).NodeCount(); got != want {
				t.Fatalf("index %q: %d nodes after adoption, want %d", s.Name, got, want)
			}
			// Membership must work on the adopted index.
			tab := replica.Catalog().Table(s.Table)
			for i := 0; i < tab.Len(); i++ {
				if !ix.Contains(tab.Row(i)) {
					t.Fatalf("index %q: adopted root misses row %d", s.Name, i)
				}
			}
		}
		got := replica.Check(cts)
		for i, res := range got {
			if res.Err != nil {
				t.Fatalf("replica check %s: %v", cts[i].Name, res.Err)
			}
			if res.Method != core.MethodBDD {
				t.Fatalf("replica check %s went through %s, want bdd (reason: %v)",
					cts[i].Name, res.Method, res.FallbackReason)
			}
			if res.Violated != want[i].Violated {
				t.Fatalf("replica check %s: violated=%v, primary says %v",
					cts[i].Name, res.Violated, want[i].Violated)
			}
		}
	}

	t.Run("copyto", func(t *testing.T) {
		replica := core.New(cat.Clone(), primary.Options())
		if err := replica.AdoptIndices(primary.Store().Kernel(), snaps); err != nil {
			t.Fatal(err)
		}
		check(t, replica)
	})

	t.Run("saveload", func(t *testing.T) {
		// Persist the snapshot roots, reload them into an intermediate
		// kernel with the same variable layout, then adopt from there.
		roots := make([]bdd.Ref, len(snaps))
		for i, s := range snaps {
			roots[i] = s.Root
		}
		var buf bytes.Buffer
		if err := primary.Store().Kernel().Save(&buf, roots...); err != nil {
			t.Fatal(err)
		}
		mid := bdd.New(bdd.Config{Vars: primary.Store().Kernel().NumVars()})
		loaded, err := mid.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		reSnaps := make([]core.IndexSnapshot, len(snaps))
		for i, s := range snaps {
			reSnaps[i] = s
			reSnaps[i].Root = loaded[i]
		}
		replica := core.New(cat.Clone(), primary.Options())
		if err := replica.AdoptIndices(mid, reSnaps); err != nil {
			t.Fatal(err)
		}
		check(t, replica)
	})
}

func TestNoSQLFallbackStopsBeforeSQL(t *testing.T) {
	cat := buildCurriculum(t)
	chk := newChecker(t, cat)
	cts := curriculumConstraints(t)

	// A 1-node budget forces the BDD path to abort; with NoSQLFallback the
	// result must report the needed fallback instead of running the scan.
	res := chk.CheckOneOpts(cts[0], core.CheckOptions{NodeBudget: 1, NoSQLFallback: true})
	if !res.FellBack || res.Err == nil {
		t.Fatalf("want reported fallback, got %+v", res)
	}
	if !errors.Is(res.Err, bdd.ErrBudget) {
		t.Fatalf("Err = %v, want ErrBudget", res.Err)
	}
	if got := chk.Stats().SQLFallbacks; got != 0 {
		t.Fatalf("SQLFallbacks = %d, want 0 (no SQL may run)", got)
	}

	// Without the option the same budget degrades to SQL as before.
	res = chk.CheckOneOpts(cts[0], core.CheckOptions{NodeBudget: 1})
	if res.Err != nil || res.Method != core.MethodSQL || !res.FellBack {
		t.Fatalf("want SQL fallback result, got %+v", res)
	}
	if !res.Violated {
		t.Fatal("SQL fallback must still find the violation")
	}
}
