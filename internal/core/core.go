// Package core is the public face of the reproduction: the constraint
// Checker. Given a catalog of tables, a set of logical indices and a set of
// first-order constraints, it quickly identifies which constraints are
// violated (the paper's headline problem), evaluating each constraint
// against the BDD indices with the §4 rewrite rules and falling back to SQL
// processing when an index is missing or the node budget is exceeded —
// exactly the execution strategy of §4 and §5.2.
//
// Typical use:
//
//	cat := relation.NewCatalog()
//	cust, _ := cat.CreateTable("CUST", []relation.Column{...})
//	// ... load data ...
//	chk := core.New(cat, core.Options{})
//	chk.BuildIndex("CUST", "CUST", nil, core.OrderProbConverge)
//	results := chk.Check(constraints)
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/bdd"
	"repro/internal/fdd"
	"repro/internal/index"
	"repro/internal/logic"
	"repro/internal/ordering"
	"repro/internal/relation"
	"repro/internal/sqlengine"
)

// DefaultNodeBudget is the node threshold the paper selects in §5.2: large
// enough for most constraints, small enough that explosions are detected
// quickly.
const DefaultNodeBudget = 1_000_000

// OrderingMethod selects how BuildIndex orders the variable blocks.
type OrderingMethod int

// Ordering methods.
const (
	// OrderSchema keeps the schema column order.
	OrderSchema OrderingMethod = iota
	// OrderProbConverge uses the Prob-Converge heuristic (§3.2), the
	// paper's recommended choice.
	OrderProbConverge
	// OrderMaxInfGain uses the information-gain heuristic (§3.1).
	OrderMaxInfGain
	// OrderRandom uses a random permutation (the "BDD: random" baseline of
	// Table 1).
	OrderRandom
)

func (m OrderingMethod) String() string {
	switch m {
	case OrderSchema:
		return "schema"
	case OrderProbConverge:
		return "prob-converge"
	case OrderMaxInfGain:
		return "max-inf-gain"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("OrderingMethod(%d)", int(m))
	}
}

// ParseOrderingMethod maps the CLI spelling of an ordering method ("prob",
// "maxinf", "random", "schema") to the OrderingMethod constant.
func ParseOrderingMethod(s string) (OrderingMethod, error) {
	switch s {
	case "prob":
		return OrderProbConverge, nil
	case "maxinf":
		return OrderMaxInfGain, nil
	case "random":
		return OrderRandom, nil
	case "schema":
		return OrderSchema, nil
	default:
		return 0, fmt.Errorf("core: unknown ordering %q (want prob|maxinf|random|schema)", s)
	}
}

// Options configures a Checker.
type Options struct {
	// NodeBudget bounds the shared BDD node table; DefaultNodeBudget when
	// zero. Negative means unlimited.
	NodeBudget int
	// CacheSize is the kernel operation-cache size (entries per cache).
	CacheSize int
	// Eval selects the evaluation strategy; DefaultEvalOptions when zero.
	Eval logic.EvalOptions
	// RandomSeed seeds OrderRandom index builds.
	RandomSeed int64
	// NoFDFastPath disables the specialized functional-dependency check
	// (projection + model counting on the index BDD, §5.2 / Figure 5(b))
	// and forces FD constraints through the generic evaluator.
	NoFDFastPath bool
}

// Method says how a constraint was validated.
type Method string

// Validation methods.
const (
	MethodBDD Method = "bdd"
	MethodSQL Method = "sql"
)

// Result reports the validation of one constraint.
type Result struct {
	Constraint logic.Constraint
	// Violated reports whether the constraint fails on the current data.
	Violated bool
	// Method says whether the BDD indices or the SQL fallback decided it.
	Method Method
	// FellBack is set when BDD evaluation was attempted but aborted (node
	// budget) or impossible (missing index), and SQL took over.
	FellBack bool
	// FallbackReason carries the error that caused the fallback.
	FallbackReason error
	// Duration is the wall-clock validation time.
	Duration time.Duration
	// SQLDuration is the part of Duration spent in the SQL fallback
	// (compile + run); zero when the fallback did not run.
	SQLDuration time.Duration
	// Kernel is the BDD-kernel counter movement (nodes allocated, GC runs,
	// cache hits, apply ops) attributable to this validation — the tracing
	// layer's per-stage attribution. Capturing it is two counter snapshots.
	Kernel bdd.Delta
	// Err is set when validation failed outright (e.g. analysis errors).
	Err error
}

// BDDDuration is the part of Duration spent in BDD work (index evaluation
// or the FD fast path) rather than the SQL fallback.
func (r Result) BDDDuration() time.Duration { return r.Duration - r.SQLDuration }

// Checker validates constraints against a catalog using logical indices.
type Checker struct {
	catalog *relation.Catalog
	store   *index.Store
	ev      *logic.Evaluator
	opts    Options
	rng     *rand.Rand
	// indexRegistry maps table name → names of indices built over it, for
	// incremental maintenance.
	indexRegistry map[string][]string
	stats         Stats
	// reorderBaseline is the live-node count right after the last reorder
	// (or the first MaybeReorder observation); the growth trigger compares
	// against it.
	reorderBaseline int
}

// Stats counts how the checker decided constraints since creation.
type Stats struct {
	// BDDChecks counts constraints decided by the generic BDD evaluator.
	BDDChecks int
	// FDFastPath counts constraints decided by the FD projection fast path.
	FDFastPath int
	// SQLFallbacks counts constraints that fell back to the SQL engine
	// (missing index or exceeded node budget).
	SQLFallbacks int
	// Errors counts constraints whose validation failed outright.
	Errors int
}

// Stats returns the checker's decision counters.
func (c *Checker) Stats() Stats { return c.stats }

// KernelStats snapshots the shared BDD kernel's counters (node counts, GC
// runs, cache hits), for monitoring endpoints.
func (c *Checker) KernelStats() bdd.Stats { return c.store.Kernel().Stats() }

// New creates a Checker over the catalog.
func New(catalog *relation.Catalog, opts Options) *Checker {
	budget := opts.NodeBudget
	switch {
	case budget == 0:
		budget = DefaultNodeBudget
	case budget < 0:
		budget = 0 // unlimited
	}
	store := index.NewStore(index.Options{NodeBudget: budget, CacheSize: opts.CacheSize})
	zero := logic.EvalOptions{}
	if opts.Eval == zero {
		opts.Eval = logic.DefaultEvalOptions()
	}
	c := &Checker{
		catalog:       catalog,
		store:         store,
		opts:          opts,
		rng:           rand.New(rand.NewSource(opts.RandomSeed + 1)),
		indexRegistry: make(map[string][]string),
	}
	c.ev = logic.NewEvaluator(store, resolver{c}, opts.Eval)
	return c
}

// Catalog returns the underlying catalog.
func (c *Checker) Catalog() *relation.Catalog { return c.catalog }

// Store returns the underlying index store.
func (c *Checker) Store() *index.Store { return c.store }

// Evaluator returns the BDD constraint evaluator.
func (c *Checker) Evaluator() *logic.Evaluator { return c.ev }

// Resolver returns the checker's predicate resolver (index names first,
// then table names), for use with logic.Analyze or sqlengine.Compile.
func (c *Checker) Resolver() logic.Resolver { return resolver{c} }

// resolver resolves predicate names: an index name wins (predicates then
// range over the indexed projection), otherwise a table name with full
// schema arity.
type resolver struct{ c *Checker }

// ResolvePred implements logic.Resolver.
func (r resolver) ResolvePred(name string, arity int) (*relation.Table, []int, error) {
	if ix := r.c.store.Index(name); ix != nil {
		if arity != len(ix.Columns()) {
			return nil, nil, fmt.Errorf("core: index %q covers %d columns, predicate written with %d arguments",
				name, len(ix.Columns()), arity)
		}
		return ix.Table(), ix.Columns(), nil
	}
	return logic.CatalogResolver{Catalog: r.c.catalog}.ResolvePred(name, arity)
}

// BuildIndex builds a logical index named name over the given columns of
// table (all columns when cols is nil), choosing the variable-block layout
// with the given ordering method. The index name doubles as a predicate
// name in constraints.
func (c *Checker) BuildIndex(name, table string, cols []string, method OrderingMethod) (*index.Index, error) {
	t := c.catalog.Table(table)
	if t == nil {
		return nil, fmt.Errorf("core: unknown table %q", table)
	}
	colIdx := make([]int, 0, t.NumCols())
	if cols == nil {
		for i := 0; i < t.NumCols(); i++ {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range cols {
			i := t.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("core: table %q has no column %q", table, name)
			}
			colIdx = append(colIdx, i)
		}
	}
	order, err := c.orderFor(t, colIdx, method)
	if err != nil {
		return nil, err
	}
	ix, err := c.store.Build(name, t, colIdx, order)
	if err != nil {
		return nil, err
	}
	c.indexRegistry[table] = append(c.indexRegistry[table], name)
	return ix, nil
}

// orderFor computes a variable ordering (a permutation of positions into
// cols) for the projection of t onto cols.
func (c *Checker) orderFor(t *relation.Table, cols []int, method OrderingMethod) ([]int, error) {
	switch method {
	case OrderSchema:
		return nil, nil
	case OrderRandom:
		return ordering.Random(c.rng, len(cols)), nil
	case OrderProbConverge, OrderMaxInfGain:
		proj, err := projectionTable(c.catalog, t, cols)
		if err != nil {
			return nil, err
		}
		if method == OrderProbConverge {
			return ordering.ProbConverge(proj, nil), nil
		}
		return ordering.MaxInfGain(proj), nil
	default:
		return nil, fmt.Errorf("core: unknown ordering method %v", method)
	}
}

// projectionTable materializes the projection of t onto cols as an
// anonymous table for the statistics computations.
func projectionTable(cat *relation.Catalog, t *relation.Table, cols []int) (*relation.Table, error) {
	if len(cols) == t.NumCols() {
		schema := true
		for i, c := range cols {
			if c != i {
				schema = false
				break
			}
		}
		if schema {
			return t, nil
		}
	}
	specs := make([]relation.Column, len(cols))
	names := t.ColumnNames()
	for i, col := range cols {
		specs[i] = relation.Column{Name: names[col], Domain: t.ColumnDomain(col).Name()}
	}
	proj, err := cat.CreateTable(fmt.Sprintf("%s$proj%d", t.Name(), len(cat.Tables())), specs)
	if err != nil {
		return nil, err
	}
	for r := 0; r < t.Len(); r++ {
		row := t.Row(r)
		enc := make([]int32, len(cols))
		for i, col := range cols {
			enc[i] = row[col]
		}
		proj.InsertCodes(enc)
	}
	return proj, nil
}

// CheckOne validates a single constraint: functional dependencies go
// through the projection-and-counting fast path of Figure 5(b), everything
// else through generic BDD evaluation, with SQL fallback on missing index
// or exceeded node budget.
func (c *Checker) CheckOne(ct logic.Constraint) Result {
	return c.checkOne(ct, CheckOptions{})
}

func (c *Checker) checkOne(ct logic.Constraint, opts CheckOptions) (res Result) {
	k := c.store.Kernel()
	before := k.Stats()
	defer func() { res.Kernel = k.Stats().DeltaSince(before) }()
	if !c.opts.NoFDFastPath {
		if res, ok := c.tryFDFastPath(ct); ok {
			c.stats.FDFastPath++
			return res
		}
	}
	start := time.Now()
	res = Result{Constraint: ct, Method: MethodBDD}
	out, err := c.ev.Eval(ct)
	if err == nil {
		c.stats.BDDChecks++
		res.Violated = !out.Holds
		res.Duration = time.Since(start)
		return res
	}
	if !errors.Is(err, logic.ErrNoIndex) && !errors.Is(err, bdd.ErrBudget) {
		c.stats.Errors++
		res.Err = err
		res.Duration = time.Since(start)
		return res
	}
	if opts.NoSQLFallback {
		// The caller wants the fallback routed elsewhere (a read-only
		// replica has no live data to scan): report the need without
		// running SQL and without claiming the fallback in the stats —
		// whoever re-runs the constraint counts it.
		res.FellBack = true
		res.FallbackReason = err
		res.Err = err
		res.Duration = time.Since(start)
		return res
	}
	c.stats.SQLFallbacks++
	res.Method = MethodSQL
	res.FellBack = true
	res.FallbackReason = err
	sqlStart := time.Now()
	q, err := sqlengine.Compile(ct, resolver{c})
	if err != nil {
		c.stats.Errors++
		res.Err = err
		res.SQLDuration = time.Since(sqlStart)
		res.Duration = time.Since(start)
		return res
	}
	violated, _, err := q.Run()
	if err != nil {
		c.stats.Errors++
		res.Err = err
	}
	res.Violated = violated
	res.SQLDuration = time.Since(sqlStart)
	res.Duration = time.Since(start)
	return res
}

// CheckOptions tunes a single validation call.
type CheckOptions struct {
	// NodeBudget, when positive, caps the kernel node budget for the
	// duration of this call. It never raises the budget above the
	// checker-wide limit; a cap below the nodes already live makes BDD
	// evaluation abort immediately and the call degrade to the SQL fallback.
	// A long-lived service maps per-request deadlines onto this cap.
	NodeBudget int
	// NoSQLFallback, when set, stops a check that needs the SQL fallback
	// (missing index or exceeded budget) before the table scan: the Result
	// comes back with FellBack set and Err carrying the reason, and no SQL
	// runs. Read-only replicas use this to bounce fallback work to the
	// primary, which sees the live tables.
	NoSQLFallback bool
}

// CheckOneOpts validates a single constraint like CheckOne, under the
// per-call options.
func (c *Checker) CheckOneOpts(ct logic.Constraint, opts CheckOptions) (res Result) {
	c.withBudget(opts.NodeBudget, func() { res = c.checkOne(ct, opts) })
	return res
}

// withBudget runs f with the kernel budget temporarily capped at budget
// (when positive), restoring the previous budget afterwards.
func (c *Checker) withBudget(budget int, f func()) {
	if budget <= 0 {
		f()
		return
	}
	k := c.store.Kernel()
	prev := k.Budget()
	if prev > 0 && prev < budget {
		budget = prev
	}
	k.SetBudget(budget)
	defer k.SetBudget(prev)
	f()
}

// tryFDFastPath checks a functional-dependency constraint by projection and
// model counting on the index BDD: project the index onto determinant +
// dependent columns, count the distinct projected tuples, project the
// dependent away, count again — the FD holds iff the two counts coincide.
// This is the Figure 5(b) strategy ("projection of suitable attributes to
// construct new BDDs and manipulation of the resulting BDDs").
func (c *Checker) tryFDFastPath(ct logic.Constraint) (Result, bool) {
	fd, ok := logic.DetectFD(ct.F)
	if !ok {
		return Result{}, false
	}
	ix := c.store.Index(fd.Pred)
	if ix == nil || len(ix.Domains()) != fd.Arity {
		return Result{}, false
	}
	start := time.Now()
	k := c.store.Kernel()
	mark := k.TempMark()
	defer k.TempRelease(mark)
	doms := ix.Domains()
	keep := make(map[int]bool, len(fd.Determinant)+1)
	for _, i := range fd.Determinant {
		keep[i] = true
	}
	keep[fd.Dependent] = true
	var drop []*fdd.Domain
	var pairVars, detVars []int
	for i, d := range doms {
		if !keep[i] {
			drop = append(drop, d)
			continue
		}
		pairVars = append(pairVars, d.Vars()...)
		if i != fd.Dependent {
			detVars = append(detVars, d.Vars()...)
		}
	}
	sort.Ints(pairVars)
	sort.Ints(detVars)
	pairsBDD := ix.Root()
	if len(drop) > 0 {
		pairsBDD = fdd.Exists(pairsBDD, drop...)
		if pairsBDD == bdd.Invalid {
			c.ev.Recover()
			return Result{}, false // budget hit; let the generic path decide
		}
	}
	k.TempKeep(pairsBDD)
	groupsBDD := fdd.Exists(pairsBDD, doms[fd.Dependent])
	if groupsBDD == bdd.Invalid {
		c.ev.Recover()
		return Result{}, false
	}
	k.TempKeep(groupsBDD)
	pairs := k.SatCountWithin(pairsBDD, pairVars)
	groups := k.SatCountWithin(groupsBDD, detVars)
	return Result{
		Constraint: ct,
		Method:     MethodBDD,
		Violated:   pairs > groups,
		Duration:   time.Since(start),
	}, true
}

// Check validates every constraint and returns per-constraint results in
// input order.
func (c *Checker) Check(cs []logic.Constraint) []Result {
	out := make([]Result, len(cs))
	for i, ct := range cs {
		out[i] = c.CheckOne(ct)
	}
	return out
}

// Witness is one violating binding of a constraint's leading universally
// quantified variables.
type Witness struct {
	Vars   []string
	Values []string
}

// ViolationWitnesses extracts up to limit violating bindings from the BDD
// evaluation of a violated constraint (the paper proposes identifying the
// violated constraints fast, then drilling into tuples; the violation BDD
// gives the drill-down for free). It returns ErrNoIndex/ErrBudget like
// Eval; callers then use ViolatingRows.
func (c *Checker) ViolationWitnesses(ct logic.Constraint, limit int) ([]Witness, error) {
	out, err := c.ev.Eval(ct)
	if err != nil {
		return nil, err
	}
	if out.Mode != logic.CheckValidity {
		return nil, fmt.Errorf("core: constraint %s is an existence check; it has no per-binding witnesses", ct.Name)
	}
	if out.Holds || limit == 0 {
		return nil, nil
	}
	an, err := logic.Analyze(ct.F, resolver{c})
	if err != nil {
		return nil, err
	}
	k := c.store.Kernel()
	blocks := make([]*fdd.Domain, len(out.Stripped))
	valueDoms := make([]*relation.Domain, len(out.Stripped))
	varNames := make([]string, len(out.Stripped))
	for i, v := range out.Stripped {
		blocks[i] = out.Blocks[v]
		valueDoms[i] = an.Domain(v)
		varNames[i] = logic.BaseName(v)
	}
	var witnesses []Witness
	k.AllSat(out.Violations, func(path []bdd.Literal) bool {
		fixed := make(map[int]bool, len(path))
		for _, l := range path {
			fixed[l.Var] = l.Value
		}
		// Expand don't-care bits block by block, bounded by limit.
		vals := make([]int, len(blocks))
		var expand func(bi int) bool
		expand = func(bi int) bool {
			if bi == len(blocks) {
				w := Witness{Vars: varNames, Values: make([]string, len(blocks))}
				for i, d := range valueDoms {
					if d != nil && vals[i] < d.Size() {
						w.Values[i] = d.Value(int32(vals[i]))
					} else {
						w.Values[i] = fmt.Sprintf("#%d", vals[i])
					}
				}
				witnesses = append(witnesses, w)
				return len(witnesses) < limit
			}
			b := blocks[bi]
			// Collect the fixed bits and the positions (bit weights) of the
			// free bits of this block on the current path.
			base := 0
			var freeWeights []int
			for j, bit := range b.Vars() {
				weight := b.Bits() - 1 - j
				if val, ok := fixed[bit]; ok {
					if val {
						base |= 1 << weight
					}
				} else {
					freeWeights = append(freeWeights, weight)
				}
			}
			var enum func(v int, free []int) bool
			enum = func(v int, free []int) bool {
				if len(free) == 0 {
					if v >= b.Size() {
						return true // out-of-domain slot, skip
					}
					vals[bi] = v
					return expand(bi + 1)
				}
				if !enum(v, free[1:]) {
					return false
				}
				return enum(v|1<<free[0], free[1:])
			}
			return enum(base, freeWeights)
		}
		return expand(0)
	})
	return witnesses, nil
}

// ViolationWitnessesOpts extracts witnesses like ViolationWitnesses, under
// the per-call options.
func (c *Checker) ViolationWitnessesOpts(ct logic.Constraint, limit int, opts CheckOptions) (ws []Witness, err error) {
	c.withBudget(opts.NodeBudget, func() { ws, err = c.ViolationWitnesses(ct, limit) })
	return ws, err
}

// ViolatingRows runs the compiled SQL violation query and returns the
// violating bindings — the precise-tuple identification step the paper
// performs with SQL after a constraint is known to be violated.
func (c *Checker) ViolatingRows(ct logic.Constraint) (*sqlengine.Rows, error) {
	q, err := sqlengine.Compile(ct, resolver{c})
	if err != nil {
		return nil, err
	}
	_, rows, err := q.Run()
	return rows, err
}

// SQLOf renders the violation query of a constraint in explanatory SQL.
func (c *Checker) SQLOf(ct logic.Constraint) (string, error) {
	q, err := sqlengine.Compile(ct, resolver{c})
	if err != nil {
		return "", err
	}
	return q.SQL(), nil
}

// UpdateOp names a tuple-level mutation kind.
type UpdateOp string

// Update operations.
const (
	UpdateInsert UpdateOp = "insert"
	UpdateDelete UpdateOp = "delete"
)

// Update is one tuple-level mutation, for batched application.
type Update struct {
	// Table names the target table.
	Table string
	// Op is the mutation kind.
	Op UpdateOp
	// Values are the tuple's attribute values in schema order.
	Values []string
}

// Apply applies a batch of updates through the incremental index maintenance
// path, in order, stopping at the first error. It returns how many updates
// were applied; on error the earlier updates of the batch remain applied
// (tuple updates are independent, there is no transactional rollback).
func (c *Checker) Apply(ups []Update) (int, error) {
	for i, u := range ups {
		var err error
		switch u.Op {
		case UpdateInsert:
			err = c.InsertTuple(u.Table, u.Values...)
		case UpdateDelete:
			err = c.DeleteTuple(u.Table, u.Values...)
		default:
			err = fmt.Errorf("core: unknown update op %q", u.Op)
		}
		if err != nil {
			return i, fmt.Errorf("core: update %d: %w", i, err)
		}
	}
	return len(ups), nil
}

// InsertTuple inserts into the table and updates every index over it.
func (c *Checker) InsertTuple(table string, vals ...string) error {
	t := c.catalog.Table(table)
	if t == nil {
		return fmt.Errorf("core: unknown table %q", table)
	}
	if len(vals) != t.NumCols() {
		return fmt.Errorf("core: insert into %q with %d values, want %d", table, len(vals), t.NumCols())
	}
	row := t.Insert(vals...)
	return c.updateIndices(t, func(ix *index.Index) error { return ix.Insert(row) })
}

// DeleteTuple deletes from the table and updates every index over it,
// respecting bag semantics (the index keeps the tuple while duplicates
// remain).
func (c *Checker) DeleteTuple(table string, vals ...string) error {
	t := c.catalog.Table(table)
	if t == nil {
		return fmt.Errorf("core: unknown table %q", table)
	}
	if len(vals) != t.NumCols() {
		return fmt.Errorf("core: delete from %q with %d values, want %d", table, len(vals), t.NumCols())
	}
	row := make([]int32, len(vals))
	for i, v := range vals {
		code, ok := t.ColumnDomain(i).Code(v)
		if !ok {
			return fmt.Errorf("core: value %q not present in %s column %d", v, table, i)
		}
		row[i] = code
	}
	if !t.DeleteCodes(row) {
		return fmt.Errorf("core: tuple not found in %s", table)
	}
	return c.updateIndices(t, func(ix *index.Index) error {
		still := projectionPresent(t, ix.Columns(), row)
		return ix.Delete(row, still)
	})
}

func projectionPresent(t *relation.Table, cols []int, row []int32) bool {
	for i := 0; i < t.Len(); i++ {
		r := t.Row(i)
		same := true
		for _, c := range cols {
			if r[c] != row[c] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func (c *Checker) updateIndices(t *relation.Table, update func(*index.Index) error) error {
	for _, name := range c.indexNamesFor(t) {
		if err := update(c.store.Index(name)); err != nil {
			return err
		}
	}
	return nil
}

func (c *Checker) indexNamesFor(t *relation.Table) []string {
	return c.indexRegistry[t.Name()]
}
