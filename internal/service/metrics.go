package service

// metrics.go builds the server's /metricsz surface: one obs.Registry wired
// to the counters the server already keeps (request atomics, the worker's
// published snapshot, the replica pool's per-worker stats) plus the latency
// histograms observed on the request path. Construction happens once in New;
// every gauge callback reads only atomically-published state (s.snap,
// pool.Stats()), never a live kernel, so scrapes are safe from any
// goroutine.

import (
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// serverMetrics owns the histograms and counters observed on the hot path.
// Gauges and counters that mirror existing server state are registered as
// callbacks and have no field here.
type serverMetrics struct {
	reg *obs.Registry

	// End-to-end request latency by endpoint, observed in the HTTP layer.
	reqCheck, reqWitnesses, reqUpdate *obs.Histogram

	// Per-stage latency, observed by the worker (and the replica dispatch
	// path for queue_wait/eval).
	stQueueWait *obs.Histogram
	stEval      *obs.Histogram
	stSQL       *obs.Histogram
	stWitness   *obs.Histogram
	stApply     *obs.Histogram
	stFreeze    *obs.Histogram

	// Dynamic-reordering pause time, observed by the worker around each
	// sifting run.
	stReorder *obs.Histogram

	// Replica-pool job latency, observed inside internal/replica.
	replicaQueueWait, replicaRun *obs.Histogram

	slowRequests *obs.Counter
	// HTTP responses by status class; index status/100 (2, 4, 5). Other
	// classes are unregistered and dropped.
	resp [6]*obs.Counter
}

// observeResponse counts one HTTP response by status class.
func (m *serverMetrics) observeResponse(status int) {
	if c := m.resp[status/100%6]; c != nil {
		c.Inc()
	}
}

// endpointHist returns the request-duration histogram for an endpoint name,
// or nil for endpoints without one (healthz, statsz, metricsz).
func (m *serverMetrics) endpointHist(endpoint string) *obs.Histogram {
	switch endpoint {
	case "check":
		return m.reqCheck
	case "witnesses":
		return m.reqWitnesses
	case "update":
		return m.reqUpdate
	}
	return nil
}

func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}

	r.GaugeFunc("cv_uptime_seconds", "", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	const reqHelp = "Requests accepted, by endpoint."
	r.CounterFunc("cv_requests_total", `endpoint="check"`, reqHelp, s.nChecks.Load)
	r.CounterFunc("cv_requests_total", `endpoint="witnesses"`, reqHelp, s.nWitnesses.Load)
	r.CounterFunc("cv_requests_total", `endpoint="update"`, reqHelp, s.nUpdateJobs.Load)

	const rejHelp = "Requests rejected before running, by reason."
	r.CounterFunc("cv_request_rejects_total", `reason="deadline"`, rejHelp, s.nDeadlineRejects.Load)
	r.CounterFunc("cv_request_rejects_total", `reason="queue"`, rejHelp, s.nQueueRejects.Load)

	r.CounterFunc("cv_update_tuples_total", "", "Tuples applied through the incremental maintenance path.", s.nUpdateTuples.Load)
	r.CounterFunc("cv_update_batches_total", "", "Coalesced update batches applied by the worker.", s.nBatches.Load)

	const durHelp = "End-to-end request latency in seconds, by endpoint."
	m.reqCheck = r.Histogram("cv_request_duration_seconds", `endpoint="check"`, durHelp)
	m.reqWitnesses = r.Histogram("cv_request_duration_seconds", `endpoint="witnesses"`, durHelp)
	m.reqUpdate = r.Histogram("cv_request_duration_seconds", `endpoint="update"`, durHelp)

	const stageHelp = "Per-stage request latency in seconds."
	m.stQueueWait = r.Histogram("cv_stage_duration_seconds", `stage="queue_wait"`, stageHelp)
	m.stEval = r.Histogram("cv_stage_duration_seconds", `stage="eval"`, stageHelp)
	m.stSQL = r.Histogram("cv_stage_duration_seconds", `stage="sql"`, stageHelp)
	m.stWitness = r.Histogram("cv_stage_duration_seconds", `stage="witness_enum"`, stageHelp)
	m.stApply = r.Histogram("cv_stage_duration_seconds", `stage="apply"`, stageHelp)
	m.stFreeze = r.Histogram("cv_stage_duration_seconds", `stage="freeze"`, stageHelp)

	m.slowRequests = r.Counter("cv_slow_requests_total", "", "Requests at or above the slow-request threshold.")

	// Dynamic-reordering metrics. Count and nodes-saved mirror the primary
	// kernel's counters through the worker-published snapshot; the duration
	// histogram is the sift pause observed by the worker.
	kernelCounter := func(pick func(kernelView) uint64) func() uint64 {
		return func() uint64 {
			if snap := s.snap.Load(); snap != nil {
				return pick(snap.kernel)
			}
			return 0
		}
	}
	r.CounterFunc("cv_reorder_count", "", "Completed dynamic variable-reordering (sifting) runs.",
		kernelCounter(func(kv kernelView) uint64 { return uint64(kv.Reorders) }))
	r.CounterFunc("cv_reorder_nodes_saved", "", "Cumulative live-node reduction achieved by reordering runs.",
		kernelCounter(func(kv kernelView) uint64 { return kv.ReorderSaved }))
	m.stReorder = r.Histogram("cv_reorder_duration_seconds", "", "Write-path pause taken by one reordering run, in seconds.")

	const respHelp = "HTTP responses sent, by status class."
	m.resp[2] = r.Counter("cv_http_responses_total", `class="2xx"`, respHelp)
	m.resp[4] = r.Counter("cv_http_responses_total", `class="4xx"`, respHelp)
	m.resp[5] = r.Counter("cv_http_responses_total", `class="5xx"`, respHelp)

	// Checker decision counters, read from the worker-published snapshot.
	const decHelp = "Constraint validations decided, by method."
	decision := func(pick func(*snapshot) int) func() uint64 {
		return func() uint64 {
			if snap := s.snap.Load(); snap != nil {
				return uint64(pick(snap))
			}
			return 0
		}
	}
	r.CounterFunc("cv_checker_decisions_total", `method="bdd"`, decHelp,
		decision(func(sn *snapshot) int { return sn.checker.BDDChecks }))
	r.CounterFunc("cv_checker_decisions_total", `method="fd"`, decHelp,
		decision(func(sn *snapshot) int { return sn.checker.FDFastPath }))
	r.CounterFunc("cv_checker_decisions_total", `method="sql"`, decHelp,
		decision(func(sn *snapshot) int { return sn.checker.SQLFallbacks }))
	r.CounterFunc("cv_checker_errors_total", "", "Constraint validations that failed outright.",
		decision(func(sn *snapshot) int { return sn.checker.Errors }))

	// Primary-kernel counters, from the same snapshot. Scrapes must never
	// touch the live kernel: it belongs to the worker goroutine.
	registerKernel(r, `kernel="primary"`, func() (kernelView, bool) {
		if snap := s.snap.Load(); snap != nil {
			return snap.kernel, true
		}
		return kernelView{}, false
	})

	const qHelp = "Admission queue depth (jobs waiting)."
	const qcHelp = "Admission queue capacity."
	r.GaugeFunc("cv_queue_depth", `queue="checks"`, qHelp, func() float64 { return float64(len(s.checks)) })
	r.GaugeFunc("cv_queue_depth", `queue="updates"`, qHelp, func() float64 { return float64(len(s.updates)) })
	r.GaugeFunc("cv_queue_capacity", `queue="checks"`, qcHelp, func() float64 { return float64(cap(s.checks)) })
	r.GaugeFunc("cv_queue_capacity", `queue="updates"`, qcHelp, func() float64 { return float64(cap(s.updates)) })

	if s.pool != nil {
		pool := s.pool
		r.GaugeFunc("cv_replica_pool_size", "", "Replica read-pool workers.",
			func() float64 { return float64(pool.Size()) })
		r.GaugeFunc("cv_replica_epoch", "", "Latest published index version epoch.",
			func() float64 { return float64(pool.Epoch()) })
		r.CounterFunc("cv_replica_swaps_total", "", "Version handoffs completed by replica workers.", pool.Swaps)
		r.CounterFunc("cv_replica_checks_total", "", "Check requests served on the replica pool.", s.nReplicaChecks.Load)
		r.CounterFunc("cv_replica_witnesses_total", "", "Witness requests served on the replica pool.", s.nReplicaWitness.Load)
		r.CounterFunc("cv_replica_reroutes_total", "", "Constraints rerouted from a replica to the primary for SQL fallback.", s.nReroutes.Load)
		m.replicaQueueWait = r.Histogram("cv_replica_queue_wait_seconds", "", "Replica job submission-to-pickup latency in seconds.")
		m.replicaRun = r.Histogram("cv_replica_run_seconds", "", "Replica job execution time in seconds.")

		// Per-replica kernel counters, from the workers' atomically-published
		// stats. pool.Stats() copies every worker's snapshot; with a handful
		// of workers per pool the per-scrape cost is negligible.
		for i := 0; i < pool.Size(); i++ {
			i := i
			registerKernel(r, `kernel="replica-`+strconv.Itoa(i)+`"`, func() (kernelView, bool) {
				return kernelViewOf(pool.Stats()[i].Kernel), true
			})
		}
	}

	if s.st != nil {
		st := s.st
		st.SetMetrics(&store.Metrics{
			WALAppend:     r.Histogram("cv_wal_append_seconds", "", "WAL batch append (and fsync, per policy) latency in seconds."),
			SnapshotWrite: r.Histogram("cv_snapshot_write_seconds", "", "Epoch snapshot write latency in seconds."),
		})
		r.CounterFunc("cv_wal_appends_total", "", "Update batches appended to the WAL.", st.WALAppends)
		r.CounterFunc("cv_wal_bytes_total", "", "Bytes appended to the WAL.", st.WALBytesWritten)
		r.CounterFunc("cv_wal_fsyncs_total", "", "WAL fsync calls issued.", st.Fsyncs)
		r.CounterFunc("cv_wal_errors_total", "", "WAL appends that failed; the affected batches were not acknowledged.", s.nWALErrors.Load)
		r.CounterFunc("cv_snapshot_errors_total", "", "Snapshot writes that failed (the WAL still covers the epochs).", s.nSnapshotErrors.Load)
		r.CounterFunc("cv_recovery_replayed_records_total", "", "WAL records replayed during recovery at boot.", st.ReplayedRecords)
		r.CounterFunc("cv_recovery_replayed_tuples_total", "", "Tuples replayed from the WAL during recovery at boot.", st.ReplayedTuples)
		r.CounterFunc("cv_recovery_torn_tails_total", "", "Torn WAL tails detected and dropped during recovery.", st.TornTails)
		r.CounterFunc("cv_recovery_dropped_bytes_total", "", "Bytes dropped from torn WAL tails during recovery.", st.DroppedTailBytes)
		r.CounterFunc("cv_epoch_checks_total", "", "Point-in-time checks served at historical epochs.", s.nEpochChecks.Load)
		r.GaugeFunc("cv_wal_size_bytes", "", "Current WAL file size in bytes.",
			func() float64 { return float64(st.WALSize()) })
		r.GaugeFunc("cv_snapshot_last_epoch", "", "Epoch of the newest durable snapshot.",
			func() float64 { return float64(st.LastSnapshotEpoch()) })
		r.GaugeFunc("cv_epoch", "", "Last durably acknowledged update epoch.",
			func() float64 { return float64(s.epoch.Load()) })

		// Leader-side replication traffic: any server with a store can feed
		// followers.
		const serveHelp = "Replication artifacts served to followers, by endpoint."
		r.CounterFunc("cv_replication_serves_total", `endpoint="snapshot"`, serveHelp, s.nSnapshotServes.Load)
		r.CounterFunc("cv_replication_serves_total", `endpoint="wal"`, serveHelp, s.nWALServes.Load)
	}

	if s.follow != nil {
		r.GaugeFunc("cv_follower_lag_epochs", "", "Epochs the follower is behind the leader's last reported epoch.",
			func() float64 { return float64(s.followerLag()) })
		r.GaugeFunc("cv_follower_leader_epoch", "", "The leader's last reported epoch.",
			func() float64 { return float64(s.leaderEpoch.Load()) })
		r.GaugeFunc("cv_follower_state", "", "Tail-loop phase: 0 starting, 1 tailing, 2 bootstrapping, 3 retrying.",
			func() float64 { return float64(s.replState.Load()) })
		r.CounterFunc("cv_wal_tail_polls_total", "", "WAL long-polls that reached the leader.", s.nTailPolls.Load)
		r.CounterFunc("cv_wal_tail_errors_total", "", "WAL long-polls that failed (network, decode, or leader error).", s.nTailErrors.Load)
		r.CounterFunc("cv_wal_tail_records_total", "", "WAL records tailed from the leader and applied.", s.nTailRecords.Load)
		r.CounterFunc("cv_wal_tail_tuples_total", "", "Tuples carried by tailed WAL records.", s.nTailTuples.Load)
		r.CounterFunc("cv_snapshot_fetch_total", "", "Snapshot downloads started against the leader.", s.nSnapFetches.Load)
		r.CounterFunc("cv_snapshot_fetch_failures_total", "", "Snapshot downloads that failed or did not verify.", s.nSnapFetchFailures.Load)
		r.CounterFunc("cv_snapshot_fetch_bytes_total", "", "Snapshot bytes streamed from the leader.", s.nSnapFetchBytes.Load)
		r.CounterFunc("cv_follower_rebootstraps_total", "", "Full re-bootstrap cycles (snapshot refetch after pruning or apply failure).", s.nRebootstraps.Load)
	}

	return m
}

// registerKernel registers one kernel's gauge and counter families under the
// given kernel label. view must be safe to call from any goroutine.
func registerKernel(r *obs.Registry, labels string, view func() (kernelView, bool)) {
	gauge := func(pick func(kernelView) float64) func() float64 {
		return func() float64 {
			if kv, ok := view(); ok {
				return pick(kv)
			}
			return 0
		}
	}
	counter := func(pick func(kernelView) uint64) func() uint64 {
		return func() uint64 {
			if kv, ok := view(); ok {
				return pick(kv)
			}
			return 0
		}
	}
	r.GaugeFunc("cv_kernel_live_nodes", labels, "Live BDD nodes, including terminals.",
		gauge(func(kv kernelView) float64 { return float64(kv.Live) }))
	r.GaugeFunc("cv_kernel_peak_nodes", labels, "Peak live BDD nodes observed.",
		gauge(func(kv kernelView) float64 { return float64(kv.Peak) }))
	r.GaugeFunc("cv_kernel_capacity_nodes", labels, "Allocated node-table slots.",
		gauge(func(kv kernelView) float64 { return float64(kv.Capacity) }))
	r.GaugeFunc("cv_kernel_cache_entries", labels, "Per-operation cache entries.",
		gauge(func(kv kernelView) float64 { return float64(kv.CacheEntries) }))
	r.CounterFunc("cv_kernel_gc_runs_total", labels, "Completed kernel garbage collections.",
		counter(func(kv kernelView) uint64 { return uint64(kv.GCRuns) }))
	r.CounterFunc("cv_kernel_ops_total", labels, "Recursive apply steps executed.",
		counter(func(kv kernelView) uint64 { return kv.Ops }))
	r.CounterFunc("cv_kernel_cache_hits_total", labels, "Operation-cache hits.",
		counter(func(kv kernelView) uint64 { return kv.CacheHits }))
	r.CounterFunc("cv_kernel_nodes_allocated_total", labels, "Nodes allocated since kernel creation (monotonic).",
		counter(func(kv kernelView) uint64 { return kv.Allocs }))
	// The three operation caches are sized independently; a per-op hit rate
	// says which one is earning its memory. Lifetime ratio, 0 until traffic.
	const hitHelp = "Operation-cache hit rate since kernel creation, by operation."
	rate := func(pick func(kernelView) (hits, lookups uint64)) func() float64 {
		return func() float64 {
			if kv, ok := view(); ok {
				if hits, lookups := pick(kv); lookups > 0 {
					return float64(hits) / float64(lookups)
				}
			}
			return 0
		}
	}
	r.GaugeFunc("cv_kernel_cache_hit_rate", labels+`,op="apply"`, hitHelp,
		rate(func(kv kernelView) (uint64, uint64) { return kv.ApplyHits, kv.ApplyLookups }))
	r.GaugeFunc("cv_kernel_cache_hit_rate", labels+`,op="quant"`, hitHelp,
		rate(func(kv kernelView) (uint64, uint64) { return kv.QuantHits, kv.QuantLookups }))
	r.GaugeFunc("cv_kernel_cache_hit_rate", labels+`,op="replace"`, hitHelp,
		rate(func(kv kernelView) (uint64, uint64) { return kv.ReplaceHits, kv.ReplaceLookups }))
}
