package service

// follower.go is the replica side of replication. A server started with
// Options.Follower bootstraps from the leader's newest snapshot, then tails
// the leader's WAL over /wal long-polls, applying each acknowledged epoch
// through the same incremental-maintenance path the leader used to produce
// it, logging it to its own WAL (so a restart resumes from the local log, no
// refetch), and publishing it through its replica pool. The follower serves
// /check and /witnesses exactly like a leader; /update is refused with 421
// pointing at the leader.
//
// Two goroutines split the work. The tail goroutine owns all leader I/O —
// long-polls, snapshot downloads, retry backoff — and never touches the
// checker. The worker (the same loop that owns the kernel on a leader)
// applies what the tail goroutine hands over via the repl channel: either a
// group of tailed batches or an order to rebuild the checker from the local
// store after a snapshot install. Keeping kernel work on the worker
// preserves the single-owner model; keeping network work off it keeps reads
// responsive while the leader is slow or down.
//
// Failure policy: any local apply or WAL-append failure makes the replica's
// state unreliable (a gap in its log would poison its own recovery), so the
// tail loop responds to either — and to the leader's 410 "pruned past your
// position" — by re-bootstrapping: fetch the newest snapshot, install it
// (verified against the leader's declared length and CRC), and rebuild the
// checker from the store. Everything else (network errors, non-200s) is
// retried with exponential backoff; the follower keeps serving reads from
// its last good state throughout, unless MaxLag says that state is too old.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// ErrStale is returned for live reads on a follower that has fallen more
// than FollowerOptions.MaxLag epochs behind the leader. Mapped to 503: the
// replica is alive but refusing to serve data it knows is too old.
var ErrStale = errors.New("service: follower too far behind the leader")

// errNeedBootstrap routes the tail loop to a snapshot re-fetch: the leader
// pruned past our position, or local apply failed and the checker must be
// rebuilt from a known-good snapshot.
var errNeedBootstrap = errors.New("service: follower needs re-bootstrap")

// maxReplBackoff caps the tail loop's exponential retry delay.
const maxReplBackoff = 5 * time.Second

// FollowerOptions configures follower mode (Options.Follower).
type FollowerOptions struct {
	// URL is the leader's base URL, e.g. "http://10.0.0.1:8080".
	URL string
	// MaxLag, when non-zero, refuses live /check and /witnesses requests
	// with 503 once the follower is more than MaxLag epochs behind the
	// leader's last reported epoch. Zero serves reads at any staleness.
	MaxLag uint64
	// PollWait is how long each /wal long-poll asks the leader to hold the
	// request waiting for news; 10s when zero.
	PollWait time.Duration
	// Backoff is the initial delay after a failed poll or bootstrap,
	// doubling per consecutive failure up to 5s; 250ms when zero.
	Backoff time.Duration
	// Client is the HTTP client for all leader traffic; a fresh client when
	// nil. Do not set Client.Timeout below PollWait: per-request contexts
	// already bound every call.
	Client *http.Client
}

func (f FollowerOptions) withDefaults() FollowerOptions {
	f.URL = strings.TrimRight(f.URL, "/")
	if f.PollWait <= 0 {
		f.PollWait = 10 * time.Second
	}
	if f.Backoff <= 0 {
		f.Backoff = 250 * time.Millisecond
	}
	if f.Client == nil {
		f.Client = &http.Client{}
	}
	return f
}

// followerState is the tail loop's phase, for /statsz and the state gauge.
type followerState int32

const (
	// replStateStarting: no successful poll yet since boot.
	replStateStarting followerState = iota
	// replStateTailing: polling /wal and applying batches.
	replStateTailing
	// replStateBootstrapping: fetching and installing a snapshot.
	replStateBootstrapping
	// replStateRetrying: last attempt failed; waiting out the backoff.
	replStateRetrying
)

func (st followerState) String() string {
	switch st {
	case replStateStarting:
		return "starting"
	case replStateTailing:
		return "tailing"
	case replStateBootstrapping:
		return "bootstrapping"
	case replStateRetrying:
		return "retrying"
	}
	return "unknown"
}

// replJob is the tail goroutine's handover to the worker.
type replJob struct {
	// reload, when true, orders the worker to rebuild its checker from the
	// local store (after the tail goroutine installed a snapshot into it).
	reload bool
	// batches are tailed WAL records to apply, in leader append order.
	batches []store.Batch
	// confirmedEpoch is the leader epoch the poll response covered: every
	// record up to it was delivered, so after applying the batches the
	// follower may adopt it even past the last record (leader rounds that
	// applied zero tuples advance the epoch without writing a record).
	confirmedEpoch uint64
	reply          chan replResult
}

type replResult struct {
	epoch uint64
	err   error
}

// FollowerStats is the follower block of /statsz.
type FollowerStats struct {
	// Leader is the leader's base URL.
	Leader string `json:"leader"`
	// State is the tail loop's phase: starting, tailing, bootstrapping or
	// retrying.
	State string `json:"state"`
	// Epoch is the follower's applied epoch; LeaderEpoch the leader's last
	// reported one; LagEpochs their distance (zero when caught up).
	Epoch       uint64 `json:"epoch"`
	LeaderEpoch uint64 `json:"leader_epoch"`
	LagEpochs   uint64 `json:"lag_epochs"`
	// TailPolls counts /wal requests that reached the leader; TailErrors
	// failed polls; TailRecords and TailTuples what the successful ones
	// delivered and applied.
	TailPolls   uint64 `json:"tail_polls"`
	TailErrors  uint64 `json:"tail_errors"`
	TailRecords uint64 `json:"tail_records"`
	TailTuples  uint64 `json:"tail_tuples"`
	// SnapshotFetches counts snapshot downloads started in this process
	// (boot-time fetches before New are not included), with their failures
	// and total streamed bytes; Rebootstraps counts full re-bootstrap
	// cycles the tail loop was forced into.
	SnapshotFetches       uint64 `json:"snapshot_fetches"`
	SnapshotFetchFailures uint64 `json:"snapshot_fetch_failures"`
	SnapshotFetchBytes    uint64 `json:"snapshot_fetch_bytes"`
	Rebootstraps          uint64 `json:"rebootstraps"`
}

// followerStats assembles the /statsz follower block; nil on a leader.
func (s *Server) followerStats() *FollowerStats {
	if s.follow == nil {
		return nil
	}
	return &FollowerStats{
		Leader:                s.follow.URL,
		State:                 followerState(s.replState.Load()).String(),
		Epoch:                 s.epoch.Load(),
		LeaderEpoch:           s.leaderEpoch.Load(),
		LagEpochs:             s.followerLag(),
		TailPolls:             s.nTailPolls.Load(),
		TailErrors:            s.nTailErrors.Load(),
		TailRecords:           s.nTailRecords.Load(),
		TailTuples:            s.nTailTuples.Load(),
		SnapshotFetches:       s.nSnapFetches.Load(),
		SnapshotFetchFailures: s.nSnapFetchFailures.Load(),
		SnapshotFetchBytes:    s.nSnapFetchBytes.Load(),
		Rebootstraps:          s.nRebootstraps.Load(),
	}
}

// followerLag is the epoch distance to the leader's last reported epoch.
func (s *Server) followerLag() uint64 {
	le, cur := s.leaderEpoch.Load(), s.epoch.Load()
	if le <= cur {
		return 0
	}
	return le - cur
}

// stalenessErr refuses live reads past the configured lag bound; nil on a
// leader, with MaxLag unset, or while caught up.
func (s *Server) stalenessErr() error {
	if s.follow == nil || s.follow.MaxLag == 0 {
		return nil
	}
	if lag := s.followerLag(); lag > s.follow.MaxLag {
		return fmt.Errorf("%w: %d epochs behind (max %d)", ErrStale, lag, s.follow.MaxLag)
	}
	return nil
}

// the tail goroutine

// tailLoop drives the follower until shutdown: poll, apply, and on failure
// back off or re-bootstrap. Started by New; Close cancels replCtx and waits
// on tailDone.
//
//cv:owner any
func (s *Server) tailLoop() {
	defer close(s.tailDone)
	backoff := s.follow.Backoff
	for {
		if s.replCtx.Err() != nil {
			return
		}
		err := s.tailOnce()
		if err == nil {
			backoff = s.follow.Backoff
			continue
		}
		if s.replCtx.Err() != nil || errors.Is(err, ErrShuttingDown) {
			return
		}
		if errors.Is(err, errNeedBootstrap) {
			s.replState.Store(int32(replStateBootstrapping))
			s.nRebootstraps.Add(1)
			s.opts.SlowLog.Printf("follower: re-bootstrapping from %s: %v", s.follow.URL, err)
			berr := s.bootstrapOnce()
			if berr == nil {
				backoff = s.follow.Backoff
				continue
			}
			if s.replCtx.Err() != nil || errors.Is(berr, ErrShuttingDown) {
				return
			}
			s.opts.SlowLog.Printf("follower: bootstrap from %s failed: %v", s.follow.URL, berr)
		} else {
			s.nTailErrors.Add(1)
			s.opts.SlowLog.Printf("follower: tailing %s: %v", s.follow.URL, err)
		}
		s.replState.Store(int32(replStateRetrying))
		if !s.replSleep(backoff) {
			return
		}
		if backoff *= 2; backoff > maxReplBackoff {
			backoff = maxReplBackoff
		}
	}
}

// tailOnce runs one /wal long-poll and hands its batches to the worker.
func (s *Server) tailOnce() error {
	from := s.epoch.Load()
	url := fmt.Sprintf("%s/wal?from=%d&wait_ms=%d", s.follow.URL, from, s.follow.PollWait.Milliseconds())
	ctx, cancel := context.WithTimeout(s.replCtx, s.follow.PollWait+15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.follow.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	s.nTailPolls.Add(1)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%w: leader pruned epochs past %d", errNeedBootstrap, from)
	default:
		return fmt.Errorf("leader /wal: %s", readErrorBody(resp))
	}
	var tr WALTailResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("leader /wal: bad response body: %v", err)
	}
	s.leaderEpoch.Store(tr.Epoch)
	s.replState.Store(int32(replStateTailing))
	if len(tr.Batches) == 0 && tr.Epoch <= from {
		return nil // quiet long-poll timeout: nothing new
	}
	batches := make([]store.Batch, len(tr.Batches))
	var tuples uint64
	for i, b := range tr.Batches {
		batches[i] = store.Batch{Epoch: b.Epoch, Updates: fromWireUpdates(b.Updates)}
		tuples += uint64(len(b.Updates))
	}
	res, err := s.submitRepl(&replJob{batches: batches, confirmedEpoch: tr.Epoch, reply: make(chan replResult, 1)})
	if err != nil {
		return err
	}
	if res.err != nil {
		// The checker may hold a partially applied epoch that never reached
		// the log; rebuilding from a snapshot is the only safe continuation.
		return fmt.Errorf("%w: %v", errNeedBootstrap, res.err)
	}
	s.nTailRecords.Add(uint64(len(tr.Batches)))
	s.nTailTuples.Add(tuples)
	return nil
}

// bootstrapOnce downloads and installs the leader's newest snapshot, then
// has the worker rebuild its checker from the local store. When the leader's
// newest snapshot is not ahead of what the local store already holds (apply
// failures land here with an intact local log), the download is dropped and
// the rebuild runs from local artifacts alone.
func (s *Server) bootstrapOnce() error {
	s.nSnapFetches.Add(1)
	if _, err := fetchSnapshotCounted(s.replCtx, s.follow.Client, s.follow.URL, s.st, &s.nSnapFetchBytes); err != nil {
		s.nSnapFetchFailures.Add(1)
		return err
	}
	res, err := s.submitRepl(&replJob{reload: true, reply: make(chan replResult, 1)})
	if err != nil {
		return err
	}
	if res.err != nil {
		return res.err
	}
	return nil
}

// submitRepl hands one job to the worker and waits for the result.
func (s *Server) submitRepl(j *replJob) (replResult, error) {
	select {
	case s.repl <- j:
	case <-s.replCtx.Done():
		return replResult{}, ErrShuttingDown
	case <-s.quit:
		return replResult{}, ErrShuttingDown
	}
	select {
	case res := <-j.reply:
		return res, nil
	case <-s.quit:
		// The worker still finishes the job (the reply channel is buffered);
		// we just stop waiting for it.
		return replResult{}, ErrShuttingDown
	}
}

// replSleep waits out a backoff, abandoning it on shutdown.
func (s *Server) replSleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.replCtx.Done():
		return false
	case <-s.quit:
		return false
	}
}

// worker side (called from run(), which owns the checker)

// applyRepl executes one handover on the worker.
func (s *Server) applyRepl(j *replJob) {
	if j.reload {
		j.reply <- s.reloadFromStore()
		return
	}
	j.reply <- s.applyTailed(j.batches, j.confirmedEpoch)
}

// applyTailed applies tailed records the way the leader's applyBatch did:
// all records of one leader epoch merge into one Apply and one local WAL
// record (log-before-advance, so a follower crash leaves whole epochs only),
// the frozen version publishes to the replica pool, and only then does the
// epoch become visible. A failed apply or append stops at the last good
// epoch and reports the error — the tail loop re-bootstraps.
func (s *Server) applyTailed(batches []store.Batch, confirmed uint64) replResult {
	s.nBatches.Add(1)
	cur := s.epoch.Load()
	for i := 0; i < len(batches); {
		epoch := batches[i].Epoch
		var merged []core.Update
		for ; i < len(batches) && batches[i].Epoch == epoch; i++ {
			merged = append(merged, batches[i].Updates...)
		}
		if epoch <= cur {
			continue // redelivered after a retry; already applied and logged
		}
		applyStart := time.Now()
		applied, err := s.chk.Apply(merged)
		s.metrics.stApply.Observe(time.Since(applyStart))
		if err != nil {
			return replResult{epoch: cur, err: fmt.Errorf("service: replicating epoch %d: tuple %d/%d: %w", epoch, applied, len(merged), err)}
		}
		s.nUpdateTuples.Add(uint64(applied))
		if err := s.st.AppendBatch(epoch, merged); err != nil {
			s.nWALErrors.Add(1)
			return replResult{epoch: cur, err: fmt.Errorf("service: logging replicated epoch %d: %w", epoch, err)}
		}
		s.publishVersion(epoch)
		s.epoch.Store(epoch)
		s.epochSig.bump()
		s.maybeSnapshot(epoch)
		cur = epoch
	}
	if confirmed > cur {
		// Leader rounds that applied zero tuples leave no record; the poll
		// response vouches that nothing is missing up to its epoch, so adopt
		// it — convergence stays observable through /statsz.
		s.publishVersion(confirmed)
		s.epoch.Store(confirmed)
		s.epochSig.bump()
		cur = confirmed
	}
	s.publish(true)
	return replResult{epoch: cur}
}

// reloadFromStore rebuilds the worker's checker from the local store (fresh
// snapshot plus any WAL tail) and swaps it in. The old kernel is abandoned
// wholesale; in-flight replica reads finish on their frozen versions.
func (s *Server) reloadFromStore() replResult {
	chk, _, info, err := s.st.Recover(s.coreOpts)
	if err != nil {
		return replResult{err: fmt.Errorf("service: rebuilding from installed snapshot: %w", err)}
	}
	s.chk = chk
	s.batchesSinceSnap = 0
	epoch := info.LastEpoch
	if epoch == 0 {
		epoch = 1
	}
	s.publishVersion(epoch)
	s.publish(true)
	s.epoch.Store(epoch)
	s.epochSig.bump()
	return replResult{epoch: epoch}
}

// bootstrap fetch, shared with cmd boot

// FetchSnapshot downloads the leader's newest snapshot into st, verifying
// the stream against the length and CRC the leader declared, and returns its
// epoch. Meant for cold boot: a follower whose data directory has no
// snapshot yet calls this before Recover. When st already holds a snapshot
// at or past the leader's newest, nothing is installed and the held epoch's
// snapshot entry remains authoritative.
func FetchSnapshot(ctx context.Context, hc *http.Client, leaderURL string, st *store.Store) (uint64, error) {
	return fetchSnapshotCounted(ctx, hc, leaderURL, st, nil)
}

func fetchSnapshotCounted(ctx context.Context, hc *http.Client, leaderURL string, st *store.Store, bytesCtr *atomic.Uint64) (uint64, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	url := strings.TrimRight(leaderURL, "/") + "/snapshot/latest"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("leader /snapshot: %s", readErrorBody(resp))
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(HeaderSnapshotEpoch), 10, 64)
	if err != nil || epoch == 0 {
		return 0, fmt.Errorf("leader sent no usable %s header (%q)", HeaderSnapshotEpoch, resp.Header.Get(HeaderSnapshotEpoch))
	}
	crc, err := strconv.ParseUint(resp.Header.Get(HeaderSnapshotCRC), 16, 32)
	if err != nil {
		return 0, fmt.Errorf("leader sent no usable %s header (%q)", HeaderSnapshotCRC, resp.Header.Get(HeaderSnapshotCRC))
	}
	if resp.ContentLength < 0 {
		return 0, fmt.Errorf("leader sent no snapshot content length")
	}
	if epoch <= st.LastSnapshotEpoch() {
		// Nothing newer upstream; the local snapshot stands.
		return epoch, nil
	}
	body := io.Reader(resp.Body)
	if bytesCtr != nil {
		body = &countingReader{r: resp.Body, n: bytesCtr}
	}
	if err := st.InstallSnapshot(body, epoch, resp.ContentLength, uint32(crc)); err != nil {
		return 0, err
	}
	return epoch, nil
}

// countingReader feeds streamed byte counts into a metric counter.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// readErrorBody condenses a non-200 leader reply into one error string.
func readErrorBody(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(b))
	if msg == "" {
		return resp.Status
	}
	return resp.Status + ": " + msg
}
