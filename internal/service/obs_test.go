package service_test

// obs_test.go covers the observability surface and the HTTP hardening: body
// caps (413), strict decoding (400 naming the offence), /metricsz validity,
// traced requests (?trace=1) with per-stage spans whose kernel deltas match
// /statsz movement, and the slow-request log.

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

func TestBodyCap(t *testing.T) {
	_, ts := newTestServer(t, service.Options{MaxBodyBytes: 64})
	big := `{"text": "` + strings.Repeat("x", 500) + `"}`
	resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var envelope struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Error == "" {
		t.Fatalf("413 reply %q is not the standard error envelope (err=%v)", raw, err)
	}

	// A body under the cap still works.
	var ok service.CheckResponse
	if status := post(t, ts.URL+"/check", map[string]any{}, &ok); status != http.StatusOK {
		t.Fatalf("small body status = %d, want 200", status)
	}
}

func TestDecodeRejectsUnknownField(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	resp, err := http.Post(ts.URL+"/check", "application/json",
		strings.NewReader(`{"frobnicate": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `unknown field \"frobnicate\"`) &&
		!strings.Contains(string(raw), `unknown field "frobnicate"`) {
		t.Fatalf("400 reply %q does not name the offending field", raw)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	for _, body := range []string{
		`{} {"constraints": ["nj_codes"]}`, // a silently dropped second document
		`{} garbage`,
	} {
		resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
		if !strings.Contains(string(raw), "trailing data") {
			t.Fatalf("body %q: reply %q does not mention trailing data", body, raw)
		}
	}
}

func scrapeMetrics(t *testing.T, ts string) string {
	t.Helper()
	resp, err := http.Get(ts + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metricsz content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestMetricsz(t *testing.T) {
	for _, tc := range []struct {
		name     string
		replicas int
	}{
		{"replicated", 2},
		{"primary-only", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, service.Options{Replicas: tc.replicas})

			// Exercise every endpoint so the counters move.
			var chk service.CheckResponse
			post(t, ts.URL+"/check", map[string]any{}, &chk)
			var wit service.WitnessResponse
			post(t, ts.URL+"/witnesses", map[string]any{"constraint": "nj_codes"}, &wit)
			// The tuple reuses existing attribute values so the incremental
			// maintenance path accepts it.
			var upd service.UpdateResponse
			post(t, ts.URL+"/update", map[string]any{"updates": []map[string]any{
				{"table": "CUST", "op": "insert", "values": []string{"Oshawa", "905", "Ontario"}},
			}}, &upd)

			body := scrapeMetrics(t, ts.URL)
			if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
				t.Fatalf("/metricsz is not valid exposition: %v\n%s", err, body)
			}
			mustContain := []string{
				`cv_requests_total{endpoint="check"} 1`,
				`cv_requests_total{endpoint="witnesses"} 1`,
				`cv_requests_total{endpoint="update"} 1`,
				`cv_update_tuples_total 1`,
				`# TYPE cv_request_duration_seconds histogram`,
				`cv_request_duration_seconds_count{endpoint="check"} 1`,
				`# TYPE cv_stage_duration_seconds histogram`,
				`cv_kernel_live_nodes{kernel="primary"}`,
				`cv_kernel_nodes_allocated_total{kernel="primary"}`,
				`cv_checker_decisions_total{method="bdd"}`,
				`cv_http_responses_total{class="2xx"}`,
				`cv_queue_depth{queue="checks"}`,
				`cv_uptime_seconds`,
			}
			if tc.replicas > 0 {
				mustContain = append(mustContain,
					`cv_replica_pool_size 2`,
					`cv_kernel_live_nodes{kernel="replica-0"}`,
					`cv_kernel_live_nodes{kernel="replica-1"}`,
					`cv_replica_checks_total`,
					`# TYPE cv_replica_queue_wait_seconds histogram`,
				)
			} else if strings.Contains(body, "cv_replica_pool_size") {
				t.Error("replica families present with replication disabled")
			}
			for _, want := range mustContain {
				if !strings.Contains(body, want) {
					t.Errorf("/metricsz missing %q", want)
				}
			}
		})
	}
}

func spansByName(tr *service.TraceInfo) map[string][]service.TraceSpan {
	out := map[string][]service.TraceSpan{}
	for _, sp := range tr.Spans {
		out[sp.Name] = append(out[sp.Name], sp)
	}
	return out
}

// TestTracedCheckPrimary drives a traced /check through the primary worker
// (replication off) and checks the acceptance criteria: every stage present
// with non-negative timings, spans tile within the request total, and the
// spans' kernel deltas agree with the /statsz counter movement.
func TestTracedCheckPrimary(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Replicas: -1})

	var before service.StatszResponse
	get(t, ts.URL+"/statsz", &before)

	var resp service.CheckResponse
	if status := post(t, ts.URL+"/check?trace=1", map[string]any{}, &resp); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}

	var after service.StatszResponse
	get(t, ts.URL+"/statsz", &after)

	if resp.Trace.TotalNS <= 0 {
		t.Errorf("trace total = %d, want > 0", resp.Trace.TotalNS)
	}
	var sum int64
	var kernelOps, kernelAllocs uint64
	for _, sp := range resp.Trace.Spans {
		if sp.StartNS < 0 || sp.DurationNS < 0 {
			t.Errorf("span %s has negative timing: %+v", sp.Name, sp)
		}
		if sp.StartNS+sp.DurationNS > resp.Trace.TotalNS {
			t.Errorf("span %s ends at %d, past the request total %d",
				sp.Name, sp.StartNS+sp.DurationNS, resp.Trace.TotalNS)
		}
		sum += sp.DurationNS
		if sp.Kernel != nil {
			kernelOps += sp.Kernel.Ops
			kernelAllocs += sp.Kernel.NodesAllocated
		}
	}
	byName := spansByName(resp.Trace)
	for _, stage := range []string{"queue_wait", "eval:nj_codes", "eval:toronto_ontario"} {
		if len(byName[stage]) == 0 {
			t.Errorf("trace missing stage %s: %+v", stage, resp.Trace.Spans)
		}
	}
	// The stages run sequentially on the worker, so their sum cannot exceed
	// the handler total.
	if sum > resp.Trace.TotalNS {
		t.Errorf("span durations sum to %d, more than the request total %d", sum, resp.Trace.TotalNS)
	}
	// With no concurrent traffic, the traced spans account for the primary
	// kernel's counter movement exactly.
	if gotOps := after.PrimaryKernel.Ops - before.PrimaryKernel.Ops; gotOps != kernelOps {
		t.Errorf("statsz ops moved %d, trace spans account for %d", gotOps, kernelOps)
	}
	if gotAllocs := after.PrimaryKernel.NodesAllocated - before.PrimaryKernel.NodesAllocated; gotAllocs != kernelAllocs {
		t.Errorf("statsz nodes_allocated moved %d, trace spans account for %d", gotAllocs, kernelAllocs)
	}

	// Without ?trace=1 the response carries no trace.
	var plain service.CheckResponse
	post(t, ts.URL+"/check", map[string]any{}, &plain)
	if plain.Trace != nil {
		t.Error("untraced request returned a trace")
	}
}

func TestTracedCheckReplica(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Replicas: 2})
	var resp service.CheckResponse
	if status := post(t, ts.URL+"/check?trace=1", map[string]any{}, &resp); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	byName := spansByName(resp.Trace)
	for _, stage := range []string{"queue_wait", "eval:nj_codes", "eval:toronto_ontario"} {
		if len(byName[stage]) == 0 {
			t.Errorf("replica trace missing stage %s: %+v", stage, resp.Trace.Spans)
		}
	}
	// Cache-cold replica evaluation must attribute kernel work somewhere.
	var allocs uint64
	for _, sp := range resp.Trace.Spans {
		if sp.Kernel != nil {
			allocs += sp.Kernel.NodesAllocated
		}
	}
	if allocs == 0 {
		t.Error("traced replica check reported no kernel allocation at all")
	}
}

func TestTracedWitnessesAndUpdate(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var wit service.WitnessResponse
	if status := post(t, ts.URL+"/witnesses?trace=1",
		map[string]any{"constraint": "nj_codes"}, &wit); status != http.StatusOK {
		t.Fatalf("witnesses status = %d", status)
	}
	if wit.Trace == nil || len(spansByName(wit.Trace)["witness_enum"]) == 0 {
		t.Fatalf("witness trace missing witness_enum: %+v", wit.Trace)
	}

	var upd service.UpdateResponse
	if status := post(t, ts.URL+"/update?trace=1", map[string]any{"updates": []map[string]any{
		{"table": "CUST", "op": "insert", "values": []string{"Oshawa", "905", "Ontario"}},
	}}, &upd); status != http.StatusOK {
		t.Fatalf("update status = %d, %+v", status, upd)
	}
	if upd.Trace == nil {
		t.Fatal("update trace missing")
	}
	byName := spansByName(upd.Trace)
	for _, stage := range []string{"queue_wait", "apply", "freeze"} {
		if len(byName[stage]) == 0 {
			t.Errorf("update trace missing stage %s: %+v", stage, upd.Trace.Spans)
		}
	}
}

// syncBuffer is a goroutine-safe log sink: the slow-request line is written
// from the handler's deferred finishRequest, which can race the client
// reading the response.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

func TestSlowRequestLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, service.Options{
		SlowRequest: time.Nanosecond, // everything is slow
		SlowLog:     log.New(&buf, "", 0),
	})
	var resp service.CheckResponse
	post(t, ts.URL+"/check", map[string]any{"constraints": []string{"nj_codes"}}, &resp)

	deadline := time.Now().Add(2 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, "slow request") &&
			strings.Contains(out, "endpoint=check") &&
			strings.Contains(out, "eval:nj_codes=") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow-request line never appeared; log so far: %q", out)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The slow-log trace is internal: the response must not carry it.
	if resp.Trace != nil {
		t.Error("slow-log-armed request leaked its trace into the response")
	}

	body := scrapeMetrics(t, ts.URL)
	if !strings.Contains(body, "cv_slow_requests_total 1") {
		t.Error("cv_slow_requests_total did not count the slow request")
	}
}
