package service

// http.go is the JSON wire surface of the daemon: POST /check, POST
// /witnesses, POST /update for tuple batches, GET /healthz, GET /statsz
// with live checker/kernel/queue counters, and GET /metricsz in Prometheus
// text exposition. Handlers run on the HTTP server's goroutines; they only
// decode, submit to the admission queues and encode — all kernel work
// happens in the worker. Bodies are capped by Options.MaxBodyBytes (413
// beyond it), decoding is strict (unknown fields and trailing data are 400s
// naming the offence), and `?trace=1` on the POST endpoints returns the
// request's per-stage spans.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// CheckRequest asks for constraint validation. With neither Constraints nor
// Text, every registered constraint is checked.
type CheckRequest struct {
	// Constraints names registered constraints to check.
	Constraints []string `json:"constraints,omitempty"`
	// Text holds ad-hoc constraint declarations in the rules language.
	Text string `json:"text,omitempty"`
	// TimeoutMS overrides the server's default request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NodeBudget caps the BDD node budget for this request; blowing it
	// degrades the check to the SQL fallback.
	NodeBudget int `json:"node_budget,omitempty"`
}

// CheckResult reports one constraint's validation.
type CheckResult struct {
	Name           string `json:"name"`
	Violated       bool   `json:"violated"`
	Method         string `json:"method,omitempty"`
	FellBack       bool   `json:"fell_back,omitempty"`
	FallbackReason string `json:"fallback_reason,omitempty"`
	DurationNS     int64  `json:"duration_ns"`
	Error          string `json:"error,omitempty"`
}

// CheckResponse is the /check reply.
type CheckResponse struct {
	Results []CheckResult `json:"results"`
	// Epoch is the epoch the results were evaluated at: the requested
	// ?epoch=N for a historical read, the current epoch otherwise. Zero when
	// the server runs without a durability store.
	Epoch uint64 `json:"epoch,omitempty"`
	// Trace carries the request's per-stage spans when ?trace=1.
	Trace *TraceInfo `json:"trace,omitempty"`
}

// TraceInfo is the wire form of a request trace: total handler time plus
// the recorded stage spans.
type TraceInfo struct {
	TotalNS int64       `json:"total_ns"`
	Spans   []TraceSpan `json:"spans"`
}

// TraceSpan is one traced stage. StartNS is the stage's offset from the
// start of the request.
type TraceSpan struct {
	Name       string `json:"name"`
	StartNS    int64  `json:"start_ns"`
	DurationNS int64  `json:"duration_ns"`
	// Kernel is the BDD-kernel counter movement the stage caused; absent for
	// stages that touched no kernel.
	Kernel *KernelDelta `json:"kernel,omitempty"`
}

// KernelDelta is the wire form of a stage's kernel counter movement.
type KernelDelta struct {
	NodesAllocated uint64 `json:"nodes_allocated,omitempty"`
	GCRuns         int    `json:"gc_runs,omitempty"`
	CacheHits      uint64 `json:"cache_hits,omitempty"`
	Ops            uint64 `json:"ops,omitempty"`
}

// WitnessRequest asks for violating bindings of one constraint.
type WitnessRequest struct {
	// Constraint names a registered constraint; alternatively Text holds
	// one ad-hoc declaration.
	Constraint string `json:"constraint,omitempty"`
	Text       string `json:"text,omitempty"`
	// Limit bounds the number of witnesses; 10 when zero.
	Limit      int `json:"limit,omitempty"`
	TimeoutMS  int `json:"timeout_ms,omitempty"`
	NodeBudget int `json:"node_budget,omitempty"`
}

// Witness is one violating binding.
type Witness struct {
	Vars   []string `json:"vars"`
	Values []string `json:"values"`
}

// WitnessResponse is the /witnesses reply.
type WitnessResponse struct {
	Constraint string    `json:"constraint"`
	Method     string    `json:"method"`
	Witnesses  []Witness `json:"witnesses"`
	// Trace carries the request's per-stage spans when ?trace=1.
	Trace *TraceInfo `json:"trace,omitempty"`
}

// UpdateTuple is one tuple-level mutation.
type UpdateTuple struct {
	Table  string   `json:"table"`
	Op     string   `json:"op"` // "insert" or "delete"
	Values []string `json:"values"`
}

// UpdateRequest is a batch of mutations, applied in order through the
// incremental index maintenance path.
type UpdateRequest struct {
	Updates   []UpdateTuple `json:"updates"`
	TimeoutMS int           `json:"timeout_ms,omitempty"`
}

// UpdateResponse is the /update reply. On error, Applied says how many
// leading updates of the batch took effect.
type UpdateResponse struct {
	Applied int    `json:"applied"`
	Error   string `json:"error,omitempty"`
	// Trace carries the request's per-stage spans when ?trace=1.
	Trace *TraceInfo `json:"trace,omitempty"`
}

// StatszResponse reports live server, checker and kernel counters. Checker
// and Kernel aggregate across the primary and every replica (node counts,
// cache hits and op counts sum; Vars and Budget are the primary's, as all
// kernels share the same layout and budget); PrimaryKernel isolates the
// write path's kernel and Replication breaks the read pool down per worker.
type StatszResponse struct {
	UptimeMS      int64            `json:"uptime_ms"`
	Queue         QueueStats       `json:"queue"`
	Requests      RequestStats     `json:"requests"`
	Checker       CheckerStats     `json:"checker"`
	Kernel        KernelStats      `json:"kernel"`
	PrimaryKernel KernelStats      `json:"primary_kernel"`
	Replication   ReplicationStats `json:"replication"`
	Indices       []IndexStats     `json:"indices"`
	Tables        []TableStats     `json:"tables"`
	Constraints   []string         `json:"constraints"`
	// Epoch is the last durably acknowledged update round; it survives
	// restarts when a data directory is configured. Zero without one.
	Epoch uint64 `json:"epoch,omitempty"`
	// Durability reports the data directory's state; absent without one.
	Durability *store.Status `json:"durability,omitempty"`
	// Follower reports replication progress; absent on a leader.
	Follower *FollowerStats `json:"follower,omitempty"`
}

// ReplicationStats reports the replicated read path: pool size, current
// epoch, handoffs completed, and how requests were routed.
type ReplicationStats struct {
	// Replicas is the pool size; zero when replication is disabled.
	Replicas int `json:"replicas"`
	// Epoch is the latest published index version.
	Epoch uint64 `json:"epoch"`
	// Swaps counts completed version handoffs across all workers.
	Swaps uint64 `json:"swaps"`
	// ReplicaChecks and ReplicaWitnesses count requests served by the pool;
	// Reroutes counts constraints bounced to the primary for SQL fallback.
	ReplicaChecks    uint64 `json:"replica_checks"`
	ReplicaWitnesses uint64 `json:"replica_witnesses"`
	Reroutes         uint64 `json:"reroutes"`
	// Workers reports each replica's private counters.
	Workers []ReplicaWorkerStats `json:"workers,omitempty"`
}

// ReplicaWorkerStats is one replica worker's view for /statsz.
type ReplicaWorkerStats struct {
	Worker int         `json:"worker"`
	Epoch  uint64      `json:"epoch"`
	Jobs   uint64      `json:"jobs"`
	Kernel KernelStats `json:"kernel"`
}

// QueueStats reports admission-queue depths against their capacity.
type QueueStats struct {
	ChecksDepth  int `json:"checks_depth"`
	ChecksCap    int `json:"checks_cap"`
	UpdatesDepth int `json:"updates_depth"`
	UpdatesCap   int `json:"updates_cap"`
}

// RequestStats reports request counters since startup.
type RequestStats struct {
	Checks          uint64 `json:"checks"`
	Witnesses       uint64 `json:"witnesses"`
	UpdateJobs      uint64 `json:"update_jobs"`
	UpdateTuples    uint64 `json:"update_tuples"`
	UpdateBatches   uint64 `json:"update_batches"`
	DeadlineRejects uint64 `json:"deadline_rejects"`
	QueueRejects    uint64 `json:"queue_rejects"`
}

// CheckerStats reports how constraints were decided since startup.
type CheckerStats struct {
	BDDChecks    int     `json:"bdd_checks"`
	FDFastPath   int     `json:"fd_fast_path"`
	SQLFallbacks int     `json:"sql_fallbacks"`
	Errors       int     `json:"errors"`
	FallbackRate float64 `json:"fallback_rate"`
}

// KernelStats reports the shared BDD kernel's counters.
type KernelStats struct {
	LiveNodes    int    `json:"live_nodes"`
	PeakNodes    int    `json:"peak_nodes"`
	Capacity     int    `json:"capacity"`
	Vars         int    `json:"vars"`
	Budget       int    `json:"budget"`
	GCRuns       int    `json:"gc_runs"`
	Ops          uint64 `json:"ops"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheEntries int    `json:"cache_entries"`
	// NodesAllocated is monotonic (GC never lowers it), so deltas between
	// two scrapes measure the work in between — the same figure traced
	// requests report per stage.
	NodesAllocated uint64 `json:"nodes_allocated"`
}

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	Status   string `json:"status"`
	UptimeMS int64  `json:"uptime_ms"`
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /check", s.handleCheck)
	mux.HandleFunc("POST /witnesses", s.handleWitnesses)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	if s.st != nil {
		// Replication endpoints: any server with a durability store can feed
		// a follower (followers included, so replicas can chain).
		mux.HandleFunc("GET /snapshot/{epoch}", s.handleSnapshotFetch)
		mux.HandleFunc("GET /wal", s.handleWALTail)
	}
	return mux
}

// traceFor arms a trace for the request: always when the client asked with
// ?trace=1 (the spans go back in the response), and silently when the
// slow-request log is on (the spans feed the log line if the request
// crosses the threshold). wantTrace reports the explicit ask.
func (s *Server) traceFor(r *http.Request) (tr *obs.Trace, wantTrace bool) {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		wantTrace = true
	}
	if wantTrace || s.opts.SlowRequest > 0 {
		tr = obs.NewTrace()
	}
	return tr, wantTrace
}

// finishRequest observes the endpoint's latency histogram and emits the
// slow-request log line when the total crosses the threshold.
func (s *Server) finishRequest(endpoint string, start time.Time, tr *obs.Trace) {
	d := time.Since(start)
	if h := s.metrics.endpointHist(endpoint); h != nil {
		h.Observe(d)
	}
	if s.opts.SlowRequest > 0 && d >= s.opts.SlowRequest {
		s.metrics.slowRequests.Inc()
		s.opts.SlowLog.Printf("slow request: endpoint=%s total=%v %s",
			endpoint, d.Round(time.Microsecond), tr.Summary())
	}
}

// toWireTrace converts the recorded spans for the response; nil unless the
// client explicitly asked for the trace.
func toWireTrace(tr *obs.Trace, wantTrace bool) *TraceInfo {
	if tr == nil || !wantTrace {
		return nil
	}
	spans := tr.Spans()
	out := &TraceInfo{TotalNS: tr.Total().Nanoseconds(), Spans: make([]TraceSpan, len(spans))}
	for i, sp := range spans {
		ws := TraceSpan{Name: sp.Name, StartNS: sp.Start.Nanoseconds(), DurationNS: sp.Duration.Nanoseconds()}
		if sp.Kernel != nil {
			ws.Kernel = &KernelDelta{
				NodesAllocated: sp.Kernel.NodesAllocated,
				GCRuns:         sp.Kernel.GCRuns,
				CacheHits:      sp.Kernel.CacheHits,
				Ops:            sp.Kernel.Ops,
			}
		}
		out.Spans[i] = ws
	}
	return out
}

// requestContext derives the job context: the client's context bounded by
// the requested (or default) timeout.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

//cv:owner any
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	s.nChecks.Add(1)
	start := time.Now()
	tr, wantTrace := s.traceFor(r)
	defer s.finishRequest("check", start, tr)
	var req CheckRequest
	if !s.decode(w, r, &req) {
		return
	}
	cts, err := s.resolve(req.Constraints, req.Text)
	if err != nil {
		s.httpError(w, err)
		return
	}
	epoch, live, err := s.epochParam(r)
	if err != nil {
		s.httpError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	var results []core.Result
	if live {
		if serr := s.stalenessErr(); serr != nil {
			s.httpError(w, serr)
			return
		}
		rep, serr := s.submitCheck(ctx, cts, req.NodeBudget, 0, tr)
		if serr != nil {
			s.httpError(w, serr)
			return
		}
		results = rep.results
	} else {
		histStart := tr.Begin()
		results, err = s.checkAtEpoch(ctx, epoch, cts, req.NodeBudget)
		tr.Span("epoch_check", histStart)
		if err != nil {
			s.httpError(w, err)
			return
		}
	}
	resp := CheckResponse{Results: make([]CheckResult, len(results)), Epoch: epoch}
	for i, res := range results {
		resp.Results[i] = toWireResult(res)
	}
	resp.Trace = toWireTrace(tr, wantTrace)
	s.writeJSON(w, http.StatusOK, resp)
}

// epochParam interprets ?epoch=N. Absent, zero, or equal to the current
// epoch selects the live read path; a smaller value selects the historical
// path; a larger one is rejected (ErrFutureEpoch). The reported epoch is
// zero when the server runs without a durability store.
func (s *Server) epochParam(r *http.Request) (epoch uint64, live bool, err error) {
	raw := r.URL.Query().Get("epoch")
	cur := uint64(0)
	if s.st != nil {
		cur = s.epoch.Load()
	}
	if raw == "" {
		return cur, true, nil
	}
	n, perr := parseUintParam("epoch", raw)
	if perr != nil {
		return 0, false, perr
	}
	if n == 0 || n == cur {
		return cur, true, nil
	}
	if s.st == nil {
		return 0, false, ErrNoHistory
	}
	if n > cur {
		return 0, false, fmt.Errorf("%w: requested %d, current is %d", ErrFutureEpoch, n, cur)
	}
	return n, false, nil
}

func toWireResult(res core.Result) CheckResult {
	out := CheckResult{
		Name:       res.Constraint.Name,
		Violated:   res.Violated,
		Method:     string(res.Method),
		FellBack:   res.FellBack,
		DurationNS: res.Duration.Nanoseconds(),
	}
	if res.FallbackReason != nil {
		out.FallbackReason = res.FallbackReason.Error()
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
		out.Method = ""
	}
	return out
}

//cv:owner any
func (s *Server) handleWitnesses(w http.ResponseWriter, r *http.Request) {
	s.nWitnesses.Add(1)
	start := time.Now()
	tr, wantTrace := s.traceFor(r)
	defer s.finishRequest("witnesses", start, tr)
	var req WitnessRequest
	if !s.decode(w, r, &req) {
		return
	}
	var names []string
	if req.Constraint != "" {
		names = []string{req.Constraint}
	}
	if req.Constraint == "" && req.Text == "" {
		s.httpError(w, errBadRequest("one of \"constraint\" or \"text\" is required"))
		return
	}
	cts, err := s.resolve(names, req.Text)
	if err != nil {
		s.httpError(w, err)
		return
	}
	if len(cts) != 1 {
		s.httpError(w, errBadRequest("witness extraction takes exactly one constraint"))
		return
	}
	limit := req.Limit
	if limit <= 0 {
		limit = 10
	}
	if serr := s.stalenessErr(); serr != nil {
		s.httpError(w, serr)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	rep, err := s.submitCheck(ctx, cts, req.NodeBudget, limit, tr)
	if err != nil {
		s.httpError(w, err)
		return
	}
	resp := WitnessResponse{
		Constraint: cts[0].Name,
		Method:     string(rep.witnessMethod),
		Witnesses:  make([]Witness, len(rep.witnesses)),
	}
	for i, ws := range rep.witnesses {
		resp.Witnesses[i] = Witness{Vars: ws.Vars, Values: ws.Values}
	}
	resp.Trace = toWireTrace(tr, wantTrace)
	s.writeJSON(w, http.StatusOK, resp)
}

//cv:owner any
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.nUpdateJobs.Add(1)
	start := time.Now()
	tr, wantTrace := s.traceFor(r)
	defer s.finishRequest("update", start, tr)
	if s.follow != nil {
		// A follower's state is defined by the leader's log; accepting a
		// local write would fork it. 421 names the right destination.
		w.Header().Set(HeaderLeader, s.follow.URL)
		s.writeJSON(w, http.StatusMisdirectedRequest, map[string]string{
			"error":  "read-only follower: send updates to the leader",
			"leader": s.follow.URL,
		})
		return
	}
	var req UpdateRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		s.httpError(w, errBadRequest("empty update batch"))
		return
	}
	ups := make([]core.Update, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = core.Update{Table: u.Table, Op: core.UpdateOp(u.Op), Values: u.Values}
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	applied, err := s.submitUpdate(ctx, ups, tr)
	if err != nil {
		status := statusFor(err)
		s.writeJSON(w, status, UpdateResponse{Applied: applied, Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, UpdateResponse{Applied: applied, Trace: toWireTrace(tr, wantTrace)})
}

//cv:owner any
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		UptimeMS: time.Since(s.started).Milliseconds(),
	})
}

// handleMetricsz serves the Prometheus text exposition: the request/stage
// histograms plus gauge callbacks over the worker-published snapshot and the
// replica pool's per-worker stats. No live kernel is touched.
//
//cv:owner any
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.metrics.observeResponse(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

//cv:owner any
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	cs := snap.checker
	primary := KernelStats{
		LiveNodes:      snap.kernel.Live,
		PeakNodes:      snap.kernel.Peak,
		Capacity:       snap.kernel.Capacity,
		Vars:           snap.kernel.Vars,
		Budget:         snap.kernel.Budget,
		GCRuns:         snap.kernel.GCRuns,
		Ops:            snap.kernel.Ops,
		CacheHits:      snap.kernel.CacheHits,
		CacheEntries:   snap.kernel.CacheEntries,
		NodesAllocated: snap.kernel.Allocs,
	}
	agg := primary
	repl := ReplicationStats{
		ReplicaChecks:    s.nReplicaChecks.Load(),
		ReplicaWitnesses: s.nReplicaWitness.Load(),
		Reroutes:         s.nReroutes.Load(),
	}
	if s.pool != nil {
		repl.Replicas = s.pool.Size()
		repl.Epoch = s.pool.Epoch()
		repl.Swaps = s.pool.Swaps()
		for _, ws := range s.pool.Stats() {
			wk := KernelStats{
				LiveNodes:      ws.Kernel.Live,
				PeakNodes:      ws.Kernel.Peak,
				Capacity:       ws.Kernel.Capacity,
				Vars:           ws.Kernel.Vars,
				Budget:         ws.Kernel.Budget,
				GCRuns:         ws.Kernel.GCRuns,
				Ops:            ws.Kernel.Ops,
				CacheHits:      ws.Kernel.CacheHits,
				CacheEntries:   ws.Kernel.CacheEntries,
				NodesAllocated: ws.Kernel.Allocs,
			}
			repl.Workers = append(repl.Workers, ReplicaWorkerStats{
				Worker: ws.Worker, Epoch: ws.Epoch, Jobs: ws.Jobs, Kernel: wk,
			})
			agg.LiveNodes += wk.LiveNodes
			agg.PeakNodes += wk.PeakNodes
			agg.Capacity += wk.Capacity
			agg.GCRuns += wk.GCRuns
			agg.Ops += wk.Ops
			agg.CacheHits += wk.CacheHits
			agg.CacheEntries += wk.CacheEntries
			agg.NodesAllocated += wk.NodesAllocated
			cs.BDDChecks += ws.Checker.BDDChecks
			cs.FDFastPath += ws.Checker.FDFastPath
			cs.SQLFallbacks += ws.Checker.SQLFallbacks
			cs.Errors += ws.Checker.Errors
		}
	}
	decided := cs.BDDChecks + cs.FDFastPath + cs.SQLFallbacks
	rate := 0.0
	if decided > 0 {
		rate = float64(cs.SQLFallbacks) / float64(decided)
	}
	resp := StatszResponse{
		UptimeMS: time.Since(s.started).Milliseconds(),
		Queue: QueueStats{
			ChecksDepth:  len(s.checks),
			ChecksCap:    cap(s.checks),
			UpdatesDepth: len(s.updates),
			UpdatesCap:   cap(s.updates),
		},
		Requests: RequestStats{
			Checks:          s.nChecks.Load(),
			Witnesses:       s.nWitnesses.Load(),
			UpdateJobs:      s.nUpdateJobs.Load(),
			UpdateTuples:    s.nUpdateTuples.Load(),
			UpdateBatches:   s.nBatches.Load(),
			DeadlineRejects: s.nDeadlineRejects.Load(),
			QueueRejects:    s.nQueueRejects.Load(),
		},
		Checker: CheckerStats{
			BDDChecks:    cs.BDDChecks,
			FDFastPath:   cs.FDFastPath,
			SQLFallbacks: cs.SQLFallbacks,
			Errors:       cs.Errors,
			FallbackRate: rate,
		},
		Kernel:        agg,
		PrimaryKernel: primary,
		Replication:   repl,
		Indices:       snap.indices,
		Tables:        snap.tables,
		Constraints:   s.Constraints(),
	}
	if s.st != nil {
		resp.Epoch = s.epoch.Load()
		st := s.st.Status()
		resp.Durability = &st
	}
	resp.Follower = s.followerStats()
	s.writeJSON(w, http.StatusOK, resp)
}

// plumbing

// decode reads one strict JSON document from the request body: the body is
// capped at Options.MaxBodyBytes (413 past it), unknown fields are rejected
// naming the field, and trailing data after the document is a 400 — a
// concatenated second document would otherwise be silently dropped, masking
// client framing bugs.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	body := r.Body
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.httpError(w, decodeError(err))
		return false
	}
	if _, err := dec.Token(); err != io.EOF {
		s.httpError(w, errBadRequest("trailing data after JSON body"))
		return false
	}
	return true
}

// decodeError shapes a JSON decoding failure for the client: body-cap hits
// keep their *http.MaxBytesError identity (mapped to 413 by statusFor) and
// the stdlib's "json: " prefix is stripped so the envelope reads
// `unknown field "frobnicate"` rather than leaking package names.
func decodeError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return err
	}
	return errBadRequest("bad request body: " + strings.TrimPrefix(err.Error(), "json: "))
}

type badRequestError string

func errBadRequest(msg string) error    { return badRequestError(msg) }
func (e badRequestError) Error() string { return string(e) }

// parseUintParam parses an unsigned decimal query/path parameter strictly:
// only ASCII digits are accepted, so signs ("+1", "-1"), trailing garbage
// ("12x", "1 "), hex, and empty strings all fail with one uniform 400
// message instead of whatever strconv would phrase (or, worse, accept).
// Overflow gets its own message so a follower paging epochs can tell a typo
// from a too-large value.
func parseUintParam(name, raw string) (uint64, error) {
	if raw == "" {
		return 0, errBadRequest(fmt.Sprintf("bad %s parameter %q: want an unsigned decimal integer", name, raw))
	}
	for i := 0; i < len(raw); i++ {
		if raw[i] < '0' || raw[i] > '9' {
			return 0, errBadRequest(fmt.Sprintf("bad %s parameter %q: want an unsigned decimal integer", name, raw))
		}
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, errBadRequest(fmt.Sprintf("bad %s parameter %q: out of range", name, raw))
	}
	return n, nil
}

func statusFor(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBusy), errors.Is(err, ErrShuttingDown), errors.Is(err, ErrStale):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, store.ErrEpochNotRetained), errors.Is(err, store.ErrNoSnapshot):
		// The epoch existed but its snapshot has been pruned: gone, not absent.
		return http.StatusGone
	case errors.Is(err, ErrFutureEpoch):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) httpError(w http.ResponseWriter, err error) {
	s.writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	s.metrics.observeResponse(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
