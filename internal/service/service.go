// Package service runs the constraint checker as a long-lived server: one
// core.Checker with pre-built logical indices serves many concurrent
// clients, amortizing the index construction cost the one-shot CLIs pay on
// every invocation (the whole point of the paper's logical indices, §2.3).
//
// Concurrency model: any number of goroutines accept and decode requests,
// but the BDD kernel is not safe for concurrent use, so all constraint
// evaluation and index maintenance is dispatched through bounded admission
// queues to a single worker goroutine that owns the checker. Backpressure is
// the queue bound: when a queue is full, submitters wait until their
// deadline and are rejected. Update jobs are coalesced — every queued batch
// is applied through the incremental index maintenance path before the next
// check runs — so checks always observe a consistent database and an
// acknowledged update is visible to every subsequently submitted check.
//
// Per-request deadlines map onto node budgets (Options.NodesPerSecond): a
// request with little time left gets a small budget, and a check that blows
// it degrades gracefully to the SQL fallback exactly as core.CheckOne does.
//
// Parallel read path: with Options.Replicas ≥ 1 (the default is
// GOMAXPROCS), /check and /witnesses are served by a pool of replicated
// read-only checkers (internal/replica), each owning a private BDD kernel,
// so reads scale across cores. The primary worker keeps exclusive
// ownership of writes: after each update batch it freezes an immutable
// index version and publishes it to the pool *before* acknowledging the
// batch, so an acked update is visible to every subsequently submitted
// check, exactly as in the single-worker model. Checks that need the SQL
// fallback (missing index, blown budget) are rerouted from the replica to
// the primary worker, which sees the live tables.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/store"
)

// Service errors, mapped to HTTP statuses by the handlers.
var (
	// ErrShuttingDown is returned for work submitted after Close.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrBusy is returned when a request's deadline expires while it waits
	// for admission-queue space — the backpressure signal.
	ErrBusy = errors.New("service: admission queue full")
	// ErrUnknownConstraint is returned for names missing from the registry.
	ErrUnknownConstraint = errors.New("service: unknown constraint")
)

// Options configures a Server.
type Options struct {
	// QueueDepth bounds each admission queue (checks and updates
	// separately); 64 when zero.
	QueueDepth int
	// MaxBatch bounds how many queued update jobs one coalescing round
	// applies before re-checking for other work; 256 when zero.
	MaxBatch int
	// DefaultTimeout applies to requests that carry no deadline of their
	// own; 30s when zero.
	DefaultTimeout time.Duration
	// NodesPerSecond converts a request's remaining deadline into a node
	// budget for its BDD evaluation. Zero disables the mapping; requests
	// then run under the checker-wide budget (or their explicit per-request
	// budget).
	NodesPerSecond int
	// Replicas sizes the replicated-kernel read pool serving /check and
	// /witnesses. Zero selects GOMAXPROCS; a negative value disables
	// replication, serializing reads behind the primary worker.
	Replicas int
	// MaxBodyBytes caps the size of accepted request bodies; larger bodies
	// are rejected with 413. 8 MiB when zero; negative disables the cap.
	MaxBodyBytes int64
	// WriteTimeout mirrors the enclosing http.Server's WriteTimeout so
	// long-poll handlers (/wal?wait_ms=) can clamp their waits safely below
	// it: a handler still parked when the write timeout fires has its
	// connection cut mid-chunk, which a tailing follower sees as a spurious
	// corrupt-record error. Zero means the server has no write timeout and
	// only the built-in 30s cap applies.
	WriteTimeout time.Duration
	// SlowRequest, when positive, traces every request and logs those whose
	// total time reaches the threshold, with per-stage spans and kernel
	// deltas. Zero disables the slow-request log.
	SlowRequest time.Duration
	// SlowLog receives slow-request lines; log.Default() when nil.
	SlowLog *log.Logger
	// Store, when non-nil, makes acknowledged updates durable: the worker
	// logs every applied batch to the store's WAL before acknowledging it
	// and writes periodic snapshots. The store must be opened (and, on warm
	// restart, recovered) by the caller before New.
	Store *store.Store
	// SnapshotEveryBatches triggers a snapshot after that many coalesced
	// update rounds; when both triggers are zero and a Store is set, 64 is
	// used. Negative disables the count trigger.
	SnapshotEveryBatches int
	// SnapshotWALBytes triggers a snapshot when the WAL reaches this size.
	// Zero or negative disables the size trigger.
	SnapshotWALBytes int64
	// InitialEpoch seeds the epoch counter — the recovered epoch on warm
	// restart, so epochs keep rising monotonically across process lives.
	// Zero means a fresh start (epoch 1).
	InitialEpoch uint64
	// Reorder enables dynamic variable reordering: between update batches the
	// worker sifts the kernel's variable order when the live-node count has
	// grown past ReorderGrowth × the post-reorder baseline, then publishes
	// the compacted kernel as the round's epoch through the usual freeze
	// path, so readers swap to it with zero downtime.
	Reorder bool
	// ReorderGrowth is the trigger factor; core.ReorderGrowthDefault when
	// zero or below 1.
	ReorderGrowth float64
	// ReorderMinNodes is the live-node floor below which no sift runs;
	// core.ReorderMinNodesDefault when zero.
	ReorderMinNodes int
	// Follower, when non-nil, runs the server as a read-only replica of
	// another cvserved: it bootstraps from the leader's newest snapshot,
	// tails the leader's WAL, applies each acknowledged epoch through the
	// same incremental-maintenance path the leader uses, and refuses writes
	// (421 pointing at the leader). Requires Store. See follower.go.
	Follower *FollowerOptions
}

// DefaultMaxBodyBytes is the request-body cap applied when
// Options.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 8 << 20

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.Replicas == 0 {
		o.Replicas = runtime.GOMAXPROCS(0)
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.SlowLog == nil {
		o.SlowLog = log.Default()
	}
	if o.Store != nil && o.SnapshotEveryBatches == 0 && o.SnapshotWALBytes <= 0 {
		o.SnapshotEveryBatches = 64
	}
	return o
}

// Server owns a checker and serializes all kernel work through one worker.
type Server struct {
	chk      *core.Checker
	registry map[string]logic.Constraint
	names    []string // registry order
	opts     Options
	started  time.Time

	checks  chan *checkJob
	updates chan *updateJob
	quit    chan struct{}
	done    chan struct{}
	closing sync.Once

	// coreOpts is the checker's runtime configuration, captured at New so
	// goroutines that materialize historical or recovered checkers never
	// touch s.chk (which only the worker owns — and which a follower
	// re-bootstrap replaces outright).
	coreOpts core.Options

	// epochSig is broadcast after every epoch advance; the leader's /wal
	// long-poll waits on it instead of busy-polling the log.
	epochSig *epochSignal

	// Replication service counters (leader side), incremented by handlers.
	nSnapshotServes atomic.Uint64
	nWALServes      atomic.Uint64

	// Follower mode. follow is nil on a leader; repl is the worker channel
	// the tail loop hands snapshot installs and batch groups to (nil on a
	// leader: its select case never fires). See follower.go.
	follow     *FollowerOptions
	repl       chan *replJob
	tailDone   chan struct{}
	replCtx    context.Context
	replCancel context.CancelFunc

	// Follower-side counters and gauges (see follower.go for semantics).
	leaderEpoch        atomic.Uint64
	replState          atomic.Int32
	nTailPolls         atomic.Uint64
	nTailErrors        atomic.Uint64
	nTailRecords       atomic.Uint64
	nTailTuples        atomic.Uint64
	nSnapFetches       atomic.Uint64
	nSnapFetchFailures atomic.Uint64
	nSnapFetchBytes    atomic.Uint64
	nRebootstraps      atomic.Uint64

	snap atomic.Pointer[snapshot]

	// Replicated read path. pool is nil when replication is disabled or its
	// bootstrap failed; replicaOK drops to false when a version freeze
	// fails, sending reads back through the primary until a later freeze
	// succeeds. epoch is advanced only by the worker goroutine (and New,
	// before the worker starts) but read from handler goroutines for
	// /statsz and ?epoch validation; it moves to a round's new value only
	// after that round's WAL records are written, so any epoch a reader
	// observes is fully durable.
	pool      *replica.Pool
	replicaOK atomic.Bool
	epoch     atomic.Uint64

	// Durability. st is nil when no data directory is configured.
	// constraintText is the rendered registry persisted in every snapshot;
	// batchesSinceSnap is worker-owned trigger state. The history fields
	// back the ?epoch=N read path (see history.go).
	st               *store.Store
	constraintText   string
	batchesSinceSnap int
	histMu           sync.Mutex
	history          map[uint64]*historyEntry
	histOrder        []uint64

	// metrics is the observability surface behind /metricsz: request and
	// stage latency histograms, response counters, and gauge callbacks over
	// the published snapshots. Built once in New, read lock-free after.
	metrics *serverMetrics

	// Request counters, incremented from handler goroutines.
	nChecks          atomic.Uint64
	nWitnesses       atomic.Uint64
	nUpdateJobs      atomic.Uint64
	nUpdateTuples    atomic.Uint64
	nBatches         atomic.Uint64
	nDeadlineRejects atomic.Uint64
	nQueueRejects    atomic.Uint64
	nReplicaChecks   atomic.Uint64
	nReplicaWitness  atomic.Uint64
	nReroutes        atomic.Uint64
	nEpochChecks     atomic.Uint64
	nWALErrors       atomic.Uint64
	nSnapshotErrors  atomic.Uint64
}

// snapshot is the worker-published view of checker and kernel state, read
// lock-free by /statsz. Indices are recounted only when updates run (node
// counting walks the index BDDs).
type snapshot struct {
	kernel  kernelView
	checker core.Stats
	indices []IndexStats
	tables  []TableStats
}

type kernelView struct {
	Live, Peak, Capacity, Vars, Budget, GCRuns int
	Ops, CacheHits, Allocs                     uint64
	CacheEntries                               int

	// Per-operation cache traffic, for the op-labelled hit-rate gauges.
	ApplyLookups, ApplyHits     uint64
	QuantLookups, QuantHits     uint64
	ReplaceLookups, ReplaceHits uint64

	// Dynamic-reordering counters.
	Reorders     int
	ReorderSaved uint64
}

// kernelViewOf converts a kernel snapshot into the lock-free view published
// for /statsz and the gauge callbacks.
func kernelViewOf(ks bdd.Stats) kernelView {
	return kernelView{
		Live: ks.Live, Peak: ks.Peak, Capacity: ks.Capacity,
		Vars: ks.Vars, Budget: ks.Budget, GCRuns: ks.GCRuns,
		Ops: ks.Ops, CacheHits: ks.CacheHits, Allocs: ks.Allocs,
		CacheEntries:   ks.CacheEntries,
		ApplyLookups:   ks.ApplyLookups,
		ApplyHits:      ks.ApplyHits,
		QuantLookups:   ks.QuantLookups,
		QuantHits:      ks.QuantHits,
		ReplaceLookups: ks.ReplaceLookups,
		ReplaceHits:    ks.ReplaceHits,
		Reorders:       ks.Reorders,
		ReorderSaved:   ks.ReorderSaved,
	}
}

// IndexStats describes one logical index for /statsz.
type IndexStats struct {
	Name  string `json:"name"`
	Table string `json:"table"`
	Cols  int    `json:"cols"`
	Nodes int    `json:"nodes"`
}

// TableStats describes one base table for /statsz.
type TableStats struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
}

// New creates a Server over a checker whose indices are already built, with
// the given constraint registry, and starts its worker. The caller must not
// touch the checker (or its catalog, store or kernel) afterwards: the worker
// owns them. Close shuts the worker down.
//
//cv:owner worker
func New(chk *core.Checker, constraints []logic.Constraint, opts Options) (*Server, error) {
	s := &Server{
		chk:      chk,
		registry: make(map[string]logic.Constraint, len(constraints)),
		opts:     opts.withDefaults(),
		started:  time.Now(),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, ct := range constraints {
		if _, dup := s.registry[ct.Name]; dup {
			return nil, fmt.Errorf("service: duplicate constraint %q", ct.Name)
		}
		s.registry[ct.Name] = ct
		s.names = append(s.names, ct.Name)
	}
	s.checks = make(chan *checkJob, s.opts.QueueDepth)
	s.updates = make(chan *updateJob, s.opts.QueueDepth)
	s.coreOpts = chk.Options()
	s.epochSig = newEpochSignal()
	s.st = s.opts.Store
	if s.st != nil {
		s.constraintText = store.RenderConstraints(constraints)
		s.history = make(map[uint64]*historyEntry)
	}
	if s.opts.Follower != nil {
		if s.st == nil {
			return nil, fmt.Errorf("service: follower mode requires a durability store")
		}
		f := s.opts.Follower.withDefaults()
		if f.URL == "" {
			return nil, fmt.Errorf("service: follower mode requires the leader's URL")
		}
		s.follow = &f
		s.repl = make(chan *replJob)
		s.tailDone = make(chan struct{})
		s.replCtx, s.replCancel = context.WithCancel(context.Background())
		s.replState.Store(int32(replStateStarting))
	}
	initialEpoch := uint64(1)
	if s.opts.InitialEpoch > initialEpoch {
		initialEpoch = s.opts.InitialEpoch
	}
	s.epoch.Store(initialEpoch)
	if s.opts.Replicas > 0 {
		// Freeze the bootstrap version while we still own the checker (the
		// worker has not started). A failed freeze (e.g. the index copy
		// does not fit the node budget) degrades to the single-worker read
		// path instead of failing the server.
		if v, err := replica.NewVersion(chk, initialEpoch); err == nil {
			if pool, err := replica.New(s.opts.Replicas, v); err == nil {
				s.pool = pool
				s.replicaOK.Store(true)
			}
		}
	}
	s.metrics = newServerMetrics(s) // after pool setup: per-replica gauges
	if s.pool != nil {
		s.pool.SetMetrics(&replica.Metrics{
			QueueWait: s.metrics.replicaQueueWait,
			Run:       s.metrics.replicaRun,
		})
	}
	s.publish(true) // safe: the worker has not started yet
	if s.follow != nil {
		// The follower starts at the recovered epoch; until the first poll
		// answers, assume the leader is there.
		s.leaderEpoch.Store(initialEpoch)
		go s.tailLoop()
	}
	go s.run()
	return s, nil
}

// Close stops the worker (and, in follower mode, the tail loop), refusing
// queued and future work. It is idempotent and safe from any goroutine.
func (s *Server) Close() {
	s.closing.Do(func() {
		close(s.quit)
		if s.replCancel != nil {
			s.replCancel() // aborts an in-flight long-poll or snapshot fetch
		}
	})
	if s.tailDone != nil {
		<-s.tailDone
	}
	<-s.done
	if s.pool != nil {
		s.pool.Close()
	}
}

// Constraints lists the registered constraint names in registry order.
func (s *Server) Constraints() []string { return append([]string(nil), s.names...) }

// jobs

type checkJob struct {
	ctx context.Context
	cts []logic.Constraint
	// budget is the explicit per-request node cap (0 = none).
	budget int
	// witnessLimit, when positive, turns the job into witness extraction
	// for cts[0].
	witnessLimit int
	// submitted is the admission-queue entry time, for the queue_wait stage.
	submitted time.Time
	// trace collects the job's stage spans; nil when the request is untraced.
	trace *obs.Trace
	reply chan checkReply
}

type checkReply struct {
	results       []core.Result
	witnesses     []core.Witness
	witnessMethod core.Method
	err           error
}

type updateJob struct {
	ctx context.Context
	ups []core.Update
	// submitted is the admission-queue entry time, for the queue_wait stage.
	submitted time.Time
	// trace collects the job's stage spans; nil when the request is untraced.
	trace *obs.Trace
	reply chan updateReply
}

type updateReply struct {
	applied int
	err     error
}

// run is the worker loop. It alternates between applying every queued
// update batch and serving one check, so updates coalesce between checks.
//
//cv:owner worker
func (s *Server) run() {
	defer close(s.done)
	for {
		// Coalesce: everything queued for update applies before the next
		// check is taken.
		select {
		case u := <-s.updates:
			s.applyBatch(s.gatherUpdates(u))
			continue
		default:
		}
		select {
		case <-s.quit:
			s.refuseQueued()
			return
		case u := <-s.updates:
			s.applyBatch(s.gatherUpdates(u))
		case j := <-s.repl: // nil (never fires) on a leader
			s.applyRepl(j)
		case c := <-s.checks:
			s.runCheck(c)
		}
	}
}

// gatherUpdates drains further queued update jobs behind first, bounded by
// MaxBatch.
func (s *Server) gatherUpdates(first *updateJob) []*updateJob {
	batch := []*updateJob{first}
	for len(batch) < s.opts.MaxBatch {
		select {
		case u := <-s.updates:
			batch = append(batch, u)
		default:
			return batch
		}
	}
	return batch
}

// applyBatch applies each job of one coalesced round under a fresh epoch,
// logs each job's applied prefix to the WAL (log-before-ack: a WAL append
// failure is surfaced in that job's acknowledgment), publishes the
// resulting index version to the replica pool, and only then acknowledges
// the jobs: an acked update is both durable and visible to every
// subsequently submitted check, whichever replica serves it. Jobs are
// independent: one failing job does not hold back the others.
func (s *Server) applyBatch(batch []*updateJob) {
	s.nBatches.Add(1)
	k := s.chk.Store().Kernel()
	epoch := s.epoch.Load() + 1
	replies := make([]updateReply, len(batch))
	for i, u := range batch {
		if err := u.ctx.Err(); err != nil {
			s.nDeadlineRejects.Add(1)
			replies[i] = updateReply{err: err}
			continue
		}
		applyStart := time.Now()
		if !u.submitted.IsZero() {
			wait := applyStart.Sub(u.submitted)
			s.metrics.stQueueWait.Observe(wait)
			u.trace.Record("queue_wait", u.submitted, wait, nil)
		}
		before := k.Stats()
		applied, err := s.chk.Apply(u.ups)
		d := time.Since(applyStart)
		s.metrics.stApply.Observe(d)
		delta := k.Stats().DeltaSince(before)
		u.trace.Record("apply", applyStart, d, &delta)
		s.nUpdateTuples.Add(uint64(applied))
		if s.st != nil && applied > 0 {
			walStart := time.Now()
			werr := s.st.AppendBatch(epoch, u.ups[:applied])
			u.trace.Record("wal_append", walStart, time.Since(walStart), nil)
			if werr != nil {
				// The tuples are applied but not durable; the client must
				// not treat the batch as acknowledged.
				s.nWALErrors.Add(1)
				s.opts.SlowLog.Printf("wal append failed (epoch %d): %v", epoch, werr)
				if err == nil {
					err = fmt.Errorf("service: batch applied but not logged: %w", werr)
				}
			}
		}
		replies[i] = updateReply{applied: applied, err: err}
	}
	// Between the batch and its freeze is the only safe point to reorganize
	// the kernel: no check is running (the worker owns the kernel) and the
	// compacted structure rides the very next epoch to replicas and
	// snapshots. Readers keep answering on the previous version while the
	// sift runs, so reads see no downtime, only old- or new-epoch answers.
	if s.opts.Reorder {
		reorderStart := time.Now()
		if st, ran := s.chk.MaybeReorder(s.opts.ReorderGrowth, s.opts.ReorderMinNodes, bdd.ReorderOptions{}); ran {
			d := time.Since(reorderStart)
			s.metrics.stReorder.Observe(d)
			for _, u := range batch {
				u.trace.Record("reorder", reorderStart, d, nil)
			}
			s.opts.SlowLog.Printf("reorder (epoch %d): %d -> %d nodes, %d swaps, %v",
				epoch, st.Before, st.After, st.Swaps, d)
		}
	}
	// One freeze covers the whole coalesced round; every job in the batch
	// waited on it, so each trace carries the span.
	freezeStart := time.Now()
	before := k.Stats()
	s.publishVersion(epoch)
	s.publish(true)
	fd := time.Since(freezeStart)
	s.metrics.stFreeze.Observe(fd)
	delta := k.Stats().DeltaSince(before)
	// The epoch becomes visible only after its WAL records are on disk, so
	// every epoch a /statsz or ?epoch reader can name is fully durable.
	s.epoch.Store(epoch)
	s.epochSig.bump() // wakes /wal long-polls waiting for this epoch
	s.maybeSnapshot(epoch)
	for i, u := range batch {
		u.trace.Record("freeze", freezeStart, fd, &delta)
		u.reply <- replies[i]
	}
}

// publishVersion freezes the checker's current indices as the given epoch
// and hands them to the replica pool. Only the worker calls it. A failed
// freeze routes reads back through the primary (replicaOK) rather than
// serving stale data; the next successful freeze re-enables the pool.
func (s *Server) publishVersion(epoch uint64) {
	if s.pool == nil {
		return
	}
	v, err := replica.NewVersion(s.chk, epoch)
	if err != nil {
		s.replicaOK.Store(false)
		return
	}
	s.pool.Publish(v)
	s.replicaOK.Store(true)
}

// maybeSnapshot writes a snapshot when a trigger fires: enough coalesced
// rounds since the last one, or enough WAL bytes. Worker-only; a failed
// snapshot is logged and counted but does not fail updates (the WAL still
// covers them).
func (s *Server) maybeSnapshot(epoch uint64) {
	if s.st == nil {
		return
	}
	s.batchesSinceSnap++
	trigger := s.opts.SnapshotEveryBatches > 0 && s.batchesSinceSnap >= s.opts.SnapshotEveryBatches
	if s.opts.SnapshotWALBytes > 0 && s.st.WALSize() >= s.opts.SnapshotWALBytes {
		trigger = true
	}
	if !trigger {
		return
	}
	if err := s.st.WriteSnapshot(s.chk, s.constraintText, epoch); err != nil {
		s.nSnapshotErrors.Add(1)
		s.opts.SlowLog.Printf("snapshot at epoch %d failed: %v", epoch, err)
		return
	}
	s.batchesSinceSnap = 0
}

// runCheck serves one check or witness job under its deadline-derived
// budget. The stats snapshot is refreshed before the reply goes out, so a
// client that has its answer reads its own effects from /statsz.
func (s *Server) runCheck(j *checkJob) {
	if !j.submitted.IsZero() {
		wait := time.Since(j.submitted)
		s.metrics.stQueueWait.Observe(wait)
		j.trace.Record("queue_wait", j.submitted, wait, nil)
	}
	if err := j.ctx.Err(); err != nil {
		s.nDeadlineRejects.Add(1)
		j.reply <- checkReply{err: err}
		return
	}
	opts := core.CheckOptions{NodeBudget: s.budgetFor(j.ctx, j.budget)}
	var rep checkReply
	if j.witnessLimit > 0 {
		rep = s.runWitnesses(j.cts[0], j.witnessLimit, opts, j.trace)
	} else {
		results := make([]core.Result, 0, len(j.cts))
		for _, ct := range j.cts {
			if err := j.ctx.Err(); err != nil {
				// The deadline blew mid-request; the remaining constraints
				// report the context error instead of burning more kernel time.
				results = append(results, core.Result{Constraint: ct, Err: err})
				continue
			}
			evalStart := j.trace.Begin()
			res := s.chk.CheckOneOpts(ct, opts)
			s.observeResult(res, evalStart, j.trace)
			results = append(results, res)
		}
		rep = checkReply{results: results}
	}
	s.publish(false)
	j.reply <- rep
}

// observeResult feeds one validation's timings into the stage histograms and
// the request trace: the result's SQL share becomes a sql:<name> span, the
// remainder an eval:<name> span carrying the kernel delta (the SQL engine
// never touches the kernel).
func (s *Server) observeResult(res core.Result, evalStart time.Time, tr *obs.Trace) {
	bddD := res.BDDDuration()
	s.metrics.stEval.Observe(bddD)
	tr.Record("eval:"+res.Constraint.Name, evalStart, bddD, &res.Kernel)
	if res.SQLDuration > 0 {
		s.metrics.stSQL.Observe(res.SQLDuration)
		tr.Record("sql:"+res.Constraint.Name, evalStart.Add(bddD), res.SQLDuration, nil)
	}
}

// runWitnesses extracts violating bindings from the BDD evaluation, falling
// back to the compiled SQL violation query when the BDD path yields nothing
// (missing index, budget, or an existence-mode constraint) — the same
// two-step drill-down cvcheck performs.
func (s *Server) runWitnesses(ct logic.Constraint, limit int, opts core.CheckOptions, tr *obs.Trace) checkReply {
	k := s.chk.Store().Kernel()
	enumStart := time.Now()
	before := k.Stats()
	ws, err := s.chk.ViolationWitnessesOpts(ct, limit, opts)
	enumD := time.Since(enumStart)
	s.metrics.stWitness.Observe(enumD)
	delta := k.Stats().DeltaSince(before)
	tr.Record("witness_enum", enumStart, enumD, &delta)
	if err == nil && len(ws) > 0 {
		return checkReply{witnesses: ws, witnessMethod: core.MethodBDD}
	}
	sqlStart := time.Now()
	rows, rerr := s.chk.ViolatingRows(ct)
	sqlD := time.Since(sqlStart)
	s.metrics.stSQL.Observe(sqlD)
	tr.Record("sql:"+ct.Name, sqlStart, sqlD, nil)
	if rerr != nil {
		if err != nil {
			return checkReply{err: err}
		}
		return checkReply{err: rerr}
	}
	for i := 0; i < rows.Len() && i < limit; i++ {
		ws = append(ws, core.Witness{Vars: rows.Vars, Values: rows.Decode(i)})
	}
	return checkReply{witnesses: ws, witnessMethod: core.MethodSQL}
}

// budgetFor combines the request's explicit node cap with the cap derived
// from its remaining deadline. It only reads immutable options, so both the
// worker and the replica dispatch path (handler goroutines) may call it.
func (s *Server) budgetFor(ctx context.Context, explicit int) int {
	b := explicit
	if s.opts.NodesPerSecond > 0 {
		if dl, ok := ctx.Deadline(); ok {
			d := int(time.Until(dl).Seconds() * float64(s.opts.NodesPerSecond))
			if d < 1 {
				d = 1 // expired deadlines were rejected earlier; keep the cap positive
			}
			if b <= 0 || d < b {
				b = d
			}
		}
	}
	return b
}

// refuseQueued acknowledges every queued job with ErrShuttingDown so no
// submitter is left waiting on a dead worker.
func (s *Server) refuseQueued() {
	for {
		select {
		case u := <-s.updates:
			u.reply <- updateReply{err: ErrShuttingDown}
		case c := <-s.checks:
			c.reply <- checkReply{err: ErrShuttingDown}
		case j := <-s.repl: // nil (never fires) on a leader
			j.reply <- replResult{err: ErrShuttingDown}
		default:
			return
		}
	}
}

// publish refreshes the stats snapshot. Only the worker (or New, before the
// worker starts) may call it. full recounts index nodes, which walks the
// index BDDs; check jobs publish light snapshots and reuse the last counts.
func (s *Server) publish(full bool) {
	snap := &snapshot{
		kernel:  kernelViewOf(s.chk.KernelStats()),
		checker: s.chk.Stats(),
	}
	for _, t := range s.chk.Catalog().Tables() {
		snap.tables = append(snap.tables, TableStats{Name: t.Name(), Rows: t.Len(), Cols: t.NumCols()})
	}
	if prev := s.snap.Load(); !full && prev != nil {
		snap.indices = prev.indices
	} else {
		store := s.chk.Store()
		for _, name := range store.Names() {
			ix := store.Index(name)
			snap.indices = append(snap.indices, IndexStats{
				Name:  name,
				Table: ix.Table().Name(),
				Cols:  len(ix.Columns()),
				Nodes: ix.NodeCount(),
			})
		}
	}
	s.snap.Store(snap)
}

// submission (called from handler goroutines)

// resolve maps a request's constraint names (and optional inline
// declarations) to constraints; with neither, the whole registry is checked.
func (s *Server) resolve(names []string, text string) ([]logic.Constraint, error) {
	var cts []logic.Constraint
	for _, name := range names {
		ct, ok := s.registry[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownConstraint, name)
		}
		cts = append(cts, ct)
	}
	if text != "" {
		parsed, err := logic.ParseConstraints(text)
		if err != nil {
			return nil, err
		}
		cts = append(cts, parsed...)
	}
	if len(cts) == 0 {
		for _, name := range s.names {
			cts = append(cts, s.registry[name])
		}
	}
	return cts, nil
}

// submitCheck serves a check (or witness) job: on the replicated read path
// when the pool is healthy, behind the primary worker otherwise.
func (s *Server) submitCheck(ctx context.Context, cts []logic.Constraint, budget, witnessLimit int, tr *obs.Trace) (checkReply, error) {
	if s.pool != nil && s.replicaOK.Load() {
		if witnessLimit > 0 {
			if rep, ok := s.replicaWitnesses(ctx, cts[0], witnessLimit, budget, tr); ok {
				s.nReplicaWitness.Add(1)
				return rep, nil
			}
		} else if rep, ok := s.replicaCheck(ctx, cts, budget, tr); ok {
			s.nReplicaChecks.Add(1)
			return rep, rep.err
		}
	}
	return s.submitPrimaryCheck(ctx, cts, budget, witnessLimit, tr)
}

// replicaCheck runs a check job on some replica worker. Constraints the
// replica cannot decide — they need the SQL fallback, which must see the
// live tables — are rerouted to the primary worker and merged back by
// position. ok is false when the pool could not take the job at all (closed
// or failed materialization); the caller then retries on the primary.
func (s *Server) replicaCheck(ctx context.Context, cts []logic.Constraint, budget int, tr *obs.Trace) (checkReply, bool) {
	results := make([]core.Result, len(cts))
	opts := core.CheckOptions{NodeBudget: s.budgetFor(ctx, budget), NoSQLFallback: true}
	submitted := tr.Begin()
	err := s.pool.Do(ctx, func(chk *core.Checker, _ uint64) {
		tr.Span("queue_wait", submitted)
		for i, ct := range cts {
			if cerr := ctx.Err(); cerr != nil {
				results[i] = core.Result{Constraint: ct, Err: cerr}
				continue
			}
			evalStart := tr.Begin()
			res := chk.CheckOneOpts(ct, opts)
			s.observeResult(res, evalStart, tr)
			results[i] = res
		}
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return checkReply{err: err}, true
		}
		return checkReply{}, false
	}
	// Constraints that reported a needed fallback rerun on the primary.
	var reroute []int
	for i, res := range results {
		if res.FellBack && res.Err != nil {
			reroute = append(reroute, i)
		}
	}
	if len(reroute) > 0 {
		s.nReroutes.Add(uint64(len(reroute)))
		sub := make([]logic.Constraint, len(reroute))
		for j, i := range reroute {
			sub[j] = cts[i]
		}
		rep, err := s.submitPrimaryCheck(ctx, sub, budget, 0, tr)
		if err != nil {
			return checkReply{err: err}, true
		}
		for j, i := range reroute {
			results[i] = rep.results[j]
		}
	}
	return checkReply{results: results}, true
}

// replicaWitnesses extracts witnesses on a replica. Only a definite BDD
// answer with at least one witness is served from the replica; everything
// else (budget blown, missing index, or zero witnesses, which the primary
// double-checks against the live tables via SQL) routes to the primary.
func (s *Server) replicaWitnesses(ctx context.Context, ct logic.Constraint, limit, budget int, tr *obs.Trace) (checkReply, bool) {
	var ws []core.Witness
	var werr error
	opts := core.CheckOptions{NodeBudget: s.budgetFor(ctx, budget)}
	submitted := tr.Begin()
	err := s.pool.Do(ctx, func(chk *core.Checker, _ uint64) {
		tr.Span("queue_wait", submitted)
		k := chk.Store().Kernel()
		enumStart := time.Now()
		before := k.Stats()
		ws, werr = chk.ViolationWitnessesOpts(ct, limit, opts)
		enumD := time.Since(enumStart)
		s.metrics.stWitness.Observe(enumD)
		delta := k.Stats().DeltaSince(before)
		tr.Record("witness_enum", enumStart, enumD, &delta)
	})
	if err != nil || werr != nil || len(ws) == 0 {
		return checkReply{}, false
	}
	return checkReply{witnesses: ws, witnessMethod: core.MethodBDD}, true
}

// submitPrimaryCheck queues a check (or witness) job on the primary worker
// and waits for its reply.
func (s *Server) submitPrimaryCheck(ctx context.Context, cts []logic.Constraint, budget, witnessLimit int, tr *obs.Trace) (checkReply, error) {
	j := &checkJob{
		ctx:          ctx,
		cts:          cts,
		budget:       budget,
		witnessLimit: witnessLimit,
		submitted:    time.Now(),
		trace:        tr,
		reply:        make(chan checkReply, 1),
	}
	select {
	case s.checks <- j:
	case <-ctx.Done():
		s.nQueueRejects.Add(1)
		return checkReply{}, fmt.Errorf("%w (%v)", ErrBusy, ctx.Err())
	case <-s.quit:
		return checkReply{}, ErrShuttingDown
	}
	select {
	case rep := <-j.reply:
		return rep, rep.err
	case <-ctx.Done():
		// The worker may still serve the job; the buffered reply channel
		// means it will not block on our departure.
		return checkReply{}, ctx.Err()
	case <-s.quit:
		return checkReply{}, ErrShuttingDown
	}
}

// submitUpdate queues an update job and waits for its acknowledgement.
func (s *Server) submitUpdate(ctx context.Context, ups []core.Update, tr *obs.Trace) (int, error) {
	j := &updateJob{
		ctx: ctx, ups: ups,
		submitted: time.Now(),
		trace:     tr,
		reply:     make(chan updateReply, 1),
	}
	select {
	case s.updates <- j:
	case <-ctx.Done():
		s.nQueueRejects.Add(1)
		return 0, fmt.Errorf("%w (%v)", ErrBusy, ctx.Err())
	case <-s.quit:
		return 0, ErrShuttingDown
	}
	select {
	case rep := <-j.reply:
		return rep.applied, rep.err
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-s.quit:
		return 0, ErrShuttingDown
	}
}
