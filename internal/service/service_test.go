package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/service"
)

const testRules = `
	constraint nj_codes:
	    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908"}.
	constraint toronto_ontario:
	    forall a, s: CUST("Toronto", a, s) => s = "Ontario".
`

// newTestServer builds the cvcheck end-to-end fixture as a running daemon:
// one CUST table, one index, two constraints (nj_codes is violated by the
// Newark/416 row, toronto_ontario holds).
func newTestServer(t *testing.T, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city"}, {Name: "areacode"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]string{
		{"Toronto", "416", "Ontario"},
		{"Toronto", "647", "Ontario"},
		{"Oshawa", "905", "Ontario"},
		{"Newark", "973", "NJ"},
		{"Newark", "416", "NJ"},
	} {
		cust.Insert(row...)
	}
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("CUST", "CUST", nil, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	cts, err := logic.ParseConstraints(testRules)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.New(chk, cts, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// post sends body as JSON and decodes the reply into out, returning the
// HTTP status.
func post(t *testing.T, url string, body, out any) int {
	t.Helper()
	enc, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s reply %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s reply: %v", url, err)
		}
	}
	return resp.StatusCode
}

// resultsByName indexes a check response.
func resultsByName(t *testing.T, resp service.CheckResponse) map[string]service.CheckResult {
	t.Helper()
	out := make(map[string]service.CheckResult, len(resp.Results))
	for _, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("constraint %s errored: %s", r.Name, r.Error)
		}
		out[r.Name] = r
	}
	return out
}

func TestCheckAllConstraints(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var resp service.CheckResponse
	if st := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	res := resultsByName(t, resp)
	if len(res) != 2 {
		t.Fatalf("want 2 results, got %d", len(res))
	}
	if !res["nj_codes"].Violated || res["nj_codes"].Method != "bdd" {
		t.Fatalf("nj_codes: %+v, want violated via bdd", res["nj_codes"])
	}
	if res["toronto_ontario"].Violated {
		t.Fatalf("toronto_ontario should hold: %+v", res["toronto_ontario"])
	}
}

func TestCheckNamedAndAdHocText(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var resp service.CheckResponse
	st := post(t, ts.URL+"/check", service.CheckRequest{
		Constraints: []string{"nj_codes"},
		Text:        `constraint adhoc: forall c, a: CUST(c, a, "Ontario") => c in {"Toronto", "Oshawa"}.`,
	}, &resp)
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	res := resultsByName(t, resp)
	if len(res) != 2 {
		t.Fatalf("want named + ad-hoc results, got %+v", resp.Results)
	}
	if !res["nj_codes"].Violated || res["adhoc"].Violated {
		t.Fatalf("unexpected outcomes: %+v", res)
	}
}

func TestUpdateVisibleToLaterChecks(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	check := func(wantViolated bool) service.CheckResult {
		t.Helper()
		var resp service.CheckResponse
		if st := post(t, ts.URL+"/check", service.CheckRequest{Constraints: []string{"toronto_ontario"}}, &resp); st != http.StatusOK {
			t.Fatalf("status %d", st)
		}
		r := resultsByName(t, resp)["toronto_ontario"]
		if r.Violated != wantViolated {
			t.Fatalf("toronto_ontario violated=%v, want %v", r.Violated, wantViolated)
		}
		if r.Method != "bdd" {
			t.Fatalf("index must stay usable across updates, got method=%q", r.Method)
		}
		return r
	}
	check(false)
	// A Toronto row outside Ontario violates the constraint; the tuple uses
	// only existing attribute values, so the incremental path handles it.
	var ur service.UpdateResponse
	st := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "insert", Values: []string{"Toronto", "416", "NJ"}},
	}}, &ur)
	if st != http.StatusOK || ur.Applied != 1 {
		t.Fatalf("insert: status %d, %+v", st, ur)
	}
	check(true)
	st = post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "delete", Values: []string{"Toronto", "416", "NJ"}},
	}}, &ur)
	if st != http.StatusOK || ur.Applied != 1 {
		t.Fatalf("delete: status %d, %+v", st, ur)
	}
	check(false)
}

func TestNodeBudgetDegradesToSQLFallback(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var resp service.CheckResponse
	st := post(t, ts.URL+"/check", service.CheckRequest{
		Constraints: []string{"nj_codes"},
		NodeBudget:  1,
	}, &resp)
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	r := resultsByName(t, resp)["nj_codes"]
	if !r.FellBack || r.Method != "sql" {
		t.Fatalf("want SQL fallback under 1-node budget, got %+v", r)
	}
	if !r.Violated {
		t.Fatal("fallback must still detect the violation")
	}
	if !strings.Contains(r.FallbackReason, "budget") {
		t.Fatalf("fallback reason should name the budget: %q", r.FallbackReason)
	}
	// The cap was per-request: the next uncapped check uses the BDD again.
	st = post(t, ts.URL+"/check", service.CheckRequest{Constraints: []string{"nj_codes"}}, &resp)
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if r := resultsByName(t, resp)["nj_codes"]; r.Method != "bdd" {
		t.Fatalf("budget cap leaked across requests: %+v", r)
	}
}

func TestDeadlineMapsToNodeBudget(t *testing.T) {
	// One node per second: a 1s deadline yields a budget of at most one
	// node, far below the live index, so the check degrades to SQL.
	_, ts := newTestServer(t, service.Options{NodesPerSecond: 1})
	var resp service.CheckResponse
	st := post(t, ts.URL+"/check", service.CheckRequest{
		Constraints: []string{"nj_codes"},
		TimeoutMS:   1000,
	}, &resp)
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	r := resultsByName(t, resp)["nj_codes"]
	if !r.FellBack || r.Method != "sql" || !r.Violated {
		t.Fatalf("want SQL fallback from deadline-derived budget, got %+v", r)
	}
}

func TestWitnesses(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var resp service.WitnessResponse
	st := post(t, ts.URL+"/witnesses", service.WitnessRequest{Constraint: "nj_codes", Limit: 5}, &resp)
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if resp.Method != "bdd" || len(resp.Witnesses) == 0 {
		t.Fatalf("want BDD witnesses, got %+v", resp)
	}
	found := false
	for _, w := range resp.Witnesses {
		for _, v := range w.Values {
			if v == "416" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("witnesses should include the offending areacode 416: %+v", resp.Witnesses)
	}
	// A satisfied constraint has no witnesses.
	st = post(t, ts.URL+"/witnesses", service.WitnessRequest{Constraint: "toronto_ontario"}, &resp)
	if st != http.StatusOK || len(resp.Witnesses) != 0 {
		t.Fatalf("satisfied constraint: status %d, witnesses %+v", st, resp.Witnesses)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var health service.HealthResponse
	if st := get(t, ts.URL+"/healthz", &health); st != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", st, health)
	}
	// Drive one check and one update so the counters move.
	post(t, ts.URL+"/check", service.CheckRequest{}, nil)
	post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "insert", Values: []string{"Oshawa", "905", "Ontario"}},
	}}, nil)
	var stats service.StatszResponse
	if st := get(t, ts.URL+"/statsz", &stats); st != http.StatusOK {
		t.Fatalf("statsz status %d", st)
	}
	if stats.Kernel.LiveNodes <= 2 || stats.Kernel.PeakNodes < stats.Kernel.LiveNodes {
		t.Fatalf("kernel counters look dead: %+v", stats.Kernel)
	}
	if stats.Requests.Checks < 1 || stats.Requests.UpdateJobs < 1 || stats.Requests.UpdateTuples < 1 {
		t.Fatalf("request counters did not move: %+v", stats.Requests)
	}
	if stats.Checker.BDDChecks < 1 {
		t.Fatalf("checker counters did not move: %+v", stats.Checker)
	}
	if len(stats.Indices) != 1 || stats.Indices[0].Name != "CUST" || stats.Indices[0].Nodes <= 0 {
		t.Fatalf("index stats: %+v", stats.Indices)
	}
	if len(stats.Tables) != 1 || stats.Tables[0].Rows != 6 {
		t.Fatalf("table stats after insert: %+v", stats.Tables)
	}
	if stats.Queue.ChecksCap <= 0 || stats.Queue.UpdatesCap <= 0 {
		t.Fatalf("queue stats: %+v", stats.Queue)
	}
	if len(stats.Constraints) != 2 {
		t.Fatalf("constraint listing: %+v", stats.Constraints)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var errResp map[string]string
	if st := post(t, ts.URL+"/check", service.CheckRequest{Constraints: []string{"nope"}}, &errResp); st != http.StatusBadRequest {
		t.Errorf("unknown constraint: status %d", st)
	}
	if st := post(t, ts.URL+"/check", service.CheckRequest{Text: "constraint broken: forall"}, &errResp); st != http.StatusBadRequest {
		t.Errorf("bad constraint text: status %d", st)
	}
	var ur service.UpdateResponse
	if st := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "upsert", Values: []string{"a", "b", "c"}},
	}}, &ur); st != http.StatusBadRequest || ur.Applied != 0 {
		t.Errorf("bad op: status %d, %+v", st, ur)
	}
	if st := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "insert", Values: []string{"only-one"}},
	}}, &ur); st != http.StatusBadRequest {
		t.Errorf("bad arity: status %d", st)
	}
	if st := post(t, ts.URL+"/update", service.UpdateRequest{}, &ur); st != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", st)
	}
	resp, err := http.Post(ts.URL+"/check", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/check")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /check: status %d", resp.StatusCode)
	}
}

func TestShutdownRefusesWork(t *testing.T) {
	srv, ts := newTestServer(t, service.Options{})
	srv.Close()
	var errResp map[string]string
	if st := post(t, ts.URL+"/check", service.CheckRequest{}, &errResp); st != http.StatusServiceUnavailable {
		t.Fatalf("check after Close: status %d", st)
	}
	var ur service.UpdateResponse
	if st := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "insert", Values: []string{"Oshawa", "905", "Ontario"}},
	}}, &ur); st != http.StatusServiceUnavailable {
		t.Fatalf("update after Close: status %d", st)
	}
}

// TestConcurrentChecksAndUpdates fires concurrent check, update and stats
// traffic at one server. Updates insert then delete tuples built from
// existing attribute values, so the database always returns to the seed
// state and every check has a deterministic expectation: nj_codes is always
// violated (the Newark/416 seed row never moves) and toronto_ontario never
// is (the churned tuples are all Ontario rows). Run under -race this pins
// down the serialization of all kernel access behind the worker.
func TestConcurrentChecksAndUpdates(t *testing.T) {
	_, ts := newTestServer(t, service.Options{QueueDepth: 8})
	const (
		checkers = 8
		updaters = 8
		readers  = 2
		iters    = 12
	)
	var wg sync.WaitGroup
	errc := make(chan error, checkers+updaters+readers)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}
	for g := 0; g < checkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := service.CheckRequest{}
				if g%2 == 0 {
					req.Constraints = []string{"nj_codes", "toronto_ontario"}
				}
				var resp service.CheckResponse
				enc, _ := json.Marshal(req)
				hr, err := http.Post(ts.URL+"/check", "application/json", bytes.NewReader(enc))
				if err != nil {
					report("checker %d: %v", g, err)
					return
				}
				body, _ := io.ReadAll(hr.Body)
				hr.Body.Close()
				if hr.StatusCode != http.StatusOK {
					report("checker %d: status %d: %s", g, hr.StatusCode, body)
					return
				}
				if err := json.Unmarshal(body, &resp); err != nil {
					report("checker %d: decode: %v", g, err)
					return
				}
				for _, r := range resp.Results {
					if r.Error != "" {
						report("checker %d: %s errored: %s", g, r.Name, r.Error)
						return
					}
					switch r.Name {
					case "nj_codes":
						if !r.Violated {
							report("checker %d: nj_codes not violated", g)
							return
						}
					case "toronto_ontario":
						if r.Violated {
							report("checker %d: toronto_ontario violated", g)
							return
						}
					}
				}
			}
		}(g)
	}
	churn := [][]string{
		{"Oshawa", "905", "Ontario"},
		{"Toronto", "647", "Ontario"},
	}
	for g := 0; g < updaters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			row := churn[g%len(churn)]
			for i := 0; i < iters; i++ {
				for _, op := range []string{"insert", "delete"} {
					var ur service.UpdateResponse
					enc, _ := json.Marshal(service.UpdateRequest{Updates: []service.UpdateTuple{
						{Table: "CUST", Op: op, Values: row},
					}})
					hr, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(enc))
					if err != nil {
						report("updater %d: %v", g, err)
						return
					}
					body, _ := io.ReadAll(hr.Body)
					hr.Body.Close()
					if hr.StatusCode != http.StatusOK {
						report("updater %d: %s status %d: %s", g, op, hr.StatusCode, body)
						return
					}
					if err := json.Unmarshal(body, &ur); err != nil || ur.Applied != 1 {
						report("updater %d: %s reply %+v err %v", g, op, ur, err)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters*2; i++ {
				hr, err := http.Get(ts.URL + "/statsz")
				if err != nil {
					report("reader %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, hr.Body)
				hr.Body.Close()
				if hr.StatusCode != http.StatusOK {
					report("reader %d: status %d", g, hr.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Every insert was matched by a delete: the database is back at the
	// seed state, the indices maintained incrementally throughout.
	var resp service.CheckResponse
	if st := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); st != http.StatusOK {
		t.Fatalf("final check: status %d", st)
	}
	for _, r := range resultsByName(t, resp) {
		if r.Method != "bdd" {
			t.Fatalf("index unusable after churn: %+v", r)
		}
	}
	var stats service.StatszResponse
	if st := get(t, ts.URL+"/statsz", &stats); st != http.StatusOK {
		t.Fatalf("statsz status %d", st)
	}
	if stats.Tables[0].Rows != 5 {
		t.Fatalf("table should be back at 5 seed rows, got %d", stats.Tables[0].Rows)
	}
	wantTuples := uint64(updaters * iters * 2)
	if stats.Requests.UpdateTuples != wantTuples {
		t.Fatalf("update_tuples = %d, want %d", stats.Requests.UpdateTuples, wantTuples)
	}
}
