package service_test

// edge_test.go pins down three HTTP-edge regressions:
//
//  1. /wal long-polls are clamped below the enclosing server's write
//     timeout, so a parked poll can never be cut mid-response.
//  2. Every integer query/path parameter rejects signs, trailing garbage
//     and overflow with a uniform 400 JSON envelope (strconv used to let
//     "+1" through and leak its own error text for the rest).
//  3. /snapshot streams stay intact when a concurrent snapshot round
//     prunes the epoch being served: headers come from the manifest entry
//     pinned before the first byte, and the body matches them exactly.

import (
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func TestWALWaitClampedBelowWriteTimeout(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The server believes its http.Server has a 1s write timeout, so the
	// effective long-poll ceiling is 500ms — regardless of the client
	// asking for a minute.
	_, ts := newDurableServer(t, st, service.Options{
		SnapshotEveryBatches: 1000,
		WriteTimeout:         1 * time.Second,
	})

	start := time.Now()
	var resp service.WALTailResponse
	if status := get(t, ts.URL+"/wal?from=1&wait_ms=60000", &resp); status != http.StatusOK {
		t.Fatalf("/wal status %d", status)
	}
	elapsed := time.Since(start)
	if len(resp.Batches) != 0 {
		t.Fatalf("unexpected batches: %+v", resp.Batches)
	}
	// Generous upper bound: anything near the requested 60s (or above the
	// pretend write timeout) means the clamp is gone.
	if elapsed >= 1*time.Second {
		t.Fatalf("long-poll parked for %v despite a 1s write timeout", elapsed)
	}
}

// TestUintParamRejection drives every integer parameter through the same
// malformed inputs and demands a 400 with a JSON error envelope for each —
// no strconv phrasing, no sign acceptance, no silent overflow.
func TestUintParamRejection(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newDurableServer(t, st, service.Options{SnapshotEveryBatches: 1000})

	bads := []string{"1x", "+1", "-1", "0x10", "18446744073709551616"}
	endpoints := []struct {
		name string
		url  func(bad string) string
		post bool
	}{
		{"check_epoch", func(b string) string { return ts.URL + "/check?epoch=" + b }, true},
		{"wal_from", func(b string) string { return ts.URL + "/wal?from=" + b }, false},
		{"wal_wait_ms", func(b string) string { return ts.URL + "/wal?from=1&wait_ms=" + b }, false},
		{"snapshot_epoch", func(b string) string { return ts.URL + "/snapshot/" + b }, false},
	}
	for _, ep := range endpoints {
		for _, bad := range bads {
			t.Run(ep.name+"/"+bad, func(t *testing.T) {
				var env struct {
					Error string `json:"error"`
				}
				var status int
				if ep.post {
					status = post(t, ep.url(bad), service.CheckRequest{}, &env)
				} else {
					status = get(t, ep.url(bad), &env)
				}
				if status != http.StatusBadRequest {
					t.Fatalf("status %d, want 400", status)
				}
				if !strings.Contains(env.Error, "want an unsigned decimal integer") &&
					!strings.Contains(env.Error, "out of range") {
					t.Fatalf("error envelope %q is not the uniform message", env.Error)
				}
			})
		}
	}

	// Valid forms still work: digits-only epochs and the "latest" alias.
	var cr service.CheckResponse
	if status := post(t, ts.URL+"/check?epoch=1", service.CheckRequest{}, &cr); status != http.StatusOK {
		t.Fatalf("/check?epoch=1 status %d", status)
	}
	resp, err := http.Get(ts.URL + "/snapshot/latest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot/latest status %d", resp.StatusCode)
	}
}

// TestSnapshotStreamSurvivesPrune opens a snapshot download, then drives the
// server through a snapshot round that prunes the epoch being streamed, and
// finishes the read: the body must still match the pinned manifest entry's
// length and CRC byte for byte. A fresh request for the pruned epoch gets a
// clean 410 JSON envelope, never headers-then-error.
func TestSnapshotStreamSurvivesPrune(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newDurableServer(t, st, service.Options{SnapshotEveryBatches: 1})

	resp, err := http.Get(ts.URL + "/snapshot/1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot/1 status %d", resp.StatusCode)
	}
	wantLen, err := strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
	if err != nil {
		t.Fatalf("Content-Length: %v", err)
	}
	if got := resp.Header.Get(service.HeaderSnapshotEpoch); got != "1" {
		t.Fatalf("snapshot epoch header %q, want 1", got)
	}
	wantCRC := resp.Header.Get(service.HeaderSnapshotCRC)

	// Read a prefix, leave the stream open across the prune.
	head := make([]byte, 64)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}

	// Every batch seals a snapshot and Retain=1 prunes everything older:
	// epoch 1's file is unlinked while our handle still reads it.
	for i := 0; i < 2; i++ {
		var ur service.UpdateResponse
		status := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
			{Table: "CUST", Op: "insert", Values: []string{"Barrie", []string{"416", "647"}[i], "Ontario"}},
		}}, &ur)
		if status != http.StatusOK {
			t.Fatalf("/update %d status %d", i, status)
		}
	}
	if st.LastSnapshotEpoch() <= 1 {
		t.Fatalf("snapshot round did not advance past epoch 1 (at %d)", st.LastSnapshotEpoch())
	}

	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream tail after prune: %v", err)
	}
	body := append(head, rest...)
	if int64(len(body)) != wantLen {
		t.Fatalf("streamed %d bytes, Content-Length said %d", len(body), wantLen)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)); got != wantCRC {
		t.Fatalf("streamed CRC %s, header said %s", got, wantCRC)
	}

	// The pruned epoch now answers with a clean JSON 410 — no partial body.
	var env struct {
		Error string `json:"error"`
	}
	if status := get(t, ts.URL+"/snapshot/1", &env); status != http.StatusGone || env.Error == "" {
		t.Fatalf("pruned epoch: status %d, envelope %q", status, env.Error)
	}
}
