package service_test

// durability_test.go exercises the service-level durability path end to
// end over HTTP: updates are WAL-logged before acknowledgment, a restarted
// server recovers every acknowledged batch with identical verdicts, and
// ?epoch=N serves point-in-time reads at retained epochs.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/store"
)

// newDurableServer builds the standard fixture on top of an opened store,
// sealing the initial state as the epoch-1 snapshot the way cvserved's cold
// boot does.
func newDurableServer(t *testing.T, st *store.Store, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city"}, {Name: "areacode"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]string{
		{"Toronto", "416", "Ontario"},
		{"Toronto", "647", "Ontario"},
		{"Oshawa", "905", "Ontario"},
		{"Newark", "973", "NJ"},
		{"Newark", "416", "NJ"},
	} {
		cust.Insert(row...)
	}
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("CUST", "CUST", nil, core.OrderProbConverge); err != nil {
		t.Fatal(err)
	}
	cts, err := logic.ParseConstraints(testRules)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	opts.InitialEpoch = 1
	srv, err := service.New(chk, cts, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// reopenServer recovers the checker and constraints from the data directory
// (no CSV, no table rebuild) and serves them, as cvserved's warm boot does.
func reopenServer(t *testing.T, dir string, opts service.Options) (*service.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chk, text, info, err := st.Recover(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cts, err := logic.ParseConstraints(text)
	if err != nil {
		t.Fatalf("recovered constraint text does not parse: %v\n%s", err, text)
	}
	opts.Store = st
	opts.InitialEpoch = info.LastEpoch
	srv, err := service.New(chk, cts, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		st.Close()
	})
	return srv, ts
}

func checkVerdicts(t *testing.T, url string) map[string]bool {
	t.Helper()
	var resp service.CheckResponse
	if status := post(t, url+"/check", service.CheckRequest{}, &resp); status != http.StatusOK {
		t.Fatalf("/check status %d", status)
	}
	out := make(map[string]bool)
	for name, r := range resultsByName(t, resp) {
		out[name] = r.Violated
	}
	return out
}

// TestRestartRecoversAcknowledgedUpdates acknowledges update batches, tears
// the server down without a snapshot of the new state (WAL only), reopens
// from the directory, and demands identical verdicts — plus durable epochs
// on /statsz across the restart.
func TestRestartRecoversAcknowledgedUpdates(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// SnapshotEveryBatches large: the updates below stay WAL-only, so the
	// restart exercises replay, not just snapshot restore.
	srv, ts := newDurableServer(t, st, service.Options{SnapshotEveryBatches: 1000})

	before := checkVerdicts(t, ts.URL)
	if !before["nj_codes"] || before["toronto_ontario"] {
		t.Fatalf("unexpected seed verdicts: %v", before)
	}

	// Repair nj_codes (delete the offending row) and break toronto_ontario.
	batches := [][]service.UpdateTuple{
		{{Table: "CUST", Op: "delete", Values: []string{"Newark", "416", "NJ"}}},
		{{Table: "CUST", Op: "insert", Values: []string{"Toronto", "973", "NJ"}}},
	}
	for _, b := range batches {
		var ur service.UpdateResponse
		if status := post(t, ts.URL+"/update", service.UpdateRequest{Updates: b}, &ur); status != http.StatusOK {
			t.Fatalf("/update status %d: %s", status, ur.Error)
		}
	}
	want := checkVerdicts(t, ts.URL)
	if want["nj_codes"] || !want["toronto_ontario"] {
		t.Fatalf("unexpected post-update verdicts: %v", want)
	}
	var stats service.StatszResponse
	if status := get(t, ts.URL+"/statsz", &stats); status != http.StatusOK {
		t.Fatalf("/statsz status %d", status)
	}
	if stats.Epoch != 3 {
		t.Fatalf("epoch after 2 acked batches = %d, want 3", stats.Epoch)
	}
	if stats.Durability == nil || stats.Durability.WALAppends != 2 {
		t.Fatalf("durability stats = %+v, want 2 WAL appends", stats.Durability)
	}

	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := reopenServer(t, dir, service.Options{})
	got := checkVerdicts(t, ts2.URL)
	for name, v := range want {
		if got[name] != v {
			t.Errorf("recovered verdict %s = %v, want %v", name, got[name], v)
		}
	}
	var stats2 service.StatszResponse
	if status := get(t, ts2.URL+"/statsz", &stats2); status != http.StatusOK {
		t.Fatalf("/statsz status %d", status)
	}
	if stats2.Epoch != 3 {
		t.Fatalf("recovered epoch = %d, want 3", stats2.Epoch)
	}
	if stats2.Durability == nil || stats2.Durability.ReplayedRecords != 2 {
		t.Fatalf("recovery stats = %+v, want 2 replayed records", stats2.Durability)
	}
}

// TestEpochReadsOverHTTP walks ?epoch=N through the fixture's history:
// epoch 1 (initial snapshot), epoch 2 (WAL replay on top), the live epoch,
// a future epoch (404) and a malformed value (400).
func TestEpochReadsOverHTTP(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newDurableServer(t, st, service.Options{SnapshotEveryBatches: 1000})

	batches := [][]service.UpdateTuple{
		{{Table: "CUST", Op: "delete", Values: []string{"Newark", "416", "NJ"}}},  // epoch 2: nj_codes repaired
		{{Table: "CUST", Op: "insert", Values: []string{"Toronto", "973", "NJ"}}}, // epoch 3: toronto broken
	}
	for _, b := range batches {
		var ur service.UpdateResponse
		if status := post(t, ts.URL+"/update", service.UpdateRequest{Updates: b}, &ur); status != http.StatusOK {
			t.Fatalf("/update status %d: %s", status, ur.Error)
		}
	}

	wantByEpoch := map[uint64]map[string]bool{
		1: {"nj_codes": true, "toronto_ontario": false},
		2: {"nj_codes": false, "toronto_ontario": false},
		3: {"nj_codes": false, "toronto_ontario": true},
	}
	for epoch, want := range wantByEpoch {
		var resp service.CheckResponse
		url := fmt.Sprintf("%s/check?epoch=%d", ts.URL, epoch)
		if status := post(t, url, service.CheckRequest{}, &resp); status != http.StatusOK {
			t.Fatalf("epoch %d status %d", epoch, status)
		}
		if resp.Epoch != epoch {
			t.Errorf("epoch %d reply reports epoch %d", epoch, resp.Epoch)
		}
		for name, r := range resultsByName(t, resp) {
			if r.Violated != want[name] {
				t.Errorf("epoch %d: %s violated=%v, want %v", epoch, name, r.Violated, want[name])
			}
		}
	}

	// Repeat an epoch to go through the materialization cache.
	var resp service.CheckResponse
	if status := post(t, ts.URL+"/check?epoch=1", service.CheckRequest{}, &resp); status != http.StatusOK {
		t.Fatalf("cached epoch read status %d", status)
	}
	if got := resultsByName(t, resp); !got["nj_codes"].Violated {
		t.Errorf("cached epoch 1 read lost the nj_codes violation")
	}

	if status := post(t, ts.URL+"/check?epoch=99", service.CheckRequest{}, nil); status != http.StatusNotFound {
		t.Errorf("future epoch status = %d, want 404", status)
	}
	if status := post(t, ts.URL+"/check?epoch=bogus", service.CheckRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("malformed epoch status = %d, want 400", status)
	}
}

// TestEpochReadWithoutStoreRejected pins the no-data-dir behavior: ?epoch=N
// for a non-live epoch is a 400, and responses carry no epoch field.
func TestEpochReadWithoutStoreRejected(t *testing.T) {
	_, ts := newTestServer(t, service.Options{})
	var resp service.CheckResponse
	if status := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); status != http.StatusOK {
		t.Fatalf("/check status %d", status)
	}
	if resp.Epoch != 0 {
		t.Errorf("epoch without store = %d, want 0", resp.Epoch)
	}
	if status := post(t, ts.URL+"/check?epoch=1", service.CheckRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("historical epoch without store status = %d, want 400", status)
	}
}

// TestSnapshotTriggerByBatchCount drives enough batches through the batch
// trigger to seal snapshots, then asserts pruned epochs answer 410.
func TestSnapshotTriggerByBatchCount(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newDurableServer(t, st, service.Options{SnapshotEveryBatches: 1})

	// Rows recombine existing domain values: the index block widths were
	// sized at build time, so a novel value would be rejected.
	rows := [][]string{
		{"Oshawa", "416", "Ontario"},
		{"Oshawa", "647", "Ontario"},
		{"Newark", "905", "Ontario"},
		{"Toronto", "973", "Ontario"},
		{"Oshawa", "973", "Ontario"},
	}
	for _, row := range rows {
		b := []service.UpdateTuple{{Table: "CUST", Op: "insert", Values: row}}
		var ur service.UpdateResponse
		if status := post(t, ts.URL+"/update", service.UpdateRequest{Updates: b}, &ur); status != http.StatusOK {
			t.Fatalf("/update status %d: %s", status, ur.Error)
		}
	}
	var stats service.StatszResponse
	if status := get(t, ts.URL+"/statsz", &stats); status != http.StatusOK {
		t.Fatalf("/statsz status %d", status)
	}
	if stats.Durability == nil || stats.Durability.Snapshots != 2 {
		t.Fatalf("durability stats = %+v, want 2 retained snapshots", stats.Durability)
	}
	if got := stats.Durability.LastSnapshotEpoch; got != 6 {
		t.Fatalf("last snapshot epoch = %d, want 6", got)
	}

	// Retained snapshot epochs answer; a pruned one is Gone.
	if status := post(t, ts.URL+"/check?epoch=6", service.CheckRequest{}, nil); status != http.StatusOK {
		t.Errorf("retained epoch status = %d, want 200", status)
	}
	if status := post(t, ts.URL+"/check?epoch=2", service.CheckRequest{}, nil); status != http.StatusGone {
		t.Errorf("pruned epoch status = %d, want 410", status)
	}
}
