package service_test

// replica_test.go exercises the replicated read path at the service level:
// routing of /check and /witnesses through the pool, epoch handoffs after
// /update, aggregated /statsz counters, and the -race concurrency guarantee
// with at least two replicas.

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/service"
)

func TestStatszReportsReplication(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Replicas: 2})

	// One check through the pool, one update (epoch handoff), one more check
	// so a worker demonstrably swaps to the new epoch.
	var resp service.CheckResponse
	if st := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); st != http.StatusOK {
		t.Fatalf("check status %d", st)
	}
	var ur service.UpdateResponse
	if st := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
		{Table: "CUST", Op: "insert", Values: []string{"Oshawa", "905", "Ontario"}},
	}}, &ur); st != http.StatusOK || ur.Applied != 1 {
		t.Fatalf("update: status %d, %+v", st, ur)
	}
	if st := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); st != http.StatusOK {
		t.Fatalf("check status %d", st)
	}
	var wresp service.WitnessResponse
	if st := post(t, ts.URL+"/witnesses", service.WitnessRequest{Constraint: "nj_codes"}, &wresp); st != http.StatusOK {
		t.Fatalf("witnesses status %d", st)
	}
	if wresp.Method != "bdd" || len(wresp.Witnesses) == 0 {
		t.Fatalf("witnesses should come off a replica's BDD: %+v", wresp)
	}

	var stats service.StatszResponse
	if st := get(t, ts.URL+"/statsz", &stats); st != http.StatusOK {
		t.Fatalf("statsz status %d", st)
	}
	repl := stats.Replication
	if repl.Replicas != 2 {
		t.Fatalf("replicas = %d, want 2", repl.Replicas)
	}
	if repl.Epoch < 2 {
		t.Fatalf("epoch = %d, want ≥ 2 after an update handoff", repl.Epoch)
	}
	if repl.ReplicaChecks < 2 || repl.ReplicaWitnesses < 1 {
		t.Fatalf("pool should have served the reads: %+v", repl)
	}
	if repl.Swaps < 1 {
		t.Fatalf("swaps = %d, want ≥ 1 (a worker must have materialized)", repl.Swaps)
	}
	if len(repl.Workers) != 2 {
		t.Fatalf("want 2 worker entries, got %+v", repl.Workers)
	}
	var jobs uint64
	var sawLatest bool
	for _, w := range repl.Workers {
		jobs += w.Jobs
		if w.Epoch == repl.Epoch {
			sawLatest = true
		}
		if w.Jobs > 0 && w.Kernel.LiveNodes < 2 {
			t.Fatalf("worker %d served jobs with an empty kernel: %+v", w.Worker, w)
		}
	}
	if jobs < 3 {
		t.Fatalf("worker jobs sum to %d, want ≥ 3 (2 checks + witnesses)", jobs)
	}
	if !sawLatest {
		t.Fatalf("no worker swapped to epoch %d: %+v", repl.Epoch, repl.Workers)
	}
	// The aggregate kernel view sums the primary and every replica.
	if stats.Kernel.LiveNodes < stats.PrimaryKernel.LiveNodes {
		t.Fatalf("aggregate kernel (%+v) smaller than primary (%+v)", stats.Kernel, stats.PrimaryKernel)
	}
	if stats.PrimaryKernel.LiveNodes <= 2 {
		t.Fatalf("primary kernel looks dead: %+v", stats.PrimaryKernel)
	}
	// Replica BDD decisions must show up in the aggregated checker counters:
	// 2 full checks × 2 constraints, all decided without SQL.
	if stats.Checker.BDDChecks < 4 {
		t.Fatalf("aggregated BDD checks = %d, want ≥ 4", stats.Checker.BDDChecks)
	}
}

func TestReplicationDisabled(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Replicas: -1})
	var resp service.CheckResponse
	if st := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); st != http.StatusOK {
		t.Fatalf("check status %d", st)
	}
	if r := resultsByName(t, resp)["nj_codes"]; !r.Violated || r.Method != "bdd" {
		t.Fatalf("primary path must still serve checks: %+v", r)
	}
	var stats service.StatszResponse
	if st := get(t, ts.URL+"/statsz", &stats); st != http.StatusOK {
		t.Fatalf("statsz status %d", st)
	}
	if repl := stats.Replication; repl.Replicas != 0 || repl.ReplicaChecks != 0 {
		t.Fatalf("replication disabled but reported active: %+v", repl)
	}
	if stats.Kernel != stats.PrimaryKernel {
		t.Fatalf("without replicas the aggregate must equal the primary: %+v vs %+v",
			stats.Kernel, stats.PrimaryKernel)
	}
}

func TestReplicaReroutesBudgetFallbackToPrimary(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Replicas: 2})
	var resp service.CheckResponse
	st := post(t, ts.URL+"/check", service.CheckRequest{
		Constraints: []string{"nj_codes"},
		NodeBudget:  1,
	}, &resp)
	if st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	r := resultsByName(t, resp)["nj_codes"]
	if !r.FellBack || r.Method != "sql" || !r.Violated {
		t.Fatalf("want rerouted SQL fallback, got %+v", r)
	}
	var stats service.StatszResponse
	if st := get(t, ts.URL+"/statsz", &stats); st != http.StatusOK {
		t.Fatalf("statsz status %d", st)
	}
	if stats.Replication.Reroutes < 1 {
		t.Fatalf("reroutes = %d, want ≥ 1", stats.Replication.Reroutes)
	}
	if stats.Checker.SQLFallbacks < 1 {
		t.Fatalf("the primary must have run the SQL fallback: %+v", stats.Checker)
	}
}

// TestReplicatedReadYourWrites pins the publish-before-ack guarantee on the
// pool path: with two replicas, a check submitted after an update's 200 OK
// must see the new epoch's data no matter which worker serves it.
func TestReplicatedReadYourWrites(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Replicas: 2})
	toggle := []string{"Toronto", "416", "NJ"} // violates toronto_ontario
	for i := 0; i < 6; i++ {
		op, want := "insert", true
		if i%2 == 1 {
			op, want = "delete", false
		}
		var ur service.UpdateResponse
		if st := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
			{Table: "CUST", Op: op, Values: toggle},
		}}, &ur); st != http.StatusOK || ur.Applied != 1 {
			t.Fatalf("round %d %s: status %d, %+v", i, op, st, ur)
		}
		// Both workers must observe the acked state, not just one.
		for rep := 0; rep < 4; rep++ {
			var resp service.CheckResponse
			if st := post(t, ts.URL+"/check", service.CheckRequest{
				Constraints: []string{"toronto_ontario"},
			}, &resp); st != http.StatusOK {
				t.Fatalf("round %d check: status %d", i, st)
			}
			r := resultsByName(t, resp)["toronto_ontario"]
			if r.Violated != want {
				t.Fatalf("round %d: acked %s invisible to check (violated=%v, want %v)",
					i, op, r.Violated, want)
			}
			if r.Method != "bdd" {
				t.Fatalf("round %d: replica check fell off the BDD path: %+v", i, r)
			}
		}
	}
}

// TestConcurrentReplicatedChecksAndUpdates is the service half of the -race
// acceptance run: concurrent /check and /witnesses traffic served by a
// 2-replica pool while updates force epoch handoffs. The churned tuples are
// Ontario rows, so nj_codes stays violated and toronto_ontario stays
// satisfied at every epoch a reader can observe.
func TestConcurrentReplicatedChecksAndUpdates(t *testing.T) {
	_, ts := newTestServer(t, service.Options{Replicas: 2, QueueDepth: 8})
	const (
		checkers = 6
		updaters = 4
		iters    = 10
	)
	var wg sync.WaitGroup
	errc := make(chan error, checkers+updaters)
	report := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}
	for g := 0; g < checkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if g%3 == 2 {
					var wresp service.WitnessResponse
					st := post(t, ts.URL+"/witnesses", service.WitnessRequest{Constraint: "nj_codes"}, &wresp)
					if st != http.StatusOK || len(wresp.Witnesses) == 0 {
						report("witness reader %d: status %d, %+v", g, st, wresp)
						return
					}
					continue
				}
				var resp service.CheckResponse
				if st := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); st != http.StatusOK {
					report("checker %d: status %d", g, st)
					return
				}
				for _, r := range resp.Results {
					if r.Error != "" {
						report("checker %d: %s errored: %s", g, r.Name, r.Error)
						return
					}
					if r.Name == "nj_codes" && !r.Violated {
						report("checker %d: nj_codes not violated", g)
						return
					}
					if r.Name == "toronto_ontario" && r.Violated {
						report("checker %d: toronto_ontario violated", g)
						return
					}
				}
			}
		}(g)
	}
	churn := [][]string{
		{"Oshawa", "905", "Ontario"},
		{"Toronto", "647", "Ontario"},
	}
	for g := 0; g < updaters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			row := churn[g%len(churn)]
			for i := 0; i < iters; i++ {
				for _, op := range []string{"insert", "delete"} {
					var ur service.UpdateResponse
					st := post(t, ts.URL+"/update", service.UpdateRequest{Updates: []service.UpdateTuple{
						{Table: "CUST", Op: op, Values: row},
					}}, &ur)
					if st != http.StatusOK || ur.Applied != 1 {
						report("updater %d: %s status %d, %+v", g, op, st, ur)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	var stats service.StatszResponse
	if st := get(t, ts.URL+"/statsz", &stats); st != http.StatusOK {
		t.Fatalf("statsz status %d", st)
	}
	repl := stats.Replication
	if repl.Replicas != 2 {
		t.Fatalf("replicas = %d, want 2", repl.Replicas)
	}
	// Every update batch published a fresh version: the epoch must have
	// moved well past the bootstrap version.
	if repl.Epoch < 2 {
		t.Fatalf("epoch = %d: no handoff happened under update load", repl.Epoch)
	}
	if repl.ReplicaChecks == 0 && repl.ReplicaWitnesses == 0 {
		t.Fatalf("no read was served by the pool: %+v", repl)
	}
	if stats.Tables[0].Rows != 5 {
		t.Fatalf("table should be back at 5 seed rows, got %d", stats.Tables[0].Rows)
	}
	t.Logf("epoch %d, swaps %d, replica checks %d, witnesses %d, reroutes %d",
		repl.Epoch, repl.Swaps, repl.ReplicaChecks, repl.ReplicaWitnesses, repl.Reroutes)
}
