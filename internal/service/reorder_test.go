package service_test

// reorder_test.go exercises dynamic variable reordering end to end over
// HTTP: the worker sifts the kernel between update batches, publishes the
// compacted order as a fresh epoch, and concurrent readers see only old- or
// new-epoch answers — never an error — while a post-sift snapshot restores
// identical verdicts on warm restart.

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/store"
)

// newReorderFixture builds a CUST catalog whose column dictionaries are
// wide enough that later update batches can keep inserting fresh value
// combinations (growing the index BDD and tripping the reorder heuristic)
// without ever growing a dictionary past its block width.
func newReorderFixture(t *testing.T) (*core.Checker, []logic.Constraint) {
	t.Helper()
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city"}, {Name: "areacode"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed every dictionary value up front. State S00 is "NJ"; its seed rows
	// use the allowed 201/973/908 codes except one fixed violator, so
	// nj_codes is violated in every epoch and toronto_ontario (no Toronto
	// rows at all) holds in every epoch.
	codes := []string{"201", "973", "908"}
	for i := 0; i < 32; i++ {
		area := fmt.Sprintf("A%02d", i)
		state := fmt.Sprintf("S%02d", i%16)
		if i%16 == 0 {
			state = "NJ"
			area = codes[i%len(codes)]
		}
		cust.Insert(fmt.Sprintf("C%02d", i), area, state)
	}
	cust.Insert("Newark", "416", "NJ") // the standing nj_codes violation
	chk := core.New(cat, core.Options{})
	if _, err := chk.BuildIndex("CUST", "CUST", nil, core.OrderSchema); err != nil {
		t.Fatal(err)
	}
	cts, err := logic.ParseConstraints(testRules)
	if err != nil {
		t.Fatal(err)
	}
	return chk, cts
}

// growthBatch returns the n-th update batch: five inserts of previously
// unused (city, areacode, state) combinations drawn from the seeded
// dictionaries, so the index BDD grows every round.
func growthBatch(n int) service.UpdateRequest {
	ups := make([]service.UpdateTuple, 0, 5)
	for j := 0; j < 5; j++ {
		i := n*5 + j
		ups = append(ups, service.UpdateTuple{
			Table: "CUST",
			Op:    "insert",
			Values: []string{
				fmt.Sprintf("C%02d", (i*7+3)%32),
				fmt.Sprintf("A%02d", (i*11+5)%32),
				fmt.Sprintf("S%02d", (i*3)%15+1), // never NJ (S00)
			},
		})
	}
	return service.UpdateRequest{Updates: ups}
}

// metricValue scrapes /metricsz and returns the summed value of the metric
// samples whose name (with any label set) matches name.
func metricValue(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	total, found := 0.0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // a longer name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("metric line %q: %v", line, err)
		}
		total += v
		found = true
	}
	if !found {
		t.Fatalf("metric %s not found on /metricsz", name)
	}
	return total
}

// TestReorderZeroReadDowntime drives update batches that trip the reorder
// heuristic while reader goroutines hammer /check: every response must be a
// definite old- or new-epoch answer (the fixture keeps both verdicts
// constant across epochs), and at least one sift must actually have run.
func TestReorderZeroReadDowntime(t *testing.T) {
	chk, cts := newReorderFixture(t)
	srv, err := service.New(chk, cts, service.Options{
		Replicas:        2,
		Reorder:         true,
		ReorderGrowth:   1.0001, // any growth over the baseline sifts
		ReorderMinNodes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp service.CheckResponse
				if status := post(t, ts.URL+"/check", service.CheckRequest{}, &resp); status != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("/check status %d", status):
					default:
					}
					return
				}
				for _, res := range resp.Results {
					switch {
					case res.Error != "":
						select {
						case errs <- fmt.Sprintf("%s errored: %s", res.Name, res.Error):
						default:
						}
						return
					case res.Name == "nj_codes" && !res.Violated,
						res.Name == "toronto_ontario" && res.Violated:
						select {
						case errs <- fmt.Sprintf("%s flipped verdict (violated=%v)", res.Name, res.Violated):
						default:
						}
						return
					}
				}
			}
		}()
	}

	for n := 0; n < 40; n++ {
		var resp service.UpdateResponse
		if status := post(t, ts.URL+"/update", growthBatch(n), &resp); status != http.StatusOK || resp.Error != "" {
			t.Fatalf("update batch %d: status %d, error %q", n, status, resp.Error)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	if n := metricValue(t, ts.URL, "cv_reorder_count"); n < 1 {
		t.Fatalf("cv_reorder_count = %v, want at least one sift", n)
	}
	metricValue(t, ts.URL, "cv_reorder_nodes_saved") // must exist
	if rates := metricValue(t, ts.URL, "cv_kernel_cache_hit_rate"); rates <= 0 {
		t.Fatalf("cv_kernel_cache_hit_rate sums to %v, want > 0 after traffic", rates)
	}
	if c := metricValue(t, ts.URL, "cv_reorder_duration_seconds_count"); c < 1 {
		t.Fatalf("cv_reorder_duration_seconds observed %v runs, want at least 1", c)
	}
}

// TestReorderSnapshotWarmRestart sifts, snapshots every batch, and restarts
// from the data directory: the recovered checker must adopt the sifted
// variable order from the snapshot and report identical verdicts.
func TestReorderSnapshotWarmRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chk, cts := newReorderFixture(t)
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	srv, err := service.New(chk, cts, service.Options{
		Store:                st,
		InitialEpoch:         1,
		SnapshotEveryBatches: 1,
		Reorder:              true,
		ReorderGrowth:        1.0001,
		ReorderMinNodes:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	for n := 0; n < 10; n++ {
		var resp service.UpdateResponse
		if status := post(t, ts.URL+"/update", growthBatch(n), &resp); status != http.StatusOK || resp.Error != "" {
			t.Fatalf("update batch %d: status %d, error %q", n, status, resp.Error)
		}
	}
	if n := metricValue(t, ts.URL, "cv_reorder_count"); n < 1 {
		t.Fatalf("cv_reorder_count = %v, want at least one sift before the snapshot", n)
	}
	before := checkVerdicts(t, ts.URL)

	ts.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts2 := reopenServer(t, dir, service.Options{})
	after := checkVerdicts(t, ts2.URL)
	if len(before) != len(after) {
		t.Fatalf("verdict sets differ: %v vs %v", before, after)
	}
	for name, v := range before {
		if after[name] != v {
			t.Errorf("constraint %s: violated=%v before restart, %v after", name, v, after[name])
		}
	}
	if !before["nj_codes"] || before["toronto_ontario"] {
		t.Fatalf("fixture verdicts drifted: %v", before)
	}
}
