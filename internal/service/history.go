package service

// history.go serves point-in-time reads: /check?epoch=N evaluates
// constraints against the database as of epoch N, materialized from the
// durability store (snapshot + WAL replay) rather than the live checker.
// Materialized epochs are cached so a client paging through witnesses of a
// historical violation does not pay the restore cost per request.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/logic"
)

// ErrFutureEpoch is returned for ?epoch=N beyond the current epoch.
var ErrFutureEpoch = errors.New("service: epoch not reached yet")

// ErrNoHistory is returned for ?epoch=N when the server runs without a
// durability store.
var ErrNoHistory = errors.New("service: no data directory; historical epochs unavailable")

// maxHistoryEntries bounds the materialized-epoch cache. Each entry owns a
// full private kernel, so the cache is deliberately small; eviction is FIFO.
const maxHistoryEntries = 4

// historyEntry is one materialized historical epoch. The checker owns a
// private kernel (restored from the snapshot, not shared with the live
// checker), so the only synchronization needed is mu serializing evaluation
// on that kernel.
type historyEntry struct {
	mu  chan struct{} // 1-buffered semaphore; also serves as "ready" latch
	chk *core.Checker
	err error
}

// CurrentEpoch reports the epoch of the last durably acknowledged update
// round (or the boot epoch when no updates have run).
func (s *Server) CurrentEpoch() uint64 { return s.epoch.Load() }

// checkAtEpoch evaluates cts against the database image at the given past
// epoch. The image is restored from the newest retained snapshot at or
// before the epoch plus WAL replay, cached for subsequent requests, and
// evaluated under the request's deadline-derived node budget.
func (s *Server) checkAtEpoch(ctx context.Context, epoch uint64, cts []logic.Constraint, budget int) ([]core.Result, error) {
	if s.st == nil {
		return nil, ErrNoHistory
	}
	if cur := s.epoch.Load(); epoch > cur {
		return nil, fmt.Errorf("%w: requested %d, current is %d", ErrFutureEpoch, epoch, cur)
	}
	s.nEpochChecks.Add(1)
	e, fresh := s.historyEntry(epoch)
	if fresh {
		// First requester materializes; holders of e.mu below wait for it.
		// coreOpts, not s.chk.Options(): this runs on handler goroutines,
		// and the worker may be swapping s.chk under a follower re-bootstrap.
		chk, err := s.st.CheckerAt(epoch, s.coreOpts)
		e.chk, e.err = chk, err
		e.mu <- struct{}{} // release: entry is ready
		if err != nil {
			s.dropHistoryEntry(epoch)
		}
	}
	select {
	case <-e.mu:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { e.mu <- struct{}{} }()
	if e.err != nil {
		return nil, e.err
	}
	opts := core.CheckOptions{NodeBudget: s.budgetFor(ctx, budget)}
	results := make([]core.Result, 0, len(cts))
	for _, ct := range cts {
		if err := ctx.Err(); err != nil {
			results = append(results, core.Result{Constraint: ct, Err: err})
			continue
		}
		results = append(results, e.chk.CheckOneOpts(ct, opts))
	}
	return results, nil
}

// historyEntry returns the cache entry for epoch, creating (and FIFO-evicting)
// under histMu. fresh is true when the caller must materialize the entry and
// then release its semaphore.
func (s *Server) historyEntry(epoch uint64) (e *historyEntry, fresh bool) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if e, ok := s.history[epoch]; ok {
		return e, false
	}
	for len(s.histOrder) >= maxHistoryEntries {
		delete(s.history, s.histOrder[0])
		s.histOrder = s.histOrder[1:]
	}
	e = &historyEntry{mu: make(chan struct{}, 1)}
	s.history[epoch] = e
	s.histOrder = append(s.histOrder, epoch)
	return e, true
}

// dropHistoryEntry removes a failed materialization so a later request can
// retry (the store may have the epoch after the next snapshot settles).
func (s *Server) dropHistoryEntry(epoch uint64) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if _, ok := s.history[epoch]; !ok {
		return
	}
	delete(s.history, epoch)
	for i, ep := range s.histOrder {
		if ep == epoch {
			s.histOrder = append(s.histOrder[:i], s.histOrder[i+1:]...)
			break
		}
	}
}
