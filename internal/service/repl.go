package service

// repl.go is the leader side of replication: two endpoints that make the
// store's durability artifacts network-servable.
//
//	GET /snapshot/{epoch}   streams a retained snapshot file verbatim, with
//	                        its manifest epoch, exact length and CRC in
//	                        headers so the receiver can verify the transfer
//	                        before committing it ("latest" or 0 = newest).
//	GET /wal?from=N         long-polls the tail of acknowledged update
//	                        batches: every WAL record with epoch > from, up
//	                        to the currently published epoch. Answers 410
//	                        when epochs past `from` have been truncated into
//	                        a snapshot (the follower must re-bootstrap) and
//	                        waits up to wait_ms for news when nothing is
//	                        pending.
//
// Why this is enough for a correct follower: the paper's premise is that
// violation indices are cheap to maintain incrementally, so a replica never
// needs the base tables — a snapshot (compiled state at an epoch) plus the
// ordered update batches behind it reproduce the leader's checker exactly.
// Records are only served up to the *published* epoch: the worker appends a
// round's WAL records before storing the new epoch, so a concurrent reader
// could otherwise see half of an in-progress round and skip the rest.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// Replication headers. The snapshot response carries the manifest entry's
// metadata so the receiver can verify the stream before installing it; 421
// update refusals name the leader.
const (
	// HeaderSnapshotEpoch is the epoch the streamed snapshot captures.
	HeaderSnapshotEpoch = "X-Cv-Snapshot-Epoch"
	// HeaderSnapshotCRC is the IEEE CRC-32 of the whole file, 8 hex digits.
	HeaderSnapshotCRC = "X-Cv-Snapshot-Crc32"
	// HeaderLeader carries the leader's URL on follower write refusals.
	HeaderLeader = "X-Cv-Leader"
)

// maxWALWait caps /wal's wait_ms: it must stay safely under the server's
// write timeout or long-polls would be cut mid-response.
const maxWALWait = 30 * time.Second

// walWaitCap is the effective long-poll ceiling: never above maxWALWait,
// and never above half the enclosing http.Server's write timeout — the
// remaining half is headroom to serialize and flush the response. A
// cvserved started with a write timeout below 2×maxWALWait would otherwise
// cut parked long-polls mid-chunk, which a tailing follower surfaces as a
// spurious corrupt-record error.
func (s *Server) walWaitCap() time.Duration {
	limit := time.Duration(maxWALWait)
	if wt := s.opts.WriteTimeout; wt > 0 && wt/2 < limit {
		limit = wt / 2
	}
	return limit
}

// WALBatch is one acknowledged WAL record on the wire: the updates applied
// under one epoch. Several records may share an epoch (one per job of a
// coalesced round); a follower applies all records of an epoch as one unit.
type WALBatch struct {
	Epoch   uint64        `json:"epoch"`
	Updates []UpdateTuple `json:"updates"`
}

// WALTailResponse is the /wal reply.
type WALTailResponse struct {
	// From echoes the request: batches strictly after this epoch.
	From uint64 `json:"from"`
	// Epoch is the leader's current epoch — the follower's lag gauge.
	Epoch uint64 `json:"epoch"`
	// Batches are the acknowledged records with From < epoch <= Epoch, in
	// append order. Empty when the long-poll timed out with no news.
	Batches []WALBatch `json:"batches,omitempty"`
}

// epochSignal broadcasts epoch advances: wait returns a channel that closes
// at the next bump. The long-poll handlers park on it instead of polling.
type epochSignal struct {
	mu sync.Mutex
	ch chan struct{}
}

func newEpochSignal() *epochSignal {
	return &epochSignal{ch: make(chan struct{})}
}

func (e *epochSignal) wait() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ch
}

func (e *epochSignal) bump() {
	e.mu.Lock()
	close(e.ch)
	e.ch = make(chan struct{})
	e.mu.Unlock()
}

// handleSnapshotFetch streams one retained snapshot. The file handle is
// opened under the store's read lock and streamed after release, so a
// concurrent snapshot write that prunes the file cannot corrupt the
// download (POSIX keeps the unlinked file readable through the handle).
//
//cv:owner any
func (s *Server) handleSnapshotFetch(w http.ResponseWriter, r *http.Request) {
	s.nSnapshotServes.Add(1)
	start := time.Now()
	defer s.finishRequest("snapshot", start, nil)
	raw := r.PathValue("epoch")
	var epoch uint64 // 0 = latest
	if raw != "latest" {
		n, err := parseUintParam("snapshot epoch", raw)
		if err != nil {
			s.httpError(w, err)
			return
		}
		epoch = n
	}
	rc, entry, err := s.st.OpenSnapshot(epoch)
	if err != nil {
		s.httpError(w, err)
		return
	}
	defer rc.Close()
	s.metrics.observeResponse(http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(entry.Bytes, 10))
	w.Header().Set(HeaderSnapshotEpoch, strconv.FormatUint(entry.Epoch, 10))
	w.Header().Set(HeaderSnapshotCRC, fmt.Sprintf("%08x", entry.CRC32))
	io.Copy(w, rc)
}

// handleWALTail serves the acknowledged batch tail. Within one request the
// handler keeps an incremental tail reader, so each long-poll wakeup reads
// only the bytes appended since the last look, and a pending buffer holds
// records of a round whose epoch is not yet published — they are released
// together once the worker stores the epoch (records are appended before
// the epoch advances, so a record past the published epoch may have
// siblings still in flight).
//
//cv:owner any
func (s *Server) handleWALTail(w http.ResponseWriter, r *http.Request) {
	s.nWALServes.Add(1)
	start := time.Now()
	defer s.finishRequest("wal", start, nil)
	q := r.URL.Query()
	if q.Get("from") == "" {
		s.httpError(w, errBadRequest("wal tailing requires ?from=<last applied epoch>"))
		return
	}
	from, err := parseUintParam("from", q.Get("from"))
	if err != nil {
		s.httpError(w, err)
		return
	}
	if from == 0 {
		s.httpError(w, errBadRequest("wal tailing requires ?from=<last applied epoch>"))
		return
	}
	var wait time.Duration
	if rawWait := q.Get("wait_ms"); rawWait != "" {
		ms, err := parseUintParam("wait_ms", rawWait)
		if err != nil {
			s.httpError(w, err)
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if limit := s.walWaitCap(); wait > limit || wait < 0 {
			// wait < 0 catches Duration overflow from a huge wait_ms.
			wait = limit
		}
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()

	tail := s.st.TailWAL()
	var pending []store.Batch
	for {
		cur := s.epoch.Load()
		if from > cur {
			s.httpError(w, errBadRequest(fmt.Sprintf("from epoch %d is ahead of the leader's %d", from, cur)))
			return
		}
		if from < s.st.LastSnapshotEpoch() {
			// Epochs in (from, snapshot] were truncated out of the log; only
			// the snapshot covers them now. 410 tells the follower to
			// re-bootstrap (the same status pruned ?epoch reads get).
			s.httpError(w, fmt.Errorf("%w: epochs after %d are only available via /snapshot (oldest logged is past %d)",
				store.ErrEpochNotRetained, from, s.st.LastSnapshotEpoch()))
			return
		}
		sig := s.epochSig.wait() // arm before reading: no lost wakeups
		bs, _, err := tail.Poll()
		if err != nil {
			s.httpError(w, err)
			return
		}
		pending = append(pending, bs...)
		// Release every pending record whose epoch is published. Records of
		// a half-appended round (epoch > cur) stay pending.
		var send []WALBatch
		rest := pending[:0]
		for _, b := range pending {
			switch {
			case b.Epoch <= from:
				// Already applied by the follower (records at or below the
				// snapshot epoch can linger in the log after a crash).
			case b.Epoch <= cur:
				send = append(send, WALBatch{Epoch: b.Epoch, Updates: toWireUpdates(b.Updates)})
			default:
				rest = append(rest, b)
			}
		}
		pending = rest
		if len(send) > 0 || wait <= 0 {
			s.writeJSON(w, http.StatusOK, WALTailResponse{From: from, Epoch: cur, Batches: send})
			return
		}
		select {
		case <-sig:
		case <-deadline.C:
			s.writeJSON(w, http.StatusOK, WALTailResponse{From: from, Epoch: cur})
			return
		case <-r.Context().Done():
			return
		case <-s.quit:
			s.writeJSON(w, http.StatusOK, WALTailResponse{From: from, Epoch: cur})
			return
		}
	}
}

// toWireUpdates converts applied updates to their JSON form.
func toWireUpdates(ups []core.Update) []UpdateTuple {
	out := make([]UpdateTuple, len(ups))
	for i, u := range ups {
		out[i] = UpdateTuple{Table: u.Table, Op: string(u.Op), Values: u.Values}
	}
	return out
}

// fromWireUpdates converts wire updates back to core updates.
func fromWireUpdates(ws []UpdateTuple) []core.Update {
	out := make([]core.Update, len(ws))
	for i, u := range ws {
		out[i] = core.Update{Table: u.Table, Op: core.UpdateOp(u.Op), Values: u.Values}
	}
	return out
}
