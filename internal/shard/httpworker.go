// httpworker.go adapts an ordinary cvserved daemon into a shard Worker.
// Constraints travel as rules-language text (the same rendering the
// snapshot store persists), so the worker needs no registry agreement with
// the coordinator; updates and witnesses use the service wire types
// verbatim. A worker daemon may itself run with -data-dir and bootstrap or
// recover over the snapshot-fetch/WAL-tail transport — the coordinator only
// sees its /check, /update and /witnesses surface.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/service"
	"repro/internal/store"
)

// WorkerError is a transport-level failure against one shard worker: the
// coordinator could not obtain a verdict, so the whole request degrades to
// a partial-result error rather than a silently incomplete merge.
type WorkerError struct {
	Shard int
	URL   string
	Err   error
}

func (e *WorkerError) Error() string {
	if e.URL == "" {
		return fmt.Sprintf("shard %d: %v", e.Shard, e.Err)
	}
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.URL, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// HTTPWorker drives one remote cvserved daemon as a shard worker.
type HTTPWorker struct {
	shard int
	base  string // base URL without trailing slash
	c     *http.Client

	epoch    atomic.Uint64
	up       atomic.Bool
	checks   atomic.Uint64
	updates  atomic.Uint64
	failures atomic.Uint64
}

// NewHTTPWorker wraps the daemon at baseURL as shard worker i. client may
// be nil for http.DefaultClient; per-request deadlines come from the
// caller's context.
func NewHTTPWorker(shard int, baseURL string, client *http.Client) *HTTPWorker {
	if client == nil {
		client = http.DefaultClient
	}
	w := &HTTPWorker{shard: shard, base: strings.TrimRight(baseURL, "/"), c: client}
	w.up.Store(true)
	return w
}

func (w *HTTPWorker) Shard() int { return w.shard }

// post sends one JSON request and decodes the reply into out, translating
// transport failures and non-200 statuses into *WorkerError.
func (w *HTTPWorker) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return &WorkerError{Shard: w.shard, URL: w.base, Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(buf))
	if err != nil {
		return &WorkerError{Shard: w.shard, URL: w.base, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.c.Do(req)
	if err != nil {
		w.fail()
		return &WorkerError{Shard: w.shard, URL: w.base, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		w.fail()
		msg := readErrorEnvelope(resp.Body)
		return &WorkerError{Shard: w.shard, URL: w.base,
			Err: fmt.Errorf("%s %s: %s", path, resp.Status, msg)}
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(out); err != nil {
		w.fail()
		return &WorkerError{Shard: w.shard, URL: w.base, Err: fmt.Errorf("%s: decoding reply: %w", path, err)}
	}
	w.up.Store(true)
	return nil
}

func (w *HTTPWorker) fail() {
	w.up.Store(false)
	w.failures.Add(1)
}

// readErrorEnvelope extracts the service's {"error": "..."} body, falling
// back to the raw text for non-JSON errors.
func readErrorEnvelope(r io.Reader) string {
	raw, _ := io.ReadAll(io.LimitReader(r, 4096))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		return env.Error
	}
	return strings.TrimSpace(string(raw))
}

func (w *HTTPWorker) Check(ctx context.Context, cts []logic.Constraint, budget int) ([]CheckOutcome, error) {
	var resp service.CheckResponse
	err := w.post(ctx, "/check", service.CheckRequest{
		Text:       store.RenderConstraints(cts),
		NodeBudget: budget,
	}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(cts) {
		w.fail()
		return nil, &WorkerError{Shard: w.shard, URL: w.base,
			Err: fmt.Errorf("/check returned %d results for %d constraints", len(resp.Results), len(cts))}
	}
	if resp.Epoch > 0 {
		w.epoch.Store(resp.Epoch)
	}
	out := make([]CheckOutcome, len(resp.Results))
	for i, r := range resp.Results {
		out[i] = CheckOutcome{
			Name:           cts[i].Name,
			Violated:       r.Violated,
			Method:         r.Method,
			FellBack:       r.FellBack,
			FallbackReason: r.FallbackReason,
			DurationNS:     r.DurationNS,
			Err:            r.Error,
		}
	}
	w.checks.Add(uint64(len(cts)))
	return out, nil
}

func (w *HTTPWorker) Witnesses(ctx context.Context, ct logic.Constraint, limit, budget int) ([]core.Witness, error) {
	var resp service.WitnessResponse
	err := w.post(ctx, "/witnesses", service.WitnessRequest{
		Text:       store.RenderConstraints([]logic.Constraint{ct}),
		Limit:      limit,
		NodeBudget: budget,
	}, &resp)
	if err != nil {
		return nil, err
	}
	ws := make([]core.Witness, len(resp.Witnesses))
	for i, wit := range resp.Witnesses {
		ws[i] = core.Witness{Vars: wit.Vars, Values: wit.Values}
	}
	w.checks.Add(1)
	return ws, nil
}

func (w *HTTPWorker) Update(ctx context.Context, ups []core.Update) (int, error) {
	wire := make([]service.UpdateTuple, len(ups))
	for i, u := range ups {
		wire[i] = service.UpdateTuple{Table: u.Table, Op: string(u.Op), Values: u.Values}
	}
	var resp service.UpdateResponse
	if err := w.post(ctx, "/update", service.UpdateRequest{Updates: wire}, &resp); err != nil {
		return 0, err
	}
	if resp.Error != "" {
		w.failures.Add(1)
		return resp.Applied, &WorkerError{Shard: w.shard, URL: w.base, Err: fmt.Errorf("/update: %s", resp.Error)}
	}
	w.updates.Add(uint64(len(ups)))
	w.epoch.Add(1)
	return resp.Applied, nil
}

func (w *HTTPWorker) Status() WorkerStatus {
	return WorkerStatus{
		Shard:   w.shard,
		URL:     w.base,
		Up:      w.up.Load(),
		Epoch:   w.epoch.Load(),
		Checks:  w.checks.Load(),
		Updates: w.updates.Load(),
		Errors:  w.failures.Load(),
	}
}

// Close is a no-op: the HTTP client is caller-owned.
func (w *HTTPWorker) Close() {}
