// decompose.go classifies each constraint for sharded evaluation. The
// decomposition question: when every shard evaluates the constraint against
// only the rows it owns, do the per-shard verdicts compose into the global
// one? Three answers:
//
//   - PlanLocal: yes. The constraint's relevant condition (its violation
//     condition in validity mode, its satisfaction condition in existence
//     mode) is anchored on one variable that ranges over the partition key
//     and is guarded: every way of making the condition true passes through
//     a positive occurrence of a partitioned predicate carrying the anchor.
//     A binding that makes the condition true therefore materializes only on
//     the shard owning its anchor value, so validity-mode verdicts OR
//     together with witness sets unioning exactly, and existence-mode
//     verdicts AND together.
//
//   - PlanSingleShard: the constraint pins the key by constants that all
//     hash to one shard, or touches only broadcast tables (identical on
//     every shard); one shard's verdict is the global verdict.
//
//   - PlanResidual: anything else. The coordinator evaluates the constraint
//     against its own full-catalog checker; constraints the residual checker
//     has no index for fall through core's usual sqlengine fallback.
//
// Guardedness is what makes the merge sound. Consider T partitioned on a
// with the constraint "forall a, b: U(a) => T(a, b)" (U broadcast): the
// violation condition is U(a) and not T(a, b), and "not T" is true on every
// shard that does not own a — a naive union would report spurious
// violations from non-owners. The condition is rejected here because its
// only route to truth through T is negative.
package shard

import (
	"fmt"

	"repro/internal/logic"
)

// PlanKind says how the coordinator evaluates a constraint.
type PlanKind int

const (
	// PlanLocal fans the constraint out to every shard and merges verdicts.
	PlanLocal PlanKind = iota
	// PlanSingleShard evaluates on one shard and adopts its verdict.
	PlanSingleShard
	// PlanResidual evaluates on the coordinator's full-catalog checker.
	PlanResidual
)

func (k PlanKind) String() string {
	switch k {
	case PlanLocal:
		return "local"
	case PlanSingleShard:
		return "single-shard"
	default:
		return "residual"
	}
}

// Plan is one constraint's sharded evaluation strategy.
type Plan struct {
	Kind PlanKind
	// Mode is the constraint's check mode; it selects the merge rule for
	// PlanLocal (validity: verdicts OR, witnesses union; existence:
	// verdicts AND, no witnesses).
	Mode logic.CheckMode
	// Shard is the PlanSingleShard target.
	Shard int
	// Anchor is the PlanLocal anchor variable (base name), for diagnostics.
	Anchor string
	// Reason explains the classification, for /statsz.
	Reason string
}

func (p Plan) String() string {
	switch p.Kind {
	case PlanLocal:
		return fmt.Sprintf("local(anchor=%s, %s)", p.Anchor, modeName(p.Mode))
	case PlanSingleShard:
		return fmt.Sprintf("single-shard(%d: %s)", p.Shard, p.Reason)
	default:
		return "residual(" + p.Reason + ")"
	}
}

func modeName(m logic.CheckMode) string {
	if m == logic.CheckSatisfiability {
		return "existence"
	}
	return "validity"
}

func residual(reason string) Plan { return Plan{Kind: PlanResidual, Reason: reason} }

// Decompose classifies one constraint against the partitioner's key. The
// resolver decides predicate bindings; it must agree with the workers'
// resolvers, which it does as long as shards index whole tables under the
// table's own name (how the coordinator builds them).
func (p *Partitioner) Decompose(ct logic.Constraint, res logic.Resolver) Plan {
	an, err := logic.Analyze(ct.F, res)
	if err != nil {
		// The residual checker will surface the same analysis error at
		// evaluation time, matching the single-kernel server's behavior.
		return residual("analysis failed: " + err.Error())
	}

	// Collect the key-position term of every occurrence of a partitioned
	// predicate. Predicates over broadcast tables do not constrain routing.
	type occ struct{ term logic.Term }
	var occs []occ
	ok := true
	var reason string
	var walk func(f logic.Formula)
	walk = func(f logic.Formula) {
		if !ok {
			return
		}
		switch g := f.(type) {
		case logic.Pred:
			b := an.Preds[g.Table]
			pc := p.PartitionColumn(b.Table)
			if pc < 0 {
				return
			}
			arg := -1
			for j, col := range b.Cols {
				if col == pc {
					arg = j
					break
				}
			}
			if arg < 0 {
				ok, reason = false, fmt.Sprintf("predicate %s omits the shard key column", g.Table)
				return
			}
			occs = append(occs, occ{term: g.Args[arg]})
		case logic.Not:
			walk(g.F)
		case logic.And:
			walk(g.L)
			walk(g.R)
		case logic.Or:
			walk(g.L)
			walk(g.R)
		case logic.Implies:
			walk(g.L)
			walk(g.R)
		case logic.Quant:
			walk(g.F)
		}
	}
	walk(an.F)
	if !ok {
		return residual(reason)
	}

	rw := logic.Rewrite(an.F, logic.DefaultRewriteOptions())

	if len(occs) == 0 {
		// Broadcast tables are identical everywhere: any shard's verdict is
		// the global one. Shard 0 by convention.
		return Plan{Kind: PlanSingleShard, Mode: rw.Mode, Shard: 0, Reason: "touches no partitioned table"}
	}

	// All key positions pinned by constants: the whole constraint lives on
	// the shards those constants hash to — one shard if they agree.
	consts := 0
	anchor := ""
	for _, o := range occs {
		switch t := o.term.(type) {
		case logic.Const:
			consts++
		case logic.Var:
			if anchor == "" {
				anchor = t.Name
			} else if anchor != t.Name {
				return residual(fmt.Sprintf("partitioned predicates keyed by distinct variables %s and %s", anchor, t.Name))
			}
		}
	}
	if consts == len(occs) {
		target := p.ShardOf(constVal(occs[0].term))
		for _, o := range occs[1:] {
			if p.ShardOf(constVal(o.term)) != target {
				return residual("constant keys pin different shards")
			}
		}
		return Plan{Kind: PlanSingleShard, Mode: rw.Mode, Shard: target, Reason: "constant key"}
	}
	if consts > 0 {
		return residual("mix of constant and variable shard keys")
	}

	// One anchor variable. It must have a single binding site (Analyze
	// conflates same-named variables from different scopes, and two sites
	// would leave ownership ambiguous) ...
	if bindingSites(an.F, anchor) != 1 {
		return residual(fmt.Sprintf("anchor %s is bound at more than one quantifier", anchor))
	}
	// ... and sit in the leading quantifier block, so each shard quantifies
	// it over the bindings it owns rather than under an inner quantifier
	// whose semantics would span shards.
	inLeading := false
	for _, v := range rw.Stripped {
		if logic.BaseName(v) == anchor {
			inLeading = true
			break
		}
	}
	if !inLeading {
		return residual(fmt.Sprintf("anchor %s is not in the leading quantifier block", anchor))
	}

	// Guardedness of the relevant condition: the violation condition for
	// validity mode, the satisfaction condition for existence mode.
	cond := an.F
	if rw.Mode == logic.CheckValidity {
		cond = logic.Not{F: an.F}
	}
	if !guarded(logic.NNF(logic.ElimImplies(cond)), an, p) {
		return residual(fmt.Sprintf("%s condition not guarded by a positive partitioned predicate", modeName(rw.Mode)))
	}
	return Plan{Kind: PlanLocal, Mode: rw.Mode, Anchor: anchor}
}

func constVal(t logic.Term) string {
	c, _ := t.(logic.Const)
	return c.Value
}

// bindingSites counts the quantifiers binding name anywhere in f.
func bindingSites(f logic.Formula, name string) int {
	switch g := f.(type) {
	case logic.Not:
		return bindingSites(g.F, name)
	case logic.And:
		return bindingSites(g.L, name) + bindingSites(g.R, name)
	case logic.Or:
		return bindingSites(g.L, name) + bindingSites(g.R, name)
	case logic.Implies:
		return bindingSites(g.L, name) + bindingSites(g.R, name)
	case logic.Quant:
		n := bindingSites(g.F, name)
		for _, v := range g.Vars {
			if v == name {
				n++
			}
		}
		return n
	default:
		return 0
	}
}

// guarded reports whether every way of making the NNF formula f true passes
// through a positive occurrence of a partitioned predicate. On the shard
// owning a binding's anchor value such an atom means the supporting tuples
// are present locally; on every other shard the atom is false, killing the
// whole conjunct — which is exactly what makes OR/AND merging exact.
func guarded(f logic.Formula, an *logic.Analysis, p *Partitioner) bool {
	switch g := f.(type) {
	case logic.Pred:
		return p.PartitionColumn(an.Preds[g.Table].Table) >= 0
	case logic.And:
		return guarded(g.L, an, p) || guarded(g.R, an, p)
	case logic.Or:
		return guarded(g.L, an, p) && guarded(g.R, an, p)
	case logic.Quant:
		return guarded(g.F, an, p)
	default:
		// Negated atoms, comparisons, In, Truth: none pin a shard.
		return false
	}
}
