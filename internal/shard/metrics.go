// metrics.go builds the coordinator's /metricsz rollup: per-shard gauges
// labeled shard="N" plus coordinator-level counters. Every callback reads
// only atomics (worker Status snapshots and coordinator counters), so a
// scrape never touches a live kernel — the same safety rule the service
// registry follows.
package shard

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// Metrics lazily builds and returns the coordinator's registry.
func (c *Coordinator) Metrics() *obs.Registry {
	c.metricsInit.Do(func() { c.metrics = c.buildMetrics() })
	return c.metrics
}

func (c *Coordinator) buildMetrics() *obs.Registry {
	r := obs.NewRegistry()

	r.GaugeFunc("cv_uptime_seconds", "", "Seconds since the coordinator started.",
		func() float64 { return time.Since(c.start).Seconds() })
	r.GaugeFunc("cv_coord_epoch", "", "Coordinator epoch: applied update batches plus one.",
		func() float64 { return float64(c.epoch.Load()) })
	r.GaugeFunc("cv_coord_shards", "", "Number of shard workers.",
		func() float64 { return float64(len(c.workers)) })

	reqHelp := "Coordinator requests by endpoint."
	r.CounterFunc("cv_coord_requests_total", `endpoint="check"`, reqHelp, c.nChecks.Load)
	r.CounterFunc("cv_coord_requests_total", `endpoint="witnesses"`, reqHelp, c.nWitnesses.Load)
	r.CounterFunc("cv_coord_requests_total", `endpoint="update"`, reqHelp, c.nUpdateBatches.Load)

	planHelp := "Checks by evaluation plan."
	r.CounterFunc("cv_coord_plan_checks_total", `plan="local"`, planHelp, c.nLocalFanouts.Load)
	r.CounterFunc("cv_coord_plan_checks_total", `plan="single_shard"`, planHelp, c.nSingleShard.Load)
	r.CounterFunc("cv_coord_plan_checks_total", `plan="residual"`, planHelp, c.nResidualChecks.Load)

	r.CounterFunc("cv_coord_update_tuples_total", "", "Tuples routed through the coordinator.", c.nUpdateTuples.Load)
	r.CounterFunc("cv_coord_worker_failures_total", "", "Shard worker requests that failed.", c.nWorkerFailures.Load)

	for _, w := range c.workers {
		w := w
		label := `shard="` + strconv.Itoa(w.Shard()) + `"`
		r.GaugeFunc("cv_shard_up", label, "1 when the shard worker's last request succeeded.",
			func() float64 {
				if w.Status().Up {
					return 1
				}
				return 0
			})
		r.GaugeFunc("cv_shard_epoch", label, "The shard worker's own epoch.",
			func() float64 { return float64(w.Status().Epoch) })
		r.GaugeFunc("cv_shard_queue_depth", label, "Jobs waiting in the shard's admission queue (in-process workers).",
			func() float64 { return float64(w.Status().QueueDepth) })
		r.GaugeFunc("cv_shard_kernel_live_nodes", label, "Live BDD nodes in the shard kernel as of its last job (in-process workers).",
			func() float64 { return float64(w.Status().KernelLiveNodes) })
		r.CounterFunc("cv_shard_checks_total", label, "Constraint evaluations served by the shard.",
			func() uint64 { return w.Status().Checks })
		r.CounterFunc("cv_shard_updates_total", label, "Tuples applied by the shard.",
			func() uint64 { return w.Status().Updates })
		r.CounterFunc("cv_shard_errors_total", label, "Failed requests against the shard.",
			func() uint64 { return w.Status().Errors })
	}
	return r
}
