// worker.go is the shard execution layer: the Worker interface the
// coordinator fans out to, and the in-process implementation — one goroutine
// owning one core.Checker over one shard's partition, fed through a bounded
// admission queue with the same backpressure contract as internal/service
// (enqueue blocks until the caller's deadline, then ErrBusy).
package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

// CheckOutcome is one constraint's verdict from one worker, or the
// coordinator's merge of several.
type CheckOutcome struct {
	Name           string
	Violated       bool
	Method         string
	FellBack       bool
	FallbackReason string
	DurationNS     int64
	// Err is a per-constraint evaluation error from an otherwise healthy
	// worker; transport-level failures surface as *WorkerError instead.
	Err string
}

// WorkerStatus is a point-in-time snapshot of one worker, safe to read from
// metrics callbacks (all sources are atomics).
type WorkerStatus struct {
	Shard     int    `json:"shard"`
	URL       string `json:"url,omitempty"`
	InProcess bool   `json:"in_process"`
	// Up is false for an HTTP worker whose last request failed.
	Up bool `json:"up"`
	// Epoch is the worker's own epoch: update batches it has applied (plus
	// one), or the epoch its server last reported.
	Epoch   uint64 `json:"epoch"`
	Checks  uint64 `json:"checks"`
	Updates uint64 `json:"updates"`
	// Errors counts failed requests against this worker.
	Errors uint64 `json:"errors"`
	// QueueDepth/QueueCap describe the admission queue (in-process only).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap,omitempty"`
	// KernelLiveNodes is the shard kernel's live-node count as of its last
	// completed job (in-process only).
	KernelLiveNodes int64 `json:"kernel_live_nodes,omitempty"`
}

// Worker is one shard's execution endpoint. Implementations serialize their
// own operations; the coordinator may call them from multiple goroutines.
type Worker interface {
	Shard() int
	Check(ctx context.Context, cts []logic.Constraint, budget int) ([]CheckOutcome, error)
	Witnesses(ctx context.Context, ct logic.Constraint, limit, budget int) ([]core.Witness, error)
	Update(ctx context.Context, ups []core.Update) (int, error)
	Status() WorkerStatus
	Close()
}

// outcomeFromResult flattens a core.Result into the wire-friendly outcome.
func outcomeFromResult(name string, res core.Result) CheckOutcome {
	o := CheckOutcome{
		Name:       name,
		Violated:   res.Violated,
		Method:     string(res.Method),
		FellBack:   res.FellBack,
		DurationNS: res.Duration.Nanoseconds(),
	}
	if res.FallbackReason != nil {
		o.FallbackReason = res.FallbackReason.Error()
	}
	if res.Err != nil {
		o.Err = res.Err.Error()
	}
	return o
}

// job is one unit of work for a checker-owning goroutine.
type job struct {
	run  func(chk *core.Checker)
	err  error // set by the loop when the job is rejected, not run
	done chan struct{}
}

// procWorker is the in-process Worker: a goroutine owning a core.Checker
// over one shard's catalog partition.
type procWorker struct {
	shard int
	chk   *core.Checker
	jobs  chan *job
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once

	epoch     atomic.Uint64
	checks    atomic.Uint64
	updates   atomic.Uint64
	failures  atomic.Uint64
	liveNodes atomic.Int64
}

// newProcWorker builds the shard's checker, indexes every table under its
// own name (matching the single-kernel daemon's cold boot), and starts the
// worker goroutine.
func newProcWorker(shard int, cat *relation.Catalog, opts Options) (*procWorker, error) {
	chk := core.New(cat, core.Options{
		NodeBudget: opts.NodeBudget,
		RandomSeed: opts.RandomSeed,
	})
	for _, t := range cat.Tables() {
		if _, err := chk.BuildIndex(t.Name(), t.Name(), nil, opts.Method); err != nil {
			return nil, fmt.Errorf("shard %d: index %s: %w", shard, t.Name(), err)
		}
	}
	w := &procWorker{
		shard: shard,
		chk:   chk,
		jobs:  make(chan *job, opts.QueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	w.epoch.Store(1)
	w.liveNodes.Store(int64(chk.KernelStats().Live))
	go w.loop()
	return w, nil
}

func (w *procWorker) loop() {
	defer close(w.done)
	for {
		select {
		case j := <-w.jobs:
			j.run(w.chk)
			w.liveNodes.Store(int64(w.chk.KernelStats().Live))
			close(j.done)
		case <-w.quit:
			w.refuseQueued()
			return
		}
	}
}

// refuseQueued rejects everything still queued so no submitter hangs on a
// dead worker.
func (w *procWorker) refuseQueued() {
	for {
		select {
		case j := <-w.jobs:
			j.err = ErrShuttingDown
			close(j.done)
		default:
			return
		}
	}
}

// submit enqueues one job and waits for it. A full queue blocks until the
// caller's deadline, then fails with ErrBusy — the service layer's
// backpressure contract.
func (w *procWorker) submit(ctx context.Context, run func(chk *core.Checker)) error {
	j := &job{run: run, done: make(chan struct{})}
	select {
	case w.jobs <- j:
	default:
		select {
		case w.jobs <- j:
		case <-ctx.Done():
			w.failures.Add(1)
			return ErrBusy
		case <-w.quit:
			return ErrShuttingDown
		}
	}
	<-j.done
	if j.err != nil {
		w.failures.Add(1)
	}
	return j.err
}

func (w *procWorker) Shard() int { return w.shard }

func (w *procWorker) Check(ctx context.Context, cts []logic.Constraint, budget int) ([]CheckOutcome, error) {
	var out []CheckOutcome
	err := w.submit(ctx, func(chk *core.Checker) {
		out = make([]CheckOutcome, len(cts))
		for i, ct := range cts {
			res := chk.CheckOneOpts(ct, core.CheckOptions{NodeBudget: budget})
			out[i] = outcomeFromResult(ct.Name, res)
		}
		w.checks.Add(uint64(len(cts)))
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (w *procWorker) Witnesses(ctx context.Context, ct logic.Constraint, limit, budget int) ([]core.Witness, error) {
	var (
		ws   []core.Witness
		werr error
	)
	err := w.submit(ctx, func(chk *core.Checker) {
		ws, werr = chk.ViolationWitnessesOpts(ct, limit, core.CheckOptions{NodeBudget: budget})
		w.checks.Add(1)
	})
	if err != nil {
		return nil, err
	}
	return ws, werr
}

func (w *procWorker) Update(ctx context.Context, ups []core.Update) (int, error) {
	var (
		applied int
		aerr    error
	)
	err := w.submit(ctx, func(chk *core.Checker) {
		applied, aerr = chk.Apply(ups)
		if aerr == nil {
			w.epoch.Add(1)
			w.updates.Add(uint64(len(ups)))
		}
	})
	if err != nil {
		return 0, err
	}
	if aerr != nil {
		w.failures.Add(1)
		return applied, fmt.Errorf("shard %d: %w", w.shard, aerr)
	}
	return applied, nil
}

func (w *procWorker) Status() WorkerStatus {
	return WorkerStatus{
		Shard:           w.shard,
		InProcess:       true,
		Up:              true,
		Epoch:           w.epoch.Load(),
		Checks:          w.checks.Load(),
		Updates:         w.updates.Load(),
		Errors:          w.failures.Load(),
		QueueDepth:      len(w.jobs),
		QueueCap:        cap(w.jobs),
		KernelLiveNodes: w.liveNodes.Load(),
	}
}

func (w *procWorker) Close() {
	w.once.Do(func() { close(w.quit) })
	<-w.done
}
