// Package shard partitions a catalog by hash or range of a designated key
// column into N per-shard kernels, decomposes constraints into per-shard
// conjuncts plus a cross-shard residual, and coordinates scatter-gather
// evaluation across shard workers.
//
// The partition key is one column of one table ("TABLE.COL"). Every table
// with exactly one column over the same value domain is co-partitioned on
// that column; tables with no such column (or an ambiguous choice of two)
// are broadcast: every shard holds a full copy. Because co-partitioning is
// decided by shared domains, exactly the tables a constraint can join
// against the key land on the owning shard.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
)

// Errors surfaced by workers and the coordinator.
var (
	// ErrBusy reports a full admission queue: the caller's deadline expired
	// before a worker slot opened.
	ErrBusy = errors.New("shard: worker queue full")
	// ErrShuttingDown reports a request that arrived during shutdown.
	ErrShuttingDown = errors.New("shard: shutting down")
)

// Mode selects the partitioning function.
type Mode int

const (
	// HashMode assigns a key value to shard FNV1a(value) mod N. The hash is
	// computed over the value string, never a dictionary code, so placement
	// is stable across processes and restarts.
	HashMode Mode = iota
	// RangeMode assigns by lexicographic range: shard 0 holds values below
	// the first bound, shard i holds bounds[i-1] <= value < bounds[i], and
	// the last shard holds everything from the final bound up.
	RangeMode
)

func (m Mode) String() string {
	if m == RangeMode {
		return "range"
	}
	return "hash"
}

// ParseMode parses "hash" or "range".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "hash", "":
		return HashMode, nil
	case "range":
		return RangeMode, nil
	default:
		return HashMode, fmt.Errorf("shard: unknown mode %q (want hash or range)", s)
	}
}

// Key designates the partition column as TABLE.COL.
type Key struct {
	Table  string
	Column string
}

func (k Key) String() string { return k.Table + "." + k.Column }

// ParseKey parses a "TABLE.COL" shard-key flag.
func ParseKey(s string) (Key, error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 || strings.IndexByte(s[i+1:], '.') >= 0 {
		return Key{}, fmt.Errorf("shard: key %q is not of the form TABLE.COL", s)
	}
	return Key{Table: s[:i], Column: s[i+1:]}, nil
}

// Partitioner maps key values to shards and splits catalogs accordingly.
// It is immutable after construction and safe for concurrent use.
type Partitioner struct {
	key    Key
	n      int
	mode   Mode
	bounds []string // RangeMode: n-1 strictly increasing lower bounds
	// domain is the name of the key column's value domain; a table
	// co-partitions iff exactly one of its columns shares this domain.
	domain string
}

// NewPartitioner validates the key against the catalog and builds the
// partition function. bounds is required (length n-1, strictly increasing)
// in RangeMode and must be empty in HashMode.
func NewPartitioner(cat *relation.Catalog, key Key, n int, mode Mode, bounds []string) (*Partitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d: want at least 1", n)
	}
	t := cat.Table(key.Table)
	if t == nil {
		return nil, fmt.Errorf("shard: key table %q does not exist", key.Table)
	}
	c := t.ColumnIndex(key.Column)
	if c < 0 {
		return nil, fmt.Errorf("shard: table %s has no column %q", key.Table, key.Column)
	}
	switch mode {
	case HashMode:
		if len(bounds) > 0 {
			return nil, errors.New("shard: bounds are only meaningful with range mode")
		}
	case RangeMode:
		if len(bounds) != n-1 {
			return nil, fmt.Errorf("shard: range mode with %d shards needs %d bounds, got %d", n, n-1, len(bounds))
		}
		if !sort.StringsAreSorted(bounds) {
			return nil, errors.New("shard: range bounds must be sorted ascending")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] == bounds[i-1] {
				return nil, fmt.Errorf("shard: duplicate range bound %q", bounds[i])
			}
		}
	}
	return &Partitioner{
		key:    key,
		n:      n,
		mode:   mode,
		bounds: bounds,
		domain: t.ColumnDomain(c).Name(),
	}, nil
}

// Shards returns the shard count N.
func (p *Partitioner) Shards() int { return p.n }

// Key returns the designated partition key.
func (p *Partitioner) Key() Key { return p.key }

// Mode returns the partitioning function kind.
func (p *Partitioner) Mode() Mode { return p.mode }

// ShardOf maps one key value to its owning shard.
func (p *Partitioner) ShardOf(value string) int {
	if p.mode == RangeMode {
		// Number of bounds <= value: shard i starts at bounds[i-1].
		return sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > value })
	}
	// FNV-1a over the value bytes.
	h := uint64(14695981039346656037)
	for i := 0; i < len(value); i++ {
		h ^= uint64(value[i])
		h *= 1099511628211
	}
	return int(h % uint64(p.n))
}

// PartitionColumn returns the column index t partitions on, or -1 when t is
// broadcast (no column over the key domain, or an ambiguous pair of them).
// For the key table itself the designated column always wins.
func (p *Partitioner) PartitionColumn(t *relation.Table) int {
	if t.Name() == p.key.Table {
		return t.ColumnIndex(p.key.Column)
	}
	found := -1
	for i := 0; i < t.NumCols(); i++ {
		if t.ColumnDomain(i).Name() != p.domain {
			continue
		}
		if found >= 0 {
			return -1 // ambiguous: safer to broadcast
		}
		found = i
	}
	return found
}

// Split clones the catalog N times and filters each partitioned table down
// to the rows its shard owns. Broadcast tables keep their full contents on
// every shard. Dictionaries are cloned whole, so value codes agree between
// the shards and the source catalog at split time.
func (p *Partitioner) Split(cat *relation.Catalog) []*relation.Catalog {
	out := make([]*relation.Catalog, p.n)
	for i := range out {
		nc := cat.Clone()
		for _, t := range nc.Tables() {
			pc := p.PartitionColumn(t)
			if pc < 0 {
				continue
			}
			// Precompute code -> shard once per table; rows then route by
			// dictionary code without re-hashing strings.
			dom := t.ColumnDomain(pc)
			vals := dom.Values()
			codeShard := make([]int, len(vals))
			for c, v := range vals {
				codeShard[c] = p.ShardOf(v)
			}
			keep := make([][]int32, 0, t.Len())
			for _, r := range t.Rows() {
				if codeShard[r[pc]] == i {
					keep = append(keep, r)
				}
			}
			t.Truncate()
			for _, r := range keep {
				t.InsertCodes(r)
			}
		}
		out[i] = nc
	}
	return out
}

// RouteUpdate decides which shard owns one tuple mutation. broadcast is true
// for tuples of broadcast tables, which every shard must apply. cat is the
// coordinator's full catalog (schema source of truth).
func (p *Partitioner) RouteUpdate(cat *relation.Catalog, u core.Update) (shard int, broadcast bool, err error) {
	if u.Op != core.UpdateInsert && u.Op != core.UpdateDelete {
		return 0, false, fmt.Errorf("shard: unknown update op %q", u.Op)
	}
	t := cat.Table(u.Table)
	if t == nil {
		return 0, false, fmt.Errorf("shard: update names unknown table %q", u.Table)
	}
	if len(u.Values) != t.NumCols() {
		return 0, false, fmt.Errorf("shard: update for %s has %d values, want %d", u.Table, len(u.Values), t.NumCols())
	}
	pc := p.PartitionColumn(t)
	if pc < 0 {
		return 0, true, nil
	}
	return p.ShardOf(u.Values[pc]), false, nil
}
