// coordinator.go fans /check, /update and /witnesses out to shard workers
// and merges the results according to each constraint's Plan. The
// coordinator additionally owns a residual checker over the full catalog —
// the correctness backstop for constraints the decomposer cannot prove
// shard-local — and a single writer goroutine that serializes updates and
// residual evaluation, mirroring the single-kernel service's worker.
//
// Consistency contract: each shard serializes its own operations, and the
// coordinator serializes updates against each other and against residual
// reads. Concurrent checks against in-flight updates may observe different
// shards at different epochs (per-shard serializability, not cross-shard
// snapshot isolation). A worker transport failure degrades the request to a
// partial-result error naming the shard; it never merges an incomplete
// verdict. A failed fan-out can leave shards and residual at diverged
// epochs — the coordinator reports the error and does not advance its
// epoch, and recovery is the operator's restart path (workers re-bootstrap
// from their own stores or the partition pipeline).
package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Options tunes the coordinator and its in-process workers.
type Options struct {
	// NodeBudget caps each kernel's BDD nodes; negative means unlimited.
	NodeBudget int
	// Method picks the variable-ordering heuristic for shard indices.
	Method core.OrderingMethod
	// QueueDepth bounds each worker's admission queue (default 64).
	QueueDepth int
	// DefaultTimeout bounds HTTP-layer requests with no explicit deadline
	// (default 30s).
	DefaultTimeout time.Duration
	// RandomSeed seeds randomized ordering heuristics.
	RandomSeed int64
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Coordinator owns the shard workers, the residual checker and the
// constraint registry, and merges scatter-gather results.
type Coordinator struct {
	opts     Options
	part     *Partitioner
	workers  []Worker
	residual *core.Checker
	resolver logic.Resolver

	constraints []logic.Constraint
	plans       map[string]Plan // registered constraints, by name

	jobs  chan *job // serializes updates + residual reads
	quit  chan struct{}
	done  chan struct{}
	once  sync.Once
	epoch atomic.Uint64
	start time.Time

	// Request counters, read by metrics callbacks.
	nChecks         atomic.Uint64
	nWitnesses      atomic.Uint64
	nUpdateBatches  atomic.Uint64
	nUpdateTuples   atomic.Uint64
	nLocalFanouts   atomic.Uint64
	nSingleShard    atomic.Uint64
	nResidualChecks atomic.Uint64
	nWorkerFailures atomic.Uint64

	metricsInit sync.Once
	metrics     *obs.Registry
}

// NewInProcess splits the catalog into part.Shards() partitions, builds one
// in-process worker per shard, and assembles the coordinator around them.
// The catalog becomes coordinator-owned: it backs the residual checker and
// must not be mutated by the caller afterwards.
func NewInProcess(cat *relation.Catalog, cts []logic.Constraint, part *Partitioner, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	parts := part.Split(cat)
	workers := make([]Worker, len(parts))
	for i, pc := range parts {
		w, err := newProcWorker(i, pc, opts)
		if err != nil {
			for _, built := range workers[:i] {
				built.Close()
			}
			return nil, err
		}
		workers[i] = w
	}
	return NewCoordinator(cat, cts, part, workers, opts)
}

// NewCoordinator assembles a coordinator over caller-supplied workers (the
// multi-process path hands in HTTPWorkers). The catalog is the full,
// unsharded state backing the residual checker.
func NewCoordinator(cat *relation.Catalog, cts []logic.Constraint, part *Partitioner, workers []Worker, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if len(workers) != part.Shards() {
		return nil, fmt.Errorf("shard: %d workers for %d shards", len(workers), part.Shards())
	}
	c := &Coordinator{
		opts:        opts,
		part:        part,
		workers:     workers,
		residual:    core.New(cat, core.Options{NodeBudget: opts.NodeBudget, RandomSeed: opts.RandomSeed}),
		constraints: cts,
		plans:       make(map[string]Plan, len(cts)),
		jobs:        make(chan *job, opts.QueueDepth),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		start:       time.Now(),
	}
	c.resolver = logic.CatalogResolver{Catalog: cat}
	c.epoch.Store(1)

	// Classify the registry and index exactly the tables residual-classified
	// constraints touch: local and single-shard constraints never reach the
	// residual checker, so indexing their tables would duplicate every shard
	// kernel's state at full size for nothing.
	residualTables := map[string]bool{}
	for _, ct := range cts {
		plan := part.Decompose(ct, c.resolver)
		c.plans[ct.Name] = plan
		if plan.Kind != PlanResidual {
			continue
		}
		if an, err := logic.Analyze(ct.F, c.resolver); err == nil {
			for _, b := range an.Preds {
				residualTables[b.Table.Name()] = true
			}
		}
	}
	for name := range residualTables {
		if _, err := c.residual.BuildIndex(name, name, nil, opts.Method); err != nil {
			opts.Logf("residual index %s: %v (falls back to SQL)", name, err)
		}
	}
	for _, ct := range cts {
		opts.Logf("plan %s: %s", ct.Name, c.plans[ct.Name])
	}

	go c.loop()
	return c, nil
}

// loop is the coordinator's writer goroutine: updates and residual reads in
// arrival order.
func (c *Coordinator) loop() {
	defer close(c.done)
	for {
		select {
		case j := <-c.jobs:
			j.run(c.residual)
			close(j.done)
		case <-c.quit:
			c.refuseQueued()
			return
		}
	}
}

// refuseQueued acknowledges every queued job with ErrShuttingDown so no
// submitter is left waiting on a dead writer.
func (c *Coordinator) refuseQueued() {
	for {
		select {
		case j := <-c.jobs:
			j.err = ErrShuttingDown
			close(j.done)
		default:
			return
		}
	}
}

func (c *Coordinator) submit(ctx context.Context, run func(chk *core.Checker)) error {
	j := &job{run: run, done: make(chan struct{})}
	select {
	case c.jobs <- j:
	default:
		select {
		case c.jobs <- j:
		case <-ctx.Done():
			return ErrBusy
		case <-c.quit:
			return ErrShuttingDown
		}
	}
	<-j.done
	return j.err
}

// Epoch returns the coordinator's epoch: 1 + applied update batches.
func (c *Coordinator) Epoch() uint64 { return c.epoch.Load() }

// Partitioner exposes the partition function (for routing diagnostics).
func (c *Coordinator) Partitioner() *Partitioner { return c.part }

// Workers returns the worker set (for status surfaces).
func (c *Coordinator) Workers() []Worker { return c.workers }

// Plans returns the registered constraints' classification, by name.
func (c *Coordinator) Plans() map[string]Plan {
	out := make(map[string]Plan, len(c.plans))
	for k, v := range c.plans {
		out[k] = v
	}
	return out
}

// PlanFor classifies one constraint, preferring the cached registry plan
// when the name matches a registered constraint.
func (c *Coordinator) PlanFor(ct logic.Constraint) Plan {
	if p, ok := c.plans[ct.Name]; ok {
		for _, reg := range c.constraints {
			if reg.Name == ct.Name && reg.String() == ct.String() {
				return p
			}
		}
	}
	return c.part.Decompose(ct, c.resolver)
}

// Check evaluates the batch: local constraints fan out to every worker,
// single-shard ones to their owner, residual ones to the coordinator's own
// checker; the merged outcomes land in input order. Any worker transport
// failure fails the whole call.
func (c *Coordinator) Check(ctx context.Context, cts []logic.Constraint, budget int, tr *obs.Trace) ([]CheckOutcome, error) {
	c.nChecks.Add(uint64(len(cts)))
	planStart := time.Now()
	plans := make([]Plan, len(cts))
	perWorker := make([][]int, len(c.workers)) // constraint indices per worker
	var residualIdx []int
	for i, ct := range cts {
		plans[i] = c.PlanFor(ct)
		switch plans[i].Kind {
		case PlanLocal:
			c.nLocalFanouts.Add(1)
			for s := range perWorker {
				perWorker[s] = append(perWorker[s], i)
			}
		case PlanSingleShard:
			c.nSingleShard.Add(1)
			perWorker[plans[i].Shard] = append(perWorker[plans[i].Shard], i)
		default:
			c.nResidualChecks.Add(1)
			residualIdx = append(residualIdx, i)
		}
	}
	if tr != nil {
		tr.Span("plan", planStart)
	}

	// Scatter. gathered[s][k] answers perWorker[s][k]; errs[s] is shard s's
	// transport failure, slot len(workers) the residual's.
	gathered := make([][]CheckOutcome, len(c.workers))
	errs := make([]error, len(c.workers)+1)
	var residualOut []CheckOutcome
	var wg sync.WaitGroup
	for s, idxs := range perWorker {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			t0 := time.Now()
			batch := make([]logic.Constraint, len(idxs))
			for k, i := range idxs {
				batch[k] = cts[i]
			}
			out, err := c.workers[s].Check(ctx, batch, budget)
			if err != nil {
				c.nWorkerFailures.Add(1)
				errs[s] = wrapWorkerErr(c.workers[s], err)
				return
			}
			gathered[s] = out
			if tr != nil {
				tr.Span(fmt.Sprintf("shard%d", s), t0)
			}
		}(s, idxs)
	}
	if len(residualIdx) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			errs[len(c.workers)] = c.submit(ctx, func(chk *core.Checker) {
				residualOut = make([]CheckOutcome, len(residualIdx))
				for k, i := range residualIdx {
					res := chk.CheckOneOpts(cts[i], core.CheckOptions{NodeBudget: budget})
					residualOut[k] = outcomeFromResult(cts[i].Name, res)
				}
			})
			if tr != nil {
				tr.Span("residual", t0)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Gather: merge according to each plan.
	mergeStart := time.Now()
	out := make([]CheckOutcome, len(cts))
	for s, idxs := range perWorker {
		for k, i := range idxs {
			o := gathered[s][k]
			switch {
			case plans[i].Kind == PlanSingleShard:
				out[i] = o
			case out[i].Method == "": // first shard of a local fan-out
				o.Method = "shard"
				out[i] = o
			default:
				mergeLocal(&out[i], o, plans[i].Mode)
			}
		}
	}
	for k, i := range residualIdx {
		out[i] = residualOut[k]
	}
	if tr != nil {
		tr.Span("merge", mergeStart)
	}
	return out, nil
}

// mergeLocal folds one more shard's outcome into the accumulated merge of a
// PlanLocal constraint: validity-mode verdicts OR (a violation anywhere is
// a violation), existence-mode verdicts AND (violated only if no shard
// found a satisfying binding).
func mergeLocal(acc *CheckOutcome, o CheckOutcome, mode logic.CheckMode) {
	if mode == logic.CheckSatisfiability {
		acc.Violated = acc.Violated && o.Violated
	} else {
		acc.Violated = acc.Violated || o.Violated
	}
	acc.FellBack = acc.FellBack || o.FellBack
	if acc.FallbackReason == "" {
		acc.FallbackReason = o.FallbackReason
	}
	if o.DurationNS > acc.DurationNS {
		acc.DurationNS = o.DurationNS // parallel fan-out: wall clock is the max
	}
	if acc.Err == "" {
		acc.Err = o.Err
	}
}

func wrapWorkerErr(w Worker, err error) error {
	if _, ok := err.(*WorkerError); ok {
		return err
	}
	return &WorkerError{Shard: w.Shard(), URL: w.Status().URL, Err: err}
}

// Witnesses enumerates violating bindings. Local validity-mode constraints
// union per-shard witness sets — exact, because guardedness confines every
// violating binding to the shard owning its anchor value; everything else
// (residual plans, existence mode) goes to the residual checker, which
// reproduces the single-kernel server's behavior including its errors.
func (c *Coordinator) Witnesses(ctx context.Context, ct logic.Constraint, limit, budget int, tr *obs.Trace) ([]core.Witness, string, error) {
	c.nWitnesses.Add(1)
	plan := c.PlanFor(ct)
	if plan.Mode != logic.CheckValidity || plan.Kind == PlanResidual {
		var (
			ws   []core.Witness
			werr error
		)
		t0 := time.Now()
		err := c.submit(ctx, func(chk *core.Checker) {
			ws, werr = chk.ViolationWitnessesOpts(ct, limit, core.CheckOptions{NodeBudget: budget})
		})
		if tr != nil {
			tr.Span("residual", t0)
		}
		if err != nil {
			return nil, "", err
		}
		c.nResidualChecks.Add(1)
		return ws, "residual", werr
	}

	targets := c.workers
	if plan.Kind == PlanSingleShard {
		targets = c.workers[plan.Shard : plan.Shard+1]
	}
	perShard := make([][]core.Witness, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for k, w := range targets {
		wg.Add(1)
		go func(k int, w Worker) {
			defer wg.Done()
			t0 := time.Now()
			ws, err := w.Witnesses(ctx, ct, limit, budget)
			if err != nil {
				c.nWorkerFailures.Add(1)
				errs[k] = wrapWorkerErr(w, err)
				return
			}
			perShard[k] = ws
			if tr != nil {
				tr.Span(fmt.Sprintf("shard%d", w.Shard()), t0)
			}
		}(k, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, "", err
		}
	}

	t0 := time.Now()
	seen := map[string]bool{}
	var merged []core.Witness
	for _, ws := range perShard {
		for _, wit := range ws {
			key := strings.Join(wit.Vars, "\x00") + "\x01" + strings.Join(wit.Values, "\x00")
			if seen[key] {
				continue
			}
			seen[key] = true
			merged = append(merged, wit)
		}
	}
	// Deterministic order regardless of shard arrival.
	sort.Slice(merged, func(i, j int) bool {
		a := strings.Join(merged[i].Values, "\x00")
		b := strings.Join(merged[j].Values, "\x00")
		return a < b
	})
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	if tr != nil {
		tr.Span("merge", t0)
	}
	return merged, "shard", nil
}

// Update routes the batch to owning shards (broadcast tables to all),
// applies it, then mirrors it into the residual checker and advances the
// epoch. The whole batch is pre-validated for routing before any shard sees
// a tuple, so routing errors are atomic; a mid-batch apply error on a shard
// is not (the error names the shard, and the epoch does not advance).
func (c *Coordinator) Update(ctx context.Context, ups []core.Update, tr *obs.Trace) (int, uint64, error) {
	var (
		applied int
		epoch   uint64
		uerr    error
	)
	err := c.submit(ctx, func(chk *core.Checker) {
		t0 := time.Now()
		// Route first: a bad tuple (unknown table, wrong arity, bad op)
		// fails the batch before any shard mutates.
		perShard := make([][]core.Update, len(c.workers))
		for _, u := range ups {
			s, broadcast, rerr := c.part.RouteUpdate(chk.Catalog(), u)
			if rerr != nil {
				uerr = rerr
				return
			}
			if broadcast {
				for i := range perShard {
					perShard[i] = append(perShard[i], u)
				}
			} else {
				perShard[s] = append(perShard[s], u)
			}
		}
		if tr != nil {
			tr.Span("route", t0)
		}

		// Scatter to the owning shards in parallel.
		t0 = time.Now()
		errs := make([]error, len(c.workers))
		var wg sync.WaitGroup
		for s, batch := range perShard {
			if len(batch) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int, batch []core.Update) {
				defer wg.Done()
				if _, err := c.workers[s].Update(ctx, batch); err != nil {
					c.nWorkerFailures.Add(1)
					errs[s] = wrapWorkerErr(c.workers[s], err)
				}
			}(s, batch)
		}
		wg.Wait()
		if tr != nil {
			tr.Span("scatter", t0)
		}
		for _, err := range errs {
			if err != nil {
				uerr = err
				return
			}
		}

		// Mirror into the residual checker. Shards accepted the batch, so a
		// failure here means coordinator state diverged — surfaced loudly.
		t0 = time.Now()
		if n, err := chk.Apply(ups); err != nil {
			uerr = fmt.Errorf("shard: residual apply diverged after %d/%d tuples: %w", n, len(ups), err)
			return
		}
		if tr != nil {
			tr.Span("residual_apply", t0)
		}
		applied = len(ups)
		epoch = c.epoch.Add(1)
		c.nUpdateBatches.Add(1)
		c.nUpdateTuples.Add(uint64(len(ups)))
	})
	if err != nil {
		return 0, c.epoch.Load(), err
	}
	if uerr != nil {
		return 0, c.epoch.Load(), uerr
	}
	return applied, epoch, nil
}

// Close stops the coordinator loop and every worker.
func (c *Coordinator) Close() {
	c.once.Do(func() { close(c.quit) })
	<-c.done
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w Worker) {
			defer wg.Done()
			w.Close()
		}(w)
	}
	wg.Wait()
}
