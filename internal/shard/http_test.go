package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/service"
	"repro/internal/shard"
)

// bootShardDaemon runs one partition behind a real single-kernel service,
// exactly what `cvserved` would serve as a worker process.
func bootShardDaemon(t *testing.T, cat *relation.Catalog) *httptest.Server {
	t.Helper()
	chk := core.New(cat, core.Options{})
	for _, tb := range cat.Tables() {
		if _, err := chk.BuildIndex(tb.Name(), tb.Name(), nil, core.OrderSchema); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := service.New(chk, nil, service.Options{Replicas: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// newHTTPCoordinator splits the fixture across nShards real HTTP daemons
// and returns the coordinator plus its own HTTP server.
func newHTTPCoordinator(t *testing.T, seed int64, nShards int) (*shard.Coordinator, *httptest.Server) {
	t.Helper()
	cat := fixtureCat(t)
	populate(cat, rand.New(rand.NewSource(seed)), 300)
	part := newPartitioner(t, cat, nShards)
	workers := make([]shard.Worker, nShards)
	for i, pc := range part.Split(cat) {
		hs := bootShardDaemon(t, pc)
		workers[i] = shard.NewHTTPWorker(i, hs.URL, hs.Client())
	}
	coord, err := shard.NewCoordinator(cat, mustParse(t, fixtureRules), part, workers, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(hs.Close)
	return coord, hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestHTTPWorkersEndToEnd(t *testing.T) {
	_, hs := newHTTPCoordinator(t, 21, 3)

	// Reference: same fixture, one kernel.
	refCat := fixtureCat(t)
	populate(refCat, rand.New(rand.NewSource(21)), 300)
	ref := refChecker(t, refCat)
	cts := mustParse(t, fixtureRules)

	check := func(step string) {
		t.Helper()
		resp, body := postJSON(t, hs.URL+"/check", service.CheckRequest{
			Constraints: []string{"state_fd", "supp_city_known", "nj_exists", "area_known", "toronto_ontario", "area_covered"},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: /check %s: %s", step, resp.Status, body)
		}
		var cr service.CheckResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if len(cr.Results) != len(cts) {
			t.Fatalf("%s: %d results", step, len(cr.Results))
		}
		for i, r := range cr.Results {
			want := ref.CheckOne(cts[i])
			if r.Error != "" || want.Err != nil {
				t.Fatalf("%s: %s: errors %q / %v", step, r.Name, r.Error, want.Err)
			}
			if r.Violated != want.Violated {
				t.Errorf("%s: %s: violated=%v, reference %v", step, r.Name, r.Violated, want.Violated)
			}
		}
	}
	check("initial")

	// Update across shard boundaries through the coordinator's HTTP edge,
	// with a trace, then re-check.
	ups := []service.UpdateTuple{
		{Table: "CUST", Op: "insert", Values: []string{"Trenton", "518", "NJ"}},
		{Table: "SUPP", Op: "insert", Values: []string{"Trenton", "NY"}},
		{Table: "AREA", Op: "insert", Values: []string{"518"}},
	}
	resp, body := postJSON(t, hs.URL+"/update?trace=1", service.UpdateRequest{Updates: ups})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/update %s: %s", resp.Status, body)
	}
	var ur service.UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Applied != len(ups) {
		t.Fatalf("applied %d of %d", ur.Applied, len(ups))
	}
	if ur.Trace == nil || len(ur.Trace.Spans) == 0 {
		t.Fatal("?trace=1 returned no spans")
	}
	for _, u := range ups {
		if _, err := ref.Apply([]core.Update{{Table: u.Table, Op: core.UpdateOp(u.Op), Values: u.Values}}); err != nil {
			t.Fatal(err)
		}
	}
	check("after update")

	// Witness identity over the HTTP edge for a violated validity rule.
	wantWs, err := ref.ViolationWitnesses(cts[5], 10000) // area_covered: residual plan
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, hs.URL+"/witnesses", service.WitnessRequest{Constraint: "area_covered", Limit: 10000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/witnesses %s: %s", resp.Status, body)
	}
	var wr service.WitnessResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	got := make([]core.Witness, len(wr.Witnesses))
	for i, w := range wr.Witnesses {
		got[i] = core.Witness{Vars: w.Vars, Values: w.Values}
	}
	wantSet, gotSet := witnessSet(wantWs), witnessSet(got)
	if len(wantSet) != len(gotSet) {
		t.Fatalf("witnesses %d vs reference %d", len(gotSet), len(wantSet))
	}
}

func TestCoordinatorHTTPEdge(t *testing.T) {
	coord, hs := newHTTPCoordinator(t, 11, 2)

	t.Run("statsz", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st shard.CoordStatsz
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Shards != 2 || len(st.Workers) != 2 || st.ShardKey != "CUST.city" {
			t.Fatalf("statsz = %+v", st)
		}
		if len(st.Plans) != 6 {
			t.Fatalf("plans: %v", st.Plans)
		}
	})

	t.Run("metricsz", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/metricsz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{`cv_shard_up{shard="0"}`, `cv_shard_up{shard="1"}`, `cv_shard_epoch{shard="0"}`, "cv_coord_epoch"} {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("metricsz missing %s", want)
			}
		}
	})

	t.Run("epoch_pin_rejected", func(t *testing.T) {
		resp, body := postJSON(t, hs.URL+"/check?epoch=3", service.CheckRequest{Constraints: []string{"state_fd"}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %s: %s", resp.Status, body)
		}
		var env struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
			t.Fatalf("no JSON error envelope: %s", body)
		}
	})

	t.Run("unknown_constraint", func(t *testing.T) {
		resp, _ := postJSON(t, hs.URL+"/check", service.CheckRequest{Constraints: []string{"nope"}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %s", resp.Status)
		}
	})

	t.Run("trailing_garbage_rejected", func(t *testing.T) {
		resp, err := http.Post(hs.URL+"/check", "application/json",
			strings.NewReader(`{"constraints":["state_fd"]} extra`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %s", resp.Status)
		}
	})

	t.Run("healthz", func(t *testing.T) {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h service.HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Status != "ok" {
			t.Fatalf("healthz = %+v, %v", h, err)
		}
	})
	_ = coord
}

func TestCoordinatorWorkerKilled(t *testing.T) {
	cat := fixtureCat(t)
	populate(cat, rand.New(rand.NewSource(31)), 200)
	part := newPartitioner(t, cat, 2)
	parts := part.Split(cat)

	daemons := make([]*httptest.Server, 2)
	workers := make([]shard.Worker, 2)
	for i := range parts {
		daemons[i] = bootShardDaemon(t, parts[i])
		workers[i] = shard.NewHTTPWorker(i, daemons[i].URL, daemons[i].Client())
	}
	coord, err := shard.NewCoordinator(cat, mustParse(t, fixtureRules), part, workers, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(hs.Close)

	daemons[1].Close() // worker 1 dies

	resp, body := postJSON(t, hs.URL+"/check", service.CheckRequest{Constraints: []string{"state_fd"}})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %s, want 502: %s", resp.Status, body)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || !strings.Contains(env.Error, "shard 1") {
		t.Fatalf("error envelope %q does not name the dead shard", body)
	}

	// The rollup must now report the shard down.
	mresp, err := http.Get(hs.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf(`cv_shard_up{shard="1"} 0`)) {
		t.Errorf("cv_shard_up did not drop to 0:\n%s", buf.String())
	}
}
