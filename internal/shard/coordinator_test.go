package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/shard"
)

const fixtureRules = `
	constraint state_fd:
	    forall c, a, s1, s2: CUST(c, a, s1) and SUPP(c, s2) => s1 = s2.
	constraint supp_city_known:
	    forall c, s: SUPP(c, s) => exists a, s2: CUST(c, a, s2).
	constraint nj_exists:
	    exists c, a: CUST(c, a, "NJ").
	constraint area_known:
	    forall a: AREA(a) => a in {"416", "647", "905", "973"}.
	constraint toronto_ontario:
	    forall a, s: CUST("Toronto", a, s) => s = "Ontario".
	constraint area_covered:
	    forall c, a, s: AREA(a) => CUST(c, a, s).
`

func mustParse(t testing.TB, text string) []logic.Constraint {
	t.Helper()
	cts, err := logic.ParseConstraints(text)
	if err != nil {
		t.Fatal(err)
	}
	return cts
}

// refChecker builds the single-kernel reference over its own copy of the
// fixture (same seed), with every table indexed.
func refChecker(t testing.TB, cat *relation.Catalog) *core.Checker {
	t.Helper()
	chk := core.New(cat, core.Options{})
	for _, tb := range cat.Tables() {
		if _, err := chk.BuildIndex(tb.Name(), tb.Name(), nil, core.OrderSchema); err != nil {
			t.Fatal(err)
		}
	}
	return chk
}

func witnessSet(ws []core.Witness) map[string]bool {
	out := make(map[string]bool, len(ws))
	for _, w := range ws {
		pairs := make([]string, len(w.Vars))
		for i := range w.Vars {
			pairs[i] = logic.BaseName(w.Vars[i]) + "=" + w.Values[i]
		}
		sort.Strings(pairs)
		out[strings.Join(pairs, ",")] = true
	}
	return out
}

// assertAgrees compares the coordinator's verdicts and witness sets with
// the single-kernel reference for every registered constraint.
func assertAgrees(t *testing.T, coord *shard.Coordinator, ref *core.Checker, cts []logic.Constraint, step string) {
	t.Helper()
	ctx := context.Background()
	outs, err := coord.Check(ctx, cts, 0, nil)
	if err != nil {
		t.Fatalf("%s: coordinator check: %v", step, err)
	}
	for i, ct := range cts {
		want := ref.CheckOne(ct)
		if want.Err != nil {
			t.Fatalf("%s: reference %s: %v", step, ct.Name, want.Err)
		}
		if outs[i].Err != "" {
			t.Fatalf("%s: coordinator %s: %s", step, ct.Name, outs[i].Err)
		}
		if outs[i].Violated != want.Violated {
			t.Errorf("%s: %s: coordinator violated=%v, reference %v (method %s)",
				step, ct.Name, outs[i].Violated, want.Violated, outs[i].Method)
		}
		rw := logic.Rewrite(ct.F, logic.DefaultRewriteOptions())
		if rw.Mode != logic.CheckValidity || !want.Violated {
			continue
		}
		wantWs, err := ref.ViolationWitnesses(ct, 10000)
		if err != nil {
			t.Fatalf("%s: reference witnesses %s: %v", step, ct.Name, err)
		}
		gotWs, _, err := coord.Witnesses(ctx, ct, 10000, 0, nil)
		if err != nil {
			t.Fatalf("%s: coordinator witnesses %s: %v", step, ct.Name, err)
		}
		wantSet, gotSet := witnessSet(wantWs), witnessSet(gotWs)
		if len(wantSet) != len(gotSet) {
			t.Errorf("%s: %s: witness count %d vs reference %d", step, ct.Name, len(gotSet), len(wantSet))
			continue
		}
		for k := range wantSet {
			if !gotSet[k] {
				t.Errorf("%s: %s: reference witness %q missing from coordinator", step, ct.Name, k)
				break
			}
		}
	}
}

func TestCoordinatorAgreesWithSingleKernel(t *testing.T) {
	for _, nShards := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			coordCat := fixtureCat(t)
			populate(coordCat, rand.New(rand.NewSource(42)), 400)
			refCat := fixtureCat(t)
			populate(refCat, rand.New(rand.NewSource(42)), 400)

			cts := mustParse(t, fixtureRules)
			coord, err := shard.NewInProcess(coordCat, cts, newPartitioner(t, coordCat, nShards), shard.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			ref := refChecker(t, refCat)

			assertAgrees(t, coord, ref, cts, "initial")

			// Mutate through both paths and re-check: inserts and deletes on
			// partitioned and broadcast tables, crossing shard boundaries.
			rng := rand.New(rand.NewSource(99))
			for batch := 0; batch < 6; batch++ {
				var ups []core.Update
				for i := 0; i < 10; i++ {
					switch rng.Intn(4) {
					case 0:
						ups = append(ups, core.Update{Table: "CUST", Op: core.UpdateInsert,
							Values: []string{cities[rng.Intn(len(cities))], codes[rng.Intn(len(codes))], states[rng.Intn(len(states))]}})
					case 1:
						ups = append(ups, core.Update{Table: "SUPP", Op: core.UpdateInsert,
							Values: []string{cities[rng.Intn(len(cities))], states[rng.Intn(len(states))]}})
					case 2:
						// Delete an existing CUST row from the reference's
						// current state so both sides accept it.
						tb := refCat.Table("CUST")
						if tb.Len() == 0 {
							continue
						}
						r := rng.Intn(tb.Len())
						ups = append(ups, core.Update{Table: "CUST", Op: core.UpdateDelete,
							Values: []string{tb.Value(r, 0), tb.Value(r, 1), tb.Value(r, 2)}})
					case 3:
						ups = append(ups, core.Update{Table: "AREA", Op: core.UpdateInsert,
							Values: []string{codes[rng.Intn(len(codes))]}})
					}
				}
				if len(ups) == 0 {
					continue
				}
				if _, err := ref.Apply(ups); err != nil {
					t.Fatalf("batch %d: reference apply: %v", batch, err)
				}
				applied, _, err := coord.Update(context.Background(), ups, nil)
				if err != nil {
					t.Fatalf("batch %d: coordinator update: %v", batch, err)
				}
				if applied != len(ups) {
					t.Fatalf("batch %d: applied %d of %d", batch, applied, len(ups))
				}
				assertAgrees(t, coord, ref, cts, fmt.Sprintf("batch %d", batch))
			}
			if got := coord.Epoch(); got < 2 {
				t.Fatalf("epoch %d after updates", got)
			}
		})
	}
}

func TestCoordinatorAdHocConstraints(t *testing.T) {
	coordCat := fixtureCat(t)
	populate(coordCat, rand.New(rand.NewSource(5)), 200)
	refCat := fixtureCat(t)
	populate(refCat, rand.New(rand.NewSource(5)), 200)

	coord, err := shard.NewInProcess(coordCat, nil, newPartitioner(t, coordCat, 3), shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ref := refChecker(t, refCat)

	// Never-registered constraints take the same plan/merge path.
	adhoc := mustParse(t, `
		constraint q1: forall c, s: SUPP(c, s) => exists a, s2: CUST(c, a, s2).
		constraint q2: exists c: SUPP(c, "NJ").
		constraint q3: forall c, a, s: CUST(c, a, s) => a in {"416", "647"}.
	`)
	assertAgrees(t, coord, ref, adhoc, "adhoc")
}

// failingWorker simulates a crashed shard daemon.
type failingWorker struct{ shard int }

func (f *failingWorker) Shard() int { return f.shard }
func (f *failingWorker) Check(context.Context, []logic.Constraint, int) ([]shard.CheckOutcome, error) {
	return nil, errors.New("connection refused")
}
func (f *failingWorker) Witnesses(context.Context, logic.Constraint, int, int) ([]core.Witness, error) {
	return nil, errors.New("connection refused")
}
func (f *failingWorker) Update(context.Context, []core.Update) (int, error) {
	return 0, errors.New("connection refused")
}
func (f *failingWorker) Status() shard.WorkerStatus {
	return shard.WorkerStatus{Shard: f.shard, Up: false}
}
func (f *failingWorker) Close() {}

func TestCoordinatorWorkerDownDegradesToError(t *testing.T) {
	cat := fixtureCat(t)
	populate(cat, rand.New(rand.NewSource(3)), 100)
	cts := mustParse(t, fixtureRules)
	part := newPartitioner(t, cat, 2)

	// One real in-process shard, one dead worker.
	parts := part.Split(cat.Clone())
	live, err := shard.NewInProcess(parts[0], nil, newPartitioner(t, parts[0], 1), shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	coord, err := shard.NewCoordinator(cat, cts, part,
		[]shard.Worker{live.Workers()[0], &failingWorker{shard: 1}}, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}

	_, err = coord.Check(context.Background(), cts[:1], 0, nil)
	var we *shard.WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("check error = %v, want *WorkerError", err)
	}
	if we.Shard != 1 {
		t.Fatalf("failure attributed to shard %d, want 1", we.Shard)
	}
	before := coord.Epoch()
	_, _, err = coord.Update(context.Background(),
		[]core.Update{{Table: "AREA", Op: core.UpdateInsert, Values: []string{"999"}}}, nil)
	if !errors.As(err, &we) {
		t.Fatalf("update error = %v, want *WorkerError", err)
	}
	if coord.Epoch() != before {
		t.Fatal("epoch advanced despite failed fan-out")
	}
}

func TestCoordinatorBadUpdateRejectedAtomically(t *testing.T) {
	cat := fixtureCat(t)
	populate(cat, rand.New(rand.NewSource(3)), 50)
	coord, err := shard.NewInProcess(cat, nil, newPartitioner(t, cat, 2), shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Routing validation must reject the whole batch before any shard
	// applies the leading (valid) tuple: the probe's verdict is unchanged.
	probe := mustParse(t, `constraint q: exists a: CUST("Newark", a, "NJ").`)
	beforeOuts, err := coord.Check(context.Background(), probe, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	beforeEpoch := coord.Epoch()
	_, _, err = coord.Update(context.Background(), []core.Update{
		{Table: "CUST", Op: core.UpdateInsert, Values: []string{"Newark", "973", "NJ"}},
		{Table: "GHOST", Op: core.UpdateInsert, Values: []string{"x"}},
	}, nil)
	if err == nil {
		t.Fatal("unknown table accepted")
	}
	if coord.Epoch() != beforeEpoch {
		t.Fatal("epoch advanced on rejected batch")
	}
	afterOuts, err := coord.Check(context.Background(), probe, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if beforeOuts[0].Violated != afterOuts[0].Violated {
		t.Fatal("rejected batch leaked its first tuple into a shard")
	}
}
