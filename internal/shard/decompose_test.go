package shard_test

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/shard"
)

// fixtureCat builds a catalog with shared domains so tables co-partition:
// CUST(city, areacode, state) is the key table on city, SUPP(city, state)
// co-partitions through the shared "city" domain, and AREA(areacode) is
// broadcast (no column over the key domain).
func fixtureCat(t testing.TB) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	mustCreate := func(name string, cols []relation.Column) *relation.Table {
		tb, err := cat.CreateTable(name, cols)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	mustCreate("CUST", []relation.Column{
		{Name: "city", Domain: "city"},
		{Name: "areacode", Domain: "areacode"},
		{Name: "state", Domain: "state"},
	})
	mustCreate("SUPP", []relation.Column{
		{Name: "city", Domain: "city"},
		{Name: "state", Domain: "state"},
	})
	mustCreate("AREA", []relation.Column{
		{Name: "areacode", Domain: "areacode"},
	})
	return cat
}

var cities = []string{"Toronto", "Oshawa", "Newark", "Trenton", "Buffalo", "Albany", "Camden", "Utica"}
var codes = []string{"416", "647", "905", "973", "201", "908", "716", "518"}
var states = []string{"Ontario", "NJ", "NY"}

// populate fills the fixture with deterministic pseudo-random rows.
func populate(cat *relation.Catalog, rng *rand.Rand, nRows int) {
	cust := cat.Table("CUST")
	supp := cat.Table("SUPP")
	area := cat.Table("AREA")
	for i := 0; i < nRows; i++ {
		cust.Insert(cities[rng.Intn(len(cities))], codes[rng.Intn(len(codes))], states[rng.Intn(len(states))])
	}
	for i := 0; i < nRows/2; i++ {
		supp.Insert(cities[rng.Intn(len(cities))], states[rng.Intn(len(states))])
	}
	for _, c := range codes[:4] {
		area.Insert(c)
	}
}

func mustParseOne(t testing.TB, text string) logic.Constraint {
	t.Helper()
	cts, err := logic.ParseConstraints(text)
	if err != nil {
		t.Fatalf("parsing %q: %v", text, err)
	}
	if len(cts) != 1 {
		t.Fatalf("want one constraint, got %d", len(cts))
	}
	return cts[0]
}

func newPartitioner(t testing.TB, cat *relation.Catalog, n int) *shard.Partitioner {
	t.Helper()
	key, err := shard.ParseKey("CUST.city")
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.NewPartitioner(cat, key, n, shard.HashMode, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDecompose(t *testing.T) {
	cat := fixtureCat(t)
	p := newPartitioner(t, cat, 4)
	res := logic.CatalogResolver{Catalog: cat}

	cases := []struct {
		name string
		text string
		want shard.PlanKind
		mode logic.CheckMode
	}{
		{
			name: "fd_join_local",
			text: `constraint c: forall c, a, s1, s2: CUST(c, a, s1) and SUPP(c, s2) => s1 = s2.`,
			want: shard.PlanLocal,
			mode: logic.CheckValidity,
		},
		{
			name: "inclusion_local",
			// The negative CUST side is fine: the violation condition is
			// guarded by the positive SUPP occurrence on the same anchor.
			text: `constraint c: forall c, s: SUPP(c, s) => exists a, s2: CUST(c, a, s2).`,
			want: shard.PlanLocal,
			mode: logic.CheckValidity,
		},
		{
			name: "existence_local",
			text: `constraint c: exists c, a: CUST(c, a, "NJ").`,
			want: shard.PlanLocal,
			mode: logic.CheckSatisfiability,
		},
		{
			name: "broadcast_only_single",
			text: `constraint c: forall a: AREA(a) => a in {"416", "647", "905", "973"}.`,
			want: shard.PlanSingleShard,
		},
		{
			name: "const_key_single",
			text: `constraint c: forall a, s: CUST("Toronto", a, s) => s = "Ontario".`,
			want: shard.PlanSingleShard,
		},
		{
			name: "unguarded_residual",
			// Violation condition is AREA(a) and not CUST(c, a, s): its only
			// partitioned occurrence is negative, so a non-owner shard would
			// report spurious violations under a naive union.
			text: `constraint c: forall c, a, s: AREA(a) => CUST(c, a, s).`,
			want: shard.PlanResidual,
		},
		{
			name: "two_anchors_residual",
			text: `constraint c: forall c1, c2, s: SUPP(c1, s) and SUPP(c2, s) => c1 = c2.`,
			want: shard.PlanResidual,
		},
		{
			name: "prenexable_inner_anchor_local",
			// The inner existential hoists into the leading block under
			// prenexing, so the anchor still ranges per shard: local.
			text: `constraint c: forall s: (exists c: SUPP(c, s)) => s in {"NJ", "NY", "Ontario"}.`,
			want: shard.PlanLocal,
			mode: logic.CheckValidity,
		},
		{
			name: "inner_anchor_residual",
			// Here the anchor sits under an inner universal that prenexing
			// cannot hoist past the leading existential: each shard would
			// quantify "forall c" over only its own cities, and an AND-merge
			// of per-shard verdicts would accept a different s per shard.
			text: `constraint c: exists s: (forall c: SUPP(c, s)).`,
			want: shard.PlanResidual,
		},
		{
			name: "unknown_table_residual",
			text: `constraint c: forall x: GHOST(x) => x = x.`,
			want: shard.PlanResidual,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := p.Decompose(mustParseOne(t, tc.text), res)
			if plan.Kind != tc.want {
				t.Fatalf("plan = %v, want kind %v", plan, tc.want)
			}
			if tc.want == shard.PlanLocal && plan.Mode != tc.mode {
				t.Fatalf("plan mode = %v, want %v", plan.Mode, tc.mode)
			}
		})
	}

	t.Run("const_key_targets_owner", func(t *testing.T) {
		plan := p.Decompose(mustParseOne(t,
			`constraint c: forall a, s: CUST("Toronto", a, s) => s = "Ontario".`), res)
		if plan.Kind != shard.PlanSingleShard || plan.Shard != p.ShardOf("Toronto") {
			t.Fatalf("plan = %v, want single-shard at %d", plan, p.ShardOf("Toronto"))
		}
	})
}

func TestPartitionerSplit(t *testing.T) {
	cat := fixtureCat(t)
	populate(cat, rand.New(rand.NewSource(7)), 500)
	p := newPartitioner(t, cat, 3)

	parts := p.Split(cat)
	if len(parts) != 3 {
		t.Fatalf("got %d partitions", len(parts))
	}
	custTotal, suppTotal := 0, 0
	for i, pc := range parts {
		cust, supp, area := pc.Table("CUST"), pc.Table("SUPP"), pc.Table("AREA")
		custTotal += cust.Len()
		suppTotal += supp.Len()
		if area.Len() != cat.Table("AREA").Len() {
			t.Fatalf("shard %d: broadcast AREA has %d rows, want %d", i, area.Len(), cat.Table("AREA").Len())
		}
		for r := 0; r < cust.Len(); r++ {
			if got := p.ShardOf(cust.Value(r, 0)); got != i {
				t.Fatalf("shard %d holds CUST city %q owned by %d", i, cust.Value(r, 0), got)
			}
		}
		for r := 0; r < supp.Len(); r++ {
			if got := p.ShardOf(supp.Value(r, 0)); got != i {
				t.Fatalf("shard %d holds SUPP city %q owned by %d", i, supp.Value(r, 0), got)
			}
		}
	}
	if custTotal != cat.Table("CUST").Len() || suppTotal != cat.Table("SUPP").Len() {
		t.Fatalf("partition row totals %d/%d, want %d/%d",
			custTotal, suppTotal, cat.Table("CUST").Len(), cat.Table("SUPP").Len())
	}
}

func TestPartitionerRangeMode(t *testing.T) {
	cat := fixtureCat(t)
	key, _ := shard.ParseKey("CUST.city")
	p, err := shard.NewPartitioner(cat, key, 3, shard.RangeMode, []string{"M", "T"})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range map[string]int{"Albany": 0, "Buffalo": 0, "M": 1, "Newark": 1, "T": 2, "Toronto": 2} {
		if got := p.ShardOf(v); got != want {
			t.Errorf("ShardOf(%q) = %d, want %d", v, got, want)
		}
	}
	if _, err := shard.NewPartitioner(cat, key, 3, shard.RangeMode, []string{"T"}); err == nil {
		t.Fatal("wrong bound count accepted")
	}
	if _, err := shard.NewPartitioner(cat, key, 3, shard.RangeMode, []string{"T", "M"}); err == nil {
		t.Fatal("unsorted bounds accepted")
	}
}

func TestParseKey(t *testing.T) {
	for _, bad := range []string{"", "CUST", ".city", "CUST.", "A.B.C"} {
		if _, err := shard.ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
	k, err := shard.ParseKey("CUST.city")
	if err != nil || k.Table != "CUST" || k.Column != "city" {
		t.Fatalf("ParseKey = %v, %v", k, err)
	}
}
