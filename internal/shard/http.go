// http.go is the coordinator's HTTP surface. It speaks the same wire types
// as the single-kernel service (internal/service), so clients and the
// smoke tooling need no dialect switch: POST /check, /witnesses, /update,
// GET /healthz, /statsz (with a shard block), /metricsz (cv_shard_* rollup).
// Pinned-epoch reads are refused — the coordinator has no historical store.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/service"
)

const maxBodyBytes = 8 << 20

// CoordStatsz is the coordinator's /statsz document.
type CoordStatsz struct {
	UptimeMS int64  `json:"uptime_ms"`
	Epoch    uint64 `json:"epoch"`

	// Sharding describes the partition layout.
	ShardKey string `json:"shard_key"`
	Shards   int    `json:"shards"`
	Mode     string `json:"mode"`

	// Workers is one status block per shard.
	Workers []WorkerStatus `json:"workers"`

	// Plans maps each registered constraint to its evaluation strategy.
	Plans map[string]string `json:"plans"`

	// Requests are coordinator-side counters.
	Requests CoordRequestStats `json:"requests"`
}

// CoordRequestStats counts coordinator requests by disposition.
type CoordRequestStats struct {
	Checks         uint64 `json:"checks"`
	Witnesses      uint64 `json:"witnesses"`
	UpdateBatches  uint64 `json:"update_batches"`
	UpdateTuples   uint64 `json:"update_tuples"`
	LocalFanouts   uint64 `json:"local_fanouts"`
	SingleShard    uint64 `json:"single_shard"`
	ResidualChecks uint64 `json:"residual_checks"`
	WorkerFailures uint64 `json:"worker_failures"`
}

// Handler returns the coordinator's HTTP routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /check", c.handleCheck)
	mux.HandleFunc("POST /witnesses", c.handleWitnesses)
	mux.HandleFunc("POST /update", c.handleUpdate)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /statsz", c.handleStatsz)
	mux.HandleFunc("GET /metricsz", c.handleMetricsz)
	return mux
}

// resolve maps request names to registered constraints and parses ad-hoc
// text, names first — the same contract as the single-kernel service,
// including the default: no names and no text selects every registered
// constraint.
func (c *Coordinator) resolve(names []string, text string) ([]logic.Constraint, error) {
	if len(names) == 0 && text == "" {
		if len(c.constraints) == 0 {
			return nil, errBadRequest("no constraints requested and none registered")
		}
		return append([]logic.Constraint(nil), c.constraints...), nil
	}
	var out []logic.Constraint
	for _, name := range names {
		found := false
		for _, ct := range c.constraints {
			if ct.Name == name {
				out = append(out, ct)
				found = true
				break
			}
		}
		if !found {
			return nil, errBadRequest(fmt.Sprintf("unknown constraint %q", name))
		}
	}
	if text != "" {
		cts, err := logic.ParseConstraints(text)
		if err != nil {
			return nil, errBadRequest(err.Error())
		}
		out = append(out, cts...)
	}
	if len(out) == 0 {
		return nil, errBadRequest("no constraints requested")
	}
	return out, nil
}

type badRequestError string

func errBadRequest(msg string) error    { return badRequestError(msg) }
func (e badRequestError) Error() string { return string(e) }

func statusFor(err error) int {
	var we *WorkerError
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &we):
		return http.StatusBadGateway
	case errors.Is(err, ErrBusy), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func (c *Coordinator) httpError(w http.ResponseWriter, err error) {
	writeJSON(w, statusFor(err), map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func (c *Coordinator) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			c.httpError(w, err)
		} else {
			c.httpError(w, errBadRequest("bad request body: "+strings.TrimPrefix(err.Error(), "json: ")))
		}
		return false
	}
	if _, err := dec.Token(); err != io.EOF {
		c.httpError(w, errBadRequest("trailing data after JSON body"))
		return false
	}
	return true
}

// traceFor starts a trace when the request asks for one with ?trace=1.
func traceFor(r *http.Request) *obs.Trace {
	if v := r.URL.Query().Get("trace"); v == "1" || v == "true" {
		return obs.NewTrace()
	}
	return nil
}

func toWireTrace(tr *obs.Trace) *service.TraceInfo {
	if tr == nil {
		return nil
	}
	spans := tr.Spans()
	info := &service.TraceInfo{TotalNS: tr.Total().Nanoseconds(), Spans: make([]service.TraceSpan, len(spans))}
	for i, sp := range spans {
		info.Spans[i] = service.TraceSpan{
			Name:       sp.Name,
			StartNS:    sp.Start.Nanoseconds(),
			DurationNS: sp.Duration.Nanoseconds(),
		}
	}
	return info
}

func (c *Coordinator) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := c.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// rejectEpochParam refuses ?epoch= pins: the coordinator serves only the
// current epoch.
func (c *Coordinator) rejectEpochParam(w http.ResponseWriter, r *http.Request) bool {
	if r.URL.Query().Has("epoch") {
		c.httpError(w, errBadRequest("the coordinator does not serve pinned-epoch reads"))
		return false
	}
	return true
}

func (c *Coordinator) handleCheck(w http.ResponseWriter, r *http.Request) {
	tr := traceFor(r)
	var req service.CheckRequest
	if !c.decode(w, r, &req) {
		return
	}
	if !c.rejectEpochParam(w, r) {
		return
	}
	cts, err := c.resolve(req.Constraints, req.Text)
	if err != nil {
		c.httpError(w, err)
		return
	}
	ctx, cancel := c.requestContext(r, req.TimeoutMS)
	defer cancel()
	outcomes, err := c.Check(ctx, cts, req.NodeBudget, tr)
	if err != nil {
		c.httpError(w, err)
		return
	}
	resp := service.CheckResponse{
		Results: make([]service.CheckResult, len(outcomes)),
		Epoch:   c.Epoch(),
		Trace:   toWireTrace(tr),
	}
	for i, o := range outcomes {
		resp.Results[i] = service.CheckResult{
			Name:           o.Name,
			Violated:       o.Violated,
			Method:         o.Method,
			FellBack:       o.FellBack,
			FallbackReason: o.FallbackReason,
			DurationNS:     o.DurationNS,
			Error:          o.Err,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleWitnesses(w http.ResponseWriter, r *http.Request) {
	tr := traceFor(r)
	var req service.WitnessRequest
	if !c.decode(w, r, &req) {
		return
	}
	if !c.rejectEpochParam(w, r) {
		return
	}
	var names []string
	if req.Constraint != "" {
		names = []string{req.Constraint}
	}
	cts, err := c.resolve(names, req.Text)
	if err != nil {
		c.httpError(w, err)
		return
	}
	if len(cts) != 1 {
		c.httpError(w, errBadRequest("witnesses wants exactly one constraint"))
		return
	}
	limit := req.Limit
	if limit == 0 {
		limit = 10
	}
	ctx, cancel := c.requestContext(r, req.TimeoutMS)
	defer cancel()
	ws, method, err := c.Witnesses(ctx, cts[0], limit, req.NodeBudget, tr)
	if err != nil {
		c.httpError(w, err)
		return
	}
	resp := service.WitnessResponse{
		Constraint: cts[0].Name,
		Method:     method,
		Witnesses:  make([]service.Witness, len(ws)),
		Trace:      toWireTrace(tr),
	}
	for i, wit := range ws {
		resp.Witnesses[i] = service.Witness{Vars: wit.Vars, Values: wit.Values}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleUpdate(w http.ResponseWriter, r *http.Request) {
	tr := traceFor(r)
	var req service.UpdateRequest
	if !c.decode(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		c.httpError(w, errBadRequest("empty update batch"))
		return
	}
	ups := make([]core.Update, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = core.Update{Table: u.Table, Op: core.UpdateOp(u.Op), Values: u.Values}
	}
	ctx, cancel := c.requestContext(r, req.TimeoutMS)
	defer cancel()
	applied, _, err := c.Update(ctx, ups, tr)
	if err != nil {
		c.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, service.UpdateResponse{Applied: applied, Trace: toWireTrace(tr)})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, service.HealthResponse{
		Status:   "ok",
		UptimeMS: time.Since(c.start).Milliseconds(),
	})
}

func (c *Coordinator) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	stats := CoordStatsz{
		UptimeMS: time.Since(c.start).Milliseconds(),
		Epoch:    c.Epoch(),
		ShardKey: c.part.Key().String(),
		Shards:   c.part.Shards(),
		Mode:     c.part.Mode().String(),
		Workers:  make([]WorkerStatus, len(c.workers)),
		Plans:    make(map[string]string, len(c.plans)),
		Requests: CoordRequestStats{
			Checks:         c.nChecks.Load(),
			Witnesses:      c.nWitnesses.Load(),
			UpdateBatches:  c.nUpdateBatches.Load(),
			UpdateTuples:   c.nUpdateTuples.Load(),
			LocalFanouts:   c.nLocalFanouts.Load(),
			SingleShard:    c.nSingleShard.Load(),
			ResidualChecks: c.nResidualChecks.Load(),
			WorkerFailures: c.nWorkerFailures.Load(),
		},
	}
	for i, worker := range c.workers {
		stats.Workers[i] = worker.Status()
	}
	for name, plan := range c.plans {
		stats.Plans[name] = plan.String()
	}
	writeJSON(w, http.StatusOK, stats)
}

func (c *Coordinator) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = c.Metrics().WritePrometheus(w)
}
