package bdd

import "fmt"

// copy.go implements direct cross-kernel transfer of BDDs. Replication of
// read-only indices across worker kernels (internal/replica) needs to move
// whole subgraphs between kernels without the serialize/deserialize roundtrip
// of Save/Load; CopyTo is a memoized walk that re-interns each source node
// through the destination's makeNode, so copied BDDs share structure with
// everything already living in the destination and copying the same roots
// twice is a pure unique-table lookup.

// CopyTo transfers the subgraphs reachable from roots into dst and returns
// the corresponding destination Refs in the same order. The source kernel is
// only read, never mutated, so concurrent CopyTo calls from one frozen
// source into distinct destinations are safe; dst must not be used
// concurrently. The destination must have at least as many variables as the
// highest level reachable from roots, and variable i in the source is
// variable i in the destination — replication reproduces the source's
// variable layout before copying. Copying counts against dst's node budget;
// on budget exhaustion the destination's sticky error is returned and dst is
// left with Err set, like any other aborted operation.
func (k *Kernel) CopyTo(dst *Kernel, roots ...Ref) ([]Ref, error) {
	if dst == k {
		out := make([]Ref, len(roots))
		copy(out, roots)
		return out, nil
	}
	memo := map[Ref]Ref{False: False, True: True}
	mark := dst.TempMark()
	defer dst.TempRelease(mark)
	// Recursion depth is bounded by the variable count: levels strictly
	// increase downward, exactly as in Save's topological visit.
	var copyNode func(Ref) (Ref, error)
	copyNode = func(f Ref) (Ref, error) {
		if f == Invalid {
			return Invalid, fmt.Errorf("bdd: CopyTo of Invalid ref")
		}
		if g, ok := memo[f]; ok {
			return g, nil
		}
		n := &k.nodes[f]
		if int(n.level) >= dst.numVars {
			return Invalid, fmt.Errorf("bdd: CopyTo needs variable %d, destination has %d", n.level, dst.numVars)
		}
		low, err := copyNode(n.low)
		if err != nil {
			return Invalid, err
		}
		high, err := copyNode(n.high)
		if err != nil {
			return Invalid, err
		}
		g := dst.makeNode(n.level, low, high)
		if g == Invalid {
			return Invalid, dst.Err()
		}
		dst.TempKeep(g)
		memo[f] = g
		return g, nil
	}
	out := make([]Ref, len(roots))
	for i, r := range roots {
		g, err := copyNode(r)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}
