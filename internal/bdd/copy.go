package bdd

import (
	"fmt"
	"sort"
)

// copy.go implements direct cross-kernel transfer of BDDs. Replication of
// read-only indices across worker kernels (internal/replica) needs to move
// whole subgraphs between kernels without the serialize/deserialize roundtrip
// of Save/Load; CopyTo is a memoized walk that re-interns each source node
// through the destination's makeNode, so copied BDDs share structure with
// everything already living in the destination and copying the same roots
// twice is a pure unique-table lookup.

// CopyTo transfers the subgraphs reachable from roots into dst and returns
// the corresponding destination Refs in the same order. The source kernel is
// only read, never mutated, so concurrent CopyTo calls from one frozen
// source into distinct destinations are safe; dst must not be used
// concurrently. The destination must have at least as many variables as the
// source uses, and variable i in the source is variable i in the
// destination — replication reproduces the source's variable layout before
// copying.
//
// Variable order: a pristine destination (no nodes beyond the terminals,
// still on the identity order) with enough variables adopts the source's
// current order first, so replicas built from a reordered primary inherit
// the ordering that made it small. A destination that already holds nodes
// must agree with the source on the relative order of the copied variables;
// CopyTo reports an error otherwise instead of corrupting canonicity.
//
// Copying counts against dst's node budget; on budget exhaustion the
// destination's sticky error is returned and dst is left with Err set, like
// any other aborted operation.
func (k *Kernel) CopyTo(dst *Kernel, roots ...Ref) ([]Ref, error) {
	if dst == k {
		out := make([]Ref, len(roots))
		copy(out, roots)
		return out, nil
	}
	if dst.live == 2 && dst.orderIsIdentity() && dst.numVars > 0 && k.numVars > 0 {
		// Canonicity only needs the RELATIVE source order of the variables
		// both kernels share, so rank-compress it onto the destination's
		// levels: shared variables sort by source level and take destination
		// levels 0..n-1 in that order. A destination at least as wide as the
		// source reproduces the source order exactly (rank == source level);
		// a narrower one (the source kept scratch variables above the copied
		// blocks) adopts the projected order, and a copied node that does use
		// a variable the destination lacks still fails below. Extra
		// destination variables keep their identity levels ≥ n.
		n := dst.numVars
		if k.numVars < n {
			n = k.numVars
		}
		order := make([]uint32, n)
		for i := range order {
			order[i] = uint32(i)
		}
		sort.Slice(order, func(i, j int) bool { return k.var2level[order[i]] < k.var2level[order[j]] })
		for lvl, v := range order {
			dst.var2level[v] = uint32(lvl)
			dst.level2var[lvl] = v
		}
		for i := range dst.replaceMaps {
			dst.rebuildReplaceMap(&dst.replaceMaps[i])
		}
		dst.clearCaches()
	}
	memo := map[Ref]Ref{False: False, True: True}
	mark := dst.TempMark()
	defer dst.TempRelease(mark)
	// Recursion depth is bounded by the variable count: levels strictly
	// increase downward, exactly as in Save's topological visit.
	var copyNode func(Ref) (Ref, error)
	copyNode = func(f Ref) (Ref, error) {
		if f == Invalid {
			return Invalid, fmt.Errorf("bdd: CopyTo of Invalid ref")
		}
		if g, ok := memo[f]; ok {
			return g, nil
		}
		v := k.level2var[k.level[f]]
		if int(v) >= dst.numVars {
			return Invalid, fmt.Errorf("bdd: CopyTo needs variable %d, destination has %d", v, dst.numVars)
		}
		dl := dst.var2level[v]
		low, err := copyNode(k.low[f])
		if err != nil {
			return Invalid, err
		}
		high, err := copyNode(k.high[f])
		if err != nil {
			return Invalid, err
		}
		if uint32(dst.Level(low)) <= dl || uint32(dst.Level(high)) <= dl {
			return Invalid, fmt.Errorf("bdd: CopyTo: destination variable order is incompatible with the source's")
		}
		g := dst.makeNode(dl, low, high)
		if g == Invalid {
			return Invalid, dst.Err()
		}
		dst.TempKeep(g)
		memo[f] = g
		return g, nil
	}
	out := make([]Ref, len(roots))
	for i, r := range roots {
		g, err := copyNode(r)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}
