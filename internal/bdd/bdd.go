// Package bdd implements Reduced Ordered Binary Decision Diagrams (ROBDDs)
// with a shared unique-node table, memoized boolean operations, variable
// quantification, combined apply-quantify operations (the analogues of
// BuDDy's bdd_appex and bdd_appall), ordered variable replacement, garbage
// collection with external reference pinning, dynamic variable reordering
// (Rudell sifting, see reorder.go), and a configurable node budget that
// aborts operations whose intermediate results explode.
//
// The package is a from-scratch substitute for the BuDDy C library used by
// the paper "Fast Identification of Relational Constraint Violations"
// (ICDE 2007). Node canonicity (Bryant 1986) is maintained at all times:
// two logically equivalent functions built in the same Kernel always receive
// the same Ref, so validity and satisfiability tests are O(1) comparisons
// against True and False.
//
// Levels and variables are distinct notions: a node's position in the
// diagram is its level (level 0 at the top), while the boolean variable it
// tests is looked up through a level↔variable permutation. A fresh kernel
// starts with the identity permutation (variable i at level i); Reorder and
// SetOrder change it. Everything variable-facing (Var, Literal, Support,
// replacement pairs) speaks variables; the internal recursion and cubes
// compare levels.
//
// Kernels are not safe for concurrent use; callers that share a Kernel
// across goroutines must serialize access.
//
// Several usage contracts of this API are not expressible in Go's type
// system — Refs must stay with the Kernel that minted them (kernelmix),
// TempMark/TempRelease and Protect/Unprotect must balance (tempmark), the
// sticky Err must be consulted at the end of an allocation chain
// (stickyerr), and the sentinel errors below may arrive wrapped
// (sentinelcmp). cmd/cvlint checks all four statically; Config.DebugChecks
// validates the first at run time. See DESIGN.md, section "Static
// contracts".
package bdd

import (
	"errors"
	"fmt"
	"math"
)

// Ref is a handle to a BDD node inside a Kernel. Refs are only meaningful
// relative to the Kernel that produced them. The zero Ref is False.
type Ref int32

// Reserved references.
const (
	// False is the terminal node for the constant false function.
	False Ref = 0
	// True is the terminal node for the constant true function.
	True Ref = 1
	// Invalid is returned by operations that were aborted (see Kernel.Err)
	// or that received invalid arguments. Operations on Invalid propagate
	// Invalid, so a chain of operations needs only one error check at the end.
	Invalid Ref = -1
)

// terminalLevel is the level assigned to the two terminal nodes. It orders
// after every variable level.
const terminalLevel = math.MaxUint32

// freedLevel stamps the level field of swept nodes, so a free-list slot is
// recognizable: garbage collection and reordering both rely on the stamp to
// tell live slots from reclaimed ones, and DebugChecks uses it to catch a
// stale Ref dereferencing a freed slot. It can never collide with a real
// level or with terminalLevel. makeNode overwrites the stamp when the slot
// is reused.
const freedLevel = math.MaxUint32 - 1

// ErrBudget is reported by Kernel.Err when an operation would have grown the
// node table past the configured node budget. The paper's query-processing
// strategy treats this as the signal to abandon BDD evaluation and fall back
// to SQL processing.
var ErrBudget = errors.New("bdd: node budget exceeded")

// ErrOrder is reported when a Replace mapping does not preserve the relative
// variable order, which the linear replace algorithm requires.
var ErrOrder = errors.New("bdd: replacement does not preserve variable order")

// Config controls the construction of a Kernel.
type Config struct {
	// Vars is the number of boolean variables. A fresh kernel places
	// variable i at level i (the identity order); Reorder and SetOrder can
	// change the placement later.
	Vars int
	// NodeBudget, when positive, bounds the number of live nodes. An
	// operation that needs to allocate past the budget is aborted: it
	// returns Invalid and Kernel.Err reports ErrBudget.
	NodeBudget int
	// CacheSize fixes the number of entries in each operation cache
	// (rounded up to a power of two). Zero selects dynamic sizing: each
	// cache starts small and grows with its own observed demand (the apply
	// cache with the node table, the quantification and replacement caches
	// with their lookup counts), up to per-cache maxima — small kernels
	// stay cheap to create, large workloads still get large caches.
	CacheSize int
	// InitialNodes sizes the initial node table. Zero selects a default.
	InitialNodes int
	// DebugChecks enables runtime validation of every Ref entering a kernel
	// operation: out-of-table handles (a Ref minted by a different kernel)
	// and handles to GC-freed nodes (a missing Protect/TempKeep pin) panic
	// at the operation boundary instead of silently denoting an unrelated
	// node. See also SetDebugChecks. The mode costs a few comparisons per
	// operation; it is meant for tests and soak runs, not production paths.
	DebugChecks bool
}

// Kernel owns a shared node table and the operation caches. All Refs handed
// out by a Kernel remain valid while they are pinned (see Protect) or
// reachable from a pinned Ref; unpinned, unreachable nodes may be reclaimed
// by garbage collection between operations. Reordering (see reorder.go)
// also preserves pinned Refs: a node keeps its index while its function is
// rewritten in place.
//
// The node table is struct-of-arrays: the level, low, high, chain and pin
// fields of node i live in five parallel slices instead of one 20-byte
// struct. The hot makeNode/apply recursion touches level/low/high of many
// nodes but next only on hash probes and refs almost never, so splitting
// the arrays keeps the traversed fields dense in cache.
type Kernel struct {
	// node table, struct-of-arrays; index 0 and 1 are the terminals
	level []uint32 // variable level; terminalLevel for True/False, freedLevel for free slots
	low   []Ref    // 0-successor
	high  []Ref    // 1-successor
	next  []int32  // unique-table hash chain; -1 terminates; free-list link for freed slots
	refs  []int32  // external pin count; nodes with refs>0 are GC roots

	buckets []int32 // unique table heads, len is a power of two
	free    int32   // head of free list threaded through next; -1 empty
	live    int     // number of live (non-free) nodes, including terminals
	numVars int

	// level↔variable permutation; identity until a reorder changes it
	var2level []uint32 // var2level[v] is the level of variable v
	level2var []uint32 // level2var[l] is the variable at level l

	budget      int
	gcTrigger   int // run GC when live exceeds this at an operation boundary
	err         error
	debugChecks bool // validate Refs at operation boundaries (Config.DebugChecks)

	applyCache   []applyEntry
	quantCache   []quantEntry
	replaceCache []replaceEntry
	applyMask    uint32
	quantMask    uint32
	replaceMask  uint32
	cacheEpoch   uint32 // entries from older epochs are invalid (cheap GC-time flush)
	maxCache     int    // the apply cache stops doubling at this size
	fixedCache   bool   // Config.CacheSize pinned all three cache sizes
	tempRoots    []Ref  // GC roots for in-flight computations (TempKeep)

	replaceMaps []replaceMap // interned variable substitutions
	groups      [][]int      // variable groups that sift as units (reorder.go)

	// statistics
	gcCount        int
	appliedCount   uint64
	allocCount     uint64 // nodes allocated, monotonic (GC never lowers it)
	peak           int    // largest live ever observed
	applyLookups   uint64
	applyHits      uint64
	quantLookups   uint64
	quantHits      uint64
	replaceLookups uint64
	replaceHits    uint64
	reorderRuns    int
	reorderSaved   uint64 // cumulative live-node drop across reorders
}

type applyEntry struct {
	f, g, res Ref
	op        uint32
	epoch     uint32
}

type quantEntry struct {
	f, g, cube, res Ref
	op              uint32
	epoch           uint32
}

type replaceEntry struct {
	f, res Ref
	mapID  int32
	epoch  uint32
}

type replaceMap struct {
	// pairs holds the registered variable substitution (source variable,
	// target variable); the level-indexed form below is derived from it and
	// rebuilt whenever the variable order or count changes.
	pairs [][2]int
	// dense per-level target level; identity where unchanged
	target []uint32
	// lastLevel is the largest level that is remapped; recursion can stop
	// once the current level exceeds it.
	lastLevel uint32
	// valid is false when the current variable order breaks the map's
	// monotonicity, making a single linear pass impossible; Replace then
	// reports ErrOrder.
	valid bool
}

const (
	opAnd uint32 = iota + 1
	opOr
	opXor
	opDiff // f ∧ ¬g
	opImp  // ¬f ∨ g
	opBiimp
	opNot
	opExists
	opForall
	opAppEx  // ∃cube (f ∧ g)
	opAppAll // ∀cube (f ∨ g)
)

const (
	defaultMaxCacheSize   = 1 << 18
	initialCacheSize      = 1 << 12
	initialSmallCacheSize = 1 << 10
	defaultInitialNodes   = 1 << 12
	minBuckets            = 1 << 10
)

// New creates a Kernel with cfg.Vars boolean variables.
func New(cfg Config) *Kernel {
	if cfg.Vars < 0 {
		panic("bdd: negative variable count")
	}
	applySize := initialCacheSize
	smallSize := initialSmallCacheSize
	maxCache := defaultMaxCacheSize
	fixed := false
	if cfg.CacheSize > 0 {
		applySize = ceilPow2(cfg.CacheSize)
		smallSize = applySize
		maxCache = applySize
		fixed = true
	}
	initial := cfg.InitialNodes
	if initial < 16 {
		initial = defaultInitialNodes
	}
	k := &Kernel{
		numVars:      cfg.Vars,
		budget:       cfg.NodeBudget,
		debugChecks:  cfg.DebugChecks,
		applyCache:   make([]applyEntry, applySize),
		quantCache:   make([]quantEntry, smallSize),
		replaceCache: make([]replaceEntry, smallSize),
		applyMask:    uint32(applySize - 1),
		quantMask:    uint32(smallSize - 1),
		replaceMask:  uint32(smallSize - 1),
		maxCache:     maxCache,
		fixedCache:   fixed,
		free:         -1,
	}
	k.level = append(make([]uint32, 0, initial), terminalLevel, terminalLevel)
	k.low = append(make([]Ref, 0, initial), False, False)
	k.high = append(make([]Ref, 0, initial), True, True)
	k.next = append(make([]int32, 0, initial), -1, -1)
	k.refs = append(make([]int32, 0, initial), 1, 1) // terminals are permanently pinned
	k.live = 2
	k.peak = 2
	k.buckets = make([]int32, minBuckets)
	for i := range k.buckets {
		k.buckets[i] = -1
	}
	k.var2level = make([]uint32, cfg.Vars)
	k.level2var = make([]uint32, cfg.Vars)
	for i := 0; i < cfg.Vars; i++ {
		k.var2level[i] = uint32(i)
		k.level2var[i] = uint32(i)
	}
	k.resetGCTrigger()
	k.cacheEpoch = 1 // zero-valued entries never match
	return k
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (k *Kernel) resetGCTrigger() {
	// Collections clear the operation caches, so collecting too eagerly
	// costs recomputation; with a budget in place, let the table run up to
	// three quarters of it before collecting.
	k.gcTrigger = k.live*2 + 65536
	if k.budget > 0 {
		if t := k.budget * 3 / 4; t > k.gcTrigger {
			k.gcTrigger = t
		} else if k.gcTrigger > k.budget {
			k.gcTrigger = k.budget
		}
	}
}

// NumVars returns the number of boolean variables in the kernel.
func (k *Kernel) NumVars() int { return k.numVars }

// AddVars appends n fresh variables at the bottom of the variable order and
// returns the index of the first. Existing Refs are unaffected: the new
// variables order after every existing one. The finite-domain layer uses
// this to allocate variable blocks on demand as indices are created.
func (k *Kernel) AddVars(n int) int {
	if n < 0 {
		panic("bdd: negative variable count")
	}
	base := k.numVars
	k.numVars += n
	for i := base; i < k.numVars; i++ {
		k.var2level = append(k.var2level, uint32(i))
		k.level2var = append(k.level2var, uint32(i))
	}
	for i := range k.replaceMaps {
		k.rebuildReplaceMap(&k.replaceMaps[i])
	}
	return base
}

// Err returns the sticky error state of the kernel: nil, or ErrBudget after
// an aborted operation. The error must be cleared with ClearErr before the
// kernel accepts further work.
func (k *Kernel) Err() error { return k.err }

// ClearErr resets the sticky error state so the kernel can be used again
// (typically after the caller has fallen back to SQL evaluation). Any
// Invalid refs obtained from aborted operations remain invalid.
func (k *Kernel) ClearErr() { k.err = nil }

// Size returns the number of live nodes in the shared table, including the
// two terminals.
func (k *Kernel) Size() int { return k.live }

// GCCount returns how many garbage collections have run.
func (k *Kernel) GCCount() int { return k.gcCount }

// OpCount returns the number of recursive apply steps executed. It is a
// cheap proxy for work performed, used by benchmarks.
func (k *Kernel) OpCount() uint64 { return k.appliedCount }

// CacheHits returns the number of operation-cache hits across all three
// caches.
func (k *Kernel) CacheHits() uint64 { return k.applyHits + k.quantHits + k.replaceHits }

// Level returns the level (position in the current variable order, 0 at the
// top) of node f, or NumVars() for the terminals. Use VarOf for the boolean
// variable f tests; the two coincide only under the identity order.
func (k *Kernel) Level(f Ref) int {
	if k.isTerminal(f) {
		return k.numVars
	}
	return int(k.level[f])
}

// VarOf returns the boolean variable tested by node f, or NumVars() for the
// terminals.
func (k *Kernel) VarOf(f Ref) int {
	if k.isTerminal(f) {
		return k.numVars
	}
	return int(k.level2var[k.level[f]])
}

// LevelOfVar returns the level at which variable v is currently placed.
func (k *Kernel) LevelOfVar(v int) int {
	k.checkVar(v)
	return int(k.var2level[v])
}

// VarAtLevel returns the variable currently placed at the given level.
func (k *Kernel) VarAtLevel(level int) int {
	if level < 0 || level >= k.numVars {
		panic(fmt.Sprintf("bdd: level %d out of range [0,%d)", level, k.numVars))
	}
	return int(k.level2var[level])
}

// VarOrder returns the current variable order as a fresh slice: entry l is
// the variable placed at level l.
func (k *Kernel) VarOrder() []int {
	out := make([]int, k.numVars)
	for l, v := range k.level2var {
		out[l] = int(v)
	}
	return out
}

// Low returns the 0-successor of f. f must not be a terminal.
func (k *Kernel) Low(f Ref) Ref { return k.low[f] }

// High returns the 1-successor of f. f must not be a terminal.
func (k *Kernel) High(f Ref) Ref { return k.high[f] }

func (k *Kernel) isTerminal(f Ref) bool { return f == False || f == True }

// IsTerminal reports whether f is one of the constant functions.
func (k *Kernel) IsTerminal(f Ref) bool { return k.isTerminal(f) }

// Var returns the BDD of the single-variable function x_i.
func (k *Kernel) Var(i int) Ref {
	k.checkVar(i)
	return k.makeNode(k.var2level[i], False, True)
}

// NVar returns the BDD of the negated single-variable function ¬x_i.
func (k *Kernel) NVar(i int) Ref {
	k.checkVar(i)
	return k.makeNode(k.var2level[i], True, False)
}

func (k *Kernel) checkVar(i int) {
	if i < 0 || i >= k.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, k.numVars))
	}
}

// TempMark returns the current depth of the temporary-root stack, for a
// later TempRelease. cmd/cvlint's tempmark analyzer verifies statically
// that every TempMark is released on all exit paths.
func (k *Kernel) TempMark() int { return len(k.tempRoots) }

// TempKeep pushes f onto the temporary-root stack, protecting it from
// garbage collection until the enclosing TempRelease. Computations that
// hold intermediate Refs in local variables across further kernel
// operations (an evaluator accumulating conjuncts, for example) must keep
// them: garbage collection can trigger at any operation boundary, and only
// pinned nodes, temp roots and the current operation's operands survive.
func (k *Kernel) TempKeep(f Ref) Ref {
	if f > True {
		if k.debugChecks {
			k.checkRef(f)
		}
		k.tempRoots = append(k.tempRoots, f)
	}
	return f
}

// TempRelease pops the temporary-root stack down to a mark previously
// returned by TempMark.
func (k *Kernel) TempRelease(mark int) {
	if mark < 0 || mark > len(k.tempRoots) {
		panic("bdd: invalid TempRelease mark")
	}
	k.tempRoots = k.tempRoots[:mark]
}

// Protect pins f (and, transitively, everything reachable from it) against
// garbage collection. Each Protect must be balanced by an Unprotect. Refs
// that are only held in caller data structures across unrelated kernel
// operations must be protected; operands and results of the current
// operation are safe without pinning, and short-lived intermediates should
// use TempKeep/TempRelease. cmd/cvlint's tempmark analyzer flags pins that
// are neither unprotected locally nor handed to a longer-lived owner.
func (k *Kernel) Protect(f Ref) Ref {
	if f > True { // terminals and Invalid need no pinning
		if k.debugChecks {
			k.checkRef(f)
		}
		k.refs[f]++
	}
	return f
}

// Unprotect releases one pin previously placed by Protect.
func (k *Kernel) Unprotect(f Ref) {
	if f > True {
		if k.refs[f] == 0 {
			panic("bdd: unbalanced Unprotect")
		}
		k.refs[f]--
	}
}

// MakeNode returns the canonical node testing variable v with the given
// cofactors. Both cofactors must be terminals or nodes at strictly greater
// levels; MakeNode panics otherwise, because a violation would silently
// break canonicity. It exists for bulk constructions (the finite-domain
// layer's sorted-tuple relation builder) that assemble BDDs bottom-up
// without going through apply.
func (k *Kernel) MakeNode(v uint32, low, high Ref) Ref {
	if int(v) >= k.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, k.numVars))
	}
	if low == Invalid || high == Invalid {
		return Invalid
	}
	level := k.var2level[v]
	if uint32(k.Level(low)) <= level || uint32(k.Level(high)) <= level {
		panic("bdd: MakeNode cofactor level violates the variable order")
	}
	return k.makeNode(level, low, high)
}

// makeNode returns the canonical node (level, low, high), interning it if
// necessary. It implements both ROBDD reduction rules: redundant tests
// (low == high) are skipped and isomorphic nodes are shared.
func (k *Kernel) makeNode(level uint32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if low == Invalid || high == Invalid {
		return Invalid
	}
	h := nodeHash(level, low, high) & uint32(len(k.buckets)-1)
	for i := k.buckets[h]; i >= 0; i = k.next[i] {
		if k.level[i] == level && k.low[i] == low && k.high[i] == high {
			return Ref(i)
		}
	}
	if k.budget > 0 && k.live >= k.budget {
		k.err = ErrBudget
		return Invalid
	}
	var idx int32
	if k.free >= 0 {
		idx = k.free
		k.free = k.next[idx]
		k.level[idx], k.low[idx], k.high[idx] = level, low, high
		k.refs[idx] = 0
	} else {
		k.level = append(k.level, level)
		k.low = append(k.low, low)
		k.high = append(k.high, high)
		k.next = append(k.next, 0)
		k.refs = append(k.refs, 0)
		idx = int32(len(k.level) - 1)
	}
	k.next[idx] = k.buckets[h]
	k.buckets[h] = idx
	k.live++
	k.allocCount++
	if k.live > k.peak {
		k.peak = k.live
	}
	if k.live > len(k.buckets)*3/4 {
		k.growBuckets()
	}
	if !k.fixedCache && k.live > len(k.applyCache) && len(k.applyCache) < k.maxCache {
		k.growApplyCache()
	}
	return Ref(idx)
}

// growApplyCache doubles the apply cache. It may run in the middle of an
// operation; entry pointers into the old array then write stale memory,
// which only loses those cache entries. The quantification and replacement
// caches grow on their own lookup demand (see quant.go, replace.go).
func (k *Kernel) growApplyCache() {
	size := len(k.applyCache) * 2
	k.applyCache = make([]applyEntry, size)
	k.applyMask = uint32(size - 1)
}

func nodeHash(level uint32, low, high Ref) uint32 {
	h := level*0x9e3779b9 ^ uint32(low)*0x85ebca6b ^ uint32(high)*0xc2b2ae35
	h ^= h >> 15
	h *= 0x27d4eb2f
	h ^= h >> 13
	return h
}

func (k *Kernel) growBuckets() {
	nb := make([]int32, len(k.buckets)*2)
	for i := range nb {
		nb[i] = -1
	}
	mask := uint32(len(nb) - 1)
	// Re-thread every live node by walking the existing chains (the free
	// list stays untouched: it is threaded through next but never reachable
	// from a bucket head).
	for _, head := range k.buckets {
		for i := head; i >= 0; {
			nxt := k.next[i]
			h := nodeHash(k.level[i], k.low[i], k.high[i]) & mask
			k.next[i] = nb[h]
			nb[h] = i
			i = nxt
		}
	}
	k.buckets = nb
}

// clearCaches invalidates every operation-cache entry by advancing the
// epoch; entries are validated against the current epoch on lookup, so the
// flush is O(1) instead of rewriting megabytes of cache memory.
func (k *Kernel) clearCaches() {
	k.cacheEpoch++
}

// ClearCaches drops every operation-cache entry (O(1): it advances the
// cache epoch). Results are unaffected — only memoization is lost, so the
// next operations pay full cost. Benchmarks use it to measure the
// cold-cache regime a freshly replicated kernel is in right after adopting
// a new version.
func (k *Kernel) ClearCaches() {
	k.clearCaches()
}

// gcIfNeeded runs a mark-and-sweep collection when the table has grown past
// the trigger. It is called only at operation boundaries; roots are the
// pinned nodes plus the operands of the pending operation. Under DebugChecks
// it doubles as the Ref-liveness checkpoint: every operand is validated
// before it can be marked as a root or recursed into.
func (k *Kernel) gcIfNeeded(operands ...Ref) {
	if k.debugChecks {
		for _, f := range operands {
			k.checkRef(f)
		}
	}
	if k.live < k.gcTrigger {
		return
	}
	k.GC(operands...)
}

// SetDebugChecks switches runtime Ref validation (see Config.DebugChecks) on
// or off. Freed slots carry the freedLevel stamp at all times, so handles
// freed before the switch are caught too.
func (k *Kernel) SetDebugChecks(on bool) {
	k.debugChecks = on
}

// checkRef panics when f cannot be a live handle of this kernel. Invalid is
// permitted: it is the documented abort value and propagates through every
// operation by design.
func (k *Kernel) checkRef(f Ref) {
	if f == Invalid {
		return
	}
	if f < 0 || int(f) >= len(k.level) {
		panic(fmt.Sprintf("bdd: Ref %d outside the node table (len %d); was it minted by a different kernel?", f, len(k.level)))
	}
	if k.level[f] == freedLevel {
		panic(fmt.Sprintf("bdd: Ref %d names a node reclaimed by GC; missing Protect or TempKeep pin?", f))
	}
}

// GC runs a mark-and-sweep garbage collection. Pinned nodes (Protect) and
// the supplied extra roots survive; all other nodes are reclaimed and their
// table slots recycled. All operation caches are invalidated.
func (k *Kernel) GC(extraRoots ...Ref) {
	marked := make([]bool, len(k.level))
	marked[False] = true
	marked[True] = true
	var stack []Ref
	push := func(f Ref) {
		if f > True && !marked[f] {
			marked[f] = true
			stack = append(stack, f)
		}
	}
	for i := 2; i < len(k.level); i++ {
		if k.refs[i] > 0 && k.level[i] != freedLevel {
			push(Ref(i))
		}
	}
	for _, r := range k.tempRoots {
		push(r)
	}
	for _, r := range extraRoots {
		push(r)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push(k.low[f])
		push(k.high[f])
	}
	// Sweep: rebuild bucket chains from marked nodes, thread the rest onto
	// the free list.
	for i := range k.buckets {
		k.buckets[i] = -1
	}
	k.free = -1
	k.live = 2
	mask := uint32(len(k.buckets) - 1)
	for i := 2; i < len(k.level); i++ {
		if marked[i] {
			h := nodeHash(k.level[i], k.low[i], k.high[i]) & mask
			k.next[i] = k.buckets[h]
			k.buckets[h] = int32(i)
			k.live++
		} else {
			k.next[i] = k.free
			k.refs[i] = 0
			k.level[i] = freedLevel
			k.free = int32(i)
		}
	}
	k.clearCaches()
	k.gcCount++
	k.resetGCTrigger()
}
