// Package bdd implements Reduced Ordered Binary Decision Diagrams (ROBDDs)
// with a shared unique-node table, memoized boolean operations, variable
// quantification, combined apply-quantify operations (the analogues of
// BuDDy's bdd_appex and bdd_appall), ordered variable replacement, garbage
// collection with external reference pinning, and a configurable node budget
// that aborts operations whose intermediate results explode.
//
// The package is a from-scratch substitute for the BuDDy C library used by
// the paper "Fast Identification of Relational Constraint Violations"
// (ICDE 2007). Node canonicity (Bryant 1986) is maintained at all times:
// two logically equivalent functions built in the same Kernel always receive
// the same Ref, so validity and satisfiability tests are O(1) comparisons
// against True and False.
//
// Kernels are not safe for concurrent use; callers that share a Kernel
// across goroutines must serialize access.
//
// Several usage contracts of this API are not expressible in Go's type
// system — Refs must stay with the Kernel that minted them (kernelmix),
// TempMark/TempRelease and Protect/Unprotect must balance (tempmark), the
// sticky Err must be consulted at the end of an allocation chain
// (stickyerr), and the sentinel errors below may arrive wrapped
// (sentinelcmp). cmd/cvlint checks all four statically; Config.DebugChecks
// validates the first at run time. See DESIGN.md, section "Static
// contracts".
package bdd

import (
	"errors"
	"fmt"
	"math"
)

// Ref is a handle to a BDD node inside a Kernel. Refs are only meaningful
// relative to the Kernel that produced them. The zero Ref is False.
type Ref int32

// Reserved references.
const (
	// False is the terminal node for the constant false function.
	False Ref = 0
	// True is the terminal node for the constant true function.
	True Ref = 1
	// Invalid is returned by operations that were aborted (see Kernel.Err)
	// or that received invalid arguments. Operations on Invalid propagate
	// Invalid, so a chain of operations needs only one error check at the end.
	Invalid Ref = -1
)

// terminalLevel is the level assigned to the two terminal nodes. It orders
// after every variable level.
const terminalLevel = math.MaxUint32

// freedLevel stamps the level field of swept nodes while DebugChecks is
// enabled, so a stale Ref dereferencing a freed slot is recognizable. It can
// never collide with a real level (levels are variable indices) or with
// terminalLevel. makeNode overwrites the stamp when the slot is reused.
const freedLevel = math.MaxUint32 - 1

// ErrBudget is reported by Kernel.Err when an operation would have grown the
// node table past the configured node budget. The paper's query-processing
// strategy treats this as the signal to abandon BDD evaluation and fall back
// to SQL processing.
var ErrBudget = errors.New("bdd: node budget exceeded")

// ErrOrder is reported when a Replace mapping does not preserve the relative
// variable order, which the linear replace algorithm requires.
var ErrOrder = errors.New("bdd: replacement does not preserve variable order")

// node is one entry of the shared node table. The struct is 20 bytes, the
// same per-node overhead the paper reports for its BuDDy configuration.
type node struct {
	level uint32 // variable level; terminalLevel for True/False
	low   Ref    // 0-successor
	high  Ref    // 1-successor
	next  int32  // unique-table hash chain; -1 terminates
	refs  int32  // external pin count; nodes with refs>0 are GC roots
}

// Config controls the construction of a Kernel.
type Config struct {
	// Vars is the number of boolean variables. Levels and variable indices
	// coincide: variable i is tested at level i, with level 0 at the top.
	Vars int
	// NodeBudget, when positive, bounds the number of live nodes. An
	// operation that needs to allocate past the budget is aborted: it
	// returns Invalid and Kernel.Err reports ErrBudget.
	NodeBudget int
	// CacheSize fixes the number of entries in each operation cache
	// (rounded up to a power of two). Zero selects dynamic sizing: caches
	// start small and double as the node table grows, up to a default
	// maximum — small kernels stay cheap to create, large workloads still
	// get large caches.
	CacheSize int
	// InitialNodes sizes the initial node table. Zero selects a default.
	InitialNodes int
	// DebugChecks enables runtime validation of every Ref entering a kernel
	// operation: out-of-table handles (a Ref minted by a different kernel)
	// and handles to GC-freed nodes (a missing Protect/TempKeep pin) panic
	// at the operation boundary instead of silently denoting an unrelated
	// node. See also SetDebugChecks. The mode costs a few comparisons per
	// operation plus a level stamp per freed node during GC; it is meant for
	// tests and soak runs, not production paths.
	DebugChecks bool
}

// Kernel owns a shared node table and the operation caches. All Refs handed
// out by a Kernel remain valid while they are pinned (see Protect) or
// reachable from a pinned Ref; unpinned, unreachable nodes may be reclaimed
// by garbage collection between operations.
type Kernel struct {
	nodes   []node
	buckets []int32 // unique table heads, len is a power of two
	free    int32   // head of free list threaded through node.next; -1 empty
	live    int     // number of live (non-free) nodes, including terminals
	numVars int

	budget      int
	gcTrigger   int // run GC when live exceeds this at an operation boundary
	err         error
	debugChecks bool // validate Refs at operation boundaries (Config.DebugChecks)

	applyCache   []applyEntry
	quantCache   []quantEntry
	replaceCache []replaceEntry
	cacheMask    uint32
	cacheEpoch   uint32 // entries from older epochs are invalid (cheap GC-time flush)
	maxCache     int    // dynamic caches stop doubling at this size
	tempRoots    []Ref  // GC roots for in-flight computations (TempKeep)

	replaceMaps []replaceMap // interned variable substitutions

	// statistics
	gcCount      int
	appliedCount uint64
	cacheHits    uint64
	allocCount   uint64 // nodes allocated, monotonic (GC never lowers it)
	peak         int    // largest live ever observed
}

type applyEntry struct {
	f, g, res Ref
	op        uint32
	epoch     uint32
}

type quantEntry struct {
	f, g, cube, res Ref
	op              uint32
	epoch           uint32
}

type replaceEntry struct {
	f, res Ref
	mapID  int32
	epoch  uint32
}

type replaceMap struct {
	// dense per-level target variable; identity where unchanged
	target []uint32
	// topLevel is the smallest level that is remapped; recursion can stop
	// once the current level exceeds lastLevel.
	lastLevel uint32
}

const (
	opAnd uint32 = iota + 1
	opOr
	opXor
	opDiff // f ∧ ¬g
	opImp  // ¬f ∨ g
	opBiimp
	opNot
	opExists
	opForall
	opAppEx  // ∃cube (f ∧ g)
	opAppAll // ∀cube (f ∨ g)
)

const (
	defaultMaxCacheSize = 1 << 18
	initialCacheSize    = 1 << 12
	defaultInitialNodes = 1 << 12
	minBuckets          = 1 << 10
)

// New creates a Kernel with cfg.Vars boolean variables.
func New(cfg Config) *Kernel {
	if cfg.Vars < 0 {
		panic("bdd: negative variable count")
	}
	cache := initialCacheSize
	maxCache := defaultMaxCacheSize
	if cfg.CacheSize > 0 {
		cache = ceilPow2(cfg.CacheSize)
		maxCache = cache
	}
	initial := cfg.InitialNodes
	if initial < 16 {
		initial = defaultInitialNodes
	}
	k := &Kernel{
		numVars:      cfg.Vars,
		budget:       cfg.NodeBudget,
		debugChecks:  cfg.DebugChecks,
		applyCache:   make([]applyEntry, cache),
		quantCache:   make([]quantEntry, cache),
		replaceCache: make([]replaceEntry, cache),
		cacheMask:    uint32(cache - 1),
		maxCache:     maxCache,
		free:         -1,
	}
	k.nodes = make([]node, 2, initial)
	k.nodes[False] = node{level: terminalLevel, low: False, high: True, next: -1}
	k.nodes[True] = node{level: terminalLevel, low: False, high: True, next: -1}
	k.nodes[False].refs = 1 // terminals are permanently pinned
	k.nodes[True].refs = 1
	k.live = 2
	k.peak = 2
	k.buckets = make([]int32, minBuckets)
	for i := range k.buckets {
		k.buckets[i] = -1
	}
	k.resetGCTrigger()
	k.cacheEpoch = 1 // zero-valued entries never match
	return k
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (k *Kernel) resetGCTrigger() {
	// Collections clear the operation caches, so collecting too eagerly
	// costs recomputation; with a budget in place, let the table run up to
	// three quarters of it before collecting.
	k.gcTrigger = k.live*2 + 65536
	if k.budget > 0 {
		if t := k.budget * 3 / 4; t > k.gcTrigger {
			k.gcTrigger = t
		} else if k.gcTrigger > k.budget {
			k.gcTrigger = k.budget
		}
	}
}

// NumVars returns the number of boolean variables in the kernel.
func (k *Kernel) NumVars() int { return k.numVars }

// AddVars appends n fresh variables at the bottom of the variable order and
// returns the index of the first. Existing Refs are unaffected: the new
// variables order after every existing one. The finite-domain layer uses
// this to allocate variable blocks on demand as indices are created.
func (k *Kernel) AddVars(n int) int {
	if n < 0 {
		panic("bdd: negative variable count")
	}
	base := k.numVars
	k.numVars += n
	for i := range k.replaceMaps {
		m := &k.replaceMaps[i]
		for v := len(m.target); v < k.numVars; v++ {
			m.target = append(m.target, uint32(v))
		}
	}
	return base
}

// Err returns the sticky error state of the kernel: nil, or ErrBudget after
// an aborted operation. The error must be cleared with ClearErr before the
// kernel accepts further work.
func (k *Kernel) Err() error { return k.err }

// ClearErr resets the sticky error state so the kernel can be used again
// (typically after the caller has fallen back to SQL evaluation). Any
// Invalid refs obtained from aborted operations remain invalid.
func (k *Kernel) ClearErr() { k.err = nil }

// Size returns the number of live nodes in the shared table, including the
// two terminals.
func (k *Kernel) Size() int { return k.live }

// GCCount returns how many garbage collections have run.
func (k *Kernel) GCCount() int { return k.gcCount }

// OpCount returns the number of recursive apply steps executed. It is a
// cheap proxy for work performed, used by benchmarks.
func (k *Kernel) OpCount() uint64 { return k.appliedCount }

// CacheHits returns the number of operation-cache hits.
func (k *Kernel) CacheHits() uint64 { return k.cacheHits }

// Level returns the variable level tested by node f, or NumVars() for the
// terminals.
func (k *Kernel) Level(f Ref) int {
	if k.isTerminal(f) {
		return k.numVars
	}
	return int(k.nodes[f].level)
}

// Low returns the 0-successor of f. f must not be a terminal.
func (k *Kernel) Low(f Ref) Ref { return k.nodes[f].low }

// High returns the 1-successor of f. f must not be a terminal.
func (k *Kernel) High(f Ref) Ref { return k.nodes[f].high }

func (k *Kernel) isTerminal(f Ref) bool { return f == False || f == True }

// IsTerminal reports whether f is one of the constant functions.
func (k *Kernel) IsTerminal(f Ref) bool { return k.isTerminal(f) }

// Var returns the BDD of the single-variable function x_i.
func (k *Kernel) Var(i int) Ref {
	k.checkVar(i)
	return k.makeNode(uint32(i), False, True)
}

// NVar returns the BDD of the negated single-variable function ¬x_i.
func (k *Kernel) NVar(i int) Ref {
	k.checkVar(i)
	return k.makeNode(uint32(i), True, False)
}

func (k *Kernel) checkVar(i int) {
	if i < 0 || i >= k.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, k.numVars))
	}
}

// TempMark returns the current depth of the temporary-root stack, for a
// later TempRelease. cmd/cvlint's tempmark analyzer verifies statically
// that every TempMark is released on all exit paths.
func (k *Kernel) TempMark() int { return len(k.tempRoots) }

// TempKeep pushes f onto the temporary-root stack, protecting it from
// garbage collection until the enclosing TempRelease. Computations that
// hold intermediate Refs in local variables across further kernel
// operations (an evaluator accumulating conjuncts, for example) must keep
// them: garbage collection can trigger at any operation boundary, and only
// pinned nodes, temp roots and the current operation's operands survive.
func (k *Kernel) TempKeep(f Ref) Ref {
	if f > True {
		if k.debugChecks {
			k.checkRef(f)
		}
		k.tempRoots = append(k.tempRoots, f)
	}
	return f
}

// TempRelease pops the temporary-root stack down to a mark previously
// returned by TempMark.
func (k *Kernel) TempRelease(mark int) {
	if mark < 0 || mark > len(k.tempRoots) {
		panic("bdd: invalid TempRelease mark")
	}
	k.tempRoots = k.tempRoots[:mark]
}

// Protect pins f (and, transitively, everything reachable from it) against
// garbage collection. Each Protect must be balanced by an Unprotect. Refs
// that are only held in caller data structures across unrelated kernel
// operations must be protected; operands and results of the current
// operation are safe without pinning, and short-lived intermediates should
// use TempKeep/TempRelease. cmd/cvlint's tempmark analyzer flags pins that
// are neither unprotected locally nor handed to a longer-lived owner.
func (k *Kernel) Protect(f Ref) Ref {
	if f > True { // terminals and Invalid need no pinning
		if k.debugChecks {
			k.checkRef(f)
		}
		k.nodes[f].refs++
	}
	return f
}

// Unprotect releases one pin previously placed by Protect.
func (k *Kernel) Unprotect(f Ref) {
	if f > True {
		if k.nodes[f].refs == 0 {
			panic("bdd: unbalanced Unprotect")
		}
		k.nodes[f].refs--
	}
}

// MakeNode returns the canonical node testing variable v with the given
// cofactors. Both cofactors must be terminals or nodes at strictly greater
// levels; MakeNode panics otherwise, because a violation would silently
// break canonicity. It exists for bulk constructions (the finite-domain
// layer's sorted-tuple relation builder) that assemble BDDs bottom-up
// without going through apply.
func (k *Kernel) MakeNode(v uint32, low, high Ref) Ref {
	if int(v) >= k.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, k.numVars))
	}
	if low == Invalid || high == Invalid {
		return Invalid
	}
	if uint32(k.Level(low)) <= v || uint32(k.Level(high)) <= v {
		panic("bdd: MakeNode cofactor level violates the variable order")
	}
	return k.makeNode(v, low, high)
}

// makeNode returns the canonical node (level, low, high), interning it if
// necessary. It implements both ROBDD reduction rules: redundant tests
// (low == high) are skipped and isomorphic nodes are shared.
func (k *Kernel) makeNode(level uint32, low, high Ref) Ref {
	if low == high {
		return low
	}
	if low == Invalid || high == Invalid {
		return Invalid
	}
	h := nodeHash(level, low, high) & uint32(len(k.buckets)-1)
	for i := k.buckets[h]; i >= 0; i = k.nodes[i].next {
		n := &k.nodes[i]
		if n.level == level && n.low == low && n.high == high {
			return Ref(i)
		}
	}
	if k.budget > 0 && k.live >= k.budget {
		k.err = ErrBudget
		return Invalid
	}
	var idx int32
	if k.free >= 0 {
		idx = k.free
		k.free = k.nodes[idx].next
	} else {
		k.nodes = append(k.nodes, node{})
		idx = int32(len(k.nodes) - 1)
	}
	k.nodes[idx] = node{level: level, low: low, high: high, next: k.buckets[h]}
	k.buckets[h] = idx
	k.live++
	k.allocCount++
	if k.live > k.peak {
		k.peak = k.live
	}
	if k.live > len(k.buckets)*3/4 {
		k.growBuckets()
	}
	if k.live > len(k.applyCache) && len(k.applyCache) < k.maxCache {
		k.growCaches()
	}
	return Ref(idx)
}

// growCaches doubles the operation caches. It may run in the middle of an
// operation; entry pointers into the old arrays then write stale memory,
// which only loses those cache entries.
func (k *Kernel) growCaches() {
	size := len(k.applyCache) * 2
	k.applyCache = make([]applyEntry, size)
	k.quantCache = make([]quantEntry, size)
	k.replaceCache = make([]replaceEntry, size)
	k.cacheMask = uint32(size - 1)
}

func nodeHash(level uint32, low, high Ref) uint32 {
	h := level*0x9e3779b9 ^ uint32(low)*0x85ebca6b ^ uint32(high)*0xc2b2ae35
	h ^= h >> 15
	h *= 0x27d4eb2f
	h ^= h >> 13
	return h
}

func (k *Kernel) growBuckets() {
	nb := make([]int32, len(k.buckets)*2)
	for i := range nb {
		nb[i] = -1
	}
	mask := uint32(len(nb) - 1)
	// Re-thread every live node. Free nodes are identified by level 0 slots
	// on the free list, so rebuild from the unique chains instead of the
	// free list: walk existing buckets.
	for _, head := range k.buckets {
		for i := head; i >= 0; {
			next := k.nodes[i].next
			n := &k.nodes[i]
			h := nodeHash(n.level, n.low, n.high) & mask
			n.next = nb[h]
			nb[h] = i
			i = next
		}
	}
	k.buckets = nb
}

// clearCaches invalidates every operation-cache entry by advancing the
// epoch; entries are validated against the current epoch on lookup, so the
// flush is O(1) instead of rewriting megabytes of cache memory.
func (k *Kernel) clearCaches() {
	k.cacheEpoch++
}

// gcIfNeeded runs a mark-and-sweep collection when the table has grown past
// the trigger. It is called only at operation boundaries; roots are the
// pinned nodes plus the operands of the pending operation. Under DebugChecks
// it doubles as the Ref-liveness checkpoint: every operand is validated
// before it can be marked as a root or recursed into.
func (k *Kernel) gcIfNeeded(operands ...Ref) {
	if k.debugChecks {
		for _, f := range operands {
			k.checkRef(f)
		}
	}
	if k.live < k.gcTrigger {
		return
	}
	k.GC(operands...)
}

// SetDebugChecks switches runtime Ref validation (see Config.DebugChecks) on
// or off. Enabling it on a kernel that has already collected garbage stamps
// the current free list, so handles freed before the switch are caught too.
func (k *Kernel) SetDebugChecks(on bool) {
	k.debugChecks = on
	if on {
		for i := k.free; i >= 0; i = k.nodes[i].next {
			k.nodes[i].level = freedLevel
		}
	}
}

// checkRef panics when f cannot be a live handle of this kernel. Invalid is
// permitted: it is the documented abort value and propagates through every
// operation by design.
func (k *Kernel) checkRef(f Ref) {
	if f == Invalid {
		return
	}
	if f < 0 || int(f) >= len(k.nodes) {
		panic(fmt.Sprintf("bdd: Ref %d outside the node table (len %d); was it minted by a different kernel?", f, len(k.nodes)))
	}
	if k.nodes[f].level == freedLevel {
		panic(fmt.Sprintf("bdd: Ref %d names a node reclaimed by GC; missing Protect or TempKeep pin?", f))
	}
}

// GC runs a mark-and-sweep garbage collection. Pinned nodes (Protect) and
// the supplied extra roots survive; all other nodes are reclaimed and their
// table slots recycled. All operation caches are invalidated.
func (k *Kernel) GC(extraRoots ...Ref) {
	marked := make([]bool, len(k.nodes))
	marked[False] = true
	marked[True] = true
	var stack []Ref
	push := func(f Ref) {
		if f > True && !marked[f] {
			marked[f] = true
			stack = append(stack, f)
		}
	}
	for i := 2; i < len(k.nodes); i++ {
		if k.nodes[i].refs > 0 {
			push(Ref(i))
		}
	}
	for _, r := range k.tempRoots {
		push(r)
	}
	for _, r := range extraRoots {
		push(r)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push(k.nodes[f].low)
		push(k.nodes[f].high)
	}
	// Sweep: rebuild bucket chains from marked nodes, thread the rest onto
	// the free list.
	for i := range k.buckets {
		k.buckets[i] = -1
	}
	k.free = -1
	k.live = 2
	mask := uint32(len(k.buckets) - 1)
	for i := 2; i < len(k.nodes); i++ {
		n := &k.nodes[i]
		if marked[i] {
			h := nodeHash(n.level, n.low, n.high) & mask
			n.next = k.buckets[h]
			k.buckets[h] = int32(i)
			k.live++
		} else {
			n.next = k.free
			n.refs = 0
			if k.debugChecks {
				n.level = freedLevel
			}
			k.free = int32(i)
		}
	}
	k.clearCaches()
	k.gcCount++
	k.resetGCTrigger()
}
