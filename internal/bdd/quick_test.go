package bdd_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
)

// quick_test.go drives the kernel's algebraic invariants through
// testing/quick: randomly generated formula structures must satisfy the
// boolean and quantifier laws on every draw.

// qExpr wraps a random expression tree for quick.Check.
type qExpr struct {
	e *expr
}

const qVars = 5

// pairConfig generates random expression arguments for quick.Check
// properties.
func pairConfig(seed int64) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(qExpr{e: randExpr(rng, qVars, 2+r.Intn(10))})
			}
		},
	}
}

func TestQuickDeMorganAndDistribution(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: qVars})
	property := func(a, b qExpr) bool {
		f, g := a.e.build(k), b.e.build(k)
		if k.Not(k.And(f, g)) != k.Or(k.Not(f), k.Not(g)) {
			return false
		}
		if k.Not(k.Or(f, g)) != k.And(k.Not(f), k.Not(g)) {
			return false
		}
		if k.And(f, k.Or(f, g)) != f { // absorption
			return false
		}
		if k.Xor(f, g) != k.Xor(g, f) { // commutativity
			return false
		}
		return k.Imp(f, g) == k.Imp(k.Not(g), k.Not(f)) // contraposition
	}
	if err := quick.Check(property, pairConfig(101)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCanonicity(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: qVars})
	all := assignments(qVars)
	property := func(a, b qExpr) bool {
		f, g := a.e.build(k), b.e.build(k)
		equal := true
		for _, asn := range all {
			if a.e.eval(asn) != b.e.eval(asn) {
				equal = false
				break
			}
		}
		// Semantically equal ⇔ identical Ref (Bryant's canonical form).
		return equal == (f == g)
	}
	if err := quick.Check(property, pairConfig(103)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantifierLaws(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: qVars})
	rng := rand.New(rand.NewSource(107))
	property := func(a, b qExpr) bool {
		f, g := a.e.build(k), b.e.build(k)
		x := rng.Intn(qVars)
		cube := k.Cube(x)
		// ∃ distributes over ∨, ∀ over ∧.
		if k.Exists(k.Or(f, g), cube) != k.Or(k.Exists(f, cube), k.Exists(g, cube)) {
			return false
		}
		if k.Forall(k.And(f, g), cube) != k.And(k.Forall(f, cube), k.Forall(g, cube)) {
			return false
		}
		// Monotonicity: ∀x f ⇒ f ⇒ ∃x f  (as implications, both valid).
		if k.Imp(k.Forall(f, cube), f) != bdd.True {
			return false
		}
		if k.Imp(f, k.Exists(f, cube)) != bdd.True {
			return false
		}
		// Combined ops agree with their two-step forms.
		if k.AppEx(f, g, bdd.OpAnd, cube) != k.Exists(k.And(f, g), cube) {
			return false
		}
		return k.AppAll(f, g, bdd.OpOr, cube) == k.Forall(k.Or(f, g), cube)
	}
	if err := quick.Check(property, pairConfig(109)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSatCountConsistency(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: qVars})
	property := func(a, b qExpr) bool {
		f, g := a.e.build(k), b.e.build(k)
		// Inclusion-exclusion: |f| + |g| = |f∨g| + |f∧g|.
		lhs := k.SatCount(f) + k.SatCount(g)
		rhs := k.SatCount(k.Or(f, g)) + k.SatCount(k.And(f, g))
		if lhs != rhs {
			return false
		}
		// Complement: |f| + |¬f| = 2^n.
		return k.SatCount(f)+k.SatCount(k.Not(f)) == float64(int(1)<<qVars)
	}
	if err := quick.Check(property, pairConfig(113)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRestrictShannon(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: qVars})
	rng := rand.New(rand.NewSource(127))
	property := func(a qExpr, _ qExpr) bool {
		f := a.e.build(k)
		x := rng.Intn(qVars)
		hi := k.Restrict(f, []bdd.Literal{{Var: x, Value: true}})
		lo := k.Restrict(f, []bdd.Literal{{Var: x, Value: false}})
		// Shannon expansion: f = (x ∧ f|x=1) ∨ (¬x ∧ f|x=0).
		return f == k.Or(k.And(k.Var(x), hi), k.And(k.NVar(x), lo))
	}
	if err := quick.Check(property, pairConfig(131)); err != nil {
		t.Fatal(err)
	}
}
