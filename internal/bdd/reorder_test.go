package bdd_test

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bdd"
)

// truthTable evaluates f on every assignment of the first nvars variables
// (variable i is bit i of the row index). Everything above nvars must be
// outside f's support.
func truthTable(k *bdd.Kernel, f bdd.Ref, nvars int) []bool {
	tt := make([]bool, 1<<nvars)
	val := make([]bool, k.NumVars())
	for m := range tt {
		for i := 0; i < nvars; i++ {
			val[i] = m&(1<<i) != 0
		}
		tt[m] = k.Eval(f, val)
	}
	return tt
}

// randomFormula builds a random BDD over vars 0..nvars-1, TempKeeping
// intermediates so GC during construction cannot eat them.
func randomFormula(k *bdd.Kernel, rng *rand.Rand, nvars, ops int) bdd.Ref {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	f := k.TempKeep(k.Var(rng.Intn(nvars)))
	for i := 0; i < ops; i++ {
		g := k.Var(rng.Intn(nvars))
		if rng.Intn(2) == 0 {
			g = k.Not(g)
		}
		switch rng.Intn(4) {
		case 0:
			f = k.And(f, g)
		case 1:
			f = k.Or(f, g)
		case 2:
			f = k.Xor(f, g)
		default:
			f = k.Biimp(f, g)
		}
		f = k.TempKeep(f)
	}
	return f
}

func TestReorderPreservesSemanticsRandom(t *testing.T) {
	const nvars = 8
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := bdd.New(bdd.Config{Vars: nvars})
		f := k.Protect(randomFormula(k, rng, nvars, 30))
		g := k.Protect(randomFormula(k, rng, nvars, 30))
		ttF := truthTable(k, f, nvars)
		ttG := truthTable(k, g, nvars)
		stats := k.Reorder(bdd.ReorderOptions{})
		if stats.After != k.Size() {
			t.Fatalf("seed %d: stats.After = %d, Size = %d", seed, stats.After, k.Size())
		}
		for m, want := range ttF {
			got := truthTable(k, f, nvars)[m]
			if got != want {
				t.Fatalf("seed %d: f differs at row %d after Reorder", seed, m)
			}
		}
		for m, want := range ttG {
			if truthTable(k, g, nvars)[m] != want {
				t.Fatalf("seed %d: g differs at row %d after Reorder", seed, m)
			}
		}
		if err := k.Err(); err != nil {
			t.Fatalf("seed %d: kernel error after Reorder: %v", seed, err)
		}
	}
}

func TestSetOrderExactAndReversible(t *testing.T) {
	const nvars = 6
	rng := rand.New(rand.NewSource(42))
	k := bdd.New(bdd.Config{Vars: nvars})
	f := k.Protect(randomFormula(k, rng, nvars, 25))
	before := truthTable(k, f, nvars)

	perm := []int{5, 2, 0, 4, 1, 3}
	if err := k.SetOrder(perm); err != nil {
		t.Fatalf("SetOrder: %v", err)
	}
	got := k.VarOrder()
	for l, v := range perm {
		if got[l] != v {
			t.Fatalf("VarOrder[%d] = %d, want %d", l, got[l], v)
		}
		if k.VarAtLevel(l) != v || k.LevelOfVar(v) != l {
			t.Fatalf("VarAtLevel/LevelOfVar inconsistent at level %d", l)
		}
	}
	after := truthTable(k, f, nvars)
	for m := range before {
		if before[m] != after[m] {
			t.Fatalf("semantics differ at row %d under permuted order", m)
		}
	}
	// And back to identity.
	if err := k.SetOrder([]int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatalf("SetOrder back: %v", err)
	}
	back := truthTable(k, f, nvars)
	for m := range before {
		if before[m] != back[m] {
			t.Fatalf("semantics differ at row %d after round-trip", m)
		}
	}
}

func TestSetOrderRejectsBadPermutations(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 3})
	for _, bad := range [][]int{
		{0, 1},          // wrong length
		{0, 1, 1},       // duplicate
		{0, 1, 3},       // out of range
		{-1, 1, 2},      // negative
		{0, 1, 2, 3, 4}, // too long
	} {
		if err := k.SetOrder(bad); err == nil {
			t.Fatalf("SetOrder(%v) accepted", bad)
		}
	}
}

// The disjoint comparator AND_i (a_i ↔ b_i) is the classic order-sensitive
// function: with all a's above all b's it is exponential in the pair count,
// interleaved it is linear. Sifting must find a dramatically smaller order.
func TestReorderShrinksComparator(t *testing.T) {
	const n = 8 // pairs; a_i = var i, b_i = var n+i
	k := bdd.New(bdd.Config{Vars: 2 * n})
	mark := k.TempMark()
	f := k.TempKeep(bdd.True)
	for i := 0; i < n; i++ {
		f = k.TempKeep(k.And(f, k.Biimp(k.Var(i), k.Var(n+i))))
	}
	k.TempRelease(mark)
	k.Protect(f) // ownership: pin lives until the test kernel is dropped
	sizeBefore := k.NodeCount(f)
	stats := k.Reorder(bdd.ReorderOptions{})
	sizeAfter := k.NodeCount(f)
	if sizeAfter*2 > sizeBefore {
		t.Fatalf("sifting only got %d -> %d nodes; want at least 2x reduction", sizeBefore, sizeAfter)
	}
	if stats.After >= stats.Before {
		t.Fatalf("live count did not drop: %+v", stats)
	}
	if stats.Swaps == 0 || stats.Blocks == 0 {
		t.Fatalf("no sifting recorded: %+v", stats)
	}
	// Still the same function.
	val := make([]bool, 2*n)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		eq := true
		for i := range val {
			val[i] = rng.Intn(2) == 0
		}
		for i := 0; i < n; i++ {
			if val[i] != val[n+i] {
				eq = false
			}
		}
		if k.Eval(f, val) != eq {
			t.Fatalf("comparator wrong after sift on %v", val)
		}
	}
}

// A Ref pinned across a Reorder must keep both its identity and its
// function, and the unique table must stay canonical: recomputing the same
// combination afterwards returns the very same Ref.
func TestReorderPreservesPinsAndCanonicity(t *testing.T) {
	const nvars = 8
	rng := rand.New(rand.NewSource(3))
	k := bdd.New(bdd.Config{Vars: nvars})
	f := k.Protect(randomFormula(k, rng, nvars, 20))
	g := k.Protect(randomFormula(k, rng, nvars, 20))
	conj := k.Protect(k.And(f, g))
	k.Reorder(bdd.ReorderOptions{})
	if again := k.And(f, g); again != conj {
		t.Fatalf("And(f,g) = %d after reorder, want the pinned %d (canonicity broken)", again, conj)
	}
	if x := k.Xor(conj, k.And(f, g)); x != bdd.False {
		t.Fatalf("pinned conjunction no longer equals recomputed one")
	}
	k.Unprotect(conj)
	k.Unprotect(g)
	k.Unprotect(f)
}

func TestGroupSiftingKeepsBlocksContiguous(t *testing.T) {
	const nvars = 12
	k := bdd.New(bdd.Config{Vars: nvars})
	groups := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}
	for _, g := range groups {
		k.Group(g...)
	}
	// A function that wants group 0 next to group 3 and group 1 next to
	// group 2: pairwise biimplications across the bits.
	mark := k.TempMark()
	f := k.TempKeep(bdd.True)
	for b := 0; b < 3; b++ {
		f = k.TempKeep(k.And(f, k.Biimp(k.Var(b), k.Var(9+b))))
		f = k.TempKeep(k.And(f, k.Biimp(k.Var(3+b), k.Var(6+b))))
	}
	k.TempRelease(mark)
	k.Protect(f)
	tt := make(map[int]bool)
	val := make([]bool, nvars)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := rng.Intn(1 << nvars)
		for i := range val {
			val[i] = m&(1<<i) != 0
		}
		tt[m] = k.Eval(f, val)
	}
	k.Reorder(bdd.ReorderOptions{})
	for gi, g := range groups {
		minL, maxL := nvars, -1
		prev := -1
		for _, v := range g {
			l := k.LevelOfVar(v)
			if l <= prev {
				t.Fatalf("group %d: within-group order disturbed (var %d at level %d after level %d)", gi, v, l, prev)
			}
			prev = l
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		if maxL-minL != len(g)-1 {
			t.Fatalf("group %d: levels not contiguous (span %d..%d)", gi, minL, maxL)
		}
	}
	for m, want := range tt {
		for i := range val {
			val[i] = m&(1<<i) != 0
		}
		if k.Eval(f, val) != want {
			t.Fatalf("semantics differ at row %d after group sift", m)
		}
	}
}

func TestReorderReclaimsGarbageAndKeepsStampedSlots(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 6})
	pinned := k.Protect(k.And(k.Var(0), k.Var(1)))
	garbage := k.And(k.Var(2), k.And(k.Var(3), k.Var(4))) // unpinned
	if garbage == bdd.Invalid {
		t.Fatal("setup failed")
	}
	sizeWithGarbage := k.Size()
	k.Reorder(bdd.ReorderOptions{})
	if k.Size() >= sizeWithGarbage {
		t.Fatalf("reorder did not reclaim garbage: %d -> %d", sizeWithGarbage, k.Size())
	}
	k.SetDebugChecks(true)
	defer func() {
		if recover() == nil {
			t.Fatal("using a reclaimed Ref after Reorder did not panic under DebugChecks")
		}
	}()
	k.And(garbage, pinned)
}

func TestQuantAndCubeAfterReorder(t *testing.T) {
	const nvars = 6
	k := bdd.New(bdd.Config{Vars: nvars})
	rng := rand.New(rand.NewSource(9))
	f := k.Protect(randomFormula(k, rng, nvars, 25))
	cube := k.Protect(k.Cube(1, 3))
	ex := k.Protect(k.Exists(f, cube))
	ttEx := truthTable(k, ex, nvars)
	if err := k.SetOrder([]int{3, 5, 1, 0, 2, 4}); err != nil {
		t.Fatalf("SetOrder: %v", err)
	}
	// The pinned cube keeps meaning; a freshly built cube must equal it.
	if c2 := k.Cube(3, 1); c2 != cube {
		t.Fatalf("Cube(3,1) = %d after reorder, want pinned cube %d", c2, cube)
	}
	vars := k.CubeVars(cube)
	if len(vars) != 2 {
		t.Fatalf("CubeVars = %v", vars)
	}
	seen := map[int]bool{vars[0]: true, vars[1]: true}
	if !seen[1] || !seen[3] {
		t.Fatalf("CubeVars = %v, want {1,3}", vars)
	}
	if ex2 := k.Exists(f, cube); ex2 != ex {
		t.Fatalf("Exists changed identity after reorder")
	}
	after := truthTable(k, ex, nvars)
	for m := range ttEx {
		if ttEx[m] != after[m] {
			t.Fatalf("Exists semantics differ at row %d", m)
		}
	}
}

func TestSaveLoadCarriesVariableOrder(t *testing.T) {
	const nvars = 8
	rng := rand.New(rand.NewSource(5))
	k := bdd.New(bdd.Config{Vars: nvars})
	f := k.Protect(randomFormula(k, rng, nvars, 30))
	k.Reorder(bdd.ReorderOptions{})
	tt := truthTable(k, f, nvars)
	order := k.VarOrder()

	var buf bytes.Buffer
	if err := k.Save(&buf, f); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// A pristine kernel adopts the saved order.
	k2 := bdd.New(bdd.Config{Vars: nvars})
	roots, err := k2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	got := k2.VarOrder()
	for l := range order {
		if got[l] != order[l] {
			t.Fatalf("loaded order %v, want %v", got, order)
		}
	}
	tt2 := truthTable(k2, roots[0], nvars)
	for m := range tt {
		if tt[m] != tt2[m] {
			t.Fatalf("loaded BDD differs at row %d", m)
		}
	}

	// A pristine kernel with MORE variables also adopts it; the extra
	// variables keep their identity levels below the loaded ones.
	k3 := bdd.New(bdd.Config{Vars: nvars + 3})
	if _, err := k3.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load into wider kernel: %v", err)
	}
	for v := nvars; v < nvars+3; v++ {
		if k3.LevelOfVar(v) != v {
			t.Fatalf("extra variable %d moved to level %d", v, k3.LevelOfVar(v))
		}
	}

	// A populated kernel on an incompatible order must refuse, not corrupt.
	if order[0] == 0 && order[1] == 1 && order[2] == 2 {
		t.Skip("sift happened to keep identity prefix; incompatibility case not reachable")
	}
	k4 := bdd.New(bdd.Config{Vars: nvars})
	k4.Protect(k4.Var(0)) // populated, identity order
	if _, err := k4.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("Load of reordered file into populated identity-order kernel succeeded")
	}
}

func TestCopyToCarriesVariableOrder(t *testing.T) {
	const nvars = 8
	rng := rand.New(rand.NewSource(6))
	k := bdd.New(bdd.Config{Vars: nvars})
	f := k.Protect(randomFormula(k, rng, nvars, 30))
	if err := k.SetOrder([]int{7, 6, 5, 4, 3, 2, 1, 0}); err != nil {
		t.Fatalf("SetOrder: %v", err)
	}
	tt := truthTable(k, f, nvars)

	dst := bdd.New(bdd.Config{Vars: nvars})
	out, err := k.CopyTo(dst, f)
	if err != nil {
		t.Fatalf("CopyTo: %v", err)
	}
	got := dst.VarOrder()
	for l := range got {
		if got[l] != nvars-1-l {
			t.Fatalf("destination order %v, want reversed", got)
		}
	}
	tt2 := truthTable(dst, out[0], nvars)
	for m := range tt {
		if tt[m] != tt2[m] {
			t.Fatalf("copied BDD differs at row %d", m)
		}
	}

	// A populated destination on an incompatible order must refuse.
	dst2 := bdd.New(bdd.Config{Vars: nvars})
	dst2.Protect(dst2.And(dst2.Var(0), dst2.Var(1))) // pins identity order in place
	chain := k.Protect(k.And(k.Var(0), k.And(k.Var(1), k.Var(2))))
	if _, err := k.CopyTo(dst2, chain); err == nil {
		t.Fatal("CopyTo between incompatible orders succeeded")
	}
}

// TestCopyToNarrowerPristineDestination: a source kernel keeps scratch
// variables above the copied structure (the production evaluator does this),
// the destination only allocates the copied variables. A pristine narrow
// destination must adopt the rank-compressed source order and reproduce the
// function; a variable the destination genuinely lacks must still error.
func TestCopyToNarrowerPristineDestination(t *testing.T) {
	const nvars, scratch = 6, 4
	rng := rand.New(rand.NewSource(16))
	k := bdd.New(bdd.Config{Vars: nvars + scratch})
	f := k.Protect(randomFormula(k, rng, nvars, 25)) // touches only 0..nvars-1
	k.Protect(k.And(k.Var(nvars), k.Var(nvars+1)))   // scratch structure too
	k.Reorder(bdd.ReorderOptions{})
	tt := truthTable(k, f, nvars)

	dst := bdd.New(bdd.Config{Vars: nvars})
	out, err := k.CopyTo(dst, f)
	if err != nil {
		t.Fatalf("CopyTo into narrower pristine kernel: %v", err)
	}
	// The adopted order must rank the shared variables as the source does.
	srcRank := make([]int, 0, nvars)
	for _, v := range k.VarOrder() {
		if v < nvars {
			srcRank = append(srcRank, v)
		}
	}
	if got := dst.VarOrder(); !reflect.DeepEqual(got, srcRank) {
		t.Fatalf("destination order %v, want source ranks %v", got, srcRank)
	}
	tt2 := truthTable(dst, out[0], nvars)
	for m := range tt {
		if tt[m] != tt2[m] {
			t.Fatalf("copied BDD differs at row %d", m)
		}
	}

	// A root that really uses a scratch variable cannot fit the narrow kernel.
	g := k.Protect(k.Var(nvars + 2))
	if _, err := k.CopyTo(bdd.New(bdd.Config{Vars: nvars}), g); err == nil {
		t.Fatal("CopyTo of an out-of-range variable succeeded")
	}
}

func TestReplaceMapTracksReorder(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 4})
	m, err := k.NewReplaceMap([][2]int{{0, 2}, {1, 3}})
	if err != nil {
		t.Fatalf("NewReplaceMap: %v", err)
	}
	f := k.Protect(k.And(k.Var(0), k.Var(1)))
	want := k.Protect(k.And(k.Var(2), k.Var(3)))
	if got := k.Replace(f, m); got != want {
		t.Fatalf("Replace before reorder: got %d want %d", got, want)
	}
	// This order breaks the map's monotonicity: sources at levels 0 and 2
	// map to targets at levels 3 and 1.
	if err := k.SetOrder([]int{0, 3, 1, 2}); err != nil {
		t.Fatalf("SetOrder: %v", err)
	}
	if got := k.Replace(f, m); got != bdd.Invalid {
		t.Fatalf("Replace under incompatible order returned %d, want Invalid", got)
	}
	if !errors.Is(k.Err(), bdd.ErrOrder) {
		t.Fatalf("Err = %v, want ErrOrder", k.Err())
	}
	k.ClearErr()
	// Restoring a compatible order revalidates the interned map.
	if err := k.SetOrder([]int{0, 1, 2, 3}); err != nil {
		t.Fatalf("SetOrder back: %v", err)
	}
	if got := k.Replace(f, m); got != want {
		t.Fatalf("Replace after restoring order: got %d want %d", got, want)
	}
}

func TestReorderTrivialKernels(t *testing.T) {
	for _, vars := range []int{0, 1} {
		k := bdd.New(bdd.Config{Vars: vars})
		stats := k.Reorder(bdd.ReorderOptions{})
		if stats.Swaps != 0 {
			t.Fatalf("vars=%d: unexpected swaps %d", vars, stats.Swaps)
		}
	}
	// Sticky error: Reorder must not run on a poisoned kernel.
	k := bdd.New(bdd.Config{Vars: 4, NodeBudget: 3})
	k.And(k.Var(0), k.Var(1))
	for k.Err() == nil {
		k.And(k.Var(2), k.Var(3))
		break
	}
	k.SetBudget(3)
	_ = k.And(k.Var(0), k.Var(2))
	if k.Err() != nil {
		before := k.Size()
		stats := k.Reorder(bdd.ReorderOptions{})
		if stats.Swaps != 0 || k.Size() != before {
			t.Fatal("Reorder ran on a kernel with a sticky error")
		}
	}
}

func TestReorderUnderDebugChecks(t *testing.T) {
	const nvars = 8
	rng := rand.New(rand.NewSource(13))
	k := bdd.New(bdd.Config{Vars: nvars, DebugChecks: true})
	f := k.Protect(randomFormula(k, rng, nvars, 40))
	tt := truthTable(k, f, nvars)
	k.Reorder(bdd.ReorderOptions{})
	k.Reorder(bdd.ReorderOptions{}) // idempotent second run
	after := truthTable(k, f, nvars)
	for m := range tt {
		if tt[m] != after[m] {
			t.Fatalf("semantics differ at row %d", m)
		}
	}
}

func TestReorderStatsAccumulate(t *testing.T) {
	const n = 6
	k := bdd.New(bdd.Config{Vars: 2 * n})
	mark := k.TempMark()
	f := k.TempKeep(bdd.True)
	for i := 0; i < n; i++ {
		f = k.TempKeep(k.And(f, k.Biimp(k.Var(i), k.Var(n+i))))
	}
	k.TempRelease(mark)
	k.Protect(f) // ownership: pin lives until the test kernel is dropped
	st := k.Reorder(bdd.ReorderOptions{})
	ks := k.Stats()
	if ks.Reorders != 1 {
		t.Fatalf("Stats.Reorders = %d, want 1", ks.Reorders)
	}
	if want := uint64(st.Before - st.After); ks.ReorderSaved != want {
		t.Fatalf("Stats.ReorderSaved = %d, want %d", ks.ReorderSaved, want)
	}
	if k.ReorderRuns() != 1 {
		t.Fatalf("ReorderRuns = %d", k.ReorderRuns())
	}
}

func TestReorderMaxBlocksAndGrowth(t *testing.T) {
	const n = 6
	k := bdd.New(bdd.Config{Vars: 2 * n})
	mark := k.TempMark()
	f := k.TempKeep(bdd.True)
	for i := 0; i < n; i++ {
		f = k.TempKeep(k.And(f, k.Biimp(k.Var(i), k.Var(n+i))))
	}
	k.TempRelease(mark)
	k.Protect(f)
	tt := truthTable(k, f, 2*n)
	st := k.Reorder(bdd.ReorderOptions{MaxBlocks: 3, MaxGrowth: 1.05})
	if st.Blocks > 3 {
		t.Fatalf("sifted %d blocks with MaxBlocks=3", st.Blocks)
	}
	after := truthTable(k, f, 2*n)
	for m := range tt {
		if tt[m] != after[m] {
			t.Fatalf("semantics differ at row %d", m)
		}
	}
}
