package bdd

// apply.go implements the memoized Shannon-expansion apply operator for the
// binary boolean connectives, plus negation and if-then-else.

// And returns f ∧ g.
func (k *Kernel) And(f, g Ref) Ref {
	k.gcIfNeeded(f, g)
	return k.apply(opAnd, f, g)
}

// Or returns f ∨ g.
func (k *Kernel) Or(f, g Ref) Ref {
	k.gcIfNeeded(f, g)
	return k.apply(opOr, f, g)
}

// Xor returns f ⊕ g.
func (k *Kernel) Xor(f, g Ref) Ref {
	k.gcIfNeeded(f, g)
	return k.apply(opXor, f, g)
}

// Diff returns f ∧ ¬g (set difference of the satisfying assignments).
func (k *Kernel) Diff(f, g Ref) Ref {
	k.gcIfNeeded(f, g)
	return k.apply(opDiff, f, g)
}

// Imp returns f ⇒ g, that is ¬f ∨ g.
func (k *Kernel) Imp(f, g Ref) Ref {
	k.gcIfNeeded(f, g)
	return k.apply(opImp, f, g)
}

// Biimp returns f ⇔ g.
func (k *Kernel) Biimp(f, g Ref) Ref {
	k.gcIfNeeded(f, g)
	return k.apply(opBiimp, f, g)
}

// Not returns ¬f.
func (k *Kernel) Not(f Ref) Ref {
	k.gcIfNeeded(f)
	return k.negate(f)
}

// ITE returns the if-then-else combination (f ∧ g) ∨ (¬f ∧ h).
func (k *Kernel) ITE(f, g, h Ref) Ref {
	k.gcIfNeeded(f, g, h)
	// Evaluated via two applies; adequate for the workloads in this
	// reproduction, which use ITE only in tests.
	a := k.apply(opAnd, f, g)
	nf := k.negate(f)
	b := k.apply(opAnd, nf, h)
	return k.apply(opOr, a, b)
}

// terminalApply resolves op when at least one operand lets the result be
// decided without expansion. The boolean return reports whether it did.
func terminalApply(op uint32, f, g Ref) (Ref, bool) {
	switch op {
	case opAnd:
		switch {
		case f == False || g == False:
			return False, true
		case f == True:
			return g, true
		case g == True:
			return f, true
		case f == g:
			return f, true
		}
	case opOr:
		switch {
		case f == True || g == True:
			return True, true
		case f == False:
			return g, true
		case g == False:
			return f, true
		case f == g:
			return f, true
		}
	case opXor:
		switch {
		case f == g:
			return False, true
		case f == False:
			return g, true
		case g == False:
			return f, true
		}
	case opDiff:
		switch {
		case f == False || g == True:
			return False, true
		case g == False:
			return f, true
		case f == g:
			return False, true
		}
	case opImp:
		switch {
		case f == False || g == True:
			return True, true
		case f == True:
			return g, true
		case f == g:
			return True, true
		}
	case opBiimp:
		switch {
		case f == g:
			return True, true
		case f == True:
			return g, true
		case g == True:
			return f, true
		}
	}
	if f == True && g == True {
		// Unreachable for the ops above, but keeps the contract explicit.
		return True, true
	}
	return Invalid, false
}

// normalizeApply exploits commutativity to improve cache hit rates.
func normalizeApply(op uint32, f, g Ref) (Ref, Ref) {
	switch op {
	case opAnd, opOr, opXor, opBiimp:
		if f > g {
			return g, f
		}
	}
	return f, g
}

func (k *Kernel) apply(op uint32, f, g Ref) Ref {
	if k.err != nil || f == Invalid || g == Invalid {
		return Invalid
	}
	if r, ok := terminalApply(op, f, g); ok {
		return r
	}
	f, g = normalizeApply(op, f, g)
	k.appliedCount++
	k.applyLookups++
	slot := (uint32(f)*0x9e3779b9 ^ uint32(g)*0x85ebca6b ^ op*0x27d4eb2f) & k.applyMask
	e := &k.applyCache[slot]
	if e.epoch == k.cacheEpoch && e.op == op && e.f == f && e.g == g {
		k.applyHits++
		return e.res
	}
	var level uint32
	var f0, f1, g0, g1 Ref
	fl, gl := k.level[f], k.level[g]
	switch {
	case fl == gl:
		level = fl
		f0, f1 = k.low[f], k.high[f]
		g0, g1 = k.low[g], k.high[g]
	case fl < gl:
		level = fl
		f0, f1 = k.low[f], k.high[f]
		g0, g1 = g, g
	default:
		level = gl
		f0, f1 = f, f
		g0, g1 = k.low[g], k.high[g]
	}
	low := k.apply(op, f0, g0)
	if low == Invalid {
		return Invalid
	}
	high := k.apply(op, f1, g1)
	if high == Invalid {
		return Invalid
	}
	res := k.makeNode(level, low, high)
	if res == Invalid {
		return Invalid
	}
	*e = applyEntry{op: op, f: f, g: g, res: res, epoch: k.cacheEpoch}
	return res
}

func (k *Kernel) negate(f Ref) Ref {
	if k.err != nil || f == Invalid {
		return Invalid
	}
	switch f {
	case False:
		return True
	case True:
		return False
	}
	k.appliedCount++
	k.applyLookups++
	notKey := opNot // runtime value: the constant product overflows uint32
	slot := (uint32(f)*0x9e3779b9 ^ notKey*0x27d4eb2f) & k.applyMask
	e := &k.applyCache[slot]
	if e.epoch == k.cacheEpoch && e.op == opNot && e.f == f {
		k.applyHits++
		return e.res
	}
	level, lowIn, highIn := k.level[f], k.low[f], k.high[f]
	low := k.negate(lowIn)
	high := k.negate(highIn)
	res := k.makeNode(level, low, high)
	if res == Invalid {
		return Invalid
	}
	*e = applyEntry{op: opNot, f: f, g: False, res: res, epoch: k.cacheEpoch}
	return res
}
