package bdd

// quant.go implements existential and universal quantification over variable
// cubes, and the combined apply-quantify operations AppEx and AppAll that
// mirror BuDDy's bdd_appex and bdd_appall. The combined forms are the
// machinery behind the paper's quantifier pull-up rewrite rule (§4.3): they
// quantify on the fly during the apply recursion instead of first
// materializing the (often much larger) BDD of the boolean combination.

// Cube returns the conjunction of the positive literals of vars. Cube BDDs
// identify variable sets for the quantification operations; being ordinary
// BDDs they also serve as cache keys.
func (k *Kernel) Cube(vars ...int) Ref {
	// Build bottom-up in descending level order so each step is a single
	// makeNode.
	seen := make(map[int]bool, len(vars))
	sorted := make([]int, 0, len(vars))
	for _, v := range vars {
		k.checkVar(v)
		if !seen[v] {
			seen[v] = true
			sorted = append(sorted, v)
		}
	}
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	acc := True
	for i := len(sorted) - 1; i >= 0; i-- {
		acc = k.makeNode(uint32(sorted[i]), False, acc)
		if acc == Invalid {
			return Invalid
		}
	}
	return acc
}

// CubeVars lists, in ascending order, the variables of a cube previously
// produced by Cube.
func (k *Kernel) CubeVars(cube Ref) []int {
	var vars []int
	for cube != True && cube != False {
		n := &k.nodes[cube]
		vars = append(vars, int(n.level))
		cube = n.high
	}
	return vars
}

// Exists returns ∃vars(f), where vars is a cube.
func (k *Kernel) Exists(f, cube Ref) Ref {
	k.gcIfNeeded(f, cube)
	return k.quant(opExists, f, cube)
}

// Forall returns ∀vars(f), where vars is a cube.
func (k *Kernel) Forall(f, cube Ref) Ref {
	k.gcIfNeeded(f, cube)
	return k.quant(opForall, f, cube)
}

// AppEx returns ∃cube (f op g) in a single pass, the analogue of BuDDy's
// bdd_appex. op must be one of OpAnd, OpOr, OpXor.
func (k *Kernel) AppEx(f, g Ref, op ApplyOp, cube Ref) Ref {
	k.gcIfNeeded(f, g, cube)
	return k.appQuant(opAppEx, uint32(op), f, g, cube)
}

// AppAll returns ∀cube (f op g) in a single pass, the analogue of BuDDy's
// bdd_appall.
func (k *Kernel) AppAll(f, g Ref, op ApplyOp, cube Ref) Ref {
	k.gcIfNeeded(f, g, cube)
	return k.appQuant(opAppAll, uint32(op), f, g, cube)
}

// ApplyOp selects the boolean connective for AppEx and AppAll.
type ApplyOp uint32

// Connectives accepted by AppEx and AppAll.
const (
	OpAnd ApplyOp = ApplyOp(opAnd)
	OpOr  ApplyOp = ApplyOp(opOr)
	OpXor ApplyOp = ApplyOp(opXor)
)

func (k *Kernel) quant(op uint32, f, cube Ref) Ref {
	if k.err != nil || f == Invalid || cube == Invalid {
		return Invalid
	}
	if k.isTerminal(f) || cube == True {
		return f
	}
	k.appliedCount++
	slot := (uint32(f)*0x9e3779b9 ^ uint32(cube)*0xc2b2ae35 ^ op*0x27d4eb2f) & k.cacheMask
	e := &k.quantCache[slot]
	if e.epoch == k.cacheEpoch && e.op == op && e.f == f && e.cube == cube {
		k.cacheHits++
		return e.res
	}
	n := &k.nodes[f]
	level, lowIn, highIn := n.level, n.low, n.high
	// Advance the cube below level: variables above f's top variable do not
	// occur in f, so quantifying them is the identity.
	c := cube
	for c != True {
		cl := k.nodes[c].level
		if cl >= level {
			break
		}
		c = k.nodes[c].high
	}
	if c == True {
		*e = quantEntry{op: op, f: f, cube: cube, res: f, epoch: k.cacheEpoch}
		return f
	}
	var res Ref
	if k.nodes[c].level == level {
		// Quantified variable: combine the cofactors.
		below := k.nodes[c].high
		low := k.quant(op, lowIn, below)
		if low == Invalid {
			return Invalid
		}
		high := k.quant(op, highIn, below)
		if high == Invalid {
			return Invalid
		}
		if op == opExists {
			res = k.apply(opOr, low, high)
		} else {
			res = k.apply(opAnd, low, high)
		}
	} else {
		low := k.quant(op, lowIn, c)
		if low == Invalid {
			return Invalid
		}
		high := k.quant(op, highIn, c)
		if high == Invalid {
			return Invalid
		}
		res = k.makeNode(level, low, high)
	}
	if res == Invalid {
		return Invalid
	}
	*e = quantEntry{op: op, f: f, cube: cube, res: res, epoch: k.cacheEpoch}
	return res
}

func (k *Kernel) appQuant(mode, op uint32, f, g, cube Ref) Ref {
	if k.err != nil || f == Invalid || g == Invalid || cube == Invalid {
		return Invalid
	}
	if r, ok := terminalApply(op, f, g); ok {
		if mode == opAppEx {
			return k.quant(opExists, r, cube)
		}
		return k.quant(opForall, r, cube)
	}
	f, g = normalizeApply(op, f, g)
	k.appliedCount++
	key := mode<<4 | op
	slot := (uint32(f)*0x9e3779b9 ^ uint32(g)*0x85ebca6b ^ uint32(cube)*0xc2b2ae35 ^ key*0x27d4eb2f) & k.cacheMask
	e := &k.quantCache[slot]
	if e.epoch == k.cacheEpoch && e.op == key && e.f == f && e.g == g && e.cube == cube {
		k.cacheHits++
		return e.res
	}
	fn, gn := &k.nodes[f], &k.nodes[g]
	var level uint32
	var f0, f1, g0, g1 Ref
	switch {
	case fn.level == gn.level:
		level = fn.level
		f0, f1 = fn.low, fn.high
		g0, g1 = gn.low, gn.high
	case fn.level < gn.level:
		level = fn.level
		f0, f1 = fn.low, fn.high
		g0, g1 = g, g
	default:
		level = gn.level
		f0, f1 = f, f
		g0, g1 = gn.low, gn.high
	}
	c := cube
	for c != True && k.nodes[c].level < level {
		c = k.nodes[c].high
	}
	var res Ref
	if c != True && k.nodes[c].level == level {
		below := k.nodes[c].high
		low := k.appQuant(mode, op, f0, g0, below)
		if low == Invalid {
			return Invalid
		}
		high := k.appQuant(mode, op, f1, g1, below)
		if high == Invalid {
			return Invalid
		}
		if mode == opAppEx {
			res = k.apply(opOr, low, high)
		} else {
			res = k.apply(opAnd, low, high)
		}
	} else {
		low := k.appQuant(mode, op, f0, g0, c)
		if low == Invalid {
			return Invalid
		}
		high := k.appQuant(mode, op, f1, g1, c)
		if high == Invalid {
			return Invalid
		}
		res = k.makeNode(level, low, high)
	}
	if res == Invalid {
		return Invalid
	}
	*e = quantEntry{op: key, f: f, g: g, cube: cube, res: res, epoch: k.cacheEpoch}
	return res
}
