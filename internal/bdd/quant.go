package bdd

// quant.go implements existential and universal quantification over variable
// cubes, and the combined apply-quantify operations AppEx and AppAll that
// mirror BuDDy's bdd_appex and bdd_appall. The combined forms are the
// machinery behind the paper's quantifier pull-up rewrite rule (§4.3): they
// quantify on the fly during the apply recursion instead of first
// materializing the (often much larger) BDD of the boolean combination.

// Cube returns the conjunction of the positive literals of vars. Cube BDDs
// identify variable sets for the quantification operations; being ordinary
// BDDs they also serve as cache keys. The chain is built in level order
// under the current variable order, so cubes — like every other Ref — do
// not survive a Reorder unless pinned (pinned cubes are rewritten in place
// and stay valid).
func (k *Kernel) Cube(vars ...int) Ref {
	// Build bottom-up in descending level order so each step is a single
	// makeNode.
	seen := make(map[int]bool, len(vars))
	levels := make([]uint32, 0, len(vars))
	for _, v := range vars {
		k.checkVar(v)
		if !seen[v] {
			seen[v] = true
			levels = append(levels, k.var2level[v])
		}
	}
	for i := 1; i < len(levels); i++ {
		for j := i; j > 0 && levels[j] < levels[j-1]; j-- {
			levels[j], levels[j-1] = levels[j-1], levels[j]
		}
	}
	acc := True
	for i := len(levels) - 1; i >= 0; i-- {
		acc = k.makeNode(levels[i], False, acc)
		if acc == Invalid {
			return Invalid
		}
	}
	return acc
}

// CubeVars lists the variables of a cube previously produced by Cube, in
// ascending level order (which is ascending variable order under the
// identity order).
func (k *Kernel) CubeVars(cube Ref) []int {
	var vars []int
	for cube != True && cube != False {
		vars = append(vars, int(k.level2var[k.level[cube]]))
		cube = k.high[cube]
	}
	return vars
}

// Exists returns ∃vars(f), where vars is a cube.
func (k *Kernel) Exists(f, cube Ref) Ref {
	k.gcIfNeeded(f, cube)
	k.maybeGrowQuantCache()
	return k.quant(opExists, f, cube)
}

// Forall returns ∀vars(f), where vars is a cube.
func (k *Kernel) Forall(f, cube Ref) Ref {
	k.gcIfNeeded(f, cube)
	k.maybeGrowQuantCache()
	return k.quant(opForall, f, cube)
}

// AppEx returns ∃cube (f op g) in a single pass, the analogue of BuDDy's
// bdd_appex. op must be one of OpAnd, OpOr, OpXor.
func (k *Kernel) AppEx(f, g Ref, op ApplyOp, cube Ref) Ref {
	k.gcIfNeeded(f, g, cube)
	k.maybeGrowQuantCache()
	return k.appQuant(opAppEx, uint32(op), f, g, cube)
}

// AppAll returns ∀cube (f op g) in a single pass, the analogue of BuDDy's
// bdd_appall.
func (k *Kernel) AppAll(f, g Ref, op ApplyOp, cube Ref) Ref {
	k.gcIfNeeded(f, g, cube)
	k.maybeGrowQuantCache()
	return k.appQuant(opAppAll, uint32(op), f, g, cube)
}

// maybeGrowQuantCache doubles the quantification cache once the observed
// lookup volume outgrows it. Growing only at operation entry keeps the
// table stable during a recursion (no stale entry pointers).
func (k *Kernel) maybeGrowQuantCache() {
	if k.fixedCache {
		return
	}
	for len(k.quantCache) < maxQuantCacheSize && k.quantLookups > uint64(len(k.quantCache))*8 {
		size := len(k.quantCache) * 2
		k.quantCache = make([]quantEntry, size)
		k.quantMask = uint32(size - 1)
	}
}

const maxQuantCacheSize = 1 << 16

// ApplyOp selects the boolean connective for AppEx and AppAll.
type ApplyOp uint32

// Connectives accepted by AppEx and AppAll.
const (
	OpAnd ApplyOp = ApplyOp(opAnd)
	OpOr  ApplyOp = ApplyOp(opOr)
	OpXor ApplyOp = ApplyOp(opXor)
)

func (k *Kernel) quant(op uint32, f, cube Ref) Ref {
	if k.err != nil || f == Invalid || cube == Invalid {
		return Invalid
	}
	if k.isTerminal(f) || cube == True {
		return f
	}
	k.appliedCount++
	k.quantLookups++
	slot := (uint32(f)*0x9e3779b9 ^ uint32(cube)*0xc2b2ae35 ^ op*0x27d4eb2f) & k.quantMask
	e := &k.quantCache[slot]
	if e.epoch == k.cacheEpoch && e.op == op && e.f == f && e.cube == cube {
		k.quantHits++
		return e.res
	}
	level, lowIn, highIn := k.level[f], k.low[f], k.high[f]
	// Advance the cube below level: variables above f's top variable do not
	// occur in f, so quantifying them is the identity.
	c := cube
	for c != True {
		cl := k.level[c]
		if cl >= level {
			break
		}
		c = k.high[c]
	}
	if c == True {
		*e = quantEntry{op: op, f: f, cube: cube, res: f, epoch: k.cacheEpoch}
		return f
	}
	var res Ref
	if k.level[c] == level {
		// Quantified variable: combine the cofactors.
		below := k.high[c]
		low := k.quant(op, lowIn, below)
		if low == Invalid {
			return Invalid
		}
		high := k.quant(op, highIn, below)
		if high == Invalid {
			return Invalid
		}
		if op == opExists {
			res = k.apply(opOr, low, high)
		} else {
			res = k.apply(opAnd, low, high)
		}
	} else {
		low := k.quant(op, lowIn, c)
		if low == Invalid {
			return Invalid
		}
		high := k.quant(op, highIn, c)
		if high == Invalid {
			return Invalid
		}
		res = k.makeNode(level, low, high)
	}
	if res == Invalid {
		return Invalid
	}
	*e = quantEntry{op: op, f: f, cube: cube, res: res, epoch: k.cacheEpoch}
	return res
}

func (k *Kernel) appQuant(mode, op uint32, f, g, cube Ref) Ref {
	if k.err != nil || f == Invalid || g == Invalid || cube == Invalid {
		return Invalid
	}
	if r, ok := terminalApply(op, f, g); ok {
		if mode == opAppEx {
			return k.quant(opExists, r, cube)
		}
		return k.quant(opForall, r, cube)
	}
	f, g = normalizeApply(op, f, g)
	k.appliedCount++
	k.quantLookups++
	key := mode<<4 | op
	slot := (uint32(f)*0x9e3779b9 ^ uint32(g)*0x85ebca6b ^ uint32(cube)*0xc2b2ae35 ^ key*0x27d4eb2f) & k.quantMask
	e := &k.quantCache[slot]
	if e.epoch == k.cacheEpoch && e.op == key && e.f == f && e.g == g && e.cube == cube {
		k.quantHits++
		return e.res
	}
	var level uint32
	var f0, f1, g0, g1 Ref
	fl, gl := k.level[f], k.level[g]
	switch {
	case fl == gl:
		level = fl
		f0, f1 = k.low[f], k.high[f]
		g0, g1 = k.low[g], k.high[g]
	case fl < gl:
		level = fl
		f0, f1 = k.low[f], k.high[f]
		g0, g1 = g, g
	default:
		level = gl
		f0, f1 = f, f
		g0, g1 = k.low[g], k.high[g]
	}
	c := cube
	for c != True && k.level[c] < level {
		c = k.high[c]
	}
	var res Ref
	if c != True && k.level[c] == level {
		below := k.high[c]
		low := k.appQuant(mode, op, f0, g0, below)
		if low == Invalid {
			return Invalid
		}
		high := k.appQuant(mode, op, f1, g1, below)
		if high == Invalid {
			return Invalid
		}
		if mode == opAppEx {
			res = k.apply(opOr, low, high)
		} else {
			res = k.apply(opAnd, low, high)
		}
	} else {
		low := k.appQuant(mode, op, f0, g0, c)
		if low == Invalid {
			return Invalid
		}
		high := k.appQuant(mode, op, f1, g1, c)
		if high == Invalid {
			return Invalid
		}
		res = k.makeNode(level, low, high)
	}
	if res == Invalid {
		return Invalid
	}
	*e = quantEntry{op: key, f: f, g: g, cube: cube, res: res, epoch: k.cacheEpoch}
	return res
}
