package bdd_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bdd"
)

// expr is a reference boolean expression evaluated both directly and via the
// kernel, so every operator is checked against ground truth on all 2^n
// assignments.
type expr struct {
	kind     byte // 'v' var, '!' not, '&', '|', '^', '>', '=', 'E' exists, 'A' forall
	varIdx   int
	from, to *expr
}

func leaf(i int) *expr               { return &expr{kind: 'v', varIdx: i} }
func not(e *expr) *expr              { return &expr{kind: '!', from: e} }
func binop(k byte, a, b *expr) *expr { return &expr{kind: k, from: a, to: b} }
func quant(k byte, v int, e *expr) *expr {
	return &expr{kind: k, varIdx: v, from: e}
}

func (e *expr) eval(a []bool) bool {
	switch e.kind {
	case 'v':
		return a[e.varIdx]
	case '!':
		return !e.from.eval(a)
	case '&':
		return e.from.eval(a) && e.to.eval(a)
	case '|':
		return e.from.eval(a) || e.to.eval(a)
	case '^':
		return e.from.eval(a) != e.to.eval(a)
	case '>':
		return !e.from.eval(a) || e.to.eval(a)
	case '=':
		return e.from.eval(a) == e.to.eval(a)
	case 'E', 'A':
		saved := a[e.varIdx]
		a[e.varIdx] = false
		r0 := e.from.eval(a)
		a[e.varIdx] = true
		r1 := e.from.eval(a)
		a[e.varIdx] = saved
		if e.kind == 'E' {
			return r0 || r1
		}
		return r0 && r1
	}
	panic("bad expr kind")
}

func (e *expr) build(k *bdd.Kernel) bdd.Ref {
	switch e.kind {
	case 'v':
		return k.Var(e.varIdx)
	case '!':
		return k.Not(e.from.build(k))
	case '&':
		return k.And(e.from.build(k), e.to.build(k))
	case '|':
		return k.Or(e.from.build(k), e.to.build(k))
	case '^':
		return k.Xor(e.from.build(k), e.to.build(k))
	case '>':
		return k.Imp(e.from.build(k), e.to.build(k))
	case '=':
		return k.Biimp(e.from.build(k), e.to.build(k))
	case 'E':
		return k.Exists(e.from.build(k), k.Cube(e.varIdx))
	case 'A':
		return k.Forall(e.from.build(k), k.Cube(e.varIdx))
	}
	panic("bad expr kind")
}

// randExpr generates a random expression over nv variables with the given
// node budget.
func randExpr(rng *rand.Rand, nv, size int) *expr {
	if size <= 1 {
		return leaf(rng.Intn(nv))
	}
	switch rng.Intn(8) {
	case 0:
		return not(randExpr(rng, nv, size-1))
	case 1:
		return quant('E', rng.Intn(nv), randExpr(rng, nv, size-1))
	case 2:
		return quant('A', rng.Intn(nv), randExpr(rng, nv, size-1))
	default:
		ops := []byte{'&', '|', '^', '>', '='}
		l := rng.Intn(size-1) + 1
		return binop(ops[rng.Intn(len(ops))],
			randExpr(rng, nv, l), randExpr(rng, nv, size-l))
	}
}

func assignments(n int) [][]bool {
	out := make([][]bool, 0, 1<<n)
	for m := 0; m < 1<<n; m++ {
		a := make([]bool, n)
		for i := 0; i < n; i++ {
			a[i] = m&(1<<i) != 0
		}
		out = append(out, a)
	}
	return out
}

func TestTerminals(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 3})
	if bdd.False == bdd.True {
		t.Fatal("terminals must differ")
	}
	if k.Not(bdd.True) != bdd.False || k.Not(bdd.False) != bdd.True {
		t.Fatal("negated terminals wrong")
	}
	if k.And(bdd.True, bdd.False) != bdd.False {
		t.Fatal("true AND false != false")
	}
	if k.Or(bdd.True, bdd.False) != bdd.True {
		t.Fatal("true OR false != true")
	}
	if !k.IsTerminal(bdd.True) || !k.IsTerminal(bdd.False) {
		t.Fatal("IsTerminal on terminals")
	}
	if k.IsTerminal(k.Var(0)) {
		t.Fatal("IsTerminal on variable")
	}
}

func TestVarSemantics(t *testing.T) {
	const n = 4
	k := bdd.New(bdd.Config{Vars: n})
	for i := 0; i < n; i++ {
		v, nv := k.Var(i), k.NVar(i)
		for _, a := range assignments(n) {
			if k.Eval(v, a) != a[i] {
				t.Fatalf("Var(%d) wrong on %v", i, a)
			}
			if k.Eval(nv, a) != !a[i] {
				t.Fatalf("NVar(%d) wrong on %v", i, a)
			}
		}
		if k.Not(v) != nv {
			t.Fatalf("Not(Var(%d)) != NVar(%d)", i, i)
		}
	}
}

func TestRandomExpressionsMatchBruteForce(t *testing.T) {
	const nv = 6
	rng := rand.New(rand.NewSource(7))
	k := bdd.New(bdd.Config{Vars: nv})
	all := assignments(nv)
	for trial := 0; trial < 300; trial++ {
		e := randExpr(rng, nv, 12)
		f := e.build(k)
		if err := k.Err(); err != nil {
			t.Fatalf("unexpected kernel error: %v", err)
		}
		for _, a := range all {
			if k.Eval(f, a) != e.eval(a) {
				t.Fatalf("trial %d: mismatch on %v", trial, a)
			}
		}
	}
}

func TestCanonicityEquivalentFormulasShareRef(t *testing.T) {
	const nv = 5
	rng := rand.New(rand.NewSource(11))
	k := bdd.New(bdd.Config{Vars: nv})
	all := assignments(nv)
	// Build many random functions; bucket by truth table; all functions in a
	// bucket must be the same Ref (Bryant's canonicity, the paper's Fact 1).
	byTable := make(map[uint32]bdd.Ref)
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rng, nv, 10)
		f := e.build(k)
		var table uint32
		for i, a := range all {
			if k.Eval(f, a) {
				table |= 1 << i
			}
		}
		if prev, ok := byTable[table]; ok {
			if prev != f {
				t.Fatalf("trial %d: equivalent functions got refs %d and %d", trial, prev, f)
			}
		} else {
			byTable[table] = f
		}
	}
}

func TestBooleanIdentities(t *testing.T) {
	const nv = 6
	rng := rand.New(rand.NewSource(3))
	k := bdd.New(bdd.Config{Vars: nv})
	for trial := 0; trial < 100; trial++ {
		f := randExpr(rng, nv, 8).build(k)
		g := randExpr(rng, nv, 8).build(k)
		h := randExpr(rng, nv, 8).build(k)
		if k.Not(k.Not(f)) != f {
			t.Fatal("double negation")
		}
		if k.Not(k.And(f, g)) != k.Or(k.Not(f), k.Not(g)) {
			t.Fatal("De Morgan AND")
		}
		if k.Not(k.Or(f, g)) != k.And(k.Not(f), k.Not(g)) {
			t.Fatal("De Morgan OR")
		}
		if k.And(f, k.Or(g, h)) != k.Or(k.And(f, g), k.And(f, h)) {
			t.Fatal("distribution")
		}
		if k.Or(f, k.And(f, g)) != f {
			t.Fatal("absorption")
		}
		if k.Imp(f, g) != k.Or(k.Not(f), g) {
			t.Fatal("implication definition")
		}
		if k.Biimp(f, g) != k.Not(k.Xor(f, g)) {
			t.Fatal("biimplication definition")
		}
		if k.Diff(f, g) != k.And(f, k.Not(g)) {
			t.Fatal("difference definition")
		}
		if k.ITE(f, g, h) != k.Or(k.And(f, g), k.And(k.Not(f), h)) {
			t.Fatal("ITE definition")
		}
	}
}

func TestQuantifierIdentities(t *testing.T) {
	const nv = 6
	rng := rand.New(rand.NewSource(5))
	k := bdd.New(bdd.Config{Vars: nv})
	for trial := 0; trial < 100; trial++ {
		f := randExpr(rng, nv, 8).build(k)
		g := randExpr(rng, nv, 8).build(k)
		x := rng.Intn(nv)
		cube := k.Cube(x)
		// Quantifier duality.
		if k.Exists(f, cube) != k.Not(k.Forall(k.Not(f), cube)) {
			t.Fatal("∃x f != ¬∀x ¬f")
		}
		// The paper's Equation 3: ∃x φ1 ∨ ∃x φ2 == ∃x (φ1 ∨ φ2).
		lhs := k.Or(k.Exists(f, cube), k.Exists(g, cube))
		rhs := k.Exists(k.Or(f, g), cube)
		if lhs != rhs {
			t.Fatal("∃ does not distribute over ∨")
		}
		// The paper's Equation 4: ∀x φ1 ∧ ∀x φ2 == ∀x (φ1 ∧ φ2).
		lhs = k.And(k.Forall(f, cube), k.Forall(g, cube))
		rhs = k.Forall(k.And(f, g), cube)
		if lhs != rhs {
			t.Fatal("∀ does not distribute over ∧")
		}
		// AppEx/AppAll agree with the two-step evaluation.
		if k.AppEx(f, g, bdd.OpAnd, cube) != k.Exists(k.And(f, g), cube) {
			t.Fatal("AppEx(∧) mismatch")
		}
		if k.AppEx(f, g, bdd.OpOr, cube) != k.Exists(k.Or(f, g), cube) {
			t.Fatal("AppEx(∨) mismatch")
		}
		if k.AppAll(f, g, bdd.OpAnd, cube) != k.Forall(k.And(f, g), cube) {
			t.Fatal("AppAll(∧) mismatch")
		}
		if k.AppAll(f, g, bdd.OpOr, cube) != k.Forall(k.Or(f, g), cube) {
			t.Fatal("AppAll(∨) mismatch")
		}
	}
}

func TestMultiVariableQuantification(t *testing.T) {
	const nv = 7
	rng := rand.New(rand.NewSource(13))
	k := bdd.New(bdd.Config{Vars: nv})
	for trial := 0; trial < 60; trial++ {
		f := randExpr(rng, nv, 10).build(k)
		// Quantify a random set of 3 variables; compare with sequential
		// single-variable quantification.
		xs := rng.Perm(nv)[:3]
		cube := k.Cube(xs...)
		seqE, seqA := f, f
		for _, x := range xs {
			seqE = k.Exists(seqE, k.Cube(x))
			seqA = k.Forall(seqA, k.Cube(x))
		}
		if k.Exists(f, cube) != seqE {
			t.Fatal("multi-var Exists != sequential")
		}
		if k.Forall(f, cube) != seqA {
			t.Fatal("multi-var Forall != sequential")
		}
	}
}

func TestCubeVarsRoundTrip(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 10})
	cube := k.Cube(7, 2, 5, 2)
	got := k.CubeVars(cube)
	want := []int{2, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("CubeVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CubeVars = %v, want %v", got, want)
		}
	}
}

func TestRestrict(t *testing.T) {
	const nv = 6
	rng := rand.New(rand.NewSource(17))
	k := bdd.New(bdd.Config{Vars: nv})
	for trial := 0; trial < 100; trial++ {
		e := randExpr(rng, nv, 10)
		f := e.build(k)
		x := rng.Intn(nv)
		val := rng.Intn(2) == 1
		r := k.Restrict(f, []bdd.Literal{{Var: x, Value: val}})
		for _, a := range assignments(nv) {
			a[x] = val
			if k.Eval(r, a) != e.eval(a) {
				t.Fatalf("Restrict mismatch at trial %d", trial)
			}
		}
		// A restricted BDD must not depend on the restricted variable.
		for _, v := range k.Support(r) {
			if v == x {
				t.Fatal("restricted variable still in support")
			}
		}
	}
}

func TestMinterm(t *testing.T) {
	const nv = 8
	rng := rand.New(rand.NewSource(19))
	k := bdd.New(bdd.Config{Vars: nv})
	for trial := 0; trial < 50; trial++ {
		var lits []bdd.Literal
		used := map[int]bool{}
		for i := 0; i < 4; i++ {
			v := rng.Intn(nv)
			if used[v] {
				continue
			}
			used[v] = true
			lits = append(lits, bdd.Literal{Var: v, Value: rng.Intn(2) == 1})
		}
		m := k.Minterm(lits)
		// Equivalent construction through And of single literals.
		ref := bdd.True
		for _, l := range lits {
			if l.Value {
				ref = k.And(ref, k.Var(l.Var))
			} else {
				ref = k.And(ref, k.NVar(l.Var))
			}
		}
		if m != ref {
			t.Fatalf("Minterm != And of literals, trial %d", trial)
		}
	}
	// Contradictory literals give False.
	if k.Minterm([]bdd.Literal{{Var: 1, Value: true}, {Var: 1, Value: false}}) != bdd.False {
		t.Fatal("contradictory minterm not False")
	}
	// Duplicate consistent literals are fine.
	if k.Minterm([]bdd.Literal{{Var: 1, Value: true}, {Var: 1, Value: true}}) != k.Var(1) {
		t.Fatal("duplicate literal mishandled")
	}
	if k.Minterm(nil) != bdd.True {
		t.Fatal("empty minterm must be True")
	}
}

func TestSatCount(t *testing.T) {
	const nv = 8
	rng := rand.New(rand.NewSource(23))
	k := bdd.New(bdd.Config{Vars: nv})
	for trial := 0; trial < 60; trial++ {
		e := randExpr(rng, nv, 10)
		f := e.build(k)
		want := 0
		for _, a := range assignments(nv) {
			if e.eval(a) {
				want++
			}
		}
		if got := k.SatCount(f); got != float64(want) {
			t.Fatalf("SatCount = %v, want %d", got, want)
		}
	}
	if k.SatCount(bdd.True) != 256 {
		t.Fatal("SatCount(True) wrong")
	}
	if k.SatCount(bdd.False) != 0 {
		t.Fatal("SatCount(False) wrong")
	}
}

func TestAnySatAllSat(t *testing.T) {
	const nv = 6
	rng := rand.New(rand.NewSource(29))
	k := bdd.New(bdd.Config{Vars: nv})
	for trial := 0; trial < 60; trial++ {
		e := randExpr(rng, nv, 10)
		f := e.build(k)
		lits, ok := k.AnySat(f)
		if !ok {
			if f != bdd.False {
				t.Fatal("AnySat failed on satisfiable function")
			}
			continue
		}
		a := make([]bool, nv)
		for _, l := range lits {
			a[l.Var] = l.Value
		}
		if !k.Eval(f, a) {
			t.Fatal("AnySat returned a non-model")
		}
		// AllSat paths, expanded over don't-cares, must exactly recover the
		// satisfying set.
		got := map[int]bool{}
		k.AllSat(f, func(path []bdd.Literal) bool {
			fixed := map[int]bool{}
			for _, l := range path {
				fixed[l.Var] = l.Value
			}
			var expand func(i, m int)
			expand = func(i, m int) {
				if i == nv {
					got[m] = true
					return
				}
				if v, ok := fixed[i]; ok {
					if v {
						m |= 1 << i
					}
					expand(i+1, m)
					return
				}
				expand(i+1, m)
				expand(i+1, m|1<<i)
			}
			expand(0, 0)
			return true
		})
		for i, a := range assignments(nv) {
			if e.eval(a) != got[i] {
				t.Fatalf("AllSat set mismatch at assignment %d", i)
			}
		}
	}
}

func TestReplaceShiftsBlocks(t *testing.T) {
	// Variables 0-2 are block A, 3-5 are block B. Renaming A→B must turn a
	// function of A into the same function of B.
	k := bdd.New(bdd.Config{Vars: 6})
	m, err := k.NewReplaceMap([][2]int{{0, 3}, {1, 4}, {2, 5}})
	if err != nil {
		t.Fatalf("NewReplaceMap: %v", err)
	}
	f := k.Or(k.And(k.Var(0), k.Var(1)), k.Not(k.Var(2)))
	g := k.Replace(f, m)
	want := k.Or(k.And(k.Var(3), k.Var(4)), k.Not(k.Var(5)))
	if g != want {
		t.Fatal("Replace result differs from direct construction")
	}
}

func TestReplaceRejectsOrderViolations(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 6})
	// Swapping two variables is not monotone; rejected statically.
	if _, err := k.NewReplaceMap([][2]int{{0, 3}, {3, 0}}); err == nil {
		t.Fatal("swap accepted")
	}
	// Duplicate target and duplicate source.
	if _, err := k.NewReplaceMap([][2]int{{0, 4}, {1, 4}}); err == nil {
		t.Fatal("duplicate target accepted")
	}
	if _, err := k.NewReplaceMap([][2]int{{0, 4}, {0, 5}}); err == nil {
		t.Fatal("duplicate source accepted")
	}
}

func TestReplaceRuntimeOrderCheck(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 6})
	// Renaming 0→2 is fine on functions not involving variable 1...
	m, err := k.NewReplaceMap([][2]int{{0, 2}})
	if err != nil {
		t.Fatalf("NewReplaceMap: %v", err)
	}
	f := k.And(k.Var(0), k.Var(3))
	if got := k.Replace(f, m); got != k.And(k.Var(2), k.Var(3)) {
		t.Fatal("valid rename across unused variable failed")
	}
	// ...but renaming 0→2 on a function using variable 1 would order the
	// fixed variable across the renamed one; detected at runtime.
	g := k.And(k.Var(0), k.Var(1))
	if got := k.Replace(g, m); got != bdd.Invalid {
		t.Fatal("order-violating rename not rejected")
	}
	if !errors.Is(k.Err(), bdd.ErrOrder) {
		t.Fatalf("Err = %v, want ErrOrder", k.Err())
	}
	k.ClearErr()
	// The kernel remains usable.
	if k.Replace(f, m) != k.And(k.Var(2), k.Var(3)) {
		t.Fatal("kernel unusable after ErrOrder")
	}
}

func TestNodeCountParity(t *testing.T) {
	// The parity function over n variables has exactly 2n-1 nodes in a
	// ROBDD without complement edges.
	for _, n := range []int{2, 5, 10, 16} {
		k := bdd.New(bdd.Config{Vars: n})
		f := bdd.False
		for i := 0; i < n; i++ {
			f = k.Xor(f, k.Var(i))
		}
		if got, want := k.NodeCount(f), 2*n-1; got != want {
			t.Errorf("parity over %d vars: NodeCount = %d, want %d", n, got, want)
		}
	}
}

func TestSharedNodeCount(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 4})
	f := k.And(k.Var(0), k.Var(1))
	g := k.And(k.Var(0), k.Var(1)) // same function, same nodes
	if k.SharedNodeCount(f, g) != k.NodeCount(f) {
		t.Fatal("identical functions should share all nodes")
	}
	// h = x2 ∨ f contains f as its whole low branch, so the union of the
	// two graphs is exactly h's graph.
	p := k.And(k.Var(2), k.Var(3))
	h := k.Or(k.Var(0), p)
	if k.SharedNodeCount(p, h) != k.NodeCount(h) {
		t.Fatal("subfunction nodes should be fully shared")
	}
}

func TestBudgetAbort(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 40, NodeBudget: 64})
	// Parity needs only 2n-1 nodes, fine. A random dense function explodes.
	rng := rand.New(rand.NewSource(31))
	f := bdd.True
	for i := 0; i < 40; i += 2 {
		g := k.Or(k.And(k.Var(i), k.Var(rng.Intn(40))), k.Var(rng.Intn(40)))
		f = k.And(f, k.Xor(g, k.Var(rng.Intn(40))))
		if f == bdd.Invalid {
			break
		}
	}
	if k.Err() == nil {
		t.Skip("workload did not exceed the 64-node budget") // extremely unlikely
	}
	if f != bdd.Invalid {
		t.Fatal("aborted chain must yield Invalid")
	}
	// Operations on Invalid keep returning Invalid rather than panicking.
	if k.And(f, bdd.True) != bdd.Invalid {
		t.Fatal("Invalid must propagate")
	}
	k.ClearErr()
	if k.Err() != nil {
		t.Fatal("ClearErr did not clear")
	}
	// The kernel is usable again for small functions.
	k.GC()
	if k.And(k.Var(0), k.Var(1)) == bdd.Invalid {
		t.Fatal("kernel unusable after ClearErr+GC")
	}
}

func TestGCReclaimsGarbageAndKeepsProtected(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 16})
	rng := rand.New(rand.NewSource(37))
	keep := randExpr(rng, 16, 20).build(k)
	k.Protect(keep)
	keepCount := k.NodeCount(keep)
	// Generate garbage.
	for i := 0; i < 50; i++ {
		randExpr(rng, 16, 20).build(k)
	}
	before := k.Size()
	k.GC()
	after := k.Size()
	if after >= before {
		t.Fatalf("GC did not reclaim: before=%d after=%d", before, after)
	}
	if after < keepCount+2 {
		t.Fatalf("GC reclaimed protected nodes: live=%d, protected needs %d", after, keepCount)
	}
	// The protected BDD is still structurally intact.
	if k.NodeCount(keep) != keepCount {
		t.Fatal("protected BDD corrupted by GC")
	}
	k.Unprotect(keep)
}

func TestGCExtraRoots(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 8})
	rng := rand.New(rand.NewSource(41))
	f := randExpr(rng, 8, 15).build(k)
	n := k.NodeCount(f)
	k.GC(f) // unprotected but passed as an explicit root
	if k.NodeCount(f) != n {
		t.Fatal("extra root not preserved")
	}
}

func TestOperationsAfterGCStayCorrect(t *testing.T) {
	const nv = 8
	k := bdd.New(bdd.Config{Vars: nv})
	rng := rand.New(rand.NewSource(43))
	e1 := randExpr(rng, nv, 12)
	f := e1.build(k)
	k.Protect(f)
	k.GC()
	e2 := randExpr(rng, nv, 12)
	g := e2.build(k)
	h := k.And(f, g)
	for _, a := range assignments(nv) {
		if k.Eval(h, a) != (e1.eval(a) && e2.eval(a)) {
			t.Fatal("post-GC operation incorrect")
		}
	}
	k.Unprotect(f)
}

func TestAddVars(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 2})
	f := k.And(k.Var(0), k.Var(1))
	base := k.AddVars(2)
	if base != 2 || k.NumVars() != 4 {
		t.Fatalf("AddVars returned %d, NumVars %d", base, k.NumVars())
	}
	g := k.And(f, k.Var(3))
	a := []bool{true, true, false, true}
	if !k.Eval(g, a) {
		t.Fatal("function over extended variables wrong")
	}
}

func TestSupport(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 6})
	f := k.And(k.Var(1), k.Or(k.Var(3), k.NVar(5)))
	got := k.Support(f)
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Support = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if k.Support(bdd.True) != nil {
		t.Fatal("terminals have empty support")
	}
}

func TestUnbalancedUnprotectPanics(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 2})
	f := k.And(k.Var(0), k.Var(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Unprotect(f)
}

func TestDebugChecksCatchesStaleRef(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 4, DebugChecks: true})
	f := k.And(k.Var(0), k.Var(1))
	k.GC() // f is unpinned: its node is reclaimed
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on use of a GC-freed Ref")
		}
	}()
	k.Not(f)
}

func TestDebugChecksCatchesForeignRef(t *testing.T) {
	k1 := bdd.New(bdd.Config{Vars: 16, DebugChecks: true})
	k2 := bdd.New(bdd.Config{Vars: 16, DebugChecks: true})
	// Grow k1's table well past k2's so the foreign handle is out of range.
	f := bdd.True
	for i := 0; i < 16; i++ {
		f = k1.And(f, k1.Var(i))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on a Ref from a different kernel")
		}
	}()
	//lint:ignore kernelmix this test commits the cross-kernel mistake on purpose to prove DebugChecks catches it
	k2.Not(f)
}

func TestDebugChecksAllowsInvalid(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 2, DebugChecks: true})
	if got := k.And(bdd.Invalid, k.Var(0)); got != bdd.Invalid {
		t.Fatalf("And(Invalid, x) = %v, want Invalid", got)
	}
}

func TestSetDebugChecksStampsExistingFreeList(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 4})
	f := k.And(k.Var(0), k.Var(1))
	k.GC() // frees f's node while checks are still off
	k.SetDebugChecks(true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on a Ref freed before SetDebugChecks")
		}
	}()
	k.Not(f)
}
