package bdd

// stats.go exposes the kernel's counters as an immutable snapshot, and the
// node budget as a runtime-adjustable limit. Both exist for long-lived
// deployments (cmd/cvserved): a service maps per-request deadlines onto
// temporary budgets, and reports kernel health from snapshots taken at job
// boundaries.

// Stats is a point-in-time copy of the kernel's counters. The value is plain
// data: once taken it can be handed to any goroutine (a server publishes the
// latest snapshot through an atomic pointer for its stats endpoint). Taking
// the snapshot, like every other Kernel method, must be serialized with
// kernel mutations.
type Stats struct {
	// Live is the number of live nodes, including the two terminals.
	Live int
	// Peak is the largest Live ever observed (garbage collection lowers
	// Live, never Peak).
	Peak int
	// Capacity is the number of allocated node-table slots.
	Capacity int
	// Vars is the number of boolean variables.
	Vars int
	// Budget is the current node budget; 0 means unlimited.
	Budget int
	// GCRuns counts completed garbage collections.
	GCRuns int
	// Ops counts recursive apply steps, a proxy for work performed.
	Ops uint64
	// CacheHits counts operation-cache hits across all three caches.
	CacheHits uint64
	// CacheEntries is the apply cache's current size in entries (the other
	// two caches report their own sizes below).
	CacheEntries int
	// Allocs counts node allocations since kernel creation. Unlike Live it
	// is monotonic — garbage collection never lowers it — which makes the
	// difference of two snapshots a meaningful "nodes allocated" figure for
	// the work between them.
	Allocs uint64

	// Per-operation cache figures. Each cache is sized independently;
	// lookups and hits are monotonic, so two snapshots give a windowed hit
	// rate.
	ApplyLookups   uint64
	ApplyHits      uint64
	QuantLookups   uint64
	QuantHits      uint64
	QuantEntries   int
	ReplaceLookups uint64
	ReplaceHits    uint64
	ReplaceEntries int

	// Reorders counts completed dynamic-reordering runs; ReorderSaved is
	// the cumulative live-node reduction they achieved.
	Reorders     int
	ReorderSaved uint64
}

// Delta is the movement of the kernel's monotonic counters between two
// snapshots, attributing kernel work (node allocation, GC pressure, cache
// effectiveness, apply steps) to the operation bracketed by the snapshots. A
// request-tracing layer takes one snapshot per pipeline stage; both
// snapshots must be taken on the goroutine that owns the kernel.
type Delta struct {
	// NodesAllocated is how many nodes the stage allocated (reused free-list
	// slots included).
	NodesAllocated uint64
	// GCRuns is how many garbage collections ran during the stage.
	GCRuns int
	// CacheHits is the operation-cache hits scored by the stage.
	CacheHits uint64
	// Ops is the recursive apply steps executed by the stage.
	Ops uint64
}

// DeltaSince returns the counter movement from prev to s. The snapshots must
// come from the same kernel with prev taken first; monotonic counters then
// guarantee non-negative fields.
func (s Stats) DeltaSince(prev Stats) Delta {
	return Delta{
		NodesAllocated: s.Allocs - prev.Allocs,
		GCRuns:         s.GCRuns - prev.GCRuns,
		CacheHits:      s.CacheHits - prev.CacheHits,
		Ops:            s.Ops - prev.Ops,
	}
}

// Add accumulates two deltas, for rolling consecutive stages into one.
func (d Delta) Add(o Delta) Delta {
	d.NodesAllocated += o.NodesAllocated
	d.GCRuns += o.GCRuns
	d.CacheHits += o.CacheHits
	d.Ops += o.Ops
	return d
}

// IsZero reports whether the delta records no kernel movement at all.
func (d Delta) IsZero() bool { return d == Delta{} }

// Stats takes a snapshot of the kernel's counters.
func (k *Kernel) Stats() Stats {
	return Stats{
		Live:           k.live,
		Peak:           k.peak,
		Capacity:       len(k.level),
		Vars:           k.numVars,
		Budget:         k.budget,
		GCRuns:         k.gcCount,
		Ops:            k.appliedCount,
		CacheHits:      k.applyHits + k.quantHits + k.replaceHits,
		CacheEntries:   len(k.applyCache),
		Allocs:         k.allocCount,
		ApplyLookups:   k.applyLookups,
		ApplyHits:      k.applyHits,
		QuantLookups:   k.quantLookups,
		QuantHits:      k.quantHits,
		QuantEntries:   len(k.quantCache),
		ReplaceLookups: k.replaceLookups,
		ReplaceHits:    k.replaceHits,
		ReplaceEntries: len(k.replaceCache),
		Reorders:       k.reorderRuns,
		ReorderSaved:   k.reorderSaved,
	}
}

// Budget returns the current node budget; 0 means unlimited.
func (k *Kernel) Budget() int { return k.budget }

// SetBudget replaces the node budget (0 or negative means unlimited) and
// recomputes the GC trigger. Lowering the budget below the current live
// count makes the next allocating operation abort with ErrBudget — which
// callers treat as the usual fall-back-to-SQL signal — while operations that
// only touch existing nodes still succeed. A service lowers the budget
// before evaluating a deadline-bounded request and restores it afterwards.
func (k *Kernel) SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	k.budget = n
	k.resetGCTrigger()
}
