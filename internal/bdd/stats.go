package bdd

// stats.go exposes the kernel's counters as an immutable snapshot, and the
// node budget as a runtime-adjustable limit. Both exist for long-lived
// deployments (cmd/cvserved): a service maps per-request deadlines onto
// temporary budgets, and reports kernel health from snapshots taken at job
// boundaries.

// Stats is a point-in-time copy of the kernel's counters. The value is plain
// data: once taken it can be handed to any goroutine (a server publishes the
// latest snapshot through an atomic pointer for its stats endpoint). Taking
// the snapshot, like every other Kernel method, must be serialized with
// kernel mutations.
type Stats struct {
	// Live is the number of live nodes, including the two terminals.
	Live int
	// Peak is the largest Live ever observed (garbage collection lowers
	// Live, never Peak).
	Peak int
	// Capacity is the number of allocated node-table slots.
	Capacity int
	// Vars is the number of boolean variables.
	Vars int
	// Budget is the current node budget; 0 means unlimited.
	Budget int
	// GCRuns counts completed garbage collections.
	GCRuns int
	// Ops counts recursive apply steps, a proxy for work performed.
	Ops uint64
	// CacheHits counts operation-cache hits.
	CacheHits uint64
	// CacheEntries is the current per-operation cache size in entries.
	CacheEntries int
}

// Stats takes a snapshot of the kernel's counters.
func (k *Kernel) Stats() Stats {
	return Stats{
		Live:         k.live,
		Peak:         k.peak,
		Capacity:     len(k.nodes),
		Vars:         k.numVars,
		Budget:       k.budget,
		GCRuns:       k.gcCount,
		Ops:          k.appliedCount,
		CacheHits:    k.cacheHits,
		CacheEntries: len(k.applyCache),
	}
}

// Budget returns the current node budget; 0 means unlimited.
func (k *Kernel) Budget() int { return k.budget }

// SetBudget replaces the node budget (0 or negative means unlimited) and
// recomputes the GC trigger. Lowering the budget below the current live
// count makes the next allocating operation abort with ErrBudget — which
// callers treat as the usual fall-back-to-SQL signal — while operations that
// only touch existing nodes still succeed. A service lowers the budget
// before evaluating a deadline-bounded request and restores it afterwards.
func (k *Kernel) SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	k.budget = n
	k.resetGCTrigger()
}
