package bdd

import (
	"fmt"
	"sort"
)

// reorder.go implements dynamic variable reordering: Rudell-style sifting
// built on an in-place adjacent-level swap over the unique table. The paper
// fixes its variable ordering at index-build time; long-lived indices under
// skewed update streams drift arbitrarily far from that ordering, so the
// service layer triggers Reorder between update batches when the node table
// has grown past a multiple of its post-GC baseline.
//
// The central property of the swap is that it preserves Ref identity: a
// node that existed before the swap and still encodes a function afterwards
// keeps its table index, with its fields rewritten in place. External pins
// (Protect), temporary roots (TempKeep) and every node reachable from them
// therefore stay valid across a Reorder — like GC, reordering is an
// operation-boundary event, and like GC it invalidates the operation caches
// and may reclaim unpinned, unreachable nodes (Reorder starts with a
// collection so reference counts are exact).
//
// Group sifting: variable groups registered with Group (the fdd layer
// registers every finite-domain block) move as indivisible units, so the
// within-block bit order that LessConst and the relation builders rely on
// is never disturbed — only whole blocks change their relative positions.

// ReorderOptions tunes a Reorder run.
type ReorderOptions struct {
	// MaxGrowth bounds the transient node-table growth while sifting one
	// block: the walk down/up the order aborts once live nodes exceed
	// MaxGrowth × the count at the start of that block's sift. Values ≤ 1
	// select the default of 1.2.
	MaxGrowth float64
	// MaxBlocks, when positive, caps how many blocks are sifted (most
	// populous first). Zero sifts every block.
	MaxBlocks int
}

// ReorderStats reports what a Reorder run did.
type ReorderStats struct {
	// Before and After are the live node counts around the run (Before is
	// taken after the initial garbage collection, so the difference is
	// attributable to reordering, not to reclaiming garbage).
	Before, After int
	// Swaps is the number of adjacent-level swaps performed.
	Swaps int
	// Blocks is the number of blocks sifted.
	Blocks int
}

// Group declares that the given variables must stay adjacent and in their
// current relative order during reordering: sifting moves the whole group
// as a unit. Groups that overlap (interleaved finite-domain clusters) are
// merged into one sifting block. Registering a group never changes the
// current order.
func (k *Kernel) Group(vars ...int) {
	if len(vars) == 0 {
		return
	}
	g := make([]int, 0, len(vars))
	seen := make(map[int]bool, len(vars))
	for _, v := range vars {
		k.checkVar(v)
		if !seen[v] {
			seen[v] = true
			g = append(g, v)
		}
	}
	k.groups = append(k.groups, g)
}

// Groups returns a copy of the registered variable groups.
func (k *Kernel) Groups() [][]int {
	out := make([][]int, len(k.groups))
	for i, g := range k.groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// Reorder runs group sifting over the node table and returns what it did.
// Unpinned, unreachable nodes are reclaimed first (as by GC); every pinned
// or reachable Ref remains valid and keeps its function. The operation
// caches are invalidated and interned ReplaceMaps are re-derived for the
// new order (a map whose monotonicity the new order breaks stays interned
// but reports ErrOrder from Replace until a compatible order returns).
func (k *Kernel) Reorder(opt ReorderOptions) ReorderStats {
	if k.err != nil || k.numVars < 2 {
		return ReorderStats{Before: k.live, After: k.live}
	}
	maxGrowth := opt.MaxGrowth
	if maxGrowth <= 1 {
		maxGrowth = 1.2
	}
	k.GC()
	before := k.live
	s := newReorderSession(k)
	blocks := s.buildBlocks()
	// Sift the most populous blocks first: they are where the savings are,
	// and MaxBlocks then spends its budget well.
	type blockPop struct{ id, pop int }
	pops := make([]blockPop, 0, len(blocks))
	for _, b := range blocks {
		pop := 0
		for l := b.start; l < b.start+b.n; l++ {
			pop += len(s.gather(l))
		}
		if pop > 0 {
			pops = append(pops, blockPop{id: b.id, pop: pop})
		}
	}
	sort.Slice(pops, func(i, j int) bool { return pops[i].pop > pops[j].pop })
	sifted := 0
	for _, bp := range pops {
		if opt.MaxBlocks > 0 && sifted >= opt.MaxBlocks {
			break
		}
		s.siftBlock(blocks, findBlock(blocks, bp.id), maxGrowth)
		sifted++
	}
	k.finishReorder(before - k.live)
	return ReorderStats{Before: before, After: k.live, Swaps: s.swaps, Blocks: sifted}
}

// SetOrder moves the variables into the exact given order: order[l] is the
// variable to place at level l, and order must be a permutation of the
// kernel's variables. Group constraints are not consulted — SetOrder is the
// deterministic tool for tests, experiments and order replay, and callers
// own the consequences for their finite-domain blocks. Like Reorder it
// collects garbage first and preserves every pinned or reachable Ref.
func (k *Kernel) SetOrder(order []int) error {
	if k.err != nil {
		return k.err
	}
	if len(order) != k.numVars {
		return fmt.Errorf("bdd: SetOrder needs %d variables, got %d", k.numVars, len(order))
	}
	seen := make([]bool, k.numVars)
	for _, v := range order {
		if v < 0 || v >= k.numVars || seen[v] {
			return fmt.Errorf("bdd: SetOrder argument is not a permutation of the variables")
		}
		seen[v] = true
	}
	k.GC()
	before := k.live
	s := newReorderSession(k)
	for l := 0; l < k.numVars; l++ {
		// Bubble the wanted variable up to level l; levels above l already
		// hold their final variables and are not disturbed.
		for j := int(k.var2level[order[l]]); j > l; j-- {
			s.swapLevels(j - 1)
		}
	}
	k.finishReorder(before - k.live)
	return nil
}

// finishReorder restores the kernel's derived state after the permutation
// changed: level-indexed replacement tables, operation caches (their
// entries describe rewritten nodes), the GC trigger, and the reorder
// counters.
func (k *Kernel) finishReorder(saved int) {
	for i := range k.replaceMaps {
		k.rebuildReplaceMap(&k.replaceMaps[i])
	}
	k.clearCaches()
	k.resetGCTrigger()
	k.reorderRuns++
	if saved > 0 {
		k.reorderSaved += uint64(saved)
	}
}

// ReorderRuns returns how many reordering runs (Reorder or SetOrder) have
// completed.
func (k *Kernel) ReorderRuns() int { return k.reorderRuns }

// reorderSession carries the bookkeeping that only exists while a reorder
// runs: per-node reference counts (parent edges + external pins + temp
// roots), per-level node lists, and a generation-stamped visited set for
// filtering those lists lazily.
type reorderSession struct {
	k        *Kernel
	rc       []int32   // reference counts; rc==0 ⇒ the node is dead
	byLevel  [][]int32 // node indices per level; may hold stale/duplicate entries
	stamp    []int32   // last gather generation that saw the node
	stampGen int32
	swaps    int
}

// newReorderSession snapshots the live graph. The caller must have run GC
// immediately before, so every table slot is either live or freedLevel-
// stamped and every live node is reachable from a pin or temp root.
func newReorderSession(k *Kernel) *reorderSession {
	n := len(k.level)
	s := &reorderSession{
		k:       k,
		rc:      make([]int32, n),
		stamp:   make([]int32, n),
		byLevel: make([][]int32, k.numVars),
	}
	for i := 2; i < n; i++ {
		if k.level[i] == freedLevel {
			continue
		}
		s.byLevel[k.level[i]] = append(s.byLevel[k.level[i]], int32(i))
		s.rc[k.low[i]]++
		s.rc[k.high[i]]++
		s.rc[i] += k.refs[i]
	}
	for _, r := range k.tempRoots {
		if r > True {
			s.rc[r]++
		}
	}
	return s
}

// gather returns the live nodes currently at level l, compacting the
// level's list in place: entries whose slot has moved to another level (or
// was freed and reused) and duplicates from slot reuse are dropped.
func (s *reorderSession) gather(l int) []int32 {
	s.stampGen++
	k := s.k
	list := s.byLevel[l][:0]
	for _, i := range s.byLevel[l] {
		if k.level[i] == uint32(l) && s.stamp[i] != s.stampGen {
			s.stamp[i] = s.stampGen
			list = append(list, i)
		}
	}
	s.byLevel[l] = list
	return list
}

// swapLevels exchanges levels l and l+1 in place. Writing A for the
// variable at level l and B for the one at l+1:
//
//   - B-nodes keep their children (all strictly below l+1) and are simply
//     relabeled to level l.
//   - A-nodes without a B-child (I-nodes) are independent of B and are
//     relabeled to l+1.
//   - A-nodes with a B-child (D-nodes) are rewritten in place at level l —
//     now testing B — with fresh (or shared) children at level l+1 built
//     from the four quadrant cofactors. The rewritten node keeps its index,
//     which is what preserves external Refs.
//
// Children that lose their last reference are reclaimed immediately so the
// live counter steers the sifting heuristic accurately.
func (s *reorderSession) swapLevels(l int) {
	k := s.k
	upper := s.gather(l)
	lower := s.gather(l + 1)
	ll := uint32(l)
	for _, i := range upper {
		k.unlinkNode(i)
	}
	for _, i := range lower {
		k.unlinkNode(i)
	}
	for _, i := range lower {
		k.level[i] = ll
		s.relink(i)
	}
	// Pass A: relabel the I-nodes first so the D-node rewrites below can
	// share them through the unique table.
	newUpper := make([]int32, 0, len(upper))
	var dnodes []int32
	for _, i := range upper {
		if k.level[k.low[i]] == ll || k.level[k.high[i]] == ll {
			dnodes = append(dnodes, i)
		} else {
			k.level[i] = ll + 1
			s.relink(i)
			newUpper = append(newUpper, i)
		}
	}
	// Pass B: rewrite the D-nodes.
	for _, x := range dnodes {
		f0, f1 := k.low[x], k.high[x]
		var f00, f01, f10, f11 Ref
		if k.level[f0] == ll {
			f00, f01 = k.low[f0], k.high[f0]
		} else {
			f00, f01 = f0, f0
		}
		if k.level[f1] == ll {
			f10, f11 = k.low[f1], k.high[f1]
		} else {
			f10, f11 = f1, f1
		}
		newLow := s.makeAt(ll+1, f00, f10, &newUpper)
		newHigh := s.makeAt(ll+1, f01, f11, &newUpper)
		if newLow == newHigh {
			// Impossible for a canonical D-node: it would have been
			// redundant before the swap.
			panic("bdd: reorder produced a redundant node")
		}
		// Take the new references before dropping the old ones: newLow or
		// newHigh can be f0 or f1 itself (collapsed quadrants), and the
		// deref cascade must not reclaim it in between.
		s.rc[newLow]++
		s.rc[newHigh]++
		k.low[x] = newLow
		k.high[x] = newHigh
		s.relink(x)
		s.deref(f0)
		s.deref(f1)
	}
	s.byLevel[l] = append(lower, dnodes...)
	s.byLevel[l+1] = newUpper
	va, vb := k.level2var[l], k.level2var[l+1]
	k.level2var[l], k.level2var[l+1] = vb, va
	k.var2level[va], k.var2level[vb] = uint32(l+1), ll
	s.swaps++
}

// makeAt returns the canonical node (level, lo, hi) during a swap, creating
// it if the unique table has none. A created node takes references on its
// children, starts with zero references itself (the caller adds the parent
// edge), and is recorded on list. Unlike makeNode it never consults the
// node budget: an adjacent swap must complete atomically, and the sift
// loop bounds growth between swaps instead.
func (s *reorderSession) makeAt(level uint32, lo, hi Ref, list *[]int32) Ref {
	k := s.k
	if lo == hi {
		return lo
	}
	h := nodeHash(level, lo, hi) & uint32(len(k.buckets)-1)
	for i := k.buckets[h]; i >= 0; i = k.next[i] {
		if k.level[i] == level && k.low[i] == lo && k.high[i] == hi {
			return Ref(i)
		}
	}
	var idx int32
	if k.free >= 0 {
		idx = k.free
		k.free = k.next[idx]
		k.refs[idx] = 0
	} else {
		k.level = append(k.level, 0)
		k.low = append(k.low, 0)
		k.high = append(k.high, 0)
		k.next = append(k.next, 0)
		k.refs = append(k.refs, 0)
		s.rc = append(s.rc, 0)
		s.stamp = append(s.stamp, 0)
		idx = int32(len(k.level) - 1)
	}
	k.level[idx], k.low[idx], k.high[idx] = level, lo, hi
	k.next[idx] = k.buckets[h]
	k.buckets[h] = idx
	k.live++
	k.allocCount++
	if k.live > k.peak {
		k.peak = k.live
	}
	s.rc[lo]++
	s.rc[hi]++
	s.rc[idx] = 0
	*list = append(*list, idx)
	if k.live > len(k.buckets)*3/4 {
		k.growBuckets()
	}
	return Ref(idx)
}

// deref drops one reference from f and reclaims it (and, transitively, its
// children) when none remain. Pinned nodes can never hit zero: their pins
// are part of the count.
func (s *reorderSession) deref(f Ref) {
	k := s.k
	for f > True {
		s.rc[f]--
		if s.rc[f] > 0 {
			return
		}
		k.unlinkNode(int32(f))
		lo, hi := k.low[f], k.high[f]
		k.level[f] = freedLevel
		k.refs[f] = 0
		k.next[f] = k.free
		k.free = int32(f)
		k.live--
		s.deref(lo)
		f = hi
	}
}

// unlinkNode removes node i from its unique-table chain. Must run before
// the node's identity fields change.
func (k *Kernel) unlinkNode(i int32) {
	h := nodeHash(k.level[i], k.low[i], k.high[i]) & uint32(len(k.buckets)-1)
	p := k.buckets[h]
	if p == i {
		k.buckets[h] = k.next[i]
		return
	}
	for k.next[p] != i {
		p = k.next[p]
	}
	k.next[p] = k.next[i]
}

// relink inserts node i into the chain for its current identity fields.
func (s *reorderSession) relink(i int32) {
	k := s.k
	h := nodeHash(k.level[i], k.low[i], k.high[i]) & uint32(len(k.buckets)-1)
	k.next[i] = k.buckets[h]
	k.buckets[h] = i
}

// rblock is a sifting block: a run of adjacent levels that moves as a unit.
type rblock struct {
	id    int
	start int // top level of the block
	n     int // number of levels
}

func findBlock(blocks []rblock, id int) int {
	for i, b := range blocks {
		if b.id == id {
			return i
		}
	}
	panic("bdd: reorder block lost")
}

// buildBlocks maps the registered variable groups onto the current order:
// each group spans the contiguous level interval from its topmost to its
// bottommost variable, overlapping intervals merge (interleaved clusters),
// and levels outside every group become single-level blocks.
func (s *reorderSession) buildBlocks() []rblock {
	k := s.k
	type span struct{ lo, hi int }
	var spans []span
	for _, g := range k.groups {
		sp := span{lo: k.numVars, hi: -1}
		for _, v := range g {
			l := int(k.var2level[v])
			if l < sp.lo {
				sp.lo = l
			}
			if l > sp.hi {
				sp.hi = l
			}
		}
		spans = append(spans, sp)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	merged := spans[:0]
	for _, sp := range spans {
		if n := len(merged); n > 0 && sp.lo <= merged[n-1].hi {
			if sp.hi > merged[n-1].hi {
				merged[n-1].hi = sp.hi
			}
		} else {
			merged = append(merged, sp)
		}
	}
	var blocks []rblock
	level := 0
	mi := 0
	for level < k.numVars {
		if mi < len(merged) && merged[mi].lo == level {
			blocks = append(blocks, rblock{id: len(blocks), start: level, n: merged[mi].hi - merged[mi].lo + 1})
			level = merged[mi].hi + 1
			mi++
		} else {
			blocks = append(blocks, rblock{id: len(blocks), start: level, n: 1})
			level++
		}
	}
	return blocks
}

// swapBlocks exchanges adjacent blocks i and i+1 with adjacent-level swaps,
// preserving the internal level order of both, and updates the block list.
func (s *reorderSession) swapBlocks(blocks []rblock, i int) {
	a, b := blocks[i], blocks[i+1]
	// Move each level of a past all of b, bottom level of a first, so a's
	// internal order is preserved while it sinks below b.
	for x := a.start + a.n - 1; x >= a.start; x-- {
		for j := x; j < x+b.n; j++ {
			s.swapLevels(j)
		}
	}
	blocks[i] = rblock{id: b.id, start: a.start, n: b.n}
	blocks[i+1] = rblock{id: a.id, start: a.start + b.n, n: a.n}
}

// siftBlock walks the block at position pos down to the bottom of the
// order, back up to the top, and finally back to the best position seen,
// Rudell-style. The walk aborts early in either direction once live nodes
// exceed the growth bound; the block still lands on the best position
// visited.
func (s *reorderSession) siftBlock(blocks []rblock, pos int, maxGrowth float64) {
	k := s.k
	bound := int(float64(k.live) * maxGrowth)
	best := k.live
	bestPos := pos
	p := pos
	for p+1 < len(blocks) {
		s.swapBlocks(blocks, p)
		p++
		if k.live < best {
			best = k.live
			bestPos = p
		}
		if k.live > bound {
			break
		}
	}
	for p > 0 {
		s.swapBlocks(blocks, p-1)
		p--
		if k.live < best {
			best = k.live
			bestPos = p
		}
		if k.live > bound {
			break
		}
	}
	for p < bestPos {
		s.swapBlocks(blocks, p)
		p++
	}
	for p > bestPos {
		s.swapBlocks(blocks, p-1)
		p--
	}
}
