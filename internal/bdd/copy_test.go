package bdd_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bdd"
)

// copy_test.go checks the cross-kernel transfer API: CopyTo must preserve
// BDD structure exactly (SatCount, node count, evaluation on every
// assignment), share copied structure through the destination's unique
// table, and respect the destination's node budget.

func TestCopyToQuickPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	src := bdd.New(bdd.Config{Vars: qVars})
	dst := bdd.New(bdd.Config{Vars: qVars})
	all := assignments(qVars)
	property := func(a qExpr) bool {
		f := src.Protect(a.e.build(src))
		defer src.Unprotect(f)
		got, err := src.CopyTo(dst, f)
		if err != nil {
			t.Fatalf("CopyTo: %v", err)
		}
		g := dst.Protect(got[0])
		defer dst.Unprotect(g)
		if src.SatCount(f) != dst.SatCount(g) {
			return false
		}
		if src.NodeCount(f) != dst.NodeCount(g) {
			return false
		}
		// Random assignments plus the exhaustive set (qVars is small).
		for _, asn := range all {
			if src.Eval(f, asn) != dst.Eval(g, asn) {
				return false
			}
		}
		for i := 0; i < 16; i++ {
			asn := make([]bool, qVars)
			for j := range asn {
				asn[j] = rng.Intn(2) == 1
			}
			if src.Eval(f, asn) != dst.Eval(g, asn) {
				return false
			}
		}
		// Copying again dedups through the destination's unique table:
		// identical refs come back and no nodes are allocated.
		before := dst.Size()
		again, err := src.CopyTo(dst, f)
		if err != nil {
			t.Fatalf("second CopyTo: %v", err)
		}
		return again[0] == g && dst.Size() == before
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(qExpr{e: randExpr(rng, qVars, 2+r.Intn(12))})
		},
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCopyToIntoPopulatedKernelQuick is the adoption scenario of the read
// pool: the destination kernel already holds live protected BDDs (a replica
// with older indices) when new roots are copied in. The copy must preserve
// SatCount, node count, and evaluation on every assignment, while the
// destination's pre-existing roots keep evaluating exactly as before —
// copied structure may *share* their nodes but must never mutate them.
func TestCopyToIntoPopulatedKernelQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(613))
	all := assignments(qVars)
	property := func(a, b qExpr) bool {
		src := bdd.New(bdd.Config{Vars: qVars})
		dst := bdd.New(bdd.Config{Vars: qVars})
		// Populate the destination first and record resident behavior.
		resident := dst.Protect(b.e.build(dst))
		residentVals := make([]bool, len(all))
		for i, asn := range all {
			residentVals[i] = dst.Eval(resident, asn)
		}
		residentNodes := dst.NodeCount(resident)

		f := src.Protect(a.e.build(src))
		got, err := src.CopyTo(dst, f)
		if err != nil {
			t.Fatalf("CopyTo: %v", err)
		}
		g := dst.Protect(got[0])
		if src.SatCount(f) != dst.SatCount(g) {
			return false
		}
		if src.NodeCount(f) != dst.NodeCount(g) {
			return false
		}
		for _, asn := range all {
			if src.Eval(f, asn) != dst.Eval(g, asn) {
				return false
			}
		}
		for i := 0; i < 16; i++ {
			asn := make([]bool, qVars)
			for j := range asn {
				asn[j] = rng.Intn(2) == 1
			}
			if src.Eval(f, asn) != dst.Eval(g, asn) {
				return false
			}
		}
		// The resident root is bit-for-bit undisturbed.
		for i, asn := range all {
			if dst.Eval(resident, asn) != residentVals[i] {
				return false
			}
		}
		if dst.NodeCount(resident) != residentNodes {
			return false
		}
		// A GC with both roots protected must keep both alive.
		dst.GC()
		for i, asn := range all {
			if dst.Eval(resident, asn) != residentVals[i] || src.Eval(f, asn) != dst.Eval(g, asn) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(qExpr{e: randExpr(rng, qVars, 2+r.Intn(12))})
			args[1] = reflect.ValueOf(qExpr{e: randExpr(rng, qVars, 2+r.Intn(12))})
		},
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCopyToPreservesSharingAcrossRoots(t *testing.T) {
	const nv = 8
	src := bdd.New(bdd.Config{Vars: nv})
	common := src.And(src.Var(2), src.Or(src.Var(4), src.NVar(6)))
	f := src.Protect(src.Or(src.Var(0), common))
	g := src.Protect(src.And(src.NVar(1), common))

	dst := bdd.New(bdd.Config{Vars: nv})
	got, err := src.CopyTo(dst, f, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d roots, want 2", len(got))
	}
	if want := src.SharedNodeCount(f, g); dst.SharedNodeCount(got[0], got[1]) != want {
		t.Fatalf("shared node count %d, want %d", dst.SharedNodeCount(got[0], got[1]), want)
	}
}

func TestCopyToSameKernelIsIdentity(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 4})
	f := k.And(k.Var(0), k.Var(3))
	got, err := k.CopyTo(k, f, bdd.True)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != f || got[1] != bdd.True {
		t.Fatalf("same-kernel copy changed refs: %v", got)
	}
}

func TestCopyToRespectsDestinationBudget(t *testing.T) {
	const nv = 12
	src := bdd.New(bdd.Config{Vars: nv})
	// A parity chain has 2*nv internal nodes — far beyond a budget of 4.
	f := src.Var(0)
	for i := 1; i < nv; i++ {
		f = src.TempKeep(src.Xor(f, src.Var(i)))
	}
	dst := bdd.New(bdd.Config{Vars: nv, NodeBudget: 4})
	if _, err := src.CopyTo(dst, f); !errors.Is(err, bdd.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if !errors.Is(dst.Err(), bdd.ErrBudget) {
		t.Fatalf("dst.Err() = %v, want ErrBudget", dst.Err())
	}
}

func TestCopyToRejectsNarrowDestination(t *testing.T) {
	src := bdd.New(bdd.Config{Vars: 8})
	f := src.Var(6)
	dst := bdd.New(bdd.Config{Vars: 4})
	if _, err := src.CopyTo(dst, f); err == nil {
		t.Fatal("copy into a kernel with too few variables must fail")
	}
}
