package bdd_test

import (
	"bytes"
	"testing"

	"repro/internal/bdd"
)

// FuzzLoad: the deserializer must reject arbitrary bytes gracefully — no
// panics, no invalid refs — and accept everything Save produces.
func FuzzLoad(f *testing.F) {
	// Seed with a valid file.
	k := bdd.New(bdd.Config{Vars: 8})
	g := k.Or(k.And(k.Var(0), k.Var(3)), k.NVar(7))
	var buf bytes.Buffer
	if err := k.Save(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("\x00BDD1"))
	f.Add([]byte("\x00BDD1\x08\x01\x00\x00\x01\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		k := bdd.New(bdd.Config{Vars: 8, NodeBudget: 4096})
		roots, err := k.Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loaded must be healthy: evaluable and countable.
		for _, r := range roots {
			if r == bdd.Invalid {
				t.Fatal("Load returned Invalid without error")
			}
			k.NodeCount(r)
			k.SatCount(r)
		}
	})
}
