package bdd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt is reported (wrapped) by Load for input that is not a
// well-formed BDD file: bad magic, truncation mid-structure, out-of-range
// node references, or implausible counts. Durability layers match it with
// errors.Is to distinguish a damaged artifact (recoverable by falling back
// to an older snapshot) from an environmental failure such as a read error.
var ErrCorrupt = errors.New("bdd: corrupt or truncated BDD file")

// io.go implements BDD serialization, so logical indices can be persisted
// and reloaded without re-encoding the base relations. The format is a
// topologically ordered node list (children before parents) with
// varint-encoded fields; on load, nodes are re-interned through makeNode,
// so a loaded BDD shares structure with everything already in the kernel.

const ioMagic = "\x00BDD1"

// Save writes the subgraphs reachable from roots to w. The roots' order is
// preserved for Load.
func (k *Kernel) Save(w io.Writer, roots ...Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ioMagic); err != nil {
		return err
	}
	var buf []byte
	writeUvarint := func(v uint64) error {
		buf = binary.AppendUvarint(buf[:0], v)
		_, err := bw.Write(buf)
		return err
	}
	if err := writeUvarint(uint64(k.numVars)); err != nil {
		return err
	}
	// Topological order via iterative post-order.
	idOf := map[Ref]uint64{False: 0, True: 1}
	var order []Ref
	var visit func(Ref) error
	visit = func(f Ref) error {
		if f == Invalid {
			return fmt.Errorf("bdd: Save of Invalid ref")
		}
		if _, done := idOf[f]; done {
			return nil
		}
		n := &k.nodes[f]
		if err := visit(n.low); err != nil {
			return err
		}
		if err := visit(n.high); err != nil {
			return err
		}
		idOf[f] = uint64(len(order)) + 2
		order = append(order, f)
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(order))); err != nil {
		return err
	}
	for _, f := range order {
		n := &k.nodes[f]
		if err := writeUvarint(uint64(n.level)); err != nil {
			return err
		}
		if err := writeUvarint(idOf[n.low]); err != nil {
			return err
		}
		if err := writeUvarint(idOf[n.high]); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(roots))); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeUvarint(idOf[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads BDDs previously written by Save into this kernel and returns
// their roots in saved order. The kernel must have at least as many
// variables as the saving kernel; nodes are interned, so loading into a
// kernel that already holds equal subfunctions shares them. Load counts
// against the node budget like any other operation.
//
// Load never trusts its input: malformed bytes produce an error wrapping
// ErrCorrupt (never a panic), and declared counts never drive allocation
// ahead of the bytes that back them.
func (k *Kernel) Load(r io.Reader) ([]Ref, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ioMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %w", ErrCorrupt, err)
	}
	if string(magic) != ioMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	vars, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading variable count: %w", ErrCorrupt, err)
	}
	if vars > 1<<31 {
		return nil, fmt.Errorf("%w: implausible variable count %d", ErrCorrupt, vars)
	}
	if int(vars) > k.numVars {
		return nil, fmt.Errorf("bdd: file needs %d variables, kernel has %d", vars, k.numVars)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading node count: %w", ErrCorrupt, err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, count)
	}
	// Grow incrementally: the count is untrusted input and must not drive
	// a huge up-front allocation.
	initial := count
	if initial > 1<<16 {
		initial = 1 << 16
	}
	refs := make([]Ref, 2, 2+initial)
	refs[0], refs[1] = False, True
	mark := k.TempMark()
	defer k.TempRelease(mark)
	for i := uint64(0); i < count; i++ {
		level, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d truncated: %w", ErrCorrupt, i, err)
		}
		lowID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d truncated: %w", ErrCorrupt, i, err)
		}
		highID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d truncated: %w", ErrCorrupt, i, err)
		}
		if level >= vars || lowID >= i+2 || highID >= i+2 {
			return nil, fmt.Errorf("%w: node %d out of range", ErrCorrupt, i)
		}
		f := k.makeNode(uint32(level), refs[lowID], refs[highID])
		if f == Invalid {
			return nil, k.Err()
		}
		refs = append(refs, k.TempKeep(f))
	}
	rootCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading root count: %w", ErrCorrupt, err)
	}
	if rootCount > 1<<31 {
		return nil, fmt.Errorf("%w: implausible root count %d", ErrCorrupt, rootCount)
	}
	rootInit := rootCount
	if rootInit > 1<<16 {
		rootInit = 1 << 16
	}
	roots := make([]Ref, 0, rootInit)
	for i := uint64(0); i < rootCount; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: root %d truncated: %w", ErrCorrupt, i, err)
		}
		if id >= uint64(len(refs)) {
			return nil, fmt.Errorf("%w: root %d out of range", ErrCorrupt, i)
		}
		roots = append(roots, refs[id])
	}
	return roots, nil
}
