package bdd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt is reported (wrapped) by Load for input that is not a
// well-formed BDD file: bad magic, truncation mid-structure, out-of-range
// node references, or implausible counts. Durability layers match it with
// errors.Is to distinguish a damaged artifact (recoverable by falling back
// to an older snapshot) from an environmental failure such as a read error.
var ErrCorrupt = errors.New("bdd: corrupt or truncated BDD file")

// io.go implements BDD serialization, so logical indices can be persisted
// and reloaded without re-encoding the base relations. The format is a
// topologically ordered node list (children before parents) with
// varint-encoded fields; on load, nodes are re-interned through makeNode,
// so a loaded BDD shares structure with everything already in the kernel.
//
// Version 2 of the format additionally carries the variable order (the
// level→variable permutation) so that indices saved after a dynamic
// reorder restore with the ordering that made them small. Version-1 files
// (written before reordering existed, always identity order) still load.

const (
	ioMagic   = "\x00BDD2"
	ioMagicV1 = "\x00BDD1"
)

// Save writes the subgraphs reachable from roots to w, including the
// current variable order. The roots' order is preserved for Load.
func (k *Kernel) Save(w io.Writer, roots ...Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ioMagic); err != nil {
		return err
	}
	var buf []byte
	writeUvarint := func(v uint64) error {
		buf = binary.AppendUvarint(buf[:0], v)
		_, err := bw.Write(buf)
		return err
	}
	if err := writeUvarint(uint64(k.numVars)); err != nil {
		return err
	}
	// The level→variable permutation, top level first.
	for _, v := range k.level2var {
		if err := writeUvarint(uint64(v)); err != nil {
			return err
		}
	}
	// Topological order via iterative post-order.
	idOf := map[Ref]uint64{False: 0, True: 1}
	var order []Ref
	var visit func(Ref) error
	visit = func(f Ref) error {
		if f == Invalid {
			return fmt.Errorf("bdd: Save of Invalid ref")
		}
		if _, done := idOf[f]; done {
			return nil
		}
		if err := visit(k.low[f]); err != nil {
			return err
		}
		if err := visit(k.high[f]); err != nil {
			return err
		}
		idOf[f] = uint64(len(order)) + 2
		order = append(order, f)
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(order))); err != nil {
		return err
	}
	for _, f := range order {
		if err := writeUvarint(uint64(k.level[f])); err != nil {
			return err
		}
		if err := writeUvarint(idOf[k.low[f]]); err != nil {
			return err
		}
		if err := writeUvarint(idOf[k.high[f]]); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(roots))); err != nil {
		return err
	}
	for _, r := range roots {
		if err := writeUvarint(idOf[r]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads BDDs previously written by Save into this kernel and returns
// their roots in saved order. The kernel must have at least as many
// variables as the saving kernel; nodes are interned, so loading into a
// kernel that already holds equal subfunctions shares them. Load counts
// against the node budget like any other operation.
//
// Variable order: a pristine kernel (no nodes beyond the terminals, still
// on the identity order) adopts the file's variable order, so a warm
// restart reproduces the ordering a reorder had found. A kernel that
// already holds nodes or has its own non-identity order only accepts files
// whose order is consistent with its own (same relative order of the
// file's variables); anything else is an error, because interning nodes
// under a different order would corrupt canonicity.
//
// Load never trusts its input: malformed bytes produce an error wrapping
// ErrCorrupt (never a panic), and declared counts never drive allocation
// ahead of the bytes that back them.
func (k *Kernel) Load(r io.Reader) ([]Ref, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ioMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %w", ErrCorrupt, err)
	}
	var withOrder bool
	switch string(magic) {
	case ioMagic:
		withOrder = true
	case ioMagicV1:
		withOrder = false
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	vars, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading variable count: %w", ErrCorrupt, err)
	}
	if vars > 1<<31 {
		return nil, fmt.Errorf("%w: implausible variable count %d", ErrCorrupt, vars)
	}
	if int(vars) > k.numVars {
		return nil, fmt.Errorf("bdd: file needs %d variables, kernel has %d", vars, k.numVars)
	}
	// fileL2V is the saving kernel's level→variable permutation over its
	// first `vars` levels; version-1 files are always identity.
	fileL2V := make([]uint32, vars)
	if withOrder {
		seen := make([]bool, vars)
		for l := uint64(0); l < vars; l++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: variable order truncated at level %d: %w", ErrCorrupt, l, err)
			}
			if v >= vars || seen[v] {
				return nil, fmt.Errorf("%w: variable order is not a permutation", ErrCorrupt)
			}
			seen[v] = true
			fileL2V[l] = uint32(v)
		}
	} else {
		for l := range fileL2V {
			fileL2V[l] = uint32(l)
		}
	}
	if k.live == 2 && k.orderIsIdentity() {
		// Pristine kernel: adopt the file's order for the file's variables;
		// any extra kernel variables keep their identity levels below them.
		for l, v := range fileL2V {
			k.level2var[l] = v
			k.var2level[v] = uint32(l)
		}
		for i := range k.replaceMaps {
			k.rebuildReplaceMap(&k.replaceMaps[i])
		}
		k.clearCaches()
	}
	// levelMap sends a file level to the kernel level of the same variable.
	// Interning is only sound if it is strictly increasing — the file's
	// relative variable order must agree with the kernel's.
	levelMap := make([]uint32, vars)
	for l := uint64(0); l < vars; l++ {
		levelMap[l] = k.var2level[fileL2V[l]]
		if l > 0 && levelMap[l] <= levelMap[l-1] {
			return nil, fmt.Errorf("bdd: file variable order is incompatible with the kernel's")
		}
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading node count: %w", ErrCorrupt, err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, count)
	}
	// Grow incrementally: the count is untrusted input and must not drive
	// a huge up-front allocation.
	initial := count
	if initial > 1<<16 {
		initial = 1 << 16
	}
	refs := make([]Ref, 2, 2+initial)
	refs[0], refs[1] = False, True
	mark := k.TempMark()
	defer k.TempRelease(mark)
	for i := uint64(0); i < count; i++ {
		level, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d truncated: %w", ErrCorrupt, i, err)
		}
		lowID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d truncated: %w", ErrCorrupt, i, err)
		}
		highID, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d truncated: %w", ErrCorrupt, i, err)
		}
		if level >= vars || lowID >= i+2 || highID >= i+2 {
			return nil, fmt.Errorf("%w: node %d out of range", ErrCorrupt, i)
		}
		f := k.makeNode(levelMap[level], refs[lowID], refs[highID])
		if f == Invalid {
			return nil, k.Err()
		}
		refs = append(refs, k.TempKeep(f))
	}
	rootCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: reading root count: %w", ErrCorrupt, err)
	}
	if rootCount > 1<<31 {
		return nil, fmt.Errorf("%w: implausible root count %d", ErrCorrupt, rootCount)
	}
	rootInit := rootCount
	if rootInit > 1<<16 {
		rootInit = 1 << 16
	}
	roots := make([]Ref, 0, rootInit)
	for i := uint64(0); i < rootCount; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: root %d truncated: %w", ErrCorrupt, i, err)
		}
		if id >= uint64(len(refs)) {
			return nil, fmt.Errorf("%w: root %d out of range", ErrCorrupt, i)
		}
		roots = append(roots, refs[id])
	}
	return roots, nil
}

// orderIsIdentity reports whether variable i sits at level i for all i.
func (k *Kernel) orderIsIdentity() bool {
	for i, v := range k.level2var {
		if int(v) != i {
			return false
		}
	}
	return true
}
