package bdd_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	const nv = 10
	rng := rand.New(rand.NewSource(71))
	k := bdd.New(bdd.Config{Vars: nv})
	var exprs []*expr
	var roots []bdd.Ref
	for i := 0; i < 5; i++ {
		e := randExpr(rng, nv, 15)
		exprs = append(exprs, e)
		roots = append(roots, k.Protect(e.build(k)))
	}
	var buf bytes.Buffer
	if err := k.Save(&buf, roots...); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh kernel: functions must evaluate identically.
	k2 := bdd.New(bdd.Config{Vars: nv})
	loaded, err := k2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(roots) {
		t.Fatalf("loaded %d roots, want %d", len(loaded), len(roots))
	}
	for i, e := range exprs {
		for _, a := range assignments(nv) {
			if k2.Eval(loaded[i], a) != e.eval(a) {
				t.Fatalf("root %d evaluates differently after load", i)
			}
		}
		if k2.NodeCount(loaded[i]) != k.NodeCount(roots[i]) {
			t.Fatalf("root %d changed size across save/load", i)
		}
	}
}

func TestLoadSharesWithExistingNodes(t *testing.T) {
	const nv = 6
	k := bdd.New(bdd.Config{Vars: nv})
	f := k.Protect(k.And(k.Var(0), k.Or(k.Var(2), k.NVar(4))))
	var buf bytes.Buffer
	if err := k.Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	// Loading into the same kernel re-interns to the identical Ref.
	loaded, err := k.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0] != f {
		t.Fatal("reload into the same kernel must return the identical ref")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 4})
	cases := []string{
		"",
		"junk",
		"\x00BDD1",                 // truncated after magic
		"\x00BDD2\x04\x00\x00",     // wrong magic version
		"\x00BDD1\x04\x01\xff\xff", // corrupt node fields
	}
	for _, src := range cases {
		if _, err := k.Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q) succeeded, want error", src)
		}
	}
}

// TestLoadRejectsEveryTruncation chops a valid file at every byte boundary:
// each prefix must produce an ErrCorrupt error (except the full file), never
// a panic or an Invalid root.
func TestLoadRejectsEveryTruncation(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 8})
	f := k.Or(k.And(k.Var(0), k.Var(3)), k.And(k.NVar(5), k.Var(7)))
	g := k.Xor(k.Var(1), k.Var(6))
	var buf bytes.Buffer
	if err := k.Save(&buf, f, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		k2 := bdd.New(bdd.Config{Vars: 8})
		roots, err := k2.Load(bytes.NewReader(full[:n]))
		if err == nil {
			t.Fatalf("Load of %d/%d-byte prefix succeeded with %d roots", n, len(full), len(roots))
		}
		if !errors.Is(err, bdd.ErrCorrupt) {
			t.Fatalf("Load of %d-byte prefix: error %v does not wrap ErrCorrupt", n, err)
		}
	}
	if _, err := k.Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("Load of the full file failed: %v", err)
	}
}

// TestLoadSurvivesEveryByteCorruption flips every byte of a valid file in
// turn. Each mutation must either fail with an error or load roots that are
// healthy (evaluable, countable) — never panic, never return Invalid.
func TestLoadSurvivesEveryByteCorruption(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 8})
	f := k.Or(k.And(k.Var(0), k.Var(3)), k.NVar(7))
	var buf bytes.Buffer
	if err := k.Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := 0; i < len(full); i++ {
		for _, flip := range []byte{0xff, 0x01, 0x80} {
			mut := append([]byte(nil), full...)
			mut[i] ^= flip
			k2 := bdd.New(bdd.Config{Vars: 8, NodeBudget: 4096})
			roots, err := k2.Load(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			for _, r := range roots {
				if r == bdd.Invalid {
					t.Fatalf("byte %d ^ %#x: Load returned Invalid without error", i, flip)
				}
				k2.NodeCount(r)
				k2.SatCount(r)
			}
		}
	}
}

// TestLoadBoundsAllocation feeds headers that declare huge node and root
// counts with no data behind them: Load must fail on the missing bytes
// without allocating for the declared counts. The implausible-count guards
// reject anything past 2^31 outright.
func TestLoadBoundsAllocation(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"huge node count, no nodes", append([]byte("\x00BDD1\x08"),
			0xff, 0xff, 0xff, 0x07)}, // count uvarint ≈ 2^30, then EOF
		{"over-limit node count", append([]byte("\x00BDD1\x08"),
			0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)}, // count > 2^31
		{"huge var count", append([]byte("\x00BDD1"),
			0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)}, // vars > 2^31
		{"huge root count", append([]byte("\x00BDD1\x08\x00"),
			0xff, 0xff, 0xff, 0x07)}, // 0 nodes, root count ≈ 2^30, then EOF
	}
	for _, tc := range cases {
		k := bdd.New(bdd.Config{Vars: 8})
		if _, err := k.Load(bytes.NewReader(tc.data)); !errors.Is(err, bdd.ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", tc.name, err)
		}
	}
}

func TestLoadRejectsTooManyVars(t *testing.T) {
	big := bdd.New(bdd.Config{Vars: 12})
	f := big.And(big.Var(0), big.Var(11))
	var buf bytes.Buffer
	if err := big.Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	small := bdd.New(bdd.Config{Vars: 4})
	if _, err := small.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("load into a smaller kernel must fail")
	}
}

func TestSaveSharedRootsOnce(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 6})
	f := k.And(k.Var(0), k.Var(1))
	g := k.Or(f, k.Var(2)) // shares f's nodes
	var buf bytes.Buffer
	if err := k.Save(&buf, f, g, f); err != nil {
		t.Fatal(err)
	}
	k2 := bdd.New(bdd.Config{Vars: 6})
	loaded, err := k2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 || loaded[0] != loaded[2] {
		t.Fatal("duplicate roots must load to the same ref")
	}
	// Shared structure is preserved: listing f twice adds no nodes.
	if k2.SharedNodeCount(loaded...) != k2.SharedNodeCount(loaded[0], loaded[1]) {
		t.Fatal("duplicate root changed the shared footprint")
	}
}
