package bdd_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	const nv = 10
	rng := rand.New(rand.NewSource(71))
	k := bdd.New(bdd.Config{Vars: nv})
	var exprs []*expr
	var roots []bdd.Ref
	for i := 0; i < 5; i++ {
		e := randExpr(rng, nv, 15)
		exprs = append(exprs, e)
		roots = append(roots, k.Protect(e.build(k)))
	}
	var buf bytes.Buffer
	if err := k.Save(&buf, roots...); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh kernel: functions must evaluate identically.
	k2 := bdd.New(bdd.Config{Vars: nv})
	loaded, err := k2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(roots) {
		t.Fatalf("loaded %d roots, want %d", len(loaded), len(roots))
	}
	for i, e := range exprs {
		for _, a := range assignments(nv) {
			if k2.Eval(loaded[i], a) != e.eval(a) {
				t.Fatalf("root %d evaluates differently after load", i)
			}
		}
		if k2.NodeCount(loaded[i]) != k.NodeCount(roots[i]) {
			t.Fatalf("root %d changed size across save/load", i)
		}
	}
}

func TestLoadSharesWithExistingNodes(t *testing.T) {
	const nv = 6
	k := bdd.New(bdd.Config{Vars: nv})
	f := k.Protect(k.And(k.Var(0), k.Or(k.Var(2), k.NVar(4))))
	var buf bytes.Buffer
	if err := k.Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	// Loading into the same kernel re-interns to the identical Ref.
	loaded, err := k.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0] != f {
		t.Fatal("reload into the same kernel must return the identical ref")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 4})
	cases := []string{
		"",
		"junk",
		"\x00BDD1",                 // truncated after magic
		"\x00BDD2\x04\x00\x00",     // wrong magic version
		"\x00BDD1\x04\x01\xff\xff", // corrupt node fields
	}
	for _, src := range cases {
		if _, err := k.Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q) succeeded, want error", src)
		}
	}
}

func TestLoadRejectsTooManyVars(t *testing.T) {
	big := bdd.New(bdd.Config{Vars: 12})
	f := big.And(big.Var(0), big.Var(11))
	var buf bytes.Buffer
	if err := big.Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	small := bdd.New(bdd.Config{Vars: 4})
	if _, err := small.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("load into a smaller kernel must fail")
	}
}

func TestSaveSharedRootsOnce(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 6})
	f := k.And(k.Var(0), k.Var(1))
	g := k.Or(f, k.Var(2)) // shares f's nodes
	var buf bytes.Buffer
	if err := k.Save(&buf, f, g, f); err != nil {
		t.Fatal(err)
	}
	k2 := bdd.New(bdd.Config{Vars: 6})
	loaded, err := k2.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 || loaded[0] != loaded[2] {
		t.Fatal("duplicate roots must load to the same ref")
	}
	// Shared structure is preserved: listing f twice adds no nodes.
	if k2.SharedNodeCount(loaded...) != k2.SharedNodeCount(loaded[0], loaded[1]) {
		t.Fatal("duplicate root changed the shared footprint")
	}
}
