package bdd

import (
	"fmt"
	"math"
	"sort"
)

// sat.go implements model counting, satisfying-assignment extraction and
// structural measurements. The constraint checker uses AllSat to enumerate
// violating tuples directly from a violation BDD.

// Eval evaluates f under a complete assignment: value[i] is the value of
// variable i. Variables missing from a node's path are skipped as usual.
func (k *Kernel) Eval(f Ref, value []bool) bool {
	if f == Invalid {
		panic("bdd: Eval on Invalid ref")
	}
	for !k.isTerminal(f) {
		if value[k.level2var[k.level[f]]] {
			f = k.high[f]
		} else {
			f = k.low[f]
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (counts can exceed 2^63 long before they
// exhaust float64 precision for the sizes used here).
func (k *Kernel) SatCount(f Ref) float64 {
	if f == Invalid {
		panic("bdd: SatCount on Invalid ref")
	}
	memo := make(map[Ref]float64)
	var rec func(Ref) float64 // models over variables strictly below the node's level
	rec = func(g Ref) float64 {
		if g == False {
			return 0
		}
		if g == True {
			return 1
		}
		if c, ok := memo[g]; ok {
			return c
		}
		level, lo, hi := int(k.level[g]), k.low[g], k.high[g]
		low := rec(lo) * math.Exp2(float64(k.Level(lo)-level-1))
		high := rec(hi) * math.Exp2(float64(k.Level(hi)-level-1))
		c := low + high
		memo[g] = c
		return c
	}
	return rec(f) * math.Exp2(float64(k.Level(f)))
}

// SatCountWithin returns the number of satisfying assignments of f over the
// given variable set only. vars must be sorted ascending and must cover the
// support of f; SatCountWithin panics otherwise. Unlike SatCount it stays
// accurate in kernels with thousands of variables, where 2^NumVars exceeds
// float64 range.
func (k *Kernel) SatCountWithin(f Ref, vars []int) float64 {
	if f == Invalid {
		panic("bdd: SatCountWithin on Invalid ref")
	}
	// Rank the variables by their position in the current order: the
	// recursion multiplies by 2^(gap) for the don't-care levels skipped
	// between a node and its child, so ranks must follow levels.
	levels := make([]int, len(vars))
	for i, v := range vars {
		if i > 0 && vars[i-1] >= v {
			panic("bdd: SatCountWithin vars not sorted ascending")
		}
		k.checkVar(v)
		levels[i] = int(k.var2level[v])
	}
	sort.Ints(levels)
	rank := make(map[int]int, len(levels))
	for i, l := range levels {
		rank[l] = i
	}
	rankOf := func(g Ref) int {
		if k.isTerminal(g) {
			return len(vars)
		}
		r, ok := rank[int(k.level[g])]
		if !ok {
			panic(fmt.Sprintf("bdd: SatCountWithin: variable %d in support but not in vars", k.VarOf(g)))
		}
		return r
	}
	memo := make(map[Ref]float64)
	var rec func(Ref) float64
	rec = func(g Ref) float64 {
		if g == False {
			return 0
		}
		if g == True {
			return 1
		}
		if c, ok := memo[g]; ok {
			return c
		}
		r := rankOf(g)
		low := rec(k.low[g]) * math.Exp2(float64(rankOf(k.low[g])-r-1))
		high := rec(k.high[g]) * math.Exp2(float64(rankOf(k.high[g])-r-1))
		c := low + high
		memo[g] = c
		return c
	}
	return rec(f) * math.Exp2(float64(rankOf(f)))
}

// AnySat returns one satisfying assignment of f as a list of literals for
// the variables on the chosen path (other variables are don't-cares), or
// false if f is unsatisfiable.
func (k *Kernel) AnySat(f Ref) ([]Literal, bool) {
	if f == Invalid {
		panic("bdd: AnySat on Invalid ref")
	}
	if f == False {
		return nil, false
	}
	var lits []Literal
	for !k.isTerminal(f) {
		v := int(k.level2var[k.level[f]])
		if k.high[f] != False {
			lits = append(lits, Literal{Var: v, Value: true})
			f = k.high[f]
		} else {
			lits = append(lits, Literal{Var: v, Value: false})
			f = k.low[f]
		}
	}
	return lits, true
}

// AllSat calls visit for every path from f to the True terminal. Each path
// is reported as the list of literals along it; variables not mentioned are
// don't-cares for that path. visit may return false to stop the enumeration
// early. The slice passed to visit is reused between calls; callers that
// retain it must copy it.
func (k *Kernel) AllSat(f Ref, visit func([]Literal) bool) {
	if f == Invalid {
		panic("bdd: AllSat on Invalid ref")
	}
	var path []Literal
	var rec func(Ref) bool
	rec = func(g Ref) bool {
		switch g {
		case False:
			return true
		case True:
			return visit(path)
		}
		v := int(k.level2var[k.level[g]])
		low, high := k.low[g], k.high[g]
		path = append(path, Literal{Var: v, Value: false})
		if !rec(low) {
			return false
		}
		path[len(path)-1].Value = true
		if !rec(high) {
			return false
		}
		path = path[:len(path)-1]
		return true
	}
	rec(f)
}

// NodeCount returns the number of BDD nodes reachable from f, excluding the
// terminals. This is the size measure used throughout the paper's
// experiments ("BDD node count").
func (k *Kernel) NodeCount(f Ref) int {
	if f == Invalid || k.isTerminal(f) {
		return 0
	}
	seen := map[Ref]bool{f: true}
	stack := []Ref{f}
	count := 0
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		lo, hi := k.low[g], k.high[g]
		if !k.isTerminal(lo) && !seen[lo] {
			seen[lo] = true
			stack = append(stack, lo)
		}
		if !k.isTerminal(hi) && !seen[hi] {
			seen[hi] = true
			stack = append(stack, hi)
		}
	}
	return count
}

// SharedNodeCount returns the number of distinct nodes reachable from any of
// the given roots, excluding terminals. It measures the footprint of a set
// of indices under the shared-node implementation the paper highlights.
func (k *Kernel) SharedNodeCount(roots ...Ref) int {
	seen := make(map[Ref]bool)
	var stack []Ref
	for _, f := range roots {
		if f != Invalid && !k.isTerminal(f) && !seen[f] {
			seen[f] = true
			stack = append(stack, f)
		}
	}
	count := 0
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		lo, hi := k.low[g], k.high[g]
		if !k.isTerminal(lo) && !seen[lo] {
			seen[lo] = true
			stack = append(stack, lo)
		}
		if !k.isTerminal(hi) && !seen[hi] {
			seen[hi] = true
			stack = append(stack, hi)
		}
	}
	return count
}

// Support returns the ascending list of variables on which f depends.
func (k *Kernel) Support(f Ref) []int {
	if f == Invalid {
		return nil
	}
	inSupport := make([]bool, k.numVars)
	seen := map[Ref]bool{}
	var stack []Ref
	if !k.isTerminal(f) {
		stack = append(stack, f)
		seen[f] = true
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inSupport[k.level2var[k.level[g]]] = true
		for _, c := range []Ref{k.low[g], k.high[g]} {
			if !k.isTerminal(c) && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	var vars []int
	for i, ok := range inSupport {
		if ok {
			vars = append(vars, i)
		}
	}
	return vars
}
