package bdd_test

import (
	"errors"
	"testing"

	"repro/internal/bdd"
)

func TestStatsSnapshot(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 8})
	s0 := k.Stats()
	if s0.Live != 2 || s0.Peak != 2 {
		t.Fatalf("fresh kernel: Live=%d Peak=%d, want 2/2", s0.Live, s0.Peak)
	}
	if s0.Vars != 8 || s0.Budget != 0 {
		t.Fatalf("fresh kernel: Vars=%d Budget=%d, want 8/0", s0.Vars, s0.Budget)
	}
	f := bdd.True
	for i := 0; i < 8; i++ {
		k.TempKeep(f)
		f = k.And(f, k.Var(i))
	}
	s1 := k.Stats()
	if s1.Live <= s0.Live || s1.Peak < s1.Live || s1.Ops == 0 {
		t.Fatalf("after work: %+v (want growth and op counts)", s1)
	}
	// GC drops unreferenced nodes but never lowers the peak.
	k.TempRelease(0)
	k.GC()
	s2 := k.Stats()
	if s2.GCRuns != s1.GCRuns+1 {
		t.Fatalf("GCRuns=%d, want %d", s2.GCRuns, s1.GCRuns+1)
	}
	if s2.Peak < s1.Peak {
		t.Fatalf("Peak shrank across GC: %d -> %d", s1.Peak, s2.Peak)
	}
	if s2.Live >= s1.Live {
		t.Fatalf("GC did not reclaim: Live %d -> %d", s1.Live, s2.Live)
	}
}

func TestStatsDelta(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 8})
	before := k.Stats()
	f := bdd.True
	for i := 0; i < 8; i++ {
		k.TempKeep(f)
		f = k.And(f, k.Var(i))
	}
	after := k.Stats()
	d := after.DeltaSince(before)
	if d.NodesAllocated == 0 || d.Ops == 0 {
		t.Fatalf("work left no delta: %+v", d)
	}
	if d.IsZero() {
		t.Fatalf("non-empty delta reports IsZero: %+v", d)
	}
	if got := after.DeltaSince(after); !got.IsZero() {
		t.Fatalf("self-delta = %+v, want zero", got)
	}
	// Allocs stays monotonic across GC, so post-GC deltas cannot go
	// negative the way Live-based accounting would.
	k.TempRelease(0)
	k.GC()
	gcd := k.Stats().DeltaSince(after)
	if gcd.GCRuns != 1 {
		t.Fatalf("GCRuns delta = %d, want 1", gcd.GCRuns)
	}
	if k.Stats().Allocs < after.Allocs {
		t.Fatalf("Allocs shrank across GC: %d -> %d", after.Allocs, k.Stats().Allocs)
	}
	sum := d.Add(gcd)
	if sum.NodesAllocated != d.NodesAllocated+gcd.NodesAllocated || sum.GCRuns != d.GCRuns+gcd.GCRuns {
		t.Fatalf("Add mismatch: %+v + %+v = %+v", d, gcd, sum)
	}
}

func TestSetBudgetAbortsAndRestores(t *testing.T) {
	k := bdd.New(bdd.Config{Vars: 16})
	a := k.Protect(k.And(k.Var(0), k.Var(1)))
	if k.Budget() != 0 {
		t.Fatalf("Budget() = %d, want 0", k.Budget())
	}
	// A budget below the live count must abort the next allocation.
	k.SetBudget(1)
	if k.Budget() != 1 {
		t.Fatalf("Budget() = %d, want 1", k.Budget())
	}
	if f := k.And(k.Var(2), k.Var(3)); f != bdd.Invalid {
		t.Fatalf("allocation under tiny budget returned %v, want Invalid", f)
	}
	if !errors.Is(k.Err(), bdd.ErrBudget) {
		t.Fatalf("Err() = %v, want ErrBudget", k.Err())
	}
	k.ClearErr()
	// Restoring the budget makes the kernel usable again, and previously
	// built nodes survived the aborted operation.
	k.SetBudget(0)
	f := k.And(k.Var(2), k.Var(3))
	if f == bdd.Invalid || k.Err() != nil {
		t.Fatalf("after restore: f=%v err=%v", f, k.Err())
	}
	if g := k.And(k.Var(0), k.Var(1)); g != a {
		t.Fatalf("pinned node lost across budget abort: %v != %v", g, a)
	}
	// Negative means unlimited, like Config.
	k.SetBudget(-5)
	if k.Budget() != 0 {
		t.Fatalf("Budget() after SetBudget(-5) = %d, want 0", k.Budget())
	}
}
