package bdd

import (
	"fmt"
	"sort"
)

// replace.go implements ordered variable replacement — the BDD analogue of
// attribute renaming, used by the paper's equi-join rewrite rule (§4.2) —
// plus cofactor restriction.

// ReplaceMap is an interned variable substitution usable with Replace. Maps
// are created once per (source block, target block) pair and reused, which
// also gives Replace results a stable cache identity.
type ReplaceMap struct {
	id int32
}

// NewReplaceMap interns the substitution pairs[i][0] → pairs[i][1]. The
// substitution must be injective (no duplicate sources or targets) and
// monotone on its sources: if u < v are both renamed then
// target(u) < target(v). Monotonicity is necessary but not sufficient for a
// single linear pass — whether the rename is order-safe also depends on the
// support of the BDD it is applied to (a variable that keeps its level must
// not end up ordered across a renamed one). Replace therefore performs a
// runtime check and aborts with ErrOrder when the input violates it;
// callers then rebuild the BDD in the target variables instead (the fdd
// layer does exactly that).
func (k *Kernel) NewReplaceMap(pairs [][2]int) (ReplaceMap, error) {
	target := make([]uint32, k.numVars)
	for i := range target {
		target[i] = uint32(i)
	}
	usedDst := make(map[int]bool, len(pairs))
	usedSrc := make(map[int]bool, len(pairs))
	srcs := make([]int, 0, len(pairs))
	last := uint32(0)
	for _, p := range pairs {
		src, dst := p[0], p[1]
		k.checkVar(src)
		k.checkVar(dst)
		if usedDst[dst] {
			return ReplaceMap{}, fmt.Errorf("bdd: duplicate replacement target %d", dst)
		}
		if usedSrc[src] {
			return ReplaceMap{}, fmt.Errorf("bdd: duplicate replacement source %d", src)
		}
		usedDst[dst] = true
		usedSrc[src] = true
		target[src] = uint32(dst)
		srcs = append(srcs, src)
		if uint32(src) > last {
			last = uint32(src)
		}
	}
	sort.Ints(srcs)
	prev := int64(-1)
	for _, s := range srcs {
		t := int64(target[s])
		if t <= prev {
			return ReplaceMap{}, ErrOrder
		}
		prev = t
	}
	k.replaceMaps = append(k.replaceMaps, replaceMap{target: target, lastLevel: last})
	return ReplaceMap{id: int32(len(k.replaceMaps) - 1)}, nil
}

// Replace applies the interned substitution m to f: every variable u with a
// mapping u→v is renamed to v. The operation is a single memoized pass over
// f, which is why the paper's rename-based join rewrite beats conjunction
// with equality BDDs.
func (k *Kernel) Replace(f Ref, m ReplaceMap) Ref {
	k.gcIfNeeded(f)
	if int(m.id) >= len(k.replaceMaps) {
		panic("bdd: replace map from a different kernel")
	}
	return k.replaceRec(f, m.id)
}

func (k *Kernel) replaceRec(f Ref, id int32) Ref {
	if k.err != nil || f == Invalid {
		return Invalid
	}
	if k.isTerminal(f) {
		return f
	}
	rm := &k.replaceMaps[id]
	if k.nodes[f].level > rm.lastLevel {
		return f
	}
	k.appliedCount++
	slot := (uint32(f)*0x9e3779b9 ^ uint32(id)*0x85ebca6b ^ 0x7feb352d) & k.cacheMask
	e := &k.replaceCache[slot]
	if e.epoch == k.cacheEpoch && e.f == f && e.mapID == id {
		k.cacheHits++
		return e.res
	}
	n := &k.nodes[f]
	level, lowIn, highIn := n.level, n.low, n.high
	newLevel := uint32(level)
	if int(level) < len(k.replaceMaps[id].target) {
		newLevel = k.replaceMaps[id].target[level]
	}
	low := k.replaceRec(lowIn, id)
	if low == Invalid {
		return Invalid
	}
	high := k.replaceRec(highIn, id)
	if high == Invalid {
		return Invalid
	}
	// Runtime order check: the renamed node must still be above both
	// (renamed) children, otherwise a single pass cannot express this
	// substitution on this BDD.
	if uint32(k.Level(low)) <= newLevel || uint32(k.Level(high)) <= newLevel {
		k.err = ErrOrder
		return Invalid
	}
	res := k.makeNode(newLevel, low, high)
	if res == Invalid {
		return Invalid
	}
	*e = replaceEntry{f: f, mapID: id, res: res, epoch: k.cacheEpoch}
	return res
}

// Restrict returns the cofactor of f with the variables of assignment fixed
// to the given values. The assignment is a list of (variable, value) pairs.
func (k *Kernel) Restrict(f Ref, assignment []Literal) Ref {
	k.gcIfNeeded(f)
	if len(assignment) == 0 {
		return f
	}
	val := make([]int8, k.numVars) // -1 unset is encoded as 0; use +1/+2
	for _, lit := range assignment {
		k.checkVar(lit.Var)
		if lit.Value {
			val[lit.Var] = 2
		} else {
			val[lit.Var] = 1
		}
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		if k.err != nil || g == Invalid {
			return Invalid
		}
		if k.isTerminal(g) {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := &k.nodes[g]
		level, lowIn, highIn := n.level, n.low, n.high
		var res Ref
		switch val[level] {
		case 2:
			res = rec(highIn)
		case 1:
			res = rec(lowIn)
		default:
			low := rec(lowIn)
			if low == Invalid {
				return Invalid
			}
			high := rec(highIn)
			if high == Invalid {
				return Invalid
			}
			res = k.makeNode(level, low, high)
		}
		if res == Invalid {
			return Invalid
		}
		memo[g] = res
		return res
	}
	return rec(f)
}

// Literal is a variable with a truth value, used by Restrict, Minterm and
// the satisfying-assignment enumerators.
type Literal struct {
	Var   int
	Value bool
}

// Minterm builds the conjunction of the literals in a single bottom-up pass,
// one makeNode per literal. It is the fast path for encoding a relational
// tuple (the fdd layer batches an entire tuple's bits through here).
func (k *Kernel) Minterm(lits []Literal) Ref {
	sorted := make([]Literal, len(lits))
	copy(sorted, lits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Var < sorted[j].Var })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Var == sorted[i-1].Var {
			if sorted[i].Value != sorted[i-1].Value {
				return False
			}
		}
	}
	acc := True
	for i := len(sorted) - 1; i >= 0; i-- {
		if i+1 < len(sorted) && sorted[i].Var == sorted[i+1].Var {
			continue
		}
		k.checkVar(sorted[i].Var)
		if sorted[i].Value {
			acc = k.makeNode(uint32(sorted[i].Var), False, acc)
		} else {
			acc = k.makeNode(uint32(sorted[i].Var), acc, False)
		}
		if acc == Invalid {
			return Invalid
		}
	}
	return acc
}
