package bdd

import (
	"fmt"
	"sort"
)

// replace.go implements ordered variable replacement — the BDD analogue of
// attribute renaming, used by the paper's equi-join rewrite rule (§4.2) —
// plus cofactor restriction.

// ReplaceMap is an interned variable substitution usable with Replace. Maps
// are created once per (source block, target block) pair and reused, which
// also gives Replace results a stable cache identity.
type ReplaceMap struct {
	id int32
}

// NewReplaceMap interns the substitution pairs[i][0] → pairs[i][1]. The
// substitution must be injective (no duplicate sources or targets) and
// monotone on its sources under the current variable order: if u is placed
// above v and both are renamed then target(u) stays above target(v).
// Monotonicity is necessary but not sufficient for a single linear pass —
// whether the rename is order-safe also depends on the support of the BDD
// it is applied to (a variable that keeps its level must not end up ordered
// across a renamed one). Replace therefore performs a runtime check and
// aborts with ErrOrder when the input violates it; callers then rebuild the
// BDD in the target variables instead (the fdd layer does exactly that).
//
// The registered pairs are variable pairs; the level-indexed form used by
// the recursion is derived from the current order and rebuilt after every
// Reorder or AddVars. A reorder can break a map's monotonicity; Replace
// then reports ErrOrder until an order that restores it is in effect.
func (k *Kernel) NewReplaceMap(pairs [][2]int) (ReplaceMap, error) {
	usedDst := make(map[int]bool, len(pairs))
	usedSrc := make(map[int]bool, len(pairs))
	stored := make([][2]int, 0, len(pairs))
	for _, p := range pairs {
		src, dst := p[0], p[1]
		k.checkVar(src)
		k.checkVar(dst)
		if usedDst[dst] {
			return ReplaceMap{}, fmt.Errorf("bdd: duplicate replacement target %d", dst)
		}
		if usedSrc[src] {
			return ReplaceMap{}, fmt.Errorf("bdd: duplicate replacement source %d", src)
		}
		usedDst[dst] = true
		usedSrc[src] = true
		stored = append(stored, [2]int{src, dst})
	}
	rm := replaceMap{pairs: stored}
	k.rebuildReplaceMap(&rm)
	if !rm.valid {
		return ReplaceMap{}, ErrOrder
	}
	k.replaceMaps = append(k.replaceMaps, rm)
	return ReplaceMap{id: int32(len(k.replaceMaps) - 1)}, nil
}

// rebuildReplaceMap derives the level-indexed target table of rm from its
// variable pairs under the current order, and records whether the map is
// monotone (sources in level order map to targets in level order).
func (k *Kernel) rebuildReplaceMap(rm *replaceMap) {
	target := make([]uint32, k.numVars)
	for i := range target {
		target[i] = uint32(i)
	}
	last := uint32(0)
	srcLevels := make([]int, 0, len(rm.pairs))
	for _, p := range rm.pairs {
		sl := k.var2level[p[0]]
		target[sl] = k.var2level[p[1]]
		srcLevels = append(srcLevels, int(sl))
		if sl > last {
			last = sl
		}
	}
	sort.Ints(srcLevels)
	valid := true
	prev := int64(-1)
	for _, s := range srcLevels {
		t := int64(target[s])
		if t <= prev {
			valid = false
			break
		}
		prev = t
	}
	rm.target = target
	rm.lastLevel = last
	rm.valid = valid
}

// Replace applies the interned substitution m to f: every variable u with a
// mapping u→v is renamed to v. The operation is a single memoized pass over
// f, which is why the paper's rename-based join rewrite beats conjunction
// with equality BDDs.
func (k *Kernel) Replace(f Ref, m ReplaceMap) Ref {
	k.gcIfNeeded(f)
	if int(m.id) >= len(k.replaceMaps) {
		panic("bdd: replace map from a different kernel")
	}
	if !k.replaceMaps[m.id].valid {
		k.err = ErrOrder
		return Invalid
	}
	k.maybeGrowReplaceCache()
	return k.replaceRec(f, m.id)
}

// maybeGrowReplaceCache doubles the replacement cache once the observed
// lookup volume outgrows it; see maybeGrowQuantCache.
func (k *Kernel) maybeGrowReplaceCache() {
	if k.fixedCache {
		return
	}
	for len(k.replaceCache) < maxReplaceCacheSize && k.replaceLookups > uint64(len(k.replaceCache))*8 {
		size := len(k.replaceCache) * 2
		k.replaceCache = make([]replaceEntry, size)
		k.replaceMask = uint32(size - 1)
	}
}

const maxReplaceCacheSize = 1 << 15

func (k *Kernel) replaceRec(f Ref, id int32) Ref {
	if k.err != nil || f == Invalid {
		return Invalid
	}
	if k.isTerminal(f) {
		return f
	}
	rm := &k.replaceMaps[id]
	if k.level[f] > rm.lastLevel {
		return f
	}
	k.appliedCount++
	k.replaceLookups++
	slot := (uint32(f)*0x9e3779b9 ^ uint32(id)*0x85ebca6b ^ 0x7feb352d) & k.replaceMask
	e := &k.replaceCache[slot]
	if e.epoch == k.cacheEpoch && e.f == f && e.mapID == id {
		k.replaceHits++
		return e.res
	}
	level, lowIn, highIn := k.level[f], k.low[f], k.high[f]
	newLevel := level
	if int(level) < len(k.replaceMaps[id].target) {
		newLevel = k.replaceMaps[id].target[level]
	}
	low := k.replaceRec(lowIn, id)
	if low == Invalid {
		return Invalid
	}
	high := k.replaceRec(highIn, id)
	if high == Invalid {
		return Invalid
	}
	// Runtime order check: the renamed node must still be above both
	// (renamed) children, otherwise a single pass cannot express this
	// substitution on this BDD.
	if uint32(k.Level(low)) <= newLevel || uint32(k.Level(high)) <= newLevel {
		k.err = ErrOrder
		return Invalid
	}
	res := k.makeNode(newLevel, low, high)
	if res == Invalid {
		return Invalid
	}
	*e = replaceEntry{f: f, mapID: id, res: res, epoch: k.cacheEpoch}
	return res
}

// Restrict returns the cofactor of f with the variables of assignment fixed
// to the given values. The assignment is a list of (variable, value) pairs.
func (k *Kernel) Restrict(f Ref, assignment []Literal) Ref {
	k.gcIfNeeded(f)
	if len(assignment) == 0 {
		return f
	}
	val := make([]int8, k.numVars) // indexed by level; -1 unset is encoded as 0; use +1/+2
	for _, lit := range assignment {
		k.checkVar(lit.Var)
		if lit.Value {
			val[k.var2level[lit.Var]] = 2
		} else {
			val[k.var2level[lit.Var]] = 1
		}
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		if k.err != nil || g == Invalid {
			return Invalid
		}
		if k.isTerminal(g) {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		level, lowIn, highIn := k.level[g], k.low[g], k.high[g]
		var res Ref
		switch val[level] {
		case 2:
			res = rec(highIn)
		case 1:
			res = rec(lowIn)
		default:
			low := rec(lowIn)
			if low == Invalid {
				return Invalid
			}
			high := rec(highIn)
			if high == Invalid {
				return Invalid
			}
			res = k.makeNode(level, low, high)
		}
		if res == Invalid {
			return Invalid
		}
		memo[g] = res
		return res
	}
	return rec(f)
}

// Literal is a variable with a truth value, used by Restrict, Minterm and
// the satisfying-assignment enumerators.
type Literal struct {
	Var   int
	Value bool
}

// Minterm builds the conjunction of the literals in a single bottom-up pass,
// one makeNode per literal. It is the fast path for encoding a relational
// tuple (the fdd layer batches an entire tuple's bits through here).
func (k *Kernel) Minterm(lits []Literal) Ref {
	sorted := make([]Literal, len(lits))
	copy(sorted, lits)
	for _, lit := range sorted {
		k.checkVar(lit.Var)
	}
	// Sort by level so the bottom-up build sees descending levels; ties
	// (duplicate variables) stay adjacent because a variable has one level.
	sort.Slice(sorted, func(i, j int) bool {
		return k.var2level[sorted[i].Var] < k.var2level[sorted[j].Var]
	})
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Var == sorted[i-1].Var {
			if sorted[i].Value != sorted[i-1].Value {
				return False
			}
		}
	}
	acc := True
	for i := len(sorted) - 1; i >= 0; i-- {
		if i+1 < len(sorted) && sorted[i].Var == sorted[i+1].Var {
			continue
		}
		if sorted[i].Value {
			acc = k.makeNode(k.var2level[sorted[i].Var], False, acc)
		} else {
			acc = k.makeNode(k.var2level[sorted[i].Var], acc, False)
		}
		if acc == Invalid {
			return Invalid
		}
	}
	return acc
}
