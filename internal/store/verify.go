package store

// verify.go implements offline inspection of a data directory — the engine
// behind the cvstore CLI. These functions open the directory read-only (no
// WAL handle, no initialization) so they are safe against a directory a
// daemon is actively writing, up to the usual caveat that a snapshot being
// installed concurrently may appear as either the old or the new manifest
// state.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
)

// Info prints a human-readable summary of the directory: format version,
// WAL size and record count, and every retained snapshot.
func Info(dir string, w io.Writer) error {
	man, err := readManifest(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "data directory %s (format v%d)\n", dir, man.Version)
	scan, err := scanWAL(filepath.Join(dir, man.WAL))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wal %s: %d records, %d tuples, %d valid bytes", man.WAL, scan.Records, scan.Tuples, scan.ValidBytes)
	if scan.DroppedBytes > 0 {
		fmt.Fprintf(w, " (+%d torn tail bytes)", scan.DroppedBytes)
	}
	fmt.Fprintln(w)
	if len(scan.Batches) > 0 {
		fmt.Fprintf(w, "wal epochs %d..%d\n", scan.Batches[0].Epoch, scan.Batches[len(scan.Batches)-1].Epoch)
	}
	fmt.Fprintf(w, "snapshots: %d\n", len(man.Snapshots))
	for _, e := range man.Snapshots {
		fmt.Fprintf(w, "  epoch %-8d %s  %d bytes  crc %08x\n", e.Epoch, e.File, e.Bytes, e.CRC32)
	}
	return nil
}

// Verify checks every artifact of the directory: the manifest parses, every
// snapshot restores to a working checker with matching length and CRC, the
// constraint text re-parses, and the WAL scans cleanly. It reports each
// finding to w and returns an error describing the first class of damage
// found (a torn WAL tail alone is not damage — it is what recovery is for —
// but it is reported).
func Verify(dir string, w io.Writer) error {
	man, err := readManifest(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "manifest: ok (format v%d, %d snapshots)\n", man.Version, len(man.Snapshots))
	var failures []string
	for i := range man.Snapshots {
		e := &man.Snapshots[i]
		if err := verifySnapshot(dir, e); err != nil {
			fmt.Fprintf(w, "snapshot epoch %d (%s): FAIL: %v\n", e.Epoch, e.File, err)
			failures = append(failures, fmt.Sprintf("snapshot %s", e.File))
			continue
		}
		fmt.Fprintf(w, "snapshot epoch %d (%s): ok\n", e.Epoch, e.File)
	}
	scan, err := scanWAL(filepath.Join(dir, man.WAL))
	if err != nil {
		fmt.Fprintf(w, "wal %s: FAIL: %v\n", man.WAL, err)
		failures = append(failures, "wal")
	} else {
		fmt.Fprintf(w, "wal %s: %d records ok", man.WAL, scan.Records)
		if scan.DroppedBytes > 0 {
			fmt.Fprintf(w, ", %d-byte torn tail (dropped on next recovery)", scan.DroppedBytes)
		}
		fmt.Fprintln(w)
	}
	if len(failures) > 0 {
		return fmt.Errorf("store: verification failed for %s", strings.Join(failures, ", "))
	}
	return nil
}

// verifySnapshot restores one snapshot with the default runtime options and
// exercises the restored checker far enough to prove the image is coherent.
func verifySnapshot(dir string, e *SnapshotEntry) error {
	f, err := os.Open(filepath.Join(dir, e.File))
	if err != nil {
		return err
	}
	defer f.Close()
	cr := &crcReader{r: f}
	chk, _, epoch, err := readSnapshot(cr, core.Options{})
	if err != nil {
		return err
	}
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return err
	}
	if cr.n != e.Bytes || cr.crc != e.CRC32 {
		return fmt.Errorf("%w: file is %d bytes crc %08x, manifest says %d bytes crc %08x",
			ErrCorrupt, cr.n, cr.crc, e.Bytes, e.CRC32)
	}
	if epoch != e.Epoch {
		return fmt.Errorf("%w: file carries epoch %d, manifest says %d", ErrCorrupt, epoch, e.Epoch)
	}
	// Touch every index root so a dangling ref would surface here, not at
	// first use after a recovery.
	for _, snap := range chk.SnapshotIndices() {
		chk.Store().Kernel().NodeCount(snap.Root)
	}
	return nil
}

// Compact removes files the manifest does not reference: leftover temp
// files from interrupted atomic writes and snapshot files orphaned by a
// crash between manifest write and prune. Only files matching the store's
// own naming patterns are touched.
func Compact(dir string, w io.Writer) error {
	man, err := readManifest(dir)
	if err != nil {
		return err
	}
	referenced := map[string]bool{ManifestName: true, man.WAL: true}
	for _, e := range man.Snapshots {
		referenced[e.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: listing data directory: %w", err)
	}
	var removed []string
	for _, e := range entries {
		name := e.Name()
		if referenced[name] {
			continue
		}
		ours := strings.HasPrefix(name, ".tmp-") ||
			(strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".cvsnap"))
		if !ours {
			fmt.Fprintf(w, "skipping unrecognized file %s\n", name)
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: removing %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "removed %s\n", name)
	}
	fmt.Fprintf(w, "compacted: %d files removed\n", len(removed))
	return nil
}
