package store

// metrics.go exposes the store's instrumentation hooks. Latency histograms
// are injected by the service's registry (SetMetrics); monotonic counters
// live on the Store itself and are exported by the service as CounterFuncs,
// so the same numbers back /statsz and /metricsz without double counting.

import "repro/internal/obs"

// Metrics holds the latency histograms the store observes into. All fields
// must be non-nil when SetMetrics is called.
type Metrics struct {
	// WALAppend times AppendBatch: encode + write + fsync (when the policy
	// syncs that append).
	WALAppend *obs.Histogram
	// SnapshotWrite times WriteSnapshot end to end: serialize, sync,
	// rename, manifest update, prune, WAL truncation.
	SnapshotWrite *obs.Histogram
}

// SetMetrics installs the histograms. Call once at startup, before traffic.
func (s *Store) SetMetrics(m *Metrics) { s.metrics.Store(m) }

// Lock-free counter accessors for metric registration and /statsz.

// WALAppends counts records appended this process lifetime.
func (s *Store) WALAppends() uint64 { return s.walAppends.Load() }

// WALBytesWritten counts bytes appended this process lifetime.
func (s *Store) WALBytesWritten() uint64 { return s.walBytesWritten.Load() }

// Fsyncs counts explicit WAL syncs.
func (s *Store) Fsyncs() uint64 { return s.fsyncs.Load() }

// ReplayedRecords counts WAL records applied during recovery.
func (s *Store) ReplayedRecords() uint64 { return s.replayedRecords.Load() }

// ReplayedTuples counts updates applied during recovery.
func (s *Store) ReplayedTuples() uint64 { return s.replayedTuples.Load() }

// TornTails counts recoveries that found and dropped a torn WAL tail.
func (s *Store) TornTails() uint64 { return s.tornTails.Load() }

// DroppedTailBytes counts bytes dropped as torn WAL tails.
func (s *Store) DroppedTailBytes() uint64 { return s.droppedTailBytes.Load() }

// LastSnapshotEpoch returns the epoch of the newest snapshot, 0 if none.
func (s *Store) LastSnapshotEpoch() uint64 { return s.lastSnapshotEpoch.Load() }
