package store

// manifest.go manages the data directory's MANIFEST.json: the single source
// of truth for which snapshot files exist, their epochs and checksums, and
// the WAL file name. The manifest is replaced atomically (temp + rename), so
// a reader always sees either the old or the new state; snapshot files are
// likewise renamed into place before the manifest that references them is
// written, which makes every crash window recoverable — at worst an orphan
// temp file or an unreferenced snapshot is left behind.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

const (
	// ManifestName is the manifest file name inside a data directory.
	ManifestName = "MANIFEST.json"
	// FormatVersion is the data-directory layout version this build reads
	// and writes. A directory stamped with a higher version is refused.
	FormatVersion = 1
	// walName is the WAL file name inside a data directory.
	walName = "wal.log"
)

// ErrNewerFormat is reported when a data directory (or a snapshot inside
// one) was written by a newer build. The daemon must refuse to start rather
// than shadow data it cannot fully read.
var ErrNewerFormat = errors.New("store: data written by a newer format version")

// SnapshotEntry records one retained snapshot file.
type SnapshotEntry struct {
	// Epoch is the epoch the snapshot captures.
	Epoch uint64 `json:"epoch"`
	// File is the snapshot's file name, relative to the data directory.
	File string `json:"file"`
	// Bytes is the file's exact length.
	Bytes int64 `json:"bytes"`
	// CRC32 is the IEEE checksum of the whole file.
	CRC32 uint32 `json:"crc32"`
}

// Manifest is the data directory's index.
type Manifest struct {
	// Version is the directory format version (FormatVersion when written
	// by this build).
	Version int `json:"format_version"`
	// WAL is the log's file name, relative to the data directory.
	WAL string `json:"wal"`
	// Snapshots lists retained snapshots in ascending epoch order.
	Snapshots []SnapshotEntry `json:"snapshots"`
}

// latest returns the newest snapshot entry, or nil if none is retained.
func (m *Manifest) latest() *SnapshotEntry {
	if len(m.Snapshots) == 0 {
		return nil
	}
	return &m.Snapshots[len(m.Snapshots)-1]
}

// readManifest loads and validates the manifest of dir. os.ErrNotExist (a
// fresh directory), ErrNewerFormat, and ErrCorrupt (unreadable JSON or an
// inconsistent manifest) are distinguishable with errors.Is.
func readManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("store: %w", err)
		}
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest %s is not valid JSON: %v", ErrCorrupt, path, err)
	}
	if m.Version > FormatVersion {
		return nil, fmt.Errorf("store: %s has format version %d, this build supports %d: %w",
			path, m.Version, FormatVersion, ErrNewerFormat)
	}
	if m.Version < 1 {
		return nil, fmt.Errorf("%w: manifest %s has invalid format version %d", ErrCorrupt, path, m.Version)
	}
	if m.WAL == "" {
		return nil, fmt.Errorf("%w: manifest %s names no WAL file", ErrCorrupt, path)
	}
	for i, s := range m.Snapshots {
		if s.File == "" || filepath.Base(s.File) != s.File {
			return nil, fmt.Errorf("%w: manifest snapshot %d has invalid file name %q", ErrCorrupt, i, s.File)
		}
		if i > 0 && s.Epoch <= m.Snapshots[i-1].Epoch {
			return nil, fmt.Errorf("%w: manifest snapshots out of epoch order at entry %d", ErrCorrupt, i)
		}
	}
	return &m, nil
}

// write atomically replaces dir's manifest.
func (m *Manifest) write(dir string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	return atomicWriteFile(dir, ManifestName, data)
}

// atomicWriteFile writes name inside dir via a synced temp file and rename,
// then syncs the directory so the rename itself is durable.
func atomicWriteFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("store: installing %s: %w", name, err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}
