package store_test

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/store"
)

const fixtureRules = `
	constraint nj_codes:
	    forall c, a: CUST(c, a, "NJ") => a in {"201", "973", "908"}.
	constraint supp_city_known:
	    forall c, s: SUPP(c, s) => exists a, s2: CUST(c, a, s2).
	constraint toronto_ontario:
	    forall a, s: CUST("Toronto", a, s) => s = "Ontario".
`

var (
	cities = []string{"Toronto", "Oshawa", "Newark", "Trenton", "Buffalo", "Albany"}
	codes  = []string{"416", "647", "905", "973", "201", "908", "716", "518"}
	states = []string{"Ontario", "NJ", "NY"}
)

// buildFixture creates a two-table checker (shared city/state domains, one
// index per table) with nRows random CUST rows and nRows/2 SUPP rows, plus
// its parsed constraint set.
func buildFixture(t testing.TB, rng *rand.Rand, nRows int) (*core.Checker, []logic.Constraint) {
	t.Helper()
	cat := relation.NewCatalog()
	cust, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city"}, {Name: "areacode"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	supp, err := cat.CreateTable("SUPP", []relation.Column{
		{Name: "city"}, {Name: "state"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRows; i++ {
		cust.Insert(cities[rng.Intn(len(cities))], codes[rng.Intn(len(codes))], states[rng.Intn(len(states))])
	}
	for i := 0; i < nRows/2; i++ {
		supp.Insert(cities[rng.Intn(len(cities))], states[rng.Intn(len(states))])
	}
	chk := core.New(cat, core.Options{})
	for _, name := range []string{"CUST", "SUPP"} {
		if _, err := chk.BuildIndex(name, name, nil, core.OrderProbConverge); err != nil {
			t.Fatal(err)
		}
	}
	cts, err := logic.ParseConstraints(fixtureRules)
	if err != nil {
		t.Fatal(err)
	}
	return chk, cts
}

// randomUpdates generates a batch of inserts and deletes against the fixture
// tables.
func randomUpdates(rng *rand.Rand, n int) []core.Update {
	ups := make([]core.Update, 0, n)
	for i := 0; i < n; i++ {
		op := core.UpdateInsert
		if rng.Intn(3) == 0 {
			op = core.UpdateDelete
		}
		if rng.Intn(2) == 0 {
			ups = append(ups, core.Update{Table: "CUST", Op: op, Values: []string{
				cities[rng.Intn(len(cities))], codes[rng.Intn(len(codes))], states[rng.Intn(len(states))]}})
		} else {
			ups = append(ups, core.Update{Table: "SUPP", Op: op, Values: []string{
				cities[rng.Intn(len(cities))], states[rng.Intn(len(states))]}})
		}
	}
	return ups
}

// assertSameState fails unless both checkers agree on every constraint's
// verdict and (for violated constraints) the exact witness set.
func assertSameState(t *testing.T, want, got *core.Checker, cts []logic.Constraint, label string) {
	t.Helper()
	for _, ct := range cts {
		wres := want.CheckOne(ct)
		gres := got.CheckOne(ct)
		if wres.Err != nil || gres.Err != nil {
			t.Fatalf("%s: constraint %s errored: want %v, got %v", label, ct.Name, wres.Err, gres.Err)
		}
		if wres.Violated != gres.Violated {
			t.Fatalf("%s: constraint %s: verdict %v, restored checker says %v", label, ct.Name, wres.Violated, gres.Violated)
		}
		if !wres.Violated {
			continue
		}
		ww, err := want.ViolationWitnesses(ct, 10000)
		if err != nil {
			t.Fatalf("%s: witnesses of %s: %v", label, ct.Name, err)
		}
		gw, err := got.ViolationWitnesses(ct, 10000)
		if err != nil {
			t.Fatalf("%s: restored witnesses of %s: %v", label, ct.Name, err)
		}
		if diff := difftest.SetDiff(difftest.WitnessSet(ww), difftest.WitnessSet(gw)); diff != "" {
			t.Fatalf("%s: constraint %s witness sets differ: %s", label, ct.Name, diff)
		}
	}
}

// TestSnapshotRestoreRoundTrip is the round-trip property test: across
// random table contents and random update batches, snapshot → restore must
// reproduce every verdict and every witness set exactly.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			chk, cts := buildFixture(t, rng, 8+rng.Intn(20))
			st, err := store.Open(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			text := store.RenderConstraints(cts)
			epoch := uint64(1)
			if err := st.WriteSnapshot(chk, text, epoch); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				ups := randomUpdates(rng, 1+rng.Intn(6))
				if applied, err := chk.Apply(ups); err != nil {
					// Deletes of absent rows fail; log the applied prefix
					// exactly like the service does.
					ups = ups[:applied]
				}
				epoch++
				if len(ups) > 0 {
					if err := st.AppendBatch(epoch, ups); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := st.WriteSnapshot(chk, text, epoch); err != nil {
				t.Fatal(err)
			}
			restored, gotText, info, err := st.Recover(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if info.LastEpoch != epoch {
				t.Fatalf("recovered epoch %d, want %d", info.LastEpoch, epoch)
			}
			if gotText != text {
				t.Fatalf("constraint text changed across snapshot:\n%q\nwant\n%q", gotText, text)
			}
			if _, err := logic.ParseConstraints(gotText); err != nil {
				t.Fatalf("persisted constraint text does not re-parse: %v", err)
			}
			assertSameState(t, chk, restored, cts, "after snapshot restore")
		})
	}
}

// TestRecoverReplaysWAL checks the snapshot+WAL path: batches appended after
// the last snapshot are replayed on recovery and the result matches the live
// checker.
func TestRecoverReplaysWAL(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	chk, cts := buildFixture(t, rng, 12)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	epoch := uint64(1)
	for i := 0; i < 4; i++ {
		ups := randomUpdates(rng, 3)
		if applied, err := chk.Apply(ups); err != nil {
			ups = ups[:applied]
		}
		epoch++
		if err := st.AppendBatch(epoch, ups); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored, _, info, err := st2.Recover(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotEpoch != 1 || info.LastEpoch != epoch || info.ReplayedRecords != 4 {
		t.Fatalf("recovery info %+v, want snapshot 1, last %d, 4 replayed", info, epoch)
	}
	assertSameState(t, chk, restored, cts, "after WAL replay")
}

// TestTornWALTailDropped simulates a crash mid-append: the final record is
// cut short, recovery must drop exactly that record and replay the rest, and
// the truncated log must accept new appends.
func TestTornWALTailDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	chk, cts := buildFixture(t, rng, 12)
	oracle, _ := buildFixture(t, rand.New(rand.NewSource(7)), 12)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	var batches [][]core.Update
	epoch := uint64(1)
	for i := 0; i < 3; i++ {
		ups := randomUpdates(rng, 3)
		if applied, err := chk.Apply(ups); err != nil {
			ups = ups[:applied]
		}
		epoch++
		if err := st.AppendBatch(epoch, ups); err != nil {
			t.Fatal(err)
		}
		batches = append(batches, ups)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: cut the file 3 bytes short.
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	restored, _, info, err := st2.Recover(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want 2 (torn third dropped)", info.ReplayedRecords)
	}
	if info.DroppedTailBytes == 0 {
		t.Fatal("recovery reported no dropped tail bytes")
	}
	if info.LastEpoch != 3 {
		t.Fatalf("recovered epoch %d, want 3", info.LastEpoch)
	}
	// The restored state must equal the oracle with only the surviving
	// batches applied.
	for _, ups := range batches[:2] {
		if applied, err := oracle.Apply(ups); err != nil || applied != len(ups) {
			t.Fatalf("oracle apply: %d/%d: %v", applied, len(ups), err)
		}
	}
	assertSameState(t, oracle, restored, cts, "after torn-tail recovery")

	// The truncated log keeps working: a new append lands after the valid
	// prefix and survives the next recovery.
	if err := st2.AppendBatch(4, batches[2]); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if _, _, info, err = st3.Recover(core.Options{}); err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords != 3 || info.DroppedTailBytes != 0 {
		t.Fatalf("after re-append: %+v, want 3 clean replayed records", info)
	}
}

// TestCheckerAt exercises point-in-time materialization across the
// retention rules.
func TestCheckerAt(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	chk, cts := buildFixture(t, rng, 10)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	text := store.RenderConstraints(cts)

	// Epoch 1: snapshot. Epochs 2-3: WAL on top. Epoch 4: snapshot.
	if err := st.WriteSnapshot(chk, text, 1); err != nil {
		t.Fatal(err)
	}
	states := map[uint64]*core.Checker{}
	freeze := func(epoch uint64) {
		frozen := core.New(chk.Catalog().Clone(), chk.Options())
		if err := frozen.AdoptIndices(chk.Store().Kernel(), chk.SnapshotIndices()); err != nil {
			t.Fatal(err)
		}
		states[epoch] = frozen
	}
	freeze(1)
	for epoch := uint64(2); epoch <= 3; epoch++ {
		ups := randomUpdates(rng, 4)
		if applied, err := chk.Apply(ups); err != nil {
			ups = ups[:applied]
		}
		if err := st.AppendBatch(epoch, ups); err != nil {
			t.Fatal(err)
		}
		freeze(epoch)
	}
	if err := st.WriteSnapshot(chk, text, 4); err != nil {
		t.Fatal(err)
	}
	freeze(4)
	for epoch := uint64(5); epoch <= 6; epoch++ {
		ups := randomUpdates(rng, 4)
		if applied, err := chk.Apply(ups); err != nil {
			ups = ups[:applied]
		}
		if err := st.AppendBatch(epoch, ups); err != nil {
			t.Fatal(err)
		}
		freeze(epoch)
	}

	// Retained: snapshot 1, snapshot 4, WAL 5-6. Epochs 1, 4, 5, 6 are
	// servable; 2 and 3 fall between snapshots (their WAL was truncated).
	for _, epoch := range []uint64{1, 4, 5, 6} {
		got, err := st.CheckerAt(epoch, core.Options{})
		if err != nil {
			t.Fatalf("CheckerAt(%d): %v", epoch, err)
		}
		assertSameState(t, states[epoch], got, cts, fmt.Sprintf("epoch %d", epoch))
	}
	for _, epoch := range []uint64{2, 3} {
		if _, err := st.CheckerAt(epoch, core.Options{}); !errors.Is(err, store.ErrEpochNotRetained) {
			t.Fatalf("CheckerAt(%d) = %v, want ErrEpochNotRetained", epoch, err)
		}
	}
	// Epoch 0 predates everything.
	if _, err := st.CheckerAt(0, core.Options{}); !errors.Is(err, store.ErrEpochNotRetained) {
		t.Fatal("CheckerAt(0) should report ErrEpochNotRetained")
	}
}

// TestRetentionPrunes checks that old snapshot files are deleted with their
// manifest entries.
func TestRetentionPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	chk, cts := buildFixture(t, rng, 6)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	text := store.RenderConstraints(cts)
	for epoch := uint64(1); epoch <= 5; epoch++ {
		if err := st.WriteSnapshot(chk, text, epoch); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".cvsnap") {
			snaps = append(snaps, e.Name())
		}
	}
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshot files %v, want 2", len(snaps), snaps)
	}
	if st.LastSnapshotEpoch() != 5 {
		t.Fatalf("last snapshot epoch %d, want 5", st.LastSnapshotEpoch())
	}
}

// TestOpenRefusesDamage covers the refusal paths: newer format version,
// unreadable manifest, and a manifest-less directory with content.
func TestOpenRefusesDamage(t *testing.T) {
	t.Run("newer format", func(t *testing.T) {
		dir := t.TempDir()
		manifest := fmt.Sprintf(`{"format_version": %d, "wal": "wal.log", "snapshots": []}`, store.FormatVersion+1)
		if err := os.WriteFile(filepath.Join(dir, store.ManifestName), []byte(manifest), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Open(dir, store.Options{}); !errors.Is(err, store.ErrNewerFormat) {
			t.Fatalf("Open = %v, want ErrNewerFormat", err)
		}
	})
	t.Run("unreadable manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, store.ManifestName), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Open(dir, store.Options{}); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("content without manifest", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "somebody-elses-data"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Open(dir, store.Options{}); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("fresh dir initializes", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "data")
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if st.HasSnapshot() {
			t.Fatal("fresh store claims a snapshot")
		}
		if _, _, _, err := st.Recover(core.Options{}); !errors.Is(err, store.ErrNoSnapshot) {
			t.Fatalf("Recover on fresh store = %v, want ErrNoSnapshot", err)
		}
	})
}

// TestSnapshotCorruptionDetected flips a byte in a snapshot file: recovery
// must fail with ErrCorrupt (checksum or structure), never succeed or panic.
func TestSnapshotCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	chk, cts := buildFixture(t, rng, 8)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	st.Close()
	entries, _ := os.ReadDir(dir)
	var snapPath string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".cvsnap") {
			snapPath = filepath.Join(dir, e.Name())
		}
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{10, len(data) / 2, len(data) - 2} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xff
		if err := os.WriteFile(snapPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := st2.Recover(core.Options{}); err == nil {
			t.Fatalf("recovery succeeded with byte %d flipped", pos)
		}
		st2.Close()
	}
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.Verify(dir, io.Discard); err != nil {
		t.Fatalf("Verify of the restored-intact directory: %v", err)
	}
}

// TestVerifyAndCompact exercises the offline tooling entry points.
func TestVerifyAndCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	chk, cts := buildFixture(t, rng, 8)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(2, randomUpdates(rng, 2)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	var buf strings.Builder
	if err := store.Verify(dir, &buf); err != nil {
		t.Fatalf("Verify: %v\n%s", err, buf.String())
	}
	if err := store.Info(dir, io.Discard); err != nil {
		t.Fatalf("Info: %v", err)
	}

	// Orphans: a leftover temp file and an unreferenced snapshot.
	for _, name := range []string{".tmp-snap-zzz", "snap-ffffffffffffffff.cvsnap", "keep.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	buf.Reset()
	if err := store.Compact(dir, &buf); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for name, wantGone := range map[string]bool{
		".tmp-snap-zzz":                true,
		"snap-ffffffffffffffff.cvsnap": true,
		"keep.txt":                     false,
		store.ManifestName:             false,
		"wal.log":                      false,
		store.SnapshotFileName(1):      false,
	} {
		_, err := os.Stat(filepath.Join(dir, name))
		gone := errors.Is(err, os.ErrNotExist)
		if gone != wantGone {
			t.Errorf("after compact, %s gone=%v want %v", name, gone, wantGone)
		}
	}
}
