package store

// snapshot.go serializes a whole core.Checker image — catalog schemas with
// dictionary-encoded rows, every index's fdd block geometry, the index BDDs
// themselves (one nested bdd.Save of all roots, so structure shared between
// indices stays shared on disk), and the constraint set — and restores it
// into a fresh checker. A snapshot is self-contained: restoring needs only
// the bytes and the core.Options the serving checker runs with.
//
// Layout after an 8-byte magic:
//
//	uvarint format version (currently 1)
//	uvarint epoch
//	uvarint kernel variable count
//	domains:  uvarint n, then per domain (sorted by name)
//	          str name, uvarint nvalues, values as str in code order
//	tables:   uvarint n, then per table (catalog creation order)
//	          str name, uvarint ncols, per column (str name, str domain),
//	          uvarint nrows, rows as ncols × uvarint codes
//	indices:  uvarint n, then per index (sorted by name)
//	          str name, str table, uvarint-counted cols and order lists,
//	          uvarint nblocks, per block (str name, uvarint size,
//	          uvarint-counted vars list)
//	bdd:      uvarint byte length, then a bdd.Save stream of all index
//	          roots in the indices-section order
//	constraints: str (the rendered constraint text, "" when none)
//
// str = uvarint length + bytes. Domains serialize their dictionaries in
// code order, so re-interning on restore reproduces every code and the
// stored row codes stay valid.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
)

const (
	snapMagic = "\x00CVSNAP1"
	// snapFormatVersion is bumped on any incompatible layout change; a
	// reader refuses files from a newer version.
	snapFormatVersion = 1
	// maxSnapString caps any single string or value in a snapshot.
	maxSnapString = 1 << 26
	// maxSnapCount caps any declared element count.
	maxSnapCount = 1 << 31
	// maxSnapVars caps the kernel variable count a snapshot may demand.
	maxSnapVars = 1 << 24
)

// ErrCorrupt is reported (wrapped) for snapshot or manifest bytes that are
// not well-formed: bad magic, truncation, out-of-range codes, checksum
// mismatches. It deliberately also covers bdd.ErrCorrupt from the nested
// BDD section, so callers can match one sentinel.
var ErrCorrupt = errors.New("store: corrupt artifact")

// RenderConstraints renders a constraint set as text that ParseConstraints
// accepts — the form the snapshot persists.
func RenderConstraints(cs []logic.Constraint) string {
	var b strings.Builder
	for _, c := range cs {
		b.WriteString(c.String())
		b.WriteString(".\n")
	}
	return b.String()
}

// writeSnapshot serializes chk at the given epoch to w.
func writeSnapshot(w io.Writer, chk *core.Checker, constraints string, epoch uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	var scratch []byte
	num := func(v uint64) error {
		scratch = binary.AppendUvarint(scratch[:0], v)
		_, err := bw.Write(scratch)
		return err
	}
	str := func(s string) error {
		if err := num(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := num(snapFormatVersion); err != nil {
		return err
	}
	if err := num(epoch); err != nil {
		return err
	}
	if err := num(uint64(chk.Store().Kernel().NumVars())); err != nil {
		return err
	}

	cat := chk.Catalog()
	doms := cat.Domains()
	if err := num(uint64(len(doms))); err != nil {
		return err
	}
	for _, d := range doms {
		if err := str(d.Name()); err != nil {
			return err
		}
		vals := d.Values()
		if err := num(uint64(len(vals))); err != nil {
			return err
		}
		for _, v := range vals {
			if err := str(v); err != nil {
				return err
			}
		}
	}

	tables := cat.Tables()
	if err := num(uint64(len(tables))); err != nil {
		return err
	}
	for _, t := range tables {
		if err := str(t.Name()); err != nil {
			return err
		}
		if err := num(uint64(t.NumCols())); err != nil {
			return err
		}
		for i, name := range t.ColumnNames() {
			if err := str(name); err != nil {
				return err
			}
			if err := str(t.ColumnDomain(i).Name()); err != nil {
				return err
			}
		}
		rows := t.Rows()
		if err := num(uint64(len(rows))); err != nil {
			return err
		}
		for _, row := range rows {
			for _, code := range row {
				if err := num(uint64(uint32(code))); err != nil {
					return err
				}
			}
		}
	}

	snaps := chk.SnapshotIndices()
	if err := num(uint64(len(snaps))); err != nil {
		return err
	}
	roots := make([]bdd.Ref, 0, len(snaps))
	for _, s := range snaps {
		if err := str(s.Name); err != nil {
			return err
		}
		if err := str(s.Table); err != nil {
			return err
		}
		for _, list := range [][]int{s.Cols, s.Order} {
			if err := num(uint64(len(list))); err != nil {
				return err
			}
			for _, v := range list {
				if err := num(uint64(v)); err != nil {
					return err
				}
			}
		}
		if err := num(uint64(len(s.Blocks))); err != nil {
			return err
		}
		for _, b := range s.Blocks {
			if err := str(b.Name); err != nil {
				return err
			}
			if err := num(uint64(b.Size)); err != nil {
				return err
			}
			if err := num(uint64(len(b.Vars))); err != nil {
				return err
			}
			for _, v := range b.Vars {
				if err := num(uint64(v)); err != nil {
					return err
				}
			}
		}
		roots = append(roots, s.Root)
	}

	// The BDD section is length-prefixed so the container parser never has
	// to trust bdd.Load's internal buffering to stop at the right byte.
	var bddBuf bytes.Buffer
	if err := chk.Store().Kernel().Save(&bddBuf, roots...); err != nil {
		return fmt.Errorf("store: saving index BDDs: %w", err)
	}
	if err := num(uint64(bddBuf.Len())); err != nil {
		return err
	}
	if _, err := bw.Write(bddBuf.Bytes()); err != nil {
		return err
	}
	if err := str(constraints); err != nil {
		return err
	}
	return bw.Flush()
}

// snapParser is a cursor over a snapshot stream with sticky errors and
// allocation guards.
type snapParser struct {
	br  *bufio.Reader
	err error
}

func (p *snapParser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (p *snapParser) num() uint64 {
	if p.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(p.br)
	if err != nil {
		p.fail("truncated varint: %v", err)
		return 0
	}
	return v
}

// count reads an element count and rejects implausible declarations.
func (p *snapParser) count(what string) int {
	v := p.num()
	if p.err == nil && v > maxSnapCount {
		p.fail("implausible %s count %d", what, v)
	}
	return int(v)
}

func (p *snapParser) str(what string) string {
	n := p.num()
	if p.err != nil {
		return ""
	}
	if n > maxSnapString {
		p.fail("implausible %s length %d", what, n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(p.br, buf); err != nil {
		p.fail("truncated %s: %v", what, err)
		return ""
	}
	return string(buf)
}

// boundedCap limits a pre-allocation driven by an untrusted count: slices
// start at most this big and grow as real bytes arrive.
func boundedCap(n int) int {
	if n > 1<<16 {
		return 1 << 16
	}
	return n
}

// readSnapshot restores a checker image from r. opts are the core options
// the restored checker runs with (budget, evaluation strategy); they are the
// caller's runtime configuration, not part of the image. Returns the
// checker, the persisted constraint text, and the snapshot's epoch.
func readSnapshot(r io.Reader, opts core.Options) (*core.Checker, string, uint64, error) {
	p := &snapParser{br: bufio.NewReader(r)}
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(p.br, magic); err != nil {
		return nil, "", 0, fmt.Errorf("%w: reading magic: %w", ErrCorrupt, err)
	}
	if string(magic) != snapMagic {
		return nil, "", 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if v := p.num(); p.err == nil && v != snapFormatVersion {
		return nil, "", 0, fmt.Errorf("store: snapshot format version %d is newer than supported %d: %w", v, snapFormatVersion, ErrNewerFormat)
	}
	epoch := p.num()
	numVars := p.num()
	if p.err == nil && numVars > maxSnapVars {
		p.fail("implausible variable count %d", numVars)
	}
	if p.err != nil {
		return nil, "", 0, p.err
	}

	cat := relation.NewCatalog()
	nDoms := p.count("domain")
	for i := 0; i < nDoms && p.err == nil; i++ {
		d := cat.Domain(p.str("domain name"))
		nVals := p.count("value")
		for j := 0; j < nVals && p.err == nil; j++ {
			d.Intern(p.str("domain value"))
		}
	}

	nTables := p.count("table")
	for i := 0; i < nTables && p.err == nil; i++ {
		name := p.str("table name")
		nCols := p.count("column")
		cols := make([]relation.Column, 0, boundedCap(nCols))
		for j := 0; j < nCols && p.err == nil; j++ {
			cols = append(cols, relation.Column{Name: p.str("column name"), Domain: p.str("column domain")})
		}
		if p.err != nil {
			break
		}
		t, err := cat.CreateTable(name, cols)
		if err != nil {
			return nil, "", 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		sizes := make([]uint64, nCols)
		for j := 0; j < nCols; j++ {
			sizes[j] = uint64(t.ColumnDomain(j).Size())
		}
		nRows := p.count("row")
		row := make([]int32, nCols)
		for j := 0; j < nRows && p.err == nil; j++ {
			for k := 0; k < nCols; k++ {
				code := p.num()
				if p.err == nil && code >= sizes[k] {
					p.fail("table %s row %d: code %d outside domain of %d values", name, j, code, sizes[k])
				}
				row[k] = int32(code)
			}
			if p.err == nil {
				t.InsertCodes(row)
			}
		}
	}
	if p.err != nil {
		return nil, "", 0, p.err
	}

	nIdx := p.count("index")
	snaps := make([]core.IndexSnapshot, 0, boundedCap(nIdx))
	for i := 0; i < nIdx && p.err == nil; i++ {
		s := core.IndexSnapshot{Name: p.str("index name"), Table: p.str("index table")}
		for _, dst := range []*[]int{&s.Cols, &s.Order} {
			n := p.count("index column")
			list := make([]int, 0, boundedCap(n))
			for j := 0; j < n && p.err == nil; j++ {
				v := p.num()
				if p.err == nil && v > maxSnapCount {
					p.fail("implausible index column value %d", v)
				}
				list = append(list, int(v))
			}
			*dst = list
		}
		nBlocks := p.count("block")
		for j := 0; j < nBlocks && p.err == nil; j++ {
			b := core.BlockSnapshot{Name: p.str("block name")}
			size := p.num()
			if p.err == nil && size > maxSnapCount {
				p.fail("implausible block size %d", size)
			}
			b.Size = int(size)
			nVars := p.count("block var")
			b.Vars = make([]int, 0, boundedCap(nVars))
			for k := 0; k < nVars && p.err == nil; k++ {
				v := p.num()
				if p.err == nil && v >= numVars {
					p.fail("block %s var %d outside the kernel's %d variables", b.Name, v, numVars)
				}
				b.Vars = append(b.Vars, int(v))
			}
			s.Blocks = append(s.Blocks, b)
		}
		snaps = append(snaps, s)
	}
	if p.err != nil {
		return nil, "", 0, p.err
	}

	chk := core.New(cat, opts)
	k := chk.Store().Kernel()
	if int(numVars) > k.NumVars() {
		k.AddVars(int(numVars) - k.NumVars())
	}
	bddLen := p.num()
	if p.err != nil {
		return nil, "", 0, p.err
	}
	bddSection := io.LimitReader(p.br, int64(bddLen))
	roots, err := k.Load(bddSection)
	if err != nil {
		if errors.Is(err, bdd.ErrCorrupt) {
			err = fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		return nil, "", 0, fmt.Errorf("store: loading index BDDs: %w", err)
	}
	// Load buffers internally and may leave section bytes unread; drain to
	// the declared section end so the container cursor stays aligned.
	if _, err := io.Copy(io.Discard, bddSection); err != nil {
		return nil, "", 0, fmt.Errorf("%w: draining BDD section: %v", ErrCorrupt, err)
	}
	if len(roots) != len(snaps) {
		return nil, "", 0, fmt.Errorf("%w: snapshot lists %d indices but stores %d roots", ErrCorrupt, len(snaps), len(roots))
	}
	for i := range snaps {
		snaps[i].Root = roots[i]
	}
	if err := chk.AdoptOwnedIndices(snaps); err != nil {
		return nil, "", 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	constraints := p.str("constraint text")
	if p.err != nil {
		return nil, "", 0, p.err
	}
	return chk, constraints, epoch, nil
}
