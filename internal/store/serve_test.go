package store_test

import (
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// TestOpenSnapshotSurvivesPrune: the regression the snapshot-serving handler
// depends on — a download in flight keeps its opened handle readable and
// checksum-clean even after retention pruning unlinks the file under it.
func TestOpenSnapshotSurvivesPrune(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))
	chk, cts := buildFixture(t, rng, 60)
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncOff, Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	text := store.RenderConstraints(cts)
	if err := st.WriteSnapshot(chk, text, 1); err != nil {
		t.Fatal(err)
	}

	rc, entry, err := st.OpenSnapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// Read only a prefix, as a slow client mid-download would have.
	prefix := make([]byte, entry.Bytes/2)
	if _, err := io.ReadFull(rc, prefix); err != nil {
		t.Fatal(err)
	}

	// Advance the store past the retention window: epoch 1's file is pruned.
	for epoch := uint64(2); epoch <= 4; epoch++ {
		chk.Apply(randomUpdates(rng, 2)) // deletes of absent rows may stop early; any prefix will do
		if err := st.WriteSnapshot(chk, text, epoch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, entry.File)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("expected %s to be pruned, stat: %v", entry.File, err)
	}
	if _, _, err := st.OpenSnapshot(1); !errors.Is(err, store.ErrEpochNotRetained) {
		t.Fatalf("reopening the pruned epoch: got %v, want ErrEpochNotRetained", err)
	}

	// The in-flight download still completes, byte-exact.
	rest, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	all := append(prefix, rest...)
	if int64(len(all)) != entry.Bytes {
		t.Fatalf("streamed %d bytes, manifest says %d", len(all), entry.Bytes)
	}
	if crc := crc32.ChecksumIEEE(all); crc != entry.CRC32 {
		t.Fatalf("streamed crc %08x, manifest says %08x", crc, entry.CRC32)
	}
}

// TestCheckerAtDuringSnapshotWrites races point-in-time materialization
// against a snapshot writer that prunes aggressively (Retain 1). Every
// CheckerAt call must either produce a working checker or classify the miss
// as ErrEpochNotRetained — never report corruption or restore a half-pruned
// file.
func TestCheckerAtDuringSnapshotWrites(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(29))
	chk, cts := buildFixture(t, rng, 40)
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncOff, Retain: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	text := store.RenderConstraints(cts)
	if err := st.WriteSnapshot(chk, text, 1); err != nil {
		t.Fatal(err)
	}

	const rounds = 12
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }); wg.Wait() }
	defer halt()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				epoch := st.LastSnapshotEpoch()
				got, err := st.CheckerAt(epoch, core.Options{})
				if err != nil {
					if errors.Is(err, store.ErrEpochNotRetained) {
						continue // pruned between the epoch read and the resolve: fine
					}
					t.Errorf("CheckerAt(%d): %v", epoch, err)
					return
				}
				for _, ct := range cts {
					if res := got.CheckOne(ct); res.Err != nil {
						t.Errorf("materialized checker at epoch %d: %s: %v", epoch, ct.Name, res.Err)
						return
					}
				}
			}
		}()
	}
	for epoch := uint64(2); epoch < 2+rounds; epoch++ {
		ups := randomUpdates(rng, 3)
		applied, err := chk.Apply(ups)
		if err != nil {
			ups = ups[:applied] // deletes of absent rows stop early, like the service
		}
		if len(ups) > 0 {
			if err := st.AppendBatch(epoch, ups); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.WriteSnapshot(chk, text, epoch); err != nil {
			t.Fatal(err)
		}
	}
	halt()
}

// TestInstallSnapshotVerifies: a shipped snapshot is only committed when the
// stream matches the declared length and checksum; mismatches report
// ErrCorrupt without touching the manifest, and stale epochs are refused.
func TestInstallSnapshotVerifies(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	rng := rand.New(rand.NewSource(31))
	chk, cts := buildFixture(t, rng, 60)
	src, err := store.Open(srcDir, store.Options{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if err := src.WriteSnapshot(chk, store.RenderConstraints(cts), 5); err != nil {
		t.Fatal(err)
	}
	rc, entry, err := src.OpenSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := store.Open(dstDir, store.Options{Fsync: store.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	// Byte-flipped stream: detected, nothing installed.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := dst.InstallSnapshot(newByteReader(flipped), entry.Epoch, entry.Bytes, entry.CRC32); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("flipped stream: got %v, want ErrCorrupt", err)
	}
	// Truncated stream: detected by the length comparison.
	if err := dst.InstallSnapshot(newByteReader(raw[:len(raw)-7]), entry.Epoch, entry.Bytes, entry.CRC32); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("truncated stream: got %v, want ErrCorrupt", err)
	}
	if dst.HasSnapshot() {
		t.Fatal("a rejected install left a snapshot behind")
	}

	// The intact stream installs and recovers to the identical state.
	if err := dst.InstallSnapshot(newByteReader(raw), entry.Epoch, entry.Bytes, entry.CRC32); err != nil {
		t.Fatal(err)
	}
	restored, _, info, err := dst.Recover(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastEpoch != entry.Epoch {
		t.Fatalf("recovered epoch %d, want %d", info.LastEpoch, entry.Epoch)
	}
	assertSameState(t, chk, restored, cts, "installed snapshot")

	// Re-installing the same (or an older) epoch is a stale transfer.
	if err := dst.InstallSnapshot(newByteReader(raw), entry.Epoch, entry.Bytes, entry.CRC32); err == nil {
		t.Fatal("stale re-install succeeded")
	}
}

// newByteReader wraps bytes in a plain io.Reader (not an io.ReaderAt or
// Seeker), matching what an HTTP response body offers.
func newByteReader(b []byte) io.Reader { return &byteStream{b: b} }

type byteStream struct{ b []byte }

func (s *byteStream) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}
