package store_test

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// openTailFixture seals an epoch-1 snapshot so the store is recoverable,
// returning the open store and the checker that feeds AppendBatch updates.
func openTailFixture(t *testing.T, dir string, opts store.Options) (*store.Store, *core.Checker) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	chk, cts := buildFixture(t, rng, 60)
	st, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chk, store.RenderConstraints(cts), 1); err != nil {
		t.Fatal(err)
	}
	return st, chk
}

// drainTail polls until want batches arrived (or times out), asserting the
// reader never signals a reset.
func drainTail(t *testing.T, tail *store.WALTail, want int) []store.Batch {
	t.Helper()
	var got []store.Batch
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < want {
		bs, reset, err := tail.Poll()
		if err != nil {
			t.Fatalf("tail poll: %v", err)
		}
		if reset {
			t.Fatalf("unexpected tail reset after %d batches", len(got))
		}
		got = append(got, bs...)
		if len(bs) == 0 {
			if time.Now().After(deadline) {
				t.Fatalf("tail stuck at %d/%d batches", len(got), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return got
}

// TestTailConcurrentAppend is the tailing reader's core property, run under
// every fsync policy: a writer appends random batches while a reader polls
// concurrently; the reader must deliver exactly the appended sequence — no
// record duplicated, dropped, or reordered — and end positioned at the
// log's exact end.
func TestTailConcurrentAppend(t *testing.T) {
	policies := []store.FsyncPolicy{store.FsyncBatch, store.FsyncIntervalPolicy, store.FsyncOff}
	for _, policy := range policies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			t.Parallel()
			st, _ := openTailFixture(t, t.TempDir(), store.Options{
				Fsync:         policy,
				FsyncInterval: time.Millisecond,
			})
			defer st.Close()

			rng := rand.New(rand.NewSource(int64(policy) + 100))
			const nBatches = 120
			written := make([]store.Batch, 0, nBatches)
			for i := 0; i < nBatches; i++ {
				written = append(written, store.Batch{
					Epoch:   uint64(i + 2),
					Updates: randomUpdates(rng, 1+rng.Intn(5)),
				})
			}

			tail := st.TailWAL()
			done := make(chan []store.Batch, 1)
			go func() {
				var got []store.Batch
				for len(got) < nBatches {
					bs, _, err := tail.Poll()
					if err != nil {
						t.Errorf("tail poll: %v", err)
						break
					}
					got = append(got, bs...)
					if len(bs) == 0 {
						time.Sleep(50 * time.Microsecond)
					}
				}
				done <- got
			}()

			for _, b := range written {
				if err := st.AppendBatch(b.Epoch, b.Updates); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
				}
			}
			got := <-done
			if !reflect.DeepEqual(got, written) {
				t.Fatalf("tailed sequence differs from written sequence: got %d batches, want %d", len(got), len(written))
			}
			if tail.Pos() != st.WALSize() {
				t.Fatalf("tail position %d, log size %d", tail.Pos(), st.WALSize())
			}
		})
	}
}

// TestTailTornThenContinue: a torn partial record at the log's end (an
// append a crash interrupted) must read as "nothing yet", and when valid
// bytes replace it the reader resumes from its exact position without
// duplicating or dropping a record.
func TestTailTornThenContinue(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTailFixture(t, dir, store.Options{Fsync: store.FsyncOff})
	defer st.Close()

	rng := rand.New(rand.NewSource(7))
	for e := uint64(2); e <= 4; e++ {
		if err := st.AppendBatch(e, randomUpdates(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	tail := st.TailWAL()
	if got := drainTail(t, tail, 3); got[len(got)-1].Epoch != 4 {
		t.Fatalf("last tailed epoch %d, want 4", got[len(got)-1].Epoch)
	}
	posBefore := tail.Pos()

	// Simulate the torn tail: a few garbage bytes shorter than a record
	// header, appended through a second descriptor as an interrupted write
	// would leave them.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The torn bytes are invisible: no batches, no error, position holds.
	bs, reset, err := tail.Poll()
	if err != nil || reset || len(bs) != 0 {
		t.Fatalf("poll over torn tail: batches=%d reset=%v err=%v", len(bs), reset, err)
	}
	if tail.Pos() != posBefore {
		t.Fatalf("torn tail moved the position: %d -> %d", posBefore, tail.Pos())
	}

	// The store's own writer continues at its append offset — exactly where
	// the reader stands — overwriting the torn bytes, as recovery's
	// truncate-then-append would. The reader picks up seamlessly.
	if err := st.AppendBatch(5, randomUpdates(rng, 3)); err != nil {
		t.Fatal(err)
	}
	got := drainTail(t, tail, 1)
	if got[0].Epoch != 5 {
		t.Fatalf("continued epoch %d, want 5", got[0].Epoch)
	}
	if tail.Pos() != st.WALSize() {
		t.Fatalf("tail position %d, log size %d", tail.Pos(), st.WALSize())
	}
}

// TestTailAfterCrashRecovery: the full crash shape — garbage tail on disk,
// store reopened, Recover truncates the torn bytes — must leave a fresh
// tailer reading exactly the surviving records, and appends after recovery
// flow through the same reader.
func TestTailAfterCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTailFixture(t, dir, store.Options{Fsync: store.FsyncBatch})
	rng := rand.New(rand.NewSource(11))
	for e := uint64(2); e <= 4; e++ {
		if err := st.AppendBatch(e, randomUpdates(rng, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Crash mid-append: a record header that declares more payload than the
	// file holds.
	walPath := filepath.Join(dir, "wal.log")
	torn := make([]byte, 12)
	binary.LittleEndian.PutUint32(torn[0:4], 500)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := store.Open(dir, store.Options{Fsync: store.FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, _, info, err := st2.Recover(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.DroppedTailBytes != int64(len(torn)) {
		t.Fatalf("recovery dropped %d tail bytes, want %d", info.DroppedTailBytes, len(torn))
	}
	tail := st2.TailWAL()
	got := drainTail(t, tail, 3)
	for i, b := range got {
		if b.Epoch != uint64(i+2) {
			t.Fatalf("batch %d has epoch %d, want %d", i, b.Epoch, i+2)
		}
	}
	if tail.Pos() != st2.WALSize() {
		t.Fatalf("tail position %d, log size %d after recovery", tail.Pos(), st2.WALSize())
	}
	if err := st2.AppendBatch(5, randomUpdates(rng, 2)); err != nil {
		t.Fatal(err)
	}
	if got := drainTail(t, tail, 1); got[0].Epoch != 5 {
		t.Fatalf("post-recovery epoch %d, want 5", got[0].Epoch)
	}
}

// TestTailSnapshotReset: sealing a snapshot truncates the log; an active
// tailer must report the reset exactly once and then deliver only records
// appended after it — never a pre-reset record again.
func TestTailSnapshotReset(t *testing.T) {
	dir := t.TempDir()
	st, chk := openTailFixture(t, dir, store.Options{Fsync: store.FsyncOff})
	defer st.Close()

	rng := rand.New(rand.NewSource(13))
	apply := func(epoch uint64) {
		t.Helper()
		ups := randomUpdates(rng, 2)
		if applied, err := chk.Apply(ups); err != nil {
			ups = ups[:applied] // deletes of absent rows stop early, like the service
		}
		if err := st.AppendBatch(epoch, ups); err != nil {
			t.Fatal(err)
		}
	}
	apply(2)
	apply(3)
	tail := st.TailWAL()
	drainTail(t, tail, 2)

	if err := st.WriteSnapshot(chk, "", 3); err != nil {
		t.Fatal(err)
	}
	apply(4)
	var got []store.Batch
	sawReset := false
	for len(got) < 1 {
		bs, reset, err := tail.Poll()
		if err != nil {
			t.Fatal(err)
		}
		sawReset = sawReset || reset
		got = append(got, bs...)
	}
	if !sawReset {
		t.Fatal("tailer crossed a WAL reset without reporting it")
	}
	if len(got) != 1 || got[0].Epoch != 4 {
		t.Fatalf("post-reset delivery %v, want exactly epoch 4", got)
	}
}

// TestTailCorruptRecord: a complete record with a broken checksum is real
// corruption (the writer emits records in one write), and the reader must
// say so instead of waiting forever or skipping it.
func TestTailCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	st, _ := openTailFixture(t, dir, store.Options{Fsync: store.FsyncOff})
	defer st.Close()

	rng := rand.New(rand.NewSource(17))
	if err := st.AppendBatch(2, randomUpdates(rng, 2)); err != nil {
		t.Fatal(err)
	}
	// A "complete" record: header declares 4 payload bytes, all present,
	// checksum deliberately wrong.
	bad := make([]byte, 12)
	binary.LittleEndian.PutUint32(bad[0:4], 4)
	binary.LittleEndian.PutUint32(bad[4:8], 0xdeadbeef)
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bad); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tail := st.TailWAL()
	// First poll drains the valid prefix.
	bs, _, err := tail.Poll()
	if err != nil || len(bs) != 1 || bs[0].Epoch != 2 {
		t.Fatalf("valid prefix: batches=%v err=%v", bs, err)
	}
	// Then the corruption reports as an error, not a silent wait.
	if _, _, err := tail.Poll(); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("corrupt record: got %v, want ErrCorrupt", err)
	}
}
