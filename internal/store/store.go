// Package store is the durability subsystem: a write-ahead log of every
// acknowledged update batch plus periodic whole-checker snapshots, managed
// inside one data directory by a manifest. Together they give the daemon
// warm restarts (snapshot + WAL replay instead of CSV rebuild and index
// reconstruction) and point-in-time checking (materialize the state as of a
// retained epoch).
//
// Concurrency contract: AppendBatch, WriteSnapshot and InstallSnapshot
// belong to the single write-owner goroutine (the service worker) and must
// not race each other; CheckerAt, OpenSnapshot, WALTail.Poll and Status may
// run from any goroutine. Readers hold the read lock only long enough to
// resolve the manifest, open file handles, and copy WAL bytes — the
// expensive materialization happens after release, relying on POSIX unlink
// semantics (an open descriptor outlives a concurrent prune) and on the
// copied bytes being immune to WAL truncation. A concurrent append during a
// read is harmless: appended records carry epochs newer than any epoch a
// reader may legally request, and a torn read of the in-flight record is
// dropped by the tail scan.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Options configures a Store.
type Options struct {
	// Fsync is the WAL flush policy (default FsyncBatch).
	Fsync FsyncPolicy
	// FsyncInterval is the minimum spacing between WAL syncs under
	// FsyncIntervalPolicy (default 100ms).
	FsyncInterval time.Duration
	// Retain is how many snapshots to keep (default 4, minimum 1). Older
	// snapshots — and the historical epochs only they can serve — are
	// deleted as new ones are written.
	Retain int
}

// Sentinel errors for store conditions callers branch on.
var (
	// ErrNoSnapshot is reported by Recover when the directory holds no
	// snapshot yet (a fresh store): the caller must cold-boot.
	ErrNoSnapshot = errors.New("store: no snapshot in data directory")
	// ErrEpochNotRetained is reported by CheckerAt for an epoch older than
	// the retention window or falling between retained snapshots whose
	// connecting WAL has been truncated.
	ErrEpochNotRetained = errors.New("store: epoch not retained")
)

// Store is an open data directory.
type Store struct {
	dir  string
	opts Options

	// mu orders manifest/file mutation (write lock: WriteSnapshot's prune
	// and WAL truncation) against readers (read lock: CheckerAt, Status).
	mu  sync.RWMutex
	man *Manifest
	wal *walFile

	metrics atomic.Pointer[Metrics]

	// walGen counts WAL resets (snapshot installs truncate the log back to
	// its magic). Tailing readers compare it to detect that their position
	// no longer refers to the same log contents. Bumped under the write
	// lock, read under the read lock (atomic only so Status-style readers
	// could peek without blocking).
	walGen atomic.Uint64

	// Counters for /statsz and /metricsz, updated lock-free.
	walSize           atomic.Int64
	walAppends        atomic.Uint64
	walBytesWritten   atomic.Uint64
	fsyncs            atomic.Uint64
	replayedRecords   atomic.Uint64
	replayedTuples    atomic.Uint64
	droppedTailBytes  atomic.Uint64
	tornTails         atomic.Uint64
	lastSnapshotEpoch atomic.Uint64
}

// Open opens (or initializes) the data directory at dir. A directory with
// an unreadable manifest, or one written by a newer format version, is an
// error — never silently shadowed (errors.Is ErrCorrupt / ErrNewerFormat).
// A directory that exists with content but no manifest is also refused: it
// is not ours to overwrite.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Retain < 1 {
		opts.Retain = 4
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data directory: %w", err)
	}
	man, err := readManifest(dir)
	if errors.Is(err, os.ErrNotExist) {
		entries, lerr := os.ReadDir(dir)
		if lerr != nil {
			return nil, fmt.Errorf("store: listing data directory: %w", lerr)
		}
		for _, e := range entries {
			return nil, fmt.Errorf("%w: %s has no manifest but contains %q — refusing to initialize over it",
				ErrCorrupt, dir, e.Name())
		}
		man = &Manifest{Version: FormatVersion, WAL: walName}
		if werr := man.write(dir); werr != nil {
			return nil, werr
		}
	} else if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, man: man}
	s.wal, err = openWAL(filepath.Join(dir, man.WAL), opts.Fsync, opts.FsyncInterval)
	if err != nil {
		return nil, err
	}
	s.walSize.Store(s.wal.size)
	if latest := man.latest(); latest != nil {
		s.lastSnapshotEpoch.Store(latest.Epoch)
	}
	return s, nil
}

// Close releases the WAL file handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.close()
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// HasSnapshot reports whether the directory holds at least one snapshot —
// whether Recover can warm-boot.
func (s *Store) HasSnapshot() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.latest() != nil
}

// RecoveryInfo summarizes what Recover did.
type RecoveryInfo struct {
	// SnapshotEpoch is the epoch of the restored snapshot.
	SnapshotEpoch uint64
	// LastEpoch is the state's epoch after WAL replay — the epoch the
	// service must resume counting from.
	LastEpoch uint64
	// ReplayedRecords and ReplayedTuples count the WAL records applied on
	// top of the snapshot and the updates they carried.
	ReplayedRecords int
	ReplayedTuples  int
	// SkippedRecords counts WAL records at or below the snapshot epoch
	// (a crash hit between snapshot install and WAL truncation).
	SkippedRecords int
	// DroppedTailBytes is the size of the torn tail cut from the WAL, if
	// any — the in-flight record a crash interrupted.
	DroppedTailBytes int64
}

// Recover restores the latest snapshot, replays every WAL record behind it,
// truncates any torn tail, and returns the recovered checker, the persisted
// constraint text, and what happened. coreOpts is the runtime configuration
// for the restored checker. ErrNoSnapshot means a fresh directory.
func (s *Store) Recover(coreOpts core.Options) (*core.Checker, string, RecoveryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var info RecoveryInfo
	latest := s.man.latest()
	if latest == nil {
		return nil, "", info, ErrNoSnapshot
	}
	chk, constraints, epoch, err := s.restoreEntry(latest, coreOpts)
	if err != nil {
		return nil, "", info, err
	}
	info.SnapshotEpoch = epoch
	info.LastEpoch = epoch

	scan, err := scanWAL(filepath.Join(s.dir, s.man.WAL))
	if err != nil {
		return nil, "", info, err
	}
	for _, b := range scan.Batches {
		if b.Epoch <= epoch {
			info.SkippedRecords++
			continue
		}
		if applied, err := chk.Apply(b.Updates); err != nil || applied != len(b.Updates) {
			return nil, "", info, fmt.Errorf("%w: replaying WAL record for epoch %d: applied %d/%d: %v",
				ErrCorrupt, b.Epoch, applied, len(b.Updates), err)
		}
		info.ReplayedRecords++
		info.ReplayedTuples += len(b.Updates)
		info.LastEpoch = b.Epoch
	}
	if scan.DroppedBytes > 0 {
		info.DroppedTailBytes = scan.DroppedBytes
		s.tornTails.Add(1)
		s.droppedTailBytes.Add(uint64(scan.DroppedBytes))
		if err := s.wal.truncateTo(scan.ValidBytes); err != nil {
			return nil, "", info, err
		}
		s.walSize.Store(s.wal.size)
	}
	s.replayedRecords.Add(uint64(info.ReplayedRecords))
	s.replayedTuples.Add(uint64(info.ReplayedTuples))
	return chk, constraints, info, nil
}

// restoreEntry restores one snapshot file, verifying its length and CRC
// against the manifest entry. Callers hold mu (read or write).
func (s *Store) restoreEntry(e *SnapshotEntry, coreOpts core.Options) (*core.Checker, string, uint64, error) {
	f, err := os.Open(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, "", 0, fmt.Errorf("store: opening snapshot: %w", err)
	}
	defer f.Close()
	return restoreSnapshotFile(f, *e, coreOpts)
}

// restoreSnapshotFile materializes a checker from an already-opened snapshot
// stream, verifying length, CRC, and epoch against the manifest entry. It
// holds no store locks: the caller opened the handle under the lock, and on
// POSIX an open descriptor keeps reading correctly even if a concurrent
// prune unlinks the file — so the expensive BDD reconstruction runs without
// blocking snapshot writes.
func restoreSnapshotFile(f io.Reader, e SnapshotEntry, coreOpts core.Options) (*core.Checker, string, uint64, error) {
	cr := &crcReader{r: f}
	chk, constraints, epoch, err := readSnapshot(cr, coreOpts)
	if err != nil {
		return nil, "", 0, fmt.Errorf("store: snapshot %s: %w", e.File, err)
	}
	// readSnapshot buffers; drain so the checksum covers the whole file and
	// trailing garbage is caught by the length comparison.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, "", 0, fmt.Errorf("store: reading snapshot %s: %w", e.File, err)
	}
	if cr.n != e.Bytes || cr.crc != e.CRC32 {
		return nil, "", 0, fmt.Errorf("%w: snapshot %s is %d bytes crc %08x, manifest says %d bytes crc %08x",
			ErrCorrupt, e.File, cr.n, cr.crc, e.Bytes, e.CRC32)
	}
	if epoch != e.Epoch {
		return nil, "", 0, fmt.Errorf("%w: snapshot %s carries epoch %d, manifest says %d",
			ErrCorrupt, e.File, epoch, e.Epoch)
	}
	return chk, constraints, epoch, nil
}

// AppendBatch logs one acknowledged batch: the updates that were applied for
// epoch. Must be called by the write owner before the batch is acknowledged
// (log-before-ack); an error means durability is not assured and the owner
// must surface it in the acknowledgment.
func (s *Store) AppendBatch(epoch uint64, ups []core.Update) error {
	start := time.Now()
	n, synced, err := s.wal.append(epoch, ups)
	if err != nil {
		return err
	}
	s.walSize.Store(s.wal.size)
	s.walAppends.Add(1)
	s.walBytesWritten.Add(uint64(n))
	if synced {
		s.fsyncs.Add(1)
	}
	if m := s.metrics.Load(); m != nil {
		m.WALAppend.Observe(time.Since(start))
	}
	return nil
}

// SnapshotFileName names the snapshot file for an epoch, relative to the
// data directory.
func SnapshotFileName(epoch uint64) string {
	return fmt.Sprintf("snap-%016x.cvsnap", epoch)
}

// WriteSnapshot persists chk's current state as the snapshot for epoch,
// installs it in the manifest, prunes snapshots beyond the retention count,
// and truncates the WAL (everything logged is now covered by the snapshot).
// Write-owner only; chk must be quiescent for the duration.
func (s *Store) WriteSnapshot(chk *core.Checker, constraints string, epoch uint64) error {
	start := time.Now()
	name := SnapshotFileName(epoch)
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	cw := &crcWriter{w: tmp}
	if err := writeSnapshot(cw, chk, constraints, epoch); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.installSnapshotLocked(tmpName, SnapshotEntry{Epoch: epoch, File: name, Bytes: cw.n, CRC32: cw.crc}); err != nil {
		return err
	}
	if m := s.metrics.Load(); m != nil {
		m.SnapshotWrite.Observe(time.Since(start))
	}
	return nil
}

// installSnapshotLocked renames a fully written, synced temp file into place
// as entry, commits a manifest referencing it (pruning past the retention
// count), and resets the WAL — everything logged so far is covered by the
// snapshot. Caller holds the write lock.
func (s *Store) installSnapshotLocked(tmpName string, entry SnapshotEntry) error {
	if err := os.Rename(tmpName, filepath.Join(s.dir, entry.File)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	man := &Manifest{Version: FormatVersion, WAL: s.man.WAL}
	man.Snapshots = append(append([]SnapshotEntry(nil), s.man.Snapshots...), entry)
	var pruned []SnapshotEntry
	if n := len(man.Snapshots); n > s.opts.Retain {
		pruned = append(pruned, man.Snapshots[:n-s.opts.Retain]...)
		man.Snapshots = append([]SnapshotEntry(nil), man.Snapshots[n-s.opts.Retain:]...)
	}
	if err := man.write(s.dir); err != nil {
		return err
	}
	s.man = man
	// Old snapshot files go only after the manifest that stops referencing
	// them is durable; a crash in between leaves unreferenced files, which
	// is safe (cvstore compact cleans them up).
	for _, e := range pruned {
		os.Remove(filepath.Join(s.dir, e.File))
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.walGen.Add(1)
	s.walSize.Store(s.wal.size)
	s.lastSnapshotEpoch.Store(entry.Epoch)
	return nil
}

// OpenSnapshot opens a retained snapshot for streaming: the raw file plus
// its manifest entry (exact length, CRC, epoch). epoch 0 means the newest.
// The handle stays readable even if a concurrent WriteSnapshot prunes the
// file (POSIX unlink semantics), so callers can stream it without holding
// any store lock. ErrNoSnapshot / ErrEpochNotRetained classify misses.
func (s *Store) OpenSnapshot(epoch uint64) (io.ReadCloser, SnapshotEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var entry *SnapshotEntry
	if epoch == 0 {
		entry = s.man.latest()
		if entry == nil {
			return nil, SnapshotEntry{}, ErrNoSnapshot
		}
	} else {
		for i := range s.man.Snapshots {
			if s.man.Snapshots[i].Epoch == epoch {
				entry = &s.man.Snapshots[i]
				break
			}
		}
		if entry == nil {
			if s.man.latest() == nil {
				return nil, SnapshotEntry{}, ErrNoSnapshot
			}
			return nil, SnapshotEntry{}, fmt.Errorf("%w: no snapshot sealed at epoch %d", ErrEpochNotRetained, epoch)
		}
	}
	f, err := os.Open(filepath.Join(s.dir, entry.File))
	if err != nil {
		return nil, SnapshotEntry{}, fmt.Errorf("store: opening snapshot: %w", err)
	}
	return f, *entry, nil
}

// InstallSnapshot streams a snapshot fetched from elsewhere (a leader) into
// the directory as the new latest snapshot, verifying its length and CRC
// against what the sender declared before committing anything. On success
// the WAL is reset: local state now restarts from the installed epoch. A
// verification failure reports ErrCorrupt (the caller should refetch); an
// epoch at or below the current latest snapshot is refused (stale transfer).
// Write-owner only, like WriteSnapshot.
func (s *Store) InstallSnapshot(src io.Reader, epoch uint64, wantBytes int64, wantCRC uint32) error {
	if epoch == 0 {
		return fmt.Errorf("store: cannot install a snapshot for epoch 0")
	}
	name := SnapshotFileName(epoch)
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	cw := &crcWriter{w: tmp}
	// Cap the copy just past the declared length so a stream that overruns
	// is caught by the comparison below instead of filling the disk.
	if _, err := io.Copy(cw, io.LimitReader(src, wantBytes+1)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: receiving snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if cw.n != wantBytes || cw.crc != wantCRC {
		return fmt.Errorf("%w: fetched snapshot is %d bytes crc %08x, sender declared %d bytes crc %08x",
			ErrCorrupt, cw.n, cw.crc, wantBytes, wantCRC)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if latest := s.man.latest(); latest != nil && epoch <= latest.Epoch {
		return fmt.Errorf("store: refusing to install snapshot epoch %d at or below current latest %d", epoch, latest.Epoch)
	}
	return s.installSnapshotLocked(tmpName, SnapshotEntry{Epoch: epoch, File: name, Bytes: cw.n, CRC32: cw.crc})
}

// CheckerAt materializes the state as of epoch from the retained artifacts:
// the newest snapshot at or below epoch, plus WAL replay up to epoch when
// that snapshot is the latest one. Epochs older than the retention window,
// or falling between two retained snapshots (their connecting WAL is gone),
// report ErrEpochNotRetained. The caller is responsible for rejecting
// epochs beyond the current one — the store cannot distinguish a future
// epoch from a retained epoch whose batches changed no tuples.
func (s *Store) CheckerAt(epoch uint64, coreOpts core.Options) (*core.Checker, error) {
	// Under the read lock: only resolve the manifest entry, open the
	// snapshot file, and copy the WAL bytes. The expensive part — BDD
	// reconstruction and replay — runs after release, so a long
	// materialization cannot stall WriteSnapshot (and, transitively, the
	// write worker). The open descriptor keeps the snapshot readable even
	// if a concurrent snapshot write prunes the file, and the copied WAL
	// bytes are immune to the truncation that follows.
	s.mu.RLock()
	if len(s.man.Snapshots) == 0 {
		s.mu.RUnlock()
		return nil, ErrNoSnapshot
	}
	// Newest entry at or below the requested epoch.
	var entry *SnapshotEntry
	for i := range s.man.Snapshots {
		if s.man.Snapshots[i].Epoch <= epoch {
			entry = &s.man.Snapshots[i]
		}
	}
	if entry == nil {
		oldest := s.man.Snapshots[0].Epoch
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: epoch %d predates the oldest retained snapshot (epoch %d)",
			ErrEpochNotRetained, epoch, oldest)
	}
	isLatest := entry.Epoch == s.man.latest().Epoch
	if !isLatest && entry.Epoch != epoch {
		nearest := entry.Epoch
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: epoch %d falls between retained snapshots (nearest is %d)",
			ErrEpochNotRetained, epoch, nearest)
	}
	e := *entry
	f, err := os.Open(filepath.Join(s.dir, e.File))
	if err != nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("store: opening snapshot: %w", err)
	}
	var walData []byte
	walPath := filepath.Join(s.dir, s.man.WAL)
	if isLatest && epoch > e.Epoch {
		walData, err = os.ReadFile(walPath)
		if err != nil {
			s.mu.RUnlock()
			f.Close()
			return nil, fmt.Errorf("store: reading WAL: %w", err)
		}
	}
	s.mu.RUnlock()

	defer f.Close()
	chk, _, snapEpoch, err := restoreSnapshotFile(f, e, coreOpts)
	if err != nil {
		return nil, err
	}
	if walData != nil {
		scan, err := scanWALData(walData, walPath)
		if err != nil {
			return nil, err
		}
		for _, b := range scan.Batches {
			if b.Epoch <= snapEpoch || b.Epoch > epoch {
				continue
			}
			if applied, err := chk.Apply(b.Updates); err != nil || applied != len(b.Updates) {
				return nil, fmt.Errorf("%w: replaying WAL record for epoch %d: applied %d/%d: %v",
					ErrCorrupt, b.Epoch, applied, len(b.Updates), err)
			}
		}
	}
	return chk, nil
}

// Status is a point-in-time summary for /statsz.
type Status struct {
	Dir               string `json:"dir"`
	WALBytes          int64  `json:"wal_bytes"`
	WALAppends        uint64 `json:"wal_appends"`
	WALBytesWritten   uint64 `json:"wal_bytes_written"`
	Fsyncs            uint64 `json:"fsyncs"`
	FsyncPolicy       string `json:"fsync_policy"`
	Snapshots         int    `json:"snapshots"`
	LastSnapshotEpoch uint64 `json:"last_snapshot_epoch"`
	OldestEpoch       uint64 `json:"oldest_snapshot_epoch"`
	ReplayedRecords   uint64 `json:"replayed_records"`
	ReplayedTuples    uint64 `json:"replayed_tuples"`
	TornTails         uint64 `json:"torn_tails"`
	DroppedTailBytes  uint64 `json:"dropped_tail_bytes"`
}

// Status reports the store's durability state.
func (s *Store) Status() Status {
	s.mu.RLock()
	snapshots := len(s.man.Snapshots)
	var oldest uint64
	if snapshots > 0 {
		oldest = s.man.Snapshots[0].Epoch
	}
	s.mu.RUnlock()
	return Status{
		Dir:               s.dir,
		WALBytes:          s.walSize.Load(),
		WALAppends:        s.walAppends.Load(),
		WALBytesWritten:   s.walBytesWritten.Load(),
		Fsyncs:            s.fsyncs.Load(),
		FsyncPolicy:       s.opts.Fsync.String(),
		Snapshots:         snapshots,
		LastSnapshotEpoch: s.lastSnapshotEpoch.Load(),
		OldestEpoch:       oldest,
		ReplayedRecords:   s.replayedRecords.Load(),
		ReplayedTuples:    s.replayedTuples.Load(),
		TornTails:         s.tornTails.Load(),
		DroppedTailBytes:  s.droppedTailBytes.Load(),
	}
}

// WALSize returns the log's current size in bytes — the service's snapshot
// trigger reads it after each append.
func (s *Store) WALSize() int64 { return s.walSize.Load() }

// crcWriter counts and checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// crcReader counts and checksums everything read through it.
type crcReader struct {
	r   io.Reader
	n   int64
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}
