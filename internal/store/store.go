// Package store is the durability subsystem: a write-ahead log of every
// acknowledged update batch plus periodic whole-checker snapshots, managed
// inside one data directory by a manifest. Together they give the daemon
// warm restarts (snapshot + WAL replay instead of CSV rebuild and index
// reconstruction) and point-in-time checking (materialize the state as of a
// retained epoch).
//
// Concurrency contract: AppendBatch and WriteSnapshot belong to the single
// write-owner goroutine (the service worker) and must not race each other;
// CheckerAt and Status may run from any goroutine. A read lock held across
// CheckerAt's file reads keeps snapshot pruning and WAL truncation (both
// under the write lock) from cutting files out from under a reader. A
// concurrent append during CheckerAt is harmless: appended records carry
// epochs newer than any epoch a reader may legally request, and a torn read
// of the in-flight record is dropped by the tail scan.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Options configures a Store.
type Options struct {
	// Fsync is the WAL flush policy (default FsyncBatch).
	Fsync FsyncPolicy
	// FsyncInterval is the minimum spacing between WAL syncs under
	// FsyncIntervalPolicy (default 100ms).
	FsyncInterval time.Duration
	// Retain is how many snapshots to keep (default 4, minimum 1). Older
	// snapshots — and the historical epochs only they can serve — are
	// deleted as new ones are written.
	Retain int
}

// Sentinel errors for store conditions callers branch on.
var (
	// ErrNoSnapshot is reported by Recover when the directory holds no
	// snapshot yet (a fresh store): the caller must cold-boot.
	ErrNoSnapshot = errors.New("store: no snapshot in data directory")
	// ErrEpochNotRetained is reported by CheckerAt for an epoch older than
	// the retention window or falling between retained snapshots whose
	// connecting WAL has been truncated.
	ErrEpochNotRetained = errors.New("store: epoch not retained")
)

// Store is an open data directory.
type Store struct {
	dir  string
	opts Options

	// mu orders manifest/file mutation (write lock: WriteSnapshot's prune
	// and WAL truncation) against readers (read lock: CheckerAt, Status).
	mu  sync.RWMutex
	man *Manifest
	wal *walFile

	metrics atomic.Pointer[Metrics]

	// Counters for /statsz and /metricsz, updated lock-free.
	walSize           atomic.Int64
	walAppends        atomic.Uint64
	walBytesWritten   atomic.Uint64
	fsyncs            atomic.Uint64
	replayedRecords   atomic.Uint64
	replayedTuples    atomic.Uint64
	droppedTailBytes  atomic.Uint64
	tornTails         atomic.Uint64
	lastSnapshotEpoch atomic.Uint64
}

// Open opens (or initializes) the data directory at dir. A directory with
// an unreadable manifest, or one written by a newer format version, is an
// error — never silently shadowed (errors.Is ErrCorrupt / ErrNewerFormat).
// A directory that exists with content but no manifest is also refused: it
// is not ours to overwrite.
func Open(dir string, opts Options) (*Store, error) {
	if opts.Retain < 1 {
		opts.Retain = 4
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data directory: %w", err)
	}
	man, err := readManifest(dir)
	if errors.Is(err, os.ErrNotExist) {
		entries, lerr := os.ReadDir(dir)
		if lerr != nil {
			return nil, fmt.Errorf("store: listing data directory: %w", lerr)
		}
		for _, e := range entries {
			return nil, fmt.Errorf("%w: %s has no manifest but contains %q — refusing to initialize over it",
				ErrCorrupt, dir, e.Name())
		}
		man = &Manifest{Version: FormatVersion, WAL: walName}
		if werr := man.write(dir); werr != nil {
			return nil, werr
		}
	} else if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, man: man}
	s.wal, err = openWAL(filepath.Join(dir, man.WAL), opts.Fsync, opts.FsyncInterval)
	if err != nil {
		return nil, err
	}
	s.walSize.Store(s.wal.size)
	if latest := man.latest(); latest != nil {
		s.lastSnapshotEpoch.Store(latest.Epoch)
	}
	return s, nil
}

// Close releases the WAL file handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.close()
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// HasSnapshot reports whether the directory holds at least one snapshot —
// whether Recover can warm-boot.
func (s *Store) HasSnapshot() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.latest() != nil
}

// RecoveryInfo summarizes what Recover did.
type RecoveryInfo struct {
	// SnapshotEpoch is the epoch of the restored snapshot.
	SnapshotEpoch uint64
	// LastEpoch is the state's epoch after WAL replay — the epoch the
	// service must resume counting from.
	LastEpoch uint64
	// ReplayedRecords and ReplayedTuples count the WAL records applied on
	// top of the snapshot and the updates they carried.
	ReplayedRecords int
	ReplayedTuples  int
	// SkippedRecords counts WAL records at or below the snapshot epoch
	// (a crash hit between snapshot install and WAL truncation).
	SkippedRecords int
	// DroppedTailBytes is the size of the torn tail cut from the WAL, if
	// any — the in-flight record a crash interrupted.
	DroppedTailBytes int64
}

// Recover restores the latest snapshot, replays every WAL record behind it,
// truncates any torn tail, and returns the recovered checker, the persisted
// constraint text, and what happened. coreOpts is the runtime configuration
// for the restored checker. ErrNoSnapshot means a fresh directory.
func (s *Store) Recover(coreOpts core.Options) (*core.Checker, string, RecoveryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var info RecoveryInfo
	latest := s.man.latest()
	if latest == nil {
		return nil, "", info, ErrNoSnapshot
	}
	chk, constraints, epoch, err := s.restoreEntry(latest, coreOpts)
	if err != nil {
		return nil, "", info, err
	}
	info.SnapshotEpoch = epoch
	info.LastEpoch = epoch

	scan, err := scanWAL(filepath.Join(s.dir, s.man.WAL))
	if err != nil {
		return nil, "", info, err
	}
	for _, b := range scan.Batches {
		if b.Epoch <= epoch {
			info.SkippedRecords++
			continue
		}
		if applied, err := chk.Apply(b.Updates); err != nil || applied != len(b.Updates) {
			return nil, "", info, fmt.Errorf("%w: replaying WAL record for epoch %d: applied %d/%d: %v",
				ErrCorrupt, b.Epoch, applied, len(b.Updates), err)
		}
		info.ReplayedRecords++
		info.ReplayedTuples += len(b.Updates)
		info.LastEpoch = b.Epoch
	}
	if scan.DroppedBytes > 0 {
		info.DroppedTailBytes = scan.DroppedBytes
		s.tornTails.Add(1)
		s.droppedTailBytes.Add(uint64(scan.DroppedBytes))
		if err := s.wal.truncateTo(scan.ValidBytes); err != nil {
			return nil, "", info, err
		}
		s.walSize.Store(s.wal.size)
	}
	s.replayedRecords.Add(uint64(info.ReplayedRecords))
	s.replayedTuples.Add(uint64(info.ReplayedTuples))
	return chk, constraints, info, nil
}

// restoreEntry restores one snapshot file, verifying its length and CRC
// against the manifest entry. Callers hold mu (read or write).
func (s *Store) restoreEntry(e *SnapshotEntry, coreOpts core.Options) (*core.Checker, string, uint64, error) {
	f, err := os.Open(filepath.Join(s.dir, e.File))
	if err != nil {
		return nil, "", 0, fmt.Errorf("store: opening snapshot: %w", err)
	}
	defer f.Close()
	cr := &crcReader{r: f}
	chk, constraints, epoch, err := readSnapshot(cr, coreOpts)
	if err != nil {
		return nil, "", 0, fmt.Errorf("store: snapshot %s: %w", e.File, err)
	}
	// readSnapshot buffers; drain so the checksum covers the whole file and
	// trailing garbage is caught by the length comparison.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, "", 0, fmt.Errorf("store: reading snapshot %s: %w", e.File, err)
	}
	if cr.n != e.Bytes || cr.crc != e.CRC32 {
		return nil, "", 0, fmt.Errorf("%w: snapshot %s is %d bytes crc %08x, manifest says %d bytes crc %08x",
			ErrCorrupt, e.File, cr.n, cr.crc, e.Bytes, e.CRC32)
	}
	if epoch != e.Epoch {
		return nil, "", 0, fmt.Errorf("%w: snapshot %s carries epoch %d, manifest says %d",
			ErrCorrupt, e.File, epoch, e.Epoch)
	}
	return chk, constraints, epoch, nil
}

// AppendBatch logs one acknowledged batch: the updates that were applied for
// epoch. Must be called by the write owner before the batch is acknowledged
// (log-before-ack); an error means durability is not assured and the owner
// must surface it in the acknowledgment.
func (s *Store) AppendBatch(epoch uint64, ups []core.Update) error {
	start := time.Now()
	n, synced, err := s.wal.append(epoch, ups)
	if err != nil {
		return err
	}
	s.walSize.Store(s.wal.size)
	s.walAppends.Add(1)
	s.walBytesWritten.Add(uint64(n))
	if synced {
		s.fsyncs.Add(1)
	}
	if m := s.metrics.Load(); m != nil {
		m.WALAppend.Observe(time.Since(start))
	}
	return nil
}

// SnapshotFileName names the snapshot file for an epoch, relative to the
// data directory.
func SnapshotFileName(epoch uint64) string {
	return fmt.Sprintf("snap-%016x.cvsnap", epoch)
}

// WriteSnapshot persists chk's current state as the snapshot for epoch,
// installs it in the manifest, prunes snapshots beyond the retention count,
// and truncates the WAL (everything logged is now covered by the snapshot).
// Write-owner only; chk must be quiescent for the duration.
func (s *Store) WriteSnapshot(chk *core.Checker, constraints string, epoch uint64) error {
	start := time.Now()
	name := SnapshotFileName(epoch)
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return fmt.Errorf("store: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	cw := &crcWriter{w: tmp}
	if err := writeSnapshot(cw, chk, constraints, epoch); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	man := &Manifest{Version: FormatVersion, WAL: s.man.WAL}
	man.Snapshots = append(append([]SnapshotEntry(nil), s.man.Snapshots...),
		SnapshotEntry{Epoch: epoch, File: name, Bytes: cw.n, CRC32: cw.crc})
	var pruned []SnapshotEntry
	if n := len(man.Snapshots); n > s.opts.Retain {
		pruned = append(pruned, man.Snapshots[:n-s.opts.Retain]...)
		man.Snapshots = append([]SnapshotEntry(nil), man.Snapshots[n-s.opts.Retain:]...)
	}
	if err := man.write(s.dir); err != nil {
		return err
	}
	s.man = man
	// Old snapshot files go only after the manifest that stops referencing
	// them is durable; a crash in between leaves unreferenced files, which
	// is safe (cvstore compact cleans them up).
	for _, e := range pruned {
		os.Remove(filepath.Join(s.dir, e.File))
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.walSize.Store(s.wal.size)
	s.lastSnapshotEpoch.Store(epoch)
	if m := s.metrics.Load(); m != nil {
		m.SnapshotWrite.Observe(time.Since(start))
	}
	return nil
}

// CheckerAt materializes the state as of epoch from the retained artifacts:
// the newest snapshot at or below epoch, plus WAL replay up to epoch when
// that snapshot is the latest one. Epochs older than the retention window,
// or falling between two retained snapshots (their connecting WAL is gone),
// report ErrEpochNotRetained. The caller is responsible for rejecting
// epochs beyond the current one — the store cannot distinguish a future
// epoch from a retained epoch whose batches changed no tuples.
func (s *Store) CheckerAt(epoch uint64, coreOpts core.Options) (*core.Checker, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.man.Snapshots) == 0 {
		return nil, ErrNoSnapshot
	}
	// Newest entry at or below the requested epoch.
	var entry *SnapshotEntry
	for i := range s.man.Snapshots {
		if s.man.Snapshots[i].Epoch <= epoch {
			entry = &s.man.Snapshots[i]
		}
	}
	if entry == nil {
		return nil, fmt.Errorf("%w: epoch %d predates the oldest retained snapshot (epoch %d)",
			ErrEpochNotRetained, epoch, s.man.Snapshots[0].Epoch)
	}
	isLatest := entry.Epoch == s.man.latest().Epoch
	if !isLatest && entry.Epoch != epoch {
		return nil, fmt.Errorf("%w: epoch %d falls between retained snapshots (nearest is %d)",
			ErrEpochNotRetained, epoch, entry.Epoch)
	}
	chk, _, snapEpoch, err := s.restoreEntry(entry, coreOpts)
	if err != nil {
		return nil, err
	}
	if isLatest && epoch > snapEpoch {
		scan, err := scanWAL(filepath.Join(s.dir, s.man.WAL))
		if err != nil {
			return nil, err
		}
		for _, b := range scan.Batches {
			if b.Epoch <= snapEpoch || b.Epoch > epoch {
				continue
			}
			if applied, err := chk.Apply(b.Updates); err != nil || applied != len(b.Updates) {
				return nil, fmt.Errorf("%w: replaying WAL record for epoch %d: applied %d/%d: %v",
					ErrCorrupt, b.Epoch, applied, len(b.Updates), err)
			}
		}
	}
	return chk, nil
}

// Status is a point-in-time summary for /statsz.
type Status struct {
	Dir               string `json:"dir"`
	WALBytes          int64  `json:"wal_bytes"`
	WALAppends        uint64 `json:"wal_appends"`
	WALBytesWritten   uint64 `json:"wal_bytes_written"`
	Fsyncs            uint64 `json:"fsyncs"`
	FsyncPolicy       string `json:"fsync_policy"`
	Snapshots         int    `json:"snapshots"`
	LastSnapshotEpoch uint64 `json:"last_snapshot_epoch"`
	OldestEpoch       uint64 `json:"oldest_snapshot_epoch"`
	ReplayedRecords   uint64 `json:"replayed_records"`
	ReplayedTuples    uint64 `json:"replayed_tuples"`
	TornTails         uint64 `json:"torn_tails"`
	DroppedTailBytes  uint64 `json:"dropped_tail_bytes"`
}

// Status reports the store's durability state.
func (s *Store) Status() Status {
	s.mu.RLock()
	snapshots := len(s.man.Snapshots)
	var oldest uint64
	if snapshots > 0 {
		oldest = s.man.Snapshots[0].Epoch
	}
	s.mu.RUnlock()
	return Status{
		Dir:               s.dir,
		WALBytes:          s.walSize.Load(),
		WALAppends:        s.walAppends.Load(),
		WALBytesWritten:   s.walBytesWritten.Load(),
		Fsyncs:            s.fsyncs.Load(),
		FsyncPolicy:       s.opts.Fsync.String(),
		Snapshots:         snapshots,
		LastSnapshotEpoch: s.lastSnapshotEpoch.Load(),
		OldestEpoch:       oldest,
		ReplayedRecords:   s.replayedRecords.Load(),
		ReplayedTuples:    s.replayedTuples.Load(),
		TornTails:         s.tornTails.Load(),
		DroppedTailBytes:  s.droppedTailBytes.Load(),
	}
}

// WALSize returns the log's current size in bytes — the service's snapshot
// trigger reads it after each append.
func (s *Store) WALSize() int64 { return s.walSize.Load() }

// crcWriter counts and checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// crcReader counts and checksums everything read through it.
type crcReader struct {
	r   io.Reader
	n   int64
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}
