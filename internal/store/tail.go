package store

// tail.go is the WAL tailing reader: an incremental, position-tracking
// reader over a live log that a writer is still appending to. The leader's
// /wal long-poll handler holds one per request so each wakeup reads only the
// bytes appended since the previous poll instead of rescanning the file.
//
// Safety against the three things that can happen to a live log:
//
//   - Concurrent append: the writer emits each record in a single write, so
//     a reader can only ever see a prefix of the last record. An incomplete
//     record is "not yet" (wait and re-poll), never corruption.
//   - Snapshot truncation (wal reset): WriteSnapshot/InstallSnapshot cut the
//     log back to its magic after sealing a snapshot. Each reset bumps the
//     store's WAL generation; a tailer that observes a new generation starts
//     over at position zero. Everything erased by the reset is covered by
//     the snapshot that triggered it, so a caller that needs those epochs
//     must re-bootstrap from the snapshot — Poll reports the restart so the
//     caller can tell (the leader's handler turns a gap into 410).
//   - Recovery truncation (torn-tail drop): truncateTo only ever cuts bytes
//     a tailer has not consumed (a tailer's position never passes the last
//     valid record), so it needs no generation bump.
//
// Poll takes the store's read lock, so it cannot interleave with a reset or
// truncation (both hold the write lock); appends are lock-free but safe per
// the first bullet.

import (
	"fmt"
	"os"
	"path/filepath"
)

// WALTail is an incremental reader over the store's live WAL. Create one
// with Store.TailWAL; it is not safe for concurrent use by multiple
// goroutines (each tailer owns its position).
type WALTail struct {
	s   *Store
	pos int64  // file offset of the next unread byte (0 = before the magic)
	gen uint64 // WAL generation the position belongs to
}

// TailWAL returns a tailing reader positioned at the start of the log.
func (s *Store) TailWAL() *WALTail {
	return &WALTail{s: s}
}

// Pos returns the file offset of the next unread byte.
func (t *WALTail) Pos() int64 { return t.pos }

// Poll reads every complete record appended since the previous call. A nil
// batch slice means nothing new yet (the caller should wait and re-poll).
// reset reports that the log was truncated by a snapshot since the last
// call and the position restarted from zero: records delivered from now on
// may not connect to the previously delivered sequence (the gap is covered
// by the snapshot that caused the reset). An error means the log tail is
// genuinely corrupt — a complete record with a bad checksum — which a crash
// recovery pass (Recover) repairs by truncation.
func (t *WALTail) Poll() (batches []Batch, reset bool, err error) {
	t.s.mu.RLock()
	defer t.s.mu.RUnlock()
	if g := t.s.walGen.Load(); g != t.gen {
		// The WAL was reset by a snapshot; our position is meaningless.
		if t.pos > 0 {
			reset = true
		}
		t.pos = 0
		t.gen = g
	}
	path := filepath.Join(t.s.dir, t.s.man.WAL)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, reset, nil // not created yet: nothing to read
		}
		return nil, reset, fmt.Errorf("store: opening WAL for tailing: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, reset, fmt.Errorf("store: statting WAL for tailing: %w", err)
	}
	start := t.pos
	if start == 0 {
		if st.Size() < int64(len(walMagic)) {
			return nil, reset, nil // magic not fully written yet
		}
		magic := make([]byte, len(walMagic))
		if _, err := f.ReadAt(magic, 0); err != nil || string(magic) != walMagic {
			return nil, reset, fmt.Errorf("store: %s is not a WAL file", path)
		}
		start = int64(len(walMagic))
	}
	if st.Size() <= start {
		return nil, reset, nil // nothing appended since the last poll
	}
	data := make([]byte, st.Size()-start)
	if _, err := f.ReadAt(data, start); err != nil {
		return nil, reset, fmt.Errorf("store: reading WAL tail: %w", err)
	}
	batches, consumed, status := decodeRecords(data)
	if status == walTailCorrupt && len(batches) == 0 {
		// Valid records before a corrupt one are delivered first (previous
		// polls, or the append above); only a drained prefix reports.
		return nil, reset, fmt.Errorf("%w: WAL record at offset %d fails its checksum or does not decode",
			ErrCorrupt, start+int64(consumed))
	}
	t.pos = start + int64(consumed)
	return batches, reset, nil
}
