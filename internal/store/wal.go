package store

// wal.go is the write-ahead log: an append-only file of length-prefixed,
// CRC-checksummed records, one per acknowledged update batch, each tagged
// with the epoch the batch produced. The log makes the window between two
// snapshots durable — recovery restores the latest snapshot and replays the
// records behind it. A record is only trusted if its declared length fits
// the file and its checksum matches; anything after the first bad record is
// a torn tail (the crash interrupted an append) and is dropped.
//
// Record layout, after an 8-byte file magic:
//
//	u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
// Payload: uvarint epoch, uvarint update count, then per update one op byte
// ('i' insert / 'd' delete), the table name and the value strings, each as
// uvarint length + bytes.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/core"
)

const (
	walMagic = "\x00CVWAL1\n"
	// walRecordHeader is the fixed per-record prefix: length + CRC.
	walRecordHeader = 8
	// maxWALRecord caps a record's declared payload length; a longer
	// declaration is corruption, not a batch (guards unbounded allocation).
	maxWALRecord = 1 << 28
)

// FsyncPolicy says when the WAL is flushed to stable storage.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncBatch syncs after every appended record: an acknowledged batch
	// survives power loss. The default.
	FsyncBatch FsyncPolicy = iota
	// FsyncIntervalPolicy syncs at most once per configured interval,
	// piggybacked on appends: bounded data loss, much cheaper under load.
	FsyncIntervalPolicy
	// FsyncOff never syncs explicitly; the OS decides. Crash durability is
	// then only as good as the page cache (process kills are still safe —
	// written bytes survive a SIGKILL, only power loss can lose them).
	FsyncOff
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncIntervalPolicy:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy maps the CLI spelling ("batch", "interval", "off") to the
// policy constant.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "interval":
		return FsyncIntervalPolicy, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want batch|interval|off)", s)
	}
}

// Batch is one WAL record: the updates of one acknowledged batch and the
// epoch their application produced.
type Batch struct {
	Epoch   uint64
	Updates []core.Update
}

// walFile is the open write end of the log. It is single-writer: only the
// service's worker goroutine appends (readers open the path separately).
type walFile struct {
	f        *os.File
	size     int64
	policy   FsyncPolicy
	interval time.Duration
	lastSync time.Time
}

// openWAL opens (creating if needed) the log at path and positions it for
// appending at the end of the file. It does not validate record contents —
// recovery scans and truncates the torn tail before the first append.
func openWAL(path string, policy FsyncPolicy, interval time.Duration) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: statting WAL: %w", err)
	}
	w := &walFile{f: f, size: st.Size(), policy: policy, interval: interval}
	if w.size == 0 {
		if _, err := f.Write([]byte(walMagic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: writing WAL magic: %w", err)
		}
		w.size = int64(len(walMagic))
	} else {
		magic := make([]byte, len(walMagic))
		if _, err := f.ReadAt(magic, 0); err != nil || string(magic) != walMagic {
			f.Close()
			return nil, fmt.Errorf("store: %s is not a WAL file", path)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking WAL: %w", err)
	}
	return w, nil
}

// encodeBatch renders one record payload.
func encodeBatch(buf []byte, epoch uint64, ups []core.Update) ([]byte, error) {
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(len(ups)))
	for _, u := range ups {
		switch u.Op {
		case core.UpdateInsert:
			buf = append(buf, 'i')
		case core.UpdateDelete:
			buf = append(buf, 'd')
		default:
			return nil, fmt.Errorf("store: WAL cannot encode update op %q", u.Op)
		}
		buf = appendString(buf, u.Table)
		buf = binary.AppendUvarint(buf, uint64(len(u.Values)))
		for _, v := range u.Values {
			buf = appendString(buf, v)
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// append writes one record and applies the fsync policy. It returns the
// bytes appended and whether a sync ran. On a write error the log's size
// accounting is left at the last known-good offset; the caller must treat
// the log as suspect (the next recovery's tail scan cleans it up).
func (w *walFile) append(epoch uint64, ups []core.Update) (n int64, synced bool, err error) {
	payload, err := encodeBatch(make([]byte, 0, 256), epoch, ups)
	if err != nil {
		return 0, false, err
	}
	if len(payload) > maxWALRecord {
		return 0, false, fmt.Errorf("store: WAL record of %d bytes exceeds the %d-byte cap", len(payload), maxWALRecord)
	}
	rec := make([]byte, walRecordHeader+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[walRecordHeader:], payload)
	if _, err := w.f.Write(rec); err != nil {
		return 0, false, fmt.Errorf("store: appending WAL record: %w", err)
	}
	w.size += int64(len(rec))
	switch w.policy {
	case FsyncBatch:
		synced = true
	case FsyncIntervalPolicy:
		synced = time.Since(w.lastSync) >= w.interval
	}
	if synced {
		if err := w.f.Sync(); err != nil {
			return int64(len(rec)), false, fmt.Errorf("store: syncing WAL: %w", err)
		}
		w.lastSync = time.Now()
	}
	return int64(len(rec)), synced, nil
}

// reset truncates the log back to its magic header — called after a
// successful snapshot has made the logged window redundant.
func (w *walFile) reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: seeking WAL: %w", err)
	}
	w.size = int64(len(walMagic))
	if w.policy != FsyncOff {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing WAL truncation: %w", err)
		}
		w.lastSync = time.Now()
	}
	return nil
}

// truncateTo cuts the log to validBytes (recovery drops a torn tail this
// way) and repositions the append offset.
func (w *walFile) truncateTo(validBytes int64) error {
	if err := w.f.Truncate(validBytes); err != nil {
		return fmt.Errorf("store: truncating WAL tail: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("store: seeking WAL: %w", err)
	}
	w.size = validBytes
	return nil
}

func (w *walFile) close() error { return w.f.Close() }

// WALScan is the result of reading a log: the decoded batches in append
// order plus tail accounting.
type WALScan struct {
	// Batches are the valid records, in append order.
	Batches []Batch
	// Records and Tuples count the valid records and the updates they carry.
	Records int
	Tuples  int
	// ValidBytes is the file offset just past the last valid record; the
	// append path resumes there after recovery.
	ValidBytes int64
	// DroppedBytes is how much of the file follows ValidBytes: a torn or
	// corrupt tail (zero for a cleanly closed log).
	DroppedBytes int64
}

// walTailStatus classifies what ended a record scan.
type walTailStatus int

const (
	// walTailClean: the scan consumed its input exactly.
	walTailClean walTailStatus = iota
	// walTailShort: an incomplete record at the end — either an append still
	// in flight (live tailing) or a torn tail (crash recovery).
	walTailShort
	// walTailCorrupt: a record that is complete but fails its checksum,
	// declares an implausible length, or does not decode. Never produced by
	// an in-flight append (the writer emits each record in one write), so a
	// live reader may treat it as real corruption.
	walTailCorrupt
)

// decodeRecords decodes consecutive records from data (which starts at a
// record boundary, past the file magic). It returns the decoded batches, how
// many bytes of data they span, and how the scan ended. Bytes past consumed
// are the torn/corrupt tail (walTailShort/walTailCorrupt) or empty
// (walTailClean).
func decodeRecords(data []byte) (batches []Batch, consumed int, status walTailStatus) {
	off := 0
	for {
		if off == len(data) {
			return batches, off, walTailClean
		}
		if len(data)-off < walRecordHeader {
			return batches, off, walTailShort
		}
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen > maxWALRecord {
			return batches, off, walTailCorrupt
		}
		if len(data)-off-walRecordHeader < plen {
			return batches, off, walTailShort
		}
		payload := data[off+walRecordHeader : off+walRecordHeader+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return batches, off, walTailCorrupt
		}
		b, err := decodeBatch(payload)
		if err != nil {
			return batches, off, walTailCorrupt
		}
		batches = append(batches, b)
		off += walRecordHeader + plen
	}
}

// scanWAL decodes every valid record of a log. Corruption mid-file stops the
// scan — everything from the first bad record on is reported as dropped tail
// bytes, never an error; an error means the file itself could not be read or
// is not a WAL at all.
func scanWAL(path string) (*WALScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading WAL: %w", err)
	}
	return scanWALData(data, path)
}

// scanWALData is scanWAL over bytes already read (CheckerAt snapshots the log
// under the store lock and replays it after release). path is only for error
// messages.
func scanWALData(data []byte, path string) (*WALScan, error) {
	if len(data) == 0 {
		// A zero-length file is a log that was created but never got its
		// magic written (crash inside openWAL): treat as empty.
		return &WALScan{}, nil
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, fmt.Errorf("store: %s is not a WAL file", path)
	}
	batches, consumed, _ := decodeRecords(data[len(walMagic):])
	scan := &WALScan{Batches: batches, ValidBytes: int64(len(walMagic) + consumed)}
	for _, b := range batches {
		scan.Records++
		scan.Tuples += len(b.Updates)
	}
	scan.DroppedBytes = int64(len(data)) - scan.ValidBytes
	return scan, nil
}

// decodeBatch parses one record payload (already checksum-verified).
func decodeBatch(payload []byte) (Batch, error) {
	r := &byteParser{data: payload}
	epoch := r.uvarint()
	count := r.uvarint()
	if r.err != nil {
		return Batch{}, r.err
	}
	if count > uint64(len(payload)) { // every update costs ≥ 1 byte
		return Batch{}, fmt.Errorf("store: WAL record declares %d updates in %d bytes", count, len(payload))
	}
	b := Batch{Epoch: epoch, Updates: make([]core.Update, 0, count)}
	for i := uint64(0); i < count; i++ {
		op := r.byte()
		table := r.string()
		nvals := r.uvarint()
		if r.err != nil {
			return Batch{}, r.err
		}
		if nvals > uint64(len(payload)) {
			return Batch{}, fmt.Errorf("store: WAL update declares %d values in %d bytes", nvals, len(payload))
		}
		u := core.Update{Table: table, Values: make([]string, 0, nvals)}
		switch op {
		case 'i':
			u.Op = core.UpdateInsert
		case 'd':
			u.Op = core.UpdateDelete
		default:
			return Batch{}, fmt.Errorf("store: WAL update has unknown op byte %#x", op)
		}
		for j := uint64(0); j < nvals; j++ {
			u.Values = append(u.Values, r.string())
		}
		if r.err != nil {
			return Batch{}, r.err
		}
		b.Updates = append(b.Updates, u)
	}
	if r.off != len(r.data) {
		return Batch{}, fmt.Errorf("store: WAL record has %d trailing bytes", len(r.data)-r.off)
	}
	return b, nil
}

// byteParser is a cursor over a record payload with sticky error handling.
type byteParser struct {
	data []byte
	off  int
	err  error
}

func (p *byteParser) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.data[p.off:])
	if n <= 0 {
		p.err = fmt.Errorf("store: truncated varint at offset %d", p.off)
		return 0
	}
	p.off += n
	return v
}

func (p *byteParser) byte() byte {
	if p.err != nil {
		return 0
	}
	if p.off >= len(p.data) {
		p.err = fmt.Errorf("store: truncated byte at offset %d", p.off)
		return 0
	}
	b := p.data[p.off]
	p.off++
	return b
}

func (p *byteParser) string() string {
	n := p.uvarint()
	if p.err != nil {
		return ""
	}
	if n > uint64(len(p.data)-p.off) {
		p.err = fmt.Errorf("store: string of %d bytes overruns record at offset %d", n, p.off)
		return ""
	}
	s := string(p.data[p.off : p.off+int(n)])
	p.off += int(n)
	return s
}
