package stats_test

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/stats"
)

func table(t *testing.T, rows [][]string) *relation.Table {
	t.Helper()
	cat := relation.NewCatalog()
	cols := make([]relation.Column, len(rows[0]))
	for i := range cols {
		cols[i] = relation.Column{Name: string(rune('a' + i))}
	}
	tbl, err := cat.CreateTable("T", cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		tbl.Insert(r...)
	}
	return tbl
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEntropyUniform(t *testing.T) {
	tbl := table(t, [][]string{{"a", "x"}, {"b", "x"}, {"c", "x"}, {"d", "x"}})
	if got := stats.Entropy(tbl, []int{0}); !approx(got, 2) {
		t.Fatalf("H(a) = %v, want 2", got)
	}
	if got := stats.Entropy(tbl, []int{1}); !approx(got, 0) {
		t.Fatalf("H(b) = %v, want 0 (constant column)", got)
	}
	if got := stats.Entropy(tbl, []int{0, 1}); !approx(got, 2) {
		t.Fatalf("H(a,b) = %v, want 2", got)
	}
}

func TestEntropySetSemantics(t *testing.T) {
	// Duplicate tuples count once.
	tbl := table(t, [][]string{{"a"}, {"a"}, {"a"}, {"b"}})
	if got := stats.Entropy(tbl, []int{0}); !approx(got, 1) {
		t.Fatalf("H = %v, want 1 under set semantics", got)
	}
}

func TestCondEntropyAndInfoGain(t *testing.T) {
	// b is a function of a: H(b|a) = 0, so the gain is H(a).
	tbl := table(t, [][]string{{"a1", "x"}, {"a2", "y"}, {"a3", "x"}, {"a4", "y"}})
	if got := stats.CondEntropy(tbl, []int{0}, 1); !approx(got, 0) {
		t.Fatalf("H(b|a) = %v, want 0", got)
	}
	if got := stats.InfoGain(tbl, []int{0}, 1); !approx(got, 2) {
		t.Fatalf("I = %v, want 2", got)
	}
	// Independent uniform columns: H(b|a) = H(b).
	tbl2 := table(t, [][]string{
		{"a1", "x"}, {"a1", "y"}, {"a2", "x"}, {"a2", "y"},
	})
	if got := stats.CondEntropy(tbl2, []int{0}, 1); !approx(got, 1) {
		t.Fatalf("H(b|a) = %v, want 1", got)
	}
}

func TestCondEntropyChainRule(t *testing.T) {
	tbl := table(t, [][]string{
		{"a", "x", "1"}, {"a", "y", "2"}, {"b", "x", "2"}, {"b", "y", "1"}, {"b", "y", "2"},
	})
	// H(c | a,b) = H(a,b,c) − H(a,b), by definition.
	lhs := stats.CondEntropy(tbl, []int{0, 1}, 2)
	rhs := stats.Entropy(tbl, []int{0, 1, 2}) - stats.Entropy(tbl, []int{0, 1})
	if !approx(lhs, rhs) {
		t.Fatalf("chain rule broken: %v != %v", lhs, rhs)
	}
}

func TestPhiFullPrefixIsZero(t *testing.T) {
	// Φ(V) = 0: with all attributes known, φ ∈ {0, 1}.
	tbl := table(t, [][]string{{"a", "x"}, {"b", "y"}, {"c", "x"}})
	dom := []int{tbl.ActiveDomainSize(0), tbl.ActiveDomainSize(1)}
	if got := stats.Phi(tbl, []int{0, 1}, dom); !approx(got, 0) {
		t.Fatalf("Φ(V) = %v, want 0", got)
	}
}

func TestPhiPrefersDecidingAttribute(t *testing.T) {
	// R = R1(a) × R2(b,c) with R1 = {a1} (decides nothing: all values of a
	// in R have every completion present or absent together)… use a sharper
	// case: a ∈ {a1,a2} where a1 pairs with every (b), a2 with none.
	tbl := table(t, [][]string{
		{"a1", "x"}, {"a1", "y"}, {"a1", "z"},
		{"a2", "x"},
	})
	dom := []int{2, 3}
	// Prefix ⟨a⟩: φ(a1) = 3/3 = 1 (contributes 0), φ(a2) = 1/3.
	phiA := stats.Phi(tbl, []int{0}, dom)
	// Prefix ⟨b⟩: φ(x) = 2/2 = 1, φ(y) = φ(z) = 1/2 each.
	phiB := stats.Phi(tbl, []int{1}, dom)
	if phiA >= phiB {
		t.Fatalf("Φ(a)=%v should be below Φ(b)=%v: a decides membership faster", phiA, phiB)
	}
}

func TestPhiEmptyPrefix(t *testing.T) {
	tbl := table(t, [][]string{{"a", "x"}, {"b", "y"}})
	dom := []int{2, 2}
	// φ(⟨⟩) = |R| / |dom product| = 2/4; Φ = −(1/2)·log(1/2) = 1/2.
	if got := stats.Phi(tbl, nil, dom); !approx(got, 0.5) {
		t.Fatalf("Φ(∅) = %v, want 0.5", got)
	}
}
