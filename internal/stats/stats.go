// Package stats computes the statistical measures driving the paper's
// variable-ordering heuristics (§3): joint and conditional entropy,
// information gain, and the probability-convergence measure Φ.
//
// All measures are taken over attribute sequences of a relation.Table with
// set semantics (duplicate tuples counted once), matching the paper's
// definition of a relation as a characteristic function.
package stats

import (
	"encoding/binary"
	"math"

	"repro/internal/relation"
)

// groupCounts returns the multiplicity of each distinct projection of the
// table onto attrs, and the number of distinct full tuples.
func groupCounts(t *relation.Table, attrs []int) (map[string]int, int) {
	full := make(map[string]bool, t.Len())
	counts := make(map[string]int, 64)
	var fullKey, key []byte
	for _, row := range t.Rows() {
		fullKey = fullKey[:0]
		for _, c := range row {
			fullKey = binary.AppendVarint(fullKey, int64(c))
		}
		fk := string(fullKey)
		if full[fk] {
			continue // set semantics: skip duplicate tuples
		}
		full[fk] = true
		key = key[:0]
		for _, a := range attrs {
			key = binary.AppendVarint(key, int64(row[a]))
		}
		counts[string(key)]++
	}
	return counts, len(full)
}

// Entropy returns H(attrs), the joint entropy in bits of the projection of t
// onto the attribute sequence attrs.
func Entropy(t *relation.Table, attrs []int) float64 {
	counts, n := groupCounts(t, attrs)
	if n == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// CondEntropy returns H(v | prefix), computed with the chain rule
// H(prefix, v) − H(prefix).
func CondEntropy(t *relation.Table, prefix []int, v int) float64 {
	joint := append(append([]int(nil), prefix...), v)
	return Entropy(t, joint) - Entropy(t, prefix)
}

// InfoGain returns the paper's information gain I(prefix; v) =
// H(prefix) − H(v | prefix). Maximizing it over v for a fixed prefix is
// equivalent to minimizing CondEntropy, which is what the ordering
// heuristic does.
func InfoGain(t *relation.Table, prefix []int, v int) float64 {
	return Entropy(t, prefix) - CondEntropy(t, prefix, v)
}

// Phi returns the probability-convergence measure Φ(prefix) of §3.2 in its
// non-negative form: Φ(v⃗) = −Σ_x φ(v⃗=x)·log₂ φ(v⃗=x), where
// φ(v⃗=x) = |R restricted to v⃗=x| / Π_{v∉v⃗} |dom(v)| is the probability
// that a random completion of the partial tuple x lies in R. Φ decreases
// towards 0 as the prefix approaches deciding membership outright; the
// Prob-Converge ordering greedily picks the next attribute minimizing it.
//
// domSizes[i] is the domain size used for attribute i of t (typically the
// active-domain size).
func Phi(t *relation.Table, prefix []int, domSizes []int) float64 {
	counts, _ := groupCounts(t, prefix)
	inPrefix := make(map[int]bool, len(prefix))
	for _, a := range prefix {
		inPrefix[a] = true
	}
	denom := 1.0
	for a, size := range domSizes {
		if !inPrefix[a] {
			denom *= float64(size)
		}
	}
	phi := 0.0
	for _, c := range counts {
		p := float64(c) / denom
		if p > 0 && p < 1 {
			phi -= p * math.Log2(p)
		}
	}
	return phi
}
