package stats_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/stats"
)

// quick_test.go: information-theoretic invariants of the ordering measures
// on random tables.

type qTable struct {
	t    *relation.Table
	doms []int
}

func tableConfig(seed int64) *quick.Config {
	rng := rand.New(rand.NewSource(seed))
	counter := 0
	return &quick.Config{
		MaxCount: 60,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				counter++
				cat := relation.NewCatalog()
				cols := 2 + rng.Intn(3)
				specs := make([]relation.Column, cols)
				doms := make([]int, cols)
				for c := range specs {
					specs[c] = relation.Column{Name: fmt.Sprintf("a%d", c)}
					doms[c] = 2 + rng.Intn(6)
				}
				t, err := cat.CreateTable(fmt.Sprintf("T%d", counter), specs)
				if err != nil {
					panic(err)
				}
				n := 1 + rng.Intn(60)
				for j := 0; j < n; j++ {
					row := make([]string, cols)
					for c := range row {
						row[c] = fmt.Sprintf("v%d", rng.Intn(doms[c]))
					}
					t.Insert(row...)
				}
				args[i] = reflect.ValueOf(qTable{t: t, doms: doms})
			}
		},
	}
}

const eps = 1e-9

func TestQuickEntropyBounds(t *testing.T) {
	property := func(q qTable) bool {
		for c := 0; c < q.t.NumCols(); c++ {
			h := stats.Entropy(q.t, []int{c})
			if h < -eps {
				return false
			}
			if h > math.Log2(float64(q.t.ActiveDomainSize(c)))+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, tableConfig(31)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEntropyMonotoneInPrefix(t *testing.T) {
	// H(a,b) ≥ H(a): adding attributes never reduces joint entropy.
	property := func(q qTable) bool {
		if q.t.NumCols() < 2 {
			return true
		}
		return stats.Entropy(q.t, []int{0, 1})+eps >= stats.Entropy(q.t, []int{0})
	}
	if err := quick.Check(property, tableConfig(37)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCondEntropyNonNegative(t *testing.T) {
	property := func(q qTable) bool {
		if q.t.NumCols() < 2 {
			return true
		}
		return stats.CondEntropy(q.t, []int{0}, 1) >= -eps
	}
	if err := quick.Check(property, tableConfig(41)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPhiNonNegativeAndZeroOnFullPrefix(t *testing.T) {
	property := func(q qTable) bool {
		all := make([]int, q.t.NumCols())
		sizes := make([]int, q.t.NumCols())
		for i := range all {
			all[i] = i
			sizes[i] = q.t.ActiveDomainSize(i)
			if sizes[i] == 0 {
				sizes[i] = 1
			}
		}
		for i := range all {
			if stats.Phi(q.t, all[:i], sizes) < -eps {
				return false
			}
		}
		return math.Abs(stats.Phi(q.t, all, sizes)) < eps
	}
	if err := quick.Check(property, tableConfig(43)); err != nil {
		t.Fatal(err)
	}
}
