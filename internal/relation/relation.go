// Package relation provides the in-memory relational storage the logical
// indices and the SQL baseline operate on: dictionary-encoded columns,
// shared value domains, tables with insert/delete, and CSV import/export.
//
// Every column is attached to a named Domain whose dictionary maps attribute
// values to dense integer codes. Columns that are compared or joined by
// constraints (for example STUDENT.student_id and TAKES.student_id) must
// share a Domain so that equal values receive equal codes; the Catalog
// enforces this by construction.
package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
)

// Domain is a named value dictionary shared by one or more table columns.
// Codes are dense: the first distinct value interned gets code 0.
type Domain struct {
	name   string
	byVal  map[string]int32
	values []string
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Size returns the number of distinct values interned so far. It is the
// active-domain size the paper's encodings and statistics are based on.
func (d *Domain) Size() int { return len(d.values) }

// Values returns the dictionary in code order: Values()[c] is the value of
// code c. The returned slice must not be modified. Re-interning the values
// of one domain into an empty domain in this order reproduces every code —
// the property snapshot restore depends on.
func (d *Domain) Values() []string { return d.values }

// Intern returns the code for v, assigning the next free code if v is new.
func (d *Domain) Intern(v string) int32 {
	if c, ok := d.byVal[v]; ok {
		return c
	}
	c := int32(len(d.values))
	d.byVal[v] = c
	d.values = append(d.values, v)
	return c
}

// Code returns the code for v, or false if v has never been interned.
func (d *Domain) Code(v string) (int32, bool) {
	c, ok := d.byVal[v]
	return c, ok
}

// Value returns the value for a code previously returned by Intern.
func (d *Domain) Value(code int32) string {
	if code < 0 || int(code) >= len(d.values) {
		panic(fmt.Sprintf("relation: code %d out of range for domain %q", code, d.name))
	}
	return d.values[code]
}

// Catalog owns domains and tables and guarantees domain sharing by name.
type Catalog struct {
	domains map[string]*Domain
	tables  map[string]*Table
	order   []string // table creation order, for deterministic listings
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		domains: make(map[string]*Domain),
		tables:  make(map[string]*Table),
	}
}

// Domain returns the domain with the given name, creating it if needed.
func (c *Catalog) Domain(name string) *Domain {
	if d, ok := c.domains[name]; ok {
		return d
	}
	d := &Domain{name: name, byVal: make(map[string]int32)}
	c.domains[name] = d
	return d
}

// Clone returns a deep snapshot of the catalog: domains are deep-copied and
// every table gets a fresh schema and a fresh outer row slice. The encoded
// row slices themselves are shared with the original — no mutator ever
// writes through an existing row in place (Insert appends fresh rows,
// DeleteCodes swaps whole-row pointers, Truncate shortens the outer slice),
// so shared rows stay valid while the original keeps mutating. As long as
// the clone itself is never mutated it is an immutable snapshot, safe to
// read from any number of goroutines; the replication layer freezes catalog
// versions this way.
func (c *Catalog) Clone() *Catalog {
	nc := NewCatalog()
	for name, d := range c.domains {
		nd := &Domain{
			name:   d.name,
			byVal:  make(map[string]int32, len(d.byVal)),
			values: append([]string(nil), d.values...),
		}
		for v, code := range d.byVal {
			nd.byVal[v] = code
		}
		nc.domains[name] = nd
	}
	nc.order = append([]string(nil), c.order...)
	for name, t := range c.tables {
		nt := &Table{name: t.name, catalog: nc, version: t.version}
		nt.cols = make([]columnInfo, len(t.cols))
		for i, col := range t.cols {
			nt.cols[i] = columnInfo{name: col.name, domain: nc.domains[col.domain.name]}
		}
		nt.rows = append(make([][]int32, 0, len(t.rows)), t.rows...)
		nc.tables[name] = nt
	}
	return nc
}

// Domains lists the catalog's domains sorted by name. Serialization relies
// on this being every domain any column refers to.
func (c *Catalog) Domains() []*Domain {
	out := make([]*Domain, 0, len(c.domains))
	for _, d := range c.domains {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Column declares one attribute of a table schema.
type Column struct {
	// Name is the attribute name, unique within its table.
	Name string
	// Domain names the value domain. Columns in any table that share a
	// Domain name share codes. If empty, Name is used.
	Domain string
}

// CreateTable creates and registers an empty table.
func (c *Catalog) CreateTable(name string, cols []Column) (*Table, error) {
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("relation: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: table %q has no columns", name)
	}
	t := &Table{name: name, catalog: c}
	seen := map[string]bool{}
	for _, col := range cols {
		if seen[col.Name] {
			return nil, fmt.Errorf("relation: table %q: duplicate column %q", name, col.Name)
		}
		seen[col.Name] = true
		domName := col.Domain
		if domName == "" {
			domName = col.Name
		}
		t.cols = append(t.cols, columnInfo{name: col.Name, domain: c.Domain(domName)})
	}
	c.tables[name] = t
	c.order = append(c.order, name)
	return t, nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.tables[name] }

// Tables lists the catalog's tables in creation order.
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.order))
	for _, n := range c.order {
		out = append(out, c.tables[n])
	}
	return out
}

type columnInfo struct {
	name   string
	domain *Domain
}

// Table is a bag of tuples with dictionary-encoded columns. Row order is
// insertion order; deletions compact by swapping with the last row.
type Table struct {
	name    string
	catalog *Catalog
	cols    []columnInfo
	rows    [][]int32
	version uint64
}

// Version returns a counter that increases on every mutation of the table.
// Caches keyed on table contents (the evaluator's predicate cache) use it
// for invalidation.
func (t *Table) Version() uint64 { return t.version }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// ColumnNames returns the attribute names in schema order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.name
	}
	return out
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.cols {
		if c.name == name {
			return i
		}
	}
	return -1
}

// ColumnDomain returns the value domain of column i.
func (t *Table) ColumnDomain(i int) *Domain { return t.cols[i].domain }

// Insert appends the tuple given as attribute values, interning new values
// into the column domains, and returns the encoded row.
func (t *Table) Insert(vals ...string) []int32 {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("relation: insert into %q with %d values, want %d", t.name, len(vals), len(t.cols)))
	}
	row := make([]int32, len(vals))
	for i, v := range vals {
		row[i] = t.cols[i].domain.Intern(v)
	}
	t.rows = append(t.rows, row)
	t.version++
	return row
}

// InsertCodes appends an already-encoded tuple. The caller is responsible
// for the codes being valid for the column domains.
func (t *Table) InsertCodes(row []int32) {
	if len(row) != len(t.cols) {
		panic(fmt.Sprintf("relation: insert into %q with %d codes, want %d", t.name, len(row), len(t.cols)))
	}
	t.rows = append(t.rows, append([]int32(nil), row...))
	t.version++
}

// Delete removes the first row equal to the given attribute values and
// reports whether one was found.
func (t *Table) Delete(vals ...string) bool {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("relation: delete from %q with %d values, want %d", t.name, len(vals), len(t.cols)))
	}
	row := make([]int32, len(vals))
	for i, v := range vals {
		c, ok := t.cols[i].domain.Code(v)
		if !ok {
			return false
		}
		row[i] = c
	}
	return t.DeleteCodes(row)
}

// DeleteCodes removes the first row equal to the encoded tuple.
func (t *Table) DeleteCodes(row []int32) bool {
	for i, r := range t.rows {
		if equalRows(r, row) {
			last := len(t.rows) - 1
			t.rows[i] = t.rows[last]
			t.rows = t.rows[:last]
			t.version++
			return true
		}
	}
	return false
}

func equalRows(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Row returns the encoded row at index i. The slice must not be modified.
func (t *Table) Row(i int) []int32 { return t.rows[i] }

// Rows returns all encoded rows. The backing storage must not be modified.
func (t *Table) Rows() [][]int32 { return t.rows }

// Value decodes column c of row r.
func (t *Table) Value(r, c int) string { return t.cols[c].domain.Value(t.rows[r][c]) }

// DistinctCodes returns the sorted distinct codes appearing in column c.
func (t *Table) DistinctCodes(c int) []int32 {
	seen := make(map[int32]bool, 64)
	for _, row := range t.rows {
		seen[row[c]] = true
	}
	out := make([]int32, 0, len(seen))
	for code := range seen {
		out = append(out, code)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ActiveDomainSize returns the number of distinct values in column c of this
// table. It can be smaller than the column's shared Domain size.
func (t *Table) ActiveDomainSize(c int) int { return len(t.DistinctCodes(c)) }

// Clone returns a deep copy of the table registered under newName.
func (t *Table) Clone(newName string) (*Table, error) {
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = Column{Name: c.name, Domain: c.domain.name}
	}
	nt, err := t.catalog.CreateTable(newName, cols)
	if err != nil {
		return nil, err
	}
	nt.rows = make([][]int32, len(t.rows))
	for i, r := range t.rows {
		nt.rows[i] = append([]int32(nil), r...)
	}
	return nt, nil
}

// Truncate removes all rows but keeps the schema and domains.
func (t *Table) Truncate() {
	t.rows = t.rows[:0]
	t.version++
}

// WriteCSV writes the table with a header row of column names.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	rec := make([]string, len(t.cols))
	for r := range t.rows {
		for c := range t.cols {
			rec[c] = t.Value(r, c)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV creates a table named name from CSV data with a header row. Each
// column's domain defaults to its header name prefixed with the table name
// unless a name→domain override is given in domains.
func (c *Catalog) ReadCSV(name string, r io.Reader, domains map[string]string) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading %q header: %w", name, err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		dom := name + "." + h
		if d, ok := domains[h]; ok {
			dom = d
		}
		cols[i] = Column{Name: h, Domain: dom}
	}
	t, err := c.CreateTable(name, cols)
	if err != nil {
		return nil, err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading %q: %w", name, err)
		}
		t.Insert(rec...)
	}
	return t, nil
}

// ReadCSVFile creates a table named name from the CSV file at path, like
// ReadCSV — the bootstrap path of the CLIs and the cvserved daemon.
func (c *Catalog) ReadCSVFile(name, path string, domains map[string]string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: %w", err)
	}
	defer f.Close()
	return c.ReadCSV(name, f, domains)
}
