package relation_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestDomainInternAndLookup(t *testing.T) {
	cat := relation.NewCatalog()
	d := cat.Domain("city")
	if d.Size() != 0 {
		t.Fatal("fresh domain not empty")
	}
	a := d.Intern("Toronto")
	b := d.Intern("Oshawa")
	if a == b {
		t.Fatal("distinct values share a code")
	}
	if again := d.Intern("Toronto"); again != a {
		t.Fatal("re-intern changed the code")
	}
	if c, ok := d.Code("Toronto"); !ok || c != a {
		t.Fatal("Code lookup failed")
	}
	if _, ok := d.Code("nowhere"); ok {
		t.Fatal("unknown value resolved")
	}
	if d.Value(a) != "Toronto" || d.Value(b) != "Oshawa" {
		t.Fatal("Value decoding wrong")
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d, want 2", d.Size())
	}
}

func TestDomainSharingAcrossTables(t *testing.T) {
	cat := relation.NewCatalog()
	s, err := cat.CreateTable("STUDENT", []relation.Column{
		{Name: "id", Domain: "student_id"},
		{Name: "dept"},
	})
	if err != nil {
		t.Fatal(err)
	}
	takes, err := cat.CreateTable("TAKES", []relation.Column{
		{Name: "sid", Domain: "student_id"},
		{Name: "cid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r1 := s.Insert("s1", "CS")
	r2 := takes.Insert("s1", "c1")
	if r1[0] != r2[0] {
		t.Fatal("shared domain must give equal codes for equal values")
	}
	if s.ColumnDomain(0) != takes.ColumnDomain(0) {
		t.Fatal("shared domain objects differ")
	}
	// Unshared columns default to table-independent domains.
	if s.ColumnDomain(1) == takes.ColumnDomain(1) {
		t.Fatal("distinct default domains expected")
	}
}

func TestCreateTableErrors(t *testing.T) {
	cat := relation.NewCatalog()
	if _, err := cat.CreateTable("T", nil); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := cat.CreateTable("T", []relation.Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := cat.CreateTable("T", []relation.Column{{Name: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("T", []relation.Column{{Name: "a"}}); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestInsertDelete(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, _ := cat.CreateTable("T", []relation.Column{{Name: "a"}, {Name: "b"}})
	tbl.Insert("x", "1")
	tbl.Insert("y", "2")
	tbl.Insert("x", "1") // duplicate: tables are bags
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if !tbl.Delete("x", "1") {
		t.Fatal("delete failed")
	}
	if tbl.Len() != 2 {
		t.Fatal("delete removed wrong count")
	}
	if tbl.Delete("z", "9") {
		t.Fatal("deleting a missing tuple succeeded")
	}
	if !tbl.Delete("x", "1") || tbl.Delete("x", "1") {
		t.Fatal("bag semantics broken")
	}
}

func TestDistinctAndActiveDomain(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, _ := cat.CreateTable("T", []relation.Column{{Name: "a"}, {Name: "b"}})
	tbl.Insert("x", "1")
	tbl.Insert("y", "1")
	tbl.Insert("x", "2")
	if got := tbl.ActiveDomainSize(0); got != 2 {
		t.Fatalf("ActiveDomainSize(0) = %d", got)
	}
	if got := tbl.ActiveDomainSize(1); got != 2 {
		t.Fatalf("ActiveDomainSize(1) = %d", got)
	}
	codes := tbl.DistinctCodes(0)
	if len(codes) != 2 || codes[0] > codes[1] {
		t.Fatalf("DistinctCodes = %v", codes)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, _ := cat.CreateTable("T", []relation.Column{{Name: "a"}, {Name: "b"}})
	tbl.Insert("x", "hello, world")
	tbl.Insert("y", `with "quotes"`)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	cat2 := relation.NewCatalog()
	back, err := cat2.ReadCSV("T2", strings.NewReader(buf.String()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("Len = %d", back.Len())
	}
	if back.Value(0, 1) != "hello, world" || back.Value(1, 1) != `with "quotes"` {
		t.Fatal("values corrupted in round trip")
	}
	names := back.ColumnNames()
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("header corrupted: %v", names)
	}
}

func TestReadCSVDomainOverride(t *testing.T) {
	cat := relation.NewCatalog()
	src := "city,state\nToronto,ON\n"
	t1, err := cat.ReadCSV("A", strings.NewReader(src), map[string]string{"city": "city"})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cat.ReadCSV("B", strings.NewReader(src), map[string]string{"city": "city"})
	if err != nil {
		t.Fatal(err)
	}
	if t1.ColumnDomain(0) != t2.ColumnDomain(0) {
		t.Fatal("override should share the city domain")
	}
	if t1.ColumnDomain(1) == t2.ColumnDomain(1) {
		t.Fatal("non-overridden columns should not share")
	}
}

func TestClone(t *testing.T) {
	cat := relation.NewCatalog()
	tbl, _ := cat.CreateTable("T", []relation.Column{{Name: "a"}})
	tbl.Insert("x")
	cp, err := tbl.Clone("T2")
	if err != nil {
		t.Fatal(err)
	}
	cp.Insert("y")
	if tbl.Len() != 1 || cp.Len() != 2 {
		t.Fatal("clone shares row storage")
	}
	if cp.ColumnDomain(0) != tbl.ColumnDomain(0) {
		t.Fatal("clone must share domains")
	}
}

func TestTablesListing(t *testing.T) {
	cat := relation.NewCatalog()
	cat.CreateTable("B", []relation.Column{{Name: "x"}})
	cat.CreateTable("A", []relation.Column{{Name: "x"}})
	ts := cat.Tables()
	if len(ts) != 2 || ts[0].Name() != "B" || ts[1].Name() != "A" {
		t.Fatal("Tables must list in creation order")
	}
	if cat.Table("missing") != nil {
		t.Fatal("missing table should be nil")
	}
}
