package relation_test

import (
	"testing"

	"repro/internal/relation"
)

// clone_test.go checks the snapshot semantics Catalog.Clone promises to the
// replication layer: a clone is a frozen view that no later mutation of the
// original can reach.

func TestCatalogCloneIsFrozenSnapshot(t *testing.T) {
	cat := relation.NewCatalog()
	orig, err := cat.CreateTable("CUST", []relation.Column{
		{Name: "city"}, {Name: "areacode", Domain: "areacode"},
	})
	if err != nil {
		t.Fatal(err)
	}
	orig.Insert("Toronto", "416")
	orig.Insert("Oshawa", "905")

	snap := cat.Clone()
	ct := snap.Table("CUST")
	if ct == nil {
		t.Fatal("clone lost table CUST")
	}
	if ct.Len() != 2 || ct.Value(0, 0) != "Toronto" || ct.Value(1, 1) != "905" {
		t.Fatal("clone does not reproduce rows")
	}
	if v := ct.Version(); v != orig.Version() {
		t.Fatalf("clone version %d, want %d", v, orig.Version())
	}

	// Every kind of mutation of the original must be invisible in the clone:
	// inserts (with new dictionary values), swap-compacting deletes, truncate
	// followed by re-insert into the recycled backing array.
	orig.Insert("Ottawa", "613")
	orig.Delete("Toronto", "416")
	if ct.Len() != 2 || ct.Value(0, 0) != "Toronto" || ct.Value(0, 1) != "416" {
		t.Fatal("mutating the original leaked into the clone")
	}
	if _, ok := snap.Domain("areacode").Code("613"); ok {
		t.Fatal("interning into the original leaked into the clone's domain")
	}
	orig.Truncate()
	orig.Insert("Kingston", "343")
	if ct.Value(1, 0) != "Oshawa" {
		t.Fatal("truncate+insert on the original corrupted the clone's rows")
	}

	// And the converse: the clone is independently mutable without touching
	// the original (not used by replication, but Clone must not alias).
	ct.Insert("Barrie", "705")
	if orig.Len() != 1 {
		t.Fatal("mutating the clone leaked into the original")
	}

	// Tables in both catalogs keep domain sharing by name.
	if snap.Table("CUST").ColumnDomain(1) != snap.Domain("areacode") {
		t.Fatal("clone broke domain sharing")
	}
	if len(snap.Tables()) != len(cat.Tables()) {
		t.Fatal("clone table listing differs")
	}
}
