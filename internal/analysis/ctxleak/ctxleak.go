// Package ctxleak finds goroutines that cannot be shut down.
//
// The service spawns long-lived goroutines — the worker loop, the follower
// tail loop, long-poll waiters — and every one of them must observe a
// shutdown signal: a context's Done/Err, or a receive from a quit/done/stop
// channel. A goroutine whose unbounded loop observes neither keeps running
// after Close, holding its captures (checkers, kernels, sockets) alive —
// the leak is invisible until a test binary hangs or a process's goroutine
// count climbs.
//
// The analyzer inspects every `go` statement. When the spawned body — a
// function literal, a same-package declaration, or an imported function with
// a fact — contains an unbounded loop (`for` with no condition) that
// observes no exit signal, the statement is reported. A loop observes an
// exit signal when its body (function literals excluded: they run elsewhere)
// contains
//
//   - a Done() or Err() call on a context.Context value,
//   - a receive from a channel whose name suggests lifecycle control
//     (quit, done, stop, close, shutdown, or a ctx-named source), or
//   - a call to a function that itself observes a signal, resolved through
//     the package-local call graph or the vet fact protocol.
//
// Range loops are exempt: ranging over a channel ends when the sender closes
// it, and other range forms are bounded by their operand. Conditional for
// loops are bounded by their condition.
package ctxleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxleak",
	Doc: "checks that spawned goroutines with unbounded loops observe a shutdown signal " +
		"(ctx.Done/ctx.Err or a quit/done/stop channel) and do not leak past Close",
	Run: run,
}

// Fact summarizes a function for spawn-site checks in other packages:
// Signals — its body observes an exit signal; Loops — it contains an
// unbounded loop that observes none (spawning it leaks).
type Fact struct {
	Signals bool `json:"signals,omitempty"`
	Loops   bool `json:"loops,omitempty"`
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	info := pass.TypesInfo

	// Signals, to a fixed point over the call graph.
	signals := make(map[*analysis.FuncNode]bool, len(g.Funcs))
	for _, n := range g.Funcs {
		signals[n] = hasDirectSignal(info, n.Decl.Body, false)
	}
	calleeFact := func(fn *types.Func) Fact {
		if local, ok := g.ByObj[fn]; ok {
			return Fact{Signals: signals[local]}
		}
		var imported Fact
		pass.ImportObjectFact(fn, &imported)
		return imported
	}
	for changed, rounds := true, 0; changed && rounds <= len(g.Funcs)+1; rounds++ {
		changed = false
		for _, n := range g.Funcs {
			if signals[n] {
				continue
			}
			for _, cs := range n.Calls {
				if calleeFact(cs.Callee).Signals {
					signals[n], changed = true, true
					break
				}
			}
		}
	}

	// An unbounded loop is detached when neither a direct signal nor a call
	// to a signal-observing function appears inside it.
	loopLeaks := func(body ast.Node) bool {
		leaks := false
		inspectSkippingFuncLits(body, func(node ast.Node) {
			if leaks {
				return
			}
			f, ok := node.(*ast.ForStmt)
			if !ok || f.Cond != nil {
				return
			}
			ok = false
			inspectSkippingFuncLits(f.Body, func(inner ast.Node) {
				if ok {
					return
				}
				if isSignal(info, inner) {
					ok = true
					return
				}
				if call, isCall := inner.(*ast.CallExpr); isCall {
					if callee := analysis.StaticCallee(info, call); callee != nil && calleeFact(callee).Signals {
						ok = true
					}
				}
			})
			if !ok {
				leaks = true
			}
		})
		return leaks
	}

	loops := make(map[*analysis.FuncNode]bool, len(g.Funcs))
	for _, n := range g.Funcs {
		loops[n] = loopLeaks(n.Decl.Body)
	}

	// Export summaries for spawn sites in importing packages.
	for _, n := range g.Funcs {
		if signals[n] || loops[n] {
			f := &Fact{Signals: signals[n], Loops: loops[n]}
			if err := pass.ExportFact(analysis.FuncKey(n.Obj), f); err != nil {
				return err
			}
		}
	}

	// Check every spawn site.
	const remedy = "it cannot be shut down and leaks when the server stops " +
		"(select on ctx.Done()/a quit channel inside the loop)"
	for _, n := range g.Funcs {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, isLit := analysis.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
				if loopLeaks(lit.Body) {
					pass.Reportf(gs.Pos(), "goroutine runs an unbounded loop with no shutdown signal; %s", remedy)
				}
				return true
			}
			callee := analysis.StaticCallee(info, gs.Call)
			if callee == nil {
				return true
			}
			leaky := false
			if local, isLocal := g.ByObj[callee]; isLocal {
				leaky = loops[local]
			} else {
				leaky = calleeFact(callee).Loops
			}
			if leaky {
				pass.Reportf(gs.Pos(), "goroutine %s runs an unbounded loop with no shutdown signal; %s",
					analysis.FuncKey(callee), remedy)
			}
			return true
		})
	}
	return nil
}

// hasDirectSignal reports whether the subtree observes an exit signal
// itself. Function literals are skipped unless includeLits is set: their
// bodies run on some other goroutine's schedule.
func hasDirectSignal(info *types.Info, body ast.Node, includeLits bool) bool {
	found := false
	visit := func(node ast.Node) {
		if !found && isSignal(info, node) {
			found = true
		}
	}
	if includeLits {
		ast.Inspect(body, func(n ast.Node) bool { visit(n); return true })
	} else {
		inspectSkippingFuncLits(body, visit)
	}
	return found
}

// isSignal reports whether the node is one shutdown-signal observation.
func isSignal(info *types.Info, node ast.Node) bool {
	switch node := node.(type) {
	case *ast.CallExpr:
		// ctx.Done() / ctx.Err() on a context.Context value.
		sel, ok := analysis.Unparen(node.Fun).(*ast.SelectorExpr)
		if !ok || len(node.Args) != 0 {
			return false
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return false
		}
		tv, ok := info.Types[sel.X]
		return ok && isContext(tv.Type)
	case *ast.UnaryExpr:
		// Receive from a lifecycle-named channel.
		if node.Op != token.ARROW {
			return false
		}
		return lifecycleNamed(node.X)
	case *ast.RangeStmt:
		// Ranging over a channel ends when the sender closes it.
		tv, ok := info.Types[node.X]
		if !ok {
			return false
		}
		_, isChan := tv.Type.Underlying().(*types.Chan)
		return isChan
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// lifecycleNamed reports whether the receive operand's name suggests a
// shutdown channel (quit, done, stop, close, shutdown) or derives from a
// context (ctx.Done() handled as a call; timer/deadline channels are not
// lifecycle signals).
func lifecycleNamed(e ast.Expr) bool {
	var name string
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, hint := range []string{"quit", "done", "stop", "close", "shutdown"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

// inspectSkippingFuncLits walks the subtree in source order, not descending
// into function literals.
func inspectSkippingFuncLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit {
			return false
		}
		if node != nil {
			visit(node)
		}
		return true
	})
}
