package ctxleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxleak"
)

func TestCtxLeak(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxleak.Analyzer, "ctxleaks")
}
