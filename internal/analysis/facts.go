package analysis

// Function-summary facts.
//
// An analyzer may attach a serializable fact to a declaration of the package
// it is analyzing (keyed by FuncKey, or any other stable string) and read the
// facts that the same analyzer exported when the packages this one imports
// were analyzed. Facts are how an analysis crosses function and package
// boundaries without whole-program loading: the unitchecker driver stores
// each package's facts in the vetx file that `go vet` already threads through
// the build graph (Config.VetxOutput / Config.PackageVetx), so a dependency's
// summaries are available — and cached — by the time its importers are
// checked.
//
// Facts are namespaced per analyzer: ExportFact writes under the calling
// analyzer's name, ImportFact reads only that namespace. A fact value must
// round-trip through encoding/json; the zero-length file written by older
// cvlint binaries decodes as "no facts", keeping vetx files forward- and
// backward-compatible.

import (
	"encoding/json"
	"fmt"
	"go/types"
)

// PackageFacts holds every fact exported for one package:
// analyzer name -> declaration key -> encoded fact.
type PackageFacts map[string]map[string]json.RawMessage

// DecodeFacts parses the contents of a vetx facts file. Empty input (the
// format written before facts existed) yields an empty, non-nil map.
func DecodeFacts(data []byte) (PackageFacts, error) {
	pf := PackageFacts{}
	if len(data) == 0 {
		return pf, nil
	}
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("decoding facts: %v", err)
	}
	return pf, nil
}

// EncodeFacts serializes facts for a vetx file.
func EncodeFacts(pf PackageFacts) ([]byte, error) {
	if len(pf) == 0 {
		return []byte{}, nil
	}
	return json.Marshal(pf)
}

// ExportFact records a fact for a declaration of the current package under
// the calling analyzer's namespace. key is normally FuncKey(fn); any stable
// string works. The fact must marshal to JSON.
func (p *Pass) ExportFact(key string, fact interface{}) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analyzer %s: encoding fact %q: %v", p.Analyzer.Name, key, err)
	}
	m := p.exported[p.Analyzer.Name]
	if m == nil {
		m = map[string]json.RawMessage{}
		p.exported[p.Analyzer.Name] = m
	}
	m[key] = data
	return nil
}

// ImportFact looks up the calling analyzer's fact for a declaration of an
// imported package and decodes it into out. It reports whether a fact was
// found.
func (p *Pass) ImportFact(pkgPath, key string, out interface{}) bool {
	pf, ok := p.ImportedFacts[pkgPath]
	if !ok {
		return false
	}
	raw, ok := pf[p.Analyzer.Name][key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// ImportObjectFact resolves fn (a function declared in another package) to
// its fact under the calling analyzer's namespace. Functions of the package
// being analyzed have no imported facts; use the in-package summaries the
// analyzer computed itself.
func (p *Pass) ImportObjectFact(fn *types.Func, out interface{}) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == p.Pkg {
		return false
	}
	return p.ImportFact(fn.Pkg().Path(), FuncKey(fn), out)
}

// EachImportedFact visits every imported fact in the calling analyzer's
// namespace, across all imported packages. Used by analyzers that aggregate
// package-level facts (lockorder's acquisition edges) rather than looking up
// one declaration.
func (p *Pass) EachImportedFact(visit func(pkgPath, key string, raw json.RawMessage)) {
	for pkgPath, pf := range p.ImportedFacts {
		for key, raw := range pf[p.Analyzer.Name] {
			visit(pkgPath, key, raw)
		}
	}
}

// FuncKey returns the stable fact key for a function or method: "F" for a
// package-level function, "(T).M" or "(*T).M" for a method. The package path
// is carried by the fact file itself, so keys stay short.
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	star := ""
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
		star = "*"
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return "(" + star + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}
