// Package analysis is a self-contained static-analysis framework for the
// repository's domain-specific lint suite (cmd/cvlint). It mirrors the shape
// of golang.org/x/tools/go/analysis — an Analyzer owns a Run function over a
// type-checked Pass and emits Diagnostics — but is built entirely on the
// standard library so the module stays dependency-free.
//
// The framework deliberately supports only what the cvlint analyzers need:
// no analyzer-to-analyzer requirements, no per-analyzer flags. It is however
// modestly interprocedural: a package-local call graph (callgraph.go) lets an
// analyzer follow static calls within the package under analysis, and
// function-summary facts (facts.go) carry what an analyzer learned about a
// package's declarations to the analyses of its importers, through the vetx
// files `go vet` threads along the build graph. Two drivers exist:
// internal/analysis/unitchecker speaks the JSON protocol of `go vet
// -vettool=...`, and internal/analysis/analysistest type-checks fixture
// packages under testdata/src for the analyzers' own tests.
//
// Entry points of the concurrency contract are annotated in the source with
// the //cv:owner directive (grammar documented at OwnerDirective in
// callgraph.go): `//cv:owner worker` marks the kernel-owning write-worker
// loop and the boot path, `//cv:owner any` marks code that may run on any
// goroutine and must therefore stay read-only toward the primary kernel.
//
// See DESIGN.md, section "Static contracts", for the contracts each shipped
// analyzer enforces and why the type system cannot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the help text: first sentence is the summary.
	Doc string

	// Run applies the analyzer to a package. It reports findings through
	// pass.Report/Reportf. The returned error aborts the whole run and is
	// reserved for internal analyzer failures, not findings.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// IsStdPkg reports whether the package with the given path belongs to
	// the Go standard library. Drivers that know (the unitchecker's config
	// carries the set; analysistest asks `go list`) supply it; analyzers
	// use it to scope rules to this module's own declarations. A nil value
	// means "unknown" and is treated as not-standard.
	IsStdPkg func(path string) bool

	// ImportedFacts holds, per imported package path, the facts exported
	// when that package was analyzed. Analyzers read it through ImportFact;
	// a nil map simply yields no facts.
	ImportedFacts map[string]PackageFacts

	report   func(Diagnostic)
	exported PackageFacts
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // name of the reporting analyzer
	// Suppressed marks a finding covered by a justified //lint:ignore
	// directive. Suppressed findings do not fail a vet run but are retained
	// so machine consumers (cvlint -json) can surface them.
	Suppressed bool
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Stdlib reports whether path names a standard-library package according to
// the driver; false when the driver does not know.
func (p *Pass) Stdlib(path string) bool {
	return p.IsStdPkg != nil && p.IsStdPkg(path)
}

// Run applies every analyzer to the package described by (fset, files, pkg,
// info), applies //lint:ignore suppressions, and returns the surviving
// diagnostics sorted by position. Suppression directives that are malformed
// (no justification) are themselves returned as diagnostics, so a vet run
// cannot go quiet on the back of an unexplained ignore.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, isStd func(string) bool, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithFacts(fset, files, pkg, info, isStd, nil, analyzers)
	if err != nil {
		return nil, err
	}
	var live []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			live = append(live, d)
		}
	}
	return live, nil
}

// RunWithFacts is Run for fact-aware drivers: imported carries the facts of
// the package's dependencies (nil is fine), and the returned PackageFacts
// collects everything the analyzers exported for this package. Unlike Run,
// suppressed diagnostics are returned too, marked with Suppressed, so the
// caller decides whether to drop or surface them.
func RunWithFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, isStd func(string) bool, imported map[string]PackageFacts, analyzers []*Analyzer) ([]Diagnostic, PackageFacts, error) {
	var diags []Diagnostic
	exported := PackageFacts{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:      a,
			Fset:          fset,
			Files:         files,
			Pkg:           pkg,
			TypesInfo:     info,
			IsStdPkg:      isStd,
			ImportedFacts: imported,
			report:        func(d Diagnostic) { diags = append(diags, d) },
			exported:      exported,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	diags = applySuppressions(fset, files, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, exported, nil
}
