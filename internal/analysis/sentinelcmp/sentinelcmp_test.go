package sentinelcmp_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sentinelcmp"
)

func TestSentinelCmp(t *testing.T) {
	analysistest.Run(t, "../testdata", sentinelcmp.Analyzer, "sentinel")
}
