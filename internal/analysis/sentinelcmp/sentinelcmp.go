// Package sentinelcmp flags direct comparisons against the repository's
// sentinel errors.
//
// Sentinels like bdd.ErrBudget, bdd.ErrOrder, logic.ErrNoIndex,
// replica.ErrClosed and service.ErrBusy routinely arrive wrapped: budget
// aborts cross package boundaries as fmt.Errorf("%w", ...) chains (the
// service layer wraps ErrBusy with the context error, the evaluator wraps
// ErrNoIndex with the predicate name). A direct == / != / switch-case
// comparison silently misses the wrapped form, so every test must go through
// errors.Is. PR 1 fixed exactly this bug in internal/experiments/threshold.go;
// this analyzer keeps it fixed.
package sentinelcmp

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the sentinelcmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelcmp",
	Doc: "flags ==, != and switch-case comparisons against wrapped sentinel errors; " +
		"module sentinels (bdd.ErrBudget, logic.ErrNoIndex, ...) arrive wrapped, so use errors.Is",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range [...]ast.Expr{n.X, n.Y} {
					if name, ok := sentinelName(pass, side); ok {
						pass.Reportf(n.Pos(), "direct %s comparison against sentinel %s; it may arrive wrapped, use errors.Is", n.Op, name)
						break
					}
				}
			case *ast.SwitchStmt:
				// switch err { case bdd.ErrBudget: ... } compares the tag
				// with == against every case expression.
				if n.Tag == nil {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n.Tag]; !ok || !analysis.IsErrorType(tv.Type) {
					return true
				}
				for _, s := range n.Body.List {
					cc, ok := s.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelName(pass, e); ok {
							pass.Reportf(e.Pos(), "switch case compares against sentinel %s with ==; it may arrive wrapped, use errors.Is", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelName reports whether e denotes a module sentinel error variable,
// and its display name.
func sentinelName(pass *analysis.Pass, e ast.Expr) (string, bool) {
	obj := analysis.ObjectOf(pass.TypesInfo, e)
	if obj == nil || !analysis.SentinelError(pass, obj) {
		return "", false
	}
	return obj.Pkg().Name() + "." + obj.Name(), true
}
