package tempmark_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/tempmark"
)

func TestTempMark(t *testing.T) {
	analysistest.Run(t, "../testdata", tempmark.Analyzer, "tempmarks", "protects")
}
