// Package tempmark checks the kernel's root-pinning discipline.
//
// The BDD kernel's garbage collector can run at any operation boundary and
// frees every node that is not a pinned root, a temp root, or an operand of
// the in-flight operation. Two pinning APIs exist, each with a pairing
// contract Go's type system cannot express:
//
//   - mark := k.TempMark() ... k.TempRelease(mark): the release must happen
//     on every path out of the function — including early returns and
//     panicking branches — or the temp-root stack grows monotonically and
//     superseded intermediates are never collected.
//   - k.Protect(f) ... k.Unprotect(f): every pin must be balanced, unless
//     ownership of the pin is transferred to a longer-lived structure (an
//     index store, a snapshot), which must be stated in a comment.
//
// tempmark proves the first contract with a structural all-paths analysis
// over the function body (an abstract walk of the statement tree tracking
// released/deferred state across branches, loops and switches), and checks
// the second with an escape heuristic: a Protect whose argument neither gets
// an in-function Unprotect nor visibly escapes (returned, stored into a
// field, passed to a non-kernel call) is flagged unless an "ownership:"
// comment documents the transfer.
//
// The release need not be syntactically in-function: a helper that passes an
// integer parameter to TempRelease on every one of its own paths is a
// releaser of that parameter, and calling it (directly or deferred) with the
// mark discharges the obligation. Releaser summaries are computed to a fixed
// point over the package-local call graph and exported as facts, so the
// helper may live in another package.
//
// Functions containing goto are skipped: the structural walk cannot bound
// their control flow, and the repository does not use goto on kernel paths.
package tempmark

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the tempmark analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "tempmark",
	Doc: "checks that every Kernel.TempMark is paired with TempRelease(mark) on all paths " +
		"and every Protect has a matching Unprotect or a documented ownership transfer",
	Run: run,
}

// Fact summarizes a function for its callers: ReleaseParams lists the
// receiver-unified indices (receiver first for methods) of the integer
// parameters the function passes to TempRelease on every path out of its
// body, so a call forwarding a mark there counts as releasing it.
type Fact struct {
	ReleaseParams []int `json:"release_params,omitempty"`
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	ri := computeReleasers(pass, g)
	for _, n := range g.Funcs {
		if idxs := ri.local[n.Obj]; len(idxs) > 0 {
			if err := pass.ExportFact(analysis.FuncKey(n.Obj), &Fact{ReleaseParams: idxs}); err != nil {
				return err
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			fn := &funcCheck{pass: pass, body: body, file: f, rel: ri}
			fn.check()
			return true // also descend into nested function literals
		})
	}
	return nil
}

// releaseIndex answers which parameters a callee releases, from the local
// fixpoint for same-package functions and from facts for imported ones.
type releaseIndex struct {
	pass  *analysis.Pass
	local map[*types.Func][]int
}

func (ri *releaseIndex) releaseParams(fn *types.Func) []int {
	if idxs, ok := ri.local[fn]; ok {
		return idxs
	}
	var f Fact
	if ri.pass.ImportObjectFact(fn, &f) {
		return f.ReleaseParams
	}
	return nil
}

// releasesArg reports whether the call forwards mark into a parameter the
// callee releases on all paths.
func (ri *releaseIndex) releasesArg(call *ast.CallExpr, mark types.Object) bool {
	info := ri.pass.TypesInfo
	callee := analysis.StaticCallee(info, call)
	if callee == nil {
		return false
	}
	idxs := ri.releaseParams(callee)
	if len(idxs) == 0 {
		return false
	}
	args := analysis.CallArgs(info, call, callee)
	for _, i := range idxs {
		if i < len(args) {
			if id, ok := analysis.Unparen(args[i]).(*ast.Ident); ok && info.ObjectOf(id) == mark {
				return true
			}
		}
	}
	return false
}

// computeReleasers classifies each declared function's integer parameters as
// all-paths-released or not, iterating because releases may flow through
// other local releasers. The classification only ever gains releases, so the
// fixpoint is monotone.
func computeReleasers(pass *analysis.Pass, g *analysis.CallGraph) *releaseIndex {
	ri := &releaseIndex{pass: pass, local: map[*types.Func][]int{}}
	for changed, rounds := true, 0; changed && rounds <= len(g.Funcs)+1; rounds++ {
		changed = false
		for _, n := range g.Funcs {
			if hasGoto(n.Decl.Body) {
				continue
			}
			var idxs []int
			for i, p := range analysis.CalleeParams(n.Obj) {
				if b, ok := p.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
					continue
				}
				fc := &funcCheck{pass: pass, body: n.Decl.Body, rel: ri}
				w := &walker{fc: fc, mark: p, quiet: true}
				st, terminated := w.stmtList(n.Decl.Body.List, state{started: true})
				if !terminated {
					w.exit(st, n.Decl.Body.Rbrace)
				}
				if w.leaks == 0 && w.releases > 0 {
					idxs = append(idxs, i)
				}
			}
			if len(idxs) != len(ri.local[n.Obj]) {
				ri.local[n.Obj], changed = idxs, true
			}
		}
	}
	return ri
}

type funcCheck struct {
	pass *analysis.Pass
	body *ast.BlockStmt
	file *ast.File
	rel  *releaseIndex
}

func (fc *funcCheck) check() {
	if hasGoto(fc.body) {
		return
	}
	for _, mark := range fc.markVars() {
		w := &walker{fc: fc, mark: mark}
		st, terminated := w.stmtList(fc.body.List, state{})
		if !terminated {
			// Fall-off-the-end is an implicit return.
			w.exit(st, fc.body.Rbrace)
		}
	}
	fc.checkProtect()
}

// markVars finds the local variables bound to k.TempMark() results in this
// function body, excluding nested function literals (those are checked as
// their own functions).
func (fc *funcCheck) markVars() []types.Object {
	var out []types.Object
	inspectShallow(fc.body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if !fc.isTempMarkCall(as.Rhs[0]) {
			return
		}
		if obj := fc.pass.TypesInfo.ObjectOf(id); obj != nil {
			out = append(out, obj)
		}
	})
	return out
}

func (fc *funcCheck) isTempMarkCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, name, ok := analysis.KernelMethod(fc.pass.TypesInfo, call)
	return ok && name == "TempMark"
}

// isRelease reports whether e releases mark: a direct TempRelease(mark) or a
// call forwarding mark into a parameter the callee releases on all paths.
func (fc *funcCheck) isRelease(e ast.Expr, mark types.Object) bool {
	if isReleaseOf(fc.pass.TypesInfo, e, mark) {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	return ok && fc.rel != nil && fc.rel.releasesArg(call, mark)
}

// isReleaseOf reports whether e is a call k.TempRelease(mark) for this mark.
func isReleaseOf(info *types.Info, e ast.Expr, mark types.Object) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, name, ok := analysis.KernelMethod(info, call)
	if !ok || name != "TempRelease" || len(call.Args) != 1 {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return ok && info.ObjectOf(id) == mark
}

// state is the abstract per-path state for one mark variable.
type state struct {
	started  bool // the TempMark assignment has executed on this path
	released bool // a TempRelease(mark) has executed since
	deferred bool // a defer guaranteeing TempRelease(mark) is registered
}

func mergeBranch(a, b state) state {
	return state{
		started:  a.started || b.started,
		released: a.released && b.released,
		deferred: a.deferred && b.deferred,
	}
}

type walker struct {
	fc   *funcCheck
	mark types.Object
	// quiet is set for the summary pass, which counts instead of reporting.
	quiet    bool
	leaks    int // exits reached with the mark unreleased
	releases int // release observations (direct or through a releaser callee)
}

func (w *walker) info() *types.Info { return w.fc.pass.TypesInfo }

// exit checks one function exit (return, panic, or fall-off-end).
func (w *walker) exit(st state, pos token.Pos) {
	if st.started && !st.released && !st.deferred {
		w.leaks++
		if !w.quiet {
			w.fc.pass.Reportf(pos, "function exits without TempRelease(%s) for the TempMark on line %d; release on every path or use defer",
				w.mark.Name(), w.fc.pass.Fset.Position(w.mark.Pos()).Line)
		}
	}
}

// stmtList walks a statement list; the bool result reports whether control
// cannot fall through to the statement after the list.
func (w *walker) stmtList(list []ast.Stmt, st state) (state, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (w *walker) stmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmtList(s.List, st)

	case *ast.AssignStmt:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok && w.info().ObjectOf(id) == w.mark {
				if w.fc.isTempMarkCall(s.Rhs[0]) {
					// (Re-)arming the mark: the fresh mark needs its own release.
					return state{started: true, deferred: st.deferred}, false
				}
				// The variable was repurposed; stop tracking this path.
				return state{deferred: st.deferred}, false
			}
		}
		return st, false

	case *ast.ExprStmt:
		if w.fc.isRelease(s.X, w.mark) {
			st.released = true
			w.releases++
			return st, false
		}
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltinPanic(w.info(), call) {
			// A panicking branch is a function exit: only a registered
			// defer (or an already-executed release) covers it.
			w.exit(st, s.Pos())
			return st, true
		}
		return st, false

	case *ast.DeferStmt:
		if w.fc.isRelease(s.Call, w.mark) {
			st.deferred = true
			w.releases++
			return st, false
		}
		// defer func() { ...; k.TempRelease(mark); ... }()
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok && w.fc.isRelease(e, w.mark) {
					found = true
				}
				return !found
			})
			if found {
				st.deferred = true
				w.releases++
			}
		}
		return st, false

	case *ast.ReturnStmt:
		w.exit(st, s.Pos())
		return st, true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		thenSt, thenTerm := w.stmtList(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeBranch(thenSt, elseSt), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		bodySt, _ := w.stmtList(s.Body.List, st) // exits inside are checked
		if s.Cond == nil && !hasBreak(s.Body) {
			// for {} without break never falls through.
			return st, true
		}
		if s.Cond == nil {
			// for {} that only leaves via break: the break paths carry the
			// body's effects; merge them with the entry state conservatively.
			return mergeBranch(st, bodySt), false
		}
		// The body may run zero times: its releases do not count after the loop.
		return st, false

	case *ast.RangeStmt:
		w.stmtList(s.Body.List, st)
		return st, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchLike(s, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.BranchStmt:
		// break/continue leave this statement list; goto was excluded up
		// front; fallthrough transfers into the next case, which is walked
		// with the clause entry state.
		if s.Tok == token.FALLTHROUGH {
			return st, false
		}
		return st, true

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				if w.info().ObjectOf(vs.Names[0]) == w.mark && w.fc.isTempMarkCall(vs.Values[0]) {
					return state{started: true, deferred: st.deferred}, false
				}
			}
		}
		return st, false

	default:
		return st, false
	}
}

// switchLike merges the clause bodies of a switch/type-switch/select. A
// clause set without a default also admits the fall-past path, which keeps
// the entry state.
func (w *walker) switchLike(s ast.Stmt, st state) (state, bool) {
	var body *ast.BlockStmt
	var init ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		body, init = s.Body, s.Init
	case *ast.TypeSwitchStmt:
		body, init = s.Body, s.Init
	case *ast.SelectStmt:
		body = s.Body
	}
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	merged := state{}
	first := true
	allTerm := true
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			stmts = cs.Body
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = cs.Body
			if cs.Comm == nil {
				hasDefault = true
			}
		}
		cSt, cTerm := w.stmtList(stmts, st)
		if cTerm {
			continue
		}
		allTerm = false
		if first {
			merged, first = cSt, false
		} else {
			merged = mergeBranch(merged, cSt)
		}
	}
	if !hasDefault {
		// No default: the tag may match nothing and fall past.
		if first {
			return st, false
		}
		return mergeBranch(merged, st), false
	}
	if allTerm && len(body.List) > 0 {
		return st, true
	}
	if first {
		return st, false
	}
	return merged, false
}

func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

// hasBreak reports whether body contains an unlabeled break that exits the
// enclosing loop (breaks bound to nested loops, switches and selects do not
// count; a labeled break is conservatively counted).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // their breaks bind inward
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			// An unlabeled break inside binds to the switch; a labeled one
			// may exit our loop — conservatively scan for labeled breaks only.
			ast.Inspect(n, func(m ast.Node) bool {
				if b, ok := m.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
					found = true
				}
				return !found
			})
			return false
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, scan)
	}
	return found
}

// inspectShallow visits nodes of body without descending into nested
// function literals.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
