package tempmark

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// checkProtect applies the Protect/Unprotect balance heuristic to one
// function body. A pin is fine when the same function Unprotects the same
// value, when the pinned value visibly escapes the function (returned,
// stored into a field, slice, map or package variable, passed to a
// non-kernel call — some longer-lived owner is then responsible for the
// balancing Unprotect), or when an "ownership:" comment on the Protect line
// documents a deliberate transfer.
func (fc *funcCheck) checkProtect() {
	info := fc.pass.TypesInfo

	// Collect Unprotect targets (by object for identifiers, by expression
	// text otherwise) and objects that escape the function.
	unprotObjs := map[types.Object]bool{}
	unprotExprs := map[string]bool{}
	escaped := map[types.Object]bool{}

	inspectShallow(fc.body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			_, name, ok := analysis.KernelMethod(info, n)
			if ok && name == "Unprotect" && len(n.Args) == 1 {
				if id, isID := n.Args[0].(*ast.Ident); isID {
					if obj := info.ObjectOf(id); obj != nil {
						unprotObjs[obj] = true
					}
				}
				unprotExprs[exprText(n.Args[0])] = true
			}
			if ok {
				// Kernel operations read their operands; they do not
				// retain them.
				return
			}
			// Arguments to non-kernel calls may be retained by the callee.
			for _, a := range n.Args {
				markIdents(info, a, escaped)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				markIdents(info, r, escaped)
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				markIdents(info, e, escaped)
			}
		case *ast.AssignStmt:
			// Storing into anything other than a plain local identifier
			// (field, index, dereference) hands the value to a longer-lived
			// structure.
			for i, l := range n.Lhs {
				if _, isID := l.(*ast.Ident); !isID && i < len(n.Rhs) {
					markIdents(info, n.Rhs[i], escaped)
				}
			}
			if len(n.Lhs) != len(n.Rhs) && len(n.Rhs) == 1 {
				for _, l := range n.Lhs {
					if _, isID := l.(*ast.Ident); !isID {
						markIdents(info, n.Rhs[0], escaped)
					}
				}
			}
		case *ast.SendStmt:
			markIdents(info, n.Value, escaped)
		}
	})

	inspectShallow(fc.body, func(n ast.Node) {
		// Only statement-form pins are checked: a Protect whose result is
		// consumed (assigned, returned) forwards the pinned value, and the
		// forwarding context is covered by the escape rules above.
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		_, name, ok := analysis.KernelMethod(info, call)
		if !ok || name != "Protect" || len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		if unprotExprs[exprText(arg)] {
			return
		}
		id, isID := arg.(*ast.Ident)
		if !isID {
			// Pinning a field or element: the owning structure holds the
			// value, and its teardown path owns the balancing Unprotect.
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || unprotObjs[obj] || escaped[obj] {
			return
		}
		if fc.hasOwnershipComment(call) {
			return
		}
		fc.pass.Reportf(call.Pos(),
			"Protect(%s) has no matching Unprotect in this function and the pinned value does not escape; "+
				"unpin it, or document the transfer with an 'ownership:' comment", exprText(arg))
	})
}

// hasOwnershipComment reports whether the line of the call or the line above
// carries a comment containing "ownership:".
func (fc *funcCheck) hasOwnershipComment(n ast.Node) bool {
	line := fc.pass.Fset.Position(n.Pos()).Line
	for _, cg := range fc.file.Comments {
		for _, c := range cg.List {
			cl := fc.pass.Fset.Position(c.Pos()).Line
			if (cl == line || cl == line-1) && strings.Contains(c.Text, "ownership:") {
				return true
			}
		}
	}
	return false
}

// markIdents records every identifier appearing in e.
func markIdents(info *types.Info, e ast.Expr, set map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				set[obj] = true
			}
		}
		return true
	})
}

// exprText renders a small expression back to source-ish text for messages
// and matching.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "(…)"
	case *ast.IndexExpr:
		return exprText(e.X) + "[…]"
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	default:
		return "…"
	}
}
