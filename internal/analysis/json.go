package analysis

import (
	"encoding/json"
	"go/token"
	"io"
)

// JSONDiagnostic is the machine-readable form of one finding, as emitted by
// `cvlint -json`: one JSON object per line, so CI can annotate pull requests
// without parsing vet's human-oriented format. Suppressed findings are
// included (suppressed=true) — an auditor can see what the directives hide.
type JSONDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// WriteJSON encodes diagnostics one per line in position order (the order
// Run/RunWithFacts already established).
func WriteJSON(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		jd := JSONDiagnostic{
			File:       p.Filename,
			Line:       p.Line,
			Col:        p.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}
