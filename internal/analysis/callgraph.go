package analysis

// Package-local call graph.
//
// The interprocedural analyzers (kernelowner, ackorder, lockorder, and the
// summary passes of tempmark/kernelmix) need to know which functions a
// function calls. Within a package that is a syntactic question the AST
// answers precisely for static calls; across packages the callee is only a
// *types.Func, and its behavior arrives as a fact (see facts.go). Dynamic
// calls — through function values, interface methods, or closures passed as
// arguments — have no static callee and are deliberately not modeled: every
// analyzer built on this graph treats an unresolved call as "unknown" and
// stays silent rather than guessing.

import (
	"go/ast"
	"go/types"
	"strings"
)

// OwnerDirective is the comment prefix of the goroutine-ownership annotation.
//
// Grammar (one per function, in the doc comment):
//
//	//cv:owner worker    entry point of (or reachable only from) the single
//	                     kernel-owning goroutine: the write-worker loop or
//	                     the boot path that runs before the worker starts.
//	//cv:owner any       entry point that may run on any goroutine (HTTP
//	                     handlers, the follower tail loop, replica readers);
//	                     must stay read-only with respect to the primary
//	                     kernel and checker.
//
// kernelowner seeds its reachability check from these annotations and flags
// any other value as malformed.
const OwnerDirective = "//cv:owner"

// A CallGraph indexes the function declarations of one package and the
// static calls between them.
type CallGraph struct {
	// Funcs lists the package's function declarations in file order.
	Funcs []*FuncNode
	// ByObj maps a declared function's object to its node.
	ByObj map[*types.Func]*FuncNode
}

// A FuncNode is one declared function or method.
type FuncNode struct {
	Decl  *ast.FuncDecl
	Obj   *types.Func
	Owner string // "" when unannotated, else the //cv:owner value
	// Calls lists every static call syntactically inside Decl (including
	// inside nested function literals) whose callee resolved to a named
	// function or method.
	Calls []CallSite
}

// A CallSite is one resolved static call.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
	// Local is the callee's node when it is declared in this package.
	Local *FuncNode
}

// BuildCallGraph constructs the call graph of the package under analysis.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{ByObj: map[*types.Func]*FuncNode{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{Decl: fd, Obj: obj, Owner: ownerOf(fd)}
			g.Funcs = append(g.Funcs, n)
			g.ByObj[obj] = n
		}
	}
	for _, n := range g.Funcs {
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			n.Calls = append(n.Calls, CallSite{Call: call, Callee: callee, Local: g.ByObj[callee]})
			return true
		})
	}
	return g
}

// StaticCallee resolves a call expression to the named function or method it
// statically invokes, or nil for dynamic calls, conversions and builtins.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ownerOf extracts the //cv:owner value from a declaration's doc comment.
func ownerOf(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, OwnerDirective) {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, OwnerDirective))
		}
	}
	return ""
}

// CalleeParams returns the callee's receiver-unified parameter variables:
// element 0 is the receiver for methods, then the ordinary parameters.
func CalleeParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// CallArgs returns the receiver-unified argument expressions of a call to
// callee: for a method invoked through a value receiver expression, element
// 0 is that receiver expression, aligning indices with CalleeParams. For
// method expressions (T.M(recv, ...)) the call's own arguments are already
// aligned.
func CallArgs(info *types.Info, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return call.Args
	}
	if sig.Recv() == nil {
		return call.Args
	}
	if sel, ok := Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return call.Args
}

// FuncParams returns the receiver-unified parameter objects of a declared
// function, resolved through the type checker so they compare equal to the
// objects behind identifier uses in the body.
func FuncParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return CalleeParams(obj)
}
