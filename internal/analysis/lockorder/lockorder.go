// Package lockorder detects cycles in the global mutex-acquisition order.
//
// The repository's locks are individually simple — guard a map, a channel
// swap, a manifest — but deadlock is a property of their composition: if one
// code path acquires A then B while another acquires B then A, the paths can
// block each other forever, and nothing in either function looks wrong in
// review. The established prevention is a global acquisition order; this
// analyzer infers the observed order and flags any pair of acquisitions that
// closes a cycle.
//
// A lock is identified by its declaration site — "pkg.Type.field" for a
// mutex field, "pkg.var" for a package-level mutex; function-local mutexes
// cannot participate in cross-function cycles and are ignored. Within each
// function the analyzer tracks the held set in syntactic order: Lock/RLock
// pushes, Unlock/RUnlock releases, a deferred unlock keeps the lock held to
// the end of the function (the dominant lock-then-defer idiom). Acquiring B
// with A held records the edge A → B; calling a function whose summary says
// it acquires B records the same edge. Summaries (the lock IDs a function
// may acquire, transitively) propagate through the package-local call graph
// and across packages via the vet fact protocol; each package also exports
// its merged edge set under the "#edges" key, so importers test their local
// edges against the order observed everywhere below them.
//
// Function literals run on their own goroutine or their own call chain
// (pool.Do callbacks, go statements), so their bodies are scanned with an
// empty held set; their acquisitions still count toward the enclosing
// function's summary, since calling it is what triggers them.
package lockorder

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "checks mutex acquisitions against the globally observed acquisition order " +
		"and flags pairs that close a cycle (a latent deadlock)",
	Run: run,
}

// Fact is a function's lock summary: the lock IDs it may acquire, directly
// or transitively.
type Fact struct {
	Acquires []string `json:"acquires,omitempty"`
}

// edgesKey is the package-level fact key carrying the acquisition edges.
// FuncKey never produces a "#" prefix, so the namespace cannot collide.
const edgesKey = "#edges"

// EdgesFact is the package-level edge set: each element is one observed
// "held → acquired" pair.
type EdgesFact struct {
	Edges [][2]string `json:"edges,omitempty"`
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	info := pass.TypesInfo

	// Pass 1: direct acquisitions, then the transitive closure over calls.
	acquires := make(map[*analysis.FuncNode]map[string]bool, len(g.Funcs))
	for _, n := range g.Funcs {
		set := map[string]bool{}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				if id, op := lockCall(pass, info, call); op == opAcquire && id != "" {
					set[id] = true
				}
			}
			return true
		})
		acquires[n] = set
	}
	calleeAcquires := func(fn *types.Func) []string {
		if local, ok := g.ByObj[fn]; ok {
			return keys(acquires[local])
		}
		var imported Fact
		if pass.ImportObjectFact(fn, &imported) {
			return imported.Acquires
		}
		return nil
	}
	for changed, rounds := true, 0; changed && rounds <= len(g.Funcs)+1; rounds++ {
		changed = false
		for _, n := range g.Funcs {
			set := acquires[n]
			for _, cs := range n.Calls {
				for _, id := range calleeAcquires(cs.Callee) {
					if !set[id] {
						set[id], changed = true, true
					}
				}
			}
		}
	}

	// Pass 2: held-set walk collecting edges.
	ec := &edgeCollector{
		pass: pass, info: info,
		calleeAcquires: calleeAcquires,
		edges:          map[[2]string]token.Pos{},
	}
	for _, n := range g.Funcs {
		ec.scan(n.Decl.Body, nil)
	}

	// Merge the edges observed in imported packages; re-exporting the union
	// keeps the order visible transitively.
	graph := map[string][]string{}
	all := map[[2]string]bool{}
	addEdge := func(from, to string) {
		if !all[[2]string{from, to}] {
			all[[2]string{from, to}] = true
			graph[from] = append(graph[from], to)
		}
	}
	for e := range ec.edges {
		addEdge(e[0], e[1])
	}
	pass.EachImportedFact(func(_, key string, raw json.RawMessage) {
		if key != edgesKey {
			return
		}
		var ef EdgesFact
		if json.Unmarshal(raw, &ef) == nil {
			for _, e := range ef.Edges {
				addEdge(e[0], e[1])
			}
		}
	})

	// Report each local edge whose reverse direction is already reachable.
	local := make([][2]string, 0, len(ec.edges))
	for e := range ec.edges {
		local = append(local, e)
	}
	sort.Slice(local, func(i, j int) bool { return ec.edges[local[i]] < ec.edges[local[j]] })
	for _, e := range local {
		from, to := e[0], e[1]
		if path := findPath(graph, to, from); path != nil {
			pass.Reportf(ec.edges[e],
				"acquiring %s while holding %s creates a cycle in the global mutex order (%s)",
				to, from, strings.Join(append(path, to), " → "))
		}
	}

	// Export facts: per-function summaries and the merged edge set.
	for _, n := range g.Funcs {
		if set := acquires[n]; len(set) > 0 {
			if err := pass.ExportFact(analysis.FuncKey(n.Obj), &Fact{Acquires: keys(set)}); err != nil {
				return err
			}
		}
	}
	if len(all) > 0 {
		ef := &EdgesFact{}
		for e := range all {
			ef.Edges = append(ef.Edges, e)
		}
		sort.Slice(ef.Edges, func(i, j int) bool {
			if ef.Edges[i][0] != ef.Edges[j][0] {
				return ef.Edges[i][0] < ef.Edges[j][0]
			}
			return ef.Edges[i][1] < ef.Edges[j][1]
		})
		if err := pass.ExportFact(edgesKey, ef); err != nil {
			return err
		}
	}
	return nil
}

// edgeCollector walks bodies in syntactic order, maintaining the held list.
type edgeCollector struct {
	pass           *analysis.Pass
	info           *types.Info
	calleeAcquires func(*types.Func) []string
	edges          map[[2]string]token.Pos // first observation wins
}

// scan walks one body with the given held prefix (nil for an entry body).
func (ec *edgeCollector) scan(body ast.Node, held []string) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.DeferStmt:
			// Deferred unlocks run at return: the lock stays held for the
			// rest of the function. Other deferred work is out of path order.
			return false
		case *ast.FuncLit:
			ec.scan(x.Body, nil)
			return false
		case *ast.GoStmt:
			// The goroutine does not inherit this path's held locks.
			ec.scan(x.Call, nil)
			return false
		case *ast.CallExpr:
			if id, op := lockCall(ec.pass, ec.info, x); id != "" {
				switch op {
				case opAcquire:
					for _, h := range held {
						if h != id {
							ec.edge(h, id, x.Pos())
						}
					}
					held = append(held, id)
				case opRelease:
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == id {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if callee := analysis.StaticCallee(ec.info, x); callee != nil {
				for _, a := range ec.calleeAcquires(callee) {
					for _, h := range held {
						if h != a {
							ec.edge(h, a, x.Pos())
						}
					}
				}
			}
		}
		return true
	})
}

func (ec *edgeCollector) edge(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if _, ok := ec.edges[key]; !ok {
		ec.edges[key] = pos
	}
}

const (
	opNone = iota
	opAcquire
	opRelease
)

// lockCall classifies a call as a mutex acquire/release and resolves the
// lock's identity; id is "" for local or unresolvable mutexes.
func lockCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) (id string, op int) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", opNone
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return "", opNone
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isSyncMutex(tv.Type) {
		return "", opNone
	}
	return lockID(info, sel.X), op
}

// isSyncMutex reports whether t (or its pointee) is sync.Mutex or
// sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockID names a mutex by its declaration site: "pkg.Type.field" for a
// field, "pkg.var" for a package-level mutex, "" otherwise.
func lockID(info *types.Info, e ast.Expr) string {
	switch e := analysis.Unparen(e).(type) {
	case *ast.SelectorExpr:
		t := info.Types[e.X].Type
		if t == nil {
			return ""
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

// findPath returns the node sequence from from to to (inclusive), or nil.
func findPath(graph map[string][]string, from, to string) []string {
	parent := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == to {
			var path []string
			for n := to; ; n = parent[n] {
				path = append([]string{n}, path...)
				if n == from {
					return path
				}
			}
		}
		for _, next := range graph[cur] {
			if _, seen := parent[next]; !seen {
				parent[next] = cur
				queue = append(queue, next)
			}
		}
	}
	return nil
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
