package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", lockorder.Analyzer, "lockorders")
}
