package unitchecker

// Error-path coverage for the vet-tool protocol driver: the happy path is
// exercised end to end by the analyzers' analysistest suites and by CI's
// `go vet -vettool=cvlint` run, but the failure modes — a config whose
// export data is missing, an import map that cannot resolve, an analyzer
// selection naming nothing — only ever fire in the field, which is exactly
// where they must not be discovered first.

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeUnitFile puts one Go file for a unit under t's temp dir.
func writeUnitFile(t *testing.T, src string) string {
	t.Helper()
	name := filepath.Join(t.TempDir(), "unit.go")
	if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
		t.Fatalf("writing unit file: %v", err)
	}
	return name
}

const importingSrc = `package p

import "fmt"

var _ = fmt.Sprintf
`

// TestAnalyzeMissingExportData: the import map resolves the path but no
// export-data file was supplied for it, as happens when a stale build cache
// hands vet an incomplete PackageFile map.
func TestAnalyzeMissingExportData(t *testing.T) {
	cfg := &Config{
		ID:          "p",
		Compiler:    "gc",
		ImportPath:  "p",
		GoFiles:     []string{writeUnitFile(t, importingSrc)},
		ImportMap:   map[string]string{"fmt": "fmt"},
		PackageFile: map[string]string{}, // nothing for "fmt"
	}
	_, _, err := analyze(token.NewFileSet(), cfg, nil)
	if err == nil {
		t.Fatal("analyze succeeded without export data for an import")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Errorf("error should name the missing export data, got: %v", err)
	}
}

// TestAnalyzeMalformedImportMap: the unit imports a path the config's
// ImportMap does not mention at all.
func TestAnalyzeMalformedImportMap(t *testing.T) {
	cfg := &Config{
		ID:         "p",
		Compiler:   "gc",
		ImportPath: "p",
		GoFiles:    []string{writeUnitFile(t, importingSrc)},
		ImportMap:  map[string]string{}, // "fmt" unmapped
	}
	_, _, err := analyze(token.NewFileSet(), cfg, nil)
	if err == nil {
		t.Fatal("analyze succeeded with an import missing from ImportMap")
	}
	if !strings.Contains(err.Error(), "can't resolve import") {
		t.Errorf("error should name the unresolvable import, got: %v", err)
	}
}

// TestReadConfigErrors: config files that are unreadable, not JSON, or
// describe a unit with no Go files are all rejected before analysis.
func TestReadConfigErrors(t *testing.T) {
	if _, err := readConfig(filepath.Join(t.TempDir(), "absent.cfg")); err == nil {
		t.Error("readConfig accepted a nonexistent file")
	}

	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readConfig(bad); err == nil || !strings.Contains(err.Error(), "cannot decode vet config") {
		t.Errorf("malformed JSON config: got %v", err)
	}

	empty := filepath.Join(t.TempDir(), "empty.cfg")
	if err := os.WriteFile(empty, []byte(`{"ImportPath":"q"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readConfig(empty); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("config without Go files: got %v", err)
	}
}

// TestSelect: the CVLINT_ANALYZERS filter keeps known names and fails loudly
// on unknown or empty selections.
func TestSelect(t *testing.T) {
	suite := []*analysis.Analyzer{
		{Name: "alpha"}, {Name: "beta"},
	}
	got, err := Select(suite, "beta, alpha")
	if err != nil || len(got) != 2 || got[0].Name != "beta" || got[1].Name != "alpha" {
		t.Errorf("Select(beta, alpha): got %v, %v", got, err)
	}
	if _, err := Select(suite, "gamma"); err == nil || !strings.Contains(err.Error(), `unknown analyzer "gamma"`) {
		t.Errorf("unknown analyzer: got %v", err)
	}
	if _, err := Select(suite, ", ,"); err == nil || !strings.Contains(err.Error(), "no analyzers selected") {
		t.Errorf("empty selection: got %v", err)
	}
}

// TestFactsRoundTripThroughVetx: what a dependency-mode run writes to
// VetxOutput comes back intact through readImportedFacts.
func TestFactsRoundTripThroughVetx(t *testing.T) {
	facts := analysis.PackageFacts{
		"kernelowner": {"(*Server).run": []byte(`{"global":true}`)},
	}
	out := filepath.Join(t.TempDir(), "dep.vetx")
	writeVetx(&Config{VetxOutput: out}, facts)

	cfg := &Config{PackageVetx: map[string]string{"repro/internal/dep": out}}
	imported, err := readImportedFacts(cfg)
	if err != nil {
		t.Fatalf("readImportedFacts: %v", err)
	}
	raw, ok := imported["repro/internal/dep"]["kernelowner"]["(*Server).run"]
	if !ok || string(raw) != `{"global":true}` {
		t.Fatalf("fact did not round-trip: %v", imported)
	}

	// An empty vetx (pre-facts binaries, std units) reads as no facts.
	empty := filepath.Join(t.TempDir(), "empty.vetx")
	writeVetx(&Config{VetxOutput: empty}, nil)
	imported, err = readImportedFacts(&Config{PackageVetx: map[string]string{"d": empty}})
	if err != nil || len(imported) != 0 {
		t.Fatalf("empty vetx: got %v, %v", imported, err)
	}

	// A missing vetx file is tolerated; a corrupt one is not.
	imported, err = readImportedFacts(&Config{PackageVetx: map[string]string{"d": filepath.Join(t.TempDir(), "gone.vetx")}})
	if err != nil || len(imported) != 0 {
		t.Fatalf("missing vetx: got %v, %v", imported, err)
	}
	corrupt := filepath.Join(t.TempDir(), "corrupt.vetx")
	if err := os.WriteFile(corrupt, []byte("{{{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readImportedFacts(&Config{PackageVetx: map[string]string{"d": corrupt}}); err == nil {
		t.Error("corrupt vetx file was accepted")
	}
}
