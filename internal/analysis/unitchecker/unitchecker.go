// Package unitchecker implements the command-line protocol that `go vet
// -vettool=...` requires of an analysis tool, on top of the standard library
// only. It is the build-system driver for cmd/cvlint.
//
// The protocol (the same one golang.org/x/tools/go/analysis/unitchecker
// speaks, reimplemented here because this module vendors nothing):
//
//	cvlint -V=full     print a version line for the build cache
//	cvlint -flags      describe supported flags in JSON
//	cvlint foo.cfg     analyze the compilation unit described by foo.cfg
//
// The .cfg file is JSON written by cmd/go (see buildVetConfig in
// cmd/go/internal/work): it names the unit's Go files and maps each import
// path to the export-data file the compiler already produced, so the unit is
// type-checked here without re-compiling its dependencies.
//
// Facts ride the same protocol: cmd/go runs the tool over each dependency
// first (VetxOnly mode), keeps the facts file the tool writes to VetxOutput,
// and hands the collected files to dependent units through PackageVetx. The
// checker therefore analyzes dependency units for real (discarding their
// diagnostics — those were, or will be, reported when the dependency itself
// is vetted) so the function summaries of internal/analysis/facts.go cross
// package boundaries. Standard-library units are skipped outright: the
// cvlint analyzers neither report on nor summarize std code, and skipping
// keeps `go vet -vettool=cvlint std-importing-package` cheap.
//
// Two environment variables tunnel options through cmd/go, which forwards no
// tool flags:
//
//	CVLINT_JSON=1            emit diagnostics as JSON lines (analysis.WriteJSON)
//	CVLINT_ANALYZERS=a,b     run only the named analyzers (unknown names fail)
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors the JSON compilation-unit description produced by cmd/go
// for vet tools. Field names must match; unknown fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vet-tool protocol for the given analyzers and exits.
// It returns only on usage errors.
func Main(progname string, analyzers []*analysis.Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(progname)
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags; an empty JSON list tells cmd/go so.
			fmt.Println("[]")
			os.Exit(0)
		case filepath.Ext(args[0]) == ".cfg":
			runUnit(args[0], analyzers)
			os.Exit(0)
		}
	}
	fmt.Fprintf(os.Stderr, "usage: %s [-V=full | -flags | unit.cfg]\n", progname)
	os.Exit(2)
}

// printVersion emits the line cmd/go's build cache requires: for a "devel"
// tool the last field must be a buildID, which we derive from the
// executable's own content hash so recompiled checkers invalidate cached
// vet results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:16])
}

// runUnit analyzes one compilation unit and exits non-zero when unsuppressed
// diagnostics were reported (the convention go vet expects from a vet tool).
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fatal(err)
	}
	if sel := os.Getenv("CVLINT_ANALYZERS"); sel != "" {
		analyzers, err = Select(analyzers, sel)
		if err != nil {
			fatal(err)
		}
	}
	if cfg.Standard[cfg.ImportPath] || isStdUnit(cfg) {
		// The suite's contracts only cover this module's declarations;
		// skipping std units keeps dependency-mode runs instant and, more
		// importantly, keeps std-internal code from exporting facts (net/http
		// calling its own WriteHeader must not read as an acknowledgment).
		writeVetx(cfg, nil)
		return
	}
	fset := token.NewFileSet()
	diags, facts, err := analyze(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	writeVetx(cfg, facts)
	if cfg.VetxOnly {
		// Dependency-mode run: cmd/go only wanted the facts. Diagnostics
		// belong to the run that names this unit directly.
		return
	}
	live := 0
	for _, d := range diags {
		if !d.Suppressed {
			live++
		}
	}
	if os.Getenv("CVLINT_JSON") != "" {
		if err := analysis.WriteJSON(os.Stderr, fset, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if live > 0 {
		os.Exit(1)
	}
}

// isStdUnit reports whether the unit itself is a standard-library package.
// cmd/go's Standard map only covers the unit's dependencies, so the unit is
// recognized by its source living under GOROOT/src.
func isStdUnit(cfg *Config) bool {
	if len(cfg.GoFiles) == 0 {
		return false
	}
	root := filepath.Join(build.Default.GOROOT, "src") + string(filepath.Separator)
	return strings.HasPrefix(cfg.GoFiles[0], root)
}

// Select filters the suite down to a comma-separated analyzer list, failing
// on names the suite does not contain.
func Select(all []*analysis.Analyzer, csv string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, names(all))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected from %q", csv)
	}
	return out, nil
}

func names(all []*analysis.Analyzer) string {
	var ns []string
	for _, a := range all {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}

// writeVetx persists the unit's exported facts where cmd/go asked for them.
// An empty file (no facts) is valid and keeps the action cacheable.
func writeVetx(cfg *Config, facts analysis.PackageFacts) {
	if cfg.VetxOutput == "" {
		return
	}
	data, err := analysis.EncodeFacts(facts)
	if err != nil {
		fatal(err)
	}
	_ = os.WriteFile(cfg.VetxOutput, data, 0o666)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cvlint: %v\n", err)
	os.Exit(1)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no Go files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit, then runs the analyzers with the
// dependency facts cmd/go collected, returning diagnostics (suppressed ones
// included, marked) and the facts this unit exports.
func analyze(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, analysis.PackageFacts, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	imp := makeImporter(fset, cfg)
	tconf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	isStd := func(path string) bool { return cfg.Standard[path] }
	imported, err := readImportedFacts(cfg)
	if err != nil {
		return nil, nil, err
	}
	return analysis.RunWithFacts(fset, files, pkg, info, isStd, imported, analyzers)
}

// readImportedFacts loads the facts files of the unit's dependencies. A
// missing or empty file means "no facts" (older binaries and std units write
// empty ones); a present-but-corrupt file is an error, since silently losing
// facts would un-verify interprocedural contracts.
func readImportedFacts(cfg *Config) (map[string]analysis.PackageFacts, error) {
	if len(cfg.PackageVetx) == 0 {
		return nil, nil
	}
	imported := make(map[string]analysis.PackageFacts, len(cfg.PackageVetx))
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("reading facts of %q: %v", path, err)
		}
		pf, err := analysis.DecodeFacts(data)
		if err != nil {
			return nil, fmt.Errorf("facts of %q: %v", path, err)
		}
		if len(pf) > 0 {
			imported[path] = pf
		}
	}
	return imported, nil
}

// makeImporter resolves imports through the export-data files cmd/go listed
// in the config, honoring the vendoring map.
func makeImporter(fset *token.FileSet, cfg *Config) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
