// Package unitchecker implements the command-line protocol that `go vet
// -vettool=...` requires of an analysis tool, on top of the standard library
// only. It is the build-system driver for cmd/cvlint.
//
// The protocol (the same one golang.org/x/tools/go/analysis/unitchecker
// speaks, reimplemented here because this module vendors nothing):
//
//	cvlint -V=full     print a version line for the build cache
//	cvlint -flags      describe supported flags in JSON
//	cvlint foo.cfg     analyze the compilation unit described by foo.cfg
//
// The .cfg file is JSON written by cmd/go (see buildVetConfig in
// cmd/go/internal/work): it names the unit's Go files and maps each import
// path to the export-data file the compiler already produced, so the unit is
// type-checked here without re-compiling its dependencies.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// Config mirrors the JSON compilation-unit description produced by cmd/go
// for vet tools. Field names must match; unknown fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vet-tool protocol for the given analyzers and exits.
// It returns only on usage errors.
func Main(progname string, analyzers []*analysis.Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(progname)
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags; an empty JSON list tells cmd/go so.
			fmt.Println("[]")
			os.Exit(0)
		case filepath.Ext(args[0]) == ".cfg":
			runUnit(args[0], analyzers)
			os.Exit(0)
		}
	}
	fmt.Fprintf(os.Stderr, "usage: %s [-V=full | -flags | unit.cfg]\n", progname)
	os.Exit(2)
}

// printVersion emits the line cmd/go's build cache requires: for a "devel"
// tool the last field must be a buildID, which we derive from the
// executable's own content hash so recompiled checkers invalidate cached
// vet results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil)[:16])
}

// runUnit analyzes one compilation unit and exits non-zero when diagnostics
// were reported (the convention go vet expects from a vet tool).
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fatal(err)
	}
	if cfg.VetxOnly {
		// Dependency-mode run: cmd/go only wants "facts" for downstream
		// units. This suite has none, so succeed without analyzing; the
		// empty vetx file keeps the action cacheable.
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
		return
	}
	fset := token.NewFileSet()
	diags, err := analyze(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	if cfg.VetxOutput != "" {
		_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cvlint: %v\n", err)
	os.Exit(1)
}

func readConfig(filename string) (*Config, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no Go files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// analyze parses and type-checks the unit, then runs the analyzers.
func analyze(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := makeImporter(fset, cfg)
	tconf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	isStd := func(path string) bool { return cfg.Standard[path] }
	return analysis.Run(fset, files, pkg, info, isStd, analyzers)
}

// makeImporter resolves imports through the export-data files cmd/go listed
// in the config, honoring the vendoring map.
func makeImporter(fset *token.FileSet, cfg *Config) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
