package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared type predicates for the cvlint analyzers. The analyzers match the
// bdd package by package name and declaration shape rather than by import
// path, so the same analyzer binary works against both the real
// repro/internal/bdd and any fixture package that re-exports it.

// IsKernelPtr reports whether t is *bdd.Kernel.
func IsKernelPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(ptr.Elem(), "bdd", "Kernel")
}

// IsRef reports whether t is bdd.Ref.
func IsRef(t types.Type) bool { return isNamed(t, "bdd", "Ref") }

// IsRefSlice reports whether t is []bdd.Ref.
func IsRefSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && IsRef(s.Elem())
}

func isNamed(t types.Type, pkgName, typeName string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// IsCheckerPtr reports whether t is *core.Checker.
func IsCheckerPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(ptr.Elem(), "core", "Checker")
}

// IsStorePtr reports whether t is *store.Store (the durability store).
func IsStorePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(ptr.Elem(), "store", "Store")
}

// IsPoolPtr reports whether t is *replica.Pool (the replicated read pool).
func IsPoolPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(ptr.Elem(), "replica", "Pool")
}

// CheckerMethod returns (receiver expression, method name, true) when call is
// a method call on a *core.Checker value.
func CheckerMethod(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !IsCheckerPtr(tv.Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// KernelMethod returns (receiver expression, method name, true) when call is
// a method call on a *bdd.Kernel value.
func KernelMethod(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !IsKernelPtr(tv.Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// IsErrorType reports whether t is the built-in error interface (the type of
// every errors.New sentinel).
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// SentinelError reports whether obj is a package-level error variable with a
// sentinel-style name (ErrX) declared outside the standard library. Such
// values arrive at call sites wrapped (fmt.Errorf("%w", ...)), so direct
// comparison misses them; errors.Is is required.
func SentinelError(pass *Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false // not package-level
	}
	name := v.Name()
	if !strings.HasPrefix(name, "Err") || len(name) == len("Err") {
		return false
	}
	if c := name[len("Err")]; c < 'A' || c > 'Z' {
		return false
	}
	if !IsErrorType(v.Type()) {
		return false
	}
	// Standard-library sentinels (io.EOF, sql.ErrNoRows, ...) are documented
	// as never wrapped by their own packages; the repository's contracts
	// only cover its own sentinels, which do arrive wrapped.
	return !pass.Stdlib(v.Pkg().Path())
}

// ObjectOf resolves an identifier or the Sel of a selector to its object.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	case *ast.ParenExpr:
		return ObjectOf(info, e.X)
	}
	return nil
}
