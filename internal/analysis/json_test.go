package analysis

import (
	"bytes"
	"encoding/json"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestWriteJSON checks the -json encoder: one object per line, position
// fields resolved through the FileSet, suppressed findings retained with the
// flag set.
func TestWriteJSON(t *testing.T) {
	fset := token.NewFileSet()
	const src = "package p\n\nvar x = 1\nvar y = 2\n"
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags := []Diagnostic{
		{Pos: f.Decls[0].Pos(), Analyzer: "testcheck", Message: "first finding"},
		{Pos: f.Decls[1].Pos(), Analyzer: "other", Message: "second finding", Suppressed: true},
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, fset, diags); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}

	var got []JSONDiagnostic
	for i, line := range lines {
		var jd JSONDiagnostic
		if err := json.Unmarshal([]byte(line), &jd); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		got = append(got, jd)
	}
	want := []JSONDiagnostic{
		{File: "p.go", Line: 3, Col: 1, Analyzer: "testcheck", Message: "first finding", Suppressed: false},
		{File: "p.go", Line: 4, Col: 1, Analyzer: "other", Message: "second finding", Suppressed: true},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWriteJSONEmpty: no diagnostics encodes to no output, not "null".
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, token.NewFileSet(), nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty diagnostics produced output %q", buf.String())
	}
}
