package kernelmix_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/kernelmix"
)

func TestKernelMix(t *testing.T) {
	analysistest.Run(t, "../testdata", kernelmix.Analyzer, "kernelmixes")
}
