// Package kernelmix flags BDD handles crossing kernel boundaries.
//
// A bdd.Ref is a plain int32 index into the node table of the kernel that
// minted it; handed to a different kernel it silently denotes an unrelated
// node (or walks off the table). Since the replica read pool (PR 2) gave the
// process several kernels per request path — a primary plus N replicas, with
// bdd.CopyTo as the only sanctioned bridge — mixing them up is a live
// hazard that the type system cannot see: every Ref has the same type.
//
// The analyzer runs a per-function forward dataflow in statement order: each
// Ref-typed local is tagged with the kernel expression that minted it (a
// direct kernel method call, a copy of a tagged value, or an element of a
// CopyTo result slice, which is minted by the *destination* kernel). A
// tagged Ref passed to a method of a provably different kernel is reported.
// Two kernel expressions are "provably different" only when both normalize
// to stable access paths (identifiers, field chains, call chains without
// arguments) with distinct spellings rooted at distinct objects — unknown or
// aliasing-prone receivers stay silent, trading recall for a near-zero
// false-positive rate.
//
// The dataflow crosses function boundaries through summaries. Each declared
// function taking a kernel parameter is summarized to a fixed point over the
// package-local call graph and exported as a fact: ReturnsParam records that
// the function's Ref result is minted by one of its kernel parameters, so
// the result is tagged at the call site from the corresponding argument;
// RefParams records that a Ref parameter reaches methods of one of the
// kernel parameters, so a call site can check its arguments' origins against
// the pairing without seeing the callee's body.
package kernelmix

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the kernelmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "kernelmix",
	Doc: "flags bdd.Ref values minted by one kernel and passed to a method of another " +
		"without going through CopyTo",
	Run: run,
}

// Fact summarizes how a function's Refs relate to its kernel parameters.
// Parameter indices are receiver-unified: for methods, index 0 is the
// receiver and ordinary parameters start at 1.
type Fact struct {
	// ReturnsParam is 1 + the index of the kernel parameter that mints the
	// function's Ref result on every return; 0 when no single parameter
	// provably does.
	ReturnsParam int `json:"returns_param,omitempty"`
	// RefParams pairs the index of a Ref-typed parameter with the index of
	// the kernel parameter whose methods it reaches inside the body.
	RefParams [][2]int `json:"ref_params,omitempty"`
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	mi := &mixIndex{pass: pass, local: map[*types.Func]*Fact{}}
	// Summaries consult each other (a wrapper around a minting helper also
	// mints), so iterate to a fixed point; facts only gain information.
	for changed, rounds := true, 0; changed && rounds <= len(g.Funcs)+1; rounds++ {
		changed = false
		for _, n := range g.Funcs {
			f := summarize(pass, mi, n)
			if !factEqual(f, mi.local[n.Obj]) {
				mi.local[n.Obj], changed = f, true
			}
		}
	}
	for _, n := range g.Funcs {
		if f := mi.local[n.Obj]; f != nil && (f.ReturnsParam != 0 || len(f.RefParams) > 0) {
			if err := pass.ExportFact(analysis.FuncKey(n.Obj), f); err != nil {
				return err
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				newTracker(pass, mi).walk(body)
			}
			return true
		})
	}
	return nil
}

// mixIndex resolves callee summaries: the local fixpoint for same-package
// functions, imported facts for everything else.
type mixIndex struct {
	pass  *analysis.Pass
	local map[*types.Func]*Fact
}

func (mi *mixIndex) fact(fn *types.Func) *Fact {
	if f, ok := mi.local[fn]; ok {
		return f
	}
	var f Fact
	if mi.pass.ImportObjectFact(fn, &f) {
		return &f
	}
	return nil
}

func factEqual(a, b *Fact) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.ReturnsParam != b.ReturnsParam || len(a.RefParams) != len(b.RefParams) {
		return false
	}
	for i := range a.RefParams {
		if a.RefParams[i] != b.RefParams[i] {
			return false
		}
	}
	return true
}

// summary is the in-progress fact of the function being summarized.
type summary struct {
	kernelIdx map[types.Object]int // kernel-typed parameters → unified index
	refIdx    map[types.Object]int // Ref-typed parameters → unified index
	pairs     map[[2]int]bool      // observed (ref param, kernel param) uses
	refResult int                  // index of the Ref result in the results tuple, or -1
	retIdx    int                  // minting kernel param (-1 unresolved, -2 conflicting)
}

// summarize walks one declared function in summary mode: Ref parameters are
// seeded as tagged values, and uses against kernel parameters are collected
// instead of reported.
func summarize(pass *analysis.Pass, mi *mixIndex, n *analysis.FuncNode) *Fact {
	sum := &summary{
		kernelIdx: map[types.Object]int{},
		refIdx:    map[types.Object]int{},
		pairs:     map[[2]int]bool{},
		refResult: -1,
		retIdx:    -1,
	}
	tr := newTracker(pass, mi)
	tr.sum = sum
	for i, p := range analysis.CalleeParams(n.Obj) {
		switch {
		case analysis.IsKernelPtr(p.Type()):
			sum.kernelIdx[p] = i
		case analysis.IsRef(p.Type()):
			sum.refIdx[p] = i
			tr.refOrigin[p] = origin{key: "#param:" + p.Name(), obj: p}
		}
	}
	if len(sum.kernelIdx) == 0 {
		return &Fact{}
	}
	if sig, ok := n.Obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Results().Len(); i++ {
			if analysis.IsRef(sig.Results().At(i).Type()) {
				if sum.refResult >= 0 {
					sum.refResult = -1 // more than one Ref result: give up
					break
				}
				sum.refResult = i
			}
		}
	}
	tr.walk(n.Decl.Body)
	f := &Fact{}
	if sum.retIdx >= 0 {
		f.ReturnsParam = sum.retIdx + 1
	}
	for p := range sum.pairs {
		f.RefParams = append(f.RefParams, p)
	}
	sort.Slice(f.RefParams, func(i, j int) bool {
		if f.RefParams[i][0] != f.RefParams[j][0] {
			return f.RefParams[i][0] < f.RefParams[j][0]
		}
		return f.RefParams[i][1] < f.RefParams[j][1]
	})
	return f
}

// origin identifies the kernel an expression was minted by.
type origin struct {
	key string // normalized kernel access path ("k", "s.kernel", "p.Kernel()")
	obj types.Object
}

type tracker struct {
	pass *analysis.Pass
	mi   *mixIndex
	sum  *summary // non-nil in summary mode: collect, do not report
	// refOrigin tags Ref-typed locals; sliceOrigin tags []Ref locals whose
	// elements all come from one kernel (CopyTo results); kernelAlias maps
	// kernel-typed locals to the access path they alias (k := s.kernel), so
	// aliased spellings of one kernel are never reported against each other.
	refOrigin   map[types.Object]origin
	sliceOrigin map[types.Object]origin
	kernelAlias map[types.Object]origin
}

func newTracker(pass *analysis.Pass, mi *mixIndex) *tracker {
	return &tracker{
		pass:        pass,
		mi:          mi,
		refOrigin:   map[types.Object]origin{},
		sliceOrigin: map[types.Object]origin{},
		kernelAlias: map[types.Object]origin{},
	}
}

// walk runs the statement-order dataflow over one body: assignments update
// the tag maps, calls are checked (or collected), returns feed the summary.
// Nested function literals are walked by the caller as their own functions.
func (tr *tracker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			tr.assign(n)
		case *ast.CallExpr:
			tr.checkCall(n)
		case *ast.ReturnStmt:
			tr.ret(n)
		}
		return true
	})
}

func (tr *tracker) info() *types.Info { return tr.pass.TypesInfo }

// kernelKey normalizes a kernel-typed expression to a stable access path,
// resolving in-function aliases (k := s.kernel). The bool result is false
// for expressions that cannot be compared (calls with arguments, index
// expressions, arbitrary computation).
func (tr *tracker) kernelKey(e ast.Expr) (origin, bool) {
	info := tr.info()
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return origin{}, false
		}
		if o, ok := tr.kernelAlias[obj]; ok {
			return o, true
		}
		return origin{key: e.Name, obj: obj}, true
	case *ast.ParenExpr:
		return tr.kernelKey(e.X)
	case *ast.SelectorExpr:
		base, ok := tr.kernelKey(e.X)
		if !ok {
			return origin{}, false
		}
		return origin{key: base.key + "." + e.Sel.Name, obj: base.obj}, true
	case *ast.CallExpr:
		// Zero-argument accessor chains (store.Kernel(), p.Primary().Kernel())
		// are stable enough to compare by spelling.
		if len(e.Args) != 0 {
			return origin{}, false
		}
		base, ok := tr.kernelKey(e.Fun)
		if !ok {
			return origin{}, false
		}
		return origin{key: base.key + "()", obj: base.obj}, true
	}
	return origin{}, false
}

// paramKernel resolves e to one of the summarized function's kernel
// parameters, returning its unified index.
func (tr *tracker) paramKernel(e ast.Expr) (int, bool) {
	o, ok := tr.kernelKey(e)
	if !ok || tr.sum == nil {
		return 0, false
	}
	i, isParam := tr.sum.kernelIdx[o.obj]
	return i, isParam && o.key == o.obj.Name()
}

// exprOrigin computes the minting kernel of a Ref-typed expression, if known.
func (tr *tracker) exprOrigin(e ast.Expr) (origin, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if o, ok := tr.refOrigin[tr.info().ObjectOf(e)]; ok {
			return o, true
		}
	case *ast.ParenExpr:
		return tr.exprOrigin(e.X)
	case *ast.CallExpr:
		if recv, _, ok := analysis.KernelMethod(tr.info(), e); ok {
			if tv, ok := tr.info().Types[e]; ok && analysis.IsRef(tv.Type) {
				return tr.kernelKey(recv)
			}
			return origin{}, false
		}
		// A callee whose summary says "my Ref result is minted by kernel
		// parameter i" tags the result with the corresponding argument.
		if callee := analysis.StaticCallee(tr.info(), e); callee != nil {
			if f := tr.mi.fact(callee); f != nil && f.ReturnsParam > 0 {
				args := analysis.CallArgs(tr.info(), e, callee)
				if i := f.ReturnsParam - 1; i < len(args) {
					return tr.kernelKey(args[i])
				}
			}
		}
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if o, ok := tr.sliceOrigin[tr.info().ObjectOf(id)]; ok {
				return o, true
			}
		}
	}
	return origin{}, false
}

// assign propagates kernel tags through the statement.
func (tr *tracker) assign(as *ast.AssignStmt) {
	// adopted, err := src.CopyTo(dst, roots...): the result slice is minted
	// by dst — the one sanctioned way to move a Ref between kernels.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if _, name, isK := analysis.KernelMethod(tr.info(), call); isK && name == "CopyTo" && len(call.Args) >= 1 {
				if dst, ok := tr.kernelKey(call.Args[0]); ok && len(as.Lhs) >= 1 {
					if id, isID := as.Lhs[0].(*ast.Ident); isID {
						if obj := tr.info().ObjectOf(id); obj != nil {
							tr.sliceOrigin[obj] = dst
						}
					}
				}
				return
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := tr.info().ObjectOf(id)
		if obj == nil {
			continue
		}
		if tv, ok := tr.info().Types[as.Rhs[i]]; ok && analysis.IsKernelPtr(tv.Type) {
			// k := s.kernel — record the alias so both spellings compare equal.
			if o, ok := tr.kernelKey(as.Rhs[i]); ok {
				tr.kernelAlias[obj] = o
			} else {
				delete(tr.kernelAlias, obj)
			}
			continue
		}
		if o, ok := tr.exprOrigin(as.Rhs[i]); ok {
			tr.refOrigin[obj] = o
		} else {
			// Overwritten with something untracked: drop a stale tag.
			delete(tr.refOrigin, obj)
			delete(tr.sliceOrigin, obj)
		}
	}
}

// checkCall dispatches between direct kernel method calls and calls whose
// callee summary pairs Ref and kernel parameters.
func (tr *tracker) checkCall(call *ast.CallExpr) {
	if recv, name, ok := analysis.KernelMethod(tr.info(), call); ok {
		tr.checkKernelCall(call, recv, name)
		return
	}
	tr.checkForwardCall(call)
}

// checkKernelCall reports tagged Refs passed to a method of a different
// kernel; in summary mode it collects (ref param, kernel param) pairs.
func (tr *tracker) checkKernelCall(call *ast.CallExpr, recv ast.Expr, name string) {
	callee, ok := tr.kernelKey(recv)
	if !ok {
		return
	}
	if name == "CopyTo" {
		// Roots belong to the source (receiver) kernel; the destination
		// argument is a kernel, not a Ref. Both sides are exactly the
		// adoption bridge this analyzer pushes mixed flows toward.
		return
	}
	for _, a := range call.Args {
		if tv, ok := tr.info().Types[a]; !ok || !analysis.IsRef(tv.Type) {
			continue
		}
		o, known := tr.exprOrigin(a)
		if !known {
			continue
		}
		if tr.sum != nil {
			if ri, isRefParam := tr.sum.refIdx[o.obj]; isRefParam {
				if ki, isKParam := tr.paramKernel(recv); isKParam {
					tr.sum.pairs[[2]int{ri, ki}] = true
				}
			}
			continue
		}
		tr.compare(a, o, callee, "method "+name)
	}
}

// checkForwardCall checks a call against the callee's RefParams pairings:
// each paired (Ref, kernel) argument duo must agree on the minting kernel.
func (tr *tracker) checkForwardCall(call *ast.CallExpr) {
	callee := analysis.StaticCallee(tr.info(), call)
	if callee == nil {
		return
	}
	f := tr.mi.fact(callee)
	if f == nil || len(f.RefParams) == 0 {
		return
	}
	args := analysis.CallArgs(tr.info(), call, callee)
	for _, pr := range f.RefParams {
		ri, ki := pr[0], pr[1]
		if ri >= len(args) || ki >= len(args) {
			continue
		}
		o, known := tr.exprOrigin(args[ri])
		if !known {
			continue
		}
		if tr.sum != nil {
			// Forwarding our own parameters to a paired callee pairs them
			// here too; this is how RefParams propagates up wrappers.
			if myRef, isRefParam := tr.sum.refIdx[o.obj]; isRefParam {
				if myK, isKParam := tr.paramKernel(args[ki]); isKParam {
					tr.sum.pairs[[2]int{myRef, myK}] = true
				}
			}
			continue
		}
		c, ok := tr.kernelKey(args[ki])
		if !ok {
			continue
		}
		tr.compare(args[ri], o, c, callee.Name())
	}
}

// compare reports a provable origin mismatch between a Ref and the kernel
// consuming it.
func (tr *tracker) compare(at ast.Expr, o, callee origin, sink string) {
	if o.key == callee.key && o.obj == callee.obj {
		return
	}
	if o.obj == callee.obj && o.key != callee.key {
		// Same root object reached through different paths (k vs k.sub):
		// cannot prove distinctness.
		return
	}
	if o.obj != callee.obj && sameSpelling(o.key, callee.key) {
		return
	}
	tr.pass.Reportf(at.Pos(),
		"Ref minted by kernel %q passed to %s of kernel %q; cross-kernel handles are only valid through CopyTo",
		o.key, sink, callee.key)
}

// ret feeds the summary's ReturnsParam: every return's Ref result must be
// minted by the same kernel parameter.
func (tr *tracker) ret(s *ast.ReturnStmt) {
	if tr.sum == nil || tr.sum.refResult < 0 || tr.sum.retIdx == -2 {
		return
	}
	if len(s.Results) <= tr.sum.refResult {
		tr.sum.retIdx = -2 // bare or mismatched return: give up
		return
	}
	if o, known := tr.exprOrigin(s.Results[tr.sum.refResult]); known {
		if ki, isParam := tr.sum.kernelIdx[o.obj]; isParam && o.key == o.obj.Name() {
			if tr.sum.retIdx == -1 || tr.sum.retIdx == ki {
				tr.sum.retIdx = ki
				return
			}
		}
	}
	tr.sum.retIdx = -2
}

// sameSpelling guards against distinct objects that still denote the same
// kernel access path in different scopes (rare; stay silent).
func sameSpelling(a, b string) bool { return a == b }
