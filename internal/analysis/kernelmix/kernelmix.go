// Package kernelmix flags BDD handles crossing kernel boundaries.
//
// A bdd.Ref is a plain int32 index into the node table of the kernel that
// minted it; handed to a different kernel it silently denotes an unrelated
// node (or walks off the table). Since the replica read pool (PR 2) gave the
// process several kernels per request path — a primary plus N replicas, with
// bdd.CopyTo as the only sanctioned bridge — mixing them up is a live
// hazard that the type system cannot see: every Ref has the same type.
//
// The analyzer runs a per-function forward dataflow in statement order: each
// Ref-typed local is tagged with the kernel expression that minted it (a
// direct kernel method call, a copy of a tagged value, or an element of a
// CopyTo result slice, which is minted by the *destination* kernel). A
// tagged Ref passed to a method of a provably different kernel is reported.
// Two kernel expressions are "provably different" only when both normalize
// to stable access paths (identifiers, field chains, call chains without
// arguments) with distinct spellings rooted at distinct objects — unknown or
// aliasing-prone receivers stay silent, trading recall for a near-zero
// false-positive rate.
package kernelmix

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the kernelmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "kernelmix",
	Doc: "flags bdd.Ref values minted by one kernel and passed to a method of another " +
		"without going through CopyTo",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// origin identifies the kernel an expression was minted by.
type origin struct {
	key string // normalized kernel access path ("k", "s.kernel", "p.Kernel()")
	obj types.Object
}

type tracker struct {
	pass *analysis.Pass
	// refOrigin tags Ref-typed locals; sliceOrigin tags []Ref locals whose
	// elements all come from one kernel (CopyTo results); kernelAlias maps
	// kernel-typed locals to the access path they alias (k := s.kernel), so
	// aliased spellings of one kernel are never reported against each other.
	refOrigin   map[types.Object]origin
	sliceOrigin map[types.Object]origin
	kernelAlias map[types.Object]origin
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tr := &tracker{
		pass:        pass,
		refOrigin:   map[types.Object]origin{},
		sliceOrigin: map[types.Object]origin{},
		kernelAlias: map[types.Object]origin{},
	}
	// Statement-order walk: assignments update the tag map, kernel method
	// calls are checked against it. Nested function literals are walked by
	// the caller as their own functions.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			tr.assign(n)
		case *ast.CallExpr:
			tr.checkCall(n)
		}
		return true
	})
}

func (tr *tracker) info() *types.Info { return tr.pass.TypesInfo }

// kernelKey normalizes a kernel-typed expression to a stable access path,
// resolving in-function aliases (k := s.kernel). The bool result is false
// for expressions that cannot be compared (calls with arguments, index
// expressions, arbitrary computation).
func (tr *tracker) kernelKey(e ast.Expr) (origin, bool) {
	info := tr.info()
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return origin{}, false
		}
		if o, ok := tr.kernelAlias[obj]; ok {
			return o, true
		}
		return origin{key: e.Name, obj: obj}, true
	case *ast.ParenExpr:
		return tr.kernelKey(e.X)
	case *ast.SelectorExpr:
		base, ok := tr.kernelKey(e.X)
		if !ok {
			return origin{}, false
		}
		return origin{key: base.key + "." + e.Sel.Name, obj: base.obj}, true
	case *ast.CallExpr:
		// Zero-argument accessor chains (store.Kernel(), p.Primary().Kernel())
		// are stable enough to compare by spelling.
		if len(e.Args) != 0 {
			return origin{}, false
		}
		base, ok := tr.kernelKey(e.Fun)
		if !ok {
			return origin{}, false
		}
		return origin{key: base.key + "()", obj: base.obj}, true
	}
	return origin{}, false
}

// exprOrigin computes the minting kernel of a Ref-typed expression, if known.
func (tr *tracker) exprOrigin(e ast.Expr) (origin, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if o, ok := tr.refOrigin[tr.info().ObjectOf(e)]; ok {
			return o, true
		}
	case *ast.ParenExpr:
		return tr.exprOrigin(e.X)
	case *ast.CallExpr:
		if recv, _, ok := analysis.KernelMethod(tr.info(), e); ok {
			if tv, ok := tr.info().Types[e]; ok && analysis.IsRef(tv.Type) {
				return tr.kernelKey(recv)
			}
		}
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if o, ok := tr.sliceOrigin[tr.info().ObjectOf(id)]; ok {
				return o, true
			}
		}
	}
	return origin{}, false
}

// assign propagates kernel tags through the statement.
func (tr *tracker) assign(as *ast.AssignStmt) {
	// adopted, err := src.CopyTo(dst, roots...): the result slice is minted
	// by dst — the one sanctioned way to move a Ref between kernels.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if _, name, isK := analysis.KernelMethod(tr.info(), call); isK && name == "CopyTo" && len(call.Args) >= 1 {
				if dst, ok := tr.kernelKey(call.Args[0]); ok && len(as.Lhs) >= 1 {
					if id, isID := as.Lhs[0].(*ast.Ident); isID {
						if obj := tr.info().ObjectOf(id); obj != nil {
							tr.sliceOrigin[obj] = dst
						}
					}
				}
				return
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := tr.info().ObjectOf(id)
		if obj == nil {
			continue
		}
		if tv, ok := tr.info().Types[as.Rhs[i]]; ok && analysis.IsKernelPtr(tv.Type) {
			// k := s.kernel — record the alias so both spellings compare equal.
			if o, ok := tr.kernelKey(as.Rhs[i]); ok {
				tr.kernelAlias[obj] = o
			} else {
				delete(tr.kernelAlias, obj)
			}
			continue
		}
		if o, ok := tr.exprOrigin(as.Rhs[i]); ok {
			tr.refOrigin[obj] = o
		} else {
			// Overwritten with something untracked: drop a stale tag.
			delete(tr.refOrigin, obj)
			delete(tr.sliceOrigin, obj)
		}
	}
}

// checkCall reports tagged Refs passed to a method of a different kernel.
func (tr *tracker) checkCall(call *ast.CallExpr) {
	recv, name, ok := analysis.KernelMethod(tr.info(), call)
	if !ok {
		return
	}
	callee, ok := tr.kernelKey(recv)
	if !ok {
		return
	}
	if name == "CopyTo" {
		// Roots belong to the source (receiver) kernel; the destination
		// argument is a kernel, not a Ref. Both sides are exactly the
		// adoption bridge this analyzer pushes mixed flows toward.
		return
	}
	for _, a := range call.Args {
		if tv, ok := tr.info().Types[a]; !ok || !analysis.IsRef(tv.Type) {
			continue
		}
		o, known := tr.exprOrigin(a)
		if !known {
			continue
		}
		if o.key == callee.key && o.obj == callee.obj {
			continue
		}
		if o.obj == callee.obj && o.key != callee.key {
			// Same root object reached through different paths (k vs k.sub):
			// cannot prove distinctness.
			continue
		}
		if o.obj != callee.obj && sameSpelling(o.key, callee.key) {
			continue
		}
		tr.pass.Reportf(a.Pos(),
			"Ref minted by kernel %q passed to method %s of kernel %q; cross-kernel handles are only valid through CopyTo",
			o.key, name, callee.key)
	}
}

// sameSpelling guards against distinct objects that still denote the same
// kernel access path in different scopes (rare; stay silent).
func sameSpelling(a, b string) bool { return a == b }
