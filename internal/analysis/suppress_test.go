package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// testAnalyzer reports one diagnostic on every integer literal, giving the
// suppression tests a predictable diagnostic per line.
var testAnalyzer = &Analyzer{
	Name: "testcheck",
	Doc:  "reports every integer literal",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
					pass.Reportf(lit.Pos(), "integer literal %s", lit.Value)
				}
				return true
			})
		}
		return nil
	},
}

const suppressSrc = `package p

func f() {
	//lint:ignore testcheck covered by the integration test, sampled here on purpose
	_ = 1
	_ = 2
	//lint:ignore testcheck
	_ = 3
	_ = 4 //lint:ignore other this directive names a different analyzer
	_ = 5 //lint:ignore testcheck trailing directives work too
}
`

func TestSuppressions(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := Run(fset, []*ast.File{f}, nil, nil, nil, []*Analyzer{testAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	type got struct {
		line     int
		analyzer string
	}
	var gots []got
	for _, d := range diags {
		gots = append(gots, got{fset.Position(d.Pos).Line, d.Analyzer})
	}

	// Literal 1 is suppressed by the justified directive above it.
	// Literal 2 has no directive and stays.
	// Literal 3's directive has no justification: the finding stays AND the
	// directive earns its own lintdirective diagnostic (on line 7).
	// Literal 4's trailing directive names a different analyzer: stays.
	// Literal 5's trailing justified directive suppresses it.
	want := []got{
		{6, "testcheck"}, // _ = 2
		{7, "lintdirective"},
		{8, "testcheck"}, // _ = 3
		{9, "testcheck"}, // _ = 4
	}
	if len(gots) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d %v", len(gots), gots, len(want), want)
	}
	for i := range want {
		if gots[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, gots[i], want[i])
		}
	}

	for _, d := range diags {
		if d.Analyzer == "lintdirective" && !strings.Contains(d.Message, "justification") {
			t.Errorf("lintdirective message should demand a justification, got %q", d.Message)
		}
	}
}

// secondAnalyzer duplicates testAnalyzer under another name so comma-list
// directives have two real analyzers to cover.
var secondAnalyzer = &Analyzer{
	Name: "othercheck",
	Doc:  "reports every integer literal, again",
	Run:  testAnalyzer.Run,
}

// TestSuppressionCommaList is the regression test for the directive parser
// cutting the analyzer list at the first space: "a, b why" must suppress
// both a and b, with "why" as the justification — not just a.
func TestSuppressionCommaList(t *testing.T) {
	const src = `package p

func f() {
	//lint:ignore testcheck,othercheck compact comma list covers both
	_ = 1
	//lint:ignore testcheck, othercheck spaced comma list covers both too
	_ = 2
	//lint:ignore testcheck only the first analyzer is named
	_ = 3
	_ = 4
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, err := Run(fset, []*ast.File{f}, nil, nil, nil, []*Analyzer{testAnalyzer, secondAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	type got struct {
		line     int
		analyzer string
	}
	var gots []got
	for _, d := range diags {
		gots = append(gots, got{fset.Position(d.Pos).Line, d.Analyzer})
	}
	// Literals 1 and 2 are fully suppressed for both analyzers; literal 3
	// keeps its othercheck finding; literal 4 keeps both.
	want := []got{
		{9, "othercheck"},
		{10, "testcheck"},
		{10, "othercheck"},
	}
	if len(gots) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d %v", len(gots), gots, len(want), want)
	}
	for i := range want {
		if gots[i] != want[i] {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, gots[i], want[i])
		}
	}
}

// TestRunWithFactsKeepsSuppressed: the fact-aware entry point retains
// suppressed findings, marked, for -json consumers.
func TestRunWithFactsKeepsSuppressed(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //lint:ignore testcheck kept but marked
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags, _, err := RunWithFacts(fset, []*ast.File{f}, nil, nil, nil, nil, []*Analyzer{testAnalyzer})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 1 || !diags[0].Suppressed {
		t.Fatalf("want one suppressed diagnostic, got %+v", diags)
	}
}
