// Package analysistest runs cvlint analyzers over fixture packages under a
// testdata/src directory and checks their diagnostics against // want
// comments, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages are ordinary Go source that may import both standard
// library packages and this module's packages (repro/internal/bdd, ...).
// Type information for those imports comes from `go list -deps -export
// -json`, which compiles them through the build cache and reports the
// export-data file of every transitive dependency; the fixture itself is
// then type-checked directly from source. This keeps the harness
// stdlib-only while giving analyzers fully typed packages.
//
// Expectations are trailing comments of the form
//
//	k.TempMark() // want `regexp`
//
// where the backquoted (or double-quoted) argument is a regular expression
// matched against analyzer diagnostics reported on that line. Multiple
// expectations may appear in one comment. Every diagnostic must match an
// expectation and every expectation must be matched.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes each named fixture package (a directory under root/src,
// where root is a testdata directory relative to the test) with the
// analyzer and checks // want expectations.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, a, filepath.Join(root, "src", pkg))
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(matches)
	var files []*ast.File
	for _, name := range matches {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	// Resolve the fixture's imports (and their transitive closure) to
	// export-data files via the go command.
	var imports []string
	for _, f := range files {
		for _, im := range f.Imports {
			imports = append(imports, strings.Trim(im.Path.Value, `"`))
		}
	}
	exp, err := exportData(imports)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exp.files[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkgPath := filepath.Base(dir)
	pkg, err := tconf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	// Fixtures are single packages: interprocedural cases exercise the
	// package-local call graph and in-package summaries, so no imported
	// facts are supplied. Suppressed findings are dropped, as in a plain
	// vet run — a fixture line carrying a justified //lint:ignore expects
	// no diagnostic.
	diags, _, err := analysis.RunWithFacts(fset, files, pkg, info, exp.isStd, nil, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var live []analysis.Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			live = append(live, d)
		}
	}
	checkWants(t, fset, files, live)
}

// want is one expectation parsed from a // want comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", p, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// exportInfo caches `go list` results per process: fixture packages share
// imports, and the go command dominates the harness runtime.
type exportInfo struct {
	files map[string]string // package path -> export data file
	std   map[string]bool
}

func (e *exportInfo) isStd(path string) bool { return e.std[path] }

var (
	exportMu    sync.Mutex
	exportCache = map[string]*exportInfo{}
)

// exportData asks the go command for the export-data files and std-ness of
// the transitive closure of the given import paths.
func exportData(imports []string) (*exportInfo, error) {
	sort.Strings(imports)
	imports = dedup(imports)
	key := strings.Join(imports, ",")
	exportMu.Lock()
	defer exportMu.Unlock()
	if e, ok := exportCache[key]; ok {
		return e, nil
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,Standard"}, imports...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export: %v\n%s", err, errb.String())
	}
	e := &exportInfo{files: map[string]string{}, std: map[string]bool{}}
	dec := json.NewDecoder(&out)
	for {
		var p struct {
			ImportPath string
			Export     string
			Standard   bool
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			e.files[p.ImportPath] = p.Export
		}
		e.std[p.ImportPath] = p.Standard
	}
	exportCache[key] = e
	return e, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func dedup(ss []string) []string {
	var out []string
	for i, s := range ss {
		if i == 0 || ss[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
