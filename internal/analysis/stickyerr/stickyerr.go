// Package stickyerr checks that the kernel's sticky error is consulted.
//
// Allocating kernel operations (And, Or, Exists, AppEx, Replace, MakeNode,
// ...) do not return an error: a budget abort yields bdd.Invalid and latches
// Kernel.Err, and Invalid propagates through further operations, so a chain
// needs only one check at the end. The contract the type system cannot
// enforce is that the chain *has* an end: some function in the flow must
// consult Kernel.Err(), compare against bdd.Invalid, or test the sentinel
// with errors.Is before the result is consumed.
//
// The analyzer flags allocating calls in non-test files whose enclosing
// function terminates a chain — its signature returns neither a bdd.Ref nor
// an error, so no caller can possibly perform the check — while the function
// body performs no check either. Functions that pass a Ref or an error up
// keep the responsibility with their callers, the same split the bdd package
// documentation prescribes.
package stickyerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the stickyerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "stickyerr",
	Doc: "flags allocating kernel operations in functions that neither consult Kernel.Err(), " +
		"compare against bdd.Invalid, nor propagate a Ref or error to their caller",
	Run: run,
}

// allocOps are the kernel operations that can allocate nodes and therefore
// abort with ErrBudget, returning Invalid.
var allocOps = map[string]bool{
	"And": true, "Or": true, "Xor": true, "Diff": true, "Imp": true,
	"Biimp": true, "Not": true, "ITE": true,
	"Exists": true, "Forall": true, "AppEx": true, "AppAll": true,
	"Replace": true, "Restrict": true,
	"MakeNode": true, "Cube": true, "Minterm": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			// Tests assert on concrete values and fail loudly; the
			// production contract targets non-test code.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd)
			return false // function literals inherit the enclosing check
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if propagatesToCaller(pass, fd) {
		return
	}
	var firstAlloc *ast.CallExpr
	var firstName string
	consults := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, name, ok := analysis.KernelMethod(pass.TypesInfo, n); ok {
				if name == "Err" {
					consults = true
				}
				if allocOps[name] && firstAlloc == nil {
					firstAlloc, firstName = n, name
				}
			}
			if isErrorsIs(pass, n) {
				consults = true
			}
		case *ast.BinaryExpr:
			if (n.Op == token.EQL || n.Op == token.NEQ || n.Op == token.LSS) &&
				(isInvalidRef(pass, n.X) || isInvalidRef(pass, n.Y)) {
				consults = true
			}
		}
		return !consults
	})
	if firstAlloc != nil && !consults {
		pass.Reportf(firstAlloc.Pos(),
			"allocating kernel op %s in a function that neither consults Kernel.Err(), checks bdd.Invalid, "+
				"nor returns a Ref or error; a budget abort would go unnoticed", firstName)
	}
}

// propagatesToCaller reports whether the function's results keep the error
// check with the caller: any bdd.Ref result (Invalid propagates) or any
// error result (the kernel error can be surfaced through it).
func propagatesToCaller(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, fld := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[fld.Type]
		if !ok {
			continue
		}
		if analysis.IsRef(tv.Type) || analysis.IsRefSlice(tv.Type) || analysis.IsErrorType(tv.Type) {
			return true
		}
	}
	return false
}

// isErrorsIs matches errors.Is(...) calls.
func isErrorsIs(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Is" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "errors"
}

// isInvalidRef matches references to the bdd.Invalid constant.
func isInvalidRef(pass *analysis.Pass, e ast.Expr) bool {
	obj := analysis.ObjectOf(pass.TypesInfo, e)
	return obj != nil && obj.Name() == "Invalid" && obj.Pkg() != nil && obj.Pkg().Name() == "bdd"
}
