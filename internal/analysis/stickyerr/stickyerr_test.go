package stickyerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/stickyerr"
)

func TestStickyErr(t *testing.T) {
	analysistest.Run(t, "../testdata", stickyerr.Analyzer, "stickyerrs")
}
