// Package kernelowner enforces the single-writer ownership of the primary
// BDD kernel and checker.
//
// The service's correctness argument (DESIGN.md, "Static contracts") rests on
// one goroutine — the write-worker loop, plus the boot path that runs before
// it starts — performing every structural mutation of the primary
// core.Checker / bdd.Kernel: Apply, index builds, reorders, snapshot
// adoption. HTTP handlers, the follower tail loop and replica readers run
// concurrently with the worker and must stay read-only; the type system
// cannot tell these call sites apart because the mutating methods hang off
// the same types everyone holds.
//
// Entry points declare their goroutine with a //cv:owner annotation (grammar
// at analysis.OwnerDirective): `worker` for the kernel-owning loop and boot,
// `any` for code that may run on any goroutine. The analyzer computes, for
// every function, which of its receiver-unified parameters (and whether any
// package-level state) can have a checker/kernel structurally mutated by
// calling it — directly, through same-package calls (the package-local call
// graph), or through imported calls (function-summary facts carried by the
// vet fact protocol). A `//cv:owner any` function whose summary is non-empty
// is reported, with the call chain to the offending primitive.
//
// Mutations of locally created checkers and kernels are exempt: a value
// whose access path roots at a plain local initialized from an
// argument-taking call (store.CheckerAt restoring a private historical
// checker, core.New building a replica) is fresh by construction, and
// mutating it from any goroutine is sound. Zero-argument accessor chains
// (s.chk.Store().Kernel()) keep the identity of their root. Evaluation
// methods (CheckOne, ViolationWitnesses, bdd.And, ...) allocate nodes but
// are deliberately not in the mutating set: replicas and history entries
// evaluate on private kernels from handler goroutines by design, and the
// kernelmix analyzer polices which kernel a Ref may touch.
package kernelowner

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the kernelowner analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "kernelowner",
	Doc: "checks that structural mutations of bdd.Kernel/core.Checker are reachable only from " +
		"//cv:owner worker entry points, never from //cv:owner any (handler/replica/tail) paths",
	Run: run,
}

// kernelMut are the *bdd.Kernel methods that restructure shared kernel
// state. Allocation during evaluation (And, MakeNode, ...) is excluded by
// design; CopyTo is special-cased because it mutates its destination
// argument, not its receiver.
var kernelMut = map[string]bool{
	"Reorder":        true,
	"SetOrder":       true,
	"Group":          true,
	"SetBudget":      true,
	"SetDebugChecks": true,
	"ClearCaches":    true,
	"GC":             true,
	"AddVars":        true,
}

// checkerMut are the *core.Checker methods that mutate the database image or
// its indexes.
var checkerMut = map[string]bool{
	"Apply":             true,
	"InsertTuple":       true,
	"DeleteTuple":       true,
	"BuildIndex":        true,
	"Reorder":           true,
	"MaybeReorder":      true,
	"AdoptIndices":      true,
	"AdoptOwnedIndices": true,
}

// Fact summarizes how calling a function can mutate kernel/checker state
// that outlives it: Params lists the receiver-unified parameter indices
// whose kernel or checker may be structurally mutated, Global is set when
// package-level or captured state is. Via is the call chain down to the
// mutating primitive, for diagnostics.
type Fact struct {
	Params []int  `json:"params,omitempty"`
	Global bool   `json:"global,omitempty"`
	Via    string `json:"via,omitempty"`
}

func (f *Fact) empty() bool { return f == nil || (!f.Global && len(f.Params) == 0) }

func (f *Fact) addParam(i int) bool {
	for _, p := range f.Params {
		if p == i {
			return false
		}
	}
	f.Params = append(f.Params, i)
	sort.Ints(f.Params)
	return true
}

// class is the provenance of an access path's root.
type class struct {
	kind  int // classFresh, classParam, classGlobal
	param int
}

const (
	classFresh = iota
	classParam
	classGlobal
)

// funcScope is the per-function context: unified parameters and the local
// alias map (k := s.chk records k as an alias of parameter s).
type funcScope struct {
	node   *analysis.FuncNode
	params map[types.Object]int
	alias  map[types.Object]class
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	info := pass.TypesInfo

	scopes := make(map[*analysis.FuncNode]*funcScope, len(g.Funcs))
	summaries := make(map[*analysis.FuncNode]*Fact, len(g.Funcs))
	for _, n := range g.Funcs {
		sc := newFuncScope(info, n)
		scopes[n] = sc
		summaries[n] = directFact(pass, sc)
	}

	// Propagate through the package-local call graph to a fixed point:
	// facts only grow, so this terminates.
	for changed, rounds := true, 0; changed && rounds <= len(g.Funcs)+1; rounds++ {
		changed = false
		for _, n := range g.Funcs {
			sc := scopes[n]
			sum := summaries[n]
			for _, cs := range n.Calls {
				var calleeFact *Fact
				if cs.Local != nil {
					calleeFact = summaries[cs.Local]
				} else {
					var imported Fact
					if pass.ImportObjectFact(cs.Callee, &imported) {
						calleeFact = &imported
					}
				}
				if calleeFact.empty() {
					continue
				}
				via := analysis.FuncKey(cs.Callee)
				if calleeFact.Via != "" {
					via += " → " + calleeFact.Via
				}
				if calleeFact.Global && !sum.Global {
					sum.Global, sum.Via, changed = true, via, true
				}
				args := analysis.CallArgs(info, cs.Call, cs.Callee)
				for _, p := range calleeFact.Params {
					if p >= len(args) {
						continue
					}
					switch c := sc.rootClass(info, args[p]); c.kind {
					case classParam:
						if sum.addParam(c.param) {
							changed = true
							if sum.Via == "" {
								sum.Via = via
							}
						}
					case classGlobal:
						if !sum.Global {
							sum.Global, changed = true, true
							if sum.Via == "" {
								sum.Via = via
							}
						}
					}
				}
			}
		}
	}

	for _, n := range g.Funcs {
		sum := summaries[n]
		if !sum.empty() {
			if err := pass.ExportFact(analysis.FuncKey(n.Obj), sum); err != nil {
				return err
			}
		}
		switch n.Owner {
		case "":
			continue
		case "worker":
			// The kernel owner may mutate freely.
		case "any":
			if !sum.empty() {
				pass.Reportf(n.Decl.Name.Pos(),
					"%s is annotated //cv:owner any but can mutate kernel/checker state via %s; "+
						"structural mutations are reserved to //cv:owner worker (the write-worker loop and boot)",
					n.Decl.Name.Name, sum.Via)
			}
		default:
			pass.Reportf(n.Decl.Name.Pos(),
				"malformed //cv:owner directive %q on %s: value must be \"worker\" or \"any\"",
				n.Owner, n.Decl.Name.Name)
		}
	}
	return nil
}

// newFuncScope indexes the unified parameters and records local aliases of
// externally rooted values, in lexical order.
func newFuncScope(info *types.Info, n *analysis.FuncNode) *funcScope {
	sc := &funcScope{
		node:   n,
		params: map[types.Object]int{},
		alias:  map[types.Object]class{},
	}
	for i, v := range analysis.FuncParams(info, n.Decl) {
		sc.params[v] = i
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, l := range s.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					continue
				}
				if c := sc.rootClass(info, s.Rhs[i]); c.kind != classFresh {
					sc.alias[obj] = c
				}
			}
		}
		return true
	})
	return sc
}

// rootClass resolves the provenance of an expression's access-path root:
// a unified parameter of the enclosing declaration, package-level state, or
// a fresh/unknown local. Zero-argument call chains are accessors and keep
// their root; argument-taking calls construct fresh values.
func (sc *funcScope) rootClass(info *types.Info, e ast.Expr) class {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return class{kind: classFresh}
		}
		if c, ok := sc.alias[obj]; ok {
			return c
		}
		if i, ok := sc.params[obj]; ok {
			return class{kind: classParam, param: i}
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return class{kind: classGlobal}
		}
		return class{kind: classFresh}
	case *ast.SelectorExpr:
		// Package-qualified selector (pkg.Var) roots at package state.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
				return class{kind: classGlobal}
			}
		}
		return sc.rootClass(info, e.X)
	case *ast.CallExpr:
		if len(e.Args) == 0 {
			return sc.rootClass(info, e.Fun)
		}
		return class{kind: classFresh}
	case *ast.ParenExpr:
		return sc.rootClass(info, e.X)
	case *ast.StarExpr:
		return sc.rootClass(info, e.X)
	case *ast.UnaryExpr:
		return sc.rootClass(info, e.X)
	case *ast.IndexExpr:
		return sc.rootClass(info, e.X)
	}
	return class{kind: classFresh}
}

// directFact scans one function body (nested literals included — their own
// parameters classify as fresh, which exempts pool callbacks operating on
// private replica checkers) for direct mutation sites.
func directFact(pass *analysis.Pass, sc *funcScope) *Fact {
	info := pass.TypesInfo
	sum := &Fact{}
	record := func(target ast.Expr, desc string) {
		switch c := sc.rootClass(info, target); c.kind {
		case classParam:
			if sum.addParam(c.param) && sum.Via == "" {
				sum.Via = desc
			}
		case classGlobal:
			if !sum.Global {
				sum.Global = true
				if sum.Via == "" {
					sum.Via = desc
				}
			}
		}
	}
	ast.Inspect(sc.node.Decl.Body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.CallExpr:
			if recv, name, ok := analysis.KernelMethod(info, n); ok {
				if name == "CopyTo" && len(n.Args) >= 1 {
					record(n.Args[0], "(*Kernel).CopyTo destination")
				} else if kernelMut[name] {
					record(recv, fmt.Sprintf("(*Kernel).%s", name))
				}
			}
			if recv, name, ok := analysis.CheckerMethod(info, n); ok && checkerMut[name] {
				record(recv, fmt.Sprintf("(*Checker).%s", name))
			}
		case *ast.AssignStmt:
			// Replacing a checker/kernel held by external state (s.chk = chk)
			// is as much a mutation as calling Apply on it.
			for _, l := range n.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				tv, ok := info.Types[sel]
				if !ok || (!analysis.IsCheckerPtr(tv.Type) && !analysis.IsKernelPtr(tv.Type)) {
					continue
				}
				record(sel.X, fmt.Sprintf("assignment to field %s", sel.Sel.Name))
			}
		}
		return true
	})
	return sum
}
