package kernelowner_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/kernelowner"
)

func TestKernelOwner(t *testing.T) {
	analysistest.Run(t, "../testdata", kernelowner.Analyzer, "kernelowners")
}
