// Package kernelowners exercises the kernelowner analyzer: structural
// mutations of bdd.Kernel/core.Checker must be unreachable from
// //cv:owner any entry points, directly or through helpers, while
// locally materialized (fresh) checkers are exempt.
package kernelowners

import (
	"repro/internal/bdd"
	"repro/internal/core"
)

type server struct {
	chk *core.Checker
	k   *bdd.Kernel
}

var globalKernel *bdd.Kernel

//cv:owner worker
func (s *server) run(ups []core.Update) {
	// The kernel owner mutates freely.
	s.chk.Apply(ups)
	s.k.Reorder(bdd.ReorderOptions{})
}

//cv:owner any
func (s *server) handleDirect(ups []core.Update) { // want `annotated //cv:owner any but can mutate kernel/checker state via \(\*Checker\)\.Apply`
	s.chk.Apply(ups)
}

//cv:owner any
func (s *server) handleViaHelper(ups []core.Update) { // want `can mutate kernel/checker state via \(\*server\)\.applyAll → \(\*Checker\)\.Apply`
	s.applyAll(ups)
}

// applyAll is unannotated: it earns a mutation summary but no finding of its
// own — only annotated entry points report.
func (s *server) applyAll(ups []core.Update) {
	s.chk.Apply(ups)
}

//cv:owner any
func (s *server) handleDeep() { // want `can mutate kernel/checker state via \(\*server\)\.level1`
	s.level1()
}

func (s *server) level1() { s.level2() }

func (s *server) level2() {
	s.k.SetOrder([]int{0})
}

//cv:owner any
func (s *server) handleAlias() { // want `can mutate kernel/checker state via \(\*Kernel\)\.ClearCaches`
	k := s.k // alias of externally held kernel keeps its root
	k.ClearCaches()
}

//cv:owner any
func (s *server) handleCopyToDst(src *bdd.Kernel, r bdd.Ref) { // want `can mutate kernel/checker state via \(\*Kernel\)\.CopyTo destination`
	// CopyTo mutates its destination argument, not its receiver.
	src.CopyTo(s.k, r)
}

//cv:owner any
func handleGlobal() { // want `can mutate kernel/checker state via \(\*Kernel\)\.ClearCaches`
	globalKernel.ClearCaches()
}

//cv:owner any
func (s *server) handleSwap(chk *core.Checker) { // want `can mutate kernel/checker state via assignment to field chk`
	s.chk = chk
}

//cv:owner any
func (s *server) handleRead() {
	// Evaluation and stats are read-only: no finding.
	_ = s.chk.Stats()
	_ = s.k.Size()
}

//cv:owner any
func handleHistorical(catalog interface{}, opts core.Options, ups []core.Update) {
	// A locally materialized checker is private: mutating it from a
	// handler goroutine is sound, exactly like store.CheckerAt replaying
	// the WAL into a fresh restore.
	chk := materialize(opts)
	chk.Apply(ups)
}

func materialize(opts core.Options) *core.Checker {
	return core.New(nil, opts)
}

//cv:owner any
func (s *server) handleFreshFromArgCall(opts core.Options) {
	// Argument-taking calls construct fresh values; the mutation does not
	// root at s.
	chk := materializeFor(s, opts)
	chk.Reorder(bdd.ReorderOptions{})
}

func materializeFor(s *server, opts core.Options) *core.Checker {
	return core.New(nil, opts)
}

//cv:owner writer
func (s *server) handleTypo() { // want `malformed //cv:owner directive "writer"`
}
