// Package ackorders exercises the ackorder analyzer: on every path, WAL
// appends, epoch publishes and update applies must precede the update's
// acknowledgment, never follow it.
package ackorders

import (
	"errors"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/store"
)

var errEmpty = errors.New("empty batch")

// reply is ack-shaped: an applied count plus an error field.
type reply struct {
	applied int
	err     error
}

// job carries a batch and its acknowledgment channel. Not ack-shaped (no
// error field), so queueing a job is not an acknowledgment.
type job struct {
	ups   []core.Update
	reply chan reply
}

type server struct {
	chk   *core.Checker
	st    *store.Store
	pool  *replica.Pool
	epoch atomic.Uint64
}

// applyGood is the protocol done right: apply, append, advance, then ack.
func (s *server) applyGood(j *job, epoch uint64) {
	applied, err := s.chk.Apply(j.ups)
	if err == nil {
		err = s.st.AppendBatch(epoch, j.ups[:applied])
	}
	s.epoch.Store(epoch)
	j.reply <- reply{applied: applied, err: err}
}

// applyLogAfterAck is the seeded regression: the WAL append slid past the
// acknowledgment, so a crash in between loses an acked update.
func (s *server) applyLogAfterAck(j *job, epoch uint64) {
	applied, _ := s.chk.Apply(j.ups)
	j.reply <- reply{applied: applied}
	s.st.AppendBatch(epoch, j.ups[:applied]) // want `WAL append \(\*Store\)\.AppendBatch after the update was acknowledged`
}

// applyPublishAfterAck publishes the frozen version after acking: a check
// submitted after the ack can still read the previous epoch.
func (s *server) applyPublishAfterAck(j *job, v *replica.Version) {
	j.reply <- reply{applied: len(j.ups)}
	s.pool.Publish(v) // want `epoch publish \(\*Pool\)\.Publish after the update was acknowledged`
}

// applyAdvanceAfterAck stores the epoch after acking.
func (s *server) applyAdvanceAfterAck(j *job, epoch uint64) {
	j.reply <- reply{applied: len(j.ups)}
	s.epoch.Store(epoch) // want `epoch publish \(atomic epoch store\) after the update was acknowledged`
}

// applyViaHelper hides the late append behind a same-package helper; the
// call-graph summary carries it back to this path.
func (s *server) applyViaHelper(j *job, epoch uint64) {
	j.reply <- reply{applied: len(j.ups)}
	s.logBatch(epoch, j.ups) // want `call to \(\*server\)\.logBatch \(appends to the WAL\) after the update was acknowledged`
}

func (s *server) logBatch(epoch uint64, ups []core.Update) {
	s.st.AppendBatch(epoch, ups)
}

// applyBranchAck acks on the fast path only, but the append after the merge
// still follows it on that path.
func (s *server) applyBranchAck(j *job, epoch uint64, fast bool) {
	if fast {
		j.reply <- reply{applied: len(j.ups)}
	}
	s.st.AppendBatch(epoch, j.ups) // want `WAL append \(\*Store\)\.AppendBatch after the update was acknowledged`
}

// applyRefused: an error-only reply is a refusal, not an acknowledgment —
// the durability work behind the early return is a different round's.
func (s *server) applyRefused(j *job, epoch uint64) {
	if len(j.ups) == 0 {
		j.reply <- reply{err: errEmpty}
		return
	}
	err := s.st.AppendBatch(epoch, j.ups)
	j.reply <- reply{applied: len(j.ups), err: err}
}

// workerLoop calls a complete round per iteration: applyGood both acks and
// does durability work, so each call is a round boundary and consecutive
// rounds do not flag.
func (s *server) workerLoop(jobs chan *job, epoch uint64) {
	for j := range jobs {
		epoch++
		s.applyGood(j, epoch)
	}
}

// applyRounds acks at the end of each iteration; the next iteration's apply
// and append belong to the next round (no back-edge propagation).
func (s *server) applyRounds(js []*job, epoch uint64) {
	for _, j := range js {
		epoch++
		applied, err := s.chk.Apply(j.ups)
		if err == nil {
			err = s.st.AppendBatch(epoch, j.ups[:applied])
		}
		j.reply <- reply{applied: applied, err: err}
	}
}

// writeOK acknowledges over HTTP with a constant 2xx.
func (s *server) writeOK(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
}

// writeStatus forwards its status parameter: only 2xx call sites ack.
func (s *server) writeStatus(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// handleUpdate acks through the helper, then appends: flagged through the
// helper's summary.
func (s *server) handleUpdate(w http.ResponseWriter, epoch uint64, ups []core.Update) {
	s.writeOK(w)
	s.st.AppendBatch(epoch, ups) // want `WAL append \(\*Store\)\.AppendBatch after the update was acknowledged`
}

// handleErrThenLog writes an error status first: not an acknowledgment, so
// the append that follows is fine.
func (s *server) handleErrThenLog(w http.ResponseWriter, epoch uint64, ups []core.Update) {
	s.writeStatus(w, http.StatusBadRequest)
	s.st.AppendBatch(epoch, ups)
}

// handleOKThenLog forwards a constant 2xx through writeStatus, then appends.
func (s *server) handleOKThenLog(w http.ResponseWriter, epoch uint64, ups []core.Update) {
	s.writeStatus(w, http.StatusOK)
	s.st.AppendBatch(epoch, ups) // want `WAL append \(\*Store\)\.AppendBatch after the update was acknowledged`
}
