// Package stickyerrs exercises the stickyerr analyzer: allocating kernel
// operations in a chain-terminating function require an error consultation.
package stickyerrs

import (
	"errors"

	"repro/internal/bdd"
)

// badSink allocates, returns nothing a caller could check, and never looks
// at the sticky error.
func badSink(k *bdd.Kernel, f, g bdd.Ref) {
	r := k.And(f, g) // want `allocating kernel op And in a function that neither consults`
	_ = r
}

// badSinkCount folds the result into a plain number; Invalid silently skews
// the count because nothing consults the kernel.
func badSinkCount(k *bdd.Kernel, f bdd.Ref) float64 {
	return k.SatCount(k.Not(f)) // want `allocating kernel op Not in a function that neither consults`
}

// goodErr consults the sticky error after the chain.
func goodErr(k *bdd.Kernel, f, g bdd.Ref) {
	r := k.And(f, g)
	_ = r
	if k.Err() != nil {
		println("aborted")
	}
}

// goodInvalid checks the propagated Invalid instead.
func goodInvalid(k *bdd.Kernel, f, g bdd.Ref) {
	if k.And(f, g) == bdd.Invalid {
		println("aborted")
	}
}

// goodErrorsIs tests the sentinel with errors.Is.
func goodErrorsIs(k *bdd.Kernel, f bdd.Ref, err error) {
	_ = k.Not(f)
	if errors.Is(err, bdd.ErrBudget) {
		println("aborted")
	}
}

// goodReturnsRef propagates the handle; Invalid reaches the caller, which
// owns the check.
func goodReturnsRef(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	return k.And(k.Not(f), g)
}

// goodReturnsErr propagates an error result; the caller owns the check.
func goodReturnsErr(k *bdd.Kernel, f bdd.Ref) error {
	_ = k.Not(f)
	return k.Err()
}
