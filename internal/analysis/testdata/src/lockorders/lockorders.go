// Package lockorders exercises the lockorder analyzer: acquiring mutexes in
// an order that closes a cycle against the globally observed order is a
// latent deadlock.
package lockorders

import "sync"

// pair is locked consistently (a before b) everywhere: no cycle.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) first() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *pair) second() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// deadlock is locked x-then-y on one path and y-then-x on another.
type deadlock struct {
	x sync.Mutex
	y sync.RWMutex
}

func (d *deadlock) xThenY() {
	d.x.Lock()
	defer d.x.Unlock()
	d.y.Lock() // want `acquiring lockorders\.deadlock\.y while holding lockorders\.deadlock\.x creates a cycle in the global mutex order`
	d.y.Unlock()
}

func (d *deadlock) yThenX() {
	d.y.RLock()
	defer d.y.RUnlock()
	d.x.Lock() // want `acquiring lockorders\.deadlock\.x while holding lockorders\.deadlock\.y creates a cycle in the global mutex order`
	d.x.Unlock()
}

// svc/stor exercise the interprocedural edges: the lock is taken inside a
// callee, and the edge comes from the callee's summary.
type svc struct {
	mu sync.Mutex
}

type stor struct {
	mu sync.Mutex
}

func (st *stor) append() {
	st.mu.Lock()
	defer st.mu.Unlock()
}

func (s *svc) lockSelf() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *svc) holdThenCall(st *stor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.append() // want `acquiring lockorders\.stor\.mu while holding lockorders\.svc\.mu creates a cycle in the global mutex order`
}

func (s *svc) reverse(st *stor) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s.lockSelf() // want `acquiring lockorders\.svc\.mu while holding lockorders\.stor\.mu creates a cycle in the global mutex order`
}

// handoff releases q before taking r: sequential acquisition is not nesting,
// so r-then-q elsewhere closes no cycle.
type handoff struct {
	q sync.Mutex
	r sync.Mutex
}

func (h *handoff) qThenR() {
	h.q.Lock()
	h.q.Unlock()
	h.r.Lock()
	h.r.Unlock()
}

func (h *handoff) rThenQ() {
	h.r.Lock()
	h.q.Lock()
	h.q.Unlock()
	h.r.Unlock()
}
