// Package sentinel exercises the sentinelcmp analyzer: direct comparisons
// against module sentinel errors must be flagged, errors.Is and
// standard-library sentinels must not.
package sentinel

import (
	"errors"
	"io"

	"repro/internal/bdd"
	"repro/internal/logic"
)

// ErrLocal is a package-local sentinel; local comparisons are just as wrong
// as cross-package ones, because this package wraps it too.
var ErrLocal = errors.New("sentinel: local failure")

func bad(k *bdd.Kernel, err error) bool {
	if k.Err() == bdd.ErrBudget { // want `direct == comparison against sentinel bdd\.ErrBudget`
		return true
	}
	if err != bdd.ErrOrder { // want `direct != comparison against sentinel bdd\.ErrOrder`
		return false
	}
	if err == logic.ErrNoIndex { // want `direct == comparison against sentinel logic\.ErrNoIndex`
		return true
	}
	return err == ErrLocal // want `direct == comparison against sentinel sentinel\.ErrLocal`
}

func badSwitch(err error) string {
	switch err {
	case bdd.ErrBudget: // want `switch case compares against sentinel bdd\.ErrBudget`
		return "budget"
	case nil:
		return "ok"
	}
	return "other"
}

func good(k *bdd.Kernel, err error) bool {
	if errors.Is(k.Err(), bdd.ErrBudget) {
		return true
	}
	if errors.Is(err, ErrLocal) {
		return true
	}
	// Standard-library sentinels are documented never to arrive wrapped
	// from their own packages; direct comparison is idiomatic.
	if err == io.EOF {
		return false
	}
	return err == nil
}

func suppressed(err error) bool {
	//lint:ignore sentinelcmp this test asserts on identity of the unwrapped value on purpose
	return err == bdd.ErrBudget
}
