// Package kernelmixes exercises the kernelmix analyzer: Refs minted by one
// kernel must not reach methods of another, except through CopyTo.
package kernelmixes

import "repro/internal/bdd"

type store struct {
	kernel *bdd.Kernel
}

// badCross mints a Ref on k1 and hands it to k2.
func badCross(k1, k2 *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	r := k1.And(f, g)
	return k2.Not(r) // want `Ref minted by kernel "k1" passed to method Not of kernel "k2"`
}

// badCrossViaCopy propagates the tag through a plain copy.
func badCrossViaCopy(k1, k2 *bdd.Kernel, f bdd.Ref) bdd.Ref {
	r := k1.Not(f)
	s := r
	return k2.Not(s) // want `Ref minted by kernel "k1" passed to method Not of kernel "k2"`
}

// badCrossField mints on a field-held kernel and hands to a parameter kernel.
func badCrossField(st *store, k2 *bdd.Kernel, f bdd.Ref) bdd.Ref {
	r := st.kernel.Not(f)
	return k2.Not(r) // want `Ref minted by kernel "st.kernel" passed to method Not of kernel "k2"`
}

// goodSameKernel keeps the Ref on the kernel that minted it.
func goodSameKernel(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	r := k.And(f, g)
	return k.Not(r)
}

// goodCopyTo is the sanctioned bridge: the result slice is minted by the
// destination kernel, so using its elements on dst is fine, and passing the
// source-minted root to CopyTo itself is fine too.
func goodCopyTo(src, dst *bdd.Kernel, f bdd.Ref) bdd.Ref {
	r := src.Not(f)
	adopted, err := src.CopyTo(dst, r)
	if err != nil {
		return bdd.Invalid
	}
	return dst.Not(adopted[0])
}

// goodAlias mints through a local alias of a field-held kernel and uses the
// field spelling afterwards; both denote the same kernel.
func goodAlias(st *store, f, g bdd.Ref) bdd.Ref {
	k := st.kernel
	r := k.And(f, g)
	return st.kernel.Not(r)
}

// goodReorderSameKernel: dynamic reordering preserves externally held Refs
// (sifting rewires levels, never frees pinned nodes), so a Ref minted
// before Reorder stays usable on the same kernel afterwards.
func goodReorderSameKernel(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	r := k.And(f, g)
	k.Reorder(bdd.ReorderOptions{})
	return k.Not(r)
}

// badCrossAfterReorder: reordering the destination kernel does not launder
// a foreign Ref onto it.
func badCrossAfterReorder(k1, k2 *bdd.Kernel, f bdd.Ref) bdd.Ref {
	r := k1.Not(f)
	k2.Reorder(bdd.ReorderOptions{})
	return k2.Not(r) // want `Ref minted by kernel "k1" passed to method Not of kernel "k2"`
}

// mk mints on its kernel parameter; the ReturnsParam summary tags the
// result at every call site from the corresponding argument.
func mk(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	return k.And(f, g)
}

// consume hands its Ref parameter to its kernel parameter's methods; the
// RefParams summary lets call sites check the pairing.
func consume(k *bdd.Kernel, r bdd.Ref) bdd.Ref {
	return k.Not(r)
}

// wrap forwards to consume; the pairing propagates through the wrapper.
func wrap(k *bdd.Kernel, r bdd.Ref) bdd.Ref {
	return consume(k, r)
}

// badHelperMint: the helper's result is minted by k1 but used on k2.
func badHelperMint(k1, k2 *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	r := mk(k1, f, g)
	return k2.Not(r) // want `Ref minted by kernel "k1" passed to method Not of kernel "k2"`
}

// badHelperConsume: the callee's pairing flags mismatched arguments.
func badHelperConsume(k1, k2 *bdd.Kernel, f bdd.Ref) bdd.Ref {
	r := k1.Not(f)
	return consume(k2, r) // want `Ref minted by kernel "k1" passed to consume of kernel "k2"`
}

// badWrappedConsume: the pairing survives one level of wrapping.
func badWrappedConsume(k1, k2 *bdd.Kernel, f bdd.Ref) bdd.Ref {
	r := k1.Not(f)
	return wrap(k2, r) // want `Ref minted by kernel "k1" passed to wrap of kernel "k2"`
}

// goodHelperRoundTrip keeps helper-minted Refs on the minting kernel.
func goodHelperRoundTrip(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	r := mk(k, f, g)
	return consume(k, r)
}

// goodSetOrderSameKernel: an explicit order install is a same-kernel
// mutation; previously minted Refs remain valid on that kernel.
func goodSetOrderSameKernel(k *bdd.Kernel, f bdd.Ref) bdd.Ref {
	r := k.Not(f)
	if err := k.SetOrder([]int{0}); err != nil {
		return bdd.Invalid
	}
	return k.And(r, f)
}
