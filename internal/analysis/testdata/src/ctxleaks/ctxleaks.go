// Package ctxleaks exercises the ctxleak analyzer: goroutines whose
// unbounded loops never observe a shutdown signal leak past Close.
package ctxleaks

import "context"

type server struct {
	quit chan struct{}
	jobs chan int
}

// spawnGood selects on ctx.Done inside the loop.
func spawnGood(ctx context.Context, s *server) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()
}

// spawnQuit receives from a quit-named channel.
func (s *server) spawnQuit() {
	go func() {
		for {
			select {
			case <-s.quit:
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()
}

// spawnErrPoll polls ctx.Err, which also counts as observing the signal.
func (s *server) spawnErrPoll(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			j := <-s.jobs
			_ = j
		}
	}()
}

// spawnLeak drains jobs forever with no way out.
func (s *server) spawnLeak() {
	go func() { // want `goroutine runs an unbounded loop with no shutdown signal`
		for {
			j := <-s.jobs
			_ = j
		}
	}()
}

// spawnRange ranges over the jobs channel: closing the channel ends it.
func (s *server) spawnRange() {
	go func() {
		for j := range s.jobs {
			_ = j
		}
	}()
}

// spawnBounded runs a conditional loop; it terminates on its own.
func (s *server) spawnBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			_ = <-s.jobs
		}
	}()
}

// loopForever is a named worker with no exit signal; spawning it leaks.
func (s *server) loopForever() {
	for {
		j := <-s.jobs
		_ = j
	}
}

func (s *server) spawnDecl() {
	go s.loopForever() // want `goroutine \(\*server\)\.loopForever runs an unbounded loop with no shutdown signal`
}

// sleepCtx observes ctx on behalf of its callers.
func (s *server) sleepCtx(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return false
	case j := <-s.jobs:
		_ = j
		return true
	}
}

// tail's loop observes the signal only through sleepCtx: the summary makes
// the spawn below clean.
func (s *server) tail(ctx context.Context) {
	for {
		if !s.sleepCtx(ctx) {
			return
		}
	}
}

func (s *server) spawnTail(ctx context.Context) {
	go s.tail(ctx)
}

// spawnLocalDone shows the name-based rule on a locally declared channel.
func (s *server) spawnLocalDone() chan struct{} {
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case j := <-s.jobs:
				_ = j
			}
		}
	}()
	return done
}
