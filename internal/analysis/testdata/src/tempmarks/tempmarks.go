// Package tempmarks exercises the tempmark analyzer's all-paths
// TempMark/TempRelease pairing check.
package tempmarks

import "repro/internal/bdd"

// leakEarlyReturn releases on the happy path but leaks on the early return.
func leakEarlyReturn(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	h := k.TempKeep(k.And(f, g))
	if h == bdd.Invalid {
		return bdd.Invalid // want `function exits without TempRelease\(mark\)`
	}
	r := k.Or(h, f)
	k.TempRelease(mark)
	return r
}

// leakFallOffEnd never releases at all.
func leakFallOffEnd(k *bdd.Kernel, f bdd.Ref) {
	mark := k.TempMark()
	k.TempKeep(k.Not(f))
	_ = mark
} // want `function exits without TempRelease\(mark\)`

// leakPanic releases on the normal path but not on the panicking branch.
func leakPanic(k *bdd.Kernel, f bdd.Ref, bad bool) {
	mark := k.TempMark()
	if bad {
		panic("invariant violated") // want `function exits without TempRelease\(mark\)`
	}
	k.TempRelease(mark)
}

// leakOneBranch releases in only one arm of the if.
func leakOneBranch(k *bdd.Kernel, f, g bdd.Ref, which bool) bdd.Ref {
	mark := k.TempMark()
	var r bdd.Ref
	if which {
		r = k.And(f, g)
		k.TempRelease(mark)
	} else {
		r = k.Or(f, g)
	}
	return r // want `function exits without TempRelease\(mark\)`
}

// goodDefer is the canonical pattern: the deferred release covers every
// exit, including panics from callees.
func goodDefer(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	h := k.TempKeep(k.And(f, g))
	if h == bdd.Invalid {
		return bdd.Invalid
	}
	return k.Or(h, f)
}

// goodAllPaths releases explicitly on each path.
func goodAllPaths(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	h := k.TempKeep(k.And(f, g))
	if h == bdd.Invalid {
		k.TempRelease(mark)
		return bdd.Invalid
	}
	r := k.Or(h, f)
	k.TempRelease(mark)
	return r
}

// goodRollingLoop is the accumulator idiom from the experiments package: a
// defer guards the function while the loop re-releases and re-keeps.
func goodRollingLoop(k *bdd.Kernel, fs []bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	acc := bdd.False
	for _, f := range fs {
		nf := k.Or(acc, f)
		if nf == bdd.Invalid {
			return bdd.Invalid
		}
		k.TempRelease(mark)
		acc = k.TempKeep(nf)
	}
	return acc
}

// goodDeferClosure releases inside a deferred closure.
func goodDeferClosure(k *bdd.Kernel, f bdd.Ref) {
	mark := k.TempMark()
	defer func() {
		k.TempRelease(mark)
	}()
	k.TempKeep(k.Not(f))
}

// goodSwitch releases in every case including default.
func goodSwitch(k *bdd.Kernel, f bdd.Ref, n int) {
	mark := k.TempMark()
	switch n {
	case 0:
		k.TempRelease(mark)
	default:
		k.TempKeep(k.Not(f))
		k.TempRelease(mark)
	}
}

// leakSwitchNoDefault releases in the only case, but a missed tag falls
// past the switch unreleased.
func leakSwitchNoDefault(k *bdd.Kernel, f bdd.Ref, n int) {
	mark := k.TempMark()
	k.TempKeep(k.Not(f))
	switch n {
	case 0:
		k.TempRelease(mark)
	}
} // want `function exits without TempRelease\(mark\)`

// goodReorderInsideMark: sifting between TempKeep and TempRelease is legal —
// the temp set is part of the reorder's root set, so pinned intermediates
// survive the sift and the deferred release still pairs the mark.
func goodReorderInsideMark(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	h := k.TempKeep(k.And(f, g))
	k.Reorder(bdd.ReorderOptions{})
	return k.Or(h, f)
}

// finish is an all-paths releaser of its mark parameter; the summary lets
// callers discharge a mark by calling it.
func finish(k *bdd.Kernel, mark int) {
	k.TempRelease(mark)
}

// finishChain releases through another releaser; summaries compose.
func finishChain(k *bdd.Kernel, mark int) {
	finish(k, mark)
}

// finishMaybe releases on only one branch, so it is not a releaser and
// calling it proves nothing.
func finishMaybe(k *bdd.Kernel, mark int, ok bool) {
	if ok {
		k.TempRelease(mark)
	}
}

// goodHelperRelease discharges the mark through the helper on every path.
func goodHelperRelease(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	h := k.TempKeep(k.And(f, g))
	if h == bdd.Invalid {
		finish(k, mark)
		return bdd.Invalid
	}
	r := k.Or(h, f)
	finish(k, mark)
	return r
}

// goodDeferHelper defers the helper instead of TempRelease itself.
func goodDeferHelper(k *bdd.Kernel, f bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	defer finish(k, mark)
	return k.TempKeep(k.Not(f))
}

// goodHelperChain discharges through the two-level helper.
func goodHelperChain(k *bdd.Kernel, f bdd.Ref) {
	mark := k.TempMark()
	k.TempKeep(k.Not(f))
	finishChain(k, mark)
}

// leakHelperMaybe calls the conditional helper, which is not a release.
func leakHelperMaybe(k *bdd.Kernel, f bdd.Ref, ok bool) {
	mark := k.TempMark()
	k.TempKeep(k.Not(f))
	finishMaybe(k, mark, ok)
} // want `function exits without TempRelease\(mark\)`

// leakIgnored leaks deliberately; the comma-separated directive names this
// analyzer among others and silences the finding at the fall-off exit.
func leakIgnored(k *bdd.Kernel, f bdd.Ref) {
	mark := k.TempMark()
	k.TempKeep(k.Not(f))
	_ = mark
	//lint:ignore tempmark,kernelmix the enclosing harness releases every mark between runs
}

// leakReorderEarlyReturn: bailing out on a no-op sift skips the release.
func leakReorderEarlyReturn(k *bdd.Kernel, f bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	h := k.TempKeep(k.Not(f))
	if st := k.Reorder(bdd.ReorderOptions{}); st.After == st.Before {
		return h // want `function exits without TempRelease\(mark\)`
	}
	k.TempRelease(mark)
	return h
}
