// Package tempmarks exercises the tempmark analyzer's all-paths
// TempMark/TempRelease pairing check.
package tempmarks

import "repro/internal/bdd"

// leakEarlyReturn releases on the happy path but leaks on the early return.
func leakEarlyReturn(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	h := k.TempKeep(k.And(f, g))
	if h == bdd.Invalid {
		return bdd.Invalid // want `function exits without TempRelease\(mark\)`
	}
	r := k.Or(h, f)
	k.TempRelease(mark)
	return r
}

// leakFallOffEnd never releases at all.
func leakFallOffEnd(k *bdd.Kernel, f bdd.Ref) {
	mark := k.TempMark()
	k.TempKeep(k.Not(f))
	_ = mark
} // want `function exits without TempRelease\(mark\)`

// leakPanic releases on the normal path but not on the panicking branch.
func leakPanic(k *bdd.Kernel, f bdd.Ref, bad bool) {
	mark := k.TempMark()
	if bad {
		panic("invariant violated") // want `function exits without TempRelease\(mark\)`
	}
	k.TempRelease(mark)
}

// leakOneBranch releases in only one arm of the if.
func leakOneBranch(k *bdd.Kernel, f, g bdd.Ref, which bool) bdd.Ref {
	mark := k.TempMark()
	var r bdd.Ref
	if which {
		r = k.And(f, g)
		k.TempRelease(mark)
	} else {
		r = k.Or(f, g)
	}
	return r // want `function exits without TempRelease\(mark\)`
}

// goodDefer is the canonical pattern: the deferred release covers every
// exit, including panics from callees.
func goodDefer(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	h := k.TempKeep(k.And(f, g))
	if h == bdd.Invalid {
		return bdd.Invalid
	}
	return k.Or(h, f)
}

// goodAllPaths releases explicitly on each path.
func goodAllPaths(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	h := k.TempKeep(k.And(f, g))
	if h == bdd.Invalid {
		k.TempRelease(mark)
		return bdd.Invalid
	}
	r := k.Or(h, f)
	k.TempRelease(mark)
	return r
}

// goodRollingLoop is the accumulator idiom from the experiments package: a
// defer guards the function while the loop re-releases and re-keeps.
func goodRollingLoop(k *bdd.Kernel, fs []bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	acc := bdd.False
	for _, f := range fs {
		nf := k.Or(acc, f)
		if nf == bdd.Invalid {
			return bdd.Invalid
		}
		k.TempRelease(mark)
		acc = k.TempKeep(nf)
	}
	return acc
}

// goodDeferClosure releases inside a deferred closure.
func goodDeferClosure(k *bdd.Kernel, f bdd.Ref) {
	mark := k.TempMark()
	defer func() {
		k.TempRelease(mark)
	}()
	k.TempKeep(k.Not(f))
}

// goodSwitch releases in every case including default.
func goodSwitch(k *bdd.Kernel, f bdd.Ref, n int) {
	mark := k.TempMark()
	switch n {
	case 0:
		k.TempRelease(mark)
	default:
		k.TempKeep(k.Not(f))
		k.TempRelease(mark)
	}
}

// leakSwitchNoDefault releases in the only case, but a missed tag falls
// past the switch unreleased.
func leakSwitchNoDefault(k *bdd.Kernel, f bdd.Ref, n int) {
	mark := k.TempMark()
	k.TempKeep(k.Not(f))
	switch n {
	case 0:
		k.TempRelease(mark)
	}
} // want `function exits without TempRelease\(mark\)`

// goodReorderInsideMark: sifting between TempKeep and TempRelease is legal —
// the temp set is part of the reorder's root set, so pinned intermediates
// survive the sift and the deferred release still pairs the mark.
func goodReorderInsideMark(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	defer k.TempRelease(mark)
	h := k.TempKeep(k.And(f, g))
	k.Reorder(bdd.ReorderOptions{})
	return k.Or(h, f)
}

// leakReorderEarlyReturn: bailing out on a no-op sift skips the release.
func leakReorderEarlyReturn(k *bdd.Kernel, f bdd.Ref) bdd.Ref {
	mark := k.TempMark()
	h := k.TempKeep(k.Not(f))
	if st := k.Reorder(bdd.ReorderOptions{}); st.After == st.Before {
		return h // want `function exits without TempRelease\(mark\)`
	}
	k.TempRelease(mark)
	return h
}
