// Package protects exercises the tempmark analyzer's Protect/Unprotect
// balance heuristic.
package protects

import "repro/internal/bdd"

type holder struct {
	root bdd.Ref
	k    *bdd.Kernel
}

// leakPlain pins a local that never escapes and never unpins it.
func leakPlain(k *bdd.Kernel, f, g bdd.Ref) {
	r := k.And(f, g)
	k.Protect(r) // want `Protect\(r\) has no matching Unprotect`
	_ = k.Err()
}

// goodBalanced pins and unpins.
func goodBalanced(k *bdd.Kernel, f, g bdd.Ref) {
	r := k.And(f, g)
	k.Protect(r)
	k.GC()
	k.Unprotect(r)
	_ = k.Err()
}

// goodEscapeField hands the pinned value to a longer-lived structure, which
// owns the balancing Unprotect (the index store pattern).
func goodEscapeField(h *holder, f bdd.Ref) {
	h.k.Protect(f)
	h.root = f
}

// goodEscapeReturn returns the pinned value; the caller owns the pin.
func goodEscapeReturn(k *bdd.Kernel, f, g bdd.Ref) bdd.Ref {
	r := k.And(f, g)
	k.Protect(r)
	return r
}

// goodOwnershipComment documents the transfer.
func goodOwnershipComment(k *bdd.Kernel, f bdd.Ref) {
	// ownership: pin passes to the caller's kernel teardown
	k.Protect(f)
	_ = k.Err()
}

// goodFieldPin pins a value already held by a structure; the structure's
// teardown owns the Unprotect.
func goodFieldPin(h *holder) {
	h.k.Protect(h.root)
	_ = h.k.Err()
}
