package ackorder_test

import (
	"testing"

	"repro/internal/analysis/ackorder"
	"repro/internal/analysis/analysistest"
)

func TestAckOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", ackorder.Analyzer, "ackorders")
}
