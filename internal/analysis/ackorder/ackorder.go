// Package ackorder enforces the log-before-ack protocol of the update path.
//
// The service's durability contract (DESIGN.md, "Durability") is that an
// acknowledged update is already durable and visible: the worker appends the
// batch to the WAL and publishes the round's epoch (replica-pool version,
// atomic epoch store) before the submitter's reply channel receives its
// acknowledgment. Code motion that slides durability work past the ack —
// "log after ack" — silently re-introduces the lost-acknowledged-update bug
// the protocol exists to prevent, and no test notices until a crash lands in
// the window.
//
// The analyzer performs a must-not-follow ordering check on every function
// body: once a path acknowledges an update, no WAL append, epoch publish, or
// update apply may follow on that path. An acknowledgment is
//
//   - a channel send of a reply-shaped struct — one with both an error field
//     and an applied/epoch field (updateReply, replResult). Sends of
//     composite literals that set only the error field are refusals, not
//     acknowledgments: a failed round promises nothing about durability;
//   - a WriteHeader call with a constant 2xx status, directly or through a
//     helper that forwards a status parameter (the helper's summary records
//     which parameter; only call sites passing a constant 2xx count).
//
// Durability work is a (*store.Store) Append/AppendBatch, a (*replica.Pool)
// Publish, an atomic Store on an epoch-named field, a (*core.Checker) Apply,
// or a call to any function whose summary (package-local call graph, or the
// vet fact protocol across packages) says it does one of those.
//
// Rounds bound the check. A call to a function that both acknowledges and
// does durability work is a complete round (applyBatch, applyRepl): the
// order inside it is checked where it is defined, and the state resets at
// the call. Loop bodies are per-round as well: an iteration's ack followed
// by the next iteration's append is two rounds, so ack state does not
// propagate along back edges (it does propagate out of the loop).
package ackorder

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ackorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ackorder",
	Doc: "checks that update acknowledgments follow the WAL append and epoch publish " +
		"(log-before-ack), never precede them on the same path",
	Run: run,
}

// Fact summarizes a function's protocol-relevant effects: whether calling it
// acknowledges an update, which durability work it performs, and — for
// status-writer helpers — which receiver-unified parameter (1-based) it
// forwards to WriteHeader.
type Fact struct {
	Acks        bool `json:"acks,omitempty"`
	Appends     bool `json:"appends,omitempty"`
	Publishes   bool `json:"publishes,omitempty"`
	Applies     bool `json:"applies,omitempty"`
	StatusParam int  `json:"status_param,omitempty"`
}

func (f *Fact) empty() bool {
	return f == nil || (!f.Acks && !f.durable() && f.StatusParam == 0)
}

func (f *Fact) durable() bool { return f != nil && (f.Appends || f.Publishes || f.Applies) }

// durVerbs renders what a summary's durability flags cover, for diagnostics.
func (f *Fact) durVerbs() string {
	var vs []string
	if f.Appends {
		vs = append(vs, "appends to the WAL")
	}
	if f.Publishes {
		vs = append(vs, "publishes an epoch")
	}
	if f.Applies {
		vs = append(vs, "applies updates")
	}
	return strings.Join(vs, ", ")
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	info := pass.TypesInfo

	params := make(map[*analysis.FuncNode]map[types.Object]int, len(g.Funcs))
	summaries := make(map[*analysis.FuncNode]*Fact, len(g.Funcs))
	for _, n := range g.Funcs {
		pm := map[types.Object]int{}
		for i, v := range analysis.FuncParams(info, n.Decl) {
			pm[v] = i
		}
		params[n] = pm
		summaries[n] = directFact(pass, n, pm)
	}

	factFor := func(fn *types.Func) *Fact {
		if local, ok := g.ByObj[fn]; ok {
			return summaries[local]
		}
		var imported Fact
		if pass.ImportObjectFact(fn, &imported) {
			return &imported
		}
		return nil
	}

	// Propagate effects through the call graph to a fixed point: flags only
	// ever turn on, so this terminates.
	for changed, rounds := true, 0; changed && rounds <= len(g.Funcs)+1; rounds++ {
		changed = false
		for _, n := range g.Funcs {
			sum := summaries[n]
			for _, cs := range n.Calls {
				cf := factFor(cs.Callee)
				if cf.empty() {
					continue
				}
				if cf.Acks && !sum.Acks {
					sum.Acks, changed = true, true
				}
				if cf.Appends && !sum.Appends {
					sum.Appends, changed = true, true
				}
				if cf.Publishes && !sum.Publishes {
					sum.Publishes, changed = true, true
				}
				if cf.Applies && !sum.Applies {
					sum.Applies, changed = true, true
				}
				if cf.StatusParam > 0 {
					args := analysis.CallArgs(info, cs.Call, cs.Callee)
					if i := cf.StatusParam - 1; i < len(args) {
						if is2xx(info, args[i]) && !sum.Acks {
							sum.Acks, changed = true, true
						} else if pi, ok := params[n][analysis.ObjectOf(info, args[i])]; ok && sum.StatusParam == 0 {
							sum.StatusParam, changed = pi+1, true
						}
					}
				}
			}
		}
	}

	for _, n := range g.Funcs {
		if sum := summaries[n]; !sum.empty() {
			if err := pass.ExportFact(analysis.FuncKey(n.Obj), sum); err != nil {
				return err
			}
		}
	}

	w := &walker{pass: pass, info: info, factFor: factFor}
	for _, n := range g.Funcs {
		w.stmt(n.Decl.Body, wstate{})
	}
	return nil
}

// directFact scans one body (nested literals included: the service runs its
// closures synchronously) for the protocol events the patterns recognize.
func directFact(pass *analysis.Pass, n *analysis.FuncNode, params map[types.Object]int) *Fact {
	info := pass.TypesInfo
	sum := &Fact{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			ev := directEvent(info, node)
			sum.Appends = sum.Appends || ev.appends
			sum.Publishes = sum.Publishes || ev.publishes
			sum.Applies = sum.Applies || ev.applies
			sum.Acks = sum.Acks || ev.acks
			if i, ok := writeHeaderForward(info, node, params); ok && sum.StatusParam == 0 {
				sum.StatusParam = i + 1
			}
		case *ast.SendStmt:
			if ok, _ := ackSend(info, node); ok {
				sum.Acks = true
			}
		}
		return true
	})
	return sum
}

// event is one classified protocol action at a call or send.
type event struct {
	acks                        bool
	appends, publishes, applies bool
	desc                        string // durability description, for reports
}

func (ev event) durable() bool { return ev.appends || ev.publishes || ev.applies }

// directEvent classifies the primitive patterns of one call, ignoring callee
// summaries.
func directEvent(info *types.Info, call *ast.CallExpr) event {
	var ev event
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ev
	}
	name := sel.Sel.Name
	if name == "WriteHeader" && len(call.Args) == 1 && is2xx(info, call.Args[0]) {
		ev.acks = true
	}
	if tv, ok := info.Types[sel.X]; ok {
		if (name == "Append" || name == "AppendBatch") && analysis.IsStorePtr(tv.Type) {
			ev.appends = true
			ev.desc = "WAL append (*Store)." + name
		}
		if name == "Publish" && analysis.IsPoolPtr(tv.Type) {
			ev.publishes = true
			ev.desc = "epoch publish (*Pool).Publish"
		}
	}
	if name == "Store" && len(call.Args) == 1 && epochNamed(sel.X) {
		ev.publishes = true
		ev.desc = "epoch publish (atomic epoch store)"
	}
	if _, nm, ok := analysis.CheckerMethod(info, call); ok && nm == "Apply" {
		ev.applies = true
		ev.desc = "update apply (*Checker).Apply"
	}
	return ev
}

// writeHeaderForward reports the unified parameter index a WriteHeader call
// forwards, for status-writer helpers (writeJSON(w, status, v)).
func writeHeaderForward(info *types.Info, call *ast.CallExpr, params map[types.Object]int) (int, bool) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return 0, false
	}
	i, ok := params[analysis.ObjectOf(info, call.Args[0])]
	return i, ok
}

// is2xx reports whether e is a constant integer in [200, 300).
func is2xx(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	n, ok := constant.Int64Val(tv.Value)
	return ok && n >= 200 && n < 300
}

// epochNamed reports whether the atomic value being stored is held in an
// epoch-named variable or field (s.epoch, leaderEpoch, ...).
func epochNamed(e ast.Expr) bool {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(e.Name), "epoch")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(e.Sel.Name), "epoch")
	}
	return false
}

// ackSend reports whether a send acknowledges an update: the value is
// reply-shaped (a struct carrying both an error field and an applied/epoch
// field) and is not an error-only refusal literal.
func ackSend(info *types.Info, s *ast.SendStmt) (bool, string) {
	tv, ok := info.Types[s.Value]
	if !ok || !replyShaped(tv.Type) {
		return false, ""
	}
	if errOnlyLiteral(s.Value) {
		return false, ""
	}
	return true, "reply send"
}

// replyShaped reports whether t (or what it points to) is a struct with both
// an error field and an applied/epoch field — the shape of an update
// acknowledgment. Job and wire structs lack the error field and stay out.
func replyShaped(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasErr, hasAck bool
	for i := 0; i < st.NumFields(); i++ {
		switch name := strings.ToLower(st.Field(i).Name()); name {
		case "err", "error":
			hasErr = true
		case "applied", "epoch":
			hasAck = true
		}
	}
	return hasErr && hasAck
}

// errOnlyLiteral reports whether e is a composite literal (possibly behind &)
// whose only keyed fields are the error field: a refusal, exempt from the
// ack rule because a failed round promises no durability.
func errOnlyLiteral(e ast.Expr) bool {
	e = analysis.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = analysis.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok || len(lit.Elts) == 0 {
		return false
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return false
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return false
		}
		switch strings.ToLower(key.Name) {
		case "err", "error":
		default:
			return false
		}
	}
	return true
}

// the ordering walk

// wstate is the path state of the must-not-follow walk.
type wstate struct {
	acked  bool
	ackPos token.Pos
	dead   bool // the path ended (return, break, continue, goto)
}

func merge(a, b wstate) wstate {
	if a.dead {
		return b
	}
	if b.dead {
		return a
	}
	out := wstate{acked: a.acked || b.acked}
	switch {
	case a.acked:
		out.ackPos = a.ackPos
	case b.acked:
		out.ackPos = b.ackPos
	}
	return out
}

type walker struct {
	pass    *analysis.Pass
	info    *types.Info
	factFor func(*types.Func) *Fact
}

// callEvent classifies one call: its direct patterns plus the callee's
// summary.
func (w *walker) callEvent(call *ast.CallExpr) event {
	ev := directEvent(w.info, call)
	callee := analysis.StaticCallee(w.info, call)
	if callee == nil {
		return ev
	}
	cf := w.factFor(callee)
	if cf.empty() {
		return ev
	}
	ev.acks = ev.acks || cf.Acks
	if cf.StatusParam > 0 {
		args := analysis.CallArgs(w.info, call, callee)
		if i := cf.StatusParam - 1; i < len(args) && is2xx(w.info, args[i]) {
			ev.acks = true
		}
	}
	if cf.durable() {
		ev.appends = ev.appends || cf.Appends
		ev.publishes = ev.publishes || cf.Publishes
		ev.applies = ev.applies || cf.Applies
		if ev.desc == "" {
			ev.desc = fmt.Sprintf("call to %s (%s)", analysis.FuncKey(callee), cf.durVerbs())
		}
	}
	return ev
}

// apply folds one event into the path state, reporting durability work that
// follows an acknowledgment. An event that both acks and does durability
// work is a complete round: checked where it is defined, state resets here.
func (w *walker) apply(ev event, pos token.Pos, st wstate) wstate {
	switch {
	case ev.acks && ev.durable():
		return wstate{}
	case ev.durable() && st.acked:
		w.pass.Reportf(pos,
			"%s after the update was acknowledged (line %d): an acknowledged update must "+
				"already be durable and visible — WAL append and epoch publish belong before the ack",
			ev.desc, w.pass.Fset.Position(st.ackPos).Line)
		return st
	case ev.acks && !st.acked:
		st.acked, st.ackPos = true, pos
	}
	return st
}

// expr walks an expression, folding call events in evaluation order (operands
// before the call itself). Function literals are separate bodies: they run
// at some other time, so they are checked independently from a fresh state
// and leak nothing into the enclosing path.
func (w *walker) expr(e ast.Expr, st wstate) wstate {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		st = w.expr(e.Fun, st)
		for _, a := range e.Args {
			st = w.expr(a, st)
		}
		st = w.apply(w.callEvent(e), e.Pos(), st)
	case *ast.FuncLit:
		w.stmt(e.Body, wstate{})
	case *ast.ParenExpr:
		st = w.expr(e.X, st)
	case *ast.SelectorExpr:
		st = w.expr(e.X, st)
	case *ast.StarExpr:
		st = w.expr(e.X, st)
	case *ast.UnaryExpr:
		st = w.expr(e.X, st)
	case *ast.BinaryExpr:
		st = w.expr(e.X, st)
		st = w.expr(e.Y, st)
	case *ast.IndexExpr:
		st = w.expr(e.X, st)
		st = w.expr(e.Index, st)
	case *ast.SliceExpr:
		st = w.expr(e.X, st)
		st = w.expr(e.Low, st)
		st = w.expr(e.High, st)
		st = w.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		st = w.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			st = w.expr(el, st)
		}
	case *ast.KeyValueExpr:
		st = w.expr(e.Value, st)
	}
	return st
}

// stmt walks a statement, threading the path state through it.
func (w *walker) stmt(s ast.Stmt, st wstate) wstate {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			st = w.stmt(sub, st)
		}
	case *ast.ExprStmt:
		st = w.expr(s.X, st)
	case *ast.SendStmt:
		st = w.expr(s.Chan, st)
		st = w.expr(s.Value, st)
		if ok, _ := ackSend(w.info, s); ok {
			st = w.apply(event{acks: true}, s.Arrow, st)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st = w.expr(r, st)
		}
		for _, l := range s.Lhs {
			st = w.expr(l, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.expr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		st = w.expr(s.X, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.expr(r, st)
		}
		st.dead = true
	case *ast.BranchStmt:
		st.dead = true
	case *ast.LabeledStmt:
		st = w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		st = w.stmt(s.Init, st)
		st = w.expr(s.Cond, st)
		then := w.stmt(s.Body, st)
		alt := st
		if s.Else != nil {
			alt = w.stmt(s.Else, st)
		}
		st = merge(then, alt)
	case *ast.SwitchStmt:
		st = w.stmt(s.Init, st)
		st = w.expr(s.Tag, st)
		st = w.branches(s.Body, nil, st)
	case *ast.TypeSwitchStmt:
		st = w.stmt(s.Init, st)
		st = w.branches(s.Body, nil, st)
	case *ast.SelectStmt:
		st = w.branches(s.Body, func(c ast.Stmt) []ast.Stmt {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				return []ast.Stmt{comm}
			}
			return nil
		}, st)
	case *ast.ForStmt:
		// A loop iteration is one round: ack state does not flow along the
		// back edge (an iteration's ack before the next iteration's append
		// is two correct rounds), but it does flow out of the loop.
		st = w.stmt(s.Init, st)
		st = w.expr(s.Cond, st)
		body := w.stmt(s.Body, st)
		body = w.stmt(s.Post, body)
		st = merge(st, body)
	case *ast.RangeStmt:
		st = w.expr(s.X, st)
		st = merge(st, w.stmt(s.Body, st))
	case *ast.GoStmt:
		// The spawned goroutine is unordered with this path; its own body is
		// checked independently (a literal here, or its declaration).
		for _, a := range s.Call.Args {
			st = w.expr(a, st)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmt(lit.Body, wstate{})
		}
	case *ast.DeferStmt:
		// Arguments evaluate now; the call runs at return, past every
		// statement, so its events are not part of this path.
		for _, a := range s.Call.Args {
			st = w.expr(a, st)
		}
	}
	return st
}

// branches walks a switch/select body: each clause starts from the entry
// state and the results merge, together with the fall-through (no case
// taken) state.
func (w *walker) branches(body *ast.BlockStmt, pre func(ast.Stmt) []ast.Stmt, st wstate) wstate {
	out := st
	for _, c := range body.List {
		cs := st
		if pre != nil {
			for _, p := range pre(c) {
				cs = w.stmt(p, cs)
			}
		}
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				cs = w.expr(e, cs)
			}
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		for _, sub := range list {
			cs = w.stmt(sub, cs)
		}
		out = merge(out, cs)
	}
	return out
}
