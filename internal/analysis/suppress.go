package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding can be silenced with a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// placed either on the line of the finding (trailing comment) or on the line
// directly above it. The justification is mandatory: a directive without one
// does not suppress anything and instead produces its own diagnostic, so
// every deliberate exception to a contract carries its reason in the source.
const directivePrefix = "//lint:ignore "

type directive struct {
	analyzers []string // analyzer names the directive covers
	just      string   // justification text (may be empty; then invalid)
	pos       token.Pos
	line      int
	file      string
	used      bool
}

// parseDirectives extracts every lint:ignore directive from the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var ds []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				names, just := splitDirective(rest)
				p := fset.Position(c.Pos())
				ds = append(ds, &directive{
					analyzers: names,
					just:      just,
					pos:       c.Pos(),
					line:      p.Line,
					file:      p.Filename,
					used:      false,
				})
			}
		}
	}
	return ds
}

// splitDirective separates the analyzer-name list from the justification.
// The list is comma-separated and may contain spaces after the commas
// ("a,b why" and "a, b why" both name two analyzers): name tokens keep being
// consumed as long as the accumulated list ends with a comma, and everything
// after the last name token is the justification.
func splitDirective(rest string) (names []string, just string) {
	s := rest
	var list strings.Builder
	for {
		i := strings.IndexAny(s, " \t")
		if i < 0 {
			list.WriteString(s)
			s = ""
			break
		}
		list.WriteString(s[:i])
		s = strings.TrimLeft(s[i:], " \t")
		if !strings.HasSuffix(list.String(), ",") {
			break
		}
	}
	for _, n := range strings.Split(list.String(), ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(s)
}

func (d *directive) covers(name string, file string, line int) bool {
	if d.file != file || (d.line != line && d.line != line-1) {
		return false
	}
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// applySuppressions marks diagnostics covered by a well-formed directive as
// Suppressed (callers drop or surface them as their output mode requires) and
// appends a diagnostic for each malformed (justification-free) directive.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ds := parseDirectives(fset, files)
	if len(ds) == 0 {
		return diags
	}
	for i := range diags {
		p := fset.Position(diags[i].Pos)
		for _, d := range ds {
			if !d.covers(diags[i].Analyzer, p.Filename, p.Line) {
				continue
			}
			if d.just == "" {
				// An unjustified directive suppresses nothing; the
				// directive diagnostic below explains why the finding
				// is still live.
				continue
			}
			d.used = true
			diags[i].Suppressed = true
			break
		}
	}
	for _, d := range ds {
		if d.just == "" {
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lintdirective",
				Message:  "lint:ignore directive needs a justification: //lint:ignore <analyzer> <why this exception is sound>",
			})
		}
	}
	return diags
}
