package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding can be silenced with a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// placed either on the line of the finding (trailing comment) or on the line
// directly above it. The justification is mandatory: a directive without one
// does not suppress anything and instead produces its own diagnostic, so
// every deliberate exception to a contract carries its reason in the source.
const directivePrefix = "//lint:ignore "

type directive struct {
	analyzers []string // analyzer names the directive covers
	just      string   // justification text (may be empty; then invalid)
	pos       token.Pos
	line      int
	file      string
	used      bool
}

// parseDirectives extracts every lint:ignore directive from the files.
func parseDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var ds []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				names, just := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					names, just = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				p := fset.Position(c.Pos())
				ds = append(ds, &directive{
					analyzers: strings.Split(names, ","),
					just:      just,
					pos:       c.Pos(),
					line:      p.Line,
					file:      p.Filename,
					used:      false,
				})
			}
		}
	}
	return ds
}

func (d *directive) covers(name string, file string, line int) bool {
	if d.file != file || (d.line != line && d.line != line-1) {
		return false
	}
	for _, a := range d.analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// applySuppressions drops diagnostics covered by a well-formed directive and
// appends a diagnostic for each malformed (justification-free) directive.
func applySuppressions(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	ds := parseDirectives(fset, files)
	if len(ds) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, diag := range diags {
		p := fset.Position(diag.Pos)
		suppressed := false
		for _, d := range ds {
			if !d.covers(diag.Analyzer, p.Filename, p.Line) {
				continue
			}
			if d.just == "" {
				// An unjustified directive suppresses nothing; the
				// directive diagnostic below explains why the finding
				// is still live.
				continue
			}
			d.used = true
			suppressed = true
			break
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	for _, d := range ds {
		if d.just == "" {
			kept = append(kept, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lintdirective",
				Message:  "lint:ignore directive needs a justification: //lint:ignore <analyzer> <why this exception is sound>",
			})
		}
	}
	return kept
}
