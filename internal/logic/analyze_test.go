package logic

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func analyzeFixture(t *testing.T) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	if _, err := cat.CreateTable("R", []relation.Column{
		{Name: "a", Domain: "D1"}, {Name: "b", Domain: "D2"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("S", []relation.Column{
		{Name: "b", Domain: "D2"}, {Name: "c", Domain: "D3"},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestAnalyzeInfersDomains(t *testing.T) {
	cat := analyzeFixture(t)
	f := mustParse(t, `forall x, y, z: R(x, y) and S(y, z) => x = x`)
	an, err := Analyze(f, CatalogResolver{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if an.VarDomains["x"] != cat.Domain("D1") {
		t.Error("x should have domain D1")
	}
	if an.VarDomains["y"] != cat.Domain("D2") {
		t.Error("y should have domain D2")
	}
	if an.VarDomains["z"] != cat.Domain("D3") {
		t.Error("z should have domain D3")
	}
}

func TestAnalyzeClosesFreeVariables(t *testing.T) {
	cat := analyzeFixture(t)
	f := mustParse(t, `R(x, y) => x = "v"`)
	an, err := Analyze(f, CatalogResolver{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	q, ok := an.F.(Quant)
	if !ok || !q.All {
		t.Fatalf("free variables not universally closed: %s", an.F)
	}
	if len(q.Vars) != 2 {
		t.Fatalf("closed over %v", q.Vars)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cat := analyzeFixture(t)
	cases := []struct {
		src, wantErr string
	}{
		{`T(x)`, "unknown table"},
		{`R(x)`, "columns"},
		{`R(x, y) and S(x, z)`, "domain"},          // x used over D1 and D2
		{`forall x: R(x, y) => x = y`, "domain"},   // cross-domain comparison
		{`x = y`, "never in a predicate"},          // unbounded variables
		{`forall q: R(x, y)`, "never occurs"},      // unbounded quantifier
		{`R(x, y) and R(x, y, z) => x = x`, "arg"}, // inconsistent arity
		{`"a" = "b"`, "no variable side"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		_, err = Analyze(f, CatalogResolver{Catalog: cat})
		if err == nil {
			t.Errorf("Analyze(%q) succeeded, want error containing %q", c.src, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Analyze(%q) error %q does not mention %q", c.src, err, c.wantErr)
		}
	}
}

func TestAnalyzeConstComparisonsAllowed(t *testing.T) {
	cat := analyzeFixture(t)
	for _, src := range []string{
		`forall x, y: R(x, y) => x = "v"`,
		`forall x, y: R(x, y) => x != "v"`,
		`forall x, y: R(x, y) => x in {"a", "b"}`,
		`forall x, y, z: R(x, y) and S(y, z) => true`,
	} {
		f := mustParse(t, src)
		if _, err := Analyze(f, CatalogResolver{Catalog: cat}); err != nil {
			t.Errorf("Analyze(%q): %v", src, err)
		}
	}
}

func TestBaseName(t *testing.T) {
	if BaseName("x$12") != "x" || BaseName("x") != "x" || BaseName("_anon3$4") != "_anon3" {
		t.Fatal("BaseName wrong")
	}
}
