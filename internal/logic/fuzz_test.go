package logic

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"
)

// seedParseCorpus seeds the fuzzer with every grammar production the
// repository actually exercises: hand-picked edge cases, the constraint
// strings from the package's own tests, and every raw-string literal in the
// examples (which embed their constraint programs as backtick literals).
func seedParseCorpus(f *testing.F) {
	for _, seed := range []string{
		// Edge cases.
		`forall x: P(x, "a") => exists y: Q(y) and R(x, y)`,
		`x in {"a", "b"}`,
		`not (P(x) or Q(x)) and true`,
		`P(_, _, x)`,
		`constraint c: forall x: P(x).`,
		`x != "v" => false`,
		"(((((", "forall", `"unterminated`, "a=b=c", "# comment only",
		// The round-trip suite from parse_test.go.
		`P(x, "a")`,
		`x = "v"`,
		`x != y`,
		`x in {"a", "b", "c"}`,
		`not (P(x) or Q(x))`,
		`forall x, y: (P(x) and Q(y)) or not R(x, y)`,
		`exists x: P(x) => false`,
		`true and false`,
		`P(x) or Q(x) and R(x) => S(x)`,
		`forall x: P(x) => Q(x)`,
		`forall x: P(x, y) and (exists z: Q(z, w))`,
		`P(x) and (forall x: Q(x))`,
		`x = "a\"b"`,
	} {
		f.Add(seed)
	}
	// Example programs: every backtick literal is either a constraint file
	// or a single formula; either way it is a grammar-shaped seed.
	paths, _ := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	rawLit := regexp.MustCompile("(?s)`[^`]*`")
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		for _, lit := range rawLit.FindAllString(string(src), -1) {
			f.Add(lit[1 : len(lit)-1])
		}
	}
}

// FuzzParse: the parser must never panic; anything it accepts must print to
// a form it accepts again, the printed form must be a fixed point, and
// re-parsing it must rebuild the *same AST* — printing loses nothing.
func FuzzParse(f *testing.F) {
	seedParseCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := Parse(src)
		if err != nil {
			return
		}
		printed := formula.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q does not re-parse: %v", printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print not a fixed point: %q -> %q", printed, again.String())
		}
		if !reflect.DeepEqual(again, formula) {
			t.Fatalf("re-parse changed the AST of %q:\n  first:  %#v\n  second: %#v", printed, formula, again)
		}
	})
}

// FuzzParseConstraints: the constraints-file parser must never panic, and
// each accepted constraint must satisfy the same round-trip law as Parse.
func FuzzParseConstraints(f *testing.F) {
	f.Add("constraint a: P(x).\nconstraint b: Q(y)")
	f.Add("constraint")
	f.Add("# nothing")
	f.Fuzz(func(t *testing.T, src string) {
		cs, err := ParseConstraints(src)
		if err != nil {
			return
		}
		for _, c := range cs {
			printed := c.F.String()
			again, err := Parse(printed)
			if err != nil {
				t.Fatalf("constraint %s: printed form %q does not re-parse: %v", c.Name, printed, err)
			}
			if !reflect.DeepEqual(again, c.F) {
				t.Fatalf("constraint %s: re-parse changed the AST of %q", c.Name, printed)
			}
		}
	})
}
