package logic

import "testing"

// FuzzParse: the parser must never panic, and anything it accepts must
// print to a form it accepts again (printing is a fixed point).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`forall x: P(x, "a") => exists y: Q(y) and R(x, y)`,
		`x in {"a", "b"}`,
		`not (P(x) or Q(x)) and true`,
		`P(_, _, x)`,
		`constraint c: forall x: P(x).`,
		`x != "v" => false`,
		"(((((", "forall", `"unterminated`, "a=b=c", "# comment only",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := Parse(src)
		if err != nil {
			return
		}
		printed := formula.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q does not re-parse: %v", printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print not a fixed point: %q -> %q", printed, again.String())
		}
	})
}

// FuzzParseConstraints: the constraints-file parser must never panic.
func FuzzParseConstraints(f *testing.F) {
	f.Add("constraint a: P(x).\nconstraint b: Q(y)")
	f.Add("constraint")
	f.Add("# nothing")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseConstraints(src)
	})
}
