package logic

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bdd"
	"repro/internal/fdd"
	"repro/internal/index"
)

// eval.go checks rewritten constraints against BDD logical indices. Every
// constraint variable receives a scratch finite-domain block; predicate
// occurrences are evaluated by restricting the index BDD with the constant
// arguments and renaming the remaining canonical blocks onto the variable
// blocks (the §4.2 rename strategy), falling back to on-the-fly encoding of
// the filtered table when the rename is not order-safe. Conjunction then
// performs joins, and quantifiers evaluate through AppEx/AppAll when they
// sit directly above a binary connective (§4.3).

// ErrNoIndex reports that a predicate has no usable logical index; the
// caller is expected to validate the constraint with SQL instead.
var ErrNoIndex = errors.New("logic: no logical index for predicate")

// EvalOptions selects the evaluation strategy. The defaults enable every
// optimization the paper recommends; the ablation benchmarks switch them
// off individually.
type EvalOptions struct {
	// Rewrite configures the §4.4 pipeline.
	Rewrite RewriteOptions
	// UseAppQuant evaluates ∃x(a op b) and ∀x(a op b) with the combined
	// AppEx/AppAll operations instead of materializing (a op b) first.
	UseAppQuant bool
	// RenameJoin binds predicate arguments by renaming index blocks onto
	// variable blocks. When false the evaluator uses the naive strategy of
	// §4.2: conjoin equality BDDs between index blocks and variable blocks
	// and quantify the index blocks out.
	RenameJoin bool
	// CanonicalBlocks assigns constraint variables the index's own blocks
	// where possible (largest tables first), so the biggest BDDs need no
	// rename at all — the paper operates directly on the index BDDs the
	// same way.
	CanonicalBlocks bool
	// EarlyProject existentially projects out, at the predicate, columns
	// bound to single-occurrence existential variables (the on-the-fly
	// projection the paper's indices over column subsets correspond to).
	EarlyProject bool
}

// DefaultEvalOptions enables the full optimized strategy.
func DefaultEvalOptions() EvalOptions {
	return EvalOptions{
		Rewrite:         DefaultRewriteOptions(),
		UseAppQuant:     true,
		RenameJoin:      true,
		EarlyProject:    true,
		CanonicalBlocks: true,
	}
}

// Evaluator checks constraints against the indices of a Store.
type Evaluator struct {
	store *index.Store
	res   Resolver
	opts  EvalOptions

	scratch     map[scratchKey][]*fdd.Domain
	replaceMaps map[string]bdd.ReplaceMap
	eqCache     map[[2]*fdd.Domain]bdd.Ref
	// predCache memoizes fully bound predicate BDDs across evaluations,
	// invalidated by table version. Re-validating a constraint set after a
	// batch of updates (the monitoring workload) then skips the
	// restrict/rename work for unchanged tables.
	predCache map[string]predCacheEntry
}

type predCacheEntry struct {
	version uint64
	ref     bdd.Ref
}

type scratchKey struct {
	domain string
	bits   int
}

// NewEvaluator creates an evaluator using the given index store and
// predicate resolver.
func NewEvaluator(store *index.Store, res Resolver, opts EvalOptions) *Evaluator {
	return &Evaluator{
		store:       store,
		res:         res,
		opts:        opts,
		scratch:     make(map[scratchKey][]*fdd.Domain),
		replaceMaps: make(map[string]bdd.ReplaceMap),
		eqCache:     make(map[[2]*fdd.Domain]bdd.Ref),
		predCache:   make(map[string]predCacheEntry),
	}
}

// Options returns the evaluator's options.
func (ev *Evaluator) Options() EvalOptions { return ev.opts }

// Outcome is the result of evaluating one constraint with BDDs.
type Outcome struct {
	// Holds reports whether the constraint is satisfied by the database.
	Holds bool
	// Mode is the check that decided Holds (validity or satisfiability).
	Mode CheckMode
	// Root is the BDD of the rewritten body over the blocks of the
	// stripped leading quantifier block. For a CheckValidity outcome the
	// satisfying assignments of ¬Root are exactly the variable bindings
	// witnessing violations.
	Root bdd.Ref
	// Stripped lists the variables of the dropped leading quantifier, and
	// Blocks maps them (and all other variables) to their blocks.
	Stripped []string
	Blocks   map[string]*fdd.Domain
	// Violations, set for CheckValidity outcomes, is the BDD whose
	// satisfying assignments are exactly the in-domain bindings of the
	// stripped variables that violate the constraint.
	Violations bdd.Ref
}

// Eval analyzes, rewrites and evaluates a constraint. It returns ErrNoIndex
// if a predicate lacks an index, or bdd.ErrBudget if evaluation exceeded the
// node budget; in both cases the caller should fall back to SQL processing
// (the kernel's error state is already cleared).
func (ev *Evaluator) Eval(c Constraint) (*Outcome, error) {
	an, err := Analyze(c.F, ev.res)
	if err != nil {
		return nil, err
	}
	rw := Rewrite(an.F, ev.opts.Rewrite)
	env, err := ev.newEnv(an, rw)
	if err != nil {
		return nil, err
	}
	// Intermediates held in local variables during the evaluation are
	// pushed onto the kernel's temp-root stack so garbage collection at
	// operation boundaries cannot reclaim them; release them wholesale when
	// the evaluation finishes.
	kk := ev.store.Kernel()
	defer kk.TempRelease(kk.TempMark())
	root, err := ev.eval(rw.Body, env, false)
	if err != nil {
		ev.Recover()
		return nil, err
	}
	kk.TempKeep(root)
	out := &Outcome{
		Mode:     rw.Mode,
		Root:     root,
		Stripped: rw.Stripped,
		Blocks:   env.blocks,
	}
	// The stripped leading quantifiers range over the finite domains, not
	// over all bit patterns of the blocks, so the final test is relativized
	// with the domain guard of the stripped variables.
	guard, err := ev.domGuard(env, rw.Stripped)
	if err != nil {
		ev.Recover()
		return nil, err
	}
	k := ev.store.Kernel()
	if rw.Mode == CheckValidity {
		viol := k.Diff(guard, root)
		if viol == bdd.Invalid {
			err := ev.kerr()
			ev.Recover()
			return nil, err
		}
		out.Violations = viol
		out.Holds = viol == bdd.False
	} else {
		wit := k.And(guard, root)
		if wit == bdd.Invalid {
			err := ev.kerr()
			ev.Recover()
			return nil, err
		}
		out.Holds = wit != bdd.False
	}
	return out, nil
}

// Recover clears a sticky kernel error and collects the garbage the aborted
// evaluation left behind, so the store stays usable for the SQL fallback
// path and for later constraints.
func (ev *Evaluator) Recover() {
	k := ev.store.Kernel()
	if k.Err() != nil {
		k.ClearErr()
	}
	k.GC()
}

// evalEnv carries the per-evaluation state.
type evalEnv struct {
	an *Analysis
	// blocks assigns every variable of the rewritten body a block.
	blocks map[string]*fdd.Domain
	// occurrences counts free+pred occurrences of each variable in the body.
	occurrences map[string]int
	// projectable marks existentially bound variables whose path from
	// binder to atom crosses only ∧/∨ connectives. Only those may be
	// projected out at the predicate: pushing ∃y past a Not flips its
	// meaning, and past another quantifier swaps quantifier order.
	projectable map[string]bool
}

// newEnv walks the rewritten body, assigns a scratch block to every
// variable, and gathers the occurrence/binder information the early
// projection rule needs. Blocks for the variables of each predicate are
// assigned in the canonical (index block) order of first use, which makes
// the rename map monotone in the common case.
func (ev *Evaluator) newEnv(an *Analysis, rw Rewritten) (*evalEnv, error) {
	env := &evalEnv{
		an:          an,
		blocks:      make(map[string]*fdd.Domain),
		occurrences: make(map[string]int),
		projectable: make(map[string]bool),
	}
	markProjectable(rw.Body, nil, env.projectable)
	collectEnvInfo(rw.Body, env)
	if ev.opts.CanonicalBlocks {
		ev.claimCanonicalBlocks(rw.Body, env)
	}
	counters := make(map[scratchKey]int)
	assign := func(v string) error {
		if _, done := env.blocks[v]; done {
			return nil
		}
		rd := an.Domain(v)
		if rd == nil {
			return fmt.Errorf("logic: variable %s has no domain", v)
		}
		key := scratchKey{domain: rd.Name(), bits: bitsFor(rd.Size())}
		i := counters[key]
		counters[key]++
		pool := ev.scratch[key]
		if i == len(pool) {
			name := fmt.Sprintf("$%s/%d#%d", key.domain, key.bits, i)
			pool = append(pool, ev.store.Space().NewDomain(name, 1<<key.bits))
			ev.scratch[key] = pool
		}
		env.blocks[v] = pool[i]
		return nil
	}
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Pred:
			// Assign this predicate's variables in canonical block order.
			type argPos struct {
				name  string
				level int
			}
			var args []argPos
			ix := ev.store.Index(g.Table)
			for i, a := range g.Args {
				if v, ok := a.(Var); ok {
					level := i
					if ix != nil && i < len(ix.Domains()) {
						level = ix.Domains()[i].Vars()[0]
					}
					args = append(args, argPos{name: v.Name, level: level})
				}
			}
			sort.Slice(args, func(i, j int) bool { return args[i].level < args[j].level })
			for _, a := range args {
				record(assign(a.name))
			}
		case Eq:
			walkCompare(g.L, g.R, assign, record)
		case Neq:
			walkCompare(g.L, g.R, assign, record)
		case In:
			walkCompare(g.T, nil, assign, record)
		case Not:
			walk(g.F)
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Quant:
			for _, v := range g.Vars {
				record(assign(v))
			}
			walk(g.F)
		case Truth:
		case Implies:
			walk(g.L)
			walk(g.R)
		}
	}
	// The walk assigns blocks in canonical (index layout) order per
	// predicate, which keeps rename maps monotone; stripped variables occur
	// in the body and are assigned there. Any leftovers (defensive) get
	// blocks afterwards.
	walk(rw.Body)
	for _, v := range rw.Stripped {
		record(assign(v))
	}
	return env, firstErr
}

// markProjectable records which variables reach a predicate from their
// existential binder through ∧/∨ only. candidates is the set of variables
// whose binder is directly above on such a path; Not and Quant nodes reset
// it (they are barriers an ∃ cannot be pushed through).
func markProjectable(f Formula, candidates map[string]bool, out map[string]bool) {
	switch g := f.(type) {
	case Pred:
		for _, a := range g.Args {
			if v, ok := a.(Var); ok && candidates[v.Name] {
				out[v.Name] = true
			}
		}
	case Not:
		markProjectable(g.F, nil, out)
	case And:
		markProjectable(g.L, candidates, out)
		markProjectable(g.R, candidates, out)
	case Or:
		markProjectable(g.L, candidates, out)
		markProjectable(g.R, candidates, out)
	case Implies:
		markProjectable(g.L, nil, out)
		markProjectable(g.R, nil, out)
	case Quant:
		var inner map[string]bool
		if !g.All {
			// ∃ commutes with ∃: outer candidates survive an existential
			// binder, and this binder's own variables join them.
			inner = make(map[string]bool, len(candidates)+len(g.Vars))
			for v := range candidates {
				inner[v] = true
			}
			for _, v := range g.Vars {
				inner[v] = true
			}
		}
		markProjectable(g.F, inner, out)
	}
}

func walkCompare(l, r Term, assign func(string) error, record func(error)) {
	for _, t := range []Term{l, r} {
		if v, ok := t.(Var); ok {
			record(assign(v.Name))
		}
	}
}

// collectEnvInfo counts variable occurrences (in predicates and
// comparisons) and records binder kinds, before any block assignment.
func collectEnvInfo(f Formula, env *evalEnv) {
	countTerm := func(t Term) {
		if v, ok := t.(Var); ok {
			env.occurrences[v.Name]++
		}
	}
	switch g := f.(type) {
	case Pred:
		for _, a := range g.Args {
			countTerm(a)
		}
	case Eq:
		countTerm(g.L)
		countTerm(g.R)
	case Neq:
		countTerm(g.L)
		countTerm(g.R)
	case In:
		countTerm(g.T)
	case Not:
		collectEnvInfo(g.F, env)
	case And:
		collectEnvInfo(g.L, env)
		collectEnvInfo(g.R, env)
	case Or:
		collectEnvInfo(g.L, env)
		collectEnvInfo(g.R, env)
	case Implies:
		collectEnvInfo(g.L, env)
		collectEnvInfo(g.R, env)
	case Quant:
		collectEnvInfo(g.F, env)
	}
}

// claimCanonicalBlocks assigns variables the canonical blocks of the
// indices they scan, biggest tables first, so that the largest predicate
// BDDs are used in place with no renaming. A canonical block is claimable
// by the first variable to ask for it, provided the variable is not going
// to be projected away at the predicate and the block width matches the
// variable's current domain.
func (ev *Evaluator) claimCanonicalBlocks(body Formula, env *evalEnv) {
	type occ struct {
		p      Pred
		ix     *index.Index
		weight int
	}
	var occs []occ
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Pred:
			if ix := ev.store.Index(g.Table); ix != nil {
				occs = append(occs, occ{p: g, ix: ix, weight: ix.Table().Len()})
			}
		case Not:
			walk(g.F)
		case And:
			walk(g.L)
			walk(g.R)
		case Or:
			walk(g.L)
			walk(g.R)
		case Implies:
			walk(g.L)
			walk(g.R)
		case Quant:
			walk(g.F)
		}
	}
	walk(body)
	sort.SliceStable(occs, func(i, j int) bool { return occs[i].weight > occs[j].weight })
	claimed := make(map[*fdd.Domain]bool)
	for _, o := range occs {
		doms := o.ix.Domains()
		if len(doms) != len(o.p.Args) {
			continue
		}
		seen := make(map[string]bool, len(o.p.Args))
		for i, arg := range o.p.Args {
			v, ok := arg.(Var)
			if !ok || seen[v.Name] {
				continue
			}
			seen[v.Name] = true
			if _, done := env.blocks[v.Name]; done {
				continue
			}
			if ev.opts.EarlyProject && env.occurrences[v.Name] == 1 && env.projectable[v.Name] {
				continue // will be projected at the predicate instead
			}
			b := doms[i]
			if claimed[b] {
				continue
			}
			rd := env.an.Domain(v.Name)
			if rd == nil || b.Bits() != bitsFor(rd.Size()) {
				continue
			}
			env.blocks[v.Name] = b
			claimed[b] = true
		}
	}
}

func bitsFor(size int) int {
	if size <= 1 {
		return 1
	}
	b := 0
	for 1<<b < size {
		b++
	}
	return b
}

// kerr converts a kernel Invalid result into a Go error.
func (ev *Evaluator) kerr() error {
	if err := ev.store.Kernel().Err(); err != nil {
		return err
	}
	return errors.New("logic: kernel returned Invalid without an error")
}

// eval computes the BDD of f. negated reports whether f occurs under a Not
// (only atoms can, after NNF); it gates the early projection rule.
func (ev *Evaluator) eval(f Formula, env *evalEnv, negated bool) (bdd.Ref, error) {
	k := ev.store.Kernel()
	switch g := f.(type) {
	case Truth:
		if g.Value {
			return bdd.True, nil
		}
		return bdd.False, nil
	case Pred:
		return ev.evalPred(g, env, negated)
	case Eq:
		return ev.evalEq(g.L, g.R, env)
	case Neq:
		r, err := ev.evalEq(g.L, g.R, env)
		if err != nil {
			return bdd.Invalid, err
		}
		if n := k.Not(r); n != bdd.Invalid {
			return n, nil
		}
		return bdd.Invalid, ev.kerr()
	case In:
		v := g.T.(Var)
		block := env.blocks[v.Name]
		rd := env.an.Domain(v.Name)
		var codes []int
		for _, val := range g.Values {
			if c, ok := rd.Code(val); ok {
				codes = append(codes, int(c))
			}
		}
		if r := block.Among(codes); r != bdd.Invalid {
			return r, nil
		}
		return bdd.Invalid, ev.kerr()
	case Not:
		inner, err := ev.eval(g.F, env, !negated)
		if err != nil {
			return bdd.Invalid, err
		}
		if r := k.Not(inner); r != bdd.Invalid {
			return r, nil
		}
		return bdd.Invalid, ev.kerr()
	case And:
		l, err := ev.eval(g.L, env, negated)
		if err != nil {
			return bdd.Invalid, err
		}
		if l == bdd.False {
			return bdd.False, nil
		}
		k.TempKeep(l)
		r, err := ev.eval(g.R, env, negated)
		if err != nil {
			return bdd.Invalid, err
		}
		if res := k.And(l, r); res != bdd.Invalid {
			return res, nil
		}
		return bdd.Invalid, ev.kerr()
	case Or:
		l, err := ev.eval(g.L, env, negated)
		if err != nil {
			return bdd.Invalid, err
		}
		if l == bdd.True {
			return bdd.True, nil
		}
		k.TempKeep(l)
		r, err := ev.eval(g.R, env, negated)
		if err != nil {
			return bdd.Invalid, err
		}
		if res := k.Or(l, r); res != bdd.Invalid {
			return res, nil
		}
		return bdd.Invalid, ev.kerr()
	case Implies:
		// Only reachable when the rewrite pipeline is fully disabled.
		l, err := ev.eval(g.L, env, negated)
		if err != nil {
			return bdd.Invalid, err
		}
		k.TempKeep(l)
		r, err := ev.eval(g.R, env, negated)
		if err != nil {
			return bdd.Invalid, err
		}
		if res := k.Imp(l, r); res != bdd.Invalid {
			return res, nil
		}
		return bdd.Invalid, ev.kerr()
	case Quant:
		return ev.evalQuant(g, env, negated)
	default:
		return bdd.Invalid, fmt.Errorf("logic: cannot evaluate %T", f)
	}
}

// domGuard returns the conjunction of the domain predicates of the blocks
// of the given variables: block < |dom(v)| for each. Quantification must be
// relativized with it — the blocks have 2^bits slots but only the first
// |dom(v)| encode values. The bound comes from the variable's value domain,
// not the block (scratch blocks are shared across value domains of equal
// width and are allocated at full slot capacity).
func (ev *Evaluator) domGuard(env *evalEnv, vars []string) (bdd.Ref, error) {
	k := ev.store.Kernel()
	guard := bdd.True
	for _, v := range vars {
		rd := env.an.Domain(v)
		if rd == nil {
			return bdd.Invalid, fmt.Errorf("logic: variable %s has no domain", v)
		}
		guard = k.And(guard, env.blocks[v].LessConst(rd.Size()))
		if guard == bdd.Invalid {
			return bdd.Invalid, ev.kerr()
		}
	}
	return guard, nil
}

func (ev *Evaluator) evalQuant(q Quant, env *evalEnv, negated bool) (bdd.Ref, error) {
	k := ev.store.Kernel()
	var vars []int
	for _, v := range q.Vars {
		vars = append(vars, env.blocks[v].Vars()...)
	}
	cube := k.TempKeep(k.Cube(vars...))
	if cube == bdd.Invalid {
		return bdd.Invalid, ev.kerr()
	}
	guard, err := ev.domGuard(env, q.Vars)
	if err != nil {
		return bdd.Invalid, err
	}
	k.TempKeep(guard)
	// Relativize: ∀x φ over the finite domain is ∀x (guard ⇒ φ), and
	// ∃x φ is ∃x (guard ∧ φ). Both guards distribute over ∧ and ∨
	// (guard⇒(a∧b) ≡ (guard⇒a)∧(guard⇒b), guard⇒(a∨b) ≡ (guard⇒a)∨(guard⇒b),
	// and dually for ∧ with guard conjunction on either operand), so the
	// combined AppEx/AppAll operations still apply.
	if ev.opts.UseAppQuant {
		var op bdd.ApplyOp
		var l, r Formula
		switch body := q.F.(type) {
		case And:
			op, l, r = bdd.OpAnd, body.L, body.R
		case Or:
			op, l, r = bdd.OpOr, body.L, body.R
		}
		if l != nil {
			lb, err := ev.eval(l, env, negated)
			if err != nil {
				return bdd.Invalid, err
			}
			k.TempKeep(lb)
			rb, err := ev.eval(r, env, negated)
			if err != nil {
				return bdd.Invalid, err
			}
			k.TempKeep(rb)
			var res bdd.Ref
			if q.All {
				res = k.AppAll(k.TempKeep(k.Imp(guard, lb)), k.Imp(guard, rb), op, cube)
			} else if op == bdd.OpAnd {
				res = k.AppEx(k.And(guard, lb), rb, op, cube)
			} else {
				res = k.AppEx(k.TempKeep(k.And(guard, lb)), k.And(guard, rb), op, cube)
			}
			if res != bdd.Invalid {
				return res, nil
			}
			return bdd.Invalid, ev.kerr()
		}
	}
	body, err := ev.eval(q.F, env, negated)
	if err != nil {
		return bdd.Invalid, err
	}
	var res bdd.Ref
	if q.All {
		res = k.Forall(k.Imp(guard, body), cube)
	} else {
		res = k.Exists(k.And(guard, body), cube)
	}
	if res != bdd.Invalid {
		return res, nil
	}
	return bdd.Invalid, ev.kerr()
}

func (ev *Evaluator) evalEq(l, r Term, env *evalEnv) (bdd.Ref, error) {
	lv, lIsVar := l.(Var)
	rv, rIsVar := r.(Var)
	switch {
	case lIsVar && rIsVar:
		if f := fdd.EqVar(env.blocks[lv.Name], env.blocks[rv.Name]); f != bdd.Invalid {
			return f, nil
		}
		return bdd.Invalid, ev.kerr()
	case lIsVar || rIsVar:
		v, c := lv, r
		if rIsVar {
			v, c = rv, l
		}
		rd := env.an.Domain(v.Name)
		code, ok := rd.Code(c.(Const).Value)
		if !ok {
			return bdd.False, nil
		}
		if f := env.blocks[v.Name].EqConst(int(code)); f != bdd.Invalid {
			return f, nil
		}
		return bdd.Invalid, ev.kerr()
	default:
		lc, rc := l.(Const), r.(Const)
		if lc.Value == rc.Value {
			return bdd.True, nil
		}
		return bdd.False, nil
	}
}

// evalPred binds one predicate occurrence against its logical index,
// memoizing the bound BDD per table version.
func (ev *Evaluator) evalPred(p Pred, env *evalEnv, negated bool) (bdd.Ref, error) {
	k := ev.store.Kernel()
	ix := ev.store.Index(p.Table)
	binding := env.an.Preds[p.Table]
	if ix == nil || !sameCols(ix.Columns(), binding.Cols) {
		return bdd.Invalid, fmt.Errorf("%w: %s", ErrNoIndex, p.Table)
	}
	key := ev.predKey(p, ix, env, negated)
	version := binding.Table.Version()
	if e, ok := ev.predCache[key]; ok && e.version == version {
		return e.ref, nil
	}
	f, err := ev.evalPredUncached(p, ix, binding, env, negated)
	if err != nil {
		return bdd.Invalid, err
	}
	k.Protect(f)
	if old, ok := ev.predCache[key]; ok {
		k.Unprotect(old.ref)
	}
	ev.predCache[key] = predCacheEntry{version: version, ref: f}
	return f, nil
}

// predKey identifies a bound predicate occurrence: the index (by its first
// block variable, which changes when the index is rebuilt), the constant
// arguments, the target block of each variable argument, repeated-variable
// structure, and whether the early-projection rule applies.
func (ev *Evaluator) predKey(p Pred, ix *index.Index, env *evalEnv, negated bool) string {
	var sb strings.Builder
	sb.WriteString(p.Table)
	fmt.Fprintf(&sb, "@%d", ix.Domains()[0].Vars()[0])
	seen := make(map[string]int, len(p.Args))
	for i, arg := range p.Args {
		switch a := arg.(type) {
		case Const:
			fmt.Fprintf(&sb, "|c%q", a.Value)
		case Var:
			if j, dup := seen[a.Name]; dup {
				fmt.Fprintf(&sb, "|=%d", j)
				continue
			}
			seen[a.Name] = i
			if ev.opts.EarlyProject && !negated &&
				env.occurrences[a.Name] == 1 && env.projectable[a.Name] {
				sb.WriteString("|p")
			} else {
				fmt.Fprintf(&sb, "|v%d", env.blocks[a.Name].Vars()[0])
			}
		}
	}
	return sb.String()
}

func (ev *Evaluator) evalPredUncached(p Pred, ix *index.Index, binding PredBinding, env *evalEnv, negated bool) (bdd.Ref, error) {
	k := ev.store.Kernel()
	doms := ix.Domains()

	// 1. Restrict constant arguments.
	var lits []bdd.Literal
	firstPos := make(map[string]int)
	var dupPairs [][2]int // (first, duplicate) argument positions
	for i, arg := range p.Args {
		switch a := arg.(type) {
		case Const:
			code, ok := binding.Table.ColumnDomain(binding.Cols[i]).Code(a.Value)
			if !ok {
				return bdd.False, nil // value never seen: no tuple matches
			}
			lits = append(lits, doms[i].Lits(int(code))...)
		case Var:
			if j, seen := firstPos[a.Name]; seen {
				dupPairs = append(dupPairs, [2]int{j, i})
			} else {
				firstPos[a.Name] = i
			}
		}
	}
	f := ix.Root()
	if len(lits) > 0 {
		f = k.Restrict(f, lits)
		if f == bdd.Invalid {
			return bdd.Invalid, ev.kerr()
		}
	}

	// 2. Repeated variables: equate the duplicate canonical blocks with the
	// first occurrence, then project the duplicates away.
	for _, d := range dupPairs {
		k.TempKeep(f)
		eq := fdd.EqVar(doms[d[0]], doms[d[1]])
		if eq == bdd.Invalid {
			return bdd.Invalid, ev.kerr()
		}
		f = k.AppEx(f, eq, bdd.OpAnd, doms[d[1]].Cube())
		if f == bdd.Invalid {
			return bdd.Invalid, ev.kerr()
		}
	}

	// 3. Early projection of single-occurrence existential variables.
	names := make([]string, 0, len(firstPos))
	for name := range firstPos {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return firstPos[names[i]] < firstPos[names[j]] })
	var from, to []*fdd.Domain
	var projected []*fdd.Domain
	for _, name := range names {
		i := firstPos[name]
		// A single-occurrence variable whose existential binder reaches this
		// atom through ∧/∨ only can be projected out here instead of being
		// renamed and quantified later. negated is always false for such
		// atoms (Not is a barrier), but the check keeps the invariant local.
		if ev.opts.EarlyProject && !negated &&
			env.occurrences[name] == 1 && env.projectable[name] {
			projected = append(projected, doms[i])
			continue
		}
		from = append(from, doms[i])
		to = append(to, env.blocks[name])
	}
	if len(projected) > 0 {
		f = fdd.Exists(f, projected...)
		if f == bdd.Invalid {
			return bdd.Invalid, ev.kerr()
		}
	}
	// Variables assigned this predicate's own canonical blocks need no
	// binding at all; drop the identity pairs.
	w := 0
	for i := range from {
		if from[i] != to[i] {
			from[w], to[w] = from[i], to[i]
			w++
		}
	}
	from, to = from[:w], to[:w]
	if len(from) == 0 {
		return f, nil
	}

	// The pairs can be *chained*: a variable that claimed one of this
	// index's own canonical blocks makes that block the target of one pair
	// while another occurrence keeps it as the source of a second pair
	// (c0→c2 alongside c2→scratch). The combined Replace substitutes
	// simultaneously and stays correct, but per-block substitution — rename
	// or equality bridge — is only equivalent while the pair's target block
	// is absent from the BDD's support; run against a still-live target it
	// computes the diagonal f(x,x) instead of the rename. Order the pairs so
	// every target is vacated before it is reused; a cyclic arrangement (two
	// blocks swapping) admits no such order and re-encodes the relation.
	chained := false
	{
		srcs := make(map[*fdd.Domain]bool, len(from))
		for _, d := range from {
			srcs[d] = true
		}
		for _, d := range to {
			if srcs[d] {
				chained = true
				break
			}
		}
	}
	if chained && !orderRenames(from, to) {
		return ev.rebuildPred(p, env, binding)
	}

	// 4. Bind the remaining canonical blocks to the variable blocks.
	if ev.opts.RenameJoin {
		g, err := ev.renameBlocks(p, f, from, to)
		if err == nil {
			return g, nil
		}
		if !errors.Is(err, bdd.ErrOrder) {
			return bdd.Invalid, err
		}
		// The combined rename is not order-safe for this block arrangement.
		// The blocks are disjoint, so simultaneous substitution equals
		// sequential per-block substitution: rename each block on its own
		// (individual maps are often order-safe where the combined one is
		// not), bridging a block with an equality BDD only when even its
		// single rename fails. Bridging per block keeps the equality states
		// of different blocks from multiplying. A very wide failing block
		// would make even its own equality BDD exponential; that degrades
		// to re-encoding the filtered relation.
		for i := range from {
			k.TempKeep(f)
			g, err := ev.renameBlocks(p, f, from[i:i+1], to[i:i+1])
			if err == nil {
				f = g
				continue
			}
			if !errors.Is(err, bdd.ErrOrder) {
				return bdd.Invalid, err
			}
			if from[i].Bits() > maxBridgeBits {
				return ev.rebuildPred(p, env, binding)
			}
			f = k.AppEx(f, ev.eqVarCached(from[i], to[i]), bdd.OpAnd, from[i].Cube())
			if f == bdd.Invalid {
				return bdd.Invalid, ev.kerr()
			}
		}
		return f, nil
	}
	// Naive strategy (§4.2 option 1, benchmarked as the ablation): conjoin
	// every equality BDD, then quantify the canonical blocks out in one
	// combined pass. Chained pairs cannot share one pass — quantifying a
	// source block that doubles as another pair's target would discard that
	// binding — so they bridge one pair at a time in vacate-first order.
	if chained {
		for i := range from {
			k.TempKeep(f)
			f = k.AppEx(f, ev.eqVarCached(from[i], to[i]), bdd.OpAnd, from[i].Cube())
			if f == bdd.Invalid {
				return bdd.Invalid, ev.kerr()
			}
		}
		return f, nil
	}
	k.TempKeep(f)
	bridge := bdd.True
	for i := range from {
		k.TempKeep(bridge)
		bridge = k.And(bridge, ev.eqVarCached(from[i], to[i]))
		if bridge == bdd.Invalid {
			return bdd.Invalid, ev.kerr()
		}
	}
	k.TempKeep(bridge)
	f = k.AppEx(f, bridge, bdd.OpAnd, fdd.CubeOf(from...))
	if f == bdd.Invalid {
		return bdd.Invalid, ev.kerr()
	}
	return f, nil
}

// maxBridgeBits bounds the block width the equality-bridge fallback will
// accept: an equality BDD over two non-interleaved b-bit blocks has Θ(2^b)
// nodes, so past this width re-encoding the relation is cheaper.
const maxBridgeBits = 16

// eqVarCached returns EqVar(a, b), caching (and pinning) the result: bridge
// equalities over wide blocks are too expensive to rebuild on every
// constraint check.
func (ev *Evaluator) eqVarCached(a, b *fdd.Domain) bdd.Ref {
	key := [2]*fdd.Domain{a, b}
	if r, ok := ev.eqCache[key]; ok {
		return r
	}
	r := fdd.EqVar(a, b)
	if r == bdd.Invalid {
		return r
	}
	ev.store.Kernel().Protect(r)
	ev.eqCache[key] = r
	return r
}

// orderRenames reorders the (from, to) pairs in place so that no pair's
// target block is the source of a later pair, and reports whether such an
// order exists. It fails only when the pairs contain a cycle of blocks
// renaming onto each other, which no sequential execution can realize.
func orderRenames(from, to []*fdd.Domain) bool {
	pending := make(map[*fdd.Domain]bool, len(from))
	for _, d := range from {
		pending[d] = true
	}
	for i := 0; i < len(from); i++ {
		j := -1
		for m := i; m < len(from); m++ {
			if !pending[to[m]] {
				j = m
				break
			}
		}
		if j < 0 {
			return false
		}
		from[i], from[j] = from[j], from[i]
		to[i], to[j] = to[j], to[i]
		delete(pending, from[i])
	}
	return true
}

// renameBlocks applies the §4.2 rename strategy with an interned map.
func (ev *Evaluator) renameBlocks(p Pred, f bdd.Ref, from, to []*fdd.Domain) (bdd.Ref, error) {
	k := ev.store.Kernel()
	key := replaceKey(p.Table, from, to)
	m, ok := ev.replaceMaps[key]
	if !ok {
		var err error
		m, err = fdd.ReplaceMap(from, to)
		if err != nil {
			return bdd.Invalid, err
		}
		ev.replaceMaps[key] = m
	}
	g := k.Replace(f, m)
	if g == bdd.Invalid {
		err := k.Err()
		if errors.Is(err, bdd.ErrOrder) {
			k.ClearErr()
			return bdd.Invalid, bdd.ErrOrder
		}
		return bdd.Invalid, ev.kerr()
	}
	return g, nil
}

// rebuildPred encodes the predicate's filtered, projected extension directly
// over the target variable blocks — the paper's "encode the relation into a
// BDD on the fly" fallback.
func (ev *Evaluator) rebuildPred(p Pred, env *evalEnv, binding PredBinding) (bdd.Ref, error) {
	t := binding.Table
	// Plan: for each argument position, a constant filter, a duplicate
	// check, a projection target, or a drop (early projection).
	type colPlan struct {
		col     int
		code    int32
		isConst bool
		dupOf   int // argument position of first occurrence, or -1
		keep    bool
		block   *fdd.Domain
	}
	plans := make([]colPlan, len(p.Args))
	firstPos := make(map[string]int)
	for i, arg := range p.Args {
		pl := colPlan{col: binding.Cols[i], dupOf: -1}
		switch a := arg.(type) {
		case Const:
			code, ok := t.ColumnDomain(binding.Cols[i]).Code(a.Value)
			if !ok {
				return bdd.False, nil
			}
			pl.isConst = true
			pl.code = code
		case Var:
			if j, seen := firstPos[a.Name]; seen {
				pl.dupOf = j
			} else {
				firstPos[a.Name] = i
				if block, ok := env.blocks[a.Name]; ok {
					pl.keep = true
					pl.block = block
				}
			}
		}
		plans[i] = pl
	}
	var doms []*fdd.Domain
	for _, pl := range plans {
		if pl.keep {
			doms = append(doms, pl.block)
		}
	}
	var rows [][]int
	for r := 0; r < t.Len(); r++ {
		row := t.Row(r)
		match := true
		for _, pl := range plans {
			if pl.isConst && row[pl.col] != pl.code {
				match = false
				break
			}
			if pl.dupOf >= 0 && row[pl.col] != row[plans[pl.dupOf].col] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		proj := make([]int, 0, len(doms))
		for _, pl := range plans {
			if pl.keep {
				proj = append(proj, int(row[pl.col]))
			}
		}
		rows = append(rows, proj)
	}
	if len(doms) == 0 {
		if len(rows) > 0 {
			return bdd.True, nil
		}
		return bdd.False, nil
	}
	f, err := fdd.Relation(doms, rows)
	if err != nil {
		return bdd.Invalid, err
	}
	return f, nil
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func replaceKey(table string, from, to []*fdd.Domain) string {
	var sb strings.Builder
	sb.WriteString(table)
	for i := range from {
		fmt.Fprintf(&sb, "|%d>%d", from[i].Vars()[0], to[i].Vars()[0])
	}
	return sb.String()
}
