package logic

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bdd"
	"repro/internal/fdd"
)

// rewrite_bdd_test.go checks the rewrite rules against the strongest
// available oracle: BDDs are canonical, so two formulas over the same free
// variables denote the same relation iff their BDDs share a root. bddSem
// builds a formula's denotation directly from its model-theoretic semantics
// — no evaluator shortcuts, every quantifier expanded over a guarded block —
// so each rewrite rule can be asserted to preserve the *relation*, not just
// truth under sampled bindings as TestRewritePreservesTruth does.

// bddSem denotes formulas over a bruteEnv model as BDDs. Free variables get
// one stable block per name (so two formulas with the same free variables
// are comparable by root); bound variables use scratch blocks pooled by
// quantifier nesting depth, which never appear in the final support.
// Quantifiers are relativized with InDomain: a block of a size-3 domain has
// four bit patterns, and the slot past the size encodes no value.
type bddSem struct {
	k       *bdd.Kernel
	s       *fdd.Space
	env     *bruteEnv
	free    map[string]*fdd.Domain
	scratch []*fdd.Domain
}

func newBDDSem(env *bruteEnv) *bddSem {
	k := bdd.New(bdd.Config{Vars: 0})
	return &bddSem{k: k, s: fdd.NewSpace(k), env: env, free: map[string]*fdd.Domain{}}
}

func (b *bddSem) freeBlock(name string) *fdd.Domain {
	d, ok := b.free[name]
	if !ok {
		d = b.s.NewDomain("v_"+name, b.env.domSize)
		b.free[name] = d
	}
	return d
}

func (b *bddSem) scratchBlock(depth int) *fdd.Domain {
	for len(b.scratch) <= depth {
		b.scratch = append(b.scratch, b.s.NewDomain(fmt.Sprintf("q%d", len(b.scratch)), b.env.domSize))
	}
	return b.scratch[depth]
}

// denote builds the BDD of f with free variables over their named blocks.
func (b *bddSem) denote(f Formula) bdd.Ref {
	return b.build(f, map[string]*fdd.Domain{}, 0)
}

func (b *bddSem) block(t Term, bind map[string]*fdd.Domain) *fdd.Domain {
	v, ok := t.(Var)
	if !ok {
		panic("bddSem: only variable terms are modeled")
	}
	if d, ok := bind[v.Name]; ok {
		return d
	}
	return b.freeBlock(v.Name)
}

func (b *bddSem) build(f Formula, bind map[string]*fdd.Domain, depth int) bdd.Ref {
	k := b.k
	switch g := f.(type) {
	case Truth:
		if g.Value {
			return bdd.True
		}
		return bdd.False
	case Pred:
		// OR over the extension's rows of AND over per-position value
		// tests. A variable repeated across positions lands both EqConst
		// tests on one block, which accepts exactly the diagonal rows.
		r := bdd.False
		for row := range b.env.ext[g.Table] {
			m := bdd.True
			for i, a := range g.Args {
				m = k.And(m, b.block(a, bind).EqConst(row[i]))
			}
			r = k.Or(r, m)
		}
		return r
	case Eq:
		return fdd.EqVar(b.block(g.L, bind), b.block(g.R, bind))
	case Neq:
		return k.Not(fdd.EqVar(b.block(g.L, bind), b.block(g.R, bind)))
	case Not:
		return k.Not(b.build(g.F, bind, depth))
	case And:
		return k.And(b.build(g.L, bind, depth), b.build(g.R, bind, depth))
	case Or:
		return k.Or(b.build(g.L, bind, depth), b.build(g.R, bind, depth))
	case Implies:
		return k.Imp(b.build(g.L, bind, depth), b.build(g.R, bind, depth))
	case Quant:
		blocks := make([]*fdd.Domain, len(g.Vars))
		saved := make([]*fdd.Domain, len(g.Vars))
		had := make([]bool, len(g.Vars))
		for i, v := range g.Vars {
			blocks[i] = b.scratchBlock(depth + i)
			saved[i], had[i] = bind[v]
			bind[v] = blocks[i]
		}
		inner := b.build(g.F, bind, depth+len(g.Vars))
		for i, v := range g.Vars {
			if had[i] {
				bind[v] = saved[i]
			} else {
				delete(bind, v)
			}
		}
		guard := bdd.True
		for _, d := range blocks {
			guard = k.And(guard, d.InDomain())
		}
		if g.All {
			return fdd.Forall(k.Imp(guard, inner), blocks...)
		}
		return fdd.Exists(k.And(guard, inner), blocks...)
	default:
		panic(fmt.Sprintf("bddSem: unsupported formula %T", f))
	}
}

// sameRoot asserts two formulas denote the same relation in the model.
func sameRoot(t *testing.T, sem *bddSem, label string, a, b Formula) {
	t.Helper()
	ra, rb := sem.denote(a), sem.denote(b)
	if ra != rb {
		t.Fatalf("%s changed the denoted relation:\n  before: %s\n  after:  %s", label, a, b)
	}
}

// TestRewriteRulesBDDTable pins each rewrite rule on a hand-picked formula:
// the transformed formula must build the identical BDD root.
func TestRewriteRulesBDDTable(t *testing.T) {
	// NNF and PushForall require implication-free input, so those entries
	// use sources without "=>".
	cases := []struct {
		name  string
		src   string
		xform func(Formula) Formula
	}{
		{"elim-implies", `P(x, y) => Q(x, y, z)`, ElimImplies},
		{"elim-implies-nested", `(P(x, x) => Q(x, y, y)) => P(y, x)`, ElimImplies},
		{"nnf-demorgan-and", `not (P(x, y) and Q(x, y, z))`, NNF},
		{"nnf-demorgan-or", `not (P(x, y) or not Q(z, z, z))`, NNF},
		{"nnf-double-negation", `not not P(x, y)`, NNF},
		{"nnf-forall-flip", `not (forall v: P(v, x))`, NNF},
		{"nnf-exists-flip", `not (exists v: P(v, x) and Q(v, x, x))`, NNF},
		{"standardize-apart", `(forall v: P(v, x)) and (forall v: Q(v, v, x))`, StandardizeApart},
		{"standardize-apart-shadow", `P(v, v) or (exists v: P(v, x))`, StandardizeApart},
		{"push-forall-and", `forall v: P(v, x) and Q(v, v, x)`, PushForall},
		{"push-forall-or-miniscope", `forall v: P(v, x) or Q(x, x, y)`, PushForall},
		{"push-forall-vacuous", `forall v: P(x, y)`, PushForall},
		{"prenex", `(forall v: P(v, x)) and (exists w: Q(w, x, y) or P(w, w))`,
			func(f Formula) Formula { return BuildPrefix(Prenex(f)) }},
	}
	env := randEnv(rand.New(rand.NewSource(99)), 3)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sem := newBDDSem(env)
			f := mustParse(t, c.src)
			sameRoot(t, sem, c.name, f, c.xform(f))
		})
	}
}

// TestRewriteRulesBDDRandom drives the whole normalization chain over
// random open formulas, asserting root preservation after every stage.
func TestRewriteRulesBDDRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	vars := []string{"x", "y", "z"}
	for trial := 0; trial < 120; trial++ {
		env := randEnv(rng, 3)
		sem := newBDDSem(env)
		f := randFormula(rng, vars, 3)
		ei := ElimImplies(f)
		sameRoot(t, sem, "ElimImplies", f, ei)
		n := NNF(ei)
		sameRoot(t, sem, "NNF", ei, n)
		sa := StandardizeApart(n)
		sameRoot(t, sem, "StandardizeApart", n, sa)
		sameRoot(t, sem, "PushForall", sa, PushForall(sa))
		sameRoot(t, sem, "Prenex/BuildPrefix", sa, BuildPrefix(Prenex(sa)))
	}
}

// TestRewriteModesMatchBDD closes random formulas and checks the full
// Rewrite output under every option combination: re-quantifying the body
// over the stripped variables per the reported mode must reproduce the
// sentence's truth value, both against the BDD denotation and brute force.
func TestRewriteModesMatchBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	vars := []string{"x", "y", "z"}
	optsList := []RewriteOptions{
		{Prenex: true, PushForall: true},
		{Prenex: true, PushForall: false},
		{Prenex: false, PushForall: true},
		{Prenex: false, PushForall: false},
	}
	for trial := 0; trial < 120; trial++ {
		env := randEnv(rng, 3)
		f := closeFormula(randFormula(rng, vars, 3))
		want := env.sentenceTruth(f)
		for _, opts := range optsList {
			sem := newBDDSem(env)
			rw := Rewrite(f, opts)
			reclosed := Formula(rw.Body)
			if len(rw.Stripped) > 0 {
				reclosed = Quant{All: rw.Mode == CheckValidity, Vars: rw.Stripped, F: rw.Body}
			}
			r := sem.denote(reclosed)
			if r != bdd.True && r != bdd.False {
				t.Fatalf("trial %d opts %+v: reclosed sentence not constant: %s", trial, opts, reclosed)
			}
			if got := r == bdd.True; got != want {
				t.Fatalf("trial %d opts %+v: BDD says %v, brute force says %v\nformula: %s\nbody: %s (mode %v, stripped %v)",
					trial, opts, got, want, f, rw.Body, rw.Mode, rw.Stripped)
			}
		}
	}
}
