package logic

import (
	"math/rand"
	"testing"
)

// bruteEnv is a tiny model for checking rewrite soundness: predicates over
// small explicit extensions, variables over a shared small domain.
type bruteEnv struct {
	domSize int
	// extension of each predicate name: set of encoded argument tuples.
	ext map[string]map[[3]int]bool
}

func (e *bruteEnv) eval(f Formula, binding map[string]int) bool {
	switch g := f.(type) {
	case Truth:
		return g.Value
	case Pred:
		var key [3]int
		for i, a := range g.Args {
			v := a.(Var)
			key[i] = binding[v.Name]
		}
		return e.ext[g.Table][key]
	case Eq:
		return binding[g.L.(Var).Name] == binding[g.R.(Var).Name]
	case Neq:
		return binding[g.L.(Var).Name] != binding[g.R.(Var).Name]
	case Not:
		return !e.eval(g.F, binding)
	case And:
		return e.eval(g.L, binding) && e.eval(g.R, binding)
	case Or:
		return e.eval(g.L, binding) || e.eval(g.R, binding)
	case Implies:
		return !e.eval(g.L, binding) || e.eval(g.R, binding)
	case Quant:
		return e.evalQuant(g, 0, binding)
	default:
		panic("unsupported formula in brute eval")
	}
}

func (e *bruteEnv) evalQuant(q Quant, i int, binding map[string]int) bool {
	if i == len(q.Vars) {
		return e.eval(q.F, binding)
	}
	v := q.Vars[i]
	saved, had := binding[v]
	defer func() {
		if had {
			binding[v] = saved
		} else {
			delete(binding, v)
		}
	}()
	for val := 0; val < e.domSize; val++ {
		binding[v] = val
		r := e.evalQuant(q, i+1, binding)
		if q.All && !r {
			return false
		}
		if !q.All && r {
			return true
		}
	}
	return q.All
}

// randFormula generates a random closed-ish formula over preds P, Q (arity
// ≤3) and variables drawn from a small pool.
func randFormula(rng *rand.Rand, vars []string, depth int) Formula {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return Pred{Table: "P", Args: []Term{
				Var{vars[rng.Intn(len(vars))]},
				Var{vars[rng.Intn(len(vars))]},
			}}
		case 1:
			return Pred{Table: "Q", Args: []Term{
				Var{vars[rng.Intn(len(vars))]},
				Var{vars[rng.Intn(len(vars))]},
				Var{vars[rng.Intn(len(vars))]},
			}}
		case 2:
			return Eq{L: Var{vars[rng.Intn(len(vars))]}, R: Var{vars[rng.Intn(len(vars))]}}
		default:
			return Truth{Value: rng.Intn(2) == 0}
		}
	}
	switch rng.Intn(7) {
	case 0:
		return Not{F: randFormula(rng, vars, depth-1)}
	case 1:
		return And{L: randFormula(rng, vars, depth-1), R: randFormula(rng, vars, depth-1)}
	case 2:
		return Or{L: randFormula(rng, vars, depth-1), R: randFormula(rng, vars, depth-1)}
	case 3:
		return Implies{L: randFormula(rng, vars, depth-1), R: randFormula(rng, vars, depth-1)}
	case 4, 5:
		v := vars[rng.Intn(len(vars))]
		return Quant{All: rng.Intn(2) == 0, Vars: []string{v}, F: randFormula(rng, vars, depth-1)}
	default:
		return randFormula(rng, vars, depth-1)
	}
}

func randEnv(rng *rand.Rand, domSize int) *bruteEnv {
	e := &bruteEnv{domSize: domSize, ext: map[string]map[[3]int]bool{
		"P": {}, "Q": {},
	}}
	for a := 0; a < domSize; a++ {
		for b := 0; b < domSize; b++ {
			if rng.Intn(2) == 0 {
				e.ext["P"][[3]int{a, b, 0}] = true
			}
			for c := 0; c < domSize; c++ {
				if rng.Intn(3) == 0 {
					e.ext["Q"][[3]int{a, b, c}] = true
				}
			}
		}
	}
	return e
}

// closeFormula universally quantifies the free variables, as Analyze does.
func closeFormula(f Formula) Formula {
	if free := FreeVars(f); len(free) > 0 {
		return Quant{All: true, Vars: free, F: f}
	}
	return f
}

// sentenceTruth evaluates a closed formula in the model.
func (e *bruteEnv) sentenceTruth(f Formula) bool {
	return e.eval(f, map[string]int{})
}

// rewrittenTruth evaluates a Rewritten result by brute force: validity means
// true under every binding of the stripped variables, satisfiability under
// some binding.
func (e *bruteEnv) rewrittenTruth(rw Rewritten) bool {
	var rec func(i int, binding map[string]int) bool
	rec = func(i int, binding map[string]int) bool {
		if i == len(rw.Stripped) {
			return e.eval(rw.Body, binding)
		}
		for val := 0; val < e.domSize; val++ {
			binding[rw.Stripped[i]] = val
			r := rec(i+1, binding)
			delete(binding, rw.Stripped[i])
			if rw.Mode == CheckValidity && !r {
				return false
			}
			if rw.Mode == CheckSatisfiability && r {
				return true
			}
		}
		return rw.Mode == CheckValidity
	}
	return rec(0, map[string]int{})
}

func TestRewritePreservesTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vars := []string{"x", "y", "z"}
	optsList := []RewriteOptions{
		{Prenex: true, PushForall: true},
		{Prenex: true, PushForall: false},
		{Prenex: false, PushForall: true},
		{Prenex: false, PushForall: false},
	}
	for trial := 0; trial < 400; trial++ {
		env := randEnv(rng, 3)
		f := closeFormula(randFormula(rng, vars, 3))
		want := env.sentenceTruth(f)
		for _, opts := range optsList {
			rw := Rewrite(f, opts)
			if got := env.rewrittenTruth(rw); got != want {
				t.Fatalf("trial %d opts %+v: rewritten truth %v, want %v\nformula: %s\nbody: %s (mode %v, stripped %v)",
					trial, opts, got, want, f, rw.Body, rw.Mode, rw.Stripped)
			}
		}
	}
}

func TestNNFEliminatesInnerNegations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []string{"x", "y"}
	var check func(f Formula, negated bool) bool
	check = func(f Formula, negated bool) bool {
		switch g := f.(type) {
		case Not:
			switch g.F.(type) {
			case Pred, Eq, Neq, In, Truth:
				return !negated && check(g.F, true)
			default:
				return false
			}
		case And:
			return check(g.L, false) && check(g.R, false)
		case Or:
			return check(g.L, false) && check(g.R, false)
		case Quant:
			return check(g.F, false)
		case Implies:
			return false
		default:
			return true
		}
	}
	for trial := 0; trial < 200; trial++ {
		f := NNF(ElimImplies(randFormula(rng, vars, 4)))
		if !check(f, false) {
			t.Fatalf("trial %d: NNF output has nested negation or implication: %s", trial, f)
		}
	}
}

func TestPrenexProducesQuantifierFreeMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []string{"x", "y", "z"}
	var quantFree func(f Formula) bool
	quantFree = func(f Formula) bool {
		switch g := f.(type) {
		case Quant:
			return false
		case And:
			return quantFree(g.L) && quantFree(g.R)
		case Or:
			return quantFree(g.L) && quantFree(g.R)
		case Not:
			return quantFree(g.F)
		default:
			return true
		}
	}
	for trial := 0; trial < 200; trial++ {
		f := StandardizeApart(NNF(ElimImplies(closeFormula(randFormula(rng, vars, 4)))))
		_, matrix := Prenex(f)
		if !quantFree(matrix) {
			t.Fatalf("trial %d: matrix still has quantifiers: %s", trial, matrix)
		}
	}
}

func TestStandardizeApartUniqueBinders(t *testing.T) {
	f := mustParse(t, `(forall x: P(x)) and (forall x: Q(x)) and P(x)`)
	g := StandardizeApart(f)
	seen := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch h := f.(type) {
		case Quant:
			for _, v := range h.Vars {
				if seen[v] {
					t.Fatalf("binder %q repeated after standardize-apart: %s", v, g)
				}
				seen[v] = true
			}
			walk(h.F)
		case And:
			walk(h.L)
			walk(h.R)
		case Or:
			walk(h.L)
			walk(h.R)
		case Not:
			walk(h.F)
		case Implies:
			walk(h.L)
			walk(h.R)
		}
	}
	walk(g)
	// The free x is untouched.
	free := FreeVars(g)
	if len(free) != 1 || free[0] != "x" {
		t.Fatalf("free vars changed: %v", free)
	}
}

func TestStripLeading(t *testing.T) {
	prefix := []quantStep{{true, "a"}, {true, "b"}, {false, "c"}, {true, "d"}}
	mode, stripped, rest := StripLeading(prefix)
	if mode != CheckValidity {
		t.Fatal("leading forall must give validity mode")
	}
	if len(stripped) != 2 || stripped[0] != "a" || stripped[1] != "b" {
		t.Fatalf("stripped = %v", stripped)
	}
	if len(rest) != 2 || rest[0].v != "c" || rest[1].v != "d" {
		t.Fatalf("rest = %v", rest)
	}
	mode, stripped, rest = StripLeading([]quantStep{{false, "x"}})
	if mode != CheckSatisfiability || len(stripped) != 1 || len(rest) != 0 {
		t.Fatal("single exists mishandled")
	}
	mode, stripped, rest = StripLeading(nil)
	if mode != CheckValidity || stripped != nil || rest != nil {
		t.Fatal("empty prefix mishandled")
	}
}

func TestPushForallDistributesOverAnd(t *testing.T) {
	f := mustParse(t, `forall x: P(x) and Q(x)`)
	g := PushForall(NNF(ElimImplies(f)))
	and, ok := g.(And)
	if !ok {
		t.Fatalf("expected top-level And, got %s", g)
	}
	if _, ok := and.L.(Quant); !ok {
		t.Fatalf("expected quantifier pushed into left conjunct, got %s", and.L)
	}
	if _, ok := and.R.(Quant); !ok {
		t.Fatalf("expected quantifier pushed into right conjunct, got %s", and.R)
	}
}

func TestPushForallMiniScopesOverOr(t *testing.T) {
	// x occurs only on the left of the disjunction.
	f := mustParse(t, `forall x: P(x) or Q(y)`)
	g := PushForall(NNF(ElimImplies(f)))
	or, ok := g.(Or)
	if !ok {
		t.Fatalf("expected top-level Or, got %s", g)
	}
	if _, ok := or.L.(Quant); !ok {
		t.Fatalf("expected quantifier scoped to left disjunct, got %s", g)
	}
	if _, ok := or.R.(Quant); ok {
		t.Fatalf("right disjunct should not be quantified: %s", g)
	}
}

func TestPushForallDropsUnusedQuantifier(t *testing.T) {
	f := mustParse(t, `forall x: Q(y)`)
	g := PushForall(NNF(ElimImplies(f)))
	if _, ok := g.(Quant); ok {
		t.Fatalf("vacuous quantifier should be dropped, got %s", g)
	}
}
