package logic

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Formula {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		`P(x, "a")`,
		`forall x: P(x, "a") => exists y: Q(y) and R(x, y)`,
		`x = "v"`,
		`x != y`,
		`x in {"a", "b", "c"}`,
		`not (P(x) or Q(x))`,
		`forall x, y: (P(x) and Q(y)) or not R(x, y)`,
		`exists x: P(x) => false`,
		`true and false`,
	}
	for _, src := range cases {
		f := mustParse(t, src)
		again, err := Parse(f.String())
		if err != nil {
			t.Fatalf("re-parse of %q (printed %q): %v", src, f.String(), err)
		}
		if again.String() != f.String() {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, f.String(), again.String())
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// "and" binds tighter than "or", which binds tighter than "=>".
	f := mustParse(t, `P(x) or Q(x) and R(x) => S(x)`)
	imp, ok := f.(Implies)
	if !ok {
		t.Fatalf("expected Implies at top, got %T", f)
	}
	or, ok := imp.L.(Or)
	if !ok {
		t.Fatalf("expected Or on left of =>, got %T", imp.L)
	}
	if _, ok := or.R.(And); !ok {
		t.Fatalf("expected And inside Or, got %T", or.R)
	}
}

func TestParseQuantifierScopesRight(t *testing.T) {
	// A quantifier scopes over everything to its right, including "=>".
	f := mustParse(t, `forall x: P(x) => Q(x)`)
	q, ok := f.(Quant)
	if !ok || !q.All {
		t.Fatalf("expected top-level forall, got %T", f)
	}
	if _, ok := q.F.(Implies); !ok {
		t.Fatalf("expected implication under forall, got %T", q.F)
	}
}

func TestParseWildcard(t *testing.T) {
	f := mustParse(t, `P(x, _, _)`)
	q, ok := f.(Quant)
	if !ok || q.All || len(q.Vars) != 2 {
		t.Fatalf("wildcards should desugar to a 2-variable exists, got %v", f)
	}
	p, ok := q.F.(Pred)
	if !ok || len(p.Args) != 3 {
		t.Fatalf("expected 3-ary predicate, got %v", q.F)
	}
	// The two anonymous variables are distinct.
	a1 := p.Args[1].(Var).Name
	a2 := p.Args[2].(Var).Name
	if a1 == a2 {
		t.Fatal("anonymous variables must be distinct")
	}
	if !strings.HasPrefix(a1, "_anon") {
		t.Fatalf("anonymous variable name %q lacks the reserved prefix", a1)
	}
}

func TestParseConstraintsFile(t *testing.T) {
	src := `
	# two constraints
	constraint a: forall x: P(x) => Q(x).
	constraint b: exists y: R(y, "v")
	`
	cs, err := ParseConstraints(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "a" || cs[1].Name != "b" {
		t.Fatalf("got %v", cs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`P(`,
		`forall : P(x)`,
		`P(x) and`,
		`x in {}`,
		`x in {"a"`,
		`"a" = "b" extra`,
		`P(x) garbage`,
		`not`,
		`x ~ y`,
		`"unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	f := mustParse(t, `x = "a\"b"`)
	eq := f.(Eq)
	if eq.R.(Const).Value != `a"b` {
		t.Fatalf("escape mishandled: %q", eq.R.(Const).Value)
	}
}

func TestFreeVars(t *testing.T) {
	f := mustParse(t, `forall x: P(x, y) and (exists z: Q(z, w))`)
	got := FreeVars(f)
	want := []string{"y", "w"}
	if len(got) != len(want) {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeVars = %v, want %v", got, want)
		}
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	f := mustParse(t, `P(x) and (forall x: Q(x))`)
	got := FreeVars(f)
	if len(got) != 1 || got[0] != "x" {
		t.Fatalf("FreeVars = %v, want [x]", got)
	}
}
